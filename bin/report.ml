(* Regenerate every table and figure of the paper.  With arguments, only
   the named experiment ids (e.g. "fig4 tab11").  [--jobs N] sets the
   measurement-pool width (default: REPRO_JOBS or the domain count). *)

module Experiments = Repro_harness.Experiments
module Plan = Repro_harness.Plan
module Pool = Repro_harness.Pool

let usage () =
  prerr_endline "usage: report [--jobs N] [id ...]";
  prerr_endline "known ids:";
  List.iter
    (fun (e : Experiments.t) -> prerr_endline ("  " ^ e.id))
    Experiments.all;
  exit 1

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ -> usage ());
      parse rest
    | "--jobs" :: [] -> usage ()
    | id :: rest ->
      ids := id :: !ids;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let experiments =
    match List.rev !ids with
    | [] -> Experiments.all
    | ids -> (
      try List.map Experiments.by_id ids
      with Not_found ->
        prerr_endline "unknown experiment id";
        usage ())
  in
  (* Prefetch every measurement the selected experiments need, in
     parallel; rendering below is serial and deterministic. *)
  let plan =
    match List.rev !ids with
    | [] -> Plan.full ()
    | ids -> List.fold_left (fun acc id -> Plan.union acc (Plan.for_experiment id)) [] ids
  in
  Pool.run_plan ~jobs:!jobs plan;
  List.iter
    (fun (e : Experiments.t) ->
      Printf.printf "================ %s: %s ================\n%s\n" e.id
        e.title (Experiments.render e))
    experiments
