(* Regenerate every table and figure of the paper.  With arguments, only
   the named experiment ids (e.g. "fig4 tab11") and/or raw measurement
   specs in {!Plan} syntax ("grid:queens:d16") — specs are prefetched
   into the run cache alongside the experiments' own plans, the one
   spec spelling shared with `d16c serve`.  [--jobs N] sets the
   measurement-pool width (default: REPRO_JOBS or the domain count). *)

module Experiments = Repro_harness.Experiments
module Plan = Repro_harness.Plan
module Pool = Repro_harness.Pool

let usage () =
  prerr_endline "usage: report [--jobs N] [id | kind:bench:target ...]";
  prerr_endline "known ids:";
  List.iter
    (fun (e : Experiments.t) -> prerr_endline ("  " ^ e.id))
    Experiments.all;
  prerr_endline "spec kinds: stats, grid, uarch, fused, trace";
  exit 1

let () =
  let jobs = ref (Pool.default_jobs ()) in
  let words = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs := n
      | _ -> usage ());
      parse rest
    | "--jobs" :: [] -> usage ()
    | w :: rest ->
      words := w :: !words;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let ids, specs =
    List.partition (fun w -> not (Plan.looks_like_spec w)) (List.rev !words)
  in
  let specs =
    List.map
      (fun w ->
        match Plan.spec_of_string w with
        | Ok s -> s
        | Error e ->
          prerr_endline e;
          usage ())
      specs
  in
  let experiments =
    match ids with
    | [] when specs = [] -> Experiments.all
    | [] -> []
    | ids -> (
      try List.map Experiments.by_id ids
      with Not_found ->
        prerr_endline "unknown experiment id";
        usage ())
  in
  (* Prefetch every measurement the selected experiments need, plus the
     raw specs, in parallel; rendering below is serial and
     deterministic. *)
  let plan =
    match (ids, specs) with
    | [], [] -> Plan.full ()
    | _ ->
      List.fold_left
        (fun acc id -> Plan.union acc (Plan.for_experiment id))
        (Plan.dedup specs) ids
  in
  Pool.run_plan ~jobs:!jobs plan;
  List.iter
    (fun s -> Printf.printf "warmed %s\n" (Plan.describe s))
    (Plan.dedup specs);
  List.iter
    (fun (e : Experiments.t) ->
      Printf.printf "================ %s: %s ================\n%s\n" e.id
        e.title (Experiments.render e))
    experiments
