(* d16c: compile and run mini-C programs on the paper's targets.

   Usage examples:
     d16c --target d16 --run prog.c
     d16c --bench queens --all-targets
     d16c --target dlxe --asm prog.c          (dump assembly items)
     d16c --list                              (list suite benchmarks)     *)

open Cmdliner

let target_conv =
  Arg.conv
    ( (fun s ->
        Result.map_error
          (fun m -> `Msg m)
          (Repro_core.Target.of_name s)),
      fun fmt t -> Format.pp_print_string fmt t.Repro_core.Target.name )

let run_one target source ~show_asm ~show_stats =
  if show_asm then begin
    (* Recompile per function to print items. *)
    let module P = Repro_minic.Parser in
    let module L = Repro_ir.Lower in
    let module O = Repro_ir.Opt in
    let module R = Repro_ir.Regalloc in
    let module I = Repro_codegen.Irprep in
    let module S = Repro_codegen.Select in
    let module Sc = Repro_codegen.Sched in
    let src = Repro_workloads.Runtime_lib.source ^ source in
    let u = L.lower_program (P.parse src) in
    let lits = I.empty_fp_literals () in
    List.iter
      (fun f ->
        O.optimize f;
        I.prepare target lits f;
        let alloc = R.allocate target f in
        let frag = Sc.fill_delay_slots target (Sc.schedule_loads (S.select target alloc f)) in
        print_string (Repro_codegen.Asm.fragment_to_string frag))
      u.L.funcs
  end;
  let img, r = Repro_harness.Compile.compile_and_run ~trace:false target source in
  print_string r.Repro_sim.Machine.output;
  if show_stats then
    Printf.eprintf
      "[%s] exit=%d size=%dB text=%dB path=%d loads=%d stores=%d interlocks=%d\n"
      target.Repro_core.Target.name r.Repro_sim.Machine.exit_code
      (Repro_link.Link.size_bytes img)
      img.Repro_link.Link.text_bytes r.Repro_sim.Machine.ic
      r.Repro_sim.Machine.loads r.Repro_sim.Machine.stores
      r.Repro_sim.Machine.interlocks;
  r.Repro_sim.Machine.exit_code

let main target file bench all_targets list_benchmarks show_asm show_stats =
  if list_benchmarks then begin
    List.iter
      (fun (b : Repro_workloads.Suite.benchmark) ->
        Printf.printf "%-12s %s\n" b.name b.description)
      Repro_workloads.Suite.all;
    `Ok 0
  end
  else begin
    let source =
      match (file, bench) with
      | Some f, None -> Ok (In_channel.with_open_text f In_channel.input_all)
      | None, Some b -> (
        try Ok (Repro_workloads.Suite.find b).Repro_workloads.Suite.source
        with Not_found -> Error ("unknown benchmark " ^ b))
      | Some _, Some _ -> Error "give either a file or --bench, not both"
      | None, None -> Error "no input (file or --bench)"
    in
    match source with
    | Error m ->
      prerr_endline m;
      `Ok 1
    | Ok source ->
      let targets =
        if all_targets then Repro_core.Target.all else [ target ]
      in
      let code =
        List.fold_left
          (fun acc t ->
            try max acc (run_one t source ~show_asm ~show_stats) with
            | Repro_harness.Compile.Compile_error m ->
              Printf.eprintf "compile error (%s): %s\n" t.Repro_core.Target.name m;
              2
            | Repro_sim.Machine.Runtime_error m ->
              Printf.eprintf "runtime error (%s): %s\n" t.Repro_core.Target.name m;
              3)
          0 targets
      in
      `Ok code
  end

let cmd =
  let target =
    Arg.(
      value
      & opt target_conv Repro_core.Target.d16
      & info [ "t"; "target" ] ~doc:"Target: d16, d16x, dlxe, dlxe-16-2, dlxe-16-3, dlxe-32-2.")
  in
  let file = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE") in
  let bench =
    Arg.(value & opt (some string) None & info [ "bench" ] ~doc:"Run a suite benchmark.")
  in
  let all_targets =
    Arg.(value & flag & info [ "all-targets" ] ~doc:"Run on all five targets.")
  in
  let list_benchmarks =
    Arg.(value & flag & info [ "list" ] ~doc:"List suite benchmarks.")
  in
  let show_asm = Arg.(value & flag & info [ "asm" ] ~doc:"Dump assembly.") in
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics to stderr.")
  in
  Cmd.v
    (Cmd.info "d16c" ~doc:"mini-C compiler and simulator for D16/DLXe")
    Term.(
      ret
        (const (fun a b c d e f g -> `Ok (main a b c d e f g))
        $ target $ file $ bench $ all_targets $ list_benchmarks $ show_asm
        $ show_stats))

let () =
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok (`Ok n)) -> n
    | Ok _ -> 0
    | Error _ -> 124)
