(* d16c: compile and run mini-C programs on the paper's targets, and
   drive the experiment server.

   Usage examples:
     d16c run --target d16 prog.c
     d16c --bench queens --all-targets        (run is the default command)
     d16c --target dlxe --asm prog.c          (dump assembly items)
     d16c --list                              (list suite benchmarks)
     d16c serve                               (experiment daemon)
     d16c serve --once                        (in-process self-test)
     d16c client ping grid:queens:d16         (talk to the daemon)        *)

open Cmdliner
module Plan = Repro_harness.Plan
module Proto = Repro_serve.Proto
module Server = Repro_serve.Server
module Client = Repro_serve.Client

let target_conv =
  Arg.conv
    ( (fun s ->
        Result.map_error
          (fun m -> `Msg m)
          (Repro_core.Target.of_name s)),
      fun fmt t -> Format.pp_print_string fmt t.Repro_core.Target.name )

(* run (default command) ------------------------------------------------- *)

let run_one target source ~show_asm ~show_stats =
  if show_asm then begin
    (* Recompile per function to print items. *)
    let module P = Repro_minic.Parser in
    let module L = Repro_ir.Lower in
    let module O = Repro_ir.Opt in
    let module R = Repro_ir.Regalloc in
    let module I = Repro_codegen.Irprep in
    let module S = Repro_codegen.Select in
    let module Sc = Repro_codegen.Sched in
    let src = Repro_workloads.Runtime_lib.source ^ source in
    let u = L.lower_program (P.parse src) in
    let lits = I.empty_fp_literals () in
    List.iter
      (fun f ->
        O.optimize f;
        I.prepare target lits f;
        let alloc = R.allocate target f in
        let frag = Sc.fill_delay_slots target (Sc.schedule_loads (S.select target alloc f)) in
        print_string (Repro_codegen.Asm.fragment_to_string frag))
      u.L.funcs
  end;
  let img, r = Repro_harness.Compile.compile_and_run ~trace:false target source in
  print_string r.Repro_sim.Machine.output;
  if show_stats then
    Printf.eprintf
      "[%s] exit=%d size=%dB text=%dB path=%d loads=%d stores=%d interlocks=%d\n"
      target.Repro_core.Target.name r.Repro_sim.Machine.exit_code
      (Repro_link.Link.size_bytes img)
      img.Repro_link.Link.text_bytes r.Repro_sim.Machine.ic
      r.Repro_sim.Machine.loads r.Repro_sim.Machine.stores
      r.Repro_sim.Machine.interlocks;
  r.Repro_sim.Machine.exit_code

let run_main target file bench all_targets list_benchmarks show_asm show_stats =
  if list_benchmarks then begin
    List.iter
      (fun (b : Repro_workloads.Suite.benchmark) ->
        Printf.printf "%-12s %s\n" b.name b.description)
      Repro_workloads.Suite.all;
    0
  end
  else begin
    let source =
      match (file, bench) with
      | Some f, None -> Ok (In_channel.with_open_text f In_channel.input_all)
      | None, Some b -> (
        try Ok (Repro_workloads.Suite.find b).Repro_workloads.Suite.source
        with Not_found -> Error ("unknown benchmark " ^ b))
      | Some _, Some _ -> Error "give either a file or --bench, not both"
      | None, None -> Error "no input (file or --bench)"
    in
    match source with
    | Error m ->
      prerr_endline m;
      1
    | Ok source ->
      let targets =
        if all_targets then Repro_core.Target.all else [ target ]
      in
      List.fold_left
        (fun acc t ->
          try max acc (run_one t source ~show_asm ~show_stats) with
          | Repro_harness.Compile.Compile_error m ->
            Printf.eprintf "compile error (%s): %s\n" t.Repro_core.Target.name m;
            2
          | Repro_sim.Machine.Runtime_error m ->
            Printf.eprintf "runtime error (%s): %s\n" t.Repro_core.Target.name m;
            3)
        0 targets
  end

let run_term =
  let target =
    Arg.(
      value
      & opt target_conv Repro_core.Target.d16
      & info [ "t"; "target" ] ~doc:"Target: d16, d16x, dlxe, dlxe-16-2, dlxe-16-3, dlxe-32-2.")
  in
  let file = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE") in
  let bench =
    Arg.(value & opt (some string) None & info [ "bench" ] ~doc:"Run a suite benchmark.")
  in
  let all_targets =
    Arg.(value & flag & info [ "all-targets" ] ~doc:"Run on all five targets.")
  in
  let list_benchmarks =
    Arg.(value & flag & info [ "list" ] ~doc:"List suite benchmarks.")
  in
  let show_asm = Arg.(value & flag & info [ "asm" ] ~doc:"Dump assembly.") in
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics to stderr.")
  in
  Term.(
    const run_main $ target $ file $ bench $ all_targets $ list_benchmarks
    $ show_asm $ show_stats)

(* Shared serve/client plumbing ------------------------------------------ *)

let default_socket () =
  Filename.concat (Repro_harness.Diskcache.dir ()) "d16c.sock"

let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT")
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (host, p)
      | _ -> Error (`Msg ("bad port " ^ port)))
  in
  Arg.conv (parse, fun fmt (h, p) -> Format.fprintf fmt "%s:%d" h p)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default: d16c.sock under the runs cache).")

let tcp_arg ~doc =
  Arg.(value & opt (some tcp_conv) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let parse_request s =
  match s with
  | "ping" -> Ok Proto.Ping
  | "status" -> Ok Proto.Status
  | "shutdown" -> Ok Proto.Shutdown
  | _ when String.length s > 6 && String.sub s 0 6 = "sleep:" -> (
    match float_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some ms when ms >= 0. -> Ok (Proto.Sleep ms)
    | _ -> Error (Printf.sprintf "bad sleep duration in %S" s))
  | _ when Plan.looks_like_spec s ->
    Result.map (fun spec -> Proto.Sweep spec) (Plan.spec_of_string s)
  | _ -> Ok (Proto.Render s)

let print_response = function
  | Proto.Error_r { code; message } ->
    Printf.printf "error %s: %s\n" (Proto.error_code_to_string code) message
  | Proto.Pong -> print_endline "pong"
  | Proto.Slept -> print_endline "slept"
  | Proto.Bye -> print_endline "bye"
  | Proto.Render_r { text; _ } -> print_string text
  | Proto.Sweep_r { spec; digest; batch; ms } ->
    Printf.printf "%s digest=%s batch=%d ms=%.1f\n" (Plan.spec_to_string spec)
      digest batch ms
  | Proto.Status_r s ->
    Printf.printf
      "up=%.1fs accepted=%d completed=%d failed=%d\n\
       coalesced=%d batches=%d batched=%d max-batch=%d runs=%d\n\
       queue=%d waiting=%d timeouts=%d shed=%d disk=%d/%d lat(avg/max)=%.1f/%.1fms\n"
      s.Proto.uptime_s s.Proto.accepted s.Proto.completed s.Proto.failed
      s.Proto.coalesced s.Proto.batches s.Proto.batched s.Proto.max_batch
      s.Proto.runs s.Proto.queue_depth s.Proto.waiting s.Proto.timeouts
      s.Proto.shed s.Proto.disk_hits s.Proto.disk_misses
      (if s.Proto.completed = 0 then 0.
       else s.Proto.latency_ms_sum /. float_of_int s.Proto.completed)
      s.Proto.latency_ms_max

(* client ---------------------------------------------------------------- *)

let client_main socket tcp deadline_ms dup reqs =
  let addr =
    match tcp with
    | Some (h, p) -> Client.Tcp (h, p)
    | None -> Client.Unix_sock (Option.value ~default:(default_socket ()) socket)
  in
  let deadline_ms = Option.map float_of_int deadline_ms in
  match
    List.fold_left
      (fun acc s ->
        Result.bind acc (fun rs ->
            Result.map (fun r -> (s, r) :: rs) (parse_request s)))
      (Ok []) reqs
  with
  | Error m ->
    prerr_endline m;
    1
  | Ok [] ->
    prerr_endline "no requests (try: d16c client ping)";
    1
  | Ok rev_reqs -> (
    let reqs = List.rev rev_reqs in
    match Client.connect addr with
    | Error m ->
      prerr_endline m;
      1
    | Ok c ->
      let ok = ref true in
      List.iter
        (fun (s, r) ->
          if dup > 1 then begin
            (* N simultaneous copies from N connections; print each
               response — equal digests and batch = N are the point. *)
            let slots = Array.make dup (Error "not run") in
            let fire i =
              match Client.connect addr with
              | Error m -> slots.(i) <- Error m
              | Ok c' ->
                slots.(i) <- Client.rpc c' ?deadline_ms r;
                Client.close c'
            in
            let threads = List.init dup (fun i -> Thread.create fire i) in
            List.iter Thread.join threads;
            Array.iter
              (function
                | Ok (Proto.Error_r { code; message }) ->
                  Printf.eprintf "%s: %s: %s\n" s
                    (Proto.error_code_to_string code)
                    message;
                  ok := false
                | Ok resp -> print_response resp
                | Error m ->
                  Printf.eprintf "%s: %s\n" s m;
                  ok := false)
              slots
          end
          else
            match Client.rpc c ?deadline_ms r with
            | Ok (Proto.Error_r { code; message }) ->
              Printf.eprintf "%s: %s: %s\n" s
                (Proto.error_code_to_string code)
                message;
              ok := false
            | Ok resp -> print_response resp
            | Error m ->
              Printf.eprintf "%s: %s\n" s m;
              ok := false)
        reqs;
      Client.close c;
      if !ok then 0 else 1)

let client_cmd =
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~doc:"Per-request deadline in milliseconds.")
  in
  let dup =
    Arg.(
      value & opt int 1
      & info [ "dup" ]
          ~doc:
            "Send each request $(docv) times at once from $(docv) \
             connections (demonstrates coalescing/batching: responses \
             report batch=$(docv) and identical digests).")
  in
  let reqs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "ping | status | shutdown | a plan spec (grid:queens:d16) | \
             an experiment id (table2) | sleep:MS.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send requests to a running d16c serve daemon.")
    Term.(const client_main $ socket_arg
          $ tcp_arg ~doc:"Connect over TCP instead of the Unix socket."
          $ deadline $ dup $ reqs)

(* serve ----------------------------------------------------------------- *)

(* In-process end-to-end self-test: serve on a private socket, drive it
   with real clients over real sockets, and check the coalescing and
   batching counters — the CI smoke path with no daemon management. *)
let self_test (cfg : Server.config) =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "d16c-once-%d.sock" (Unix.getpid ()))
  in
  let cfg = { cfg with Server.unix_path = Some path; tcp = None } in
  match Server.start cfg with
  | Error m ->
    prerr_endline m;
    1
  | Ok h ->
    let addr = Client.Unix_sock path in
    let fail = ref [] in
    let check name b = if not b then fail := name :: !fail in
    let rpc c r =
      match Client.rpc c r with
      | Ok resp -> resp
      | Error m -> Proto.Error_r { code = Proto.Server_error; message = m }
    in
    (match Client.connect addr with
    | Error m -> fail := ("connect: " ^ m) :: !fail
    | Ok c ->
      check "ping" (rpc c Proto.Ping = Proto.Pong);
      (match Plan.spec_of_string "stats:queens:d16" with
      | Error m -> fail := ("spec: " ^ m) :: !fail
      | Ok spec -> (
        match rpc c (Proto.Sweep spec) with
        | Proto.Sweep_r { digest; _ } ->
          (* Concurrent duplicates: 4 connections fire the same grid
             request; all must answer the same digest from one run. *)
          let n = 4 in
          let spec2 =
            match Plan.spec_of_string "grid:queens:d16" with
            | Ok s -> s
            | Error _ -> spec
          in
          let slots = Array.make n None in
          let fire i =
            match Client.connect addr with
            | Error _ -> ()
            | Ok c' ->
              (match rpc c' (Proto.Sweep spec2) with
              | Proto.Sweep_r { digest = d; batch; _ } ->
                slots.(i) <- Some (d, batch)
              | _ -> ());
              Client.close c'
          in
          let threads = List.init n (fun i -> Thread.create fire i) in
          List.iter Thread.join threads;
          let answers = Array.to_list slots |> List.filter_map Fun.id in
          check "dup-answered" (List.length answers = n);
          (match answers with
          | (d0, _) :: _ ->
            check "dup-digests-equal" (List.for_all (fun (d, _) -> d = d0) answers)
          | [] -> ());
          (match rpc c Proto.Status with
          | Proto.Status_r s ->
            check "coalesced-or-batched"
              (s.Proto.coalesced + s.Proto.batched > 0);
            check "runs-bounded" (s.Proto.runs < 2 + n)
          | _ -> check "status" false);
          check "digest-nonempty" (digest <> "")
        | _ -> check "sweep" false));
      check "shutdown" (rpc c Proto.Shutdown = Proto.Bye);
      Client.close c);
    Server.wait h;
    if !fail = [] then begin
      print_endline "serve --once: all checks passed";
      0
    end
    else begin
      List.iter (fun f -> Printf.eprintf "serve --once: FAILED %s\n" f) !fail;
      1
    end

let serve_main socket tcp jobs window_ms queue deadline_ms log_interval once =
  let base = Server.default_config () in
  let cfg =
    {
      base with
      Server.unix_path = Some (Option.value ~default:(default_socket ()) socket);
      tcp;
      jobs;
      window_ms;
      max_queue = queue;
      default_deadline_ms = float_of_int deadline_ms;
      log_interval_s = log_interval;
    }
  in
  if once then self_test cfg
  else
    match Server.run cfg with
    | Ok () -> 0
    | Error m ->
      prerr_endline m;
      1

let serve_cmd =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~doc:"Worker domains (default: cores, min 2).")
  in
  let window =
    Arg.(
      value & opt float 10.
      & info [ "window-ms" ] ~doc:"Batching window in milliseconds.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~doc:"Max jobs in flight before shedding Busy.")
  in
  let deadline =
    Arg.(
      value & opt int 60_000
      & info [ "deadline-ms" ]
          ~doc:"Default deadline for requests that carry none.")
  in
  let log_interval =
    Arg.(
      value & opt float 10.
      & info [ "log-interval" ]
          ~doc:"Seconds between observability log lines (0 disables).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Self-test: serve on a private socket, drive it end-to-end \
             (ping, sweeps, concurrent duplicates), verify the coalescing \
             counters, shut down, and exit 0 on success.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the experiment server daemon.")
    Term.(const serve_main $ socket_arg
          $ tcp_arg ~doc:"Also listen on TCP HOST:PORT."
          $ jobs $ window $ queue $ deadline $ log_interval $ once)

(* fusion ---------------------------------------------------------------- *)

(* The macro-op fusion accounting on D16, one line per benchmark: baseline
   path length, dynamically fused pairs, and the fused op count.  Exits
   nonzero unless fusion strictly shortens the path on every benchmark
   given (the CI advisory gate). *)
let fusion_main benches =
  let module Fusion = Repro_isavar.Fusion in
  let module Suite = Repro_workloads.Suite in
  let benches =
    match benches with
    | [] -> List.map (fun (b : Suite.benchmark) -> b.Suite.name) Suite.all
    | bs -> bs
  in
  let t = Repro_core.Target.d16 in
  let ok = ref true in
  List.iter
    (fun bench ->
      match
        try Some (Suite.find bench).Repro_workloads.Suite.source
        with Not_found -> None
      with
      | None ->
        prerr_endline ("unknown benchmark " ^ bench);
        ok := false
      | Some source ->
        let img, r = Repro_harness.Compile.compile_and_run ~trace:true t source in
        let plan = Fusion.plan Fusion.default_rules img in
        let c = Fusion.direct plan r in
        let ops = Fusion.dynamic_ops c in
        Printf.printf "%-12s path=%9d fused=%8d ops=%9d (%.1f%% of baseline)\n%!"
          bench c.Fusion.ic c.Fusion.fused ops
          (100. *. float_of_int ops /. float_of_int c.Fusion.ic);
        if ops >= c.Fusion.ic then begin
          Printf.eprintf "%s: fused path is not strictly shorter\n" bench;
          ok := false
        end)
    benches;
  if !ok then 0 else 1

let fusion_cmd =
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCH"
          ~doc:"Suite benchmarks to check (default: the whole suite).")
  in
  Cmd.v
    (Cmd.info "fusion"
       ~doc:
         "Report macro-op fusion path-length savings on D16; fail unless \
          strictly positive on every benchmark.")
    Term.(const fusion_main $ benches)

(* ----------------------------------------------------------------------- *)

let group =
  Cmd.group
    (Cmd.info "d16c" ~doc:"mini-C compiler, simulator and experiment server for D16/DLXe")
    ~default:run_term
    [ Cmd.v (Cmd.info "run" ~doc:"Compile and run (the default command).") run_term;
      serve_cmd; client_cmd; fusion_cmd ]

let () =
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok n) -> n
    | Ok _ -> 0
    | Error _ -> 124)
