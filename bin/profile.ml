(* Hot-instruction profiler: execution counts per static instruction, with
   the containing function, for any suite benchmark on any target.

   Usage: dune exec bin/profile.exe -- [benchmark] [target] [top-n]
   Defaults: pi d16 20                                                  *)

module Link = Repro_link.Link
module Machine = Repro_sim.Machine
module Insn = Repro_core.Insn

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "pi" in
  let target_name = if Array.length Sys.argv > 2 then Sys.argv.(2) else "d16" in
  let top_n =
    if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 20
  in
  let target =
    match Repro_core.Target.of_name target_name with
    | Ok t -> t
    | Error msg ->
      prerr_endline msg;
      exit 1
  in
  (* The compile+simulate is the expensive part; the whole profile (header
     stats and sorted hot rows) is persisted in the run cache. *)
  let key =
    Repro_harness.Diskcache.key
      [
        "profile"; bench;
        Repro_harness.Runs.bench_fingerprint bench;
        Repro_core.Target.describe target;
        Repro_harness.Runs.knobs_descr;
      ]
  in
  let (header : string), (rows : (int * int * string * string) list) =
    Repro_harness.Diskcache.memo key (fun () ->
        let b = Repro_workloads.Suite.find bench in
        let img = Repro_harness.Compile.compile target b.source in
        let counts = Array.make (Array.length img.Link.insns) 0 in
        let on_insn ~iaddr ~dinfo:_ =
          let i = Link.index_at img iaddr in
          counts.(i) <- counts.(i) + 1
        in
        let r = Machine.run ~trace:false ~on_insn img in
        let funcs =
          Hashtbl.fold (fun s a acc -> (a, s) :: acc) img.Link.symbols []
          |> List.sort compare
        in
        let fn_of addr =
          List.fold_left
            (fun acc (a, s) -> if a <= addr then s else acc)
            "?" funcs
        in
        let hot = ref [] in
        Array.iteri
          (fun i n ->
            if n > 0 then
              hot := (n, img.Link.addr_of.(i), img.Link.insns.(i)) :: !hot)
          counts;
        let sorted =
          List.sort (fun (a, _, _) (b, _, _) -> compare b a) !hot
        in
        let header =
          Printf.sprintf
            "%s on %s: path=%d loads=%d stores=%d interlocks=%d size=%dB"
            bench target.Repro_core.Target.name r.Machine.ic r.Machine.loads
            r.Machine.stores r.Machine.interlocks (Link.size_bytes img)
        in
        ( header,
          List.map
            (fun (n, addr, insn) ->
              (n, addr, Insn.to_string insn, fn_of addr))
            sorted ))
  in
  Printf.printf "%s\n\n" header;
  Printf.printf "%8s  %-8s  %-30s %s\n" "count" "addr" "instruction" "function";
  List.iteri
    (fun k (n, addr, insn, fn) ->
      if k < top_n then Printf.printf "%8d  0x%06x  %-30s %s\n" n addr insn fn)
    rows
