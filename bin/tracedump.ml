(* tracedump: print, filter, and summarize compressed instruction traces.

   Input is either a stored .trc file or a (benchmark, target) pair — the
   latter goes through the harness trace store, capturing on a cold miss.

   Usage:
     dune exec bin/tracedump.exe -- (--bench NAME [TARGET] | FILE.trc)
       [--summary] [--chunks] [--dump N] [--from PC] [--to PC]
       [--loads] [--stores] [--working-set] [--traffic] [--grid] [--cpi]
       [--fused] [--jobs N]

   With no mode flags, prints the summary.  --working-set, --traffic,
   --grid, --cpi and --fused replay chunk-parallel over --jobs domains
   (--working-set merges order-free counters; the rest run Replay's
   unified automaton with exact per-chunk reconciliation).  --cpi and
   --fused need --bench (the pipeline model reads the image's
   instruction descriptors).  --fused runs the whole cross product —
   bus widths x the standard cache grid x the standard pipeline sweep —
   from one decode of the trace (Replay.Fused) and prints every
   section.                                                              *)

module Target = Repro_core.Target
module Runs = Repro_harness.Runs
module Pool = Repro_harness.Pool
module Cli = Repro_util.Cli
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay
module Reader = Repro_trace.Trace.Reader

let usage =
  "tracedump (--bench NAME [TARGET] | FILE.trc) [--summary] [--chunks]\n\
  \       [--dump N] [--from PC] [--to PC] [--loads] [--stores]\n\
  \       [--working-set] [--traffic] [--grid] [--cpi] [--fused] [--jobs N]"

let int_arg cli name ~default =
  match Cli.flag_arg cli name with
  | None -> default
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None ->
      Printf.eprintf "%s: not a number: %s\n" name s;
      exit 1)

let summary rd =
  Printf.printf
    "trace: %d records, %d chunks, %d bytes (%.2f bytes/record), insn %d bytes\n"
    (Reader.n_records rd) (Reader.n_chunks rd) (Reader.byte_size rd)
    (float_of_int (Reader.byte_size rd)
    /. float_of_int (max 1 (Reader.n_records rd)))
    (Reader.insn_bytes rd)

let chunks rd =
  print_endline "chunk  records      start_pc    offset    bytes";
  for i = 0 to Reader.n_chunks rd - 1 do
    let c = Reader.chunk rd i in
    Printf.printf "%5d  %7d    0x%08x  %8d  %7d\n" i c.Reader.n_records
      c.Reader.start_pc c.Reader.byte_offset c.Reader.byte_length
  done

let dump rd ~limit ~from_pc ~to_pc ~loads_only ~stores_only =
  let printed = ref 0 in
  (try
     Reader.iter rd (fun ~pc ~dinfo ->
         if !printed >= limit then raise Exit;
         (* Bit 0 marks a wide instruction on mixed-width targets. *)
         let wide = pc land 1 <> 0 in
         let pc = pc land lnot 1 in
         if pc >= from_pc && pc <= to_pc then begin
           let daccess =
             match Repro_sim.Machine.decode_daccess dinfo with
             | None -> None
             | Some (is_write, _, _) as d ->
               if (loads_only && is_write) || (stores_only && not is_write)
               then None
               else d
           in
           let wanted = (not (loads_only || stores_only)) || daccess <> None in
           if wanted then begin
             incr printed;
             let w = if wide then " (wide)" else "" in
             match daccess with
             | Some (is_write, addr, bytes) ->
               Printf.printf "%08x  %s %db @ %08x%s\n" pc
                 (if is_write then "store" else "load ")
                 bytes addr w
             | None -> Printf.printf "%08x%s\n" pc w
           end
         end)
   with Exit -> ());
  Printf.printf "(%d records printed)\n" !printed

(* Working set: distinct 32-byte instruction and data blocks, per-chunk
   sets unioned — set union is order-free, so chunks fan out in
   parallel. *)
let working_set rd ~jobs =
  let granule = 32 in
  let per_chunk i =
    let iset = Hashtbl.create 1024 in
    let dset = Hashtbl.create 1024 in
    Reader.iter_chunk rd i (fun ~pc ~dinfo ->
        Hashtbl.replace iset (pc / granule) ();
        if dinfo <> 0 then Hashtbl.replace dset (dinfo lsr 5 / granule) ());
    (iset, dset)
  in
  let sets =
    Pool.map ~jobs per_chunk (List.init (Reader.n_chunks rd) Fun.id)
  in
  let iall = Hashtbl.create 4096 in
  let dall = Hashtbl.create 4096 in
  List.iter
    (fun (iset, dset) ->
      Hashtbl.iter (fun k () -> Hashtbl.replace iall k ()) iset;
      Hashtbl.iter (fun k () -> Hashtbl.replace dall k ()) dset)
    sets;
  Printf.printf
    "working set (%d-byte blocks): insn %d blocks (%d bytes), data %d blocks (%d bytes)\n"
    granule (Hashtbl.length iall)
    (granule * Hashtbl.length iall)
    (Hashtbl.length dall)
    (granule * Hashtbl.length dall)

let traffic_buses = [ 2; 4; 8; 16 ]

let print_traffic rd buses counts =
  print_endline "bus   irequests   drequests   requests/insn";
  List.iter2
    (fun bus (nc : Repro_sim.Memsys.nocache) ->
      Printf.printf "%3d  %10d  %10d   %13.3f\n" bus nc.irequests nc.drequests
        (float_of_int (nc.irequests + nc.drequests)
        /. float_of_int (max 1 (Reader.n_records rd))))
    buses counts

let print_grid geometries results =
  print_endline "  size  block  sub   imiss%   dmiss%   fetch words";
  List.iter2
    (fun (size, block, sub) (c : Repro_sim.Memsys.cached) ->
      let pct (s : Repro_sim.Memsys.cache_stats) =
        100.0 *. float_of_int s.misses /. float_of_int (max 1 s.accesses)
      in
      let dacc = c.dcache_read.accesses + c.dcache_write.accesses in
      let dmiss = c.dcache_read.misses + c.dcache_write.misses in
      Printf.printf "%6d  %5d  %3d  %6.3f  %6.3f  %12d\n" size block sub
        (pct c.icache)
        (100.0 *. float_of_int dmiss /. float_of_int (max 1 dacc))
        c.icache.words_transferred)
    geometries results

let print_cpi cfgs results =
  print_endline
    "config                                    cpi      fetch       load  \
    \      fp      dmiss      wmiss";
  List.iter2
    (fun cfg (r : Repro_uarch.Pipeline.result) ->
      let s = r.Repro_uarch.Pipeline.stalls in
      Printf.printf "%-36s  %7.3f  %9d  %9d  %9d  %9d  %9d\n"
        (Repro_uarch.Uconfig.describe cfg)
        (Repro_uarch.Stalls.cpi s) s.Repro_uarch.Stalls.fetch_stalls
        s.Repro_uarch.Stalls.load_interlocks s.Repro_uarch.Stalls.fp_interlocks
        s.Repro_uarch.Stalls.dmiss_stalls s.Repro_uarch.Stalls.wmiss_stalls)
    cfgs results

(* Fetch-traffic histogram: memory requests of the cacheless machine at
   each bus width, chunk-parallel with exact boundary merge. *)
let traffic rd ~jobs =
  print_traffic rd traffic_buses
    (List.map
       (fun bus ->
         Replay.nocache ~map:(fun f xs -> Pool.map ~jobs f xs) rd ~bus_bytes:bus)
       traffic_buses)

let grid_specs geometries =
  List.map
    (fun (size, block, sub) ->
      let cfg = Repro_sim.Memsys.cache_config ~size ~block ~sub in
      { Replay.Grid.icache = cfg; dcache = cfg })
    geometries

(* Miss rates for the standard cache grid, every geometry fed by one
   decode of the trace ([Replay.Grid]): chunks fan out across domains,
   per-chunk automaton states reconcile exactly at the merge. *)
let grid rd ~jobs =
  let geometries = Runs.standard_grid in
  let results =
    Replay.Grid.run
      ~map:(fun f xs -> Pool.map ~jobs f xs)
      rd (grid_specs geometries)
  in
  print_grid geometries results

(* Per-configuration CPI and stall breakdown over the standard pipeline
   sweep, all configurations fed by one decode of the trace
   ([Replay.Upipelines]): a shared scoreboard automaton plus memory
   automatons deduplicated by behaviour class, chunk-parallel with exact
   convergence-checked reconciliation.  Needs the image for the
   instruction descriptors, so it is only available with --bench. *)
let cpi rd img ~jobs =
  let cfgs = Runs.standard_uarch_configs in
  let results =
    Replay.Upipelines.run ~map:(fun f xs -> Pool.map ~jobs f xs) rd cfgs img
  in
  print_cpi cfgs results

(* The whole cross product from one decode ([Replay.Fused]): bus widths,
   the standard cache grid, and the standard pipeline sweep run their
   automatons over the same decoded chunks simultaneously. *)
let fused rd img ~jobs =
  let geometries = Runs.standard_grid in
  let cfgs = Runs.standard_uarch_configs in
  let r =
    Replay.Fused.run
      ~map:(fun f xs -> Pool.map ~jobs f xs)
      ~img rd
      {
        Replay.Fused.buses = traffic_buses;
        caches = grid_specs geometries;
        pipelines = cfgs;
      }
  in
  print_traffic rd traffic_buses r.Replay.Fused.nocaches;
  print_grid geometries r.Replay.Fused.cacheds;
  print_cpi cfgs r.Replay.Fused.pipes

let () =
  let cli =
    Cli.parse
      ~flags_with_arg:[ "--bench"; "--dump"; "--from"; "--to"; "--jobs" ]
      ~flags:
        [ "--summary"; "--chunks"; "--loads"; "--stores"; "--working-set";
          "--traffic"; "--grid"; "--cpi"; "--fused" ]
      ~usage Sys.argv
  in
  let rd, img =
    match (Cli.flag_arg cli "--bench", Cli.positionals cli) with
    | Some bench, rest ->
      let target =
        match rest with
        | [] -> Target.d16
        | [ name ] -> (
          match Target.of_name name with
          | Ok t -> t
          | Error msg ->
            prerr_endline msg;
            exit 1)
        | _ -> Cli.usage_exit cli
      in
      (Runs.trace_reader bench target, Some (Runs.image bench target))
    | None, [ file ] -> (
      match Reader.open_file file with
      | Ok rd -> (rd, None)
      | Error e ->
        prerr_endline ("tracedump: " ^ e);
        exit 1)
    | None, _ -> Cli.usage_exit cli
  in
  let jobs = int_arg cli "--jobs" ~default:(Pool.default_jobs ()) in
  let any_mode =
    List.exists (Cli.flag cli)
      [ "--chunks"; "--working-set"; "--traffic"; "--grid"; "--cpi";
        "--fused"; "--loads"; "--stores" ]
    || Cli.flag_arg cli "--dump" <> None
  in
  if Cli.flag cli "--summary" || not any_mode then summary rd;
  if Cli.flag cli "--chunks" then chunks rd;
  if
    Cli.flag_arg cli "--dump" <> None
    || Cli.flag cli "--loads" || Cli.flag cli "--stores"
  then
    dump rd
      ~limit:(int_arg cli "--dump" ~default:max_int)
      ~from_pc:(int_arg cli "--from" ~default:0)
      ~to_pc:(int_arg cli "--to" ~default:max_int)
      ~loads_only:(Cli.flag cli "--loads")
      ~stores_only:(Cli.flag cli "--stores");
  if Cli.flag cli "--working-set" then working_set rd ~jobs;
  if Cli.flag cli "--traffic" then traffic rd ~jobs;
  if Cli.flag cli "--grid" then grid rd ~jobs;
  (if Cli.flag cli "--cpi" then
     match img with
     | Some img -> cpi rd img ~jobs
     | None ->
       prerr_endline
         "tracedump: --cpi needs the program image; use --bench NAME [TARGET]";
       exit 1);
  if Cli.flag cli "--fused" then
    match img with
    | Some img -> fused rd img ~jobs
    | None ->
      prerr_endline
        "tracedump: --fused needs the program image; use --bench NAME [TARGET]";
      exit 1
