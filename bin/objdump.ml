(* objdump: disassemble a linked image — addresses, encodings, decoded
   instructions, symbols, literal pools, and section summary — from either
   a suite benchmark or a mini-C file.

   Usage: dune exec bin/objdump.exe -- (--bench NAME | FILE) [target]
   Default target: d16.                                                 *)

module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Link = Repro_link.Link
module Cli = Repro_util.Cli

(* Encoding column, fixed width so the mnemonics line up: a narrow
   halfword, a wide pair (mixed targets), or a 32-bit word. *)
let encoding_for (t : Target.t) i =
  match t.Target.isa with
  | Target.D16 when t.Target.mixed -> (
    match Repro_core.D16m.encode i with
    | h0, None -> Printf.sprintf "%04x      " h0
    | h0, Some h1 -> Printf.sprintf "%04x %04x " h0 h1)
  | Target.D16 ->
    Printf.sprintf "%04x      "
      (if t.Target.ext_cmpeqi then Repro_core.D16x.encode i
       else Repro_core.D16.encode i)
  | Target.Dlxe -> Printf.sprintf "%08x  " (Repro_core.Dlxe.encode i)

let () =
  let cli =
    Cli.parse ~flags_with_arg:[ "--bench" ]
      ~usage:"objdump (--bench NAME | FILE) [d16|d16x|dlxe|...]" Sys.argv
  in
  let source, rest =
    match (Cli.flag_arg cli "--bench", Cli.positionals cli) with
    | Some name, rest ->
      ((Repro_workloads.Suite.find name).Repro_workloads.Suite.source, rest)
    | None, file :: rest when Sys.file_exists file ->
      (In_channel.with_open_text file In_channel.input_all, rest)
    | None, _ -> Cli.usage_exit cli
  in
  let target =
    match rest with
    | [] -> Target.d16
    | [ name ] -> (
      match Target.of_name name with
      | Ok t -> t
      | Error msg ->
        prerr_endline msg;
        exit 1)
    | _ -> Cli.usage_exit cli
  in
  let img = Repro_harness.Compile.compile target source in
  Printf.printf
    "target %s: text 0x%x..0x%x (%d bytes), data 0x%x (+%d bytes), entry 0x%x\n\n"
    target.Target.name img.Link.text_base
    (img.Link.text_base + img.Link.text_bytes)
    img.Link.text_bytes img.Link.data_base img.Link.data_bytes
    img.Link.addr_of.(img.Link.entry_index);
  (* Function starts, by address. *)
  let fn_at = Hashtbl.create 32 in
  Hashtbl.iter
    (fun s a -> if a < img.Link.data_base then Hashtbl.replace fn_at a s)
    img.Link.symbols;
  (* Pool words live in text but are not instructions: recover them from
     the gaps between consecutive instructions. *)
  let next_insn_addr = Hashtbl.create 64 in
  Array.iter (fun a -> Hashtbl.replace next_insn_addr a ()) img.Link.addr_of;
  Array.iteri
    (fun i insn ->
      let addr = img.Link.addr_of.(i) in
      (* Pool gap before a function entry. *)
      (match Hashtbl.find_opt fn_at addr with
      | Some s -> Printf.printf "\n%08x <%s>:\n" addr s
      | None -> ());
      Printf.printf "%08x:  %s %s\n" addr (encoding_for target insn)
        (Insn.to_string insn))
    img.Link.insns;
  Printf.printf "\nsymbols:\n";
  Hashtbl.fold (fun s a acc -> (a, s) :: acc) img.Link.symbols []
  |> List.sort compare
  |> List.iter (fun (a, s) -> Printf.printf "  %08x  %s\n" a s)
