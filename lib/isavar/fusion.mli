(** Macro-op fusion: a predecode-time pass pairing adjacent D16
    instructions so the pair issues as one op.

    The paper's 16-bit ISA pays for density with path length — two-address
    ALU ops, compare-to-r0 sequences, literal-pool moves.  Macro-op fusion
    recovers part of that gap in the decoder instead of the ISA: a small
    typed rule table recognizes adjacent pairs at predecode time
    (compare + conditional branch, constant materialization + ALU,
    address bump + load, pool load + move) and the pipeline issues each
    matched pair as a single internal op.

    Accounting follows the fusion literature: the {e dynamic op count}
    (path length) drops by one per fused pair, while instruction-fetch
    traffic is unchanged — both halves are still fetched, so density
    numbers and cache/bus behaviour are exactly the baseline's.  Memory
    stalls therefore come from the ordinary replay engines; only the
    issue clock and the interlock bubbles are recomputed here, on a
    {!Repro_uarch.Scoreboard} fed with merged descriptors.

    A pair fuses only {e dynamically}: the first half must execute with
    the textual successor as the next executed record (a taken branch or
    a delay-slot exit between the halves leaves both unfused), and fusion
    is greedy and non-overlapping.  With an empty rule table every engine
    below is byte-identical to the baseline scoreboard accounting — the
    differential suite gates on it. *)

type rule = { name : string; matches : Repro_core.Insn.t -> Repro_core.Insn.t -> bool }
(** A fusion rule: does the adjacent pair [(i1, i2)] fuse? *)

val cmp_branch : rule
(** [cmp]/[cmpi] writing r0, then [bz]/[bnz] testing r0. *)

val mvi_alu : rule
(** [mvi rt] then a register ALU op whose second operand is [rt]. *)

val addr_load : rule
(** [addi rt, _, k] then a load (int or FP) based on [rt]. *)

val ldc_mv : rule
(** Literal-pool load to r0 then [mv _, r0]. *)

val default_rules : rule list
(** The shipped table, in match-priority order:
    [cmp_branch; mvi_alu; addr_load; ldc_mv]. *)

val merge : Repro_uarch.Predecode.desc -> Repro_uarch.Predecode.desc ->
  Repro_uarch.Predecode.desc
(** The fused pair's scoreboard descriptor: reads are the union of the
    halves' sources minus the first half's destination (forwarded inside
    the op); the write is the pair's architectural result — the
    higher-latency half decides readiness. *)

type plan
(** The static half of the pass for one image: per instruction index,
    the first rule matching [(i, i+1)] and the pair's merged descriptor. *)

val plan : rule list -> Repro_link.Link.image -> plan
(** Pattern-match every adjacent pair once.  Rules apply in list order
    (first match wins); an empty list yields a plan that never fuses. *)

val static_pairs : plan -> int
(** Textually-adjacent matches in the image (static, not weighted by
    execution). *)

(** {1 Counters} *)

type counters = {
  ic : int;  (** Executed instructions (trace records). *)
  fused : int;  (** Dynamically fused pairs. *)
  rule_hits : int array;  (** Per rule, in rule-list order; sums to [fused]. *)
  interlock_clock : int;  (** Fused issue clock: dynamic ops + bubbles. *)
  load_interlocks : int;
  fp_interlocks : int;
}

val dynamic_ops : counters -> int
(** Ops issued: [ic - fused] — the fused path length. *)

(** {1 Engines}

    Three independent entry points over the same dynamic pairing,
    gated byte-equal by the differential suite. *)

type stream
(** Streaming engine state, fed from {!Repro_sim.Machine.run}'s
    [on_insn] callback. *)

val stream_start : plan -> stream

val stream_step : stream -> iaddr:int -> unit
(** Feed one executed instruction's (possibly wide-marked) address. *)

val stream_finish : stream -> counters
(** Flush the pairing buffer and read the totals. *)

val direct : plan -> Repro_sim.Machine.result -> counters
(** Over an in-memory trace from a traced {!Repro_sim.Machine.run}. *)

val replay : plan -> Repro_trace.Trace.Reader.t -> counters
(** Over a stored trace, through the shared chunk-decode cache
    ({!Repro_trace.Replay.Decoded}) — one decode feeds this and any
    concurrent memory-system replay of the same reader. *)

(** {1 Pricing} *)

val charge : counters -> Repro_uarch.Pipeline.result -> Repro_uarch.Stalls.t
(** Price a fused run under the configuration [base] was measured with:
    fusion leaves every memory-side stall bucket unchanged (both halves
    are still fetched), so the fused cycle count is the fused interlock
    clock plus [base]'s fetch/data stalls. *)
