module Insn = Repro_core.Insn
module Target = Repro_core.Target
module Link = Repro_link.Link
module Machine = Repro_sim.Machine
module Predecode = Repro_uarch.Predecode
module Scoreboard = Repro_uarch.Scoreboard
module Pipeline = Repro_uarch.Pipeline
module Stalls = Repro_uarch.Stalls
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay

(* Rules. ------------------------------------------------------------------- *)

type rule = { name : string; matches : Insn.t -> Insn.t -> bool }

let cmp_branch =
  {
    name = "cmp-branch";
    matches =
      (fun i1 i2 ->
        match (i1, i2) with
        | ( (Insn.Cmp (_, 0, _, _) | Insn.Cmpi (_, 0, _, _)),
            (Insn.Bz (0, _) | Insn.Bnz (0, _)) ) ->
          true
        | _ -> false);
  }

let mvi_alu =
  {
    name = "mvi-alu";
    matches =
      (fun i1 i2 ->
        match (i1, i2) with
        | Insn.Mvi (rt, _), Insn.Alu (_, _, _, rb) -> rb = rt
        | _ -> false);
  }

let addr_load =
  {
    name = "addr-load";
    matches =
      (fun i1 i2 ->
        match (i1, i2) with
        | ( Insn.Alui (Insn.Add, rt, _, _),
            (Insn.Load (_, _, base, _) | Insn.Fload (_, _, base, _)) ) ->
          base = rt
        | _ -> false);
  }

let ldc_mv =
  {
    name = "ldc-mv";
    matches =
      (fun i1 i2 ->
        match (i1, i2) with
        | Insn.Ldc (0, _), Insn.Mv (_, 0) -> true
        | _ -> false);
  }

let default_rules = [ cmp_branch; mvi_alu; addr_load; ldc_mv ]

(* Merged descriptors. ------------------------------------------------------ *)

let reads_dst (w : Predecode.write option) (r : Predecode.rreg) =
  match (w, r) with
  | Some { dst = Predecode.Wg g; _ }, Predecode.Rg g' -> g = g'
  | Some { dst = Predecode.Wf f; _ }, Predecode.Rf f' -> f = f'
  | Some { dst = Predecode.Wstatus; _ }, Predecode.Rstatus -> true
  | _ -> false

(* The fused pair issues as one op: it reads the union of the halves'
   sources minus anything the first half produces (forwarded inside the
   fused op), and its architectural result is the second half's
   destination, ready once the slower half is.  A latency-0 first write
   whose destination is not the pair's result leaves zero slack in the
   scoreboard either way, so dropping it is behaviour-preserving; the one
   lossy case (ldc-mv's pool scratch r0) is a register codegen never
   reads past the pair. *)
let merge (d1 : Predecode.desc) (d2 : Predecode.desc) =
  let forwarded =
    List.filter (fun r -> not (reads_dst d1.Predecode.write r)) d2.Predecode.reads
  in
  let reads =
    d1.Predecode.reads
    @ List.filter (fun r -> not (List.mem r d1.Predecode.reads)) forwarded
  in
  let write =
    match (d1.Predecode.write, d2.Predecode.write) with
    | None, w | w, None -> w
    | Some w1, Some w2 ->
      if w1.Predecode.latency > w2.Predecode.latency then
        Some
          {
            w2 with
            Predecode.latency = w1.Predecode.latency;
            cause = w1.Predecode.cause;
          }
      else Some w2
  in
  { Predecode.reads; write }

(* Plans. ------------------------------------------------------------------- *)

type plan = {
  img : Link.image;
  descs : Predecode.desc array;
  pair : int array;  (* per index: first matching rule, or -1 *)
  merged : Predecode.desc array;  (* where pair.(i) >= 0 *)
  rule_names : string array;
}

let plan rules (img : Link.image) =
  let insns = img.Link.insns in
  let n = Array.length insns in
  let descs = Predecode.table img in
  let rules = Array.of_list rules in
  let pair = Array.make (max n 1) (-1) in
  let none = { Predecode.reads = []; write = None } in
  let merged = Array.make (max n 1) none in
  for i = 0 to n - 2 do
    let j = ref 0 in
    while
      !j < Array.length rules
      && not (rules.(!j).matches insns.(i) insns.(i + 1))
    do
      incr j
    done;
    if !j < Array.length rules then begin
      pair.(i) <- !j;
      merged.(i) <- merge descs.(i) descs.(i + 1)
    end
  done;
  { img; descs; pair; merged; rule_names = Array.map (fun r -> r.name) rules }

let static_pairs p =
  Array.fold_left (fun acc r -> if r >= 0 then acc + 1 else acc) 0 p.pair

(* The dynamic engine. ------------------------------------------------------ *)

type counters = {
  ic : int;
  fused : int;
  rule_hits : int array;
  interlock_clock : int;
  load_interlocks : int;
  fp_interlocks : int;
}

let dynamic_ops c = c.ic - c.fused

type stream = {
  plan : plan;
  sb : Scoreboard.t;
  mutable pending : int;
  mutable ic : int;
  mutable fused : int;
  hits : int array;
}

let stream_start plan =
  let t = plan.img.Link.target in
  {
    plan;
    sb = Scoreboard.create ~n_gpr:t.Target.n_gpr ~n_fpr:t.Target.n_fpr;
    pending = -1;
    ic = 0;
    fused = 0;
    hits = Array.make (Array.length plan.rule_names) 0;
  }

let flush st =
  if st.pending >= 0 then begin
    Scoreboard.step st.sb st.plan.descs.(st.pending);
    st.pending <- -1
  end

(* A pair fuses only when its first half executes and the next executed
   record is the textual successor — a taken branch or delay-slot exit
   between the halves leaves both unfused.  Fusion is greedy and
   non-overlapping: the record after a fused pair starts the next
   candidate. *)
let step_index st idx =
  st.ic <- st.ic + 1;
  if st.pending >= 0 && idx = st.pending + 1 then begin
    let r = st.plan.pair.(st.pending) in
    Scoreboard.step st.sb st.plan.merged.(st.pending);
    st.fused <- st.fused + 1;
    st.hits.(r) <- st.hits.(r) + 1;
    st.pending <- -1
  end
  else begin
    flush st;
    if st.plan.pair.(idx) >= 0 then st.pending <- idx
    else Scoreboard.step st.sb st.plan.descs.(idx)
  end

let stream_step st ~iaddr =
  step_index st (Link.index_at st.plan.img (iaddr land lnot 1))

let stream_finish st =
  flush st;
  {
    ic = st.ic;
    fused = st.fused;
    rule_hits = Array.copy st.hits;
    interlock_clock = Scoreboard.clock st.sb;
    load_interlocks = Scoreboard.load_stalls st.sb;
    fp_interlocks = Scoreboard.fp_stalls st.sb;
  }

let direct plan (r : Machine.result) =
  match r.Machine.trace with
  | None -> invalid_arg "Fusion.direct: result has no trace"
  | Some t ->
    let st = stream_start plan in
    Array.iter (fun iaddr -> stream_step st ~iaddr) t.Machine.iaddr;
    stream_finish st

let replay plan rd =
  let st = stream_start plan in
  for i = 0 to Trace.Reader.n_chunks rd - 1 do
    let d = Replay.Decoded.get rd i in
    let pcs = d.Replay.Decoded.pcs in
    for k = 0 to Array.length pcs - 1 do
      step_index st
        (Link.index_at st.plan.img (Array.unsafe_get pcs k land lnot 1))
    done
  done;
  stream_finish st

(* Pricing. ----------------------------------------------------------------- *)

let charge (c : counters) (base : Pipeline.result) =
  let b = base.Pipeline.stalls in
  Stalls.of_parts ~ic:(dynamic_ops c) ~interlock_clock:c.interlock_clock
    ~load_interlocks:c.load_interlocks ~fp_interlocks:c.fp_interlocks
    ~fetch_stalls:b.Stalls.fetch_stalls ~dmiss_stalls:b.Stalls.dmiss_stalls
    ~wmiss_stalls:b.Stalls.wmiss_stalls
