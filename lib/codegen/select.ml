module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Regs = Repro_core.Regs
module Ir = Repro_ir.Ir
module Iset = Repro_ir.Iset
module Liveness = Repro_ir.Liveness
module Regalloc = Repro_ir.Regalloc

let fail fmt = Printf.ksprintf failwith fmt

(* Argument locations shared by caller and callee. ------------------------- *)

type arg_loc = Reg_i of int | Reg_f of int | Out_i of int | Out_f of int

(* Every stack-passed argument gets an 8-byte cell, so the layout does not
   depend on argument types beyond their order. *)
let arg_locations (args : Ir.arg list) =
  let ni = ref 0 and nf = ref 0 and out = ref 0 in
  let locs =
    List.map
      (fun a ->
        match a with
        | Ir.Aint _ ->
          if !ni < Regs.n_arg_gpr then begin
            let r = Regs.arg_gpr !ni in
            incr ni;
            Reg_i r
          end
          else begin
            let o = !out in
            out := o + 8;
            Out_i o
          end
        | Ir.Afloat _ ->
          if !nf < Regs.n_arg_fpr then begin
            let r = Regs.arg_fpr !nf in
            incr nf;
            Reg_f r
          end
          else begin
            let o = !out in
            out := o + 8;
            Out_f o
          end)
      args
  in
  (locs, !out)

(* Frame layout -------------------------------------------------------------- *)

type frame = {
  size : int;
  slot_off : (int, int) Hashtbl.t;
  ra_off : int option;
  callee_gpr_offs : (int * int) list;
  callee_fpr_offs : (int * int) list;
  scratch_off : int;  (* 8-byte cell for parallel-move cycle breaking *)
}

let align_up v a = (v + a - 1) / a * a

let build_frame (f : Ir.func) (alloc : Regalloc.t) ~is_leaf =
  let out_area =
    let worst = ref 0 in
    Ir.iter_all_ins f (fun i ->
        match i with
        | Ir.Call (_, _, args) ->
          let _, out = arg_locations args in
          worst := max !worst out
        | _ -> ());
    !worst
  in
  let off = ref out_area in
  let scratch_off = align_up !off 8 in
  off := scratch_off + 8;
  let ra_off =
    if is_leaf then None
    else begin
      let o = !off in
      off := o + 4;
      Some o
    end
  in
  let callee_gpr_offs =
    List.map
      (fun r ->
        let o = !off in
        off := o + 4;
        (r, o))
      alloc.Regalloc.used_callee_gpr
  in
  let callee_fpr_offs =
    List.map
      (fun r ->
        let o = align_up !off 8 in
        off := o + 8;
        (r, o))
      alloc.Regalloc.used_callee_fpr
  in
  let slot_off = Hashtbl.create 16 in
  let slots =
    List.sort
      (fun (a : Ir.slot) (b : Ir.slot) -> compare a.size b.size)
      f.slots
  in
  List.iter
    (fun (s : Ir.slot) ->
      let o = align_up !off s.align in
      off := o + s.size;
      Hashtbl.replace slot_off s.slot_id o)
    slots;
  {
    size = align_up !off 8;
    slot_off;
    ra_off;
    callee_gpr_offs;
    callee_fpr_offs;
    scratch_off;
  }

(* Parallel move resolution --------------------------------------------------- *)

let scratch_marker = -1000

(* [moves] are (dst, src) with dst <> src, all in one register class.
   [save]/[restore] break cycles through a scratch location. *)
let parallel_moves ~emit ~save ~restore moves =
  let rec loop pending =
    match pending with
    | [] -> ()
    | _ ->
      let is_blocked (d, _) =
        List.exists (fun (_, s) -> s = d) pending
      in
      let ready, blocked = List.partition (fun m -> not (is_blocked m)) pending in
      (match ready with
      | [] -> (
        match blocked with
        | (d0, s0) :: rest ->
          save s0;
          loop (rest @ [ (d0, scratch_marker) ])
        | [] -> ())
      | _ ->
        List.iter
          (fun (d, s) -> if s = scratch_marker then restore d else emit (d, s))
          ready;
        loop blocked)
  in
  loop (List.filter (fun (d, s) -> d <> s) moves)

(* Selection ------------------------------------------------------------------ *)

let select target (alloc : Regalloc.t) (f : Ir.func) =
  let is_d16 = target.Target.isa = Target.D16 in
  let items = ref [] in
  let emit i = items := i :: !items in
  let op i = emit (Asm.Op i) in
  let regof t =
    match Hashtbl.find_opt alloc.Regalloc.int_assign t with
    | Some r -> r
    | None -> fail "%s: temp t%d has no register" f.Ir.name t
  in
  let fregof t =
    match Hashtbl.find_opt alloc.Regalloc.float_assign t with
    | Some r -> r
    | None -> fail "%s: ftemp f%d has no register" f.Ir.name t
  in
  let is_leaf =
    let found = ref false in
    Ir.iter_all_ins f (fun i ->
        match i with Ir.Call _ -> found := true | _ -> ());
    not !found
  in
  let frame = build_frame f alloc ~is_leaf in
  let slot_addr id extra = Hashtbl.find frame.slot_off id + extra in

  (* Load a constant into a register.  On D16 wide constants go through the
     literal pool (Lc); a shifted 9-bit form is cheaper when available.
     Pool-less targets (DLXe, the mixed-width d16m) synthesize with
     mvhi/ori. *)
  let emit_const rd k =
    if Target.mvi_fits target k then op (Insn.Mvi (rd, k))
    else if Target.has_ldc target then begin
      let rec strip v s = if v land 1 = 0 && v <> 0 then strip (v asr 1) (s + 1) else (v, s) in
      let m, s = strip k 0 in
      if s > 0 && Target.mvi_fits target m then begin
        op (Insn.Mvi (rd, m));
        op (Insn.Alui (Insn.Shl, rd, rd, s))
      end
      else emit (Asm.Lc (rd, k))
    end
    else begin
      let hi = (k lsr 16) land 0xFFFF in
      let lo = k land 0xFFFF in
      op (Insn.Mvhi (rd, hi));
      if lo <> 0 then op (Insn.Alui (Insn.Or, rd, rd, lo))
    end
  in

  (* rd <- rs + off, where rd may equal rs. *)
  let emit_addi rd rs off =
    if off = 0 then begin
      if rd <> rs then op (Insn.Mv (rd, rs))
    end
    else if Target.alui_fits target Insn.Add off then begin
      if target.Target.three_address || rd = rs then
        op (Insn.Alui (Insn.Add, rd, rs, off))
      else begin
        op (Insn.Mv (rd, rs));
        op (Insn.Alui (Insn.Add, rd, rd, off))
      end
    end
    else if off < 0 && Target.alui_fits target Insn.Sub (-off) && rd = rs then
      op (Insn.Alui (Insn.Sub, rd, rd, -off))
    else if rd <> rs then begin
      emit_const rd off;
      if target.Target.three_address then op (Insn.Alu (Insn.Add, rd, rd, rs))
      else op (Insn.Alu (Insn.Add, rd, rd, rs))
    end
    else if is_d16 then begin
      (* rd = rs and the offset is wide: use the assembler temporary. *)
      emit_const 0 off;
      op (Insn.Alu (Insn.Add, rd, rd, 0))
    end
    else fail "%s: address computation out of range (off=%d)" f.Ir.name off
  in

  (* Memory access at sp+off, legalizing the displacement. *)
  let emit_sp_mem ~word mk off =
    if Target.mem_offset_fits target ~word off then mk Regs.sp off
    else if is_d16 then begin
      emit_const 0 off;
      op (Insn.Alu (Insn.Add, 0, 0, Regs.sp));
      mk 0 0
    end
    else fail "%s: frame offset %d out of range" f.Ir.name off
  in
  let load_word rd base off = op (Insn.Load (Insn.Lw, rd, base, off)) in
  let store_word rs base off = op (Insn.Store (Insn.Sw, rs, base, off)) in
  let fload fd base off = op (Insn.Fload (Insn.Df, fd, base, off)) in
  let fstore fs base off = op (Insn.Fstore (Insn.Df, fs, base, off)) in

  let gpr_moves moves =
    if is_d16 then
      parallel_moves
        ~emit:(fun (d, s) -> op (Insn.Mv (d, s)))
        ~save:(fun s -> op (Insn.Mv (0, s)))
        ~restore:(fun d -> op (Insn.Mv (d, 0)))
        moves
    else
      parallel_moves
        ~emit:(fun (d, s) -> op (Insn.Mv (d, s)))
        ~save:(fun s ->
          emit_sp_mem ~word:true (fun b o -> store_word s b o) frame.scratch_off)
        ~restore:(fun d ->
          emit_sp_mem ~word:true (fun b o -> load_word d b o) frame.scratch_off)
        moves
  in
  let fpr_moves moves =
    parallel_moves
      ~emit:(fun (d, s) -> op (Insn.Fmv (Insn.Df, d, s)))
      ~save:(fun s ->
        emit_sp_mem ~word:true (fun b o -> fstore s b o) frame.scratch_off)
      ~restore:(fun d ->
        emit_sp_mem ~word:true (fun b o -> fload d b o) frame.scratch_off)
      moves
  in

  let cmp_dest = if is_d16 then 0 else -2 in
  (* -2 is replaced by the real destination on three-address targets. *)

  let emit_setcmp c rd a b =
    match b with
    | Ir.Oimm k ->
      (* Only DLXe and the D16x extension reach here (legalization). *)
      if is_d16 then op (Insn.Cmpi (c, 0, regof a, k))
      else op (Insn.Cmpi (c, rd, regof a, k))
    | Ir.Otemp bt ->
      if is_d16 then op (Insn.Cmp (c, 0, regof a, regof bt))
      else op (Insn.Cmp (c, rd, regof a, regof bt))
  in
  ignore cmp_dest;

  let addr_mem ~word mk (a : Ir.addr) =
    match a with
    | Ir.Abase (t, off) -> mk (regof t) off
    | Ir.Aslot (id, extra) -> emit_sp_mem ~word mk (slot_addr id extra)
    | Ir.Aglobal _ -> fail "%s: global address survived legalization" f.Ir.name
  in

  let alu_of : Ir.binop -> Insn.alu = function
    | Add -> Add
    | Sub -> Sub
    | And -> And
    | Or -> Or
    | Xor -> Xor
    | Shl -> Shl
    | Shr -> Shr
    | Shra -> Shra
    | Mul | Div | Mod -> fail "%s: mul/div survived lowering" f.Ir.name
  in

  let emit_ins (i : Ir.ins) =
    match i with
    | Ir.Li (d, k) -> emit_const (regof d) k
    | Ir.Mov (d, s) -> if regof d <> regof s then op (Insn.Mv (regof d, regof s))
    | Ir.Bin (bop, d, a, Ir.Otemp b) ->
      op (Insn.Alu (alu_of bop, regof d, regof a, regof b))
    | Ir.Bin (bop, d, a, Ir.Oimm k) ->
      op (Insn.Alui (alu_of bop, regof d, regof a, k))
    | Ir.Not (d, s) ->
      if is_d16 then op (Insn.Inv (regof d, regof s))
      else fail "%s: DLXe Not survived legalization" f.Ir.name
    | Ir.Neg (d, s) ->
      if is_d16 then op (Insn.Neg (regof d, regof s))
      else if target.Target.three_address then
        op (Insn.Alu (Insn.Sub, regof d, 0, regof s))
      else fail "%s: two-address DLXe Neg survived legalization" f.Ir.name
    | Ir.Setcmp (c, d, a, b) ->
      emit_setcmp c (regof d) a b;
      if is_d16 && regof d <> 0 then op (Insn.Mv (regof d, 0))
    | Ir.Load (w, d, a) ->
      addr_mem ~word:(w = Insn.Lw)
        (fun base off -> op (Insn.Load (w, regof d, base, off)))
        a
    | Ir.Store (w, s, a) ->
      addr_mem ~word:(w = Insn.Sw)
        (fun base off -> op (Insn.Store (w, regof s, base, off)))
        a
    | Ir.Lea (d, Ir.Aglobal (sym, o)) -> emit (Asm.La (regof d, sym, o))
    | Ir.Lea (d, Ir.Aslot (id, extra)) ->
      emit_addi (regof d) Regs.sp (slot_addr id extra)
    | Ir.Lea (d, Ir.Abase (t, off)) -> emit_addi (regof d) (regof t) off
    | Ir.Fli _ -> fail "%s: FP literal survived materialization" f.Ir.name
    | Ir.Fmov (d, s) ->
      if fregof d <> fregof s then op (Insn.Fmv (Insn.Df, fregof d, fregof s))
    | Ir.Fbin (fop, d, a, b) ->
      op (Insn.Fbin (fop, Insn.Df, fregof d, fregof a, fregof b))
    | Ir.Fneg (d, s) -> op (Insn.Fneg (Insn.Df, fregof d, fregof s))
    | Ir.Fsetcmp (c, d, a, b) ->
      op (Insn.Fcmp (c, Insn.Df, fregof a, fregof b));
      op (Insn.Rdsr (regof d))
    | Ir.Fload (d, a) ->
      addr_mem ~word:true
        (fun base off -> op (Insn.Fload (Insn.Df, fregof d, base, off)))
        a
    | Ir.Fstore (s, a) ->
      addr_mem ~word:true
        (fun base off -> op (Insn.Fstore (Insn.Df, fregof s, base, off)))
        a
    | Ir.Itof (d, s) -> op (Insn.Cvtif (Insn.Df, fregof d, regof s))
    | Ir.Ftoi (d, s) -> op (Insn.Cvtfi (Insn.Df, regof d, fregof s))
    | Ir.Call (ret, name, args) ->
      let locs, _ = arg_locations args in
      (* Stack extras first (they read argument-register sources before the
         parallel move overwrites them). *)
      List.iter2
        (fun a loc ->
          match (a, loc) with
          | Ir.Aint t, Out_i o ->
            emit_sp_mem ~word:true (fun b o' -> store_word (regof t) b o') o
          | Ir.Afloat t, Out_f o ->
            emit_sp_mem ~word:true (fun b o' -> fstore (fregof t) b o') o
          | _, (Reg_i _ | Reg_f _) -> ()
          | Ir.Aint _, Out_f _ | Ir.Afloat _, Out_i _ -> assert false)
        args locs;
      let gmoves =
        List.filter_map
          (fun (a, loc) ->
            match (a, loc) with
            | Ir.Aint t, Reg_i r -> Some (r, regof t)
            | _ -> None)
          (List.combine args locs)
      in
      let fmoves =
        List.filter_map
          (fun (a, loc) ->
            match (a, loc) with
            | Ir.Afloat t, Reg_f r -> Some (r, fregof t)
            | _ -> None)
          (List.combine args locs)
      in
      gpr_moves gmoves;
      fpr_moves fmoves;
      emit (Asm.Call_sym name);
      (match ret with
      | Ir.Rnone -> ()
      | Ir.Rint d -> if regof d <> Regs.ret_gpr then op (Insn.Mv (regof d, Regs.ret_gpr))
      | Ir.Rfloat d ->
        if fregof d <> Regs.ret_fpr then
          op (Insn.Fmv (Insn.Df, fregof d, Regs.ret_fpr)))
    | Ir.Trap (code, arg) ->
      (match arg with
      | Some (Ir.Aint t) ->
        if regof t <> Regs.ret_gpr then op (Insn.Mv (Regs.ret_gpr, regof t))
      | Some (Ir.Afloat t) ->
        if fregof t <> Regs.ret_fpr then
          op (Insn.Fmv (Insn.Df, Regs.ret_fpr, fregof t))
      | None -> ());
      op (Insn.Trap code)
  in

  (* Compare/branch fusion: on D16 it saves the move out of r0. *)
  let live = Liveness.compute f Liveness.int_class in
  let fusable (b : Ir.block) =
    match (List.rev b.ins, b.term) with
    | last :: _, Ir.Bif (t, _, _) -> (
      let live_out = Hashtbl.find live.Liveness.live_out b.lbl in
      let dead_after = not (Iset.mem t live_out) in
      match last with
      | Ir.Setcmp (_, d, _, _) when d = t && dead_after -> Some last
      | Ir.Fsetcmp (_, d, _, _) when d = t && dead_after -> Some last
      | _ -> None)
    | _ -> None
  in

  let epilogue_lbl = Ir.fresh_label f in

  let emit_branch cond_reg l1 l2 ~next =
    (* cond_reg holds the test value (r0 on D16). *)
    if next = Some l2 then emit (Asm.Bnz_lbl (cond_reg, l1))
    else if next = Some l1 then emit (Asm.Bz_lbl (cond_reg, l2))
    else begin
      emit (Asm.Bnz_lbl (cond_reg, l1));
      emit (Asm.Br_lbl l2)
    end
  in

  let emit_term (b : Ir.block) fused ~next =
    match b.Ir.term with
    | Ir.Jmp l -> if next <> Some l then emit (Asm.Br_lbl l)
    | Ir.Bif (t, l1, l2) ->
      let cond_reg =
        match fused with
        | Some (Ir.Setcmp (c, _, a, rhs)) ->
          let dest = if is_d16 then 0 else regof t in
          emit_setcmp c dest a rhs;
          dest
        | Some (Ir.Fsetcmp (c, _, a, rhs)) ->
          op (Insn.Fcmp (c, Insn.Df, fregof a, fregof rhs));
          let dest = if is_d16 then 0 else regof t in
          op (Insn.Rdsr dest);
          dest
        | Some _ -> assert false
        | None ->
          if is_d16 then begin
            op (Insn.Mv (0, regof t));
            0
          end
          else regof t
      in
      emit_branch cond_reg l1 l2 ~next
    | Ir.Ret arg ->
      (match arg with
      | Some (Ir.Aint t) ->
        if regof t <> Regs.ret_gpr then op (Insn.Mv (Regs.ret_gpr, regof t))
      | Some (Ir.Afloat t) ->
        if fregof t <> Regs.ret_fpr then
          op (Insn.Fmv (Insn.Df, Regs.ret_fpr, fregof t))
      | None -> ());
      if next <> Some epilogue_lbl then emit (Asm.Br_lbl epilogue_lbl)
  in

  (* Prologue. *)
  if frame.size > 0 then begin
    if is_d16 then begin
      if Target.alui_fits target Insn.Sub frame.size then
        op (Insn.Alui (Insn.Sub, Regs.sp, Regs.sp, frame.size))
      else begin
        emit_const 0 frame.size;
        op (Insn.Alu (Insn.Sub, Regs.sp, Regs.sp, 0))
      end
    end
    else op (Insn.Alui (Insn.Add, Regs.sp, Regs.sp, -frame.size))
  end;
  (match frame.ra_off with
  | Some o -> emit_sp_mem ~word:true (fun b o' -> store_word Regs.link b o') o
  | None -> ());
  List.iter
    (fun (r, o) -> emit_sp_mem ~word:true (fun b o' -> store_word r b o') o)
    frame.callee_gpr_offs;
  List.iter
    (fun (r, o) -> emit_sp_mem ~word:true (fun b o' -> fstore r b o') o)
    frame.callee_fpr_offs;
  (* Bind parameters. *)
  let locs, _ = arg_locations f.Ir.arg_temps in
  let in_base = frame.size in
  (* 1. Stack-passed parameters that were spilled: copy via r3 (free at
     entry; it is not an argument register). *)
  List.iter2
    (fun a loc ->
      match (a, loc) with
      | Ir.Aint t, Out_i o when Hashtbl.mem alloc.Regalloc.spill_slot_int t ->
        let slot = Hashtbl.find alloc.Regalloc.spill_slot_int t in
        emit_sp_mem ~word:true (fun b o' -> load_word 3 b o') (in_base + o);
        emit_sp_mem ~word:true (fun b o' -> store_word 3 b o') (slot_addr slot 0)
      | _ -> ())
    f.Ir.arg_temps locs;
  (* 2. Register parameters that were spilled: store directly. *)
  List.iter2
    (fun a loc ->
      match (a, loc) with
      | Ir.Aint t, Reg_i r when Hashtbl.mem alloc.Regalloc.spill_slot_int t ->
        let slot = Hashtbl.find alloc.Regalloc.spill_slot_int t in
        emit_sp_mem ~word:true (fun b o' -> store_word r b o') (slot_addr slot 0)
      | Ir.Afloat t, Reg_f r when Hashtbl.mem alloc.Regalloc.spill_slot_float t
        ->
        let slot = Hashtbl.find alloc.Regalloc.spill_slot_float t in
        emit_sp_mem ~word:true (fun b o' -> fstore r b o') (slot_addr slot 0)
      | _ -> ())
    f.Ir.arg_temps locs;
  (* 3. Parallel move of live register parameters. *)
  let gmoves = ref [] and fmoves = ref [] in
  List.iter2
    (fun a loc ->
      match (a, loc) with
      | Ir.Aint t, Reg_i r ->
        (match Hashtbl.find_opt alloc.Regalloc.int_assign t with
        | Some dst -> gmoves := (dst, r) :: !gmoves
        | None -> () (* spilled or unused *))
      | Ir.Afloat t, Reg_f r -> (
        match Hashtbl.find_opt alloc.Regalloc.float_assign t with
        | Some dst -> fmoves := (dst, r) :: !fmoves
        | None -> ())
      | _ -> ())
    f.Ir.arg_temps locs;
  gpr_moves !gmoves;
  fpr_moves !fmoves;
  (* 4. Stack-passed parameters into their registers. *)
  List.iter2
    (fun a loc ->
      match (a, loc) with
      | Ir.Aint t, Out_i o -> (
        match Hashtbl.find_opt alloc.Regalloc.int_assign t with
        | Some dst ->
          emit_sp_mem ~word:true (fun b o' -> load_word dst b o') (in_base + o)
        | None -> ())
      | Ir.Afloat t, Out_f o -> (
        match Hashtbl.find_opt alloc.Regalloc.float_assign t with
        | Some dst ->
          emit_sp_mem ~word:true (fun b o' -> fload dst b o') (in_base + o)
        | None -> ())
      | _ -> ())
    f.Ir.arg_temps locs;

  (* Body. *)
  let rec emit_blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
      let next =
        match rest with
        | (nb : Ir.block) :: _ -> Some nb.Ir.lbl
        | [] -> Some epilogue_lbl
      in
      emit (Asm.Lbl b.lbl);
      let fused = fusable b in
      let body =
        match fused with
        | Some _ -> List.rev (List.tl (List.rev b.ins))
        | None -> b.ins
      in
      List.iter emit_ins body;
      emit_term b fused ~next;
      emit_blocks rest
  in
  emit_blocks f.Ir.blocks;

  (* Epilogue. *)
  emit (Asm.Lbl epilogue_lbl);
  List.iter
    (fun (r, o) -> emit_sp_mem ~word:true (fun b o' -> fload r b o') o)
    frame.callee_fpr_offs;
  List.iter
    (fun (r, o) -> emit_sp_mem ~word:true (fun b o' -> load_word r b o') o)
    frame.callee_gpr_offs;
  (match frame.ra_off with
  | Some o -> emit_sp_mem ~word:true (fun b o' -> load_word Regs.link b o') o
  | None -> ());
  if frame.size > 0 then begin
    if Target.alui_fits target Insn.Add frame.size then
      op (Insn.Alui (Insn.Add, Regs.sp, Regs.sp, frame.size))
    else if is_d16 then begin
      emit_const 0 frame.size;
      op (Insn.Alu (Insn.Add, Regs.sp, Regs.sp, 0))
    end
    else op (Insn.Alui (Insn.Add, Regs.sp, Regs.sp, frame.size))
  end;
  op (Insn.J Regs.link);

  { Asm.fn_name = f.Ir.name; items = List.rev !items }
