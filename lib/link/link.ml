module Insn = Repro_core.Insn
module D16m = Repro_core.D16m
module Target = Repro_core.Target
module Regs = Repro_core.Regs
module Trapcode = Repro_core.Trapcode
module Asm = Repro_codegen.Asm
module Lower = Repro_ir.Lower

exception Link_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

type image = {
  target : Target.t;
  insns : Insn.t array;
  addr_of : int array;
  addr_index : int array;
  addr_shift : int;
  branch_target : int array;
  entry_index : int;
  text_base : int;
  text_bytes : int;
  data_base : int;
  data_bytes : int;
  init : (int * Bytes.t) list;
  symbols : (string, int) Hashtbl.t;
  mem_size : int;
  sp_init : int;
}

let index_at img addr =
  let off = addr - img.text_base in
  let i = off lsr img.addr_shift in
  if
    off < 0
    || i >= Array.length img.addr_index
    || off land ((1 lsl img.addr_shift) - 1) <> 0
  then -1
  else Array.unsafe_get img.addr_index i

let text_base = 0x1000

(* Fixed address space: 16 MiB, stack at the top growing down.  A constant
   memory size keeps the _start stub's sp constant independent of layout. *)
let mem_size = 1 lsl 24
let stack_bytes = 1 lsl 20
let sp_init = mem_size - 16

(* Pool keys: what a D16 literal-pool word will contain. *)
type key = Kconst of int | Ksym of string * int | Klabel of Asm.label

(* Mutable relaxation state per item. *)
type state = { mutable far : bool; mutable wide : bool }

type lfrag = {
  frag : Asm.fragment;
  states : state array;
  mutable pool_keys : key list;  (* insertion-ordered, unique *)
  mutable base : int;  (* pool start address *)
  mutable code_base : int;
  labels : (Asm.label, int) Hashtbl.t;
  item_addr : int array;
}

let add_key lf k = if not (List.mem k lf.pool_keys) then lf.pool_keys <- lf.pool_keys @ [ k ]

let key_index lf k =
  let rec idx n = function
    | [] -> fail "pool key missing"
    | k' :: _ when k' = k -> n
    | _ :: rest -> idx (n + 1) rest
  in
  idx 0 lf.pool_keys

let pool_addr lf k = lf.base + (4 * key_index lf k)

(* The shape of an item: how many instructions it expands to.  [resolve] is
   only consulted during final emission; during sizing the shapes depend on
   the relaxation state alone.  On the mixed-width target a plain Op's size
   is a property of the instruction itself (2 or 4 bytes), branch items use
   [st.wide] for the long form, and La/Lc expand DLXe-style (mvhi/ori) since
   there is no literal pool. *)
let item_size target (st : state) (it : Asm.item) =
  let b = Target.insn_bytes target in
  let mixed = target.Target.mixed in
  let pooled = Target.has_ldc target in
  match it with
  | Asm.Lbl _ -> 0
  | Asm.Op ins -> if mixed then D16m.size ins else b
  | Asm.Br_lbl _ | Asm.Call_sym _ ->
    if mixed then if st.wide then 4 else 2 else if st.far then 2 * b else b
  | Asm.Bz_lbl _ | Asm.Bnz_lbl _ ->
    if mixed then if st.wide then 4 else 2 else if st.far then 4 * b else b
  | Asm.La (r, _, _) ->
    if pooled then if r = 0 then b else 2 * b
    else if st.wide then 8 (* mvhi + ori, wide on both encodings *)
    else if mixed then 4 (* symbol addresses never fit the 9-bit mvi *)
    else b
  | Asm.Lc (r, v) ->
    if pooled then if r = 0 then b else 2 * b
    else if Target.mvi_fits target v then
      if mixed then D16m.size (Insn.Mvi (r, v)) else b
    else 8

let start_fragment () =
  {
    Asm.fn_name = "_start";
    items =
      [
        Asm.Lc (Regs.sp, sp_init);
        Asm.Call_sym "main";
        Asm.Op Insn.Nop (* delay slot *);
        Asm.Op (Insn.Trap Trapcode.exit);
      ];
  }

let link target (fragments : Asm.fragment list) (data : Lower.data_item list) =
  let pooled = Target.has_ldc target in
  let mixed = target.Target.mixed in
  let fragments = start_fragment () :: fragments in
  let lfrags =
    List.map
      (fun (f : Asm.fragment) ->
        let n = List.length f.items in
        {
          frag = f;
          states = Array.init n (fun _ -> { far = false; wide = false });
          pool_keys = [];
          base = 0;
          code_base = 0;
          labels = Hashtbl.create 8;
          item_addr = Array.make n 0;
        })
      fragments
  in
  (* Static pool needs. *)
  List.iter
    (fun lf ->
      if pooled then
        List.iter
          (function
            | Asm.Lc (_, v) -> add_key lf (Kconst v)
            | Asm.La (_, s, o) -> add_key lf (Ksym (s, o))
            | _ -> ())
          lf.frag.items)
    lfrags;
  let fn_addr = Hashtbl.create 16 in
  (* Layout + relaxation fixpoint. *)
  let assign_addresses () =
    let cursor = ref text_base in
    List.iter
      (fun lf ->
        if pooled then begin
          lf.base <- (!cursor + 3) / 4 * 4;
          cursor := lf.base + (4 * List.length lf.pool_keys)
        end
        else begin
          lf.base <- !cursor;
          cursor := lf.base
        end;
        lf.code_base <- !cursor;
        Hashtbl.replace fn_addr lf.frag.fn_name lf.code_base;
        List.iteri
          (fun i it ->
            lf.item_addr.(i) <- !cursor;
            (match it with
            | Asm.Lbl l -> Hashtbl.replace lf.labels l !cursor
            | _ -> ());
            cursor := !cursor + item_size target lf.states.(i) it)
          lf.frag.items)
      lfrags;
    !cursor
  in
  let reach = Target.branch_range target - Target.insn_bytes target in
  (* The D16 narrow branch format's reach, used by the mixed target to pick
     between the 16-bit and 32-bit forms.  Distances are monotone
     nondecreasing across relaxation passes (item sizes only grow), so a
     branch marked wide stays out of narrow reach at the fixpoint and the
     emitted instruction is guaranteed to take the wide form. *)
  let narrow_reach = 1024 in
  let relax_pass () =
    let changed = ref false in
    List.iter
      (fun lf ->
        List.iteri
          (fun i it ->
            let st = lf.states.(i) in
            if not st.far then begin
              let here = lf.item_addr.(i) in
              match it with
              | Asm.Br_lbl l | Asm.Bz_lbl (_, l) | Asm.Bnz_lbl (_, l) ->
                let dest = Hashtbl.find lf.labels l in
                let off = dest - here in
                if off < -Target.branch_range target || off > reach then begin
                  if not pooled then
                    fail "%s: branch out of range (%d)" lf.frag.fn_name off;
                  st.far <- true;
                  add_key lf (Klabel l);
                  changed := true
                end
                else if
                  mixed && (not st.wide)
                  && (off < -narrow_reach || off > narrow_reach - 2)
                then begin
                  st.wide <- true;
                  changed := true
                end
              | Asm.Call_sym s -> (
                match Hashtbl.find_opt fn_addr s with
                | None -> fail "undefined function '%s'" s
                | Some dest ->
                  let range = Target.call_range target in
                  let off = dest - here in
                  if off < -range || off > range - Target.insn_bytes target
                  then begin
                    if not pooled then
                      fail "%s: call out of range" lf.frag.fn_name;
                    st.far <- true;
                    add_key lf (Ksym (s, 0));
                    changed := true
                  end
                  else if
                    mixed && (not st.wide)
                    && (off < -narrow_reach || off > narrow_reach - 2)
                  then begin
                    st.wide <- true;
                    changed := true
                  end)
              | Asm.La _ when not pooled ->
                (* Wide when the final address may not fit mvi; decided after
                   data layout, conservatively by current upper bound. *)
                ()
              | _ -> ()
            end)
          lf.frag.items)
      lfrags;
    !changed
  in
  (* DLXe La widening needs data addresses; approximate with the final text
     cursor (data follows text, so any data symbol address >= text_end).
     Iterate: first assume narrow; widen whenever the estimated address
     exceeds the mvi range.  Data addresses only grow as text grows, so this
     is monotone too. *)
  let data_symbols = Hashtbl.create 16 in
  let layout_data base =
    let cursor = ref base in
    List.iter
      (fun (d : Lower.data_item) ->
        let a = (!cursor + d.dalign - 1) / d.dalign * d.dalign in
        Hashtbl.replace data_symbols d.dsym a;
        cursor := a + Bytes.length d.dbytes)
      data;
    !cursor
  in
  let widen_la_pass text_end =
    let changed = ref false in
    if not pooled then begin
      let data_end = layout_data ((text_end + 7) / 8 * 8) in
      ignore data_end;
      List.iter
        (fun lf ->
          List.iteri
            (fun i it ->
              match it with
              | Asm.La (_, s, o) when not lf.states.(i).wide -> (
                let addr =
                  match Hashtbl.find_opt data_symbols s with
                  | Some a -> a + o
                  | None -> (
                    match Hashtbl.find_opt fn_addr s with
                    | Some a -> a + o
                    | None -> fail "undefined symbol '%s'" s)
                in
                (* 64-byte margin: later sizing wobble must not flip the
                   decision back. *)
                if not (Target.mvi_fits target (addr + 64)) then begin
                  lf.states.(i).wide <- true;
                  changed := true
                end)
              | _ -> ())
            lf.frag.items)
        lfrags
    end;
    !changed
  in
  let rec fixpoint n =
    if n = 0 then fail "relaxation did not converge";
    let text_end = assign_addresses () in
    let c1 = relax_pass () in
    let c2 = widen_la_pass text_end in
    if c1 || c2 then fixpoint (n - 1) else text_end
  in
  let text_end = fixpoint 64 in
  let data_base = (text_end + 7) / 8 * 8 in
  let data_end = layout_data data_base in
  let symbol_addr s o =
    match Hashtbl.find_opt data_symbols s with
    | Some a -> a + o
    | None -> (
      match Hashtbl.find_opt fn_addr s with
      | Some a -> a + o
      | None -> fail "undefined symbol '%s'" s)
  in
  if data_end > mem_size - stack_bytes then
    fail "data segment too large (%d bytes)" (data_end - data_base);

  (* Emission. *)
  let insns = ref [] in
  let addrs = ref [] in
  let pool_inits = ref [] in
  let emit_at addr i =
    insns := i :: !insns;
    addrs := addr :: !addrs
  in
  let check addr i =
    match Target.legal target i with
    | Ok () -> emit_at addr i
    | Error e -> fail "illegal instruction '%s' at 0x%x: %s" (Insn.to_string i) addr e
  in
  let key_value lf = function
    | Kconst v -> v
    | Ksym (s, o) -> symbol_addr s o
    | Klabel l -> Hashtbl.find lf.labels l
  in
  List.iter
    (fun lf ->
      if pooled && lf.pool_keys <> [] then begin
        let b = Bytes.create (4 * List.length lf.pool_keys) in
        List.iteri
          (fun i k ->
            let v = key_value lf k land 0xFFFFFFFF in
            Bytes.set_uint8 b (4 * i) (v land 0xFF);
            Bytes.set_uint8 b ((4 * i) + 1) ((v lsr 8) land 0xFF);
            Bytes.set_uint8 b ((4 * i) + 2) ((v lsr 16) land 0xFF);
            Bytes.set_uint8 b ((4 * i) + 3) ((v lsr 24) land 0xFF))
          lf.pool_keys;
        pool_inits := (lf.base, b) :: !pool_inits
      end;
      let ldc_to addr k =
        let p = pool_addr lf k in
        let off = p - (addr land lnot 3) in
        if off >= 0 || off < -Target.ldc_reach target then
          fail "%s: pool entry out of ldc reach (%d)" lf.frag.fn_name off;
        Insn.Ldc (0, off)
      in
      List.iteri
        (fun i it ->
          let addr = lf.item_addr.(i) in
          let st = lf.states.(i) in
          let b = Target.insn_bytes target in
          match it with
          | Asm.Lbl _ -> ()
          | Asm.Op ins -> check addr ins
          | Asm.Br_lbl l ->
            let dest = Hashtbl.find lf.labels l in
            if st.far then begin
              check addr (ldc_to addr (Klabel l));
              check (addr + b) (Insn.J 0)
            end
            else check addr (Insn.Br (dest - addr))
          | Asm.Bz_lbl (r, l) | Asm.Bnz_lbl (r, l) ->
            let dest = Hashtbl.find lf.labels l in
            let is_bz = match it with Asm.Bz_lbl _ -> true | _ -> false in
            if st.far then begin
              (* Inverted branch over ldc+j; the original slot (next item)
                 becomes the jump's slot and the skip target. *)
              let skip = addr + (4 * b) in
              let inv : Insn.t =
                if is_bz then Insn.Bnz (r, skip - addr)
                else Insn.Bz (r, skip - addr)
              in
              check addr inv;
              check (addr + b) Insn.Nop;
              check (addr + (2 * b)) (ldc_to (addr + (2 * b)) (Klabel l));
              check (addr + (3 * b)) (Insn.J 0)
            end
            else
              check addr
                (if is_bz then Insn.Bz (r, dest - addr)
                 else Insn.Bnz (r, dest - addr))
          | Asm.Call_sym s ->
            let dest = symbol_addr s 0 in
            if st.far then begin
              check addr (ldc_to addr (Ksym (s, 0)));
              check (addr + b) (Insn.Jl 0)
            end
            else check addr (Insn.Brl (dest - addr))
          | Asm.La (r, s, o) ->
            if pooled then begin
              check addr (ldc_to addr (Ksym (s, o)));
              if r <> 0 then check (addr + b) (Insn.Mv (r, 0))
            end
            else begin
              let v = symbol_addr s o in
              if st.wide then begin
                (* mvhi is 4 bytes on both encodings (wide on mixed). *)
                check addr (Insn.Mvhi (r, (v lsr 16) land 0xFFFF));
                check (addr + 4) (Insn.Alui (Insn.Or, r, r, v land 0xFFFF))
              end
              else check addr (Insn.Mvi (r, v))
            end
          | Asm.Lc (r, v) ->
            if pooled then begin
              check addr (ldc_to addr (Kconst v));
              if r <> 0 then check (addr + b) (Insn.Mv (r, 0))
            end
            else if Target.mvi_fits target v && not st.wide then
              check addr (Insn.Mvi (r, v))
            else begin
              check addr (Insn.Mvhi (r, (v lsr 16) land 0xFFFF));
              check (addr + 4) (Insn.Alui (Insn.Or, r, r, v land 0xFFFF))
            end)
        lf.frag.items)
    lfrags;
  let insns = Array.of_list (List.rev !insns) in
  let addr_of = Array.of_list (List.rev !addrs) in
  (* Dense address-to-index map over the text segment: instructions sit at
     insn_bytes-aligned offsets from text_base (D16 literal-pool words
     occupy 4-aligned gaps and stay -1). *)
  let insn_b = Target.insn_bytes target in
  let addr_shift = if insn_b = 2 then 1 else 2 in
  let n_slots = (text_end - text_base + insn_b - 1) lsr addr_shift in
  let addr_index = Array.make (max n_slots 1) (-1) in
  Array.iteri
    (fun i a -> addr_index.((a - text_base) lsr addr_shift) <- i)
    addr_of;
  let lookup addr =
    let off = addr - text_base in
    let i = off lsr addr_shift in
    if off < 0 || i >= Array.length addr_index || off land (insn_b - 1) <> 0
    then -1
    else addr_index.(i)
  in
  (* PC-relative branch targets resolve now: the interpreter's taken-branch
     path indexes this array instead of hashing the target address. *)
  let branch_target =
    Array.mapi
      (fun i insn ->
        match (insn : Insn.t) with
        | Insn.Br off | Insn.Bz (_, off) | Insn.Bnz (_, off) | Insn.Brl off ->
          lookup (addr_of.(i) + off)
        | _ -> -1)
      insns
  in
  let data_init =
    List.map
      (fun (d : Lower.data_item) -> (Hashtbl.find data_symbols d.dsym, d.dbytes))
      data
  in
  let symbols = Hashtbl.create 32 in
  Hashtbl.iter (fun s a -> Hashtbl.replace symbols s a) fn_addr;
  Hashtbl.iter (fun s a -> Hashtbl.replace symbols s a) data_symbols;
  let entry_index =
    match lookup (Hashtbl.find fn_addr "_start") with
    | -1 -> fail "no entry instruction"
    | i -> i
  in
  {
    target;
    insns;
    addr_of;
    addr_index;
    addr_shift;
    branch_target;
    entry_index;
    text_base;
    text_bytes = text_end - text_base;
    data_base;
    data_bytes = data_end - data_base;
    init = !pool_inits @ data_init;
    symbols;
    mem_size;
    sp_init;
  }

(* The paper measures stripped executables: text plus initialized data.
   Zero-initialized objects live in bss and take no file space. *)
let size_bytes img =
  let init_data =
    List.fold_left
      (fun acc (addr, b) ->
        if addr >= img.data_base && Bytes.exists (fun c -> c <> '\000') b then
          acc + Bytes.length b
        else acc)
      0 img.init
  in
  img.text_bytes + init_data
