(** Layout and linking: fragments + data to an executable image.

    Text starts at 0x1000.  On D16, each function is preceded by its literal
    pool (deduplicated per function); [lc]/[la] items, calls beyond the
    +/-1024-byte [brl] reach, and branches beyond the conditional reach are
    relaxed to pool-load + register-jump sequences.  Relaxation iterates to
    a fixed point (expansion is monotone).  The delay-slot invariant is
    preserved: expanded sequences give the final jump the original slot, and
    far conditionals branch around to it.

    The reported binary size is text + data, the paper's stripped-executable
    measure (footnote 1: identical libraries on both targets). *)

type image = {
  target : Repro_core.Target.t;
  insns : Repro_core.Insn.t array;  (** In address order. *)
  addr_of : int array;  (** Byte address of each instruction. *)
  addr_index : int array;
      (** Dense text-segment map: slot [(addr - text_base) lsr addr_shift]
          holds the instruction index at [addr], or [-1] (D16 literal-pool
          words, padding).  Use {!index_at}. *)
  addr_shift : int;  (** log2 of the instruction granule (1 or 2). *)
  branch_target : int array;
      (** Per instruction: the link-resolved target {e index} of a
          PC-relative branch ([br]/[bz]/[bnz]/[brl]), [-1] for other
          instructions or unresolvable targets.  Spares the interpreter a
          hash lookup on every taken branch. *)
  entry_index : int;
  text_base : int;
  text_bytes : int;  (** Includes literal pools and padding. *)
  data_base : int;
  data_bytes : int;
  init : (int * Bytes.t) list;  (** Initial memory contents (data + pools). *)
  symbols : (string, int) Hashtbl.t;
  mem_size : int;
  sp_init : int;
}

exception Link_error of string

val link :
  Repro_core.Target.t ->
  Repro_codegen.Asm.fragment list ->
  Repro_ir.Lower.data_item list ->
  image
(** Fragments must include [main]; a [_start] stub (set sp, call main, trap
    exit) is synthesized and placed first.
    @raise Link_error on undefined symbols, out-of-reach pools, or
    instructions the target rejects. *)

val size_bytes : image -> int
(** text + data, the code-density measure. *)

val index_at : image -> int -> int
(** The instruction index at a byte address, [-1] if the address is not an
    instruction boundary (out of text, misaligned, or a literal-pool
    word).  Constant-time array lookup — the register-jump and profiling
    paths use it instead of a hashtable. *)
