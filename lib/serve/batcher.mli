(** Request coalescing, window batching, and bounded execution — the
    server core between the socket layer and the {!Repro_harness.Pool}.

    Three mechanisms, in the order a request meets them:

    - {b single-flight coalescing}: every job carries a digest key
      ({!Digests.key_of_spec} — the same keys the disk cache uses).  A
      request whose key is already pending or executing attaches to that
      job instead of spawning another computation; all attached requests
      receive the one result.
    - {b window batching}: batchable sweeps (grid/uarch/fused) for the
      same (benchmark, target) that arrive within [window_ms] of each
      other merge into one group, executed as a single
      {!Repro_harness.Runs.ensure_fused} pass — one trace decode serves
      every request in the group, and each request's results are
      byte-equal to a directly-run plan (equal {!Digests.of_spec}).
    - {b bounded queue with load shedding}: at most [max_queue] jobs may
      be pending-or-executing; past that, submission fails fast with
      [Busy].  {!await} never blocks past its deadline — an unfinished
      job answers [Timeout] (and keeps running server-side; a later
      identical request coalesces onto it and gets the warm result).

    All submission paths are safe from any thread; execution happens on
    the internal pool's worker domains. *)

type t

val create : ?jobs:int -> ?window_ms:float -> ?max_queue:int -> unit -> t
(** [jobs] worker domains (default {!Repro_harness.Pool.default_jobs},
    clamped to at least 2 — a pool with fewer workers only runs tasks at
    [wait], which a server never reaches); [window_ms] the batching
    window (default 10); [max_queue] the job bound (default 64). *)

type ticket
(** One request's claim on a job's result. *)

val sweep : t -> Repro_harness.Plan.spec -> (ticket, Proto.error_code * string) result
(** Submit a measurement request.  [Error] only on shed ([Busy]) or a
    stopping server ([Shutting_down]); never blocks. *)

val fn : t -> key:string -> (unit -> Proto.response) -> (ticket, Proto.error_code * string) result
(** Submit an arbitrary job under single-flight [key] (renders coalesce
    by experiment id; diagnostics pass a unique key).  Dispatches
    immediately — no batching window. *)

val await : t -> ticket -> deadline:float -> Proto.response
(** Block until the job completes or [deadline] (absolute
    [Unix.gettimeofday] time) passes, whichever is first; a timeout
    yields [Error_r Timeout].  Completion is polled at millisecond
    granularity, so responses lag completion by at most ~2 ms. *)

val counters : t -> Proto.status
(** Live coalesce/batch/queue counters; the connection-level fields
    (uptime, accepted, completed, failed, disk hits) are zero — the
    {!Server} owns those and fills them in. *)

val quiesce : t -> unit
(** Stop accepting (new submissions fail with [Shutting_down]), flush
    the batching window, and wait for every dispatched job to finish. *)

val shutdown : t -> unit
(** {!quiesce} then join the ticker thread and the pool's domains. *)
