module Plan = Repro_harness.Plan
module Runs = Repro_harness.Runs
module Pool = Repro_harness.Pool

(* One underlying execution; [requests] counts every request it serves
   (direct, coalesced, batched) — the [batch] field of the responses. *)
type run = { mutable requests : int }

(* One job's result slot.  [result] is written exactly once, under the
   batcher lock; tickets poll it through {!await}. *)
type cell = {
  key : string;
  spec : Plan.spec option;  (* None for [fn] jobs *)
  run : run;
  mutable result : Proto.response option;
}

type ticket = cell

(* An open batching group: batchable sweeps for one (bench, target)
   collected during the window.  At most one cell per spec key (same-key
   requests coalesce), so a group holds at most one grid, one uarch and
   one fused cell. *)
type group = {
  g_bench : string;
  g_tname : string;
  g_target : Repro_core.Target.t;
  g_created : float;
  g_run : run;
  mutable g_cells : cell list;
}

type t = {
  lock : Mutex.t;
  drained : Condition.t;  (* signalled when [dispatched] reaches 0 *)
  pool : Pool.t;
  window : float;  (* seconds *)
  max_queue : int;
  inflight : (string, cell) Hashtbl.t;  (* pending or executing *)
  mutable pending : group list;  (* open groups, newest first *)
  mutable dispatched : int;  (* jobs on the pool, not yet finished *)
  mutable stopping : bool;
  mutable ticker_stop : bool;
  mutable ticker : Thread.t option;
  (* Counters (all guarded by [lock]). *)
  mutable c_coalesced : int;
  mutable c_batches : int;
  mutable c_batched : int;
  mutable c_max_batch : int;
  mutable c_runs : int;
  mutable c_timeouts : int;
  mutable c_shed : int;
}

let locked t f = Mutex.protect t.lock f

(* Execution. -------------------------------------------------------------

   Runs on a pool worker domain.  All measurement work happens outside
   the lock; only result installation and bookkeeping take it. *)

let finish t cells ~run ~to_result =
  let results = List.map (fun c -> (c, to_result c)) cells in
  locked t (fun () ->
      let batch = run.requests in
      List.iter
        (fun ((c : cell), r) ->
          c.result <-
            Some
              (match r with
              | Proto.Sweep_r s -> Proto.Sweep_r { s with batch }
              | r -> r);
          Hashtbl.remove t.inflight c.key)
        results;
      let n = List.length cells in
      if n > 1 then begin
        t.c_batches <- t.c_batches + 1;
        t.c_batched <- t.c_batched + n;
        t.c_max_batch <- max t.c_max_batch n
      end;
      t.dispatched <- t.dispatched - 1;
      if t.dispatched = 0 then Condition.broadcast t.drained)

let exec_group t g () =
  let t0 = Unix.gettimeofday () in
  match
    (* A multi-kind group warms both standard sweeps in ONE fused pass —
       one decode of the stored trace serves every cell — after which
       each cell's digest is a warm read-back. *)
    let kinds =
      List.sort_uniq compare
        (List.filter_map
           (fun c -> Option.map (fun s -> s.Plan.kind) c.spec)
           g.g_cells)
    in
    if List.length kinds > 1 || List.mem Plan.Fused kinds then
      Runs.ensure_fused g.g_bench g.g_target;
    List.map
      (fun (c : cell) ->
        match c.spec with
        | Some spec -> (c, Digests.of_spec spec)
        | None -> assert false)
      g.g_cells
  with
  | digests ->
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    finish t g.g_cells ~run:g.g_run ~to_result:(fun c ->
        let digest = List.assq c digests in
        match c.spec with
        | Some spec -> Proto.Sweep_r { spec; digest; batch = 0; ms }
        | None -> assert false)
  | exception e ->
    let message = Printexc.to_string e in
    finish t g.g_cells ~run:g.g_run ~to_result:(fun _ ->
        Proto.Error_r { code = Proto.Server_error; message })

let exec_fn t (c : cell) f () =
  match f () with
  | r -> finish t [ c ] ~run:c.run ~to_result:(fun _ -> r)
  | exception e ->
    let message = Printexc.to_string e in
    finish t [ c ] ~run:c.run ~to_result:(fun _ ->
        Proto.Error_r { code = Proto.Server_error; message })

(* Dispatch with [t.lock] held. *)
let dispatch_group t g =
  t.pending <- List.filter (fun g' -> g' != g) t.pending;
  t.dispatched <- t.dispatched + 1;
  t.c_runs <- t.c_runs + 1;
  Pool.submit t.pool (exec_group t g)

let dispatch_fn t c f =
  t.dispatched <- t.dispatched + 1;
  t.c_runs <- t.c_runs + 1;
  Pool.submit t.pool (exec_fn t c f)

let flush_due t ~now ~all =
  List.iter (dispatch_group t)
    (List.filter
       (fun g -> all || now -. g.g_created >= t.window)
       t.pending)

let rec ticker_loop t =
  let stop =
    locked t (fun () ->
        flush_due t ~now:(Unix.gettimeofday ()) ~all:t.stopping;
        t.ticker_stop)
  in
  if not stop then begin
    Thread.delay (Float.max 0.001 (t.window /. 4.));
    ticker_loop t
  end

let create ?jobs ?(window_ms = 10.) ?(max_queue = 64) () =
  (* A [Pool] with fewer than 2 workers only runs tasks when someone
     [wait]s, which a long-running server never does — so 2 is the
     floor, not an optimization. *)
  let jobs =
    max 2 (match jobs with Some j -> j | None -> Pool.default_jobs ())
  in
  let t =
    {
      lock = Mutex.create ();
      drained = Condition.create ();
      pool = Pool.create ~jobs;
      window = Float.max 0. window_ms /. 1000.;
      max_queue = max 1 max_queue;
      inflight = Hashtbl.create 64;
      pending = [];
      dispatched = 0;
      stopping = false;
      ticker_stop = false;
      ticker = None;
      c_coalesced = 0;
      c_batches = 0;
      c_batched = 0;
      c_max_batch = 0;
      c_runs = 0;
      c_timeouts = 0;
      c_shed = 0;
    }
  in
  t.ticker <- Some (Thread.create ticker_loop t);
  t

let jobs_in_system t = t.dispatched + List.length t.pending

let submit t ~key ~job =
  locked t (fun () ->
      if t.stopping then
        Error (Proto.Shutting_down, "server is shutting down")
      else
        match Hashtbl.find_opt t.inflight key with
        | Some cell ->
          (* Single-flight: join the pending or executing job. *)
          t.c_coalesced <- t.c_coalesced + 1;
          cell.run.requests <- cell.run.requests + 1;
          Ok cell
        | None ->
          if jobs_in_system t >= t.max_queue then begin
            t.c_shed <- t.c_shed + 1;
            Error
              ( Proto.Busy,
                Printf.sprintf "request queue full (%d jobs)" t.max_queue )
          end
          else begin
            let cell = job () in
            Hashtbl.replace t.inflight key cell;
            Ok cell
          end)

let batchable (s : Plan.spec) =
  match s.Plan.kind with
  | Plan.Grid | Plan.Uarch | Plan.Fused -> true
  | Plan.Stats | Plan.Trace -> false

let sweep t (spec : Plan.spec) =
  let key = Digests.key_of_spec spec in
  submit t ~key ~job:(fun () ->
      if batchable spec then begin
        (* Join the open group for this (bench, target), or open one —
           it executes when the window closes. *)
        let tname = spec.Plan.target.Repro_core.Target.name in
        let g =
          match
            List.find_opt
              (fun g -> g.g_bench = spec.Plan.bench && g.g_tname = tname)
              t.pending
          with
          | Some g -> g
          | None ->
            let g =
              {
                g_bench = spec.Plan.bench;
                g_tname = tname;
                g_target = spec.Plan.target;
                g_created = Unix.gettimeofday ();
                g_run = { requests = 0 };
                g_cells = [];
              }
            in
            t.pending <- g :: t.pending;
            g
        in
        let cell = { key; spec = Some spec; run = g.g_run; result = None } in
        g.g_cells <- cell :: g.g_cells;
        g.g_run.requests <- g.g_run.requests + 1;
        cell
      end
      else begin
        let run = { requests = 1 } in
        let cell = { key; spec = Some spec; run; result = None } in
        dispatch_fn t cell (fun () ->
            match cell.spec with
            | Some spec ->
              let t0 = Unix.gettimeofday () in
              let digest = Digests.of_spec spec in
              let ms = (Unix.gettimeofday () -. t0) *. 1000. in
              Proto.Sweep_r { spec; digest; batch = 0; ms }
            | None -> assert false);
        cell
      end)

let fn t ~key f =
  submit t ~key ~job:(fun () ->
      let cell = { key; spec = None; run = { requests = 1 }; result = None } in
      dispatch_fn t cell f;
      cell)

let await t (cell : ticket) ~deadline =
  let rec poll () =
    match locked t (fun () -> cell.result) with
    | Some r -> r
    | None ->
      let now = Unix.gettimeofday () in
      if now >= deadline then begin
        locked t (fun () -> t.c_timeouts <- t.c_timeouts + 1);
        Proto.Error_r
          {
            code = Proto.Timeout;
            message =
              "deadline passed before the job finished (it keeps running; \
               an identical request will coalesce onto the warm result)";
          }
      end
      else begin
        Thread.delay (Float.min 0.001 (deadline -. now));
        poll ()
      end
  in
  poll ()

let counters t =
  locked t (fun () ->
      {
        Proto.uptime_s = 0.;
        accepted = 0;
        completed = 0;
        failed = 0;
        coalesced = t.c_coalesced;
        batches = t.c_batches;
        batched = t.c_batched;
        max_batch = t.c_max_batch;
        runs = t.c_runs;
        queue_depth = t.dispatched;
        waiting = List.length t.pending;
        timeouts = t.c_timeouts;
        shed = t.c_shed;
        disk_hits = 0;
        disk_misses = 0;
        latency_ms_sum = 0.;
        latency_ms_max = 0.;
      })

let quiesce t =
  Mutex.lock t.lock;
  t.stopping <- true;
  flush_due t ~now:(Unix.gettimeofday ()) ~all:true;
  while t.dispatched > 0 do
    Condition.wait t.drained t.lock
  done;
  Mutex.unlock t.lock

let shutdown t =
  quiesce t;
  locked t (fun () -> t.ticker_stop <- true);
  Option.iter Thread.join t.ticker;
  t.ticker <- None;
  Pool.wait t.pool;
  Pool.shutdown t.pool
