(** The `d16c serve` daemon: a long-running experiment server over a
    Unix-domain (and optionally TCP) socket.

    One {!Wire} frame in, one frame out, correlated by envelope id;
    concurrent clients each get a connection thread, measurement work
    runs on the {!Batcher}'s pool domains.  Duplicate in-flight requests
    coalesce onto one computation, compatible sweeps batch into one
    fused pass, and overload answers a typed [Busy] (queue full) or
    [Timeout] (deadline passed) — a client is always answered, never
    left on a hung socket.

    Lifecycle: {!start} binds and accepts in background threads;
    {!stop} (or a client's [Shutdown] request) begins a graceful stop —
    in-flight jobs finish and are answered, new work is refused with
    [Shutting_down]; {!wait} blocks until the stop completes and every
    resource (threads, sockets, the socket file) is released.  {!run}
    is [start] + [wait]. *)

type config = {
  unix_path : string option;  (** Unix-domain socket path. *)
  tcp : (string * int) option;  (** Optional TCP listener (host, port). *)
  jobs : int option;  (** Worker domains; default {!Repro_harness.Pool.default_jobs}. *)
  window_ms : float;  (** Batching window; 10 ms default. *)
  max_queue : int;  (** Job bound before [Busy]; 64 default. *)
  default_deadline_ms : float;
      (** Deadline for requests that carry none; 60 s default. *)
  log : string -> unit;  (** Log sink; default stderr. *)
  log_interval_s : float;
      (** Period of the observability log line; 0 disables it. *)
}

val default_config : unit -> config
(** Unix socket at [_runs_cache/d16c.sock] (under the current
    {!Repro_harness.Diskcache.dir}), no TCP, default pool width, 10 ms
    window, queue bound 64, 60 s deadline, stderr logging every 10 s. *)

type handle

val start : config -> (handle, string) result
(** Bind the listeners and start serving.  [Error] if no listener was
    requested or a bind fails. *)

val stop : handle -> unit
(** Begin a graceful stop (idempotent, safe from any thread). *)

val wait : handle -> unit
(** Block until the server has stopped and torn down. *)

val run : config -> (unit, string) result
(** {!start} then {!wait}: serve until a [Shutdown] request or {!stop}
    from another thread (e.g. a signal handler). *)

val status_of : handle -> Proto.status
(** Live counters — what a [Status] request returns. *)
