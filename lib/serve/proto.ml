module Json = Repro_util.Json
module Plan = Repro_harness.Plan

type request =
  | Ping
  | Status
  | Shutdown
  | Sweep of Plan.spec
  | Render of string
  | Sleep of float

type error_code = Busy | Timeout | Bad_request | Server_error | Shutting_down

type status = {
  uptime_s : float;
  accepted : int;
  completed : int;
  failed : int;
  coalesced : int;
  batches : int;
  batched : int;
  max_batch : int;
  runs : int;
  queue_depth : int;
  waiting : int;
  timeouts : int;
  shed : int;
  disk_hits : int;
  disk_misses : int;
  latency_ms_sum : float;
  latency_ms_max : float;
}

type response =
  | Pong
  | Status_r of status
  | Sweep_r of { spec : Plan.spec; digest : string; batch : int; ms : float }
  | Render_r of { id : string; text : string }
  | Slept
  | Bye
  | Error_r of { code : error_code; message : string }

type 'a envelope = { id : int; deadline_ms : float option; payload : 'a }

let error_code_to_string = function
  | Busy -> "busy"
  | Timeout -> "timeout"
  | Bad_request -> "bad-request"
  | Server_error -> "server-error"
  | Shutting_down -> "shutting-down"

let error_code_of_string = function
  | "busy" -> Ok Busy
  | "timeout" -> Ok Timeout
  | "bad-request" -> Ok Bad_request
  | "server-error" -> Ok Server_error
  | "shutting-down" -> Ok Shutting_down
  | s -> Error (Printf.sprintf "unknown error code %S" s)

(* Envelope plumbing.  Every message is {"id":N,"op":...,...}; requests
   may add "deadline_ms".  Decoders thread [field] continuations over the
   member reads so any missing or ill-typed field collapses to one
   [Error] naming the field. *)

let field name conv j what k =
  match conv (Option.value ~default:Json.Null (Json.member name j)) with
  | Some v -> k v
  | None -> Error (Printf.sprintf "%s: missing or ill-typed %S" what name)

let envelope_json ?deadline_ms ~id ms =
  Json.obj_ok
    (("id", Json.Int id)
    :: ( "deadline_ms",
         match deadline_ms with Some d -> Json.Float d | None -> Json.Null )
    :: ms)

let decode_envelope j what k =
  field "id" Json.to_int j what @@ fun id ->
  let deadline_ms = Option.bind (Json.member "deadline_ms" j) Json.to_float in
  field "op" Json.to_str j what @@ fun op ->
  Result.map (fun payload -> { id; deadline_ms; payload }) (k ~op j)

let request_to_json { id; deadline_ms; payload } =
  let ms =
    match payload with
    | Ping -> [ ("op", Json.Str "ping") ]
    | Status -> [ ("op", Json.Str "status") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
    | Sweep spec ->
      [ ("op", Json.Str "sweep"); ("spec", Json.Str (Plan.spec_to_string spec)) ]
    | Render rid -> [ ("op", Json.Str "render"); ("render", Json.Str rid) ]
    | Sleep ms -> [ ("op", Json.Str "sleep"); ("ms", Json.Float ms) ]
  in
  envelope_json ?deadline_ms ~id ms

let request_of_json j =
  decode_envelope j "request" @@ fun ~op j ->
  match op with
  | "ping" -> Ok Ping
  | "status" -> Ok Status
  | "shutdown" -> Ok Shutdown
  | "sweep" ->
    field "spec" Json.to_str j "sweep" @@ fun s ->
    Result.map (fun spec -> Sweep spec) (Plan.spec_of_string s)
  | "render" ->
    field "render" Json.to_str j "render" @@ fun rid -> Ok (Render rid)
  | "sleep" ->
    field "ms" Json.to_float j "sleep" @@ fun ms ->
    if Float.is_finite ms && ms >= 0. then Ok (Sleep ms)
    else Error "sleep: ms must be finite and non-negative"
  | op -> Error (Printf.sprintf "unknown request op %S" op)

let status_to_fields s =
  [
    ("uptime_s", Json.Float s.uptime_s);
    ("accepted", Json.Int s.accepted);
    ("completed", Json.Int s.completed);
    ("failed", Json.Int s.failed);
    ("coalesced", Json.Int s.coalesced);
    ("batches", Json.Int s.batches);
    ("batched", Json.Int s.batched);
    ("max_batch", Json.Int s.max_batch);
    ("runs", Json.Int s.runs);
    ("queue_depth", Json.Int s.queue_depth);
    ("waiting", Json.Int s.waiting);
    ("timeouts", Json.Int s.timeouts);
    ("shed", Json.Int s.shed);
    ("disk_hits", Json.Int s.disk_hits);
    ("disk_misses", Json.Int s.disk_misses);
    ("latency_ms_sum", Json.Float s.latency_ms_sum);
    ("latency_ms_max", Json.Float s.latency_ms_max);
  ]

let status_of_json j =
  let int name k = field name Json.to_int j "status" k in
  let fl name k = field name Json.to_float j "status" k in
  fl "uptime_s" @@ fun uptime_s ->
  int "accepted" @@ fun accepted ->
  int "completed" @@ fun completed ->
  int "failed" @@ fun failed ->
  int "coalesced" @@ fun coalesced ->
  int "batches" @@ fun batches ->
  int "batched" @@ fun batched ->
  int "max_batch" @@ fun max_batch ->
  int "runs" @@ fun runs ->
  int "queue_depth" @@ fun queue_depth ->
  int "waiting" @@ fun waiting ->
  int "timeouts" @@ fun timeouts ->
  int "shed" @@ fun shed ->
  int "disk_hits" @@ fun disk_hits ->
  int "disk_misses" @@ fun disk_misses ->
  fl "latency_ms_sum" @@ fun latency_ms_sum ->
  fl "latency_ms_max" @@ fun latency_ms_max ->
  Ok
    {
      uptime_s;
      accepted;
      completed;
      failed;
      coalesced;
      batches;
      batched;
      max_batch;
      runs;
      queue_depth;
      waiting;
      timeouts;
      shed;
      disk_hits;
      disk_misses;
      latency_ms_sum;
      latency_ms_max;
    }

let response_to_json { id; deadline_ms; payload } =
  let ms =
    match payload with
    | Pong -> [ ("op", Json.Str "pong") ]
    | Status_r s -> ("op", Json.Str "status") :: status_to_fields s
    | Sweep_r { spec; digest; batch; ms } ->
      [
        ("op", Json.Str "sweep");
        ("spec", Json.Str (Plan.spec_to_string spec));
        ("digest", Json.Str digest);
        ("batch", Json.Int batch);
        ("ms", Json.Float ms);
      ]
    | Render_r { id; text } ->
      [ ("op", Json.Str "render"); ("render", Json.Str id);
        ("text", Json.Str text) ]
    | Slept -> [ ("op", Json.Str "slept") ]
    | Bye -> [ ("op", Json.Str "bye") ]
    | Error_r { code; message } ->
      [
        ("op", Json.Str "error");
        ("code", Json.Str (error_code_to_string code));
        ("message", Json.Str message);
      ]
  in
  envelope_json ?deadline_ms ~id ms

let response_of_json j =
  decode_envelope j "response" @@ fun ~op j ->
  match op with
  | "pong" -> Ok Pong
  | "status" -> Result.map (fun s -> Status_r s) (status_of_json j)
  | "sweep" ->
    field "spec" Json.to_str j "sweep" @@ fun s ->
    field "digest" Json.to_str j "sweep" @@ fun digest ->
    field "batch" Json.to_int j "sweep" @@ fun batch ->
    field "ms" Json.to_float j "sweep" @@ fun ms ->
    Result.map
      (fun spec -> Sweep_r { spec; digest; batch; ms })
      (Plan.spec_of_string s)
  | "render" ->
    field "render" Json.to_str j "render" @@ fun rid ->
    field "text" Json.to_str j "render" @@ fun text ->
    Ok (Render_r { id = rid; text })
  | "slept" -> Ok Slept
  | "bye" -> Ok Bye
  | "error" ->
    field "code" Json.to_str j "error" @@ fun code ->
    field "message" Json.to_str j "error" @@ fun message ->
    Result.map (fun code -> Error_r { code; message }) (error_code_of_string code)
  | op -> Error (Printf.sprintf "unknown response op %S" op)

let describe_request = function
  | Ping -> "ping"
  | Status -> "status"
  | Shutdown -> "shutdown"
  | Sweep s -> "sweep " ^ Plan.spec_to_string s
  | Render id -> "render " ^ id
  | Sleep ms -> Printf.sprintf "sleep %.1fms" ms
