(** The service plane's typed wire protocol.

    One JSON object per line in both directions (see {!Wire}).  A client
    sends an {!envelope} — a client-chosen correlation id, an optional
    per-request deadline, and a {!request} — and receives exactly one
    {!envelope} carrying the same id and a {!response}.  Ids let a
    client pipeline requests on one connection; the server may answer
    out of submission order.

    Encoding and decoding are total: {!request_of_json} and
    {!response_of_json} return [Error] on anything malformed (unknown
    ops, missing or ill-typed fields), never an exception, and both
    round-trip their [to_json] counterparts exactly — the property
    [test/t_serve.ml] gates on.  Experiment specs ride as
    {!Repro_harness.Plan} spec strings (["grid:queens:d16"]), the same
    spelling the report CLI takes, so every front end shares one
    parser. *)

type request =
  | Ping
  | Status  (** Observability counters ({!status}). *)
  | Shutdown  (** Graceful: answered, then the server stops accepting. *)
  | Sweep of Repro_harness.Plan.spec
      (** Ensure one measurement unit (stats/grid/uarch/fused/trace) and
          return a digest of its results. *)
  | Render of string
      (** Render one experiment artifact (table/figure) by id. *)
  | Sleep of float
      (** Hold a worker for [ms] — a diagnostic op the timeout and
          load-shed tests (and nothing else) rely on. *)

type error_code =
  | Busy  (** Bounded request queue is full — shed, retry later. *)
  | Timeout  (** Deadline passed; the work may still complete server-side. *)
  | Bad_request
  | Server_error
  | Shutting_down

type status = {
  uptime_s : float;
  accepted : int;  (** Requests received (all ops). *)
  completed : int;
  failed : int;  (** Error responses sent (all codes). *)
  coalesced : int;
      (** Requests that joined an already-pending identical job instead
          of spawning their own computation. *)
  batches : int;  (** Batched executions that served > 1 request. *)
  batched : int;  (** Requests served through those executions. *)
  max_batch : int;
  runs : int;  (** Underlying executions actually dispatched. *)
  queue_depth : int;  (** Jobs dispatched to the pool, not yet finished. *)
  waiting : int;  (** Jobs parked in the batching window. *)
  timeouts : int;
  shed : int;
  disk_hits : int;  (** {!Repro_harness.Diskcache} counters. *)
  disk_misses : int;
  latency_ms_sum : float;  (** Over completed requests. *)
  latency_ms_max : float;
}

type response =
  | Pong
  | Status_r of status
  | Sweep_r of {
      spec : Repro_harness.Plan.spec;
      digest : string;
          (** MD5 of the marshaled results ({!Digests.of_spec}) — equal
              digests mean byte-equal measurements. *)
      batch : int;
          (** How many requests the same underlying execution served
              (1 = this one ran alone, more = it was coalesced or
              batched). *)
      ms : float;  (** Server-side latency of this request. *)
    }
  | Render_r of { id : string; text : string }
  | Slept
  | Bye  (** Shutdown acknowledged. *)
  | Error_r of { code : error_code; message : string }

type 'a envelope = { id : int; deadline_ms : float option; payload : 'a }
(** [deadline_ms] is meaningful on requests only (absent = the server's
    default); it is preserved but ignored on responses. *)

val error_code_to_string : error_code -> string
(** ["busy" | "timeout" | "bad-request" | "server-error" |
    "shutting-down"]. *)

val error_code_of_string : string -> (error_code, string) result
val request_to_json : request envelope -> Repro_util.Json.t
val request_of_json : Repro_util.Json.t -> (request envelope, string) result
val response_to_json : response envelope -> Repro_util.Json.t
val response_of_json : Repro_util.Json.t -> (response envelope, string) result

val describe_request : request -> string
(** One-word-ish rendering for log lines. *)
