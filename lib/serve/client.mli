(** Typed client for the {!Server} protocol — what `d16c client`, the
    self-test mode, the smoke tests, and the bench substrates drive.

    {!rpc} is the synchronous path.  {!send}/{!recv} split the two
    halves so one thread can put many requests in flight — across
    several connections (the coalescing tests) or pipelined on one
    connection (ids correlate the answers). *)

type t

type addr = Unix_sock of string | Tcp of string * int

val addr_to_string : addr -> string
val connect : addr -> (t, string) result
val close : t -> unit

val send :
  t -> ?deadline_ms:float -> id:int -> Proto.request -> (unit, string) result

val recv : t -> (Proto.response Proto.envelope, string) result
(** Next response on the wire, whoever it answers.  [Error] on EOF —
    a response was expected. *)

val rpc :
  t ->
  ?deadline_ms:float ->
  Proto.request ->
  (Proto.response, string) result
(** {!send} then {!recv}, checking the correlation id. *)
