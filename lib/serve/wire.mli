(** Newline-delimited JSON framing over a socket.

    One message is one {!Repro_util.Json} value on one line — the
    compact printer never emits a newline and escapes any newline inside
    a string, so ['\n'] is an unambiguous frame boundary.  Reads are
    buffered per connection; a frame longer than [max_frame] (default
    16 MiB) is an error rather than an unbounded allocation, and a
    malformed frame is an [Error] that leaves the connection usable for
    the next line. *)

type conn

val of_fd : ?max_frame:int -> Unix.file_descr -> conn
(** The [conn] owns its read buffer, not the descriptor — closing is the
    caller's job ({!Client.close}, the server's connection handler). *)

val fd : conn -> Unix.file_descr

val send : conn -> Repro_util.Json.t -> (unit, string) result
(** Write the value and a terminating newline.  [Error] on a closed or
    broken peer (EPIPE and friends) — never an exception. *)

val recv : conn -> (Repro_util.Json.t option, string) result
(** Next frame: [Ok None] on orderly EOF at a frame boundary, [Ok (Some
    v)] on a parsed frame, [Error] on junk, oversized frames, EOF inside
    a frame, or a socket error. *)
