module Json = Repro_util.Json
module Diskcache = Repro_harness.Diskcache
module Experiments = Repro_harness.Experiments

type config = {
  unix_path : string option;
  tcp : (string * int) option;
  jobs : int option;
  window_ms : float;
  max_queue : int;
  default_deadline_ms : float;
  log : string -> unit;
  log_interval_s : float;
}

let default_config () =
  {
    unix_path = Some (Filename.concat (Diskcache.dir ()) "d16c.sock");
    tcp = None;
    jobs = None;
    window_ms = 10.;
    max_queue = 64;
    default_deadline_ms = 60_000.;
    log = (fun s -> Printf.eprintf "%s\n%!" s);
    log_interval_s = 10.;
  }

type handle = {
  cfg : config;
  batcher : Batcher.t;
  started : float;
  listeners : Unix.file_descr list;
  unix_path : string option;  (* to unlink on teardown *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable waited : bool;  (* wait's teardown already ran *)
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable accept_thread : Thread.t option;
  mutable logger_thread : Thread.t option;
  mutable sleep_seq : int;
  (* Connection-level counters (guarded by [lock]). *)
  mutable c_accepted : int;
  mutable c_completed : int;
  mutable c_failed : int;
  mutable lat_sum_ms : float;
  mutable lat_max_ms : float;
}

let locked h f = Mutex.protect h.lock f

let status_of h =
  let b = Batcher.counters h.batcher in
  locked h (fun () ->
      {
        b with
        Proto.uptime_s = Unix.gettimeofday () -. h.started;
        accepted = h.c_accepted;
        completed = h.c_completed;
        failed = h.c_failed;
        disk_hits = Diskcache.hit_count ();
        disk_misses = Diskcache.miss_count ();
        latency_ms_sum = h.lat_sum_ms;
        latency_ms_max = h.lat_max_ms;
      })

let log_status h =
  let s = status_of h in
  let avg =
    if s.Proto.completed = 0 then 0.
    else s.Proto.latency_ms_sum /. float_of_int s.Proto.completed
  in
  h.cfg.log
    (Printf.sprintf
       "serve: up %.1fs reqs=%d done=%d failed=%d lat(avg/max)=%.1f/%.1fms \
        queue=%d window=%d coalesced=%d batches=%d (reqs %d, max %d) runs=%d \
        timeouts=%d shed=%d disk=%d/%d"
       s.Proto.uptime_s s.Proto.accepted s.Proto.completed s.Proto.failed avg
       s.Proto.latency_ms_max s.Proto.queue_depth s.Proto.waiting
       s.Proto.coalesced s.Proto.batches s.Proto.batched s.Proto.max_batch
       s.Proto.runs s.Proto.timeouts s.Proto.shed s.Proto.disk_hits
       s.Proto.disk_misses)

let stop h =
  let first =
    locked h (fun () ->
        if h.stopping then false
        else begin
          h.stopping <- true;
          true
        end)
  in
  if first then
    (* Wake the accept loop; it tears nothing down itself. *)
    ignore (try Unix.write h.stop_w (Bytes.make 1 '!') 0 1 with Unix.Unix_error _ -> 0)

(* One request to one response.  Everything here runs on the connection's
   thread; only [Batcher] jobs touch the pool. *)
let answer h (env : Proto.request Proto.envelope) =
  let t0 = Unix.gettimeofday () in
  let deadline =
    t0
    +. Float.max 1.
         (Option.value ~default:h.cfg.default_deadline_ms env.Proto.deadline_ms)
       /. 1000.
  in
  let submitted sub =
    match sub with
    | Ok ticket -> Batcher.await h.batcher ticket ~deadline
    | Error (code, message) -> Proto.Error_r { code; message }
  in
  let payload =
    match env.Proto.payload with
    | Proto.Ping -> Proto.Pong
    | Proto.Status -> Proto.Status_r (status_of h)
    | Proto.Shutdown ->
      stop h;
      Proto.Bye
    | Proto.Sweep spec -> submitted (Batcher.sweep h.batcher spec)
    | Proto.Render id -> (
      match Experiments.by_id id with
      | e ->
        submitted
          (Batcher.fn h.batcher ~key:("render:" ^ id) (fun () ->
               Proto.Render_r { id; text = Experiments.render e }))
      | exception Not_found ->
        Proto.Error_r
          {
            code = Proto.Bad_request;
            message = Printf.sprintf "unknown experiment id %S" id;
          })
    | Proto.Sleep ms ->
      let key =
        locked h (fun () ->
            h.sleep_seq <- h.sleep_seq + 1;
            Printf.sprintf "sleep:%d" h.sleep_seq)
      in
      submitted
        (Batcher.fn h.batcher ~key (fun () ->
             Unix.sleepf (ms /. 1000.);
             Proto.Slept))
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  locked h (fun () ->
      (match payload with
      | Proto.Error_r _ -> h.c_failed <- h.c_failed + 1
      | _ ->
        h.c_completed <- h.c_completed + 1;
        h.lat_sum_ms <- h.lat_sum_ms +. ms;
        h.lat_max_ms <- Float.max h.lat_max_ms ms);
      ());
  { Proto.id = env.Proto.id; deadline_ms = None; payload }

let bad_request ~id message =
  {
    Proto.id;
    deadline_ms = None;
    payload = Proto.Error_r { code = Proto.Bad_request; message };
  }

let conn_loop h fd =
  let conn = Wire.of_fd fd in
  let send env =
    match Wire.send conn (Proto.response_to_json env) with
    | Ok () -> true
    | Error _ -> false  (* peer gone; the loop ends on the next read *)
  in
  let rec loop () =
    match Wire.recv conn with
    | Ok None -> ()  (* orderly EOF *)
    | Error e ->
      (* Junk framing or a dead socket: answer if the pipe still works,
         then close — resynchronizing inside a corrupt stream is not
         worth the ambiguity. *)
      ignore (send (bad_request ~id:0 e))
    | Ok (Some j) -> (
      locked h (fun () -> h.c_accepted <- h.c_accepted + 1);
      match Proto.request_of_json j with
      | Error e ->
        (* Well-framed but not a request: reply (echoing the id when one
           is recoverable) and keep the connection. *)
        let id =
          Option.value ~default:0 (Option.bind (Json.member "id" j) Json.to_int)
        in
        locked h (fun () -> h.c_failed <- h.c_failed + 1);
        if send (bad_request ~id e) then loop ()
      | Ok env ->
        let resp = answer h env in
        let keep = send resp in
        (* A Shutdown reply is the connection's last word. *)
        if keep && resp.Proto.payload <> Proto.Bye then loop ())
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked h (fun () ->
      h.conns <- List.filter (fun (fd', _) -> fd' <> fd) h.conns)

let accept_loop h =
  let rec loop () =
    match Unix.select (h.stop_r :: h.listeners) [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | ready, _, _ ->
      if List.mem h.stop_r ready then ()
      else begin
        List.iter
          (fun l ->
            if List.mem l ready then
              match Unix.accept ~cloexec:true l with
              | fd, _ ->
                let t = Thread.create (conn_loop h) fd in
                locked h (fun () -> h.conns <- (fd, t) :: h.conns)
              | exception Unix.Unix_error _ -> ())
          h.listeners;
        loop ()
      end
  in
  loop ()

(* Sleep in short slices so a stop is honoured promptly, not at the end
   of a full (possibly many-second) log interval. *)
let rec logger_loop h remaining =
  if not (locked h (fun () -> h.stopping)) then
    if remaining <= 0. then begin
      log_status h;
      logger_loop h h.cfg.log_interval_s
    end
    else begin
      let slice = Float.min 0.1 remaining in
      Thread.delay slice;
      logger_loop h (remaining -. slice)
    end

let listen_unix path =
  (* A stale socket file from a dead server would fail the bind; if
     something answers on it, a live server owns it — refuse. *)
  (match (Unix.stat path).Unix.st_kind with
  | Unix.S_SOCK -> (
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      failwith (Printf.sprintf "%s: a server is already listening" path)
    | exception Unix.Unix_error _ ->
      Unix.close probe;
      Unix.unlink path)
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let start (cfg : config) =
  if cfg.unix_path = None && cfg.tcp = None then
    Error "serve: no listener (need a socket path or a TCP address)"
  else
    match
      let unix_l = Option.map listen_unix cfg.unix_path in
      let tcp_l = Option.map (fun (host, port) -> listen_tcp host port) cfg.tcp in
      (unix_l, tcp_l)
    with
    | exception Failure m -> Error m
    | exception Unix.Unix_error (e, _, arg) ->
      Error
        (Printf.sprintf "serve: bind %s: %s"
           (if arg = "" then "listener" else arg)
           (Unix.error_message e))
    | unix_l, tcp_l ->
      let stop_r, stop_w = Unix.pipe ~cloexec:true () in
      let h =
        {
          cfg;
          batcher =
            Batcher.create ?jobs:cfg.jobs ~window_ms:cfg.window_ms
              ~max_queue:cfg.max_queue ();
          started = Unix.gettimeofday ();
          listeners = List.filter_map Fun.id [ unix_l; tcp_l ];
          unix_path = (if unix_l = None then None else cfg.unix_path);
          stop_r;
          stop_w;
          lock = Mutex.create ();
          stopping = false;
          waited = false;
          conns = [];
          accept_thread = None;
          logger_thread = None;
          sleep_seq = 0;
          c_accepted = 0;
          c_completed = 0;
          c_failed = 0;
          lat_sum_ms = 0.;
          lat_max_ms = 0.;
        }
      in
      h.accept_thread <- Some (Thread.create accept_loop h);
      if cfg.log_interval_s > 0. then
        h.logger_thread <-
          Some (Thread.create (fun () -> logger_loop h cfg.log_interval_s) ());
      cfg.log
        (Printf.sprintf "serve: listening%s%s (window %.0fms, queue %d)"
           (match cfg.unix_path with
           | Some p when unix_l <> None -> " on " ^ p
           | _ -> "")
           (match cfg.tcp with
           | Some (host, port) -> Printf.sprintf " on tcp %s:%d" host port
           | None -> "")
           cfg.window_ms cfg.max_queue);
      Ok h

let wait h =
  Option.iter Thread.join h.accept_thread;
  if locked h (fun () ->
         let first = not h.waited in
         h.waited <- true;
         not first)
  then ()
  else begin
  h.accept_thread <- None;
  (* Finish and answer the work in flight; refuse new work. *)
  Batcher.shutdown h.batcher;
  (* Unblock every connection thread still parked in a read. *)
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    (locked h (fun () -> h.conns));
  List.iter (fun (_, t) -> Thread.join t) (locked h (fun () -> h.conns));
  Option.iter Thread.join h.logger_thread;
  h.logger_thread <- None;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) h.listeners;
  Option.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
    h.unix_path;
    (try Unix.close h.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close h.stop_w with Unix.Unix_error _ -> ());
    log_status h;
    h.cfg.log "serve: stopped"
  end

let run cfg = Result.map wait (start cfg)
