module Json = Repro_util.Json

type conn = {
  fd : Unix.file_descr;
  max_frame : int;
  buf : Buffer.t;  (** Bytes read but not yet consumed. *)
  mutable eof : bool;
}

let of_fd ?(max_frame = 16 * 1024 * 1024) fd =
  { fd; max_frame; buf = Buffer.create 512; eof = false }

let fd c = c.fd

let send c v =
  let line = Json.to_string v ^ "\n" in
  let b = Bytes.unsafe_of_string line in
  let rec write off =
    if off >= Bytes.length b then Ok ()
    else
      match Unix.write c.fd b off (Bytes.length b - off) with
      | 0 -> Error "send: peer closed"
      | n -> write (off + n)
      | exception Unix.Unix_error (e, _, _) ->
        Error ("send: " ^ Unix.error_message e)
  in
  write 0

(* Pull the next '\n'-terminated line out of the buffer, refilling from
   the socket as needed.  The buffer survives across calls, so a read
   that straddles two frames loses nothing. *)
let recv c =
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear c.buf;
      Buffer.add_substring c.buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  in
  let rec next () =
    match take_line () with
    | Some line -> (
      match Json.parse line with
      | Ok v -> Ok (Some v)
      | Error e -> Error ("recv: bad frame: " ^ e))
    | None ->
      if c.eof then
        if Buffer.length c.buf = 0 then Ok None
        else Error "recv: EOF inside a frame"
      else if Buffer.length c.buf > c.max_frame then
        Error "recv: frame too long"
      else (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 ->
          c.eof <- true;
          next ()
        | n ->
          Buffer.add_subbytes c.buf chunk 0 n;
          next ()
        | exception Unix.Unix_error (e, _, _) ->
          Error ("recv: " ^ Unix.error_message e))
  in
  next ()
