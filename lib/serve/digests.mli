(** Canonical digests of a plan spec's results.

    [of_spec] ensures the spec's measurements exist (through {!Runs},
    so memo- or disk-warm axes cost nothing) and returns the MD5 hex of
    their marshaled values, read back from the same accessors every
    experiment uses.  Two executions that produce byte-equal
    measurements produce equal digests — which is how the server's
    clients, the differential tests, and the CI smoke job check that a
    batched or coalesced request returned exactly what a directly-run
    plan would have. *)

val of_spec :
  ?map:Repro_trace.Replay.map -> Repro_harness.Plan.spec -> string
(** [?map] is forwarded to the replay engines, like
    {!Repro_harness.Plan.execute}'s. *)

val key_of_spec : Repro_harness.Plan.spec -> string
(** The spec's single-flight identity: the same {!Repro_harness.Runs}
    digest keys the disk cache files use (kind-tagged), so two requests
    coalesce exactly when they would read the same cache entries. *)
