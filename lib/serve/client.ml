type t = { conn : Wire.conn; mutable next_id : int }

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let connect addr =
  let mk domain sockaddr =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> Ok { conn = Wire.of_fd fd; next_id = 1 }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" (addr_to_string addr)
           (Unix.error_message e))
  in
  match addr with
  | Unix_sock path -> mk Unix.PF_UNIX (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
      mk Unix.PF_INET (Unix.ADDR_INET (addrs.(0), port))
    | _ | (exception Not_found) ->
      Error (Printf.sprintf "unknown host %S" host))

let close t =
  try Unix.close (Wire.fd t.conn) with Unix.Unix_error _ -> ()

let send t ?deadline_ms ~id request =
  Wire.send t.conn
    (Proto.request_to_json { Proto.id; deadline_ms; payload = request })

let recv t =
  match Wire.recv t.conn with
  | Ok (Some j) -> Proto.response_of_json j
  | Ok None -> Error "connection closed by server"
  | Error e -> Error e

let rpc t ?deadline_ms request =
  let id = t.next_id in
  t.next_id <- id + 1;
  match send t ?deadline_ms ~id request with
  | Error e -> Error e
  | Ok () -> (
    match recv t with
    | Error e -> Error e
    | Ok env ->
      if env.Proto.id = id then Ok env.Proto.payload
      else
        Error
          (Printf.sprintf "response id %d does not match request id %d"
             env.Proto.id id))
