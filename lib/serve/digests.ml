module Plan = Repro_harness.Plan
module Runs = Repro_harness.Runs

let md5 v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let grid_values bench target =
  List.map
    (fun (size, block, sub) -> Runs.cached bench target ~size ~block ~sub)
    Runs.standard_grid

let uarch_values bench target =
  List.map (Runs.uarch bench target) Runs.standard_uarch_configs

let of_spec ?map (s : Plan.spec) =
  Plan.execute ?chunk_map:map s;
  let bench = s.Plan.bench and target = s.Plan.target in
  match s.Plan.kind with
  | Plan.Stats -> md5 (Runs.stats bench target)
  | Plan.Grid -> md5 (grid_values bench target)
  | Plan.Uarch -> md5 (uarch_values bench target)
  | Plan.Fused -> md5 (grid_values bench target, uarch_values bench target)
  | Plan.Trace -> (
    (* The stored trace file itself is the result.  With the disk cache
       disabled the capture file is gone by design; digest the reader's
       identity key instead so the response stays well-formed. *)
    let path = Runs.trace_path bench target in
    match Digest.file path with
    | d -> Digest.to_hex d
    | exception Sys_error _ -> md5 ("volatile-trace", Runs.trace_key bench target))

let key_of_spec (s : Plan.spec) =
  let bench = s.Plan.bench and target = s.Plan.target in
  match s.Plan.kind with
  | Plan.Stats -> "stats:" ^ Runs.stats_key bench target
  | Plan.Grid -> "grid:" ^ Runs.grid_key bench target
  | Plan.Uarch -> "uarch:" ^ Runs.uarch_sweep_key bench target
  | Plan.Fused ->
    "fused:" ^ Runs.grid_key bench target ^ ":"
    ^ Runs.uarch_sweep_key bench target
  | Plan.Trace -> "trace:" ^ Runs.trace_key bench target
