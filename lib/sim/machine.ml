module Insn = Repro_core.Insn
module Target = Repro_core.Target
module D16m = Repro_core.D16m
module Regs = Repro_core.Regs
module Trapcode = Repro_core.Trapcode
module Bitops = Repro_util.Bitops
module Link = Repro_link.Link

type trace = { iaddr : int array; dinfo : int array }

let decode_daccess packed =
  if packed = 0 then None
  else Some (packed land 1 = 1, packed lsr 5, (packed lsr 1) land 0xF)

let encode_daccess ~is_write ~addr ~bytes =
  (addr lsl 5) lor (bytes lsl 1) lor (if is_write then 1 else 0)

type result = {
  exit_code : int;
  output : string;
  ic : int;
  loads : int;
  stores : int;
  load_words : int;
  store_words : int;
  interlocks : int;
  trace : trace option;
}

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let fp_latency_add = 2
let fp_latency_mul = 4
let fp_latency_div = 8
let fp_latency_cmp = 2
let load_latency = 1

(* Growable int array. *)
type ibuf = { mutable a : int array; mutable n : int }

let ibuf_make () = { a = Array.make 65536 0; n = 0 }

let ibuf_push b v =
  if b.n = Array.length b.a then begin
    let a' = Array.make (2 * b.n) 0 in
    Array.blit b.a 0 a' 0 b.n;
    b.a <- a'
  end;
  b.a.(b.n) <- v;
  b.n <- b.n + 1

let ibuf_contents b = Array.sub b.a 0 b.n

let run ?(trace = true) ?on_insn ?(max_steps = 400_000_000) (img : Link.image)
    =
  let t = img.Link.target in
  let zero_r0 = t.Target.zero_r0 in
  let insn_bytes = Target.insn_bytes t in
  let regs = Array.make t.Target.n_gpr 0 in
  let fregs = Array.make t.Target.n_fpr 0.0 in
  regs.(Regs.sp) <- img.Link.sp_init;
  let mem = Bytes.make img.Link.mem_size '\000' in
  List.iter
    (fun (addr, b) -> Bytes.blit b 0 mem addr (Bytes.length b))
    img.Link.init;
  let insns = img.Link.insns in
  let addr_of = img.Link.addr_of in
  let n_insns = Array.length insns in
  (* On a mixed-width target the trace marks wide (4-byte) instructions by
     setting bit 0 of the (always even) instruction address, so downstream
     fetch models can recover instruction sizes without the image. *)
  let tr_addr =
    if t.Target.mixed then
      Array.mapi
        (fun i a -> if D16m.is_wide insns.(i) then a lor 1 else a)
        addr_of
    else addr_of
  in
  let isize i =
    if t.Target.mixed then D16m.size insns.(i) else insn_bytes
  in
  (* Return address of a branch-and-link at index [i]: past the branch and
     its delay slot, whatever their encoded sizes. *)
  let link_ret addr i =
    addr + isize i + (if i + 1 < n_insns then isize (i + 1) else insn_bytes)
  in
  let output = Buffer.create 256 in
  let ic = ref 0 in
  let loads = ref 0 in
  let stores = ref 0 in
  let load_words = ref 0 in
  let store_words = ref 0 in
  let interlocks = ref 0 in
  let cycle = ref 0 in
  let ready_g = Array.make t.Target.n_gpr 0 in
  let ready_f = Array.make t.Target.n_fpr 0 in
  let ready_status = ref 0 in
  let status = ref 0 in
  let tr_iaddr = if trace then Some (ibuf_make ()) else None in
  let tr_dinfo = if trace then Some (ibuf_make ()) else None in
  let exit_code = ref None in
  (* Current data access of the executing instruction, for the trace. *)
  let cur_d = ref 0 in

  let stall_until r ready =
    if ready.(r) > !cycle then begin
      let s = ready.(r) - !cycle in
      interlocks := !interlocks + s;
      cycle := !cycle + s
    end
  in
  let useg r =
    stall_until r ready_g;
    if zero_r0 && r = 0 then 0 else regs.(r)
  in
  let usef r =
    stall_until r ready_f;
    fregs.(r)
  in
  let setg r v = if not (zero_r0 && r = 0) then regs.(r) <- v in
  let setg_lat r v lat =
    setg r v;
    ready_g.(r) <- !cycle + 1 + lat
  in
  let setf_lat r v lat =
    fregs.(r) <- v;
    ready_f.(r) <- !cycle + 1 + lat
  in

  let check_range addr bytes =
    if addr < 0 || addr + bytes > img.Link.mem_size then
      err "memory access out of range: 0x%x" addr
  in
  let read32 addr =
    check_range addr 4;
    if addr land 3 <> 0 then err "unaligned word read at 0x%x" addr;
    Int32.to_int (Bytes.get_int32_le mem addr)
  in
  let write32 addr v =
    check_range addr 4;
    if addr land 3 <> 0 then err "unaligned word write at 0x%x" addr;
    Bytes.set_int32_le mem addr (Int32.of_int v)
  in
  let read64f addr =
    check_range addr 8;
    if addr land 3 <> 0 then err "unaligned double read at 0x%x" addr;
    Int64.float_of_bits (Bytes.get_int64_le mem addr)
  in
  let write64f addr v =
    check_range addr 8;
    if addr land 3 <> 0 then err "unaligned double write at 0x%x" addr;
    Bytes.set_int64_le mem addr (Int64.bits_of_float v)
  in
  let note_read addr bytes =
    incr loads;
    load_words := !load_words + ((bytes + 3) / 4);
    cur_d := encode_daccess ~is_write:false ~addr ~bytes
  in
  let note_write addr bytes =
    incr stores;
    store_words := !store_words + ((bytes + 3) / 4);
    cur_d := encode_daccess ~is_write:true ~addr ~bytes
  in

  let eval_cond (c : Insn.cond) a b =
    match c with
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
    | Eq -> a = b
    | Ne -> a <> b
    | Ltu -> Bitops.ltu32 a b
    | Leu -> not (Bitops.ltu32 b a)
    | Gtu -> Bitops.ltu32 b a
    | Geu -> not (Bitops.ltu32 a b)
  in
  let eval_fcond (c : Insn.cond) (a : float) b =
    match c with
    | Lt | Ltu -> a < b
    | Le | Leu -> a <= b
    | Gt | Gtu -> a > b
    | Ge | Geu -> a >= b
    | Eq -> a = b
    | Ne -> a <> b
  in
  let alu (op : Insn.alu) a b =
    match op with
    | Add -> Bitops.add32 a b
    | Sub -> Bitops.sub32 a b
    | And -> Bitops.of_u32 (a land b)
    | Or -> Bitops.of_u32 (a lor b)
    | Xor -> Bitops.of_u32 (a lxor b)
    | Shl -> Bitops.shl32 a (b land 31)
    | Shr -> Bitops.shr32 a (b land 31)
    | Shra -> Bitops.sra32 a (b land 31)
  in

  let idx = ref img.Link.entry_index in
  let pending = ref (-1) in
  let steps = ref 0 in
  let branch_target = img.Link.branch_target in
  (try
     while !exit_code = None do
       if !idx < 0 || !idx >= n_insns then err "pc out of text (index %d)" !idx;
       incr steps;
       if !steps > max_steps then err "step limit exceeded (%d)" max_steps;
       let i = insns.(!idx) in
       let addr = addr_of.(!idx) in
       cur_d := 0;
       let just_branched = ref false in
       let branch_idx ti target =
         if !pending >= 0 then err "branch in delay slot at 0x%x" addr;
         if ti < 0 then err "branch to non-instruction address 0x%x" target;
         pending := ti;
         just_branched := true
       in
       (* Register jumps resolve dynamically; PC-relative branches were
          resolved to instruction indices at link time. *)
       let branch_to target = branch_idx (Link.index_at img target) target in
       let branch_static off = branch_idx branch_target.(!idx) (addr + off) in
       (match i with
       | Insn.Load (w, rd, base, off) ->
         let a = Bitops.add32 (useg base) off in
         let v =
           match w with
           | Lw ->
             note_read a 4;
             read32 a
           | Lh ->
             check_range a 2;
             note_read a 2;
             Bytes.get_int16_le mem a
           | Lhu ->
             check_range a 2;
             note_read a 2;
             Bytes.get_uint16_le mem a
           | Lb ->
             check_range a 1;
             note_read a 1;
             Bytes.get_int8 mem a
           | Lbu ->
             check_range a 1;
             note_read a 1;
             Bytes.get_uint8 mem a
         in
         setg_lat rd v load_latency
       | Insn.Store (w, rs, base, off) ->
         let a = Bitops.add32 (useg base) off in
         let v = useg rs in
         (match w with
         | Sw ->
           note_write a 4;
           write32 a v
         | Sh ->
           check_range a 2;
           note_write a 2;
           Bytes.set_uint16_le mem a (v land 0xFFFF)
         | Sb ->
           check_range a 1;
           note_write a 1;
           Bytes.set_uint8 mem a (v land 0xFF))
       | Insn.Fload (s, fd, base, off) ->
         let a = Bitops.add32 (useg base) off in
         (match s with
         | Df ->
           note_read a 8;
           setf_lat fd (read64f a) load_latency
         | Sf ->
           note_read a 4;
           setf_lat fd (Int32.float_of_bits (Int32.of_int (read32 a))) load_latency)
       | Insn.Fstore (s, fs, base, off) ->
         let a = Bitops.add32 (useg base) off in
         let v = usef fs in
         (match s with
         | Df ->
           note_write a 8;
           write64f a v
         | Sf ->
           note_write a 4;
           write32 a (Int32.to_int (Int32.bits_of_float v)))
       | Insn.Ldc (rd, off) ->
         (* Pool addressing is relative to the word-aligned PC. *)
         let a = (addr land lnot 3) + off in
         note_read a 4;
         setg_lat rd (read32 a) load_latency
       | Insn.Alu (op, rd, ra, rb) ->
         let va = useg ra in
         let vb = useg rb in
         setg_lat rd (alu op va vb) 0
       | Insn.Alui (op, rd, ra, imm) -> setg_lat rd (alu op (useg ra) imm) 0
       | Insn.Mv (rd, rs) -> setg_lat rd (useg rs) 0
       | Insn.Mvi (rd, imm) -> setg_lat rd imm 0
       | Insn.Mvhi (rd, imm) -> setg_lat rd (Bitops.of_u32 (imm lsl 16)) 0
       | Insn.Neg (rd, rs) -> setg_lat rd (Bitops.sub32 0 (useg rs)) 0
       | Insn.Inv (rd, rs) -> setg_lat rd (Bitops.of_u32 (lnot (useg rs))) 0
       | Insn.Cmp (c, rd, ra, rb) ->
         let va = useg ra in
         let vb = useg rb in
         setg_lat rd (if eval_cond c va vb then 1 else 0) 0
       | Insn.Cmpi (c, rd, ra, imm) ->
         setg_lat rd (if eval_cond c (useg ra) imm then 1 else 0) 0
       | Insn.Br off -> branch_static off
       | Insn.Bz (r, off) -> if useg r = 0 then branch_static off
       | Insn.Bnz (r, off) -> if useg r <> 0 then branch_static off
       | Insn.Brl off ->
         setg_lat Regs.link (link_ret addr !idx) 0;
         branch_static off
       | Insn.J r -> branch_to (useg r)
       | Insn.Jz (rt, rd) ->
         let target = useg rd in
         if useg rt = 0 then branch_to target
       | Insn.Jnz (rt, rd) ->
         let target = useg rd in
         if useg rt <> 0 then branch_to target
       | Insn.Jl r ->
         let target = useg r in
         setg_lat Regs.link (link_ret addr !idx) 0;
         branch_to target
       | Insn.Fbin (op, _, fd, fa, fb) ->
         let va = usef fa in
         let vb = usef fb in
         let v, lat =
           match op with
           | Fadd -> (va +. vb, fp_latency_add)
           | Fsub -> (va -. vb, fp_latency_add)
           | Fmul -> (va *. vb, fp_latency_mul)
           | Fdiv -> (va /. vb, fp_latency_div)
         in
         setf_lat fd v lat
       | Insn.Fmv (_, fd, fs) -> setf_lat fd (usef fs) 0
       | Insn.Fneg (_, fd, fs) -> setf_lat fd (-.usef fs) 0
       | Insn.Fcmp (c, _, fa, fb) ->
         let va = usef fa in
         let vb = usef fb in
         status := (if eval_fcond c va vb then 1 else 0);
         ready_status := !cycle + 1 + fp_latency_cmp
       | Insn.Cvtif (_, fd, rs) ->
         setf_lat fd (float_of_int (useg rs)) fp_latency_add
       | Insn.Cvtfi (_, rd, fs) ->
         (* C truncation toward zero. *)
         setg_lat rd (Bitops.of_u32 (Float.to_int (usef fs))) fp_latency_add
       | Insn.Rdsr rd ->
         if !ready_status > !cycle then begin
           let s = !ready_status - !cycle in
           interlocks := !interlocks + s;
           cycle := !cycle + s
         end;
         setg_lat rd !status 0
       | Insn.Trap code ->
         if code = Trapcode.exit then exit_code := Some (useg Regs.ret_gpr land 0xFF)
         else if code = Trapcode.put_int then
           Buffer.add_string output (string_of_int (useg Regs.ret_gpr))
         else if code = Trapcode.put_char then
           Buffer.add_char output (Char.chr (useg Regs.ret_gpr land 0xFF))
         else if code = Trapcode.put_float then
           Buffer.add_string output (Printf.sprintf "%.6f" fregs.(Regs.ret_fpr))
         else err "bad trap %d" code
       | Insn.Nop -> ());
       incr ic;
       incr cycle;
       let taddr = tr_addr.(!idx) in
       (match on_insn with
       | Some f -> f ~iaddr:taddr ~dinfo:!cur_d
       | None -> ());
       (match (tr_iaddr, tr_dinfo) with
       | Some ia, Some di ->
         ibuf_push ia taddr;
         ibuf_push di !cur_d
       | _ -> ());
       if !just_branched then idx := !idx + 1
       else if !pending >= 0 then begin
         idx := !pending;
         pending := -1
       end
       else idx := !idx + 1
     done
   with Runtime_error _ as e ->
     (* Attach context. *)
     let ctx =
       Printf.sprintf " (at index %d, %s, ic=%d)" !idx
         (if !idx >= 0 && !idx < n_insns then Insn.to_string insns.(!idx)
          else "?")
         !ic
     in
     raise
       (match e with
       | Runtime_error m -> Runtime_error (m ^ ctx)
       | e -> e));
  {
    exit_code = Option.value !exit_code ~default:0;
    output = Buffer.contents output;
    ic = !ic;
    loads = !loads;
    stores = !stores;
    load_words = !load_words;
    store_words = !store_words;
    interlocks = !interlocks;
    trace =
      (match (tr_iaddr, tr_dinfo) with
      | Some ia, Some di ->
        Some { iaddr = ibuf_contents ia; dinfo = ibuf_contents di }
      | _ -> None);
  }
