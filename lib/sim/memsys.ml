type cache_config = {
  size_bytes : int;
  block_bytes : int;
  sub_block_bytes : int;
}

let cache_config ~size ~block ~sub =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  let fail fmt = Printf.ksprintf invalid_arg ("Memsys.cache_config: " ^^ fmt) in
  if not (pow2 size) then fail "size %d is not a positive power of two" size;
  if not (pow2 block) then fail "block %d is not a positive power of two" block;
  if not (pow2 sub) then
    fail "sub-block %d is not a positive power of two" sub;
  if sub > block then fail "sub-block %d exceeds block %d" sub block;
  if block > size then fail "block %d exceeds cache size %d" block size;
  { size_bytes = size; block_bytes = block; sub_block_bytes = sub }

type cache_stats = { accesses : int; misses : int; words_transferred : int }

let miss_rate s =
  if s.accesses = 0 then 0. else float_of_int s.misses /. float_of_int s.accesses

type nocache = { irequests : int; drequests : int }

(* The cacheless machine's one-block instruction buffer (paper Section
   4.2), shared by the trace replays and the cycle-accurate pipeline. *)
module Fetchbuf = struct
  type t = { bus_bytes : int; mutable block : int; mutable requests : int }

  let make ~bus_bytes = { bus_bytes; block = -1; requests = 0 }

  let fetch b ~addr =
    let block = addr / b.bus_bytes in
    if block = b.block then false
    else begin
      b.block <- block;
      b.requests <- b.requests + 1;
      true
    end

  let requests b = b.requests
  let last_block b = b.block
end

let data_requests ~bus_bytes ~bytes = (bytes + bus_bytes - 1) / bus_bytes

let get_trace (r : Machine.result) =
  match r.Machine.trace with
  | Some t -> t
  | None -> invalid_arg "Memsys: result has no trace"

let replay_nocache ~bus_bytes (r : Machine.result) =
  let t = get_trace r in
  let buf = Fetchbuf.make ~bus_bytes in
  let dreq = ref 0 in
  let n = Array.length t.Machine.iaddr in
  for i = 0 to n - 1 do
    ignore (Fetchbuf.fetch buf ~addr:t.Machine.iaddr.(i));
    let d = t.Machine.dinfo.(i) in
    if d <> 0 then begin
      let bytes = (d lsr 1) land 0xF in
      dreq := !dreq + data_requests ~bus_bytes ~bytes
    end
  done;
  { irequests = Fetchbuf.requests buf; drequests = !dreq }

let nocache_cycles ~wait_states (r : Machine.result) nc =
  r.Machine.ic + r.Machine.interlocks
  + (wait_states * (nc.irequests + nc.drequests))

(* Direct-mapped sub-blocked cache. ----------------------------------------- *)

module Cache = struct
  type t = {
    cfg : cache_config;
    tags : int array;
    valid : bool array array;  (* per set, per sub-block *)
    mutable accesses : int;
    mutable misses : int;
    mutable words : int;
  }

  let make cfg =
    let sets = max 1 (cfg.size_bytes / cfg.block_bytes) in
    let subs = max 1 (cfg.block_bytes / cfg.sub_block_bytes) in
    {
      cfg;
      tags = Array.make sets (-1);
      valid = Array.init sets (fun _ -> Array.make subs false);
      accesses = 0;
      misses = 0;
      words = 0;
    }

  (* One access event covering [addr, addr+bytes); a read miss prefetches
     the following sub-block (wrapping within the block). *)
  let access c ~is_read ~addr ~bytes =
    let cfg = c.cfg in
    let sets = Array.length c.tags in
    let subs_per_block = max 1 (cfg.block_bytes / cfg.sub_block_bytes) in
    c.accesses <- c.accesses + 1;
    let missed = ref false in
    let fetch_sub set sub =
      if not c.valid.(set).(sub) then begin
        c.valid.(set).(sub) <- true;
        c.words <- c.words + (cfg.sub_block_bytes / 4)
      end
    in
    let touch a =
      let block = a / cfg.block_bytes in
      let set = block mod sets in
      let sub = a mod cfg.block_bytes / cfg.sub_block_bytes in
      if c.tags.(set) <> block then begin
        c.tags.(set) <- block;
        Array.fill c.valid.(set) 0 subs_per_block false;
        missed := true;
        fetch_sub set sub;
        if is_read then fetch_sub set ((sub + 1) mod subs_per_block)
      end
      else if not c.valid.(set).(sub) then begin
        missed := true;
        fetch_sub set sub;
        if is_read then fetch_sub set ((sub + 1) mod subs_per_block)
      end
    in
    let first = addr in
    let last = addr + bytes - 1 in
    let step = cfg.sub_block_bytes in
    let a = ref (first / step * step) in
    while !a <= last do
      touch !a;
      a := !a + step
    done;
    if !missed then c.misses <- c.misses + 1;
    !missed

  let stats c =
    { accesses = c.accesses; misses = c.misses; words_transferred = c.words }
end

type cached = {
  icache : cache_stats;
  dcache_read : cache_stats;
  dcache_write : cache_stats;
}

let replay_cached ~insn_bytes ~icache ~dcache (r : Machine.result) =
  let t = get_trace r in
  let ic = Cache.make icache in
  let dc = Cache.make dcache in
  let dreads = ref 0 in
  let dread_miss = ref 0 in
  let dwrites = ref 0 in
  let dwrite_miss = ref 0 in
  let n = Array.length t.Machine.iaddr in
  for i = 0 to n - 1 do
    ignore
      (Cache.access ic ~is_read:true ~addr:t.Machine.iaddr.(i)
         ~bytes:insn_bytes);
    let d = t.Machine.dinfo.(i) in
    if d <> 0 then begin
      let is_write = d land 1 = 1 in
      let bytes = (d lsr 1) land 0xF in
      let addr = d lsr 5 in
      let missed = Cache.access dc ~is_read:(not is_write) ~addr ~bytes in
      if is_write then begin
        incr dwrites;
        if missed then incr dwrite_miss
      end
      else begin
        incr dreads;
        if missed then incr dread_miss
      end
    end
  done;
  {
    icache = Cache.stats ic;
    dcache_read =
      { accesses = !dreads; misses = !dread_miss; words_transferred = 0 };
    dcache_write =
      { accesses = !dwrites; misses = !dwrite_miss; words_transferred = 0 };
  }

let cached_cycles ~miss_penalty (r : Machine.result) (c : cached) =
  r.Machine.ic + r.Machine.interlocks
  + miss_penalty
    * (c.icache.misses + c.dcache_read.misses + c.dcache_write.misses)

let cpi ~cycles ~ic = float_of_int cycles /. float_of_int ic

let normalized_cpi ~cycles ~reference_ic =
  float_of_int cycles /. float_of_int reference_ic
