type cache_config = {
  size_bytes : int;
  block_bytes : int;
  sub_block_bytes : int;
}

let cache_config ~size ~block ~sub =
  let pow2 n = n > 0 && n land (n - 1) = 0 in
  let fail fmt = Printf.ksprintf invalid_arg ("Memsys.cache_config: " ^^ fmt) in
  if not (pow2 size) then fail "size %d is not a positive power of two" size;
  if not (pow2 block) then fail "block %d is not a positive power of two" block;
  if not (pow2 sub) then
    fail "sub-block %d is not a positive power of two" sub;
  if sub > block then fail "sub-block %d exceeds block %d" sub block;
  if block > size then fail "block %d exceeds cache size %d" block size;
  { size_bytes = size; block_bytes = block; sub_block_bytes = sub }

type cache_stats = { accesses : int; misses : int; words_transferred : int }

let miss_rate s =
  if s.accesses = 0 then 0. else float_of_int s.misses /. float_of_int s.accesses

type nocache = { irequests : int; drequests : int }

(* The cacheless machine's one-block instruction buffer (paper Section
   4.2), shared by the trace replays and the cycle-accurate pipeline. *)
module Fetchbuf = struct
  type t = { bus_bytes : int; mutable block : int; mutable requests : int }

  let make ~bus_bytes = { bus_bytes; block = -1; requests = 0 }

  let fetch b ~addr =
    let block = addr / b.bus_bytes in
    if block = b.block then false
    else begin
      b.block <- block;
      b.requests <- b.requests + 1;
      true
    end

  let requests b = b.requests
  let last_block b = b.block
end

let data_requests ~bus_bytes ~bytes = (bytes + bus_bytes - 1) / bus_bytes

let get_trace (r : Machine.result) =
  match r.Machine.trace with
  | Some t -> t
  | None -> invalid_arg "Memsys: result has no trace"

let replay_nocache ~bus_bytes (r : Machine.result) =
  let t = get_trace r in
  let buf = Fetchbuf.make ~bus_bytes in
  let dreq = ref 0 in
  let n = Array.length t.Machine.iaddr in
  for i = 0 to n - 1 do
    (* Bit 0 of a traced instruction address marks a wide (4-byte)
       instruction on a mixed-width target; the tail halfword may need a
       second bus request. *)
    let a = t.Machine.iaddr.(i) in
    let wide = a land 1 <> 0 in
    let a = a land lnot 1 in
    ignore (Fetchbuf.fetch buf ~addr:a);
    if wide then ignore (Fetchbuf.fetch buf ~addr:(a + 2));
    let d = t.Machine.dinfo.(i) in
    if d <> 0 then begin
      let bytes = (d lsr 1) land 0xF in
      dreq := !dreq + data_requests ~bus_bytes ~bytes
    end
  done;
  { irequests = Fetchbuf.requests buf; drequests = !dreq }

let nocache_cycles ~wait_states (r : Machine.result) nc =
  r.Machine.ic + r.Machine.interlocks
  + (wait_states * (nc.irequests + nc.drequests))

(* Direct-mapped sub-blocked cache. ----------------------------------------- *)

module Cache = struct
  (* All three geometry parameters are powers of two (enforced by
     {!cache_config}), so addressing is pure shift/mask: for byte address
     [a], the global sub-block number is [a lsr sub_shift], the block is
     [gs lsr sub_bits], the set is [block land set_mask] and the
     sub-block-within-block is [gs land sub_mask].  The per-set valid
     bits live in one flat bitset (bit [(set lsl sub_bits) lor sub]). *)
  type t = {
    cfg : cache_config;
    sets : int;
    subs_per_block : int;
    block_shift : int;  (* log2 block_bytes *)
    sub_shift : int;  (* log2 sub_block_bytes *)
    sub_bits : int;  (* log2 subs_per_block *)
    set_mask : int;  (* sets - 1 *)
    sub_mask : int;  (* subs_per_block - 1 *)
    sub_words : int;  (* words fetched per sub-block fill *)
    tags : int array;
    valid : Bytes.t;  (* flat valid bitset, subs_per_block bits per set *)
    mutable accesses : int;
    mutable misses : int;
    mutable words : int;
  }

  let ilog2 n =
    let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
    go 0 n

  let make cfg =
    let sets = max 1 (cfg.size_bytes / cfg.block_bytes) in
    let subs = max 1 (cfg.block_bytes / cfg.sub_block_bytes) in
    {
      cfg;
      sets;
      subs_per_block = subs;
      block_shift = ilog2 cfg.block_bytes;
      sub_shift = ilog2 cfg.sub_block_bytes;
      sub_bits = ilog2 subs;
      set_mask = sets - 1;
      sub_mask = subs - 1;
      sub_words = cfg.sub_block_bytes / 4;
      tags = Array.make sets (-1);
      valid = Bytes.make (((sets * subs) + 7) lsr 3) '\000';
      accesses = 0;
      misses = 0;
      words = 0;
    }

  (* Flat bitset helpers (also used for the chunk engine's per-set and
     per-sub side bitsets). *)
  let bit_is_set v i =
    Char.code (Bytes.unsafe_get v (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set_bit v i =
    let byte = i lsr 3 in
    Bytes.unsafe_set v byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get v byte) lor (1 lsl (i land 7))))

  (* Invalidate every sub-block bit of one set.  With >= 8 subs the set's
     bits are whole bytes (the bit base is subs-aligned); with fewer they
     are a contiguous field inside one byte. *)
  let clear_set c set =
    let base = set lsl c.sub_bits in
    if c.subs_per_block >= 8 then
      Bytes.fill c.valid (base lsr 3) (c.subs_per_block lsr 3) '\000'
    else begin
      let byte = base lsr 3 in
      let mask =
        lnot (((1 lsl c.subs_per_block) - 1) lsl (base land 7)) land 0xFF
      in
      Bytes.unsafe_set c.valid byte
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get c.valid byte) land mask))
    end

  let fetch_sub c base sub =
    let i = base lor sub in
    if not (bit_is_set c.valid i) then begin
      set_bit c.valid i;
      c.words <- c.words + c.sub_words
    end

  (* One sub-block touch of a wider access: replace on tag mismatch, fill
     the touched sub (plus the wrap-around prefetch on reads) when
     invalid. *)
  let touch c ~is_read gs missed =
    let block = gs lsr c.sub_bits in
    let set = block land c.set_mask in
    let sub = gs land c.sub_mask in
    let base = set lsl c.sub_bits in
    if Array.unsafe_get c.tags set <> block then begin
      Array.unsafe_set c.tags set block;
      clear_set c set;
      missed := true;
      fetch_sub c base sub;
      if is_read then fetch_sub c base ((sub + 1) land c.sub_mask)
    end
    else if not (bit_is_set c.valid (base lor sub)) then begin
      missed := true;
      fetch_sub c base sub;
      if is_read then fetch_sub c base ((sub + 1) land c.sub_mask)
    end

  (* One access event covering [addr, addr+bytes); a read miss prefetches
     the following sub-block (wrapping within the block).  The common case
     — the event inside one sub-block — takes the branch-free address
     path; spans fall back to the per-sub loop. *)
  let access c ~is_read ~addr ~bytes =
    c.accesses <- c.accesses + 1;
    let g0 = addr lsr c.sub_shift in
    let g1 = (addr + bytes - 1) lsr c.sub_shift in
    if g0 = g1 then begin
      let block = g0 lsr c.sub_bits in
      let set = block land c.set_mask in
      let sub = g0 land c.sub_mask in
      let base = set lsl c.sub_bits in
      if Array.unsafe_get c.tags set = block && bit_is_set c.valid (base lor sub)
      then false
      else begin
        if Array.unsafe_get c.tags set <> block then begin
          Array.unsafe_set c.tags set block;
          clear_set c set
        end;
        fetch_sub c base sub;
        if is_read then fetch_sub c base ((sub + 1) land c.sub_mask);
        c.misses <- c.misses + 1;
        true
      end
    end
    else begin
      let missed = ref false in
      for gs = g0 to g1 do
        touch c ~is_read gs missed
      done;
      if !missed then c.misses <- c.misses + 1;
      !missed
    end

  let stats c =
    { accesses = c.accesses; misses = c.misses; words_transferred = c.words }

  (* Chunk-parallel engine. -------------------------------------------------

     A chunk automaton simulates its slice of the access stream cold (tags
     -1, all valid bits clear) and logs just enough for a later sequential
     merge to reconstruct the exact warm-start counters:

     - [known] (per set): a genuine replacement happened — the set's first
       in-chunk touch pinned cold tag == true tag, so when a later touch
       replaces that tag both worlds replace identically and the set's
       cold state equals its true state from then on.
     - [direct] (per set x sub): the sub-block was touched directly.  On an
       unknown set no replacement has happened, so a directly-touched bit
       is valid in both worlds and a repeat touch is a hit in both.

     A touch whose outcome could still depend on the carried-in state is
     exactly one with [not known(set) && not direct(set, sub)]; events
     containing such a touch are logged (packed 3 ints: the access word,
     recompute/cold-miss masks, cold-fetch masks).  The merge replays only
     the logged events against the true carried state, recomputing the
     flagged touches and trusting the recorded cold outcome for the rest,
     then overwrites the carried state of every [known] set with the
     chunk's cold end state.  Unknown sets are exact without overwrite:
     every true-state-changing touch on them was recomputed. *)

  type split = {
    mutable racc : int;
    mutable rmiss : int;
    mutable wacc : int;
    mutable wmiss : int;
    mutable fwords : int;
  }

  let split_make () = { racc = 0; rmiss = 0; wacc = 0; wmiss = 0; fwords = 0 }

  type auto = {
    a : t;  (* cold automaton; its own counters stay unused *)
    known : Bytes.t;  (* per-set: cold state equals true state *)
    direct : Bytes.t;  (* per (set, sub): touched directly this chunk *)
    asp : split;
    mutable log : int array;
    mutable log_n : int;
  }

  let chunk_start cfg =
    let a = make cfg in
    {
      a;
      known = Bytes.make ((a.sets + 7) lsr 3) '\000';
      direct = Bytes.make (Bytes.length a.valid) '\000';
      asp = split_make ();
      log = Array.make 256 0;
      log_n = 0;
    }

  let log_push au w0 w1 w2 =
    let n = au.log_n in
    if n + 3 > Array.length au.log then begin
      let bigger = Array.make (2 * Array.length au.log) 0 in
      Array.blit au.log 0 bigger 0 n;
      au.log <- bigger
    end;
    au.log.(n) <- w0;
    au.log.(n + 1) <- w1;
    au.log.(n + 2) <- w2;
    au.log_n <- n + 3

  (* Cold-simulate one event, recording per-touch masks.  Touch k of the
     event gets bit [1 lsl k] in: [need] (outcome depends on carried
     state; merge recomputes), [miss] (cold miss), [f0]/[f1] (cold filled
     the touched / the prefetched sub-block). *)
  let chunk_access au ~is_read ~addr ~bytes =
    let c = au.a in
    let sp = au.asp in
    if is_read then sp.racc <- sp.racc + 1 else sp.wacc <- sp.wacc + 1;
    let g0 = addr lsr c.sub_shift in
    let g1 = (addr + bytes - 1) lsr c.sub_shift in
    (* Settled fast path: one sub-block, already directly touched, tag and
       valid bit in place — a hit with no state change in both the cold
       and the true world, so neither counters (beyond the access) nor the
       log move. *)
    if
      g0 = g1
      &&
      let block = g0 lsr c.sub_bits in
      let set = block land c.set_mask in
      let bit = (set lsl c.sub_bits) lor (g0 land c.sub_mask) in
      Array.unsafe_get c.tags set = block
      && bit_is_set c.valid bit
      && bit_is_set au.direct bit
    then ()
    else begin
    let need = ref 0 in
    let miss = ref 0 in
    let f0 = ref 0 in
    let f1 = ref 0 in
    for k = 0 to g1 - g0 do
      let gs = g0 + k in
      let block = gs lsr c.sub_bits in
      let set = block land c.set_mask in
      let sub = gs land c.sub_mask in
      let base = set lsl c.sub_bits in
      let bit = base lor sub in
      if not (bit_is_set au.known set || bit_is_set au.direct bit) then
        need := !need lor (1 lsl k);
      set_bit au.direct bit;
      if Array.unsafe_get c.tags set <> block then begin
        (* A replacement of a tag the chunk itself installed pins the set:
           cold == true from here on. *)
        if Array.unsafe_get c.tags set >= 0 then set_bit au.known set;
        Array.unsafe_set c.tags set block;
        clear_set c set;
        miss := !miss lor (1 lsl k);
        set_bit c.valid bit;
        sp.fwords <- sp.fwords + c.sub_words;
        f0 := !f0 lor (1 lsl k);
        if is_read then begin
          let p = base lor ((sub + 1) land c.sub_mask) in
          if not (bit_is_set c.valid p) then begin
            set_bit c.valid p;
            sp.fwords <- sp.fwords + c.sub_words;
            f1 := !f1 lor (1 lsl k)
          end
        end
      end
      else if not (bit_is_set c.valid bit) then begin
        miss := !miss lor (1 lsl k);
        set_bit c.valid bit;
        sp.fwords <- sp.fwords + c.sub_words;
        f0 := !f0 lor (1 lsl k);
        if is_read then begin
          let p = base lor ((sub + 1) land c.sub_mask) in
          if not (bit_is_set c.valid p) then begin
            set_bit c.valid p;
            sp.fwords <- sp.fwords + c.sub_words;
            f1 := !f1 lor (1 lsl k)
          end
        end
      end
    done;
    if !miss <> 0 then
      if is_read then sp.rmiss <- sp.rmiss + 1 else sp.wmiss <- sp.wmiss + 1;
    if !need <> 0 then
      log_push au
        ((addr lsl 5) lor (bytes lsl 1) lor (if is_read then 1 else 0))
        (!need lor (!miss lsl 16))
        (!f0 lor (!f1 lsl 16))
    end

  (* The hot instruction-stream entry: a run of [count] consecutive reads
     inside the 4-byte granule at [addr].  Requires sub_block_bytes >= 4,
     so the run lies in one sub-block: the first access decides, the rest
     are hits in both cold and true worlds (the first touch validates the
     bit and pins the tag, and nothing else touches this cache in
     between). *)
  let chunk_iread_run au ~addr ~count =
    let c = au.a in
    let sp = au.asp in
    sp.racc <- sp.racc + count;
    let gs = addr lsr c.sub_shift in
    let block = gs lsr c.sub_bits in
    let set = block land c.set_mask in
    let sub = gs land c.sub_mask in
    let base = set lsl c.sub_bits in
    let bit = base lor sub in
    if
      Array.unsafe_get c.tags set = block
      && bit_is_set c.valid bit
      && (bit_is_set au.direct bit || bit_is_set au.known set)
    then () (* settled hit: no counters beyond accesses, no log *)
    else begin
      sp.racc <- sp.racc - 1;
      chunk_access au ~is_read:true ~addr ~bytes:1
    end

  type summary = {
    s_sp : split;
    s_log : int array;
    s_known_sets : int array;  (* sets whose cold end state is the truth *)
    s_known_tags : int array;
    s_valid : Bytes.t;  (* cold valid bitset at chunk end *)
  }

  let chunk_finish au =
    let c = au.a in
    let ks = ref [] in
    let nk = ref 0 in
    for set = c.sets - 1 downto 0 do
      if bit_is_set au.known set then begin
        ks := set :: !ks;
        incr nk
      end
    done;
    let s_known_sets = Array.make !nk 0 in
    let s_known_tags = Array.make !nk 0 in
    List.iteri
      (fun j set ->
        s_known_sets.(j) <- set;
        s_known_tags.(j) <- c.tags.(set))
      !ks;
    {
      s_sp = au.asp;
      s_log = Array.sub au.log 0 au.log_n;
      s_known_sets;
      s_known_tags;
      s_valid = Bytes.copy c.valid;
    }

  type carry = { c : t; csp : split }

  let carry_start cfg = { c = make cfg; csp = split_make () }

  (* Copy one set's valid bits from a chunk's cold end state into the
     carried state. *)
  let copy_set_bits c ~src ~dst set =
    let base = set lsl c.sub_bits in
    if c.subs_per_block >= 8 then
      Bytes.blit src (base lsr 3) dst (base lsr 3) (c.subs_per_block lsr 3)
    else begin
      let byte = base lsr 3 in
      let m = ((1 lsl c.subs_per_block) - 1) lsl (base land 7) in
      let sv = Char.code (Bytes.get src byte) land m in
      let dv = Char.code (Bytes.get dst byte) land lnot m land 0xFF in
      Bytes.set dst byte (Char.unsafe_chr (dv lor sv))
    end

  let absorb cr (s : summary) =
    let c = cr.c in
    let sp = cr.csp in
    sp.racc <- sp.racc + s.s_sp.racc;
    sp.rmiss <- sp.rmiss + s.s_sp.rmiss;
    sp.wacc <- sp.wacc + s.s_sp.wacc;
    sp.wmiss <- sp.wmiss + s.s_sp.wmiss;
    sp.fwords <- sp.fwords + s.s_sp.fwords;
    (* Replay the prefix log against the carried (true) state: recompute
       the flagged touches, trust the recorded cold outcome elsewhere,
       and adjust the miss/word totals by the difference. *)
    let log = s.s_log in
    let n = Array.length log in
    let i = ref 0 in
    while !i < n do
      let w0 = log.(!i) in
      let w1 = log.(!i + 1) in
      let w2 = log.(!i + 2) in
      i := !i + 3;
      let is_read = w0 land 1 = 1 in
      let bytes = (w0 lsr 1) land 0xF in
      let addr = w0 lsr 5 in
      let need = w1 land 0xFFFF in
      let cold_miss = w1 lsr 16 in
      let cf0 = w2 land 0xFFFF in
      let cf1 = w2 lsr 16 in
      let g0 = addr lsr c.sub_shift in
      let g1 = (addr + bytes - 1) lsr c.sub_shift in
      let true_missed = ref false in
      let dwords = ref 0 in
      for k = 0 to g1 - g0 do
        let b = 1 lsl k in
        if need land b <> 0 then begin
          let gs = g0 + k in
          let block = gs lsr c.sub_bits in
          let set = block land c.set_mask in
          let sub = gs land c.sub_mask in
          let base = set lsl c.sub_bits in
          let cold_fetches =
            (if cf0 land b <> 0 then 1 else 0)
            + if cf1 land b <> 0 then 1 else 0
          in
          let fetches = ref 0 in
          let fetch idx =
            if not (bit_is_set c.valid idx) then begin
              set_bit c.valid idx;
              incr fetches
            end
          in
          if c.tags.(set) <> block then begin
            c.tags.(set) <- block;
            clear_set c set;
            true_missed := true;
            fetch (base lor sub);
            if is_read then fetch (base lor ((sub + 1) land c.sub_mask))
          end
          else if not (bit_is_set c.valid (base lor sub)) then begin
            true_missed := true;
            fetch (base lor sub);
            if is_read then fetch (base lor ((sub + 1) land c.sub_mask))
          end;
          dwords := !dwords + (c.sub_words * (!fetches - cold_fetches))
        end
        else if cold_miss land b <> 0 then true_missed := true
      done;
      if !true_missed <> (cold_miss <> 0) then begin
        let d = if !true_missed then 1 else -1 in
        if is_read then sp.rmiss <- sp.rmiss + d else sp.wmiss <- sp.wmiss + d
      end;
      sp.fwords <- sp.fwords + !dwords
    done;
    (* Known sets: the chunk's cold end state is the true end state. *)
    Array.iteri
      (fun j set ->
        c.tags.(set) <- s.s_known_tags.(j);
        copy_set_bits c ~src:s.s_valid ~dst:c.valid set)
      s.s_known_sets

  type totals = {
    reads : int;
    read_misses : int;
    writes : int;
    write_misses : int;
    fetch_words : int;
  }

  let carry_totals cr =
    {
      reads = cr.csp.racc;
      read_misses = cr.csp.rmiss;
      writes = cr.csp.wacc;
      write_misses = cr.csp.wmiss;
      fetch_words = cr.csp.fwords;
    }
end

type cached = {
  icache : cache_stats;
  dcache_read : cache_stats;
  dcache_write : cache_stats;
}

let replay_cached ~insn_bytes ~icache ~dcache (r : Machine.result) =
  let t = get_trace r in
  let ic = Cache.make icache in
  let dc = Cache.make dcache in
  let dreads = ref 0 in
  let dread_miss = ref 0 in
  let dwrites = ref 0 in
  let dwrite_miss = ref 0 in
  let n = Array.length t.Machine.iaddr in
  for i = 0 to n - 1 do
    let a = t.Machine.iaddr.(i) in
    let wide = a land 1 <> 0 in
    let a = a land lnot 1 in
    ignore
      (Cache.access ic ~is_read:true ~addr:a
         ~bytes:(if wide then 4 else insn_bytes));
    let d = t.Machine.dinfo.(i) in
    if d <> 0 then begin
      let is_write = d land 1 = 1 in
      let bytes = (d lsr 1) land 0xF in
      let addr = d lsr 5 in
      let missed = Cache.access dc ~is_read:(not is_write) ~addr ~bytes in
      if is_write then begin
        incr dwrites;
        if missed then incr dwrite_miss
      end
      else begin
        incr dreads;
        if missed then incr dread_miss
      end
    end
  done;
  {
    icache = Cache.stats ic;
    dcache_read =
      { accesses = !dreads; misses = !dread_miss; words_transferred = 0 };
    dcache_write =
      { accesses = !dwrites; misses = !dwrite_miss; words_transferred = 0 };
  }

let cached_cycles ~miss_penalty (r : Machine.result) (c : cached) =
  r.Machine.ic + r.Machine.interlocks
  + miss_penalty
    * (c.icache.misses + c.dcache_read.misses + c.dcache_write.misses)

let cpi ~cycles ~ic = float_of_int cycles /. float_of_int ic

let normalized_cpi ~cycles ~reference_ic =
  float_of_int cycles /. float_of_int reference_ic
