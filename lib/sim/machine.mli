(** Architectural simulator for the shared five-stage pipeline.

    Executes a linked image and produces the paper's per-program raw
    measurements: path length (IC), loads/stores, interlock cycles (delayed
    loads and FPU latencies, Table 10), and a compact reference trace that
    the memory-system models replay (fetch buffering, caches).

    Pipeline timing model: one instruction per cycle; a delayed load's
    result is available one cycle late; FP results after the unit latency
    (add/sub/convert 2, multiply 4, divide 8, compare-to-status 2);
    consumers stall and the stalls are counted as interlocks.  Branches and
    jumps execute their delay slot (the following instruction) before
    control transfers — the code generator guarantees a slot after every
    transfer. *)

type trace = {
  iaddr : int array;  (** Instruction byte address, per executed instruction. *)
  dinfo : int array;
      (** Packed data access per instruction: 0 for none, else
          [(addr lsl 5) lor (bytes lsl 1) lor is_write]. *)
}

val decode_daccess : int -> (bool * int * int) option
(** [Some (is_write, addr, bytes)] for a nonzero packed entry. *)

type result = {
  exit_code : int;
  output : string;
  ic : int;  (** Path length. *)
  loads : int;
  stores : int;
  load_words : int;  (** Words of data read (doubles count 2). *)
  store_words : int;
  interlocks : int;
  trace : trace option;
}

exception Runtime_error of string

val run :
  ?trace:bool ->
  ?on_insn:(iaddr:int -> dinfo:int -> unit) ->
  ?max_steps:int ->
  Repro_link.Link.image ->
  result
(** [trace] (default true) records the reference trace.
    [on_insn] is called once per retired instruction, in execution order,
    with its byte address and packed data access (the {!trace} encoding;
    [0] for none) — the streaming alternative to materializing a trace,
    used by the {!Repro_uarch} pipeline model and the profiler.
    [max_steps] defaults to 400 million.
    @raise Runtime_error on invalid memory access, unaligned access,
    division issues, or step overrun. *)

val fp_latency_add : int
val fp_latency_mul : int
val fp_latency_div : int
val fp_latency_cmp : int
val load_latency : int
