(** Memory-system models replayed over a reference trace (paper Section 4).

    Cacheless machines: an instruction buffer holds the last fetched
    bus-width block; a fetch outside it is a memory request costing the wait
    states.  Cycles = IC + Interlocks + l * (IRequests + DRequests)
    (paper Appendix A.2).

    Cached machines: split direct-mapped I/D caches with sub-block valid
    bits and wrap-around prefetch on read misses (dinero-style, Section
    4.1.1).  Cycles = IC + Interlocks + MissPenalty * (IMiss + RMiss +
    WMiss). *)

type cache_config = {
  size_bytes : int;
  block_bytes : int;
  sub_block_bytes : int;
}

val cache_config : size:int -> block:int -> sub:int -> cache_config
(** Smart constructor: all three must be powers of two with
    [sub <= block <= size].
    @raise Invalid_argument naming the violated invariant otherwise. *)

type cache_stats = {
  accesses : int;
  misses : int;
  words_transferred : int;  (** Sub-blocks fetched from memory, in words. *)
}

val miss_rate : cache_stats -> float

(** The single-access cache model the replays (and the {!Repro_uarch}
    cycle-accurate pipeline) are built on: direct-mapped, sub-block valid
    bits, wrap-around prefetch of the following sub-block on read misses,
    allocate-without-prefetch on writes.

    Addressing is specialized for the power-of-two geometry invariants:
    precomputed shifts and masks, one flat valid bitset, and a fast path
    for accesses inside a single sub-block. *)
module Cache : sig
  type t

  val make : cache_config -> t

  val access : t -> is_read:bool -> addr:int -> bytes:int -> bool
  (** One access event covering [addr, addr + bytes); returns whether it
      missed (any sub-block of the span invalid or a tag mismatch). *)

  val stats : t -> cache_stats

  (** {2 Chunk-parallel engine}

      A chunk {!auto} simulates a slice of the access stream with unknown
      incoming cache state (cold tags, cleared valid bits) and records a
      compact prefix log of just the events whose outcome could depend on
      the carried-in state.  A sequential {!absorb} pass then replays only
      those logs against the true carried state, in chunk order, and the
      resulting {!carry_totals} are byte-equal to a sequential replay of
      the whole stream (gated by the differential suite in
      [test/t_trace.ml]; the reconciliation argument is in DESIGN.md). *)

  type auto
  (** One chunk's cold automaton plus its prefix log. *)

  val chunk_start : cache_config -> auto

  val chunk_access : auto -> is_read:bool -> addr:int -> bytes:int -> unit
  (** Cold-simulate one access event of the chunk's slice, in order. *)

  val chunk_iread_run : auto -> addr:int -> count:int -> unit
  (** [count] consecutive instruction reads inside the 4-byte granule at
      [addr] (which must be 4-byte aligned): the first access decides
      hit/miss, the rest are guaranteed hits.  Only valid when
      [sub_block_bytes >= 4], so the granule lies in one sub-block. *)

  type summary
  (** Immutable chunk result: cold counters, prefix log, and the cold end
      state of every settled set.  Safe to move across domains. *)

  val chunk_finish : auto -> summary

  type carry
  (** Sequential merge state: the true cache state carried across chunk
      boundaries plus the accumulated totals. *)

  val carry_start : cache_config -> carry

  val absorb : carry -> summary -> unit
  (** Fold the next chunk's summary (chunks must be absorbed in stream
      order) into the carried state and totals. *)

  type totals = {
    reads : int;
    read_misses : int;
    writes : int;
    write_misses : int;
    fetch_words : int;  (** Sub-blocks fetched from memory, in words. *)
  }

  val carry_totals : carry -> totals
end

(** The cacheless machine's instruction buffer: holds the last fetched
    bus-width block; a fetch outside it is one memory request.  Exposed so
    the trace replays ({!Repro_trace.Replay}) and the {!Repro_uarch}
    pipeline charge fetch traffic through the same model. *)
module Fetchbuf : sig
  type t

  val make : bus_bytes:int -> t

  val fetch : t -> addr:int -> bool
  (** Whether the fetch went to memory (address outside the buffer). *)

  val requests : t -> int

  val last_block : t -> int
  (** The buffered block number, [-1] before the first fetch. *)
end

val data_requests : bus_bytes:int -> bytes:int -> int
(** Bus transactions for one data access of [bytes] bytes. *)

type nocache = {
  irequests : int;  (** Instruction-fetch bus transactions. *)
  drequests : int;  (** Data bus transactions (doubles = 2 on a 32-bit bus). *)
}

val replay_nocache : bus_bytes:int -> Machine.result -> nocache
(** Requires the result to carry a trace. *)

val nocache_cycles : wait_states:int -> Machine.result -> nocache -> int

type cached = {
  icache : cache_stats;
  dcache_read : cache_stats;
  dcache_write : cache_stats;
}

val replay_cached :
  insn_bytes:int ->
  icache:cache_config ->
  dcache:cache_config ->
  Machine.result ->
  cached

val cached_cycles : miss_penalty:int -> Machine.result -> cached -> int

val cpi : cycles:int -> ic:int -> float

val normalized_cpi : cycles:int -> reference_ic:int -> float
(** The paper's normalization: cycles divided by the {e other} machine's
    path length, factoring out the instruction-count difference. *)
