(** Memory-system models replayed over a reference trace (paper Section 4).

    Cacheless machines: an instruction buffer holds the last fetched
    bus-width block; a fetch outside it is a memory request costing the wait
    states.  Cycles = IC + Interlocks + l * (IRequests + DRequests)
    (paper Appendix A.2).

    Cached machines: split direct-mapped I/D caches with sub-block valid
    bits and wrap-around prefetch on read misses (dinero-style, Section
    4.1.1).  Cycles = IC + Interlocks + MissPenalty * (IMiss + RMiss +
    WMiss). *)

type cache_config = {
  size_bytes : int;
  block_bytes : int;
  sub_block_bytes : int;
}

val cache_config : size:int -> block:int -> sub:int -> cache_config
(** Smart constructor: all three must be powers of two with
    [sub <= block <= size].
    @raise Invalid_argument naming the violated invariant otherwise. *)

type cache_stats = {
  accesses : int;
  misses : int;
  words_transferred : int;  (** Sub-blocks fetched from memory, in words. *)
}

val miss_rate : cache_stats -> float

(** The single-access cache model the replays (and the {!Repro_uarch}
    cycle-accurate pipeline) are built on: direct-mapped, sub-block valid
    bits, wrap-around prefetch of the following sub-block on read misses,
    allocate-without-prefetch on writes. *)
module Cache : sig
  type t

  val make : cache_config -> t

  val access : t -> is_read:bool -> addr:int -> bytes:int -> bool
  (** One access event covering [addr, addr + bytes); returns whether it
      missed (any sub-block of the span invalid or a tag mismatch). *)

  val stats : t -> cache_stats
end

(** The cacheless machine's instruction buffer: holds the last fetched
    bus-width block; a fetch outside it is one memory request.  Exposed so
    the trace replays ({!Repro_trace.Replay}) and the {!Repro_uarch}
    pipeline charge fetch traffic through the same model. *)
module Fetchbuf : sig
  type t

  val make : bus_bytes:int -> t

  val fetch : t -> addr:int -> bool
  (** Whether the fetch went to memory (address outside the buffer). *)

  val requests : t -> int

  val last_block : t -> int
  (** The buffered block number, [-1] before the first fetch. *)
end

val data_requests : bus_bytes:int -> bytes:int -> int
(** Bus transactions for one data access of [bytes] bytes. *)

type nocache = {
  irequests : int;  (** Instruction-fetch bus transactions. *)
  drequests : int;  (** Data bus transactions (doubles = 2 on a 32-bit bus). *)
}

val replay_nocache : bus_bytes:int -> Machine.result -> nocache
(** Requires the result to carry a trace. *)

val nocache_cycles : wait_states:int -> Machine.result -> nocache -> int

type cached = {
  icache : cache_stats;
  dcache_read : cache_stats;
  dcache_write : cache_stats;
}

val replay_cached :
  insn_bytes:int ->
  icache:cache_config ->
  dcache:cache_config ->
  Machine.result ->
  cached

val cached_cycles : miss_penalty:int -> Machine.result -> cached -> int

val cpi : cycles:int -> ic:int -> float

val normalized_cpi : cycles:int -> reference_ic:int -> float
(** The paper's normalization: cycles divided by the {e other} machine's
    path length, factoring out the instruction-count difference. *)
