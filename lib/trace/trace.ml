let format_version = 1
let default_chunk_records = 1 lsl 16
let magic = "REPROTRC"
let magic_end = "REPROEND"
let header_bytes = String.length magic + 2 (* + chunk_records varint *)
let trailer_bytes = 8 + String.length magic_end

(* LEB128 varints; signed values zigzag-coded (OCaml's 63-bit ints). *)

let put_uvarint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))
let put_svarint buf n = put_uvarint buf (zigzag n)

let get_uvarint data pos =
  let rec go shift acc =
    if shift > 56 then invalid_arg "varint overflow";
    let c = Char.code (Bytes.get data !pos) in
    incr pos;
    let acc = acc lor ((c land 0x7F) lsl shift) in
    if c < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

module Writer = struct
  type pending = {
    start_pc : int;
    n_records : int;
    byte_offset : int;
    digest : string;
  }

  type t = {
    path : string;
    tmp : string;
    oc : Out_channel.t;
    chunk_records : int;
    buf : Buffer.t;  (* current chunk payload *)
    mutable offset : int;  (* of the next chunk, from file start *)
    mutable index : pending list;  (* completed chunks, reversed *)
    mutable cur_n : int;
    mutable cur_start_pc : int;
    mutable prev_pc : int;
    mutable prev_daddr : int;
    mutable total : int;
  }

  let create ?(chunk_records = default_chunk_records) ~insn_bytes path =
    if chunk_records < 1 then
      invalid_arg "Trace.Writer.create: chunk_records < 1";
    if insn_bytes <> 2 && insn_bytes <> 4 then
      invalid_arg "Trace.Writer.create: insn_bytes must be 2 or 4";
    let tmp = Printf.sprintf "%s.tmp.%d" path (Domain.self () :> int) in
    let oc = Out_channel.open_bin tmp in
    let header = Buffer.create 16 in
    Buffer.add_string header magic;
    Buffer.add_char header (Char.chr format_version);
    Buffer.add_char header (Char.chr insn_bytes);
    put_uvarint header chunk_records;
    Out_channel.output_string oc (Buffer.contents header);
    {
      path;
      tmp;
      oc;
      chunk_records;
      buf = Buffer.create (16 * 1024);
      offset = Buffer.length header;
      index = [];
      cur_n = 0;
      cur_start_pc = 0;
      prev_pc = 0;
      prev_daddr = 0;
      total = 0;
    }

  let flush_chunk w =
    if w.cur_n > 0 then begin
      let payload = Buffer.contents w.buf in
      w.index <-
        {
          start_pc = w.cur_start_pc;
          n_records = w.cur_n;
          byte_offset = w.offset;
          digest = Digest.string payload;
        }
        :: w.index;
      Out_channel.output_string w.oc payload;
      w.offset <- w.offset + String.length payload;
      Buffer.clear w.buf;
      w.cur_n <- 0;
      (* Each chunk restarts the delta predictors so it decodes alone. *)
      w.prev_pc <- 0;
      w.prev_daddr <- 0
    end

  let step w ~pc ~dinfo =
    if w.cur_n = 0 then w.cur_start_pc <- pc;
    put_svarint w.buf (pc - w.prev_pc);
    w.prev_pc <- pc;
    if dinfo = 0 then put_uvarint w.buf 0
    else begin
      (* dtag = (bytes << 1) | is_write, nonzero because bytes >= 1. *)
      put_uvarint w.buf (dinfo land 0x1F);
      let addr = dinfo lsr 5 in
      put_svarint w.buf (addr - w.prev_daddr);
      w.prev_daddr <- addr
    end;
    w.cur_n <- w.cur_n + 1;
    w.total <- w.total + 1;
    if w.cur_n = w.chunk_records then flush_chunk w

  let close w =
    flush_chunk w;
    let footer_offset = w.offset in
    let footer = Buffer.create 256 in
    let chunks = List.rev w.index in
    put_uvarint footer (List.length chunks);
    put_uvarint footer w.total;
    List.iter
      (fun c ->
        put_uvarint footer c.byte_offset;
        put_uvarint footer c.n_records;
        put_uvarint footer c.start_pc;
        Buffer.add_string footer c.digest)
      chunks;
    let tl = Bytes.create 8 in
    Bytes.set_int64_le tl 0 (Int64.of_int footer_offset);
    Buffer.add_bytes footer tl;
    Buffer.add_string footer magic_end;
    Out_channel.output_string w.oc (Buffer.contents footer);
    Out_channel.close w.oc;
    Sys.rename w.tmp w.path

  let abort w =
    Out_channel.close w.oc;
    try Sys.remove w.tmp with Sys_error _ -> ()
end

module Reader = struct
  type chunk = {
    start_pc : int;
    n_records : int;
    byte_offset : int;
    byte_length : int;
  }

  type t = {
    data : bytes;  (* whole validated file; never mutated after open *)
    insn_bytes : int;
    total : int;
    chunks : chunk array;
  }

  exception Bad of string

  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

  let validate data =
    let len = Bytes.length data in
    if len < header_bytes + trailer_bytes then bad "truncated (%d bytes)" len;
    if Bytes.sub_string data 0 (String.length magic) <> magic then
      bad "bad magic";
    let version = Char.code (Bytes.get data (String.length magic)) in
    if version <> format_version then
      bad "format version %d (want %d)" version format_version;
    let insn_bytes = Char.code (Bytes.get data (String.length magic + 1)) in
    if insn_bytes <> 2 && insn_bytes <> 4 then
      bad "bad insn_bytes %d" insn_bytes;
    let pos = ref header_bytes in
    let _chunk_records = get_uvarint data pos in
    let header_end = !pos in
    if Bytes.sub_string data (len - String.length magic_end)
         (String.length magic_end)
       <> magic_end
    then bad "bad end magic";
    let footer_offset =
      Int64.to_int (Bytes.get_int64_le data (len - trailer_bytes))
    in
    if footer_offset < header_end || footer_offset > len - trailer_bytes then
      bad "footer offset out of range";
    let pos = ref footer_offset in
    let n_chunks = get_uvarint data pos in
    let total = get_uvarint data pos in
    (* Each index entry is >= 19 bytes; a corrupt count cannot pass this,
       so no giant allocation happens below. *)
    if n_chunks < 0 || n_chunks * 19 > len - footer_offset then
      bad "implausible chunk count %d" n_chunks;
    let chunks =
      Array.init n_chunks (fun _ ->
          let byte_offset = get_uvarint data pos in
          let n_records = get_uvarint data pos in
          let start_pc = get_uvarint data pos in
          if !pos + 16 > len then bad "truncated index";
          let digest = Bytes.sub_string data !pos 16 in
          pos := !pos + 16;
          (byte_offset, n_records, start_pc, digest))
    in
    if !pos <> len - trailer_bytes then bad "index size mismatch";
    let sum = ref 0 in
    let chunks =
      Array.mapi
        (fun i (byte_offset, n_records, start_pc, digest) ->
          let next =
            if i + 1 < n_chunks then
              let o, _, _, _ = chunks.(i + 1) in
              o
            else footer_offset
          in
          if byte_offset < header_end || next < byte_offset then
            bad "chunk %d offsets out of order" i;
          if n_records < 1 then bad "chunk %d empty" i;
          let byte_length = next - byte_offset in
          if Digest.subbytes data byte_offset byte_length <> digest then
            bad "chunk %d checksum mismatch" i;
          sum := !sum + n_records;
          { start_pc; n_records; byte_offset; byte_length })
        chunks
    in
    if !sum <> total then bad "record count mismatch";
    { data; insn_bytes; total; chunks }

  let open_file path =
    match
      In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
    with
    | exception Sys_error e -> Error e
    | contents -> (
      (* The string is ours alone; avoid a second copy of a large trace. *)
      match validate (Bytes.unsafe_of_string contents) with
      | t -> Ok t
      | exception Bad reason -> Error (path ^ ": " ^ reason)
      | exception Invalid_argument _ -> Error (path ^ ": truncated"))

  let insn_bytes t = t.insn_bytes
  let n_records t = t.total
  let n_chunks t = Array.length t.chunks
  let byte_size t = Bytes.length t.data
  let chunk t i = t.chunks.(i)

  let iter_chunk t i f =
    let c = t.chunks.(i) in
    let data = t.data in
    (* Replay is the hot loop, so decode with unchecked reads and a
       single-byte fast path: the chunk checksum was verified at open, so
       the payload is byte-identical to what the writer emitted and the
       decoder cannot run past it. *)
    let pos = ref c.byte_offset in
    let uvarint () =
      let b = Char.code (Bytes.unsafe_get data !pos) in
      incr pos;
      if b < 0x80 then b
      else begin
        let acc = ref (b land 0x7F) in
        let shift = ref 7 in
        let cont = ref true in
        while !cont do
          if !shift > 56 then invalid_arg "varint overflow";
          let b = Char.code (Bytes.unsafe_get data !pos) in
          incr pos;
          acc := !acc lor ((b land 0x7F) lsl !shift);
          shift := !shift + 7;
          cont := b >= 0x80
        done;
        !acc
      end
    in
    let pc = ref 0 in
    let daddr = ref 0 in
    for _ = 1 to c.n_records do
      pc := !pc + unzigzag (uvarint ());
      let dtag = uvarint () in
      let dinfo =
        if dtag = 0 then 0
        else begin
          daddr := !daddr + unzigzag (uvarint ());
          (!daddr lsl 5) lor dtag
        end
      in
      f ~pc:!pc ~dinfo
    done

  let iter t f =
    for i = 0 to Array.length t.chunks - 1 do
      iter_chunk t i f
    done
end
