module Memsys = Repro_sim.Memsys
module Pipeline = Repro_uarch.Pipeline

type nocache_chunk = {
  cold_irequests : int;
  first_block : int;
  last_block : int;
  drequests : int;
}

let nocache_chunk rd ~bus_bytes i =
  let buf = Memsys.Fetchbuf.make ~bus_bytes in
  let first = ref (-1) in
  let dreq = ref 0 in
  Trace.Reader.iter_chunk rd i (fun ~pc ~dinfo ->
      ignore (Memsys.Fetchbuf.fetch buf ~addr:pc);
      if !first < 0 then first := pc / bus_bytes;
      if dinfo <> 0 then begin
        let bytes = (dinfo lsr 1) land 0xF in
        dreq := !dreq + Memsys.data_requests ~bus_bytes ~bytes
      end);
  {
    cold_irequests = Memsys.Fetchbuf.requests buf;
    first_block = !first;
    last_block = Memsys.Fetchbuf.last_block buf;
    drequests = !dreq;
  }

let merge_nocache chunks =
  let ireq = ref 0 in
  let dreq = ref 0 in
  let prev = ref (-1) in
  List.iter
    (fun c ->
      dreq := !dreq + c.drequests;
      if c.first_block >= 0 then begin
        ireq :=
          !ireq + c.cold_irequests
          - (if c.first_block = !prev then 1 else 0);
        prev := c.last_block
      end)
    chunks;
  { Memsys.irequests = !ireq; drequests = !dreq }

let nocache rd ~bus_bytes =
  merge_nocache
    (List.init (Trace.Reader.n_chunks rd) (nocache_chunk rd ~bus_bytes))

let cached ~icache ~dcache rd =
  let insn_bytes = Trace.Reader.insn_bytes rd in
  let ic = Memsys.Cache.make icache in
  let dc = Memsys.Cache.make dcache in
  let dreads = ref 0 in
  let dread_miss = ref 0 in
  let dwrites = ref 0 in
  let dwrite_miss = ref 0 in
  Trace.Reader.iter rd (fun ~pc ~dinfo ->
      ignore (Memsys.Cache.access ic ~is_read:true ~addr:pc ~bytes:insn_bytes);
      if dinfo <> 0 then begin
        let is_write = dinfo land 1 = 1 in
        let bytes = (dinfo lsr 1) land 0xF in
        let addr = dinfo lsr 5 in
        let missed = Memsys.Cache.access dc ~is_read:(not is_write) ~addr ~bytes in
        if is_write then begin
          incr dwrites;
          if missed then incr dwrite_miss
        end
        else begin
          incr dreads;
          if missed then incr dread_miss
        end
      end);
  {
    Memsys.icache = Memsys.Cache.stats ic;
    dcache_read =
      { Memsys.accesses = !dreads; misses = !dread_miss; words_transferred = 0 };
    dcache_write =
      {
        Memsys.accesses = !dwrites;
        misses = !dwrite_miss;
        words_transferred = 0;
      };
  }

let pipelines rd cfgs img =
  let pipes = Array.of_list (List.map (fun cfg -> Pipeline.create cfg img) cfgs) in
  let n = Array.length pipes in
  Trace.Reader.iter rd (fun ~pc ~dinfo ->
      for k = 0 to n - 1 do
        Pipeline.step (Array.unsafe_get pipes k) ~iaddr:pc ~dinfo
      done);
  Array.to_list (Array.map Pipeline.result pipes)

(* Single-pass, chunk-parallel cache grid. ---------------------------------- *)

module Grid = struct
  module Cache = Memsys.Cache

  type spec = {
    icache : Memsys.cache_config;
    dcache : Memsys.cache_config;
  }

  type chunk_result = (Cache.summary * Cache.summary) array

  (* One decode feeds every geometry.  The i-stream is run-length
     compressed at 4-byte granularity first: consecutive fetches inside
     the same granule are one event plus a repeat count, and since every
     standard geometry has sub-blocks of at least 4 bytes the whole run
     lands in one sub-block of every automaton — the first access decides,
     the rest are guaranteed hits.  Geometries with smaller sub-blocks
     (or traces with fetches straddling a granule) replay the raw pc
     stream instead. *)
  let chunk rd (specs : spec array) i =
    let insn_bytes = Trace.Reader.insn_bytes rd in
    let info = Trace.Reader.chunk rd i in
    let n = info.Trace.Reader.n_records in
    let gran = Array.make (max n 1) 0 in
    let cnt = Array.make (max n 1) 0 in
    let pcs = Array.make (max n 1) 0 in
    let dinfos = Array.make (max n 1) 0 in
    let ng = ref 0 in
    let nd = ref 0 in
    let np = ref 0 in
    let prev = ref min_int in
    let aligned = ref true in
    Trace.Reader.iter_chunk rd i (fun ~pc ~dinfo ->
        pcs.(!np) <- pc;
        incr np;
        if pc land 3 + insn_bytes > 4 then aligned := false;
        let g = pc lsr 2 in
        if g = !prev then cnt.(!ng - 1) <- cnt.(!ng - 1) + 1
        else begin
          gran.(!ng) <- g;
          cnt.(!ng) <- 1;
          incr ng;
          prev := g
        end;
        if dinfo <> 0 then begin
          dinfos.(!nd) <- dinfo;
          incr nd
        end);
    Array.map
      (fun (s : spec) ->
        let ia = Cache.chunk_start s.icache in
        let da = Cache.chunk_start s.dcache in
        if !aligned && s.icache.Memsys.sub_block_bytes >= 4 then
          for k = 0 to !ng - 1 do
            Cache.chunk_iread_run ia
              ~addr:(Array.unsafe_get gran k lsl 2)
              ~count:(Array.unsafe_get cnt k)
          done
        else
          for k = 0 to !np - 1 do
            Cache.chunk_access ia ~is_read:true ~addr:(Array.unsafe_get pcs k)
              ~bytes:insn_bytes
          done;
        for k = 0 to !nd - 1 do
          let d = Array.unsafe_get dinfos k in
          Cache.chunk_access da
            ~is_read:(d land 1 = 0)
            ~addr:(d lsr 5)
            ~bytes:((d lsr 1) land 0xF)
        done;
        (Cache.chunk_finish ia, Cache.chunk_finish da))
      specs

  let merge (specs : spec array) (chunks : chunk_result list) =
    Array.to_list
      (Array.mapi
         (fun j (s : spec) ->
           let icar = Cache.carry_start s.icache in
           let dcar = Cache.carry_start s.dcache in
           List.iter
             (fun (r : chunk_result) ->
               let si, sd = r.(j) in
               Cache.absorb icar si;
               Cache.absorb dcar sd)
             chunks;
           let it = Cache.carry_totals icar in
           let dt = Cache.carry_totals dcar in
           {
             Memsys.icache =
               {
                 Memsys.accesses = it.Cache.reads + it.Cache.writes;
                 misses = it.Cache.read_misses + it.Cache.write_misses;
                 words_transferred = it.Cache.fetch_words;
               };
             dcache_read =
               {
                 Memsys.accesses = dt.Cache.reads;
                 misses = dt.Cache.read_misses;
                 words_transferred = 0;
               };
             dcache_write =
               {
                 Memsys.accesses = dt.Cache.writes;
                 misses = dt.Cache.write_misses;
                 words_transferred = 0;
               };
           })
         specs)

  let run ?map rd (specs : spec list) =
    let sa = Array.of_list specs in
    let ids = List.init (Trace.Reader.n_chunks rd) Fun.id in
    let results =
      match map with
      | Some m -> m (chunk rd sa) ids
      | None -> List.map (chunk rd sa) ids
    in
    merge sa results
end
