module Memsys = Repro_sim.Memsys
module Pipeline = Repro_uarch.Pipeline

type nocache_chunk = {
  cold_irequests : int;
  first_block : int;
  last_block : int;
  drequests : int;
}

let nocache_chunk rd ~bus_bytes i =
  let buf = Memsys.Fetchbuf.make ~bus_bytes in
  let first = ref (-1) in
  let dreq = ref 0 in
  Trace.Reader.iter_chunk rd i (fun ~pc ~dinfo ->
      ignore (Memsys.Fetchbuf.fetch buf ~addr:pc);
      if !first < 0 then first := pc / bus_bytes;
      if dinfo <> 0 then begin
        let bytes = (dinfo lsr 1) land 0xF in
        dreq := !dreq + Memsys.data_requests ~bus_bytes ~bytes
      end);
  {
    cold_irequests = Memsys.Fetchbuf.requests buf;
    first_block = !first;
    last_block = Memsys.Fetchbuf.last_block buf;
    drequests = !dreq;
  }

let merge_nocache chunks =
  let ireq = ref 0 in
  let dreq = ref 0 in
  let prev = ref (-1) in
  List.iter
    (fun c ->
      dreq := !dreq + c.drequests;
      if c.first_block >= 0 then begin
        ireq :=
          !ireq + c.cold_irequests
          - (if c.first_block = !prev then 1 else 0);
        prev := c.last_block
      end)
    chunks;
  { Memsys.irequests = !ireq; drequests = !dreq }

let nocache rd ~bus_bytes =
  merge_nocache
    (List.init (Trace.Reader.n_chunks rd) (nocache_chunk rd ~bus_bytes))

let cached ~icache ~dcache rd =
  let insn_bytes = Trace.Reader.insn_bytes rd in
  let ic = Memsys.Cache.make icache in
  let dc = Memsys.Cache.make dcache in
  let dreads = ref 0 in
  let dread_miss = ref 0 in
  let dwrites = ref 0 in
  let dwrite_miss = ref 0 in
  Trace.Reader.iter rd (fun ~pc ~dinfo ->
      ignore (Memsys.Cache.access ic ~is_read:true ~addr:pc ~bytes:insn_bytes);
      if dinfo <> 0 then begin
        let is_write = dinfo land 1 = 1 in
        let bytes = (dinfo lsr 1) land 0xF in
        let addr = dinfo lsr 5 in
        let missed = Memsys.Cache.access dc ~is_read:(not is_write) ~addr ~bytes in
        if is_write then begin
          incr dwrites;
          if missed then incr dwrite_miss
        end
        else begin
          incr dreads;
          if missed then incr dread_miss
        end
      end);
  {
    Memsys.icache = Memsys.Cache.stats ic;
    dcache_read =
      { Memsys.accesses = !dreads; misses = !dread_miss; words_transferred = 0 };
    dcache_write =
      {
        Memsys.accesses = !dwrites;
        misses = !dwrite_miss;
        words_transferred = 0;
      };
  }

let pipelines rd cfgs img =
  let pipes = Array.of_list (List.map (fun cfg -> Pipeline.create cfg img) cfgs) in
  let n = Array.length pipes in
  Trace.Reader.iter rd (fun ~pc ~dinfo ->
      for k = 0 to n - 1 do
        Pipeline.step (Array.unsafe_get pipes k) ~iaddr:pc ~dinfo
      done);
  Array.to_list (Array.map Pipeline.result pipes)

(* Shared chunk decode. ------------------------------------------------------

   One decode per chunk feeds every automaton (caches, fetch buffers,
   scoreboards).  The i-stream is additionally run-length compressed at
   4-byte granularity: consecutive fetches inside the same granule become
   one event plus a repeat count, which any automaton whose hit/miss
   outcome is constant across a granule (cache sub-blocks >= 4 bytes on
   aligned traces; any fetch buffer with a bus >= 4 bytes) replays in one
   step — the first access decides, the rest are guaranteed hits. *)
type decoded = {
  pcs : int array;  (* every record's fetch address, in order *)
  np : int;
  dinfos : int array;  (* the nonzero packed data records, in order *)
  nd : int;
  gran : int array;  (* run-length compressed i-stream: 4-byte granules *)
  cnt : int array;
  ng : int;
  aligned : bool;  (* no fetch straddles a granule *)
}

let decode rd i =
  let insn_bytes = Trace.Reader.insn_bytes rd in
  let info = Trace.Reader.chunk rd i in
  let n = info.Trace.Reader.n_records in
  let gran = Array.make (max n 1) 0 in
  let cnt = Array.make (max n 1) 0 in
  let pcs = Array.make (max n 1) 0 in
  let dinfos = Array.make (max n 1) 0 in
  let ng = ref 0 in
  let nd = ref 0 in
  let np = ref 0 in
  let prev = ref min_int in
  let aligned = ref true in
  Trace.Reader.iter_chunk rd i (fun ~pc ~dinfo ->
      pcs.(!np) <- pc;
      incr np;
      if pc land 3 + insn_bytes > 4 then aligned := false;
      let g = pc lsr 2 in
      if g = !prev then cnt.(!ng - 1) <- cnt.(!ng - 1) + 1
      else begin
        gran.(!ng) <- g;
        cnt.(!ng) <- 1;
        incr ng;
        prev := g
      end;
      if dinfo <> 0 then begin
        dinfos.(!nd) <- dinfo;
        incr nd
      end);
  {
    pcs;
    np = !np;
    dinfos;
    nd = !nd;
    gran;
    cnt;
    ng = !ng;
    aligned = !aligned;
  }

(* Single-pass, chunk-parallel cache grid. ---------------------------------- *)

module Grid = struct
  module Cache = Memsys.Cache

  type spec = {
    icache : Memsys.cache_config;
    dcache : Memsys.cache_config;
  }

  type chunk_result = (Cache.summary * Cache.summary) array

  let chunk rd (specs : spec array) i =
    let insn_bytes = Trace.Reader.insn_bytes rd in
    let d = decode rd i in
    Array.map
      (fun (s : spec) ->
        let ia = Cache.chunk_start s.icache in
        let da = Cache.chunk_start s.dcache in
        if d.aligned && s.icache.Memsys.sub_block_bytes >= 4 then
          for k = 0 to d.ng - 1 do
            Cache.chunk_iread_run ia
              ~addr:(Array.unsafe_get d.gran k lsl 2)
              ~count:(Array.unsafe_get d.cnt k)
          done
        else
          for k = 0 to d.np - 1 do
            Cache.chunk_access ia ~is_read:true
              ~addr:(Array.unsafe_get d.pcs k)
              ~bytes:insn_bytes
          done;
        for k = 0 to d.nd - 1 do
          let v = Array.unsafe_get d.dinfos k in
          Cache.chunk_access da
            ~is_read:(v land 1 = 0)
            ~addr:(v lsr 5)
            ~bytes:((v lsr 1) land 0xF)
        done;
        (Cache.chunk_finish ia, Cache.chunk_finish da))
      specs

  let merge (specs : spec array) (chunks : chunk_result list) =
    Array.to_list
      (Array.mapi
         (fun j (s : spec) ->
           let icar = Cache.carry_start s.icache in
           let dcar = Cache.carry_start s.dcache in
           List.iter
             (fun (r : chunk_result) ->
               let si, sd = r.(j) in
               Cache.absorb icar si;
               Cache.absorb dcar sd)
             chunks;
           let it = Cache.carry_totals icar in
           let dt = Cache.carry_totals dcar in
           {
             Memsys.icache =
               {
                 Memsys.accesses = it.Cache.reads + it.Cache.writes;
                 misses = it.Cache.read_misses + it.Cache.write_misses;
                 words_transferred = it.Cache.fetch_words;
               };
             dcache_read =
               {
                 Memsys.accesses = dt.Cache.reads;
                 misses = dt.Cache.read_misses;
                 words_transferred = 0;
               };
             dcache_write =
               {
                 Memsys.accesses = dt.Cache.writes;
                 misses = dt.Cache.write_misses;
                 words_transferred = 0;
               };
           })
         specs)

  let run ?map rd (specs : spec list) =
    let sa = Array.of_list specs in
    let ids = List.init (Trace.Reader.n_chunks rd) Fun.id in
    let results =
      match map with
      | Some m -> m (chunk rd sa) ids
      | None -> List.map (chunk rd sa) ids
    in
    merge sa results
end

(* Single-pass, chunk-parallel pipeline-timing grid. ------------------------ *)

module Upipelines = struct
  module Uconfig = Repro_uarch.Uconfig
  module Scoreboard = Repro_uarch.Scoreboard
  module Predecode = Repro_uarch.Predecode
  module Mem = Pipeline.Mem
  module Link = Repro_link.Link
  module Target = Repro_core.Target

  (* Distinct memory-behaviour classes in first-appearance order, plus
     each configuration's class index.  The scoreboard is shared by ALL
     configurations (interlocks depend only on the instruction stream),
     so a chunk runs one scoreboard automaton plus one memory automaton
     per distinct class — the standard ten-configuration sweep needs
     four, not ten. *)
  let dedup cfgs =
    let seen = ref [] in
    let of_cfg =
      List.map
        (fun cfg ->
          let k = Mem.key cfg in
          match List.assoc_opt k !seen with
          | Some j -> j
          | None ->
            let j = List.length !seen in
            seen := (k, j) :: !seen;
            j)
        cfgs
    in
    let keys = Array.make (List.length !seen) (Mem.key (List.hd cfgs)) in
    List.iter (fun (k, j) -> keys.(j) <- k) !seen;
    (keys, Array.of_list of_cfg)

  type chunk_result = {
    u_sb : Scoreboard.summary;
    u_mems : Mem.summary array;  (* per distinct memory class, key order *)
  }

  let chunk rd descs (img : Link.image) keys i =
    let insn_bytes = Trace.Reader.insn_bytes rd in
    let target = img.Link.target in
    let d = decode rd i in
    let sb =
      Scoreboard.chunk_start ~n_gpr:target.Target.n_gpr
        ~n_fpr:target.Target.n_fpr
    in
    for k = 0 to d.np - 1 do
      let idx = Link.index_at img (Array.unsafe_get d.pcs k) in
      Scoreboard.chunk_step sb ~index:idx (Array.unsafe_get descs idx)
    done;
    let u_mems =
      Array.map
        (fun key ->
          let a = Mem.chunk_start ~insn_bytes key in
          if Mem.fetch_run_ok ~aligned:d.aligned key then
            for k = 0 to d.ng - 1 do
              Mem.fetch_run a
                ~addr:(Array.unsafe_get d.gran k lsl 2)
                ~count:(Array.unsafe_get d.cnt k)
            done
          else
            for k = 0 to d.np - 1 do
              Mem.fetch a ~addr:(Array.unsafe_get d.pcs k)
            done;
          for k = 0 to d.nd - 1 do
            Mem.data a ~dinfo:(Array.unsafe_get d.dinfos k)
          done;
          Mem.chunk_finish a)
        keys
    in
    { u_sb = Scoreboard.chunk_finish sb; u_mems }

  let run ?map rd cfgs (img : Link.image) =
    if cfgs = [] then []
    else begin
      let descs = Predecode.table img in
      let keys, of_cfg = dedup cfgs in
      let ids = List.init (Trace.Reader.n_chunks rd) Fun.id in
      let results =
        match map with
        | Some m -> m (chunk rd descs img keys) ids
        | None -> List.map (chunk rd descs img keys) ids
      in
      (* Sequential reconciliation, in chunk order: re-step each chunk's
         scoreboard prefix from the true carried-in state (adopting the
         cold suffix at the convergence point), and stitch the memory
         summaries through their own carry logic. *)
      let target = img.Link.target in
      let sb =
        Scoreboard.create ~n_gpr:target.Target.n_gpr
          ~n_fpr:target.Target.n_fpr
      in
      let carries = Array.map Mem.carry_start keys in
      List.iter
        (fun r ->
          Scoreboard.absorb sb descs r.u_sb;
          Array.iteri (fun j s -> Mem.absorb carries.(j) s) r.u_mems)
        results;
      let ic = Trace.Reader.n_records rd in
      let interlock_clock = Scoreboard.clock sb in
      let load_interlocks = Scoreboard.load_stalls sb in
      let fp_interlocks = Scoreboard.fp_stalls sb in
      List.mapi
        (fun j cfg ->
          Mem.charge carries.(of_cfg.(j)) cfg ~ic ~interlock_clock
            ~load_interlocks ~fp_interlocks)
        cfgs
    end
end
