module Memsys = Repro_sim.Memsys
module Pipeline = Repro_uarch.Pipeline
module Uconfig = Repro_uarch.Uconfig
module Scoreboard = Repro_uarch.Scoreboard
module Predecode = Repro_uarch.Predecode
module Link = Repro_link.Link
module Target = Repro_core.Target
module Mem = Pipeline.Mem

(* Shared chunk decode. ------------------------------------------------------

   One decode per chunk feeds every automaton (caches, fetch buffers,
   scoreboards).  Decoded chunks are cached: the varint stream is
   LEB128+zigzag and costs more to walk than the automata cost to step,
   so a sweep that touches the same chunk from several engines — or a
   parallel replay re-fanning the same chunks out per bench iteration —
   must not pay the decode repeatedly.  The cache is a small MRU of
   recently-replayed readers (keyed by physical reader identity) with one
   atomic slot per chunk: the slot is filled outside any lock (decoding
   is deterministic, so a racing double-decode is just redundant work,
   never wrong), and readers evicted from the MRU drop all their arrays
   at once. *)

module Decoded = struct
  type t = {
    pcs : int array;  (* every record's fetch address, in order *)
    dinfos : int array;  (* the nonzero packed data records, in order *)
    gran : int array;  (* run-length compressed i-stream: 4-byte granules *)
    cnt : int array;
    aligned : bool;  (* no fetch straddles a granule *)
    insn_bytes : int;
  }

  let of_chunk rd i =
    let insn_bytes = Trace.Reader.insn_bytes rd in
    let info = Trace.Reader.chunk rd i in
    let n = info.Trace.Reader.n_records in
    let gran = Array.make (max n 1) 0 in
    let cnt = Array.make (max n 1) 0 in
    let pcs = Array.make (max n 1) 0 in
    let dinfos = Array.make (max n 1) 0 in
    let ng = ref 0 in
    let nd = ref 0 in
    let np = ref 0 in
    let prev = ref min_int in
    let aligned = ref true in
    Trace.Reader.iter_chunk rd i (fun ~pc ~dinfo ->
        pcs.(!np) <- pc;
        incr np;
        if pc land 3 + insn_bytes > 4 then aligned := false;
        let g = pc lsr 2 in
        if g = !prev then cnt.(!ng - 1) <- cnt.(!ng - 1) + 1
        else begin
          gran.(!ng) <- g;
          cnt.(!ng) <- 1;
          incr ng;
          prev := g
        end;
        if dinfo <> 0 then begin
          dinfos.(!nd) <- dinfo;
          incr nd
        end);
    {
      pcs = Array.sub pcs 0 !np;
      dinfos = Array.sub dinfos 0 !nd;
      gran = Array.sub gran 0 !ng;
      cnt = Array.sub cnt 0 !ng;
      aligned = !aligned;
      insn_bytes;
    }

  let cache_readers = 4
  let cache_lock = Mutex.create ()

  let cache : (Trace.Reader.t * t option Atomic.t array) list ref = ref []

  let slots rd =
    Mutex.protect cache_lock (fun () ->
        match List.assq_opt rd !cache with
        | Some slots ->
          (match !cache with
          | (r, _) :: _ when r == rd -> ()  (* already most recent *)
          | _ ->
            cache :=
              (rd, slots) :: List.filter (fun (r, _) -> r != rd) !cache);
          slots
        | None ->
          let slots =
            Array.init (Trace.Reader.n_chunks rd) (fun _ -> Atomic.make None)
          in
          cache :=
            (rd, slots)
            :: List.filteri (fun j _ -> j < cache_readers - 1) !cache;
          slots)

  let get rd i =
    let slot = (slots rd).(i) in
    match Atomic.get slot with
    | Some d -> d
    | None ->
      let d = of_chunk rd i in
      Atomic.set slot (Some d);
      d
end

(* The Automaton framework. ------------------------------------------------- *)

module type Automaton = sig
  type cfg
  type auto
  type summary
  type carry

  val chunk_start : cfg -> auto
  val step : auto -> Decoded.t -> unit
  val snapshot : auto -> summary
  val converged : summary -> bool
  val carry : cfg -> carry
  val absorb : carry -> summary -> unit
end

module Chunked (A : Automaton) = struct
  type chunk_result = A.summary array

  let chunk (cfgs : A.cfg array) rd i =
    let d = Decoded.get rd i in
    Array.map
      (fun cfg ->
        let a = A.chunk_start cfg in
        A.step a d;
        A.snapshot a)
      cfgs

  let merge (cfgs : A.cfg array) (chunks : chunk_result list) =
    let carries = Array.map A.carry cfgs in
    List.iter
      (fun (r : chunk_result) -> Array.iteri (fun j s -> A.absorb carries.(j) s) r)
      chunks;
    carries

  let run ?map rd (cfgs : A.cfg array) =
    let ids = List.init (Trace.Reader.n_chunks rd) Fun.id in
    let results =
      match map with
      | Some m -> m (chunk cfgs rd) ids
      | None -> List.map (chunk cfgs rd) ids
    in
    merge cfgs results
end

(* The unified engine. -------------------------------------------------------

   One automaton covers every shipped replay: the memory-facing models
   (fetch buffer, split I/D caches — both are {!Pipeline.Mem} behaviour
   classes, reconciled by boundary-fetch cancellation or the cache's
   prefix log) and the scoreboard (bounded-horizon convergence).  A
   configuration list mixing [Cmem] and [Cscore] entries is exactly the
   fused cross-product sweep; every public entry point below is a thin
   projection of this engine's carries. *)

module Engine = struct
  type cfg =
    | Cmem of { key : Mem.key; insn_bytes : int }
    | Cscore of { img : Link.image; descs : Predecode.desc array }

  type auto =
    | Amem of { a : Mem.auto; key : Mem.key }
    | Ascore of {
        ch : Scoreboard.chunk;
        img : Link.image;
        descs : Predecode.desc array;
      }

  type summary =
    | Smem of Mem.summary
    | Sscore of { s : Scoreboard.summary; converged : bool }

  type carry =
    | Kmem of Mem.carry
    | Kscore of { sb : Scoreboard.t; descs : Predecode.desc array }

  let chunk_start = function
    | Cmem { key; insn_bytes } -> Amem { a = Mem.chunk_start ~insn_bytes key; key }
    | Cscore { img; descs } ->
      let t = img.Link.target in
      Ascore
        {
          ch = Scoreboard.chunk_start ~n_gpr:t.Target.n_gpr ~n_fpr:t.Target.n_fpr;
          img;
          descs;
        }

  let step a (d : Decoded.t) =
    match a with
    | Amem { a; key } ->
      (if Mem.fetch_run_ok ~aligned:d.Decoded.aligned key then begin
         let gran = d.Decoded.gran and cnt = d.Decoded.cnt in
         for k = 0 to Array.length gran - 1 do
           Mem.fetch_run a
             ~addr:(Array.unsafe_get gran k lsl 2)
             ~count:(Array.unsafe_get cnt k)
         done
       end
       else begin
         let pcs = d.Decoded.pcs in
         for k = 0 to Array.length pcs - 1 do
           Mem.fetch a ~addr:(Array.unsafe_get pcs k)
         done
       end);
      let dinfos = d.Decoded.dinfos in
      for k = 0 to Array.length dinfos - 1 do
        Mem.data a ~dinfo:(Array.unsafe_get dinfos k)
      done
    | Ascore { ch; img; descs } ->
      let pcs = d.Decoded.pcs in
      for k = 0 to Array.length pcs - 1 do
        (* Strip the wide-instruction mark (bit 0) before the index
           lookup; the scoreboard itself is size-blind. *)
        let idx = Link.index_at img (Array.unsafe_get pcs k land lnot 1) in
        Scoreboard.chunk_step ch ~index:idx (Array.unsafe_get descs idx)
      done

  let snapshot = function
    | Amem { a; _ } -> Smem (Mem.chunk_finish a)
    | Ascore { ch; _ } ->
      let converged = Scoreboard.convergence ch <> None in
      Sscore { s = Scoreboard.chunk_finish ch; converged }

  let converged = function
    | Smem _ -> true  (* prefix-log reconciliation never re-steps whole *)
    | Sscore { converged; _ } -> converged

  let carry = function
    | Cmem { key; _ } -> Kmem (Mem.carry_start key)
    | Cscore { img; descs } ->
      let t = img.Link.target in
      Kscore
        { sb = Scoreboard.create ~n_gpr:t.Target.n_gpr ~n_fpr:t.Target.n_fpr;
          descs }

  let absorb c s =
    match (c, s) with
    | Kmem c, Smem s -> Mem.absorb c s
    | Kscore { sb; descs }, Sscore { s; _ } -> Scoreboard.absorb sb descs s
    | _ -> invalid_arg "Replay: summary from a different automaton kind"
end

module E = Chunked (Engine)

type chunk_result = E.chunk_result
type map = (int -> chunk_result) -> int list -> chunk_result list

(* Memory-behaviour classes for the axes the memory-system studies sweep:
   the wait states / miss penalty are irrelevant to the counters, so any
   priced value works as a key carrier — 0 keeps the smart constructors
   happy. *)
let nocache_key ~bus_bytes = Mem.key (Uconfig.nocache ~bus_bytes ~wait_states:0)

let cached_key ~icache ~dcache =
  Mem.key (Uconfig.cached ~icache ~dcache ~miss_penalty:0)

let mem_carry = function
  | Engine.Kmem c -> c
  | Engine.Kscore _ -> assert false

let nocache ?map rd ~bus_bytes =
  let cfg =
    Engine.Cmem
      { key = nocache_key ~bus_bytes;
        insn_bytes = Trace.Reader.insn_bytes rd }
  in
  Mem.nocache_counters (mem_carry (E.run ?map rd [| cfg |]).(0))

let cached ?map ~icache ~dcache rd =
  let cfg =
    Engine.Cmem
      { key = cached_key ~icache ~dcache;
        insn_bytes = Trace.Reader.insn_bytes rd }
  in
  Mem.cached_counters (mem_carry (E.run ?map rd [| cfg |]).(0))

module Grid = struct
  type spec = { icache : Memsys.cache_config; dcache : Memsys.cache_config }

  let run ?map rd (specs : spec list) =
    let insn_bytes = Trace.Reader.insn_bytes rd in
    let cfgs =
      Array.of_list
        (List.map
           (fun (s : spec) ->
             Engine.Cmem
               { key = cached_key ~icache:s.icache ~dcache:s.dcache; insn_bytes })
           specs)
    in
    Array.to_list
      (Array.map (fun c -> Mem.cached_counters (mem_carry c)) (E.run ?map rd cfgs))
end

(* Distinct memory-behaviour classes in first-appearance order, plus each
   configuration's class index.  The scoreboard is shared by ALL
   configurations (interlocks depend only on the instruction stream), so
   a sweep runs one scoreboard automaton plus one memory automaton per
   distinct class — the standard ten-configuration sweep needs four, not
   ten. *)
let dedup_keys keys =
  let seen = ref [] in
  let of_item =
    List.map
      (fun k ->
        match List.assoc_opt k !seen with
        | Some j -> j
        | None ->
          let j = List.length !seen in
          seen := (k, j) :: !seen;
          j)
      keys
  in
  let arr = Array.make (max (List.length !seen) 1) (nocache_key ~bus_bytes:4) in
  List.iter (fun (k, j) -> arr.(j) <- k) !seen;
  (Array.sub arr 0 (List.length !seen), Array.of_list of_item)

(* Scoreboard-first configuration layout shared by Upipelines and Fused:
   index 0 is the (optional) scoreboard, memory classes follow in key
   order. *)
let run_fused ?map rd ?score keys =
  let insn_bytes = Trace.Reader.insn_bytes rd in
  let score_cfgs =
    match score with
    | Some (img, descs) -> [| Engine.Cscore { img; descs } |]
    | None -> [||]
  in
  let cfgs =
    Array.append score_cfgs
      (Array.map (fun key -> Engine.Cmem { key; insn_bytes }) keys)
  in
  let carries = E.run ?map rd cfgs in
  let base = Array.length score_cfgs in
  let interlocks =
    if base = 0 then None
    else
      match carries.(0) with
      | Engine.Kscore { sb; _ } ->
        Some
          ( Scoreboard.clock sb,
            Scoreboard.load_stalls sb,
            Scoreboard.fp_stalls sb )
      | Engine.Kmem _ -> assert false
  in
  (interlocks, fun j -> mem_carry carries.(base + j))

module Upipelines = struct
  let run ?map rd cfgs (img : Link.image) =
    if cfgs = [] then []
    else begin
      let descs = Predecode.table img in
      let keys, of_cfg = dedup_keys (List.map Mem.key cfgs) in
      let interlocks, carry_of =
        run_fused ?map rd ~score:(img, descs) keys
      in
      let interlock_clock, load_interlocks, fp_interlocks =
        Option.get interlocks
      in
      let ic = Trace.Reader.n_records rd in
      List.mapi
        (fun j cfg ->
          Mem.charge (carry_of of_cfg.(j)) cfg ~ic ~interlock_clock
            ~load_interlocks ~fp_interlocks)
        cfgs
    end
end

module Fused = struct
  type spec = {
    buses : int list;
    caches : Grid.spec list;
    pipelines : Uconfig.t list;
  }

  type result = {
    nocaches : Memsys.nocache list;
    cacheds : Memsys.cached list;
    pipes : Pipeline.result list;
  }

  let run ?map ?img rd (spec : spec) =
    let score =
      match (spec.pipelines, img) with
      | [], _ -> None
      | _ :: _, Some img -> Some (img, Predecode.table img)
      | _ :: _, None ->
        invalid_arg "Replay.Fused.run: pipeline configurations need ~img"
    in
    (* One key list across every axis: a pipeline configuration whose
       memory class also appears as a bus or geometry axis shares its
       automaton. *)
    let bus_keys = List.map (fun bus -> nocache_key ~bus_bytes:bus) spec.buses in
    let cache_keys =
      List.map
        (fun (s : Grid.spec) -> cached_key ~icache:s.icache ~dcache:s.dcache)
        spec.caches
    in
    let pipe_keys = List.map Mem.key spec.pipelines in
    let keys, of_item = dedup_keys (bus_keys @ cache_keys @ pipe_keys) in
    let interlocks, carry_of = run_fused ?map rd ?score keys in
    let nb = List.length spec.buses in
    let nc = List.length spec.caches in
    let nocaches =
      List.mapi (fun i _ -> Mem.nocache_counters (carry_of of_item.(i))) spec.buses
    in
    let cacheds =
      List.mapi
        (fun i _ -> Mem.cached_counters (carry_of of_item.(nb + i)))
        spec.caches
    in
    let pipes =
      match interlocks with
      | None -> []
      | Some (interlock_clock, load_interlocks, fp_interlocks) ->
        let ic = Trace.Reader.n_records rd in
        List.mapi
          (fun i cfg ->
            Mem.charge
              (carry_of of_item.(nb + nc + i))
              cfg ~ic ~interlock_clock ~load_interlocks ~fp_interlocks)
          spec.pipelines
    in
    { nocaches; cacheds; pipes }
end

(* Reference implementations: the plain sequential per-record loops the
   chunk engines replaced, kept as independent baselines for the
   differential suite (they share no code with the framework above). *)

module Seq = struct
  let nocache rd ~bus_bytes =
    let buf = Memsys.Fetchbuf.make ~bus_bytes in
    let dreq = ref 0 in
    Trace.Reader.iter rd (fun ~pc ~dinfo ->
        let wide = pc land 1 <> 0 in
        let pc = pc land lnot 1 in
        ignore (Memsys.Fetchbuf.fetch buf ~addr:pc);
        if wide then ignore (Memsys.Fetchbuf.fetch buf ~addr:(pc + 2));
        if dinfo <> 0 then begin
          let bytes = (dinfo lsr 1) land 0xF in
          dreq := !dreq + Memsys.data_requests ~bus_bytes ~bytes
        end);
    { Memsys.irequests = Memsys.Fetchbuf.requests buf; drequests = !dreq }

  let cached ~icache ~dcache rd =
    let insn_bytes = Trace.Reader.insn_bytes rd in
    let ic = Memsys.Cache.make icache in
    let dc = Memsys.Cache.make dcache in
    let dreads = ref 0 in
    let dread_miss = ref 0 in
    let dwrites = ref 0 in
    let dwrite_miss = ref 0 in
    Trace.Reader.iter rd (fun ~pc ~dinfo ->
        let wide = pc land 1 <> 0 in
        let pc = pc land lnot 1 in
        ignore
          (Memsys.Cache.access ic ~is_read:true ~addr:pc
             ~bytes:(if wide then 4 else insn_bytes));
        if dinfo <> 0 then begin
          let is_write = dinfo land 1 = 1 in
          let bytes = (dinfo lsr 1) land 0xF in
          let addr = dinfo lsr 5 in
          let missed =
            Memsys.Cache.access dc ~is_read:(not is_write) ~addr ~bytes
          in
          if is_write then begin
            incr dwrites;
            if missed then incr dwrite_miss
          end
          else begin
            incr dreads;
            if missed then incr dread_miss
          end
        end);
    {
      Memsys.icache = Memsys.Cache.stats ic;
      dcache_read =
        { Memsys.accesses = !dreads; misses = !dread_miss; words_transferred = 0 };
      dcache_write =
        {
          Memsys.accesses = !dwrites;
          misses = !dwrite_miss;
          words_transferred = 0;
        };
    }

  let pipelines rd cfgs img =
    let pipes =
      Array.of_list (List.map (fun cfg -> Pipeline.create cfg img) cfgs)
    in
    let n = Array.length pipes in
    Trace.Reader.iter rd (fun ~pc ~dinfo ->
        for k = 0 to n - 1 do
          Pipeline.step (Array.unsafe_get pipes k) ~iaddr:pc ~dinfo
        done);
    Array.to_list (Array.map Pipeline.result pipes)
end
