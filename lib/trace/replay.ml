module Memsys = Repro_sim.Memsys
module Pipeline = Repro_uarch.Pipeline

type nocache_chunk = {
  cold_irequests : int;
  first_block : int;
  last_block : int;
  drequests : int;
}

let nocache_chunk rd ~bus_bytes i =
  let buf = Memsys.Fetchbuf.make ~bus_bytes in
  let first = ref (-1) in
  let dreq = ref 0 in
  Trace.Reader.iter_chunk rd i (fun ~pc ~dinfo ->
      ignore (Memsys.Fetchbuf.fetch buf ~addr:pc);
      if !first < 0 then first := pc / bus_bytes;
      if dinfo <> 0 then begin
        let bytes = (dinfo lsr 1) land 0xF in
        dreq := !dreq + Memsys.data_requests ~bus_bytes ~bytes
      end);
  {
    cold_irequests = Memsys.Fetchbuf.requests buf;
    first_block = !first;
    last_block = Memsys.Fetchbuf.last_block buf;
    drequests = !dreq;
  }

let merge_nocache chunks =
  let ireq = ref 0 in
  let dreq = ref 0 in
  let prev = ref (-1) in
  List.iter
    (fun c ->
      dreq := !dreq + c.drequests;
      if c.first_block >= 0 then begin
        ireq :=
          !ireq + c.cold_irequests
          - (if c.first_block = !prev then 1 else 0);
        prev := c.last_block
      end)
    chunks;
  { Memsys.irequests = !ireq; drequests = !dreq }

let nocache rd ~bus_bytes =
  merge_nocache
    (List.init (Trace.Reader.n_chunks rd) (nocache_chunk rd ~bus_bytes))

let cached ~icache ~dcache rd =
  let insn_bytes = Trace.Reader.insn_bytes rd in
  let ic = Memsys.Cache.make icache in
  let dc = Memsys.Cache.make dcache in
  let dreads = ref 0 in
  let dread_miss = ref 0 in
  let dwrites = ref 0 in
  let dwrite_miss = ref 0 in
  Trace.Reader.iter rd (fun ~pc ~dinfo ->
      ignore (Memsys.Cache.access ic ~is_read:true ~addr:pc ~bytes:insn_bytes);
      if dinfo <> 0 then begin
        let is_write = dinfo land 1 = 1 in
        let bytes = (dinfo lsr 1) land 0xF in
        let addr = dinfo lsr 5 in
        let missed = Memsys.Cache.access dc ~is_read:(not is_write) ~addr ~bytes in
        if is_write then begin
          incr dwrites;
          if missed then incr dwrite_miss
        end
        else begin
          incr dreads;
          if missed then incr dread_miss
        end
      end);
  {
    Memsys.icache = Memsys.Cache.stats ic;
    dcache_read =
      { Memsys.accesses = !dreads; misses = !dread_miss; words_transferred = 0 };
    dcache_write =
      {
        Memsys.accesses = !dwrites;
        misses = !dwrite_miss;
        words_transferred = 0;
      };
  }

let pipelines rd cfgs img =
  let pipes = List.map (fun cfg -> Pipeline.create cfg img) cfgs in
  Trace.Reader.iter rd (fun ~pc ~dinfo ->
      List.iter (fun p -> Pipeline.step p ~iaddr:pc ~dinfo) pipes);
  List.map Pipeline.result pipes
