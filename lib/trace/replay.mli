(** Trace-driven replay: the memory-system models and the cycle-accurate
    pipeline, fed from a {!Trace.Reader} instead of a live execution.

    Replays are exactly equal to their direct-execution counterparts
    ({!Repro_sim.Memsys.replay_nocache}, [replay_cached], and
    {!Repro_uarch.Uarch} runs) — the differential suite in [test/t_trace.ml]
    gates on byte-identical counters.

    {1 The chunk-parallel framework}

    Every replay engine here is one instance of the same recipe:

    + {b decode} each trace chunk once into flat arrays ({!Decoded}),
      shared by every automaton fed from that chunk;
    + {b cold-simulate} each chunk independently — an {!Automaton} starts
      from a state that assumes nothing about the carried-in state and
      records whatever boundary bookkeeping its reconciliation needs
      (a prefix log of boundary-sensitive events, or a convergence
      point past which cold provably equals warm);
    + {b merge} sequentially, in chunk order: fold each chunk's summary
      into the true carried state ([absorb]), replaying only the logged
      prefix — never the whole chunk, unless it never converged.

    The {!Chunked} functor packages steps 1–3 so an engine only supplies
    its automaton; exactness is the automaton's contract ([absorb] must
    reconstruct precisely the sequential outcome), and the differential
    suite gates every shipped instance on byte-equality to direct
    execution, chunk-parallel equal to sequential. *)

(** One trace chunk decoded into flat arrays, shared by every automaton.

    The i-stream is additionally run-length compressed at 4-byte
    granularity: consecutive fetches inside the same granule become one
    event plus a repeat count, which any automaton whose hit/miss outcome
    is constant across a granule (cache sub-blocks >= 4 bytes on aligned
    traces; any fetch buffer with a bus >= 4 bytes) replays in one step —
    the first access decides, the rest are guaranteed hits.

    Decoded chunks are cached (a small MRU over recently-replayed
    readers, lock-free per-chunk slots), so a multi-engine sweep — or a
    parallel replay fanning the same chunks out repeatedly — decodes the
    varint stream once, not once per engine. *)
module Decoded : sig
  type t = {
    pcs : int array;  (** Every record's fetch address, in order. *)
    dinfos : int array;  (** The nonzero packed data records, in order. *)
    gran : int array;  (** Run-length compressed i-stream: 4-byte granules. *)
    cnt : int array;  (** Repeat count per granule run. *)
    aligned : bool;  (** No fetch straddles a granule. *)
    insn_bytes : int;
  }

  val of_chunk : Trace.Reader.t -> int -> t
  (** Decode chunk [i], bypassing the cache. *)

  val get : Trace.Reader.t -> int -> t
  (** Decode chunk [i] through the shared cache: the first caller (in any
      domain) decodes, everyone else reuses the arrays. *)
end

(** What an engine supplies: a per-chunk cold automaton plus the
    sequential reconciliation that makes chunk-parallel execution exact.

    [chunk_start]/[step]/[snapshot] run inside a chunk, potentially on
    another domain, with {e unknown} carried-in state; [carry]/[absorb]
    run sequentially, in chunk order, and must reconstruct exactly the
    state and totals a sequential replay would have produced.  The two
    shipped reconciliation strategies are both expressible:

    - {e prefix log} ({!Repro_sim.Memsys.Cache}, the fetch buffer):
      the summary carries the boundary-sensitive events, [absorb]
      replays just those against the true carried state;
    - {e bounded-horizon convergence} ({!Repro_uarch.Scoreboard}): the
      summary carries the pre-convergence prefix, [absorb] re-steps it
      warm and adopts the cold suffix verbatim (falling back to a full
      re-step if the chunk never converged). *)
module type Automaton = sig
  type cfg
  (** One configuration of the model (geometry, bus width, ...). *)

  type auto
  (** One chunk's cold automaton. *)

  type summary
  (** Immutable chunk result: cold counters plus whatever reconciliation
      needs.  Safe to move across domains. *)

  type carry
  (** Sequential merge state: the true state carried across chunk
      boundaries plus the accumulated totals. *)

  val chunk_start : cfg -> auto

  val step : auto -> Decoded.t -> unit
  (** Advance the cold automaton over one decoded chunk. *)

  val snapshot : auto -> summary
  (** Freeze the chunk's outcome; the automaton is dead afterwards. *)

  val converged : summary -> bool
  (** Whether [absorb] can adopt the chunk's cold suffix (prefix-only
      reconciliation) or must re-step the whole chunk.  Advisory — the
      merge is exact either way — but a diagnostic for chunk-size
      tuning, and a hook the functor tests assert on. *)

  val carry : cfg -> carry
  (** The merge state before any chunk: the stream's true initial state. *)

  val absorb : carry -> summary -> unit
  (** Fold the next chunk's summary, in stream order. *)
end

(** Exact chunk-parallel execution for any {!Automaton}: decode each
    chunk once ({!Decoded.get}), feed every configuration's cold
    automaton from the same arrays, then reconcile sequentially per
    configuration. *)
module Chunked (A : Automaton) : sig
  type chunk_result = A.summary array
  (** Per-configuration summaries for one chunk. *)

  val chunk : A.cfg array -> Trace.Reader.t -> int -> chunk_result
  (** Cold-simulate every configuration over chunk [i].  Independent of
      every other chunk — safe to fan out across domains. *)

  val merge : A.cfg array -> chunk_result list -> A.carry array
  (** Sequential reconciliation, in chunk order, per configuration. *)

  val run :
    ?map:((int -> chunk_result) -> int list -> chunk_result list) ->
    Trace.Reader.t ->
    A.cfg array ->
    A.carry array
  (** The whole trace: [map] distributes the per-chunk work (default
      [List.map]); pass [Repro_harness.Pool.map ~pool] or [~jobs] to fan
      chunks out across domains. *)
end

type chunk_result
(** One chunk's summaries for the built-in engines below ({!nocache},
    {!cached}, {!Grid}, {!Upipelines}, {!Fused} all run the same unified
    automaton, so their [?map] arguments share this type and one
    scheduler hook serves every engine). *)

type map = (int -> chunk_result) -> int list -> chunk_result list
(** The scheduler hook: how per-chunk work is distributed. *)

val nocache : ?map:map -> Trace.Reader.t -> bus_bytes:int -> Repro_sim.Memsys.nocache
(** Fetch-buffer and data bus-transaction counts for one bus width.
    Field-for-field equal to {!Repro_sim.Memsys.replay_nocache}. *)

val cached :
  ?map:map ->
  icache:Repro_sim.Memsys.cache_config ->
  dcache:Repro_sim.Memsys.cache_config ->
  Trace.Reader.t ->
  Repro_sim.Memsys.cached
(** Split I/D cache replay; instruction fetch width comes from the trace
    header.  Field-for-field equal to {!Repro_sim.Memsys.replay_cached}. *)

(** Single-pass cache grid: one decode feeds every geometry.  Results are
    byte-equal to one {!cached} pass per geometry — the differential
    suite gates on it. *)
module Grid : sig
  type spec = {
    icache : Repro_sim.Memsys.cache_config;
    dcache : Repro_sim.Memsys.cache_config;
  }

  val run :
    ?map:map ->
    Trace.Reader.t ->
    spec list ->
    Repro_sim.Memsys.cached list
end

(** Single-pass pipeline-timing grid: one decode feeds every
    configuration through a shared {!Repro_uarch.Scoreboard} automaton
    (interlocks depend only on the instruction stream) plus one
    {!Repro_uarch.Pipeline.Mem} automaton per distinct memory-behaviour
    class.  Results are integer-equal to per-configuration
    {!Repro_uarch.Uarch} runs — the differential suite gates on it. *)
module Upipelines : sig
  val run :
    ?map:map ->
    Trace.Reader.t ->
    Repro_uarch.Uconfig.t list ->
    Repro_link.Link.image ->
    Repro_uarch.Pipeline.result list
  (** Every configuration's pipeline result, in configuration order. *)
end

(** The fused cross-product engine: one decode per stored trace feeds
    bus widths x cache geometries x full pipeline configurations
    simultaneously.  Memory automatons are deduplicated by behaviour
    class {e across} the axes — a pipeline configuration whose cache
    pair also appears in [caches] shares one automaton pair — and the
    scoreboard (needed only when [pipelines] is nonempty) runs once.
    Each sub-result is byte-equal to what the dedicated engine above
    returns for the same axis. *)
module Fused : sig
  type spec = {
    buses : int list;  (** Cacheless fetch/data bus widths, in bytes. *)
    caches : Grid.spec list;  (** Split I/D geometry pairs. *)
    pipelines : Repro_uarch.Uconfig.t list;
        (** Full pipeline configurations; require [?img]. *)
  }

  type result = {
    nocaches : Repro_sim.Memsys.nocache list;  (** Per bus, in order. *)
    cacheds : Repro_sim.Memsys.cached list;  (** Per geometry pair, in order. *)
    pipes : Repro_uarch.Pipeline.result list;
        (** Per pipeline configuration, in order. *)
  }

  val run :
    ?map:map ->
    ?img:Repro_link.Link.image ->
    Trace.Reader.t ->
    spec ->
    result
  (** @raise Invalid_argument if [spec.pipelines] is nonempty and no
      [?img] was given (the pipeline model needs the image's instruction
      descriptors). *)
end

(** Reference implementations: the plain sequential per-record loops the
    chunk engines replaced.  They share nothing with the {!Chunked}
    framework — no decode cache, no automata, no reconciliation — so the
    differential suite uses them as independent baselines. *)
module Seq : sig
  val nocache : Trace.Reader.t -> bus_bytes:int -> Repro_sim.Memsys.nocache

  val cached :
    icache:Repro_sim.Memsys.cache_config ->
    dcache:Repro_sim.Memsys.cache_config ->
    Trace.Reader.t ->
    Repro_sim.Memsys.cached

  val pipelines :
    Trace.Reader.t ->
    Repro_uarch.Uconfig.t list ->
    Repro_link.Link.image ->
    Repro_uarch.Pipeline.result list
  (** One sequential pass feeding every configuration's full
      {!Repro_uarch.Pipeline}, in configuration order. *)
end
