(** Trace-driven replay: the memory-system models and the cycle-accurate
    pipeline, fed from a {!Trace.Reader} instead of a live execution.

    Replays are exactly equal to their direct-execution counterparts
    ({!Repro_sim.Memsys.replay_nocache}, [replay_cached], and
    {!Repro_uarch.Uarch} runs) — the differential suite in [test/t_trace.ml]
    gates on byte-identical counters.

    Parallelism: the fetch-buffer counters are order-independent up to one
    block of boundary state, so {!nocache_chunk} computes any chunk in
    isolation (as if the buffer were cold) and {!merge_nocache} stitches
    the per-chunk results into the exact sequential totals by cancelling
    the one request a warm buffer would have avoided at each boundary.
    Cache and pipeline state is order-dependent (tags and valid bits
    persist across every access), so {!cached} and {!pipelines} replay
    sequentially; parallel sweeps run whole configurations concurrently
    instead, each over its own cursor of a shared reader. *)

(** Per-chunk fetch-buffer counters, computed cold. *)
type nocache_chunk = {
  cold_irequests : int;  (** Fetch requests with an initially-empty buffer. *)
  first_block : int;  (** Bus block of the chunk's first fetch, [-1] if none. *)
  last_block : int;  (** Bus block buffered after the chunk. *)
  drequests : int;  (** Data bus transactions; order-free. *)
}

val nocache_chunk : Trace.Reader.t -> bus_bytes:int -> int -> nocache_chunk

val merge_nocache : nocache_chunk list -> Repro_sim.Memsys.nocache
(** In chunk order: a chunk whose first fetch hits the block the previous
    chunk left buffered did not really issue that request. *)

val nocache : Trace.Reader.t -> bus_bytes:int -> Repro_sim.Memsys.nocache
(** Sequential convenience: per-chunk counts merged in order. *)

val cached :
  icache:Repro_sim.Memsys.cache_config ->
  dcache:Repro_sim.Memsys.cache_config ->
  Trace.Reader.t ->
  Repro_sim.Memsys.cached
(** Split I/D cache replay; instruction fetch width comes from the trace
    header.  Field-for-field equal to {!Repro_sim.Memsys.replay_cached}. *)

val pipelines :
  Trace.Reader.t ->
  Repro_uarch.Uconfig.t list ->
  Repro_link.Link.image ->
  Repro_uarch.Pipeline.result list
(** One sequential pass feeding every configuration's pipeline, in
    configuration order — the trace-driven twin of
    {!Repro_uarch.Uarch.run_many}. *)

(** Single-pass, chunk-parallel cache grid: decode each chunk once and
    feed every geometry's cold chunk automaton from the same decoded
    (and run-length compressed) record stream, then merge the per-chunk
    summaries sequentially per geometry
    ({!Repro_sim.Memsys.Cache.absorb}).  Results are byte-equal to one
    {!cached} pass per geometry — the differential suite gates on it. *)
module Grid : sig
  type spec = {
    icache : Repro_sim.Memsys.cache_config;
    dcache : Repro_sim.Memsys.cache_config;
  }

  type chunk_result
  (** Per-spec (icache, dcache) chunk summaries for one chunk. *)

  val chunk : Trace.Reader.t -> spec array -> int -> chunk_result
  (** Decode chunk [i] once and cold-simulate every spec over it.
      Independent of every other chunk — safe to fan out across
      domains. *)

  val merge :
    spec array -> chunk_result list -> Repro_sim.Memsys.cached list
  (** Sequential reconciliation, in chunk order, per spec. *)

  val run :
    ?map:((int -> chunk_result) -> int list -> chunk_result list) ->
    Trace.Reader.t ->
    spec list ->
    Repro_sim.Memsys.cached list
  (** The whole grid from one reader.  [map] distributes the per-chunk
      work (default [List.map]); pass [Repro_harness.Pool.map ~pool] or
      [~jobs] to fan chunks out across domains. *)
end

(** Single-pass, chunk-parallel pipeline-timing grid: the {!Grid} recipe
    applied to the cycle-accurate five-stage model.  Each chunk is
    decoded once; one cold {!Repro_uarch.Scoreboard} chunk automaton
    (shared by every configuration — interlocks depend only on the
    instruction stream) and one cold {!Repro_uarch.Pipeline.Mem}
    automaton per distinct memory-behaviour class are fed from the same
    decoded stream, in parallel across chunks.  A sequential merge
    re-steps only each chunk's pre-convergence scoreboard prefix from the
    true carried-in state (falling back to re-stepping the whole chunk if
    convergence was never detected), reconciles the memory summaries, and
    scales per configuration.  Results are integer-equal to
    {!pipelines} and to {!Repro_uarch.Uarch.run_many} — the differential
    suite gates on it. *)
module Upipelines : sig
  type chunk_result
  (** One chunk's scoreboard summary plus per-memory-class summaries. *)

  val run :
    ?map:((int -> chunk_result) -> int list -> chunk_result list) ->
    Trace.Reader.t ->
    Repro_uarch.Uconfig.t list ->
    Repro_link.Link.image ->
    Repro_uarch.Pipeline.result list
  (** Every configuration's pipeline result, in configuration order —
      the chunk-parallel twin of {!pipelines}.  [map] distributes the
      per-chunk work (default [List.map]). *)
end
