(** Compressed binary architectural traces (the paper's dinero
    methodology, persisted).

    A trace records one entry per retired instruction — byte address and
    packed data access, exactly the stream {!Repro_sim.Machine.run}'s
    [on_insn] hook delivers — delta+varint encoded into fixed-record-count
    chunks.  Each chunk restarts its delta predictors, so any chunk
    decodes independently of the others; a footer index (per-chunk start
    pc, record count, byte offset, MD5 checksum) makes traces seekable
    and corruption-detectable.  One captured execution then drives
    arbitrarily many memory-system configurations at replay speed
    ({!Replay}), chunk-parallel where the counters permit.

    File layout (all integers LEB128 varints unless noted; signed values
    zigzag-coded):

    {v
    header   "REPROTRC" | version u8 | insn_bytes u8 | chunk_records
    chunks   per record: Δpc | dtag ((bytes<<1)|is_write, 0 = no access)
                       | Δdaddr (only when dtag <> 0)
    footer   n_chunks | n_records
             per chunk: byte_offset | n_records | start_pc | MD5 (16 raw)
    trailer  footer_offset u64 LE | "REPROEND"
    v} *)

val format_version : int
(** Bumping it orphans every stored trace (readers treat other versions
    as corrupt, so stores regenerate).  Mirrored in the CI cache key. *)

val default_chunk_records : int

(** Streaming encoder.  Writes to [path ^ ".tmp.<domain>"] and renames on
    {!Writer.close}, so a crash mid-capture never leaves a half-written
    trace at the target path and concurrent captures of the same key are
    safe (last rename wins, both files valid). *)
module Writer : sig
  type t

  val create : ?chunk_records:int -> insn_bytes:int -> string -> t
  (** @raise Invalid_argument if [chunk_records < 1] or [insn_bytes]
      is not 2 or 4. *)

  val step : t -> pc:int -> dinfo:int -> unit
  (** One retired instruction: byte address and packed data access in the
      {!Repro_sim.Machine.trace} encoding ([0] for none) — the signature
      of [Machine.run]'s [on_insn] hook. *)

  val close : t -> unit
  (** Flush, write footer and trailer, rename into place. *)

  val abort : t -> unit
  (** Close and remove the temporary file. *)
end

(** Decoder over a fully-validated in-memory image of the file: magic,
    version, index structure and every chunk checksum are verified at
    {!Reader.open_file}, so a reader that opens successfully cannot fail
    mid-iteration, and concurrent domains may share one reader (decoding
    is per-cursor, the underlying bytes are never mutated). *)
module Reader : sig
  type t

  val open_file : string -> (t, string) result
  (** [Error reason] for anything but a well-formed current-version trace:
      missing file, truncation, bit corruption, foreign or future format.
      Callers treat it as a cache miss and re-capture. *)

  val insn_bytes : t -> int
  val n_records : t -> int
  val n_chunks : t -> int
  val byte_size : t -> int

  type chunk = {
    start_pc : int;  (** pc of the chunk's first record. *)
    n_records : int;
    byte_offset : int;
    byte_length : int;
  }

  val chunk : t -> int -> chunk

  val iter : t -> (pc:int -> dinfo:int -> unit) -> unit
  (** All records in execution order. *)

  val iter_chunk : t -> int -> (pc:int -> dinfo:int -> unit) -> unit
  (** The per-chunk cursor: records of chunk [i] only.  Independent of
      every other chunk — this is what chunk-parallel replay runs on. *)
end
