(** Per-cycle stall accounting of the five-stage pipeline.

    Every cycle of a {!Pipeline} run is attributed to exactly one bucket:
    the issue cycle of an instruction ([ic]), an instruction-fetch memory
    stall, a delayed-load or FP-latency interlock bubble, or a data-side
    memory stall (read or write).  The buckets therefore sum to the total:
    [cycles = ic + fetch_stalls + load_interlocks + fp_interlocks +
    dmiss_stalls + wmiss_stalls] — {!consistent} checks exactly that, and
    the differential suite holds the total equal to the analytical model's
    {!Repro_sim.Memsys} formulas. *)

type t = {
  ic : int;  (** Instructions issued (the base cycle each). *)
  cycles : int;  (** Total cycles, all stalls included. *)
  fetch_stalls : int;  (** Instruction-fetch wait states / I-miss penalties. *)
  load_interlocks : int;  (** Delayed-load use bubbles. *)
  fp_interlocks : int;  (** FP-unit latency bubbles (incl. status reads). *)
  dmiss_stalls : int;  (** Data-read wait states / D-read-miss penalties. *)
  wmiss_stalls : int;  (** Data-write wait states / D-write-miss penalties. *)
}

val of_parts :
  ic:int ->
  interlock_clock:int ->
  load_interlocks:int ->
  fp_interlocks:int ->
  fetch_stalls:int ->
  dmiss_stalls:int ->
  wmiss_stalls:int ->
  t
(** Assemble a breakdown from the {!Scoreboard}'s interlock clock
    ([ic + interlocks] — the cycle count before memory stalls) and the
    memory-side stall buckets; the two families compose additively because
    the modelled machine freezes the whole pipeline on a memory wait. *)

val interlocks : t -> int
(** [load_interlocks + fp_interlocks]: the quantity
    {!Repro_sim.Machine.result.interlocks} reports. *)

val stall_cycles : t -> int
(** All non-issue cycles. *)

val consistent : t -> bool
(** The components sum to [cycles]. *)

val cpi : t -> float

val to_string : t -> string
(** One line, e.g.
    ["cycles=120 ic=100 fetch=10 load=4 fp=2 dmiss=3 wmiss=1"]. *)
