type t = {
  ic : int;
  cycles : int;
  fetch_stalls : int;
  load_interlocks : int;
  fp_interlocks : int;
  dmiss_stalls : int;
  wmiss_stalls : int;
}

let of_parts ~ic ~interlock_clock ~load_interlocks ~fp_interlocks
    ~fetch_stalls ~dmiss_stalls ~wmiss_stalls =
  {
    ic;
    cycles = interlock_clock + fetch_stalls + dmiss_stalls + wmiss_stalls;
    fetch_stalls;
    load_interlocks;
    fp_interlocks;
    dmiss_stalls;
    wmiss_stalls;
  }

let interlocks t = t.load_interlocks + t.fp_interlocks

let stall_cycles t =
  t.fetch_stalls + t.load_interlocks + t.fp_interlocks + t.dmiss_stalls
  + t.wmiss_stalls

let consistent t = t.cycles = t.ic + stall_cycles t

let cpi t = float_of_int t.cycles /. float_of_int t.ic

let to_string t =
  Printf.sprintf "cycles=%d ic=%d fetch=%d load=%d fp=%d dmiss=%d wmiss=%d"
    t.cycles t.ic t.fetch_stalls t.load_interlocks t.fp_interlocks
    t.dmiss_stalls t.wmiss_stalls
