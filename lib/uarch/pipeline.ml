module Memsys = Repro_sim.Memsys
module Link = Repro_link.Link
module Target = Repro_core.Target

type dcounts = {
  mutable reads : int;
  mutable read_misses : int;
  mutable writes : int;
  mutable write_misses : int;
}

type mem_state =
  | Mnocache of { bus_bytes : int; wait_states : int; mutable buffer : int }
  | Mcached of {
      icache : Memsys.Cache.t;
      dcache : Memsys.Cache.t;
      penalty : int;
      dc : dcounts;
    }

type t = {
  img : Link.image;
  descs : Predecode.desc array;  (* by instruction index, via Link.index_at *)
  insn_bytes : int;
  sb : Scoreboard.t;
  mem : mem_state;
  mutable ic : int;
  mutable fetch_stalls : int;
  mutable dmiss_stalls : int;
  mutable wmiss_stalls : int;
}

type result = { stalls : Stalls.t; caches : Memsys.cached option }

let create (cfg : Uconfig.t) (img : Link.image) =
  let target = img.Link.target in
  let mem =
    match cfg with
    | Uconfig.Nocache { bus_bytes; wait_states } ->
      Mnocache { bus_bytes; wait_states; buffer = -1 }
    | Uconfig.Cached { icache; dcache; miss_penalty } ->
      Mcached
        {
          icache = Memsys.Cache.make icache;
          dcache = Memsys.Cache.make dcache;
          penalty = miss_penalty;
          dc = { reads = 0; read_misses = 0; writes = 0; write_misses = 0 };
        }
  in
  {
    img;
    descs = Predecode.table img;
    insn_bytes = Target.insn_bytes target;
    sb =
      Scoreboard.create ~n_gpr:target.Target.n_gpr ~n_fpr:target.Target.n_fpr;
    mem;
    ic = 0;
    fetch_stalls = 0;
    dmiss_stalls = 0;
    wmiss_stalls = 0;
  }

let step t ~iaddr ~dinfo =
  (* Bit 0 of the traced address marks a wide (4-byte) instruction on a
     mixed-width target; addresses proper are always even. *)
  let wide = iaddr land 1 <> 0 in
  let iaddr = iaddr land lnot 1 in
  (* IF. *)
  (match t.mem with
  | Mnocache m ->
    let block = iaddr / m.bus_bytes in
    if block <> m.buffer then begin
      t.fetch_stalls <- t.fetch_stalls + m.wait_states;
      m.buffer <- block
    end;
    if wide then begin
      let tail = (iaddr + 2) / m.bus_bytes in
      if tail <> m.buffer then begin
        t.fetch_stalls <- t.fetch_stalls + m.wait_states;
        m.buffer <- tail
      end
    end
  | Mcached m ->
    if
      Memsys.Cache.access m.icache ~is_read:true ~addr:iaddr
        ~bytes:(if wide then 4 else t.insn_bytes)
    then t.fetch_stalls <- t.fetch_stalls + m.penalty);
  (* ID/EX. *)
  Scoreboard.step t.sb t.descs.(Link.index_at t.img iaddr);
  (* MEM. *)
  if dinfo <> 0 then begin
    let is_write = dinfo land 1 = 1 in
    let bytes = (dinfo lsr 1) land 0xF in
    let addr = dinfo lsr 5 in
    match t.mem with
    | Mnocache m ->
      let transactions = (bytes + m.bus_bytes - 1) / m.bus_bytes in
      let cost = transactions * m.wait_states in
      if is_write then t.wmiss_stalls <- t.wmiss_stalls + cost
      else t.dmiss_stalls <- t.dmiss_stalls + cost
    | Mcached m ->
      let missed =
        Memsys.Cache.access m.dcache ~is_read:(not is_write) ~addr ~bytes
      in
      if is_write then begin
        m.dc.writes <- m.dc.writes + 1;
        if missed then begin
          m.dc.write_misses <- m.dc.write_misses + 1;
          t.wmiss_stalls <- t.wmiss_stalls + m.penalty
        end
      end
      else begin
        m.dc.reads <- m.dc.reads + 1;
        if missed then begin
          m.dc.read_misses <- m.dc.read_misses + 1;
          t.dmiss_stalls <- t.dmiss_stalls + m.penalty
        end
      end
  end;
  t.ic <- t.ic + 1

let result t =
  let stalls =
    Stalls.of_parts ~ic:t.ic ~interlock_clock:(Scoreboard.clock t.sb)
      ~load_interlocks:(Scoreboard.load_stalls t.sb)
      ~fp_interlocks:(Scoreboard.fp_stalls t.sb) ~fetch_stalls:t.fetch_stalls
      ~dmiss_stalls:t.dmiss_stalls ~wmiss_stalls:t.wmiss_stalls
  in
  let caches =
    match t.mem with
    | Mnocache _ -> None
    | Mcached m ->
      Some
        {
          Memsys.icache = Memsys.Cache.stats m.icache;
          dcache_read =
            {
              Memsys.accesses = m.dc.reads;
              misses = m.dc.read_misses;
              words_transferred = 0;
            };
          dcache_write =
            {
              Memsys.accesses = m.dc.writes;
              misses = m.dc.write_misses;
              words_transferred = 0;
            };
        }
  in
  { stalls; caches }

(* Memory-side chunk engine. ------------------------------------------------

   The memory-facing stages depend on the configuration only through a
   coarser equivalence class: a cacheless machine's fetch buffer and bus
   transaction counts depend on the bus width alone (the wait states just
   scale the counts at result time), and a cached machine's miss counts
   depend on the two cache geometries alone (the miss penalty likewise
   scales).  [Mem.key] names the class, so a sweep deduplicates its
   memory automatons: the standard ten-configuration sweep runs two
   fetch-buffer passes and one I/D cache-pair automaton pair per distinct
   geometry instead of ten full pipelines. *)

module Mem = struct
  module Cache = Memsys.Cache
  module Fetchbuf = Memsys.Fetchbuf

  type key =
    | Knocache of { bus_bytes : int }
    | Kcached of { icache : Memsys.cache_config; dcache : Memsys.cache_config }

  let key (cfg : Uconfig.t) =
    match cfg with
    | Uconfig.Nocache { bus_bytes; _ } -> Knocache { bus_bytes }
    | Uconfig.Cached { icache; dcache; _ } -> Kcached { icache; dcache }

  (* Whether a run of consecutive fetches inside one 4-byte granule may be
     fed as a single event plus a count.  Cacheless: only the start
     address matters (block = addr / bus), and a granule lies in one block
     whenever the bus is at least granule-sized — alignment is irrelevant.
     Cached: the whole [addr, addr + insn_bytes) span is accessed, so the
     trace must be granule-aligned and the sub-block at least
     granule-sized (the same gate as [Replay.Grid]).  Both classes also
     need the trace granule-aligned so a wide (marked) fetch never leaks
     into the next granule; traces without wide marks are always
     granule-aligned, so the extra conjunct changes nothing for them. *)
  let fetch_run_ok ~aligned = function
    | Knocache { bus_bytes } -> aligned && bus_bytes >= 4
    | Kcached { icache; _ } -> aligned && icache.Memsys.sub_block_bytes >= 4

  type auto =
    | Anocache of {
        buf : Fetchbuf.t;
        bus_bytes : int;
        mutable first_block : int;
        mutable dread : int;  (* data bus transactions; state-free *)
        mutable dwrite : int;
      }
    | Acached of { ia : Cache.auto; da : Cache.auto; insn_bytes : int }

  let chunk_start ~insn_bytes = function
    | Knocache { bus_bytes } ->
      Anocache
        {
          buf = Fetchbuf.make ~bus_bytes;
          bus_bytes;
          first_block = -1;
          dread = 0;
          dwrite = 0;
        }
    | Kcached { icache; dcache } ->
      Acached
        { ia = Cache.chunk_start icache; da = Cache.chunk_start dcache;
          insn_bytes }

  let fetch a ~addr =
    let wide = addr land 1 <> 0 in
    let addr = addr land lnot 1 in
    match a with
    | Anocache m ->
      ignore (Fetchbuf.fetch m.buf ~addr);
      if m.first_block < 0 then m.first_block <- addr / m.bus_bytes;
      if wide then ignore (Fetchbuf.fetch m.buf ~addr:(addr + 2))
    | Acached m ->
      Cache.chunk_access m.ia ~is_read:true ~addr
        ~bytes:(if wide then 4 else m.insn_bytes)

  let fetch_run a ~addr ~count =
    match a with
    | Anocache _ -> fetch a ~addr  (* one block: the first fetch decides *)
    | Acached m -> Cache.chunk_iread_run m.ia ~addr ~count

  let data a ~dinfo =
    let is_write = dinfo land 1 = 1 in
    let bytes = (dinfo lsr 1) land 0xF in
    match a with
    | Anocache m ->
      let requests = Memsys.data_requests ~bus_bytes:m.bus_bytes ~bytes in
      if is_write then m.dwrite <- m.dwrite + requests
      else m.dread <- m.dread + requests
    | Acached m ->
      Cache.chunk_access m.da ~is_read:(not is_write) ~addr:(dinfo lsr 5)
        ~bytes

  type summary =
    | Snocache of {
        cold_irequests : int;
        first_block : int;
        last_block : int;
        dread : int;
        dwrite : int;
      }
    | Scached of { ic : Cache.summary; dc : Cache.summary }

  let chunk_finish = function
    | Anocache m ->
      Snocache
        {
          cold_irequests = Fetchbuf.requests m.buf;
          first_block = m.first_block;
          last_block = Fetchbuf.last_block m.buf;
          dread = m.dread;
          dwrite = m.dwrite;
        }
    | Acached m ->
      Scached { ic = Cache.chunk_finish m.ia; dc = Cache.chunk_finish m.da }

  type carry =
    | Cnocache of {
        mutable irequests : int;
        mutable block : int;
        mutable dread : int;
        mutable dwrite : int;
      }
    | Ccached of { icar : Cache.carry; dcar : Cache.carry }

  let carry_start = function
    | Knocache _ -> Cnocache { irequests = 0; block = -1; dread = 0; dwrite = 0 }
    | Kcached { icache; dcache } ->
      Ccached { icar = Cache.carry_start icache; dcar = Cache.carry_start dcache }

  let absorb c s =
    match (c, s) with
    | Cnocache c, Snocache s ->
      c.dread <- c.dread + s.dread;
      c.dwrite <- c.dwrite + s.dwrite;
      (* Only the chunk's first fetch is boundary-sensitive: cold, it
         always misses the (empty) buffer; warm, it hits iff the carried
         buffer already holds its block. *)
      if s.first_block >= 0 then begin
        c.irequests <-
          c.irequests + s.cold_irequests
          - (if s.first_block = c.block then 1 else 0);
        c.block <- s.last_block
      end
    | Ccached c, Scached s ->
      Cache.absorb c.icar s.ic;
      Cache.absorb c.dcar s.dc
    | _ -> invalid_arg "Pipeline.Mem.absorb: summary from a different key"

  (* The carried request/miss totals as the plain memory-system counter
     records: a cacheless carry is exactly {!Memsys.replay_nocache}'s
     output, a cached carry exactly {!Memsys.replay_cached}'s.  These are
     what the penalty-free replays ({!Repro_trace.Replay}) read off a
     sweep — {!charge} prices the same totals for one configuration. *)

  let nocache_counters = function
    | Cnocache c ->
      { Memsys.irequests = c.irequests; drequests = c.dread + c.dwrite }
    | Ccached _ -> invalid_arg "Pipeline.Mem.nocache_counters: cached carry"

  let cached_counters = function
    | Ccached c ->
      let it = Cache.carry_totals c.icar in
      let dt = Cache.carry_totals c.dcar in
      {
        Memsys.icache =
          {
            Memsys.accesses = it.Cache.reads + it.Cache.writes;
            misses = it.Cache.read_misses + it.Cache.write_misses;
            words_transferred = it.Cache.fetch_words;
          };
        dcache_read =
          {
            Memsys.accesses = dt.Cache.reads;
            misses = dt.Cache.read_misses;
            words_transferred = 0;
          };
        dcache_write =
          {
            Memsys.accesses = dt.Cache.writes;
            misses = dt.Cache.write_misses;
            words_transferred = 0;
          };
      }
    | Cnocache _ -> invalid_arg "Pipeline.Mem.cached_counters: cacheless carry"

  let charge c (cfg : Uconfig.t) ~ic ~interlock_clock ~load_interlocks
      ~fp_interlocks =
    match (c, cfg) with
    | Cnocache c, Uconfig.Nocache { wait_states; _ } ->
      let stalls =
        Stalls.of_parts ~ic ~interlock_clock ~load_interlocks ~fp_interlocks
          ~fetch_stalls:(wait_states * c.irequests)
          ~dmiss_stalls:(wait_states * c.dread)
          ~wmiss_stalls:(wait_states * c.dwrite)
      in
      { stalls; caches = None }
    | Ccached _, Uconfig.Cached { miss_penalty; _ } ->
      let counters = cached_counters c in
      let stalls =
        Stalls.of_parts ~ic ~interlock_clock ~load_interlocks ~fp_interlocks
          ~fetch_stalls:(miss_penalty * counters.Memsys.icache.Memsys.misses)
          ~dmiss_stalls:
            (miss_penalty * counters.Memsys.dcache_read.Memsys.misses)
          ~wmiss_stalls:
            (miss_penalty * counters.Memsys.dcache_write.Memsys.misses)
      in
      { stalls; caches = Some counters }
    | _ -> invalid_arg "Pipeline.Mem.charge: carry from a different key"
end
