module Memsys = Repro_sim.Memsys
module Link = Repro_link.Link
module Target = Repro_core.Target

type dcounts = {
  mutable reads : int;
  mutable read_misses : int;
  mutable writes : int;
  mutable write_misses : int;
}

type mem_state =
  | Mnocache of { bus_bytes : int; wait_states : int; mutable buffer : int }
  | Mcached of {
      icache : Memsys.Cache.t;
      dcache : Memsys.Cache.t;
      penalty : int;
      dc : dcounts;
    }

type t = {
  img : Link.image;
  descs : Predecode.desc array;  (* by instruction index, via Link.index_at *)
  insn_bytes : int;
  sb : Scoreboard.t;
  mem : mem_state;
  mutable ic : int;
  mutable fetch_stalls : int;
  mutable dmiss_stalls : int;
  mutable wmiss_stalls : int;
}

type result = { stalls : Stalls.t; caches : Memsys.cached option }

let create (cfg : Uconfig.t) (img : Link.image) =
  let target = img.Link.target in
  let mem =
    match cfg with
    | Uconfig.Nocache { bus_bytes; wait_states } ->
      Mnocache { bus_bytes; wait_states; buffer = -1 }
    | Uconfig.Cached { icache; dcache; miss_penalty } ->
      Mcached
        {
          icache = Memsys.Cache.make icache;
          dcache = Memsys.Cache.make dcache;
          penalty = miss_penalty;
          dc = { reads = 0; read_misses = 0; writes = 0; write_misses = 0 };
        }
  in
  {
    img;
    descs = Predecode.table img;
    insn_bytes = Target.insn_bytes target;
    sb =
      Scoreboard.create ~n_gpr:target.Target.n_gpr ~n_fpr:target.Target.n_fpr;
    mem;
    ic = 0;
    fetch_stalls = 0;
    dmiss_stalls = 0;
    wmiss_stalls = 0;
  }

let step t ~iaddr ~dinfo =
  (* IF. *)
  (match t.mem with
  | Mnocache m ->
    let block = iaddr / m.bus_bytes in
    if block <> m.buffer then begin
      t.fetch_stalls <- t.fetch_stalls + m.wait_states;
      m.buffer <- block
    end
  | Mcached m ->
    if Memsys.Cache.access m.icache ~is_read:true ~addr:iaddr ~bytes:t.insn_bytes
    then t.fetch_stalls <- t.fetch_stalls + m.penalty);
  (* ID/EX. *)
  Scoreboard.step t.sb t.descs.(Link.index_at t.img iaddr);
  (* MEM. *)
  if dinfo <> 0 then begin
    let is_write = dinfo land 1 = 1 in
    let bytes = (dinfo lsr 1) land 0xF in
    let addr = dinfo lsr 5 in
    match t.mem with
    | Mnocache m ->
      let transactions = (bytes + m.bus_bytes - 1) / m.bus_bytes in
      let cost = transactions * m.wait_states in
      if is_write then t.wmiss_stalls <- t.wmiss_stalls + cost
      else t.dmiss_stalls <- t.dmiss_stalls + cost
    | Mcached m ->
      let missed =
        Memsys.Cache.access m.dcache ~is_read:(not is_write) ~addr ~bytes
      in
      if is_write then begin
        m.dc.writes <- m.dc.writes + 1;
        if missed then begin
          m.dc.write_misses <- m.dc.write_misses + 1;
          t.wmiss_stalls <- t.wmiss_stalls + m.penalty
        end
      end
      else begin
        m.dc.reads <- m.dc.reads + 1;
        if missed then begin
          m.dc.read_misses <- m.dc.read_misses + 1;
          t.dmiss_stalls <- t.dmiss_stalls + m.penalty
        end
      end
  end;
  t.ic <- t.ic + 1

let result t =
  let interlock_clock = Scoreboard.clock t.sb in
  let stalls =
    {
      Stalls.ic = t.ic;
      cycles =
        interlock_clock + t.fetch_stalls + t.dmiss_stalls + t.wmiss_stalls;
      fetch_stalls = t.fetch_stalls;
      load_interlocks = Scoreboard.load_stalls t.sb;
      fp_interlocks = Scoreboard.fp_stalls t.sb;
      dmiss_stalls = t.dmiss_stalls;
      wmiss_stalls = t.wmiss_stalls;
    }
  in
  let caches =
    match t.mem with
    | Mnocache _ -> None
    | Mcached m ->
      Some
        {
          Memsys.icache = Memsys.Cache.stats m.icache;
          dcache_read =
            {
              Memsys.accesses = m.dc.reads;
              misses = m.dc.read_misses;
              words_transferred = 0;
            };
          dcache_write =
            {
              Memsys.accesses = m.dc.writes;
              misses = m.dc.write_misses;
              words_transferred = 0;
            };
        }
  in
  { stalls; caches }
