(** Memory-system configuration of the cycle-accurate pipeline model.

    Two shapes, mirroring the paper's Section 4 machines:

    - {e cacheless}: an instruction buffer holds the last fetched bus-width
      block; every fetch outside it, and every data bus transaction, costs
      the memory wait states (paper Section 4.2);
    - {e cached}: split direct-mapped I/D caches (sub-block valid bits,
      wrap-around prefetch — {!Repro_sim.Memsys.cache_config}), where every
      miss costs the miss penalty (Section 4.1).

    {!describe} is a stable rendering used in persistent-cache keys: any
    change to a configuration invalidates entries keyed on it. *)

type t =
  | Nocache of { bus_bytes : int; wait_states : int }
  | Cached of {
      icache : Repro_sim.Memsys.cache_config;
      dcache : Repro_sim.Memsys.cache_config;
      miss_penalty : int;
    }

val nocache : bus_bytes:int -> wait_states:int -> t
(** @raise Invalid_argument unless [bus_bytes] is a power of two >= 2 and
    [wait_states >= 0]. *)

val cached :
  icache:Repro_sim.Memsys.cache_config ->
  dcache:Repro_sim.Memsys.cache_config ->
  miss_penalty:int ->
  t
(** @raise Invalid_argument when [miss_penalty < 0]. *)

val describe : t -> string
(** E.g. ["nocache:bus=4,l=2"] or ["cached:i=4096/32/4,d=4096/32/4,p=8"]. *)
