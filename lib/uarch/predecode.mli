(** Static per-instruction descriptors for the timing model.

    The pipeline model never computes values; per executed instruction it
    only needs to know which registers are read (in the order the
    architectural simulator reads them), which register is written, with
    what result latency, and whether a stall on that result is a delayed
    load or an FP-unit interlock.  Those facts are static, so they are
    precomputed once per image.

    The read order and the latencies mirror {!Repro_sim.Machine} exactly —
    including its quirks (DLXe [r0] writes still update the result
    scoreboard; traps read the argument register except [put_float]) — so
    that {!Scoreboard} reproduces the architectural interlock count
    cycle-for-cycle. *)

type rreg =
  | Rg of int  (** General register read. *)
  | Rf of int  (** FP register read. *)
  | Rstatus  (** FP status read ([rdsr]). *)

type wreg = Wg of int | Wf of int | Wstatus

type cause = Load | Fp
(** What a stall on the written result counts as.  Only meaningful for
    latencies > 0 (zero-latency results can never stall a consumer). *)

type write = { dst : wreg; latency : int; cause : cause }

type desc = { reads : rreg list; write : write option }

val of_insn : Repro_core.Insn.t -> desc

val table : Repro_link.Link.image -> desc array
(** Descriptor of every static instruction, in instruction-index order;
    map a trace address to its index with
    {!Repro_link.Link.index_at} — a constant-time array lookup on the
    pipeline's per-record path.

    Memoized per image (physical identity, domain-safe): the table is
    immutable and a pure function of the program, so every configuration,
    chunk automaton, and domain replaying the same image shares one
    array.  Do not mutate the result. *)
