(** Result-readiness tracking: the interlock half of the pipeline clock.

    The scoreboard advances a clock in the same domain the architectural
    simulator uses for interlock accounting: one tick per issued
    instruction plus one per interlock bubble.  Memory stalls live outside
    this clock — the modelled machine freezes the whole pipeline on a
    memory wait, so producer-consumer distances in issue slots are
    unaffected and the two stall families compose additively (which is
    what makes the analytical formula exact, paper footnote 2).

    Stalls are attributed to the cause recorded for the producing
    register: {!Predecode.Load} bubbles are delayed-load interlocks,
    {!Predecode.Fp} bubbles are FP-latency interlocks; their sum equals
    {!Repro_sim.Machine.result.interlocks} exactly. *)

type t

val create : n_gpr:int -> n_fpr:int -> t

val step : t -> Predecode.desc -> unit
(** Stall for every not-yet-ready source (in read order), record the
    written result's readiness, advance the clock by the issue cycle. *)

val clock : t -> int
(** Issued instructions + interlock bubbles so far. *)

val load_stalls : t -> int
val fp_stalls : t -> int
