(** Result-readiness tracking: the interlock half of the pipeline clock.

    The scoreboard advances a clock in the same domain the architectural
    simulator uses for interlock accounting: one tick per issued
    instruction plus one per interlock bubble.  Memory stalls live outside
    this clock — the modelled machine freezes the whole pipeline on a
    memory wait, so producer-consumer distances in issue slots are
    unaffected and the two stall families compose additively (which is
    what makes the analytical formula exact, paper footnote 2).

    Stalls are attributed to the cause recorded for the producing
    register: {!Predecode.Load} bubbles are delayed-load interlocks,
    {!Predecode.Fp} bubbles are FP-latency interlocks; their sum equals
    {!Repro_sim.Machine.result.interlocks} exactly. *)

type t

val create : n_gpr:int -> n_fpr:int -> t

val step : t -> Predecode.desc -> unit
(** Stall for every not-yet-ready source (in read order), record the
    written result's readiness, advance the clock by the issue cycle. *)

val clock : t -> int
(** Issued instructions + interlock bubbles so far. *)

val load_stalls : t -> int
val fp_stalls : t -> int

(** {1 Chunk-parallel engine}

    A scoreboard's future depends only on its normalized state: per
    register the {e slack} [max 0 (ready - clock)] and, where positive,
    the stall cause.  Slacks decay by at least one per issued instruction
    and a write leaves slack exactly equal to its latency in {e any} run,
    so a chunk simulated from a cold scoreboard provably coincides with
    every possible warm run once [K] instructions have issued, where [K]
    covers both the largest carried-in slack ({!drain_horizon}) and every
    write's own drain point.  The sequential merge ({!absorb}) re-steps
    only those first [K] instructions from the true carried-in state and
    adopts the cold suffix verbatim; a chunk that never converges is
    re-stepped whole — exact by construction, never approximate. *)

type snapshot
(** Normalized (clock-translation-invariant) scoreboard state. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val snapshot_equal : snapshot -> snapshot -> bool
(** Equality of future behaviour: slacks everywhere, causes only where
    the slack is positive. *)

val drained : t -> bool
(** No register busy: every slack is zero. *)

val drain_horizon : int
(** Upper bound on any slack ever carried across a chunk boundary (the
    largest result latency {!Predecode} emits). *)

type chunk
(** A cold scoreboard plus convergence bookkeeping for one trace chunk. *)

val chunk_start : n_gpr:int -> n_fpr:int -> chunk

val chunk_step : chunk -> index:int -> Predecode.desc -> unit
(** Step the cold automaton.  [index] is the instruction's descriptor
    index, recorded while the chunk has not yet converged so {!absorb}
    can re-step the prefix. *)

val convergence : chunk -> int option
(** Instruction count after which cold = warm provably holds, if
    detected yet. *)

type summary
(** Compact boundary summary: convergence point, prefix descriptor
    indices, cold counters at the convergence point and at chunk end,
    and the cold end state. *)

val chunk_finish : chunk -> summary

val absorb : t -> Predecode.desc array -> summary -> unit
(** Advance the warm scoreboard across a summarized chunk: re-step the
    prefix from the true carried-in state, then (if the chunk converged)
    add the cold suffix counter deltas and adopt the cold end state.

    @raise Failure if the convergence invariant is violated (would mean
    a result latency outgrew {!drain_horizon}). *)
