module Insn = Repro_core.Insn
module Regs = Repro_core.Regs
module Trapcode = Repro_core.Trapcode
module Machine = Repro_sim.Machine

type rreg = Rg of int | Rf of int | Rstatus
type wreg = Wg of int | Wf of int | Wstatus
type cause = Load | Fp
type write = { dst : wreg; latency : int; cause : cause }
type desc = { reads : rreg list; write : write option }

let wg ?(latency = 0) ?(cause = Load) rd =
  Some { dst = Wg rd; latency; cause }

let wf ?(latency = 0) ?(cause = Load) fd =
  Some { dst = Wf fd; latency; cause }

let of_insn (i : Insn.t) =
  match i with
  | Insn.Load (_, rd, base, _) ->
    { reads = [ Rg base ]; write = wg rd ~latency:Machine.load_latency }
  | Insn.Store (_, rs, base, _) -> { reads = [ Rg base; Rg rs ]; write = None }
  | Insn.Fload (_, fd, base, _) ->
    { reads = [ Rg base ]; write = wf fd ~latency:Machine.load_latency }
  | Insn.Fstore (_, fs, base, _) -> { reads = [ Rg base; Rf fs ]; write = None }
  | Insn.Ldc (rd, _) ->
    { reads = []; write = wg rd ~latency:Machine.load_latency }
  | Insn.Alu (_, rd, ra, rb) -> { reads = [ Rg ra; Rg rb ]; write = wg rd }
  | Insn.Alui (_, rd, ra, _) -> { reads = [ Rg ra ]; write = wg rd }
  | Insn.Mv (rd, rs) -> { reads = [ Rg rs ]; write = wg rd }
  | Insn.Mvi (rd, _) | Insn.Mvhi (rd, _) -> { reads = []; write = wg rd }
  | Insn.Neg (rd, rs) | Insn.Inv (rd, rs) ->
    { reads = [ Rg rs ]; write = wg rd }
  | Insn.Cmp (_, rd, ra, rb) -> { reads = [ Rg ra; Rg rb ]; write = wg rd }
  | Insn.Cmpi (_, rd, ra, _) -> { reads = [ Rg ra ]; write = wg rd }
  | Insn.Br _ -> { reads = []; write = None }
  | Insn.Bz (r, _) | Insn.Bnz (r, _) -> { reads = [ Rg r ]; write = None }
  | Insn.Brl _ -> { reads = []; write = wg Regs.link }
  | Insn.J r -> { reads = [ Rg r ]; write = None }
  (* The architectural simulator evaluates the jump target before the
     tested register. *)
  | Insn.Jz (rt, rd) | Insn.Jnz (rt, rd) ->
    { reads = [ Rg rd; Rg rt ]; write = None }
  | Insn.Jl r -> { reads = [ Rg r ]; write = wg Regs.link }
  | Insn.Fbin (op, _, fd, fa, fb) ->
    let latency =
      match op with
      | Insn.Fadd | Insn.Fsub -> Machine.fp_latency_add
      | Insn.Fmul -> Machine.fp_latency_mul
      | Insn.Fdiv -> Machine.fp_latency_div
    in
    { reads = [ Rf fa; Rf fb ]; write = wf fd ~latency ~cause:Fp }
  | Insn.Fmv (_, fd, fs) | Insn.Fneg (_, fd, fs) ->
    { reads = [ Rf fs ]; write = wf fd }
  | Insn.Fcmp (_, _, fa, fb) ->
    {
      reads = [ Rf fa; Rf fb ];
      write =
        Some { dst = Wstatus; latency = Machine.fp_latency_cmp; cause = Fp };
    }
  | Insn.Cvtif (_, fd, rs) ->
    { reads = [ Rg rs ]; write = wf fd ~latency:Machine.fp_latency_add ~cause:Fp }
  | Insn.Cvtfi (_, rd, fs) ->
    { reads = [ Rf fs ]; write = wg rd ~latency:Machine.fp_latency_add ~cause:Fp }
  | Insn.Rdsr rd -> { reads = [ Rstatus ]; write = wg rd }
  | Insn.Trap code ->
    (* exit/put_int/put_char read the argument register; put_float reads
       the FP register file directly, without an interlock check. *)
    if code = Trapcode.exit || code = Trapcode.put_int
       || code = Trapcode.put_char
    then { reads = [ Rg Regs.ret_gpr ]; write = None }
    else { reads = []; write = None }
  | Insn.Nop -> { reads = []; write = None }

(* The table is a pure function of the (immutable) image, so it is built
   once per image and shared by every pipeline, chunk automaton, and
   domain that replays the same program.  Keyed on physical identity —
   the harness memoizes images per (benchmark, target), so sweeps of any
   width hit the same entry; structurally-equal but distinct images get
   their own tables, which only costs memory.  A short MRU list bounds
   retention when many throwaway images go by (tests, fuzzing). *)
let table_lock = Mutex.create ()
let table_limit = 8

let table_cache : (Repro_link.Link.image * desc array) list ref = ref []

let table (img : Repro_link.Link.image) =
  Mutex.protect table_lock (fun () ->
      match List.find_opt (fun (i, _) -> i == img) !table_cache with
      | Some (_, t) -> t
      | None ->
        let t = Array.map of_insn img.Repro_link.Link.insns in
        table_cache :=
          (img, t) :: List.filteri (fun i _ -> i < table_limit - 1) !table_cache;
        t)
