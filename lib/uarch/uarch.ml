module Machine = Repro_sim.Machine

let run_many cfgs img =
  let pipes = List.map (fun cfg -> Pipeline.create cfg img) cfgs in
  let on_insn ~iaddr ~dinfo =
    List.iter (fun p -> Pipeline.step p ~iaddr ~dinfo) pipes
  in
  let r = Machine.run ~trace:false ~on_insn img in
  (r, List.map Pipeline.result pipes)

let run cfg img =
  match run_many [ cfg ] img with
  | r, [ p ] -> (r, p)
  | _ -> assert false

let replay cfg img (tr : Machine.trace) =
  let p = Pipeline.create cfg img in
  Array.iteri
    (fun i iaddr -> Pipeline.step p ~iaddr ~dinfo:tr.Machine.dinfo.(i))
    tr.Machine.iaddr;
  Pipeline.result p
