(** The event-stepped five-stage pipeline timing model.

    One {!step} per executed instruction, fed either from
    {!Repro_sim.Machine.run}'s [on_insn] streaming hook (no trace is ever
    materialized) or by replaying a recorded trace ({!Uarch.replay}).
    Each event walks the memory-facing stages:

    - {b IF}: the fetch buffer (cacheless) or the split I-cache; a fetch
      outside the buffer costs the wait states, an I-miss the miss penalty;
    - {b ID/EX}: the {!Scoreboard} charges delayed-load and FP interlock
      bubbles exactly as the architectural simulator does;
    - {b MEM}: data bus transactions (cacheless) or the D-cache; read and
      write stalls are charged to separate buckets.

    Branch delay slots need no special handling: the stream already
    contains the executed slot instruction (the code generator guarantees
    one after every transfer), so transfers cost exactly their issue
    cycles, matching the paper's machine. *)

type t

type result = {
  stalls : Stalls.t;
  caches : Repro_sim.Memsys.cached option;
      (** Cache statistics, for cached configurations; the counters match
          {!Repro_sim.Memsys.replay_cached} field-for-field. *)
}

val create : Uconfig.t -> Repro_link.Link.image -> t

val step : t -> iaddr:int -> dinfo:int -> unit
(** One executed instruction: its byte address and its packed data access
    ([0] for none — the {!Repro_sim.Machine.trace} encoding). *)

val result : t -> result
