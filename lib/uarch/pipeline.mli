(** The event-stepped five-stage pipeline timing model.

    One {!step} per executed instruction, fed either from
    {!Repro_sim.Machine.run}'s [on_insn] streaming hook (no trace is ever
    materialized) or by replaying a recorded trace ({!Uarch.replay}).
    Each event walks the memory-facing stages:

    - {b IF}: the fetch buffer (cacheless) or the split I-cache; a fetch
      outside the buffer costs the wait states, an I-miss the miss penalty;
    - {b ID/EX}: the {!Scoreboard} charges delayed-load and FP interlock
      bubbles exactly as the architectural simulator does;
    - {b MEM}: data bus transactions (cacheless) or the D-cache; read and
      write stalls are charged to separate buckets.

    Branch delay slots need no special handling: the stream already
    contains the executed slot instruction (the code generator guarantees
    one after every transfer), so transfers cost exactly their issue
    cycles, matching the paper's machine. *)

type t

type result = {
  stalls : Stalls.t;
  caches : Repro_sim.Memsys.cached option;
      (** Cache statistics, for cached configurations; the counters match
          {!Repro_sim.Memsys.replay_cached} field-for-field. *)
}

val create : Uconfig.t -> Repro_link.Link.image -> t

val step : t -> iaddr:int -> dinfo:int -> unit
(** One executed instruction: its byte address and its packed data access
    ([0] for none — the {!Repro_sim.Machine.trace} encoding). *)

val result : t -> result

(** {1 Memory-side chunk engine}

    The memory-facing stages see the configuration only through a coarser
    equivalence class — the bus width (cacheless; wait states merely scale
    the request counts) or the two cache geometries (cached; the miss
    penalty merely scales the miss counts) — so a multi-configuration
    sweep deduplicates its memory automatons by {!Mem.key} and scales at
    {!Mem.charge} time.  Chunks are simulated cold in parallel
    ({!Mem.chunk_start}/{!Mem.fetch}/{!Mem.data}) and reconciled exactly
    by a sequential {!Mem.absorb} pass: the fetch buffer's only
    boundary-sensitive event is the chunk's first fetch, and the caches
    reuse {!Repro_sim.Memsys.Cache}'s prefix-log reconciliation. *)
module Mem : sig
  type key
  (** Memory-behaviour class of a {!Uconfig.t}; structural equality
      dedups. *)

  val key : Uconfig.t -> key

  val fetch_run_ok : aligned:bool -> key -> bool
  (** Whether consecutive fetches inside one 4-byte granule may be fed as
      a single {!fetch_run} event ([aligned]: no fetch in the trace
      straddles a granule).  Cacheless machines only need the bus to be at
      least granule-sized; caches also need granule-aligned spans and
      sub-blocks at least granule-sized. *)

  type auto
  (** One chunk's cold memory automaton. *)

  val chunk_start : insn_bytes:int -> key -> auto
  val fetch : auto -> addr:int -> unit

  val fetch_run : auto -> addr:int -> count:int -> unit
  (** [count] consecutive fetches inside the (4-byte-aligned) granule at
      [addr]; only valid when {!fetch_run_ok} holds for the key. *)

  val data : auto -> dinfo:int -> unit
  (** One packed nonzero data-access record. *)

  type summary

  val chunk_finish : auto -> summary

  type carry

  val carry_start : key -> carry

  val absorb : carry -> summary -> unit
  (** Fold the next chunk's summary, in stream order.
      @raise Invalid_argument if the summary came from a different key. *)

  val nocache_counters : carry -> Repro_sim.Memsys.nocache
  (** The carried totals of a cacheless carry as the plain bus-request
      counters — field-for-field what {!Repro_sim.Memsys.replay_nocache}
      reports for the same stream.
      @raise Invalid_argument on a cached carry. *)

  val cached_counters : carry -> Repro_sim.Memsys.cached
  (** The carried totals of a cached carry as the plain cache counters —
      field-for-field what {!Repro_sim.Memsys.replay_cached} reports for
      the same stream.
      @raise Invalid_argument on a cacheless carry. *)

  val charge :
    carry ->
    Uconfig.t ->
    ic:int ->
    interlock_clock:int ->
    load_interlocks:int ->
    fp_interlocks:int ->
    result
  (** Scale the carried request/miss totals by the configuration's wait
      states or miss penalty and assemble the full result around the
      scoreboard counters.  The configuration must belong to the carry's
      key class.
      @raise Invalid_argument otherwise. *)
end
