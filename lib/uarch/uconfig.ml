module Memsys = Repro_sim.Memsys

type t =
  | Nocache of { bus_bytes : int; wait_states : int }
  | Cached of {
      icache : Memsys.cache_config;
      dcache : Memsys.cache_config;
      miss_penalty : int;
    }

let fail fmt = Printf.ksprintf invalid_arg ("Uconfig: " ^^ fmt)

let nocache ~bus_bytes ~wait_states =
  if bus_bytes < 2 || bus_bytes land (bus_bytes - 1) <> 0 then
    fail "bus width %d is not a power of two >= 2" bus_bytes;
  if wait_states < 0 then fail "negative wait states %d" wait_states;
  Nocache { bus_bytes; wait_states }

let cached ~icache ~dcache ~miss_penalty =
  if miss_penalty < 0 then fail "negative miss penalty %d" miss_penalty;
  Cached { icache; dcache; miss_penalty }

let cfg_descr (c : Memsys.cache_config) =
  Printf.sprintf "%d/%d/%d" c.Memsys.size_bytes c.Memsys.block_bytes
    c.Memsys.sub_block_bytes

let describe = function
  | Nocache { bus_bytes; wait_states } ->
    Printf.sprintf "nocache:bus=%d,l=%d" bus_bytes wait_states
  | Cached { icache; dcache; miss_penalty } ->
    Printf.sprintf "cached:i=%s,d=%s,p=%d" (cfg_descr icache) (cfg_descr dcache)
      miss_penalty
