type t = {
  ready_g : int array;
  cause_g : Predecode.cause array;
  ready_f : int array;
  cause_f : Predecode.cause array;
  mutable ready_status : int;
  mutable clock : int;
  mutable load_stalls : int;
  mutable fp_stalls : int;
}

let create ~n_gpr ~n_fpr =
  {
    ready_g = Array.make n_gpr 0;
    cause_g = Array.make n_gpr Predecode.Load;
    ready_f = Array.make n_fpr 0;
    cause_f = Array.make n_fpr Predecode.Load;
    ready_status = 0;
    clock = 0;
    load_stalls = 0;
    fp_stalls = 0;
  }

let step t (d : Predecode.desc) =
  List.iter
    (fun (r : Predecode.rreg) ->
      let ready, cause =
        match r with
        | Predecode.Rg i -> (t.ready_g.(i), t.cause_g.(i))
        | Predecode.Rf i -> (t.ready_f.(i), t.cause_f.(i))
        | Predecode.Rstatus -> (t.ready_status, Predecode.Fp)
      in
      if ready > t.clock then begin
        let s = ready - t.clock in
        (match cause with
        | Predecode.Load -> t.load_stalls <- t.load_stalls + s
        | Predecode.Fp -> t.fp_stalls <- t.fp_stalls + s);
        t.clock <- t.clock + s
      end)
    d.Predecode.reads;
  (match d.Predecode.write with
  | Some w ->
    let ready = t.clock + 1 + w.Predecode.latency in
    (match w.Predecode.dst with
    | Predecode.Wg i ->
      t.ready_g.(i) <- ready;
      t.cause_g.(i) <- w.Predecode.cause
    | Predecode.Wf i ->
      t.ready_f.(i) <- ready;
      t.cause_f.(i) <- w.Predecode.cause
    | Predecode.Wstatus -> t.ready_status <- ready)
  | None -> ());
  t.clock <- t.clock + 1

let clock t = t.clock
let load_stalls t = t.load_stalls
let fp_stalls t = t.fp_stalls
