type t = {
  ready_g : int array;
  cause_g : Predecode.cause array;
  ready_f : int array;
  cause_f : Predecode.cause array;
  mutable ready_status : int;
  mutable clock : int;
  mutable load_stalls : int;
  mutable fp_stalls : int;
}

let create ~n_gpr ~n_fpr =
  {
    ready_g = Array.make n_gpr 0;
    cause_g = Array.make n_gpr Predecode.Load;
    ready_f = Array.make n_fpr 0;
    cause_f = Array.make n_fpr Predecode.Load;
    ready_status = 0;
    clock = 0;
    load_stalls = 0;
    fp_stalls = 0;
  }

let step t (d : Predecode.desc) =
  List.iter
    (fun (r : Predecode.rreg) ->
      let ready, cause =
        match r with
        | Predecode.Rg i -> (t.ready_g.(i), t.cause_g.(i))
        | Predecode.Rf i -> (t.ready_f.(i), t.cause_f.(i))
        | Predecode.Rstatus -> (t.ready_status, Predecode.Fp)
      in
      if ready > t.clock then begin
        let s = ready - t.clock in
        (match cause with
        | Predecode.Load -> t.load_stalls <- t.load_stalls + s
        | Predecode.Fp -> t.fp_stalls <- t.fp_stalls + s);
        t.clock <- t.clock + s
      end)
    d.Predecode.reads;
  (match d.Predecode.write with
  | Some w ->
    let ready = t.clock + 1 + w.Predecode.latency in
    (match w.Predecode.dst with
    | Predecode.Wg i ->
      t.ready_g.(i) <- ready;
      t.cause_g.(i) <- w.Predecode.cause
    | Predecode.Wf i ->
      t.ready_f.(i) <- ready;
      t.cause_f.(i) <- w.Predecode.cause
    | Predecode.Wstatus -> t.ready_status <- ready)
  | None -> ());
  t.clock <- t.clock + 1

let clock t = t.clock
let load_stalls t = t.load_stalls
let fp_stalls t = t.fp_stalls

(* Chunk-parallel engine. ----------------------------------------------------

   The future behaviour of a scoreboard depends only on its NORMALIZED
   state: per register the slack [max 0 (ready - clock)] plus the stall
   cause where the slack is positive (causes on drained registers are
   never read before the next write overwrites them).  Slack evolution is
   clock-translation-invariant, so a chunk of the instruction stream can
   be simulated from a cold scoreboard (all slacks zero) on one domain
   and reconciled with the true carried-in state later:

   - a write at in-chunk instruction [j] with result latency [L] leaves
     slack exactly [L] on the destination in ANY run (cold or warm —
     [ready = clock + 1 + L] relative to the post-step clock), and every
     subsequent instruction advances the clock by at least one, so that
     slack is provably zero once [j + 1 + L] instructions have issued;
   - every slack carried INTO the chunk is at most [drain_horizon] (the
     largest latency the predecoder ever emits), so it is provably zero
     once [drain_horizon] instructions have issued.

   Hence at the convergence index [K] — the smallest instruction count
   that is [>= drain_horizon] and [>= j + 1 + L] for every write seen
   before it — the cold run and EVERY possible warm run have the same
   all-drained normalized state.  The sequential merge re-steps only the
   first [K] instructions from the true carried-in state, then adds the
   cold run's suffix counter deltas and adopts its end state verbatim.
   If a chunk never reaches its horizon (short chunk, or a dense chain
   of long-latency writes near the tail), the summary simply carries the
   whole chunk's instruction indices and the merge re-steps all of them
   — the exact sequential fallback, never an approximation. *)

type snapshot = {
  slack_g : int array;
  scause_g : Predecode.cause array;
  slack_f : int array;
  scause_f : Predecode.cause array;
  slack_status : int;
}

let snapshot t =
  {
    slack_g = Array.map (fun r -> max 0 (r - t.clock)) t.ready_g;
    scause_g = Array.copy t.cause_g;
    slack_f = Array.map (fun r -> max 0 (r - t.clock)) t.ready_f;
    scause_f = Array.copy t.cause_f;
    slack_status = max 0 (t.ready_status - t.clock);
  }

let restore t (s : snapshot) =
  Array.iteri (fun i sl -> t.ready_g.(i) <- t.clock + sl) s.slack_g;
  Array.blit s.scause_g 0 t.cause_g 0 (Array.length s.scause_g);
  Array.iteri (fun i sl -> t.ready_f.(i) <- t.clock + sl) s.slack_f;
  Array.blit s.scause_f 0 t.cause_f 0 (Array.length s.scause_f);
  t.ready_status <- t.clock + s.slack_status

(* Equality on what can affect the future: slacks everywhere, causes only
   where the slack is positive. *)
let snapshot_equal a b =
  let causes_agree sl ca cb =
    Array.for_all
      (fun i -> sl.(i) = 0 || ca.(i) = cb.(i))
      (Array.init (Array.length sl) Fun.id)
  in
  a.slack_g = b.slack_g && a.slack_f = b.slack_f
  && a.slack_status = b.slack_status
  && causes_agree a.slack_g a.scause_g b.scause_g
  && causes_agree a.slack_f a.scause_f b.scause_f

let drained t =
  Array.for_all (fun r -> r <= t.clock) t.ready_g
  && Array.for_all (fun r -> r <= t.clock) t.ready_f
  && t.ready_status <= t.clock

(* The largest result latency the predecoder ever emits: an upper bound
   on any slack carried across a chunk boundary. *)
let drain_horizon =
  List.fold_left max Repro_sim.Machine.load_latency
    [
      Repro_sim.Machine.fp_latency_add; Repro_sim.Machine.fp_latency_mul;
      Repro_sim.Machine.fp_latency_div; Repro_sim.Machine.fp_latency_cmp;
    ]

type chunk = {
  csb : t;  (* the cold automaton *)
  mutable n : int;  (* instructions stepped so far *)
  mutable horizon : int;  (* instructions until provably drained *)
  mutable conv : int;  (* convergence index K, -1 until detected *)
  mutable pclock : int;  (* cold counters at K *)
  mutable pload : int;
  mutable pfp : int;
  mutable prefix : int array;  (* desc indices of instructions [0, K) *)
  mutable prefix_n : int;
}

let chunk_start ~n_gpr ~n_fpr =
  {
    csb = create ~n_gpr ~n_fpr;
    n = 0;
    horizon = drain_horizon;
    conv = -1;
    pclock = 0;
    pload = 0;
    pfp = 0;
    prefix = Array.make 64 0;
    prefix_n = 0;
  }

let chunk_step ch ~index (d : Predecode.desc) =
  if ch.conv < 0 then begin
    if ch.prefix_n = Array.length ch.prefix then begin
      let bigger = Array.make (2 * ch.prefix_n) 0 in
      Array.blit ch.prefix 0 bigger 0 ch.prefix_n;
      ch.prefix <- bigger
    end;
    ch.prefix.(ch.prefix_n) <- index;
    ch.prefix_n <- ch.prefix_n + 1
  end;
  step ch.csb d;
  (match d.Predecode.write with
  | Some w when w.Predecode.latency > 0 ->
    ch.horizon <- max ch.horizon (ch.n + 1 + w.Predecode.latency)
  | _ -> ());
  ch.n <- ch.n + 1;
  if ch.conv < 0 && ch.n >= ch.horizon then begin
    ch.conv <- ch.n;
    ch.pclock <- ch.csb.clock;
    ch.pload <- ch.csb.load_stalls;
    ch.pfp <- ch.csb.fp_stalls
  end

let convergence ch = if ch.conv >= 0 then Some ch.conv else None

type summary = {
  s_conv : int;  (* K, or -1: merge must re-step the whole chunk *)
  s_prefix : int array;  (* desc indices to re-step from the warm state *)
  s_pclock : int;  (* cold counters at K... *)
  s_pload : int;
  s_pfp : int;
  s_tclock : int;  (* ...and at chunk end *)
  s_tload : int;
  s_tfp : int;
  s_end : snapshot;  (* cold end state; the truth iff converged *)
}

let chunk_finish ch =
  {
    s_conv = ch.conv;
    s_prefix = Array.sub ch.prefix 0 ch.prefix_n;
    s_pclock = ch.pclock;
    s_pload = ch.pload;
    s_pfp = ch.pfp;
    s_tclock = ch.csb.clock;
    s_tload = ch.csb.load_stalls;
    s_tfp = ch.csb.fp_stalls;
    s_end = snapshot ch.csb;
  }

let absorb t (descs : Predecode.desc array) (s : summary) =
  let prefix = s.s_prefix in
  for i = 0 to Array.length prefix - 1 do
    step t descs.(Array.unsafe_get prefix i)
  done;
  if s.s_conv >= 0 then begin
    (* At the convergence index both the warm and the cold scoreboard are
       provably drained; if this ever fails, a latency outgrew
       [drain_horizon] and the merge would be silently wrong. *)
    if not (drained t) then
      failwith "Scoreboard.absorb: convergence invariant violated";
    t.clock <- t.clock + (s.s_tclock - s.s_pclock);
    t.load_stalls <- t.load_stalls + (s.s_tload - s.s_pload);
    t.fp_stalls <- t.fp_stalls + (s.s_tfp - s.s_pfp);
    restore t s.s_end
  end
