(** Drivers wiring the pipeline model to the architectural simulator.

    {!run} executes an image once and feeds every retired instruction to
    the timing model through {!Repro_sim.Machine.run}'s [on_insn] hook —
    no trace array is ever materialized, so memory stays flat regardless
    of path length.  {!run_many} times several memory configurations in
    one architectural execution.  {!replay} steps the model over an
    already-recorded trace, which is what the differential harness uses to
    compare many configurations against {!Repro_sim.Memsys} replays of the
    same run. *)

val run :
  Uconfig.t ->
  Repro_link.Link.image ->
  Repro_sim.Machine.result * Pipeline.result
(** The architectural result carries no trace ([trace = None]). *)

val run_many :
  Uconfig.t list ->
  Repro_link.Link.image ->
  Repro_sim.Machine.result * Pipeline.result list
(** One architectural execution feeding one pipeline per configuration;
    results are in configuration order. *)

val replay :
  Uconfig.t ->
  Repro_link.Link.image ->
  Repro_sim.Machine.trace ->
  Pipeline.result
