(** The end-to-end compilation pipeline: mini-C source to an executable
    image for a target, mirroring the paper's GCC-based flow (one compiler
    technology, retargeted by the experiment knobs). *)

exception Compile_error of string

type ablation = {
  opt_flags : Repro_ir.Opt.flags;
  fill_delay_slots : bool;
  schedule_loads : bool;
}
(** Switches for the ablation study (DESIGN.md design-choice benches). *)

val no_ablation : ablation

val describe_ablation : ablation -> string
(** Stable rendering of every switch, for persistent-cache keys. *)

val compile :
  ?optimize:int ->
  ?ablation:ablation ->
  ?with_runtime:bool ->
  Repro_core.Target.t ->
  string ->
  Repro_link.Link.image
(** [compile target source] parses, lowers, optimizes (default level 2),
    prepares for the target, allocates registers, selects instructions,
    schedules delay slots, and links (runtime library included unless
    [with_runtime] is false).
    @raise Compile_error wrapping any front/middle/back-end failure. *)

val compile_and_run :
  ?optimize:int ->
  ?ablation:ablation ->
  ?trace:bool ->
  ?max_steps:int ->
  Repro_core.Target.t ->
  string ->
  Repro_link.Link.image * Repro_sim.Machine.result
