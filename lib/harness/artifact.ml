module Tbl = Repro_util.Table

type cell =
  | Text of string
  | Int of int
  | Float of { v : float; decimals : int }
  | Percent of { v : float; decimals : int; signed : bool }

let text s = Text s
let int n = Int n
let f2 v = Float { v; decimals = 2 }
let f3 v = Float { v; decimals = 3 }
let pct1 v = Percent { v; decimals = 1; signed = false }
let spct2 v = Percent { v; decimals = 2; signed = true }

(* The runtime primitive behind [Printf]'s [%f] conversion
   (CamlinternalFormat calls the same C function), invoked directly with a
   pre-built format string: identical bytes, none of the per-call format
   interpretation.  Rendering a table is ~80% float formatting. *)
external format_float : string -> float -> string = "caml_format_float"

let plain_fmt = [| "%.0f"; "%.1f"; "%.2f"; "%.3f"; "%.4f"; "%.5f"; "%.6f" |]

let signed_fmt =
  [| "%+.0f"; "%+.1f"; "%+.2f"; "%+.3f"; "%+.4f"; "%+.5f"; "%+.6f" |]

let float_to_string ~signed ~decimals v =
  let fmts = if signed then signed_fmt else plain_fmt in
  if decimals >= 0 && decimals < Array.length fmts then
    format_float fmts.(decimals) v
  else if signed then Printf.sprintf "%+.*f" decimals v
  else Printf.sprintf "%.*f" decimals v

let cell_to_string = function
  | Text s -> s
  | Int n -> string_of_int n
  | Float { v; decimals } -> float_to_string ~signed:false ~decimals v
  | Percent { v; decimals; signed } ->
    float_to_string ~signed ~decimals v ^ "%"

let number = function
  | Text _ -> None
  | Int n -> Some (float_of_int n)
  | Float { v; _ } | Percent { v; _ } -> Some v

type item =
  | Table of { header : string list; rows : cell list list }
  | Bars of { max_value : float; entries : (string * float) list }
  | Series of {
      x_label : string;
      xs : string list;
      series : (string * float list) list;
    }

type section = { label : string option; body : item }

type t = { caption : string; sections : section list; notes : string list }

let section ?label body = { label; body }
let make ~caption ?(notes = []) sections = { caption; sections; notes }

let table ?label ~header rows = section ?label (Table { header; rows })

let bars ?label ~max_value entries =
  section ?label (Bars { max_value; entries })

let series ?label ~x_label ~xs s = section ?label (Series { x_label; xs; series = s })

let item_to_string = function
  | Table { header; rows } ->
    Tbl.render header (List.map (List.map cell_to_string) rows)
  | Bars { max_value; entries } -> Tbl.bar_chart ~max_value entries
  | Series { x_label; xs; series } -> Tbl.series_chart ~x_label ~xs series

let to_text a =
  let buf = Buffer.create 512 in
  Buffer.add_string buf a.caption;
  Buffer.add_char buf '\n';
  List.iter
    (fun { label; body } ->
      (match label with
      | Some l ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf l;
        Buffer.add_string buf ":\n"
      | None -> Buffer.add_char buf '\n');
      Buffer.add_string buf (item_to_string body))
    a.sections;
  List.iter
    (fun n ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf n;
      Buffer.add_char buf '\n')
    a.notes;
  Buffer.contents buf

let items a = List.map (fun s -> (s.label, s.body)) a.sections

let first_table a =
  List.find_map
    (function
      | { body = Table { header; rows }; _ } -> Some (header, rows) | _ -> None)
    a.sections
