(** Memoized per-(benchmark, target) measurements.

    Compiling and simulating a benchmark is deterministic, so every
    experiment shares one set of raw numbers.  The measurement plane is
    trace-driven, mirroring the paper's dinero methodology: one captured
    execution per (benchmark, target) lands as a compressed
    {!Repro_trace.Trace} file in the store under
    [_runs_cache/traces/], and fetch-request counts, the standard cache
    grid, and the cycle-accurate pipeline sweeps all {e replay} that
    trace — sweep cost scales with trace I/O, not architectural work.
    Corrupt or version-skewed trace files read as misses and are
    re-captured.

    Two memo layers back every accessor:

    - an in-process table, safe to populate from multiple domains (the
      {!Pool} scheduler runs disjoint requests in parallel; lookups and
      insertions are mutex-guarded, the measurement work itself is not);
    - the persistent {!Diskcache} under [_runs_cache/], keyed by a digest
      of the benchmark source (runtime library included), the full target
      description and the harness compiler knobs, so repeated process
      invocations skip compile+simulate entirely and any change to the
      inputs invalidates the entry. *)

type stats = {
  bench : string;
  target : Repro_core.Target.t;
  size_bytes : int;  (** Stripped-binary measure: text + initialized data. *)
  text_bytes : int;
  ic : int;
  loads : int;
  stores : int;
  load_words : int;
  store_words : int;
  interlocks : int;
  ireq32 : int;  (** Instruction fetch requests, 32-bit bus, no cache. *)
  ireq64 : int;
  dreq32 : int;
  dreq64 : int;
  output : string;
  exit_code : int;
}

val stats : string -> Repro_core.Target.t -> stats
(** Compile, run, replay the two fetch-buffer widths; memoized in process
    and on disk. *)

val cached :
  string ->
  Repro_core.Target.t ->
  size:int ->
  block:int ->
  sub:int ->
  Repro_sim.Memsys.cached
(** Cache statistics for split I/D caches of the given geometry (both caches
    identical, as in the paper's figures).  Memoized; the first request for
    a (benchmark, target) runs the trace once and replays the whole standard
    grid. *)

val ensure_grid :
  ?map:Repro_trace.Replay.map ->
  string ->
  Repro_core.Target.t ->
  unit
(** Populate the standard cache grid for one (benchmark, target), from disk
    when possible: one decode of the stored trace drives all 25 geometries
    ({!Repro_trace.Replay.Grid}).  The unit of work {!Pool} schedules for
    cache studies.  [?map] lets a caller spread the trace's chunks across
    domains (pass [Pool.map ~jobs] or [Pool.map ~pool]); the default is
    sequential.  This module cannot depend on {!Pool} — injection keeps the
    dependency one-way. *)

val uarch :
  string ->
  Repro_core.Target.t ->
  Repro_uarch.Uconfig.t ->
  Repro_uarch.Pipeline.result
(** Cycle-accurate pipeline-model result (stall breakdown, cache counters)
    for one memory configuration.  Memoized (keyed structurally on the
    configuration — the render paths probe hundreds of times); the first
    request for a (benchmark, target) runs the standard sweep — one decode
    of the stored trace feeding every configuration in
    {!standard_uarch_configs}. *)

val ensure_uarch :
  ?map:Repro_trace.Replay.map ->
  string ->
  Repro_core.Target.t ->
  unit
(** Populate the standard pipeline-model sweep for one (benchmark, target),
    from disk when possible: one decode of the stored trace drives every
    configuration through a shared scoreboard and deduplicated memory
    automatons ({!Repro_trace.Replay.Upipelines}).  The unit of work
    {!Pool} schedules for stall studies.  [?map] fans the trace's chunks
    out across domains, like {!ensure_grid}'s. *)

val ensure_fused :
  ?map:Repro_trace.Replay.map ->
  string ->
  Repro_core.Target.t ->
  unit
(** Populate the standard cache grid {e and} the standard pipeline-model
    sweep for one (benchmark, target) in a single {!Repro_trace.Replay.Fused}
    pass: one decode of the stored trace feeds all 25 grid geometries plus
    every sweep configuration's automaton simultaneously.  Results are
    byte-equal to {!ensure_grid} + {!ensure_uarch} (same memo tables, same
    disk entries) — only the decode and traversal are shared.  Axes already
    complete (memo or disk) are skipped; if both are warm this is free. *)

val fusion : string -> Repro_core.Target.t -> Repro_isavar.Fusion.counters
(** Macro-op fusion counters ({!Repro_isavar.Fusion.default_rules}) for
    one (benchmark, target): dynamic op count, per-rule fused pairs, and
    the fused interlock clock, replayed from the stored trace through the
    shared chunk-decode cache.  Memoized in process and on disk. *)

val standard_uarch_configs : Repro_uarch.Uconfig.t list
(** Cacheless bus 4 and 8 bytes at wait states 0..3, plus 4K and 16K split
    caches (32-byte blocks, 4-byte sub-blocks) at miss penalty 8. *)

val standard_cache_sizes : int list
(** 1K, 2K, 4K, 8K, 16K. *)

val standard_blocks : int list
(** 8, 16, 32, 64 (with 8-byte sub-blocks, paper appendix A.3). *)

val standard_grid : (int * int * int) list
(** Every (size, block, sub) geometry the appendix tables and figures use. *)

val run_with_trace : string -> Repro_core.Target.t -> Repro_sim.Machine.result
(** A fresh traced run with the in-memory trace arrays (not memoized —
    the materialized trace is big).  The differential tests use it to
    compare direct execution against the trace store. *)

(** {2 Trace store} *)

val trace_reader : string -> Repro_core.Target.t -> Repro_trace.Trace.Reader.t
(** The stored trace for one (benchmark, target), captured now if the
    store has no readable current-version file.  Readers are shared (and
    safe to share) across domains. *)

val ensure_trace : string -> Repro_core.Target.t -> unit
(** Populate the trace store for one (benchmark, target) — the unit of
    work {!Pool} schedules ahead of grid and uarch sweeps so replays hit
    a warm store. *)

val trace_path : string -> Repro_core.Target.t -> string
(** Where the stored trace lives ([_runs_cache/traces/<key>.trc]). *)

val image : string -> Repro_core.Target.t -> Repro_link.Link.image

val clear_memo : unit -> unit
(** Drop the in-process tables only; the disk cache persists. *)

(** {2 Cache keys}

    Exposed for tests and for drivers that disk-cache derived results
    (profiles, trace classifications) with the same invalidation rules. *)

val stats_key : string -> Repro_core.Target.t -> string
val grid_key : string -> Repro_core.Target.t -> string
val uarch_sweep_key : string -> Repro_core.Target.t -> string

val fusion_key : string -> Repro_core.Target.t -> string
(** Also digests the rule-table names: changing the shipped rules
    invalidates stored fusion counters. *)

val trace_key : string -> Repro_core.Target.t -> string
(** Also digests {!Repro_trace.Trace.format_version}: bumping the format
    re-captures every stored trace. *)

val bench_fingerprint : string -> string
(** Digest of runtime library + benchmark source. *)

val knobs_descr : string
(** Description of the compiler configuration the harness measures with. *)
