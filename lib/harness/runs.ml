module Target = Repro_core.Target
module Link = Repro_link.Link
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Runtime_lib = Repro_workloads.Runtime_lib
module Uconfig = Repro_uarch.Uconfig
module Upipeline = Repro_uarch.Pipeline
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay
module Fusion = Repro_isavar.Fusion

type stats = {
  bench : string;
  target : Target.t;
  size_bytes : int;
  text_bytes : int;
  ic : int;
  loads : int;
  stores : int;
  load_words : int;
  store_words : int;
  interlocks : int;
  ireq32 : int;
  ireq64 : int;
  dreq32 : int;
  dreq64 : int;
  output : string;
  exit_code : int;
}

let standard_cache_sizes = [ 1024; 2048; 4096; 8192; 16384 ]
let standard_blocks = [ 8; 16; 32; 64 ]

(* The standard grid replayed when any cache number is first requested:
   the appendix geometries (block x size with 8-byte sub-blocks) plus the
   figure geometry (32-byte blocks, 4-byte sub-blocks). *)
let standard_grid =
  List.concat_map
    (fun size ->
      ((size, 32, 4)
      :: List.map (fun block -> (size, block, min 8 block)) standard_blocks))
    standard_cache_sizes

(* The standard pipeline-model sweep: both fetch-bus widths across wait
   states 0..3 (the paper's cacheless machines), plus a small and a large
   cached machine at the figure geometry (32-byte blocks, 4-byte
   sub-blocks) with the paper's 8-cycle miss penalty. *)
let standard_uarch_configs =
  let nocache =
    List.concat_map
      (fun bus ->
        List.map
          (fun l -> Uconfig.nocache ~bus_bytes:bus ~wait_states:l)
          [ 0; 1; 2; 3 ])
      [ 4; 8 ]
  in
  let cached size =
    let cfg = Memsys.cache_config ~size ~block:32 ~sub:4 in
    Uconfig.cached ~icache:cfg ~dcache:cfg ~miss_penalty:8
  in
  nocache @ [ cached 4096; cached 16384 ]

(* In-process memo tables, shared across domains behind one lock.  Lookups
   and insertions are locked; the compile+simulate work itself runs outside
   the lock, so domains overlap on distinct keys (the {!Pool} scheduler
   deduplicates its plan, so no key is computed twice). *)

let lock = Mutex.create ()
let with_lock f = Mutex.protect lock f

let image_tbl : (string * string, Link.image) Hashtbl.t = Hashtbl.create 32
let stats_tbl : (string * string, stats) Hashtbl.t = Hashtbl.create 32

let trace_tbl : (string * string, Trace.Reader.t) Hashtbl.t = Hashtbl.create 32

(* Per-(bench, target) capture locks: a grid and a uarch spec for the same
   pair may land on two domains at once; one captures, the other blocks on
   the key's mutex and then reads the installed reader. *)
let trace_locks : (string * string, Mutex.t) Hashtbl.t = Hashtbl.create 32

let trace_lock key =
  with_lock (fun () ->
      match Hashtbl.find_opt trace_locks key with
      | Some m -> m
      | None ->
        let m = Mutex.create () in
        Hashtbl.add trace_locks key m;
        m)

let cache_tbl : (string * string * int * int * int, Memsys.cached) Hashtbl.t =
  Hashtbl.create 256

(* Keyed structurally on the configuration itself: the hot render paths
   (utab1/ufig1) look configurations up hundreds of times, and hashing the
   variant beats formatting a describe string per probe. *)
let uarch_tbl : (string * string * Uconfig.t, Upipeline.result) Hashtbl.t =
  Hashtbl.create 64

let fusion_tbl : (string * string, Fusion.counters) Hashtbl.t =
  Hashtbl.create 32

let clear_memo () =
  with_lock (fun () ->
      Hashtbl.reset image_tbl;
      Hashtbl.reset stats_tbl;
      Hashtbl.reset cache_tbl;
      Hashtbl.reset uarch_tbl;
      Hashtbl.reset fusion_tbl;
      Hashtbl.reset trace_tbl)

(* Disk-cache keys.  Every key digests the benchmark source (runtime
   library included, exactly what the compiler sees), the full target
   description, and the harness compiler knobs, so editing any of them
   invalidates the entry. *)

let knobs_descr = "optimize=2;with_runtime=true;" ^ Compile.describe_ablation Compile.no_ablation

let bench_fingerprint bench =
  Digest.to_hex
    (Digest.string (Runtime_lib.source ^ (Suite.find bench).Suite.source))

let stats_key bench (target : Target.t) =
  Diskcache.key
    [ "stats"; bench; bench_fingerprint bench; Target.describe target; knobs_descr ]

let grid_descr =
  String.concat ","
    (List.map (fun (s, b, u) -> Printf.sprintf "%d/%d/%d" s b u) standard_grid)

let grid_key bench (target : Target.t) =
  Diskcache.key
    [
      "cache-grid"; grid_descr; bench; bench_fingerprint bench;
      Target.describe target; knobs_descr;
    ]

let geometry_key bench (target : Target.t) ~size ~block ~sub =
  Diskcache.key
    [
      "cache-one"; Printf.sprintf "%d/%d/%d" size block sub; bench;
      bench_fingerprint bench; Target.describe target; knobs_descr;
    ]

let uarch_sweep_descr =
  String.concat "," (List.map Uconfig.describe standard_uarch_configs)

let uarch_sweep_key bench (target : Target.t) =
  Diskcache.key
    [
      "uarch-sweep"; uarch_sweep_descr; bench; bench_fingerprint bench;
      Target.describe target; knobs_descr;
    ]

let uarch_one_key bench (target : Target.t) cfg =
  Diskcache.key
    [
      "uarch-one"; Uconfig.describe cfg; bench; bench_fingerprint bench;
      Target.describe target; knobs_descr;
    ]

let fusion_rules_descr =
  String.concat ","
    (List.map (fun (r : Fusion.rule) -> r.Fusion.name) Fusion.default_rules)

let fusion_key bench (target : Target.t) =
  Diskcache.key
    [
      "fusion"; fusion_rules_descr; bench; bench_fingerprint bench;
      Target.describe target; knobs_descr;
    ]

let trace_key bench (target : Target.t) =
  Diskcache.key
    [
      "trace"; string_of_int Trace.format_version; bench;
      bench_fingerprint bench; Target.describe target; knobs_descr;
    ]

let trace_path bench (target : Target.t) =
  Filename.concat (Diskcache.subdir "traces") (trace_key bench target ^ ".trc")

let image bench (target : Target.t) =
  let key = (bench, target.Target.name) in
  match with_lock (fun () -> Hashtbl.find_opt image_tbl key) with
  | Some img -> img
  | None ->
    let b = Suite.find bench in
    let img = Compile.compile target b.Suite.source in
    with_lock (fun () -> Hashtbl.replace image_tbl key img);
    img

let run_with_trace bench target = Machine.run ~trace:true (image bench target)

(* Trace store. ------------------------------------------------------------

   One capture per (benchmark, target): the architectural simulator runs
   once with the streaming [on_insn] hook feeding a {!Trace.Writer} (no
   trace array is materialized), and every cache grid, pipeline sweep, and
   fetch-request count afterwards replays the stored bytes.  Corrupt,
   truncated, or version-skewed files read as a miss and are re-captured.
   With the disk cache disabled the capture goes to a temp file that is
   unlinked as soon as the reader has swallowed it. *)

let capture_trace bench (target : Target.t) path =
  let img = image bench target in
  let w = Trace.Writer.create ~insn_bytes:(Target.insn_bytes target) path in
  match
    Machine.run ~trace:false
      ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
      img
  with
  | r ->
    Trace.Writer.close w;
    r
  | exception e ->
    Trace.Writer.abort w;
    raise e

(* Capture (or reopen) under the pair's lock and install the reader.
   Returns the architectural result when this call ran the machine. *)
let load_trace bench (target : Target.t) =
  let key = (bench, target.Target.name) in
  Mutex.protect (trace_lock key) (fun () ->
      match with_lock (fun () -> Hashtbl.find_opt trace_tbl key) with
      | Some rd -> (rd, None)
      | None ->
        let persistent = Diskcache.enabled () in
        let path =
          if persistent then trace_path bench target
          else Filename.temp_file "repro-trace" ".trc"
        in
        let reopen () =
          if persistent && Sys.file_exists path then
            Trace.Reader.open_file path |> Result.to_option
          else None
        in
        let rd, r =
          match reopen () with
          | Some rd -> (rd, None)
          | None -> (
            let r = capture_trace bench target path in
            match Trace.Reader.open_file path with
            | Ok rd -> (rd, Some r)
            | Error e ->
              failwith ("Runs: just-captured trace unreadable: " ^ e))
        in
        if not persistent then (try Sys.remove path with Sys_error _ -> ());
        with_lock (fun () -> Hashtbl.replace trace_tbl key rd);
        (rd, r))

let trace_reader bench target = fst (load_trace bench target)
let ensure_trace bench target = ignore (trace_reader bench target)

let compute_stats bench (target : Target.t) =
  let img = image bench target in
  (* One execution fills the trace store and yields the architectural
     counters; if the store was already warm the execution reuses it and
     skips the capture I/O.  Both fetch-buffer widths then replay from
     the stored trace. *)
  let rd, captured = load_trace bench target in
  let r =
    match captured with
    | Some r -> r
    | None -> Machine.run ~trace:false img
  in
  let nc32 = Replay.nocache rd ~bus_bytes:4 in
  let nc64 = Replay.nocache rd ~bus_bytes:8 in
  {
    bench;
    target;
    size_bytes = Link.size_bytes img;
    text_bytes = img.Link.text_bytes;
    ic = r.Machine.ic;
    loads = r.Machine.loads;
    stores = r.Machine.stores;
    load_words = r.Machine.load_words;
    store_words = r.Machine.store_words;
    interlocks = r.Machine.interlocks;
    ireq32 = nc32.Memsys.irequests;
    ireq64 = nc64.Memsys.irequests;
    dreq32 = nc32.Memsys.drequests;
    dreq64 = nc64.Memsys.drequests;
    output = r.Machine.output;
    exit_code = r.Machine.exit_code;
  }

let stats bench (target : Target.t) =
  let key = (bench, target.Target.name) in
  match with_lock (fun () -> Hashtbl.find_opt stats_tbl key) with
  | Some s -> s
  | None ->
    let s =
      match (Diskcache.find (stats_key bench target) : stats option) with
      | Some s -> s
      | None ->
        let s = compute_stats bench target in
        Diskcache.store (stats_key bench target) s;
        s
    in
    with_lock (fun () -> Hashtbl.replace stats_tbl key s);
    s

let grid_complete bench (target : Target.t) =
  with_lock (fun () ->
      List.for_all
        (fun (size, block, sub) ->
          Hashtbl.mem cache_tbl (bench, target.Target.name, size, block, sub))
        standard_grid)

let install_grid bench (target : Target.t) entries =
  with_lock (fun () ->
      List.iter
        (fun ((size, block, sub), c) ->
          Hashtbl.replace cache_tbl
            (bench, target.Target.name, size, block, sub)
            c)
        entries)

let replay_one rd (size, block, sub) =
  let cfg = Memsys.cache_config ~size ~block ~sub in
  Replay.cached ~icache:cfg ~dcache:cfg rd

let grid_spec (size, block, sub) =
  let cfg = Memsys.cache_config ~size ~block ~sub in
  { Replay.Grid.icache = cfg; dcache = cfg }

let ensure_grid ?map bench (target : Target.t) =
  if not (grid_complete bench target) then begin
    let entries
        : ((int * int * int) * Memsys.cached) list =
      match Diskcache.find (grid_key bench target) with
      | Some entries -> entries
      | None ->
        (* Trace-driven, as in the paper's dinero study — but single-pass:
           one decode of the stored trace feeds every geometry's automaton
           simultaneously ({!Replay.Grid}), instead of one full replay per
           geometry. *)
        let rd = trace_reader bench target in
        let results =
          Replay.Grid.run ?map rd (List.map grid_spec standard_grid)
        in
        let entries = List.combine standard_grid results in
        Diskcache.store (grid_key bench target) entries;
        entries
    in
    install_grid bench target entries
  end

let cached bench (target : Target.t) ~size ~block ~sub =
  let key = (bench, target.Target.name, size, block, sub) in
  match with_lock (fun () -> Hashtbl.find_opt cache_tbl key) with
  | Some c -> c
  | None ->
    ensure_grid bench target;
    (match with_lock (fun () -> Hashtbl.find_opt cache_tbl key) with
    | Some c -> c
    | None ->
      (* Off-grid geometry: one dedicated replay of the stored trace. *)
      let c =
        Diskcache.memo
          (geometry_key bench target ~size ~block ~sub)
          (fun () -> replay_one (trace_reader bench target) (size, block, sub))
      in
      with_lock (fun () -> Hashtbl.replace cache_tbl key c);
      c)

let uarch_complete bench (target : Target.t) =
  with_lock (fun () ->
      List.for_all
        (fun cfg -> Hashtbl.mem uarch_tbl (bench, target.Target.name, cfg))
        standard_uarch_configs)

let install_uarch bench (target : Target.t) entries =
  with_lock (fun () ->
      List.iter
        (fun (cfg, res) ->
          Hashtbl.replace uarch_tbl (bench, target.Target.name, cfg) res)
        entries)

let ensure_uarch ?map bench (target : Target.t) =
  if not (uarch_complete bench target) then begin
    (* The disk format stays describe-keyed (it predates the structural
       memo keys), so existing cache entries remain valid. *)
    let entries : (string * Upipeline.result) list =
      match Diskcache.find (uarch_sweep_key bench target) with
      | Some entries -> entries
      | None ->
        (* One decode of the stored trace feeds every configuration:
           a shared scoreboard plus deduplicated memory automatons,
           chunk-parallel when [map] fans out ({!Replay.Upipelines}). *)
        let results =
          Replay.Upipelines.run ?map
            (trace_reader bench target)
            standard_uarch_configs (image bench target)
        in
        let entries =
          List.map2
            (fun cfg res -> (Uconfig.describe cfg, res))
            standard_uarch_configs results
        in
        Diskcache.store (uarch_sweep_key bench target) entries;
        entries
    in
    install_uarch bench target
      (List.map
         (fun cfg -> (cfg, List.assoc (Uconfig.describe cfg) entries))
         standard_uarch_configs)
  end

(* One fused pass covering whichever of the two standard sweeps is still
   cold.  The disk entries and memo installs are exactly {!ensure_grid}'s
   and {!ensure_uarch}'s — the fusion only shares the decode and the
   trace traversal, so a later call to either is a no-op. *)
let ensure_fused ?map bench (target : Target.t) =
  let need_grid = not (grid_complete bench target) in
  let need_uarch = not (uarch_complete bench target) in
  if need_grid || need_uarch then begin
    let disk_grid : ((int * int * int) * Memsys.cached) list option =
      if need_grid then Diskcache.find (grid_key bench target) else None
    in
    let disk_uarch : (string * Upipeline.result) list option =
      if need_uarch then Diskcache.find (uarch_sweep_key bench target)
      else None
    in
    let want_grid = need_grid && disk_grid = None in
    let want_uarch = need_uarch && disk_uarch = None in
    let computed_grid, computed_uarch =
      if want_grid || want_uarch then begin
        let rd = trace_reader bench target in
        let img = if want_uarch then Some (image bench target) else None in
        let spec =
          {
            Replay.Fused.buses = [];
            caches =
              (if want_grid then List.map grid_spec standard_grid else []);
            pipelines = (if want_uarch then standard_uarch_configs else []);
          }
        in
        let r = Replay.Fused.run ?map ?img rd spec in
        let g =
          if want_grid then begin
            let entries = List.combine standard_grid r.Replay.Fused.cacheds in
            Diskcache.store (grid_key bench target) entries;
            Some entries
          end
          else None
        in
        let u =
          if want_uarch then begin
            let entries =
              List.map2
                (fun cfg res -> (Uconfig.describe cfg, res))
                standard_uarch_configs r.Replay.Fused.pipes
            in
            Diskcache.store (uarch_sweep_key bench target) entries;
            Some entries
          end
          else None
        in
        (g, u)
      end
      else (None, None)
    in
    (match if computed_grid <> None then computed_grid else disk_grid with
    | Some entries when need_grid -> install_grid bench target entries
    | _ -> ());
    match if computed_uarch <> None then computed_uarch else disk_uarch with
    | Some entries when need_uarch ->
      install_uarch bench target
        (List.map
           (fun cfg -> (cfg, List.assoc (Uconfig.describe cfg) entries))
           standard_uarch_configs)
    | _ -> ()
  end

(* Macro-op fusion counters under the default rule table: one sequential
   pass over the stored trace through the shared chunk-decode cache, so a
   sweep that also replays memory behaviour decodes each chunk once. *)
let fusion bench (target : Target.t) =
  let key = (bench, target.Target.name) in
  match with_lock (fun () -> Hashtbl.find_opt fusion_tbl key) with
  | Some c -> c
  | None ->
    let c =
      Diskcache.memo (fusion_key bench target) (fun () ->
          Fusion.replay
            (Fusion.plan Fusion.default_rules (image bench target))
            (trace_reader bench target))
    in
    with_lock (fun () -> Hashtbl.replace fusion_tbl key c);
    c

let uarch bench (target : Target.t) cfg =
  let key = (bench, target.Target.name, cfg) in
  match with_lock (fun () -> Hashtbl.find_opt uarch_tbl key) with
  | Some res -> res
  | None ->
    ensure_uarch bench target;
    (match with_lock (fun () -> Hashtbl.find_opt uarch_tbl key) with
    | Some res -> res
    | None ->
      (* Off-sweep configuration: one dedicated trace replay. *)
      let res =
        Diskcache.memo (uarch_one_key bench target cfg) (fun () ->
            match
              Replay.Upipelines.run
                (trace_reader bench target)
                [ cfg ] (image bench target)
            with
            | [ res ] -> res
            | _ -> assert false)
      in
      with_lock (fun () -> Hashtbl.replace uarch_tbl key res);
      res)
