(** Parallel run scheduler over OCaml 5 domains.

    A pool executes submitted thunks on [jobs] worker domains fed from a
    mutex/condition work queue.  With [jobs <= 1] nothing is spawned and
    tasks run inline, in submission order, when {!wait} is called — the
    historical serial behavior.  Determinism does not depend on the
    schedule: pool tasks only populate the keyed {!Runs} memo, and
    rendering afterwards is always serial, so parallel output is
    byte-identical to serial output.

    The job count for {!run_plan} and {!default_jobs} comes from, in
    order: the explicit [?jobs] argument, the [REPRO_JOBS] environment
    variable, then [Domain.recommended_domain_count] (capped at 16). *)

type t

val create : jobs:int -> t
val submit : t -> (unit -> unit) -> unit

val wait : t -> unit
(** Block until the queue drains and all workers are idle (or, serially,
    run every queued task now).  Re-raises the first exception any task
    raised. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Call after {!wait}. *)

val map : ?pool:t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map; the chunk-parallel trace replays
    distribute per-chunk work with this.  With [?pool] the elements run
    on that pool's existing workers (the caller keeps ownership and must
    not be waiting on it concurrently); otherwise a throwaway pool of
    [jobs] workers is spawned ([jobs] defaults to 1 = plain [List.map]).
    Re-raises the first exception any element raised. *)

val default_jobs : unit -> int

val run_plan : ?jobs:int -> Plan.t -> unit
(** Deduplicate the plan, execute every spec (parallel for [jobs > 1]),
    wait, and shut the pool down. *)
