(* Work-queue scheduler over OCaml 5 domains.

   A pool owns a queue of thunks and [jobs] worker domains blocked on a
   condition variable.  [wait] blocks the submitting thread until the
   queue drains and every worker is idle, then re-raises the first task
   exception, if any.  With [jobs <= 1] no domain is spawned: tasks run
   inline in submission order at [wait], which is exactly the historical
   serial execution. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when a task is enqueued or at shutdown *)
  idle : Condition.t;  (* signalled when the pool drains *)
  mutable active : int;
  mutable stop : bool;
  mutable errors : exn list;
  mutable domains : unit Domain.t list;
}

let record_error t e =
  Mutex.protect t.lock (fun () -> t.errors <- e :: t.errors)

let rec worker t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let task = Queue.pop t.queue in
    t.active <- t.active + 1;
    Mutex.unlock t.lock;
    (try task () with e -> record_error t e);
    Mutex.lock t.lock;
    t.active <- t.active - 1;
    if Queue.is_empty t.queue && t.active = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.lock;
    worker t
  end

let create ~jobs =
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      active = 0;
      stop = false;
      errors = [];
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t task =
  Mutex.protect t.lock (fun () ->
      Queue.push task t.queue;
      Condition.signal t.work)

let raise_pending t =
  match
    Mutex.protect t.lock (fun () ->
        let es = t.errors in
        t.errors <- [];
        es)
  with
  | [] -> ()
  | es -> raise (List.nth es (List.length es - 1))

let wait t =
  if t.jobs <= 1 then begin
    let rec drain () =
      match Mutex.protect t.lock (fun () -> Queue.take_opt t.queue) with
      | None -> ()
      | Some task ->
        (try task () with e -> record_error t e);
        drain ()
    in
    drain ()
  end
  else begin
    Mutex.lock t.lock;
    while not (Queue.is_empty t.queue && t.active = 0) do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock
  end;
  raise_pending t

let shutdown t =
  Mutex.protect t.lock (fun () ->
      t.stop <- true;
      Condition.broadcast t.work);
  List.iter Domain.join t.domains;
  t.domains <- []

let map_on t f xs =
  let arr = Array.of_list xs in
  let out = Array.make (Array.length arr) None in
  Array.iteri (fun i x -> submit t (fun () -> out.(i) <- Some (f x))) arr;
  wait t;
  Array.to_list (Array.map Option.get out)

let map ?pool ?(jobs = 1) f xs =
  match pool with
  | Some t -> map_on t f xs
  | None ->
    let jobs = max 1 (min jobs (List.length xs)) in
    if jobs <= 1 then List.map f xs
    else begin
      let t = create ~jobs in
      Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map_on t f xs)
    end

let default_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)
  | None -> min 16 (max 1 (Domain.recommended_domain_count ()))

let run_plan ?jobs plan =
  let specs = Plan.dedup plan in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  (* Capacity left over after one domain per spec goes to chunk-level
     parallelism inside each replay (a throwaway pool per replay —
     workers must not [wait] on their own pool).  Every replay engine
     runs the unified automaton, so one hook serves grid, uarch and
     fused specs alike.  With enough specs to saturate, replays run
     their chunks sequentially. *)
  let spare = jobs / max 1 (List.length specs) in
  let chunk_map =
    if spare > 1 then Some (fun f xs -> map ~jobs:spare f xs) else None
  in
  let t = create ~jobs:(min jobs (max 1 (List.length specs))) in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      List.iter
        (fun s -> submit t (fun () -> Plan.execute ?chunk_map s))
        specs;
      wait t)
