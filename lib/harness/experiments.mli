(** One driver per table and figure of the paper's evaluation.

    Each experiment regenerates the paper artifact from scratch runs
    (memoized through {!Runs} and the persistent {!Diskcache}) as a typed
    {!Artifact.t}: tables with typed cells, bar figures, and line-series
    figures.  Tests and downstream tools consume the structured artifact
    directly; {!render} / {!render_all} are the text compatibility layer
    (tables as aligned columns, bar figures as labelled ASCII bars, line
    figures as series tables).  DESIGN.md maps every id to the paper
    artifact. *)

type t = {
  id : string;  (** "fig4" ... "tab16". *)
  title : string;
  artifact : unit -> Artifact.t;  (** Computes (or replays) the artifact. *)
}

val all : t list
(** In paper order. *)

val by_id : string -> t
(** @raise Not_found for unknown ids. *)

val render : t -> string
(** [Artifact.to_text] of the computed artifact — byte-compatible with the
    pre-artifact string renderers. *)

val render_all : ?jobs:int -> unit -> string
(** Every experiment, each under a [================ id: title] banner.
    Populates the measurement caches first by executing {!Plan.full} on a
    {!Pool} ([jobs] defaults to {!Pool.default_jobs}); rendering itself is
    always serial, so the output is identical for every jobs count. *)

(* Structured accessors used by tests and the summary tables. *)

val density_ratio : string -> Repro_core.Target.t -> float
(** size(target)/size(D16) for one benchmark. *)

val pathlen_ratio : string -> Repro_core.Target.t -> float
(** ic(target)/ic(D16). *)

val suite_names : string list

val average_density : Repro_core.Target.t -> float
val average_pathlen : Repro_core.Target.t -> float

val immediate_frequencies : unit -> float * float * float
(** Table 4 on DLXe/16/2 traces: fractions of the dynamic instruction count
    that are compare-immediates, ALU immediates beyond D16's ranges, and
    memory displacements beyond D16's reach. *)

val cycle_ratio :
  string -> bus_bytes:int -> wait_states:int -> float
(** Table 11/12 entry: DLXe cycles / D16 cycles for one benchmark. *)
