(** Structured experiment artifacts.

    Every paper table and figure is produced as a typed value — tables of
    typed cells, bar charts, and line-plot series — which tests and
    downstream tools inspect numerically.  {!to_text} renders the exact
    ASCII layout the harness has always printed (captions, labelled
    sections, footnotes), so the text output is byte-for-byte stable. *)

type cell =
  | Text of string
  | Int of int
  | Float of { v : float; decimals : int }  (** ["%.*f"]. *)
  | Percent of { v : float; decimals : int; signed : bool }
      (** ["%.*f%%"], with a leading sign when [signed]. *)

val text : string -> cell
val int : int -> cell

val f2 : float -> cell
(** Two-decimal float cell. *)

val f3 : float -> cell

val pct1 : float -> cell
(** One-decimal percentage, e.g. [pct1 9.5] renders "9.5%". *)

val spct2 : float -> cell
(** Signed two-decimal percentage, e.g. "+1.05%". *)

val cell_to_string : cell -> string

val number : cell -> float option
(** The numeric value of a cell, if it has one. *)

type item =
  | Table of { header : string list; rows : cell list list }
  | Bars of { max_value : float; entries : (string * float) list }
  | Series of {
      x_label : string;
      xs : string list;
      series : (string * float list) list;
    }

type section = { label : string option; body : item }
(** A labelled section renders as "\n<label>:\n<body>". *)

type t = { caption : string; sections : section list; notes : string list }

val make : caption:string -> ?notes:string list -> section list -> t
val section : ?label:string -> item -> section
val table : ?label:string -> header:string list -> cell list list -> section
val bars : ?label:string -> max_value:float -> (string * float) list -> section

val series :
  ?label:string ->
  x_label:string ->
  xs:string list ->
  (string * float list) list ->
  section

val to_text : t -> string
(** Caption, blank-or-labelled separators, section bodies, then footnotes. *)

val items : t -> (string option * item) list

val first_table : t -> (string list * cell list list) option
(** Header and rows of the first table section, for tests. *)
