(* Persistent on-disk result cache.

   Values are marshaled to one file per key under the cache directory
   (default "_runs_cache", overridable with REPRO_CACHE_DIR or
   [set_dir]).  Keys are hex digests computed by {!key} over a list of
   string parts prefixed with the cache-format version, so any change to
   benchmark sources, target descriptions, compiler knobs, or the format
   itself changes the key and invalidates the entry.  Writes go through a
   temporary file and an atomic rename, making concurrent readers (other
   domains or processes) safe.

   Entries are checksummed: each file is a 16-byte MD5 of the marshaled
   payload followed by the payload.  Unreadable, truncated, or corrupted
   entries (Marshal would otherwise happily decode flipped bits into
   garbage values) are treated as misses and silently regenerated. *)

let format_version = "repro-runs-cache-v2"

let default_dir () =
  match Sys.getenv_opt "REPRO_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_runs_cache"

let default_enabled () = Sys.getenv_opt "REPRO_DISK_CACHE" <> Some "0"

let lock = Mutex.create ()
let dir_ref = ref (default_dir ())
let enabled_ref = ref (default_enabled ())
let hit_ref = ref 0
let miss_ref = ref 0

let with_lock f = Mutex.protect lock f
let dir () = with_lock (fun () -> !dir_ref)
let set_dir d = with_lock (fun () -> dir_ref := d)
let enabled () = with_lock (fun () -> !enabled_ref)
let set_enabled b = with_lock (fun () -> enabled_ref := b)
let hit_count () = with_lock (fun () -> !hit_ref)
let miss_count () = with_lock (fun () -> !miss_ref)

let key parts =
  Digest.to_hex
    (Digest.string (String.concat "\x00" (format_version :: parts)))

let path_of k = Filename.concat (dir ()) (k ^ ".bin")

let ensure_dir () =
  let d = dir () in
  if not (Sys.file_exists d) then
    try Sys.mkdir d 0o755 with Sys_error _ -> ()

let subdir name =
  ensure_dir ();
  let d = Filename.concat (dir ()) name in
  if not (Sys.file_exists d) then
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let find (k : string) : 'a option =
  if not (enabled ()) then None
  else
    let p = path_of k in
    let v =
      if Sys.file_exists p then
        try
          In_channel.with_open_bin p (fun ic ->
              let contents = In_channel.input_all ic in
              if String.length contents < 16 then None
              else
                let payload = String.sub contents 16 (String.length contents - 16) in
                if Digest.string payload <> String.sub contents 0 16 then None
                else Some (Marshal.from_string payload 0))
        with _ -> None
      else None
    in
    with_lock (fun () ->
        if v = None then incr miss_ref else incr hit_ref);
    v

let store (k : string) (v : 'a) =
  if enabled () then begin
    ensure_dir ();
    let p = path_of k in
    let tmp =
      Printf.sprintf "%s.tmp.%d" p (Domain.self () :> int)
    in
    try
      Out_channel.with_open_bin tmp (fun oc ->
          let payload = Marshal.to_string v [] in
          Out_channel.output_string oc (Digest.string payload);
          Out_channel.output_string oc payload);
      Sys.rename tmp p
    with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ())
  end

let memo (k : string) (compute : unit -> 'a) : 'a =
  match find k with
  | Some v -> v
  | None ->
    let v = compute () in
    store k v;
    v

let clear () =
  let d = dir () in
  if Sys.file_exists d && Sys.is_directory d then
    Array.iter
      (fun f ->
        let p = Filename.concat d f in
        try
          if Sys.is_directory p then begin
            (* One level of subdirectories (the trace store). *)
            Array.iter
              (fun g ->
                try Sys.remove (Filename.concat p g) with Sys_error _ -> ())
              (Sys.readdir p);
            Sys.rmdir p
          end
          else Sys.remove p
        with Sys_error _ -> ())
      (Sys.readdir d)
