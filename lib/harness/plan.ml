module Target = Repro_core.Target
module Suite = Repro_workloads.Suite

type kind = Stats | Grid | Uarch | Fused | Trace
type spec = { bench : string; target : Target.t; kind : kind }
type t = spec list

let specs_of kind ~benches ~targets =
  List.concat_map
    (fun bench -> List.map (fun target -> { bench; target; kind }) targets)
    benches

let stats_specs ~benches ~targets = specs_of Stats ~benches ~targets
let grid_specs ~benches ~targets = specs_of Grid ~benches ~targets
let uarch_specs ~benches ~targets = specs_of Uarch ~benches ~targets
let fused_specs ~benches ~targets = specs_of Fused ~benches ~targets
let trace_specs ~benches ~targets = specs_of Trace ~benches ~targets
let spec_id s = (s.bench, s.target.Target.name, s.kind)

let dedup plan =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun s ->
      let id = spec_id s in
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    plan

let union a b = dedup (a @ b)

(* Spec syntax: "kind:bench:target", the one spelling shared by the
   report CLI, the serve protocol, and the tests. *)

let kind_to_string = function
  | Stats -> "stats"
  | Grid -> "grid"
  | Uarch -> "uarch"
  | Fused -> "fused"
  | Trace -> "trace"

let kind_of_string = function
  | "stats" -> Ok Stats
  | "grid" -> Ok Grid
  | "uarch" -> Ok Uarch
  | "fused" -> Ok Fused
  | "trace" -> Ok Trace
  | s ->
    Error
      (Printf.sprintf
         "unknown plan kind %S (expected stats, grid, uarch, fused or trace)"
         s)

(* The canonical short spelling of a target: the first [Target.all_names]
   entry that parses back to it (aliases like dlxe-32-3 normalize to
   dlxe), falling back to the slugged full name. *)
let target_short (t : Target.t) =
  match
    List.find_opt
      (fun n ->
        match Target.of_name n with
        | Ok u -> u.Target.name = t.Target.name
        | Error _ -> false)
      Target.all_names
  with
  | Some n -> n
  | None ->
    String.lowercase_ascii
      (String.map (fun c -> if c = '/' then '-' else c) t.Target.name)

let spec_to_string s =
  Printf.sprintf "%s:%s:%s" (kind_to_string s.kind) s.bench
    (target_short s.target)

let spec_of_string w =
  match String.split_on_char ':' w with
  | [ kind; bench; target ] -> (
    match kind_of_string kind with
    | Error e -> Error e
    | Ok kind -> (
      if not (List.exists (fun b -> b.Suite.name = bench) Suite.all) then
        Error
          (Printf.sprintf "unknown benchmark %S (expected one of: %s)" bench
             (String.concat ", " (List.map (fun b -> b.Suite.name) Suite.all)))
      else
        match Target.of_name target with
        | Error e -> Error e
        | Ok target -> Ok { bench; target; kind }))
  | _ -> Error (Printf.sprintf "malformed spec %S (expected kind:bench:target)" w)

let looks_like_spec w = String.contains w ':'

let describe s =
  Printf.sprintf "%s on %s%s" s.bench s.target.Target.name
    (match s.kind with
    | Stats -> ""
    | Grid -> " (cache grid)"
    | Uarch -> " (uarch sweep)"
    | Fused -> " (fused sweep)"
    | Trace -> " (trace capture)")

let execute ?chunk_map s =
  match s.kind with
  | Stats -> ignore (Runs.stats s.bench s.target)
  | Grid -> Runs.ensure_grid ?map:chunk_map s.bench s.target
  | Uarch -> Runs.ensure_uarch ?map:chunk_map s.bench s.target
  | Fused -> Runs.ensure_fused ?map:chunk_map s.bench s.target
  | Trace -> Runs.ensure_trace s.bench s.target

let suite_names = List.map (fun b -> b.Suite.name) Suite.all

let cache_names =
  List.map (fun b -> b.Suite.name) Suite.cache_benchmarks

(* Trace captures go first: they are the only units that execute the
   machine (everything downstream replays the stored trace), and the
   cache-benchmark captures are the long poles, so under a parallel pool
   they start immediately.  The cache benchmarks then take one fused
   sweep each — a single decode feeds all 25 grid geometries plus the
   full pipeline-configuration sweep — the rest of the suite takes plain
   uarch sweeps, then stats. *)
let full () =
  let non_cache =
    List.filter (fun b -> not (List.mem b cache_names)) suite_names
  in
  (* The ISA-variant artifacts sweep the mixed-width target through the
     same plane as the paper pair; fusion counters replay the D16 traces
     the pair's units already capture. *)
  let swept = [ Target.d16; Target.dlxe; Target.d16m ] in
  union
    (trace_specs ~benches:cache_names ~targets:swept)
    (union
       (fused_specs ~benches:cache_names ~targets:swept)
       (union
          (uarch_specs ~benches:non_cache ~targets:swept)
          (union
             (stats_specs ~benches:suite_names ~targets:Target.all)
             (stats_specs ~benches:suite_names
                ~targets:[ Target.d16x; Target.d16m ]))))

let for_experiment id =
  let cache_pair = [ Target.d16; Target.dlxe ] in
  match id with
  | "fig16" | "fig17" | "fig18" | "fig19" ->
    union
      (grid_specs ~benches:cache_names ~targets:cache_pair)
      (stats_specs ~benches:cache_names ~targets:cache_pair)
  | "tab14" -> grid_specs ~benches:[ "assem" ] ~targets:cache_pair
  | "tab15" -> grid_specs ~benches:[ "ipl" ] ~targets:cache_pair
  | "tab16" -> grid_specs ~benches:[ "latex" ] ~targets:cache_pair
  | "tab13" -> stats_specs ~benches:cache_names ~targets:cache_pair
  | "xfig1" ->
    stats_specs ~benches:suite_names ~targets:[ Target.d16; Target.d16x ]
  | "utab1" | "ufig1" ->
    uarch_specs ~benches:suite_names ~targets:cache_pair
  | "pfig1" ->
    (* The Pareto frontier reads the pipeline sweep (CPI, cache traffic)
       and the suite stats (density, bus traffic); the cache benchmarks
       take the fused unit so the sweep shares the grid's decode. *)
    let non_cache =
      List.filter (fun b -> not (List.mem b cache_names)) suite_names
    in
    union
      (fused_specs ~benches:cache_names ~targets:cache_pair)
      (union
         (uarch_specs ~benches:non_cache ~targets:cache_pair)
         (stats_specs ~benches:suite_names ~targets:cache_pair))
  | "vtab1" | "vfig1" ->
    (* Variant table and scatter: full pipeline sweep for the three
       machines plus D16m; fusion replays the D16 traces in-process. *)
    let swept = [ Target.d16; Target.dlxe; Target.d16m ] in
    let non_cache =
      List.filter (fun b -> not (List.mem b cache_names)) suite_names
    in
    union
      (fused_specs ~benches:cache_names ~targets:swept)
      (union
         (uarch_specs ~benches:non_cache ~targets:swept)
         (stats_specs ~benches:suite_names ~targets:swept))
  | "tab4" | "xtab1" ->
    (* These drivers run their own traced/ablated compiles and cache the
       derived numbers directly in {!Diskcache}. *)
    []
  | _ -> stats_specs ~benches:suite_names ~targets:Target.all
