module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Link = Repro_link.Link
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Stats = Repro_util.Stats
module Opt = Repro_ir.Opt
module A = Artifact

type t = { id : string; title : string; artifact : unit -> Artifact.t }

let suite_names = Plan.suite_names
let cache_names = Plan.cache_names
let d16 = Target.d16
let dlxe = Target.dlxe
let fl = float_of_int

let density_ratio bench target =
  Stats.ratio (Runs.stats bench target).Runs.size_bytes
    (Runs.stats bench d16).Runs.size_bytes

let pathlen_ratio bench target =
  Stats.ratio (Runs.stats bench target).Runs.ic (Runs.stats bench d16).Runs.ic

let average_density target =
  Stats.mean (List.map (fun b -> density_ratio b target) suite_names)

let average_pathlen target =
  Stats.mean (List.map (fun b -> pathlen_ratio b target) suite_names)

let wait_states = [ 0; 1; 2; 3 ]
let miss_penalties = [ 4; 8; 12; 16 ]

let nocache_cycles bench target ~bus_bytes ~wait_states =
  let s = Runs.stats bench target in
  let ireq = if bus_bytes = 4 then s.Runs.ireq32 else s.Runs.ireq64 in
  let dreq = if bus_bytes = 4 then s.Runs.dreq32 else s.Runs.dreq64 in
  s.Runs.ic + s.Runs.interlocks + (wait_states * (ireq + dreq))

let cycle_ratio bench ~bus_bytes ~wait_states =
  Stats.ratio
    (nocache_cycles bench dlxe ~bus_bytes ~wait_states)
    (nocache_cycles bench d16 ~bus_bytes ~wait_states)

let cached_cycles bench target ~size ~penalty =
  let s = Runs.stats bench target in
  let c = Runs.cached bench target ~size ~block:32 ~sub:4 in
  s.Runs.ic + s.Runs.interlocks
  + penalty
    * (c.Memsys.icache.Memsys.misses
      + c.Memsys.dcache_read.Memsys.misses
      + c.Memsys.dcache_write.Memsys.misses)

(* ---- Section 3: instruction set performance ---- *)

let fig4 () =
  let entries = List.map (fun b -> (b, density_ratio b dlxe)) suite_names in
  A.make
    ~caption:"D16 relative density (static code size DLXe/D16; paper Figure 4)"
    ~notes:
      [
        Printf.sprintf "Average: %.2f  (paper: ~1.5)"
          (Stats.mean (List.map snd entries));
      ]
    [ A.bars ~max_value:2.0 entries ]

let fig5 () =
  let entries = List.map (fun b -> (b, pathlen_ratio b dlxe)) suite_names in
  A.make
    ~caption:
      "DLXe path length reduction (DLXe/D16 path lengths, D16 = 1.0; Figure 5)"
    ~notes:
      [
        Printf.sprintf "Average DLXe/D16: %.2f  (paper: ~0.87)"
          (Stats.mean (List.map snd entries));
      ]
    [ A.bars ~max_value:1.2 entries ]

let regs_table ~measure ~label () =
  let header = [ "program"; "DLXe-16reg"; "DLXe-32reg" ] in
  let rows =
    List.map
      (fun b ->
        [ A.text b; A.f2 (measure b Target.dlxe_16_3); A.f2 (measure b dlxe) ])
      suite_names
  in
  let avg t = Stats.mean (List.map (fun b -> measure b t) suite_names) in
  A.make
    ~caption:(label ^ ", relative to D16 = 1.00")
    ~notes:
      [
        Printf.sprintf "Averages: 16reg %.2f, 32reg %.2f"
          (avg Target.dlxe_16_3) (avg dlxe);
      ]
    [ A.table ~header rows ]

let fig6 () =
  regs_table ~measure:density_ratio
    ~label:"Density effects of 16 vs 32 registers (Figure 6)" ()

let fig7 () =
  regs_table ~measure:pathlen_ratio
    ~label:"Path length effects of 16 vs 32 registers (Figure 7)" ()

let data_traffic bench target =
  let s = Runs.stats bench target in
  s.Runs.load_words + s.Runs.store_words

let tab3 () =
  let rows =
    List.map
      (fun b ->
        let base = data_traffic b dlxe in
        let pct t = Stats.percent_increase ~base (data_traffic b t) in
        [ A.text b; A.f2 (pct d16); A.f2 (pct Target.dlxe_16_3) ])
      suite_names
  in
  let avg t =
    Stats.mean
      (List.map
         (fun b ->
           Stats.percent_increase ~base:(data_traffic b dlxe) (data_traffic b t))
         suite_names)
  in
  A.make
    ~caption:
      "Data traffic increase for the smaller register file (% over DLXe/32; Table 3)"
    ~notes:
      [
        Printf.sprintf "Average: D16 %.1f%%, DLXe-16 %.1f%%  (paper: 10.1%%, 9.0%%)"
          (avg d16) (avg Target.dlxe_16_3);
      ]
    [ A.table ~header:[ "program"; "D16"; "DLXe-16" ] rows ]

let addr_table ~measure ~label () =
  let header = [ "program"; "2-address"; "3-address" ] in
  let rows =
    List.map
      (fun b ->
        [ A.text b; A.f2 (measure b Target.dlxe_32_2); A.f2 (measure b dlxe) ])
      suite_names
  in
  let avg t = Stats.mean (List.map (fun b -> measure b t) suite_names) in
  A.make
    ~caption:(label ^ " (DLXe/32, relative to D16 = 1.00)")
    ~notes:
      [
        Printf.sprintf "Averages: 2-addr %.2f, 3-addr %.2f"
          (avg Target.dlxe_32_2) (avg dlxe);
      ]
    [ A.table ~header rows ]

let fig8 () =
  addr_table ~measure:density_ratio
    ~label:"Code density effects of two-address instructions (Figure 8)" ()

let fig9 () =
  addr_table ~measure:pathlen_ratio
    ~label:"Path length effects of two-address instructions (Figure 9)" ()

let fig10 () =
  let entries =
    List.map
      (fun b ->
        ( b,
          Stats.ratio (Runs.stats b d16).Runs.ic
            (Runs.stats b Target.dlxe_16_2).Runs.ic ))
      suite_names
  in
  A.make
    ~caption:
      "Speedup from DLXe immediates and offsets (DLXe/16/2 vs D16 = 1.00; Figure 10)"
    ~notes:
      [
        Printf.sprintf "Average: %.2f  (paper: ~1.10)"
          (Stats.mean (List.map snd entries));
      ]
    [ A.bars ~max_value:1.3 entries ]

(* Table 4: dynamic frequencies of DLXe/16/2 instructions that exceed D16's
   immediate capabilities.  The traced classification is expensive, so the
   triple is memoized in process and in the disk cache. *)
let immediate_frequencies_memo = ref None

let compute_immediate_frequencies () =
  let target = Target.dlxe_16_2 in
  let total = ref 0 in
  let cmpi = ref 0 in
  let alui = ref 0 in
  let disp = ref 0 in
  List.iter
    (fun bench ->
      let img = Runs.image bench target in
      let counts = Array.make (Array.length img.Link.insns) 0 in
      let on_insn ~iaddr ~dinfo:_ =
        let i = Link.index_at img iaddr in
        if i >= 0 then counts.(i) <- counts.(i) + 1
      in
      ignore (Machine.run ~trace:false ~on_insn img);
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            total := !total + n;
            match img.Link.insns.(i) with
            | Insn.Cmpi _ -> cmpi := !cmpi + n
            | Insn.Alui (op, _, _, imm) ->
              if not (Target.alui_fits d16 op imm) then alui := !alui + n
            | Insn.Mvi (_, imm) ->
              if not (Target.mvi_fits d16 imm) then alui := !alui + n
            | Insn.Mvhi _ -> alui := !alui + n
            | Insn.Load (w, _, _, off) ->
              if not (Target.mem_offset_fits d16 ~word:(w = Insn.Lw) off) then
                disp := !disp + n
            | Insn.Store (w, _, _, off) ->
              if not (Target.mem_offset_fits d16 ~word:(w = Insn.Sw) off) then
                disp := !disp + n
            | Insn.Fload (_, _, _, off) | Insn.Fstore (_, _, _, off) ->
              if not (Target.mem_offset_fits d16 ~word:true off) then
                disp := !disp + n
            | _ -> ()
          end)
        counts)
    suite_names;
  let t = fl !total in
  (fl !cmpi /. t, fl !alui /. t, fl !disp /. t)

let immediate_frequencies () =
  match !immediate_frequencies_memo with
  | Some v -> v
  | None ->
    let key =
      Diskcache.key
        ("tab4-immediate-frequencies"
        :: Target.describe Target.dlxe_16_2
        :: Runs.knobs_descr
        :: List.map Runs.bench_fingerprint suite_names)
    in
    let v = Diskcache.memo key compute_immediate_frequencies in
    immediate_frequencies_memo := Some v;
    v

let tab4 () =
  let c, a, d = immediate_frequencies () in
  A.make
    ~caption:
      "Average immediate-field instruction frequencies in DLXe/16/2 traces (Table 4)"
    [
      A.table
        ~header:[ "class"; "share"; "paper" ]
        [
          [ A.text "Compare immediate"; A.pct1 (100. *. c); A.text "2.1%" ];
          [ A.text "ALU immediate beyond D16"; A.pct1 (100. *. a); A.text "2.8%" ];
          [
            A.text "Memory displacement beyond D16"; A.pct1 (100. *. d);
            A.text "4.6%";
          ];
          [ A.text "Total"; A.pct1 (100. *. (c +. a +. d)); A.text "9.5%" ];
        ];
    ]

let variant_targets =
  [ Target.dlxe_16_2; Target.dlxe_16_3; Target.dlxe_32_2; dlxe ]

let summary_table ~measure ~label () =
  let header =
    "program" :: "D16" :: List.map (fun t -> t.Target.name) variant_targets
  in
  let rows =
    List.map
      (fun b ->
        A.text b :: A.f2 1.0
        :: List.map (fun t -> A.f2 (measure b t)) variant_targets)
      suite_names
  in
  let avgs =
    A.text "Average" :: A.f2 1.0
    :: List.map
         (fun t ->
           A.f2 (Stats.mean (List.map (fun b -> measure b t) suite_names)))
         variant_targets
  in
  A.make ~caption:label [ A.table ~header (rows @ [ avgs ]) ]

let fig11 () =
  summary_table ~measure:density_ratio
    ~label:"Code density summary, ratios DLXe/D16 (Figure 11)" ()

let fig12 () =
  summary_table ~measure:pathlen_ratio
    ~label:"Path length summary, ratios DLXe/D16 (Figure 12)" ()

let tab5 () =
  let avg m t = Stats.mean (List.map (fun b -> m b t) suite_names) in
  let quadrant m =
    [
      [
        A.text "16 registers";
        A.f2 (avg m Target.dlxe_16_2);
        A.f2 (avg m Target.dlxe_16_3);
      ];
      [
        A.text "32 registers";
        A.f2 (avg m Target.dlxe_32_2);
        A.f2 (avg m dlxe);
      ];
    ]
  in
  A.make ~caption:"Summary of density and path length effects (Table 5)"
    [
      A.table
        ~header:[ "Code size (D16=1.00)"; "Two-Address"; "Three-Address" ]
        (quadrant density_ratio);
      A.table
        ~header:[ "Path length (D16=1.00)"; "Two-Address"; "Three-Address" ]
        (quadrant pathlen_ratio);
    ]

let fig13 () =
  let rows =
    List.map
      (fun b ->
        let traffic =
          Stats.ratio (Runs.stats b dlxe).Runs.ireq32
            (Runs.stats b d16).Runs.ireq32
        in
        [ A.text b; A.f2 traffic; A.f2 (density_ratio b dlxe) ])
      suite_names
  in
  A.make
    ~caption:
      "Instruction traffic vs code size, DLXe/D16 (uniformity check; Figure 13)"
    [ A.table ~header:[ "program"; "traffic ratio"; "static size ratio" ] rows ]

(* ---- Section 4: memory performance ---- *)

let fig14 () =
  let series bus =
    let dlxe_cpi l =
      Stats.mean
        (List.map
           (fun b ->
             Memsys.cpi
               ~cycles:(nocache_cycles b dlxe ~bus_bytes:bus ~wait_states:l)
               ~ic:(Runs.stats b dlxe).Runs.ic)
           suite_names)
    in
    let d16_cpi l =
      Stats.mean
        (List.map
           (fun b ->
             Memsys.cpi
               ~cycles:(nocache_cycles b d16 ~bus_bytes:bus ~wait_states:l)
               ~ic:(Runs.stats b d16).Runs.ic)
           suite_names)
    in
    let d16_norm l =
      Stats.mean
        (List.map
           (fun b ->
             Memsys.normalized_cpi
               ~cycles:(nocache_cycles b d16 ~bus_bytes:bus ~wait_states:l)
               ~reference_ic:(Runs.stats b dlxe).Runs.ic)
           suite_names)
    in
    [
      (Printf.sprintf "DLXe k=%d" (bus / 4), List.map dlxe_cpi wait_states);
      (Printf.sprintf "D16 k=%d" (bus / 2), List.map d16_cpi wait_states);
      ("D16 normalized", List.map d16_norm wait_states);
    ]
  in
  let xs = List.map string_of_int wait_states in
  A.make ~caption:"Normalized CPI, no cache (Figure 14)"
    [
      A.series ~label:"32-bit fetch" ~x_label:"wait states" ~xs (series 4);
      A.series ~label:"64-bit fetch" ~x_label:"wait states" ~xs (series 8);
    ]

let fig15 () =
  let series bus =
    let f t l =
      Stats.mean
        (List.map
           (fun b ->
             let s = Runs.stats b t in
             let ireq = if bus = 4 then s.Runs.ireq32 else s.Runs.ireq64 in
             fl ireq /. fl (nocache_cycles b t ~bus_bytes:bus ~wait_states:l))
           suite_names)
    in
    [
      ("DLXe", List.map (f dlxe) wait_states);
      ("D16", List.map (f d16) wait_states);
    ]
  in
  let xs = List.map string_of_int wait_states in
  A.make
    ~caption:
      "Instruction fetch saturation, requests/cycle, no cache (Figure 15)"
    [
      A.series ~label:"32-bit fetch" ~x_label:"wait states" ~xs (series 4);
      A.series ~label:"64-bit fetch" ~x_label:"wait states" ~xs (series 8);
    ]

let fig16 () =
  A.make
    ~caption:
      "Instruction cache miss rates vs cache size (32B blocks, 4B sub-blocks; Figure 16)"
    (List.map
       (fun b ->
         let rows =
           List.map
             (fun size ->
               let rate t =
                 let c = Runs.cached b t ~size ~block:32 ~sub:4 in
                 Memsys.miss_rate c.Memsys.icache
               in
               [
                 A.text (Printf.sprintf "%dK" (size / 1024));
                 A.f3 (rate d16);
                 A.f3 (rate dlxe);
               ])
             Runs.standard_cache_sizes
         in
         A.table ~label:b ~header:[ "size"; "D16"; "DLXe" ] rows)
       cache_names)

let cpi_vs_penalty ~size () =
  let xs = List.map string_of_int miss_penalties in
  A.make
    ~caption:
      (Printf.sprintf
         "CPI vs miss penalty, %dK instruction and data caches (Figure %s)"
         (size / 1024)
         (if size = 4096 then "17" else "18"))
    (List.map
       (fun b ->
         let cpi t p =
           Memsys.cpi
             ~cycles:(cached_cycles b t ~size ~penalty:p)
             ~ic:(Runs.stats b t).Runs.ic
         in
         let norm p =
           Memsys.normalized_cpi
             ~cycles:(cached_cycles b d16 ~size ~penalty:p)
             ~reference_ic:(Runs.stats b dlxe).Runs.ic
         in
         A.series ~label:b ~x_label:"penalty" ~xs
           [
             ("DLXe", List.map (cpi dlxe) miss_penalties);
             ("D16", List.map (cpi d16) miss_penalties);
             ("D16 normalized", List.map norm miss_penalties);
           ])
       cache_names)

let fig17 () = cpi_vs_penalty ~size:4096 ()
let fig18 () = cpi_vs_penalty ~size:16384 ()

let fig19 () =
  A.make
    ~caption:
      "Instruction traffic (words/cycle) with instruction cache, miss penalty 4 (Figure 19)"
    (List.map
       (fun b ->
         let rows =
           List.map
             (fun size ->
               let wpc t =
                 let c = Runs.cached b t ~size ~block:32 ~sub:4 in
                 let cyc = cached_cycles b t ~size ~penalty:4 in
                 fl c.Memsys.icache.Memsys.words_transferred /. fl cyc
               in
               [
                 A.text (Printf.sprintf "%dK" (size / 1024));
                 A.f3 (wpc d16);
                 A.f3 (wpc dlxe);
               ])
             Runs.standard_cache_sizes
         in
         A.table ~label:b ~header:[ "size"; "D16"; "DLXe" ] rows)
       cache_names)

(* ---- Appendix tables ---- *)

let tab6 () =
  let header =
    "program" :: "D16" :: List.map (fun t -> t.Target.name) variant_targets
  in
  let rows =
    List.map
      (fun b ->
        A.text b
        :: A.int (Runs.stats b d16).Runs.size_bytes
        :: List.map
             (fun t -> A.int (Runs.stats b t).Runs.size_bytes)
             variant_targets)
      suite_names
  in
  A.make ~caption:"Code size in bytes (Table 6)"
    ~notes:
      [
        Printf.sprintf "Relative density averages: %s"
          (String.concat ", "
             (List.map
                (fun t ->
                  Printf.sprintf "%s %.2f" t.Target.name (average_density t))
                variant_targets));
      ]
    [ A.table ~header rows ]

let tab7 () =
  let header =
    "program" :: "D16" :: List.map (fun t -> t.Target.name) variant_targets
  in
  let rows =
    List.map
      (fun b ->
        A.text b
        :: A.int (Runs.stats b d16).Runs.ic
        :: List.map (fun t -> A.int (Runs.stats b t).Runs.ic) variant_targets)
      suite_names
  in
  A.make ~caption:"Path lengths (Table 7)"
    ~notes:
      [
        Printf.sprintf "Path length averages (DLXe/D16): %s"
          (String.concat ", "
             (List.map
                (fun t ->
                  Printf.sprintf "%s %.2f" t.Target.name (average_pathlen t))
                variant_targets));
      ]
    [ A.table ~header rows ]

let tab8 () =
  let rows =
    List.map
      (fun b ->
        let s16 = Runs.stats b d16 in
        let s32 = Runs.stats b dlxe in
        let pct = 100. *. (1. -. (fl s16.Runs.ireq32 /. fl s32.Runs.ireq32)) in
        [
          A.text b;
          A.int s16.Runs.ic;
          A.int s32.Runs.ic;
          A.int s16.Runs.ireq32;
          A.int s32.Runs.ireq32;
          A.f2 pct;
        ])
      suite_names
  in
  A.make
    ~caption:"Path length and instruction traffic in 32-bit words (Table 8)"
    [
      A.table
        ~header:
          [ "program"; "D16 path"; "DLXe path"; "D16 words"; "DLXe words"; "%" ]
        rows;
    ]

let tab9 () =
  let rows =
    List.map
      (fun b ->
        let m t =
          let s = Runs.stats b t in
          s.Runs.loads + s.Runs.stores
        in
        let d = m d16 and x = m dlxe in
        [
          A.text b;
          A.int d;
          A.int x;
          A.f2 (Stats.percent_increase ~base:x d);
        ])
      suite_names
  in
  A.make
    ~caption:"Total loads and stores (Table 9; %% is D16 increase over DLXe)"
    [ A.table ~header:[ "program"; "D16"; "DLXe"; "%" ] rows ]

let tab10 () =
  let rows =
    List.map
      (fun b ->
        let s16 = Runs.stats b d16 in
        let s32 = Runs.stats b dlxe in
        [
          A.text b;
          A.int s16.Runs.ic;
          A.int s16.Runs.interlocks;
          A.f3 (fl s16.Runs.interlocks /. fl s16.Runs.ic);
          A.int s32.Runs.ic;
          A.int s32.Runs.interlocks;
          A.f3 (fl s32.Runs.interlocks /. fl s32.Runs.ic);
        ])
      suite_names
  in
  A.make ~caption:"Delayed load and math unit interlocks (Table 10)"
    [
      A.table
        ~header:
          [
            "program"; "D16 insns"; "D16 locks"; "rate"; "DLXe insns";
            "DLXe locks"; "rate";
          ]
        rows;
    ]

let cycles_table ~bus_bytes ~label () =
  let rows =
    List.map
      (fun b ->
        A.text b
        :: List.map
             (fun l -> A.f2 (cycle_ratio b ~bus_bytes ~wait_states:l))
             wait_states)
      suite_names
  in
  let avgs =
    A.text "Mean"
    :: List.map
         (fun l ->
           A.f2
             (Stats.mean
                (List.map
                   (fun b -> cycle_ratio b ~bus_bytes ~wait_states:l)
                   suite_names)))
         wait_states
  in
  A.make ~caption:label
    [
      A.table
        ~header:[ "program"; "l=0"; "l=1"; "l=2"; "l=3" ]
        (rows @ [ avgs ]);
    ]

let tab11 () =
  cycles_table ~bus_bytes:4
    ~label:"DLXe/D16 performance, 32-bit fetch bus, no cache (Table 11)" ()

let tab12 () =
  cycles_table ~bus_bytes:8
    ~label:"DLXe/D16 cycles, 64-bit fetch bus, no cache (Table 12)" ()

let tab13 () =
  let rows =
    List.concat_map
      (fun b ->
        List.map
          (fun t ->
            let s = Runs.stats b t in
            [
              A.text b;
              A.text t.Target.name;
              A.int s.Runs.ic;
              A.f3 (fl s.Runs.interlocks /. fl s.Runs.ic);
              A.int s.Runs.ireq32;
              A.int s.Runs.loads;
              A.int s.Runs.stores;
            ])
          [ d16; dlxe ])
      cache_names
  in
  A.make ~caption:"Traffic and interlocks for the cache benchmarks (Table 13)"
    [
      A.table
        ~header:
          [
            "program"; "ISA"; "insns"; "lock rate"; "ifetches"; "reads";
            "writes";
          ]
        rows;
    ]

let miss_grid bench =
  List.concat_map
    (fun size ->
      List.map
        (fun block ->
          let sub = min 8 block in
          let c16 = Runs.cached bench d16 ~size ~block ~sub in
          let c32 = Runs.cached bench dlxe ~size ~block ~sub in
          [
            A.text (Printf.sprintf "%dk" (size / 1024));
            A.int block;
            A.f3 (Memsys.miss_rate c16.Memsys.icache);
            A.f3 (Memsys.miss_rate c32.Memsys.icache);
            A.f3 (Memsys.miss_rate c16.Memsys.dcache_read);
            A.f3 (Memsys.miss_rate c32.Memsys.dcache_read);
            A.f3 (Memsys.miss_rate c16.Memsys.dcache_write);
            A.f3 (Memsys.miss_rate c32.Memsys.dcache_write);
          ])
        Runs.standard_blocks)
    Runs.standard_cache_sizes

let miss_grid_header =
  [ "size"; "block"; "I D16"; "I DLXe"; "R D16"; "R DLXe"; "W D16"; "W DLXe" ]

let tab14 () =
  A.make ~caption:"Cache miss rates for assem (Table 14)"
    [ A.table ~header:miss_grid_header (miss_grid "assem") ]

let tab15 () =
  A.make ~caption:"Cache miss rates for ipl (Table 15)"
    [ A.table ~header:miss_grid_header (miss_grid "ipl") ]

let tab16 () =
  A.make ~caption:"Cache miss rates for latex (Table 16)"
    [ A.table ~header:miss_grid_header (miss_grid "latex") ]

(* ---- Cycle-accurate pipeline-model studies (lib/uarch) ---- *)

module Stalls = Repro_uarch.Stalls
module Uconfig = Repro_uarch.Uconfig

let uarch_nocache bench target ~bus_bytes ~wait_states =
  (Runs.uarch bench target (Uconfig.nocache ~bus_bytes ~wait_states))
    .Repro_uarch.Pipeline.stalls

let uarch_cached bench target ~size =
  let cfg = Memsys.cache_config ~size ~block:32 ~sub:4 in
  (Runs.uarch bench target
     (Uconfig.cached ~icache:cfg ~dcache:cfg ~miss_penalty:8))
    .Repro_uarch.Pipeline.stalls

let utab1 () =
  let header =
    [
      "program"; "machine"; "cycles"; "fetch"; "load"; "fp"; "dread"; "dwrite";
      "CPI";
    ]
  in
  let rows stalls_of =
    List.concat_map
      (fun b ->
        List.map
          (fun (t : Target.t) ->
            let u : Stalls.t = stalls_of b t in
            [
              A.text b;
              A.text t.Target.name;
              A.int u.Stalls.cycles;
              A.int u.Stalls.fetch_stalls;
              A.int u.Stalls.load_interlocks;
              A.int u.Stalls.fp_interlocks;
              A.int u.Stalls.dmiss_stalls;
              A.int u.Stalls.wmiss_stalls;
              A.f2 (Stalls.cpi u);
            ])
          [ d16; dlxe ])
      suite_names
  in
  A.make
    ~caption:"EXTENSION: pipeline-model stall breakdown, D16 vs DLXe"
    ~notes:
      [
        "Cacheless dread/dwrite are data bus wait cycles; cached are miss penalties.";
        "Every row satisfies cycles = IC + fetch + load + fp + dread + dwrite.";
      ]
    [
      A.table ~label:"no cache, 32-bit bus, 1 wait state" ~header
        (rows (fun b t -> uarch_nocache b t ~bus_bytes:4 ~wait_states:1));
      A.table ~label:"4K split caches, 32B blocks, 4B sub-blocks, penalty 8"
        ~header
        (rows (fun b t -> uarch_cached b t ~size:4096));
    ]

let ufig1 () =
  let xs = List.map string_of_int wait_states in
  let lines (t : Target.t) =
    let avg component =
      List.map
        (fun l ->
          Stats.mean
            (List.map
               (fun b ->
                 let u = uarch_nocache b t ~bus_bytes:4 ~wait_states:l in
                 fl (component u) /. fl u.Stalls.ic)
               suite_names))
        wait_states
    in
    [
      ("base", avg (fun u -> u.Stalls.ic));
      ("+fetch", avg (fun u -> u.Stalls.ic + u.Stalls.fetch_stalls));
      ( "+interlock",
        avg (fun u -> u.Stalls.ic + u.Stalls.fetch_stalls + Stalls.interlocks u)
      );
      ("+data", avg (fun u -> u.Stalls.cycles));
    ]
  in
  A.make
    ~caption:
      "EXTENSION: CPI decomposition vs wait states, no cache, 32-bit bus \
       (cumulative components, suite average)"
    [
      A.series ~label:"D16" ~x_label:"wait states" ~xs (lines d16);
      A.series ~label:"DLXe" ~x_label:"wait states" ~xs (lines dlxe);
    ]

(* The fused-sweep flagship: the paper's central trade-off as one
   design-space scatter.  Every point is (encoding, memory configuration)
   from the standard pipeline sweep; the three objectives are static code
   size (suite-average, relative to D16), suite-average CPI from the
   cycle-accurate model, and suite-average memory traffic per executed
   instruction.  Cacheless traffic is bus transactions x bus width from
   the measured request counts; cached traffic is the modeled fill
   traffic — 4 bytes per i-fetch word transferred plus one d-cache
   sub-block fill per miss (write-validate, no write-back, matching the
   paper's memory model).  All pipeline numbers come through
   {!Runs.uarch}, whose sweep the Fused plan kind populates from a
   single decode per (benchmark, target). *)
let pfig1 () =
  let traffic_per_insn b (t : Target.t) cfg =
    let s = Runs.stats b t in
    match cfg with
    | Uconfig.Nocache { bus_bytes; _ } ->
      let ireq = if bus_bytes = 4 then s.Runs.ireq32 else s.Runs.ireq64 in
      let dreq = if bus_bytes = 4 then s.Runs.dreq32 else s.Runs.dreq64 in
      fl (bus_bytes * (ireq + dreq)) /. fl s.Runs.ic
    | Uconfig.Cached { dcache; _ } -> (
      match (Runs.uarch b t cfg).Repro_uarch.Pipeline.caches with
      | None -> assert false
      | Some c ->
        fl
          ((4 * c.Memsys.icache.Memsys.words_transferred)
          + dcache.Memsys.sub_block_bytes
            * (c.Memsys.dcache_read.Memsys.misses
              + c.Memsys.dcache_write.Memsys.misses))
        /. fl s.Runs.ic)
  in
  let points =
    List.concat_map
      (fun (t : Target.t) ->
        List.map
          (fun cfg ->
            let cpi =
              Stats.mean
                (List.map
                   (fun b ->
                     Stalls.cpi (Runs.uarch b t cfg).Repro_uarch.Pipeline.stalls)
                   suite_names)
            in
            let traffic =
              Stats.mean
                (List.map (fun b -> traffic_per_insn b t cfg) suite_names)
            in
            (t, cfg, average_density t, cpi, traffic))
          Runs.standard_uarch_configs)
      [ d16; dlxe ]
  in
  let dominates (_, _, d1, c1, t1) (_, _, d2, c2, t2) =
    d1 <= d2 && c1 <= c2 && t1 <= t2 && (d1 < d2 || c1 < c2 || t1 < t2)
  in
  let pareto =
    List.filter
      (fun p -> not (List.exists (fun q -> dominates q p) points))
      points
  in
  let rows =
    List.map
      (fun ((t : Target.t), cfg, d, c, tr as p) ->
        [
          A.text t.Target.name;
          A.text (Uconfig.describe cfg);
          A.f2 d;
          A.f2 c;
          A.f2 tr;
          A.text (if List.memq p pareto then "*" else "");
        ])
      points
  in
  A.make
    ~caption:
      "EXTENSION: encoding x memory-system design space — code size vs CPI \
       vs memory traffic (suite averages; * = Pareto-minimal)"
    ~notes:
      [
        Printf.sprintf "%d of %d points are Pareto-minimal."
          (List.length pareto) (List.length points);
        "Cached traffic is modeled fill traffic: 4 B per fetched i-word plus \
         one d-cache sub-block per miss.";
      ]
    [
      A.table
        ~header:[ "target"; "memory config"; "size"; "CPI"; "B/insn"; "pareto" ]
        rows;
    ]

(* ---- ISA variants (lib/isavar): macro-op fusion and mixed widths ---- *)

module Fusion = Repro_isavar.Fusion

let d16m = Target.d16m

(* Fusion counters always come from the D16 trace: the pass recovers path
   length inside the decoder without touching the encoding, so size and
   fetch-traffic numbers are D16's own. *)
let fused_stalls b cfg = Fusion.charge (Runs.fusion b d16) (Runs.uarch b d16 cfg)

let vtab1 () =
  let cfg = Uconfig.nocache ~bus_bytes:4 ~wait_states:1 in
  let header =
    [ "program"; "machine"; "bytes"; "ops"; "ifetch32"; "cycles"; "CPI" ]
  in
  let plain b (t : Target.t) =
    let s = Runs.stats b t in
    let u = (Runs.uarch b t cfg).Repro_uarch.Pipeline.stalls in
    [
      A.text b; A.text t.Target.name; A.int s.Runs.size_bytes; A.int s.Runs.ic;
      A.int s.Runs.ireq32; A.int u.Stalls.cycles; A.f2 (Stalls.cpi u);
    ]
  in
  let fused b =
    let s = Runs.stats b d16 in
    let u = fused_stalls b cfg in
    [
      A.text b; A.text "D16+fusion"; A.int s.Runs.size_bytes; A.int u.Stalls.ic;
      A.int s.Runs.ireq32; A.int u.Stalls.cycles; A.f2 (Stalls.cpi u);
    ]
  in
  let rows =
    List.concat_map
      (fun b -> [ plain b d16; fused b; plain b d16m; plain b dlxe ])
      suite_names
  in
  let fused_ratio b =
    Stats.ratio (Fusion.dynamic_ops (Runs.fusion b d16)) (Runs.stats b d16).Runs.ic
  in
  let strictly_lower =
    List.for_all
      (fun b ->
        Fusion.dynamic_ops (Runs.fusion b d16) < (Runs.stats b d16).Runs.ic)
      suite_names
  in
  let rule_totals =
    let names = List.map (fun r -> r.Fusion.name) Fusion.default_rules in
    let totals = Array.make (List.length names) 0 in
    List.iter
      (fun b ->
        Array.iteri
          (fun i n -> totals.(i) <- totals.(i) + n)
          (Runs.fusion b d16).Fusion.rule_hits)
      suite_names;
    String.concat ", "
      (List.mapi (fun i n -> Printf.sprintf "%s %d" n totals.(i)) names)
  in
  A.make
    ~caption:
      "EXTENSION: ISA-variant comparison — D16, fused D16, mixed-width D16m, \
       DLXe (no cache, 32-bit bus, 1 wait state)"
    ~notes:
      [
        Printf.sprintf
          "Fused path length / D16: %.3f average; strictly lower on every \
           benchmark: %s"
          (Stats.mean (List.map fused_ratio suite_names))
          (if strictly_lower then "yes" else "NO");
        Printf.sprintf "Suite fusion pairs by rule: %s" rule_totals;
        Printf.sprintf
          "D16m density %.2f, path %.2f (DLXe: %.2f, %.2f; D16 = 1.00)"
          (average_density d16m) (average_pathlen d16m) (average_density dlxe)
          (average_pathlen dlxe);
        "Fusion leaves size and fetch traffic at D16's numbers; D16m trades \
         density for DLXe-style three-address path length.";
      ]
    [ A.table ~header rows ]

let vfig1 () =
  let variants =
    [
      ("D16", average_density d16, fun b cfg ->
        (Runs.uarch b d16 cfg).Repro_uarch.Pipeline.stalls);
      ("D16+fusion", average_density d16, fused_stalls);
      ("D16m", average_density d16m, fun b cfg ->
        (Runs.uarch b d16m cfg).Repro_uarch.Pipeline.stalls);
      ("DLXe", average_density dlxe, fun b cfg ->
        (Runs.uarch b dlxe cfg).Repro_uarch.Pipeline.stalls);
    ]
  in
  (* Per-op CPI is misleading across variants that do the same work in
     different op counts (fusion shrinks the denominator), so the Pareto
     axis is the paper's normalized CPI: cycles per DLXe instruction of
     work, as in fig14. *)
  let points =
    List.concat_map
      (fun (name, density, stalls_of) ->
        List.map
          (fun cfg ->
            let per b =
              let u = stalls_of b cfg in
              ( Stalls.cpi u,
                Memsys.normalized_cpi ~cycles:u.Stalls.cycles
                  ~reference_ic:(Runs.stats b dlxe).Runs.ic )
            in
            let samples = List.map per suite_names in
            let cpi = Stats.mean (List.map fst samples) in
            let ncpi = Stats.mean (List.map snd samples) in
            (name, cfg, density, cpi, ncpi))
          Runs.standard_uarch_configs)
      variants
  in
  let dominates (_, _, d1, _, n1) (_, _, d2, _, n2) =
    d1 <= d2 && n1 <= n2 && (d1 < d2 || n1 < n2)
  in
  let pareto =
    List.filter
      (fun p -> not (List.exists (fun q -> dominates q p) points))
      points
  in
  let rows =
    List.map
      (fun ((name, cfg, d, c, n) as p) ->
        [
          A.text name;
          A.text (Uconfig.describe cfg);
          A.f2 d;
          A.f2 c;
          A.f2 n;
          A.text (if List.memq p pareto then "*" else "");
        ])
      points
  in
  A.make
    ~caption:
      "EXTENSION: density x CPI scatter across ISA variants and memory \
       configurations (suite averages; * = Pareto-minimal on size x nCPI)"
    ~notes:
      [
        Printf.sprintf "%d of %d points are Pareto-minimal."
          (List.length pareto) (List.length points);
        "nCPI is cycles per DLXe instruction of work (fig14's \
         normalization), comparable across variants; CPI is cycles per \
         the variant's own issued op.  Fused-D16 keeps D16's density.  \
         Extends pfig1's frontier with the lib/isavar variants.";
      ]
    [
      A.table
        ~header:[ "variant"; "memory config"; "size"; "CPI"; "nCPI"; "pareto" ]
        rows;
    ]

(* ---- Extensions beyond the paper's published artifacts ---- *)

(* The Section 3.3.3 extension: D16 with an 8-bit compare-equal immediate
   (and a correspondingly narrowed 8-bit mvi).  The paper predicts "up to
   2 percent" path-length improvement. *)
let xfig1 () =
  let rows =
    List.map
      (fun b ->
        let s16 = Runs.stats b d16 in
        let sx = Runs.stats b Target.d16x in
        [
          A.text b;
          A.int s16.Runs.ic;
          A.int sx.Runs.ic;
          A.spct2 (100. *. (1. -. (fl sx.Runs.ic /. fl s16.Runs.ic)));
          A.int s16.Runs.size_bytes;
          A.int sx.Runs.size_bytes;
        ])
      suite_names
  in
  let avg =
    Stats.mean
      (List.map
         (fun b ->
           100.
           *. (1.
              -. fl (Runs.stats b Target.d16x).Runs.ic
                 /. fl (Runs.stats b d16).Runs.ic))
         suite_names)
  in
  A.make
    ~caption:
      "EXTENSION: D16x = D16 + 8-bit compare-equal immediate (paper Section 3.3.3)"
    ~notes:
      [
        Printf.sprintf
          "Average speedup: %+.2f%%  (paper's prediction: up to 2%%)" avg;
      ]
    [
      A.table
        ~header:
          [ "program"; "D16 path"; "D16x path"; "speedup"; "D16 B"; "D16x B" ]
        rows;
    ]

(* Ablation study over the compiler's design choices (DESIGN.md): what each
   optimization is worth, per encoding, on representative programs.  The
   ablated compiles bypass {!Runs}, so the measured ratios are disk-cached
   here with the same key discipline. *)
let ablation_programs = [ "queens"; "grep"; "towers"; "whetstone" ]

let ablations : (string * Compile.ablation) list =
  let base = Compile.no_ablation in
  [
    ("full", base);
    ("no-licm", { base with opt_flags = { Opt.all_flags with do_licm = false } });
    ("no-cse", { base with opt_flags = { Opt.all_flags with cse = false } });
    ("no-strength", { base with opt_flags = { Opt.all_flags with strength = false } });
    ("no-fold", { base with opt_flags = { Opt.all_flags with fold = false } });
    ("no-slot-fill", { base with fill_delay_slots = false });
    ("no-opt", { Compile.opt_flags = Opt.no_flags; fill_delay_slots = false; schedule_loads = false });
  ]

let xtab1_memo = ref None

(* Path-length ratios per target: (target name, (ablation name, ratio per
   program) list) list. *)
let compute_xtab1 () : (string * (string * float list) list) list =
  List.map
    (fun (t : Target.t) ->
      let baseline =
        List.map
          (fun b ->
            let _, r =
              Compile.compile_and_run ~trace:false t (Suite.find b).Suite.source
            in
            (b, r.Machine.ic))
          ablation_programs
      in
      let rows =
        List.map
          (fun (name, ab) ->
            ( name,
              List.map
                (fun (b, base_ic) ->
                  let _, r =
                    Compile.compile_and_run ~ablation:ab ~trace:false t
                      (Suite.find b).Suite.source
                  in
                  fl r.Machine.ic /. fl base_ic)
                baseline ))
          ablations
      in
      (t.Target.name, rows))
    [ d16; dlxe ]

let xtab1 () =
  let data =
    match !xtab1_memo with
    | Some d -> d
    | None ->
      let key =
        Diskcache.key
          (("xtab1-ablation" :: Runs.knobs_descr
            :: List.map Target.describe [ d16; dlxe ])
          @ List.map Runs.bench_fingerprint ablation_programs
          @ List.map
              (fun (name, ab) -> name ^ "=" ^ Compile.describe_ablation ab)
              ablations)
      in
      let d = Diskcache.memo key compute_xtab1 in
      xtab1_memo := Some d;
      d
  in
  A.make
    ~caption:
      "EXTENSION: compiler ablation (path-length ratio vs the full compiler)"
    (List.map
       (fun (target_name, rows) ->
         A.table ~label:target_name
           ~header:("ablation" :: ablation_programs)
           (List.map
              (fun (name, ratios) -> A.text name :: List.map A.f2 ratios)
              rows))
       data)

let all =
  [
    { id = "fig4"; title = "D16 relative density"; artifact = fig4 };
    { id = "fig5"; title = "DLXe path length reduction"; artifact = fig5 };
    { id = "fig6"; title = "Density effects of 16 vs 32 registers"; artifact = fig6 };
    { id = "fig7"; title = "Path length effects, 16 vs 32 registers"; artifact = fig7 };
    { id = "tab3"; title = "Data traffic increase, smaller register file"; artifact = tab3 };
    { id = "fig8"; title = "Code density effects, two-address"; artifact = fig8 };
    { id = "fig9"; title = "Path length effects, two-address"; artifact = fig9 };
    { id = "fig10"; title = "Effect of large immediates on path lengths"; artifact = fig10 };
    { id = "tab4"; title = "Immediate-field instruction frequencies"; artifact = tab4 };
    { id = "fig11"; title = "Code density summary"; artifact = fig11 };
    { id = "fig12"; title = "Path length summary"; artifact = fig12 };
    { id = "tab5"; title = "Summary of density and path length effects"; artifact = tab5 };
    { id = "fig13"; title = "Instruction traffic vs density"; artifact = fig13 };
    { id = "fig14"; title = "Normalized CPI, no cache"; artifact = fig14 };
    { id = "fig15"; title = "Instruction fetch saturation"; artifact = fig15 };
    { id = "fig16"; title = "Instruction cache miss rates"; artifact = fig16 };
    { id = "fig17"; title = "Performance with 4K caches"; artifact = fig17 };
    { id = "fig18"; title = "Performance with 16K caches"; artifact = fig18 };
    { id = "fig19"; title = "Instruction traffic with cache"; artifact = fig19 };
    { id = "tab6"; title = "Code size summary"; artifact = tab6 };
    { id = "tab7"; title = "Path length summary"; artifact = tab7 };
    { id = "tab8"; title = "Path length and instruction traffic"; artifact = tab8 };
    { id = "tab9"; title = "Total loads and stores"; artifact = tab9 };
    { id = "tab10"; title = "Interlocks"; artifact = tab10 };
    { id = "tab11"; title = "DLXe/D16 cycles, 32-bit bus"; artifact = tab11 };
    { id = "tab12"; title = "DLXe/D16 cycles, 64-bit bus"; artifact = tab12 };
    { id = "tab13"; title = "Traffic and interlocks, cache benchmarks"; artifact = tab13 };
    { id = "tab14"; title = "Cache miss rates for assem"; artifact = tab14 };
    { id = "tab15"; title = "Cache miss rates for ipl"; artifact = tab15 };
    { id = "tab16"; title = "Cache miss rates for latex"; artifact = tab16 };
    { id = "xfig1"; title = "EXT: D16x compare-equal-immediate extension"; artifact = xfig1 };
    { id = "xtab1"; title = "EXT: compiler ablation study"; artifact = xtab1 };
    { id = "utab1"; title = "EXT: pipeline-model stall breakdown"; artifact = utab1 };
    { id = "ufig1"; title = "EXT: CPI decomposition vs wait states"; artifact = ufig1 };
    { id = "pfig1"; title = "EXT: density/CPI/traffic Pareto frontier"; artifact = pfig1 };
    { id = "vtab1"; title = "EXT: ISA-variant comparison (fusion, D16m)"; artifact = vtab1 };
    { id = "vfig1"; title = "EXT: density x CPI scatter with ISA variants"; artifact = vfig1 };
  ]

let by_id id = List.find (fun e -> e.id = id) all

let render e = Artifact.to_text (e.artifact ())

let render_all ?jobs () =
  Pool.run_plan ?jobs (Plan.full ());
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "================ %s: %s ================\n%s" e.id
           e.title (render e))
       all)
