module Parser = Repro_minic.Parser
module Lexer = Repro_minic.Lexer
module Lower = Repro_ir.Lower
module Opt = Repro_ir.Opt
module Regalloc = Repro_ir.Regalloc
module Irprep = Repro_codegen.Irprep
module Select = Repro_codegen.Select
module Sched = Repro_codegen.Sched
module Link = Repro_link.Link
module Machine = Repro_sim.Machine

exception Compile_error of string

let wrap f =
  try f () with
  | Lexer.Error m | Parser.Error m | Lower.Error m ->
    raise (Compile_error m)
  | Regalloc.Spill_failure m -> raise (Compile_error m)
  | Link.Link_error m -> raise (Compile_error ("link: " ^ m))
  | Failure m -> raise (Compile_error m)
  | Invalid_argument m -> raise (Compile_error ("invalid: " ^ m))

type ablation = {
  opt_flags : Opt.flags;
  fill_delay_slots : bool;
  schedule_loads : bool;
}

let no_ablation =
  { opt_flags = Opt.all_flags; fill_delay_slots = true; schedule_loads = true }

let describe_ablation a =
  Printf.sprintf
    "fold=%b;cse=%b;dce=%b;licm=%b;strength=%b;fill_delay_slots=%b;schedule_loads=%b"
    a.opt_flags.Opt.fold a.opt_flags.Opt.cse a.opt_flags.Opt.dce
    a.opt_flags.Opt.do_licm a.opt_flags.Opt.strength a.fill_delay_slots
    a.schedule_loads

let compile ?(optimize = 2) ?(ablation = no_ablation) ?(with_runtime = true)
    target source =
  wrap (fun () ->
      let source =
        if with_runtime then Repro_workloads.Runtime_lib.source ^ source
        else source
      in
      let ast = Parser.parse source in
      let u = Lower.lower_program ast in
      let lits = Irprep.empty_fp_literals () in
      let flags = if optimize > 0 then ablation.opt_flags else Opt.no_flags in
      let frags =
        List.map
          (fun f ->
            Opt.optimize_with flags f;
            Irprep.prepare ~flags target lits f;
            let alloc = Regalloc.allocate target f in
            let frag = Select.select target alloc f in
            let frag =
              if ablation.schedule_loads then Sched.schedule_loads frag
              else frag
            in
            Sched.fill_delay_slots ~fill:ablation.fill_delay_slots target frag)
          u.Lower.funcs
      in
      Link.link target frags (u.Lower.data @ Irprep.fp_literal_data lits))

let compile_and_run ?optimize ?ablation ?trace ?max_steps target source =
  let img = compile ?optimize ?ablation target source in
  let result = Machine.run ?trace ?max_steps img in
  (img, result)
