(** Typed run requests: the measurements an experiment needs.

    A plan enumerates (benchmark, target, unit-of-work) triples as values,
    decoupling {e what} must be measured from {e how} it is executed — the
    {!Pool} scheduler runs a plan serially or across domains, and the
    results land in the {!Runs} memo either way.  Because plans are
    deduplicated and results are keyed, execution order never affects what
    any experiment later reads: parallel output is byte-identical to
    serial. *)

(** The unit of work: the {!Runs.stats} measurements, the standard cache
    grid ({!Runs.ensure_grid}), the standard cycle-accurate pipeline
    sweep ({!Runs.ensure_uarch}), both at once from a single decode
    ({!Runs.ensure_fused}), or a trace capture into the store
    ({!Runs.ensure_trace}) — the only kind that executes the machine;
    the others replay its output. *)
type kind = Stats | Grid | Uarch | Fused | Trace

type spec = { bench : string; target : Repro_core.Target.t; kind : kind }
type t = spec list

val stats_specs :
  benches:string list -> targets:Repro_core.Target.t list -> t

val grid_specs :
  benches:string list -> targets:Repro_core.Target.t list -> t

val uarch_specs :
  benches:string list -> targets:Repro_core.Target.t list -> t

val fused_specs :
  benches:string list -> targets:Repro_core.Target.t list -> t

val trace_specs :
  benches:string list -> targets:Repro_core.Target.t list -> t

val union : t -> t -> t
(** Concatenation with first-occurrence dedup. *)

val dedup : t -> t

(** {2 Spec syntax}

    One canonical spelling per spec — ["kind:bench:target"], e.g.
    ["grid:queens:d16"] — shared by every front end (the report CLI, the
    {!Repro_serve} protocol, tests) so nobody hand-rolls plan
    construction.  [spec_of_string] validates all three fields (unknown
    kinds, benchmarks, and targets are [Error]s naming the valid
    choices) and round-trips [spec_to_string] exactly. *)

val kind_to_string : kind -> string
(** ["stats" | "grid" | "uarch" | "fused" | "trace"]. *)

val kind_of_string : string -> (kind, string) result

val spec_to_string : spec -> string
(** ["kind:bench:target"] with the target's canonical short name. *)

val spec_of_string : string -> (spec, string) result

val looks_like_spec : string -> bool
(** The word contains [':'] — cheap syntactic test for CLIs that mix
    spec arguments with other words. *)

val full : unit -> t
(** Everything {!Experiments.render_all} needs: suite stats on all six
    targets, fused grid+pipeline sweeps for the three cache benchmarks
    (one decode each feeds all 25 geometries and the full configuration
    sweep), and the pipeline-model sweeps for the remaining suite — trace
    captures (the only machine executions) scheduled ahead of the replays
    that consume them, most expensive units first. *)

val for_experiment : string -> t
(** The plan for one experiment id (empty for the two drivers that manage
    their own derived caches). *)

val execute : ?chunk_map:Repro_trace.Replay.map -> spec -> unit
(** Run one spec to completion through {!Runs} (memo + disk cache).
    [?chunk_map] is forwarded to the replay engines (every engine runs
    the same unified automaton, so one scheduler hook serves Grid, Uarch
    and Fused specs alike) so a scheduler with spare capacity can spread
    a replay's trace chunks across domains on top of the across-spec
    parallelism (chunks × benchmarks). *)

val describe : spec -> string

val suite_names : string list
val cache_names : string list
