(** Persistent on-disk cache for run results.

    One marshaled file per key under {!dir} (default ["_runs_cache"],
    overridable with the [REPRO_CACHE_DIR] environment variable; disable
    entirely with [REPRO_DISK_CACHE=0]).  Keys come from {!key}, which
    digests its parts together with an internal cache-format version:
    include everything the value depends on (benchmark source, target
    description, compiler knobs) and staleness becomes impossible — a
    changed input is a different key, and orphaned entries are just never
    read again.  Writes are atomic (temp file + rename), so concurrent
    domains and processes are safe.  Each entry carries an MD5 checksum
    of its marshaled payload, so truncated or bit-corrupted files —
    which [Marshal] alone can silently decode into garbage — read as
    misses and are regenerated.

    Values are stored with [Marshal]; each key namespace must map to a
    single result type (callers prefix keys with a kind tag). *)

val key : string list -> string
(** Hex digest of the parts plus the cache-format version. *)

val find : string -> 'a option
val store : string -> 'a -> unit

val memo : string -> (unit -> 'a) -> 'a
(** [memo k f] returns the cached value for [k], or computes, stores and
    returns it. *)

val dir : unit -> string
val set_dir : string -> unit

val subdir : string -> string
(** [subdir name] is [Filename.concat (dir ()) name], created (with
    {!dir} itself) if missing — the trace store lives in
    [subdir "traces"]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val clear : unit -> unit
(** Remove every entry in {!dir}, including stored traces. *)

val hit_count : unit -> int
(** Disk hits since program start (for tests and diagnostics). *)

val miss_count : unit -> int
