(** D16 binary encoding (paper Figure 1): five 16-bit formats.

    The paper gives field widths but not a complete opcode map; this is a
    faithful reconstruction with exactly the stated reach for every operand
    class.  Formats (bit 15 first):

    - MEM  [1 | op2 | off5 | ry4 | rx4] — word loads/stores (and FP doubles),
      unsigned word-scaled displacement 0..124 bytes.
    - REG  [01 | op6 | ry4 | rx4] — register-register operations, subword
      memory (not offsettable), compares (dest implicitly r0), jumps,
      FP operations, traps.  Immediate ALU forms use opcode pairs so the
      5-bit immediate is split as (opcode bit 0) :: ry.
    - MVI  [001 | const9 | rx4] — move sign-extended 9-bit immediate.
    - BR   [0001 | op2 | off10] — br/bz/bnz/brl, PC-relative, word(2)-scaled,
      reach +/-1024 bytes; bz/bnz test r0 implicitly.
    - LDC  [00001 | off11] — literal-pool load to r0, relative to the
      word-aligned PC, backward, 4-scaled, reach -8188 bytes. *)

val encode : Insn.t -> int
(** Encode to a 16-bit word.
    @raise Invalid_argument if the instruction is not D16-legal
    (use {!Target.legal} with {!Target.d16} first). *)

val decode : int -> Insn.t option
(** Decode a 16-bit word; [None] for reserved encodings. *)

(** Field-index helpers shared with the {!D16m} wide forms. *)

val cond_index : Insn.cond -> int
val cond_of_index : int -> Insn.cond
val fbin_index : Insn.fbin -> int
val fbin_of_index : int -> Insn.fbin
