open Repro_util

let bad fmt = Printf.ksprintf invalid_arg fmt

(* Wide-class selectors (bits 10..8 of the prefix halfword). *)
let wop_alu = 0
and wop_alui = 1
and wop_mem = 2
and wop_mvi = 3
and wop_mvhi = 4
and wop_cmpi = 5
and wop_ori = 6
and wop_br = 7

(* WALU second-halfword opcode (bits 15..12): integer ALU ops share
   {!D16}'s register-register order; FP binops sit at 8 + fbin index. *)
let walu_fbin_base = 8

(* WMEM width selector (bits 15..12). *)
let wmem_code (i : Insn.t) =
  match i with
  | Load (Lw, _, _, _) -> 0
  | Load (Lh, _, _, _) -> 1
  | Load (Lhu, _, _, _) -> 2
  | Load (Lb, _, _, _) -> 3
  | Load (Lbu, _, _, _) -> 4
  | Store (Sw, _, _, _) -> 5
  | Store (Sh, _, _, _) -> 6
  | Store (Sb, _, _, _) -> 7
  | Fload (Df, _, _, _) -> 8
  | Fstore (Df, _, _, _) -> 9
  | _ -> assert false

let alu_index (op : Insn.alu) =
  match op with
  | Add -> 0
  | Sub -> 1
  | And -> 2
  | Or -> 3
  | Xor -> 4
  | Shl -> 5
  | Shr -> 6
  | Shra -> 7

let alu_of_index = function
  | 0 -> Insn.Add
  | 1 -> Sub
  | 2 -> And
  | 3 -> Or
  | 4 -> Xor
  | 5 -> Shl
  | 6 -> Shr
  | _ -> Shra

(* Can the D16 narrow formats express this instruction verbatim? *)
let narrow_ok (i : Insn.t) =
  match i with
  | Load (Lw, _, _, off)
  | Store (Sw, _, _, off)
  | Fload (Df, _, _, off)
  | Fstore (Df, _, _, off) -> off >= 0 && off <= 124 && off land 3 = 0
  | Load (_, _, _, off) | Store (_, _, _, off) -> off = 0
  | Alu (_, rd, ra, _) -> rd = ra
  | Alui (op, rd, ra, imm) -> (
    rd = ra
    && match op with
       | Add | Sub | Shl | Shr | Shra -> Bitops.fits_unsigned ~width:5 imm
       | And | Or | Xor -> false)
  | Mvi (_, imm) -> Bitops.fits_signed ~width:9 imm
  | Mvhi _ | Cmpi _ -> false
  | Br off | Brl off | Bz (_, off) | Bnz (_, off) ->
    off land 1 = 0 && Bitops.fits_signed ~width:10 (off asr 1)
  | Fbin (_, _, fd, fa, _) -> fd = fa
  | Fload (Sf, _, _, _) | Fstore (Sf, _, _, _)
  | Ldc _ | Mv _ | Neg _ | Inv _ | Cmp _ | J _ | Jz _ | Jnz _ | Jl _
  | Fmv _ | Fneg _ | Fcmp _ | Cvtif _ | Cvtfi _ | Rdsr _ | Trap _ | Nop ->
    true

let is_wide i = not (narrow_ok i)
let size i = if is_wide i then 4 else 2

let prefix ~wop ~ry ~rx =
  Bitops.(0 |> put ~lo:8 ~hi:10 wop |> put ~lo:4 ~hi:7 ry |> put ~lo:0 ~hi:3 rx)

let encode_wide (i : Insn.t) =
  match i with
  | Alu (op, rd, ra, rb) ->
    ( prefix ~wop:wop_alu ~ry:ra ~rx:rd,
      Bitops.(0 |> put ~lo:12 ~hi:15 (alu_index op) |> put ~lo:0 ~hi:3 rb) )
  | Fbin (op, s, fd, fa, fb) ->
    ( prefix ~wop:wop_alu ~ry:fa ~rx:fd,
      Bitops.(
        0
        |> put ~lo:12 ~hi:15 (walu_fbin_base + D16.fbin_index op)
        |> put ~lo:11 ~hi:11 (match s with Df -> 0 | Sf -> 1)
        |> put ~lo:0 ~hi:3 fb) )
  | Alui (op, rd, ra, imm) ->
    let ok =
      match op with
      | Add | Sub -> Bitops.fits_signed ~width:13 imm
      | And | Xor -> Bitops.fits_unsigned ~width:13 imm
      | Shl | Shr | Shra -> Bitops.fits_unsigned ~width:5 imm
      | Or -> false (* wide or goes through WORI's 16-bit immediate *)
    in
    if op = Or then
      if Bitops.fits_unsigned ~width:16 imm then
        ( prefix ~wop:wop_ori ~ry:ra ~rx:rd,
          Bitops.zext ~width:16 imm )
      else bad "D16m: ori immediate %d" imm
    else if not ok then bad "D16m: alui immediate %d" imm
    else
      ( prefix ~wop:wop_alui ~ry:ra ~rx:rd,
        Bitops.(
          0
          |> put ~lo:13 ~hi:15 (alu_index op)
          |> put ~lo:0 ~hi:12 (zext ~width:13 imm)) )
  | Load (_, rd, base, off) | Store (_, rd, base, off) ->
    if not (Bitops.fits_signed ~width:12 off) then
      bad "D16m: memory offset %d" off;
    ( prefix ~wop:wop_mem ~ry:base ~rx:rd,
      Bitops.(
        0 |> put ~lo:12 ~hi:15 (wmem_code i)
        |> put ~lo:0 ~hi:11 (zext ~width:12 off)) )
  | Fload (Df, fd, base, off) | Fstore (Df, fd, base, off) ->
    if not (Bitops.fits_signed ~width:12 off) then
      bad "D16m: FP memory offset %d" off;
    ( prefix ~wop:wop_mem ~ry:base ~rx:fd,
      Bitops.(
        0 |> put ~lo:12 ~hi:15 (wmem_code i)
        |> put ~lo:0 ~hi:11 (zext ~width:12 off)) )
  | Mvi (rd, imm) ->
    if not (Bitops.fits_signed ~width:16 imm) then bad "D16m: mvi imm %d" imm;
    (prefix ~wop:wop_mvi ~ry:0 ~rx:rd, Bitops.zext ~width:16 imm)
  | Mvhi (rd, imm) ->
    if imm < 0 || imm > 0xFFFF then bad "D16m: mvhi imm %d" imm;
    (prefix ~wop:wop_mvhi ~ry:0 ~rx:rd, imm)
  | Cmpi (c, 0, ra, imm) ->
    if not (Bitops.fits_signed ~width:16 imm) then bad "D16m: cmpi imm %d" imm;
    ( prefix ~wop:wop_cmpi ~ry:(D16.cond_index c) ~rx:ra,
      Bitops.zext ~width:16 imm )
  | Cmpi (_, rd, _, _) -> bad "D16m: compare destination r%d (must be r0)" rd
  | Br off | Bz (0, off) | Bnz (0, off) | Brl off ->
    let op =
      match i with
      | Br _ -> 0
      | Bz _ -> 1
      | Bnz _ -> 2
      | Brl _ -> 3
      | _ -> assert false
    in
    if off land 1 <> 0 then bad "D16m: branch offset %d unaligned" off;
    if not (Bitops.fits_signed ~width:16 (off asr 1)) then
      bad "D16m: branch offset %d out of range" off;
    (prefix ~wop:wop_br ~ry:0 ~rx:op, Bitops.zext ~width:16 (off asr 1))
  | Bz (r, _) | Bnz (r, _) ->
    bad "D16m: conditional branch on r%d (must be r0)" r
  | Ldc _ -> bad "D16m: ldc does not exist (no literal pool)"
  | _ -> bad "D16m: no wide form of %s" (Insn.to_string i)

let encode (i : Insn.t) =
  match i with
  | Ldc _ -> bad "D16m: ldc does not exist (no literal pool)"
  | _ ->
    if narrow_ok i then (D16.encode i, None)
    else
      let h0, h1 = encode_wide i in
      (h0, Some h1)

let is_wide_prefix w = w land 0xF800 = 0

let decode_wide h0 h1 =
  let wop = Bitops.bits ~lo:8 ~hi:10 h0 in
  let ry = Bitops.bits ~lo:4 ~hi:7 h0 in
  let rx = Bitops.bits ~lo:0 ~hi:3 h0 in
  if wop = wop_alu then begin
    let op = Bitops.bits ~lo:12 ~hi:15 h1 in
    let rb = Bitops.bits ~lo:0 ~hi:3 h1 in
    if op < 8 then Some (Insn.Alu (alu_of_index op, rx, ry, rb))
    else if op < walu_fbin_base + 4 then
      let s = if Bitops.bits ~lo:11 ~hi:11 h1 = 0 then Insn.Df else Insn.Sf in
      Some (Insn.Fbin (D16.fbin_of_index (op - walu_fbin_base), s, rx, ry, rb))
    else None
  end
  else if wop = wop_alui then begin
    let op = alu_of_index (Bitops.bits ~lo:13 ~hi:15 h1) in
    let raw = Bitops.bits ~lo:0 ~hi:12 h1 in
    match op with
    | Or -> None (* reserved: wide or is WORI *)
    | Add | Sub -> Some (Insn.Alui (op, rx, ry, Bitops.sext ~width:13 raw))
    | And | Xor | Shl | Shr | Shra -> Some (Insn.Alui (op, rx, ry, raw))
  end
  else if wop = wop_mem then begin
    let off = Bitops.sext ~width:12 (Bitops.bits ~lo:0 ~hi:11 h1) in
    match Bitops.bits ~lo:12 ~hi:15 h1 with
    | 0 -> Some (Insn.Load (Lw, rx, ry, off))
    | 1 -> Some (Load (Lh, rx, ry, off))
    | 2 -> Some (Load (Lhu, rx, ry, off))
    | 3 -> Some (Load (Lb, rx, ry, off))
    | 4 -> Some (Load (Lbu, rx, ry, off))
    | 5 -> Some (Store (Sw, rx, ry, off))
    | 6 -> Some (Store (Sh, rx, ry, off))
    | 7 -> Some (Store (Sb, rx, ry, off))
    | 8 -> Some (Fload (Df, rx, ry, off))
    | 9 -> Some (Fstore (Df, rx, ry, off))
    | _ -> None
  end
  else if wop = wop_mvi then
    if ry <> 0 then None else Some (Insn.Mvi (rx, Bitops.sext ~width:16 h1))
  else if wop = wop_mvhi then
    if ry <> 0 then None else Some (Insn.Mvhi (rx, h1))
  else if wop = wop_cmpi then
    if ry > 5 then None
    else
      Some
        (Insn.Cmpi (D16.cond_of_index ry, 0, rx, Bitops.sext ~width:16 h1))
  else if wop = wop_ori then Some (Insn.Alui (Or, rx, ry, h1))
  else begin
    (* wop_br *)
    if ry <> 0 || rx > 3 then None
    else
      let off = 2 * Bitops.sext ~width:16 h1 in
      Some
        (match rx with
        | 0 -> Insn.Br off
        | 1 -> Bz (0, off)
        | 2 -> Bnz (0, off)
        | _ -> Brl off)
  end

let decode h0 h1 =
  let h0 = h0 land 0xFFFF in
  if is_wide_prefix h0 then decode_wide h0 (h1 land 0xFFFF)
  else D16.decode h0
