(** D16m binary encoding: the mixed 16/32-bit variant ({!Target.d16m}).

    Every D16 16-bit format is kept verbatim; instructions the narrow
    formats cannot express use 32-bit {e wide} forms built from two
    16-bit halfwords emitted in stream order.  The first halfword lives
    in the encoding space D16 leaves free (top five bits all zero — D16
    decodes nothing there), so a D16m stream is self-describing at any
    instruction boundary:

    - WIDE0 [00000 | wop3 | ry4 | rx4] — the prefix halfword; [wop]
      selects the wide class, [rx]/[ry] carry register operands;
    - WIDE1 — the second halfword, class-specific.

    Wide classes ([wop]):
    + WALU  — three-address register ops: integer ALU and FP binops
      (WIDE1 = [op4 | sz1 | pad7 | rb4]; rd=rx, ra=ry);
    + WALUI — three-address ALU immediate (WIDE1 = [aluop3 | imm13];
      add/sub signed, and/xor zero-extended, shifts 0..31);
    + WMEM  — long-displacement memory, every width incl. FP doubles
      (WIDE1 = [w4 | off12 signed]; base=ry, data=rx);
    + WMVI  — move signed 16-bit immediate (WIDE1 = imm16);
    + WMVHI — move immediate into the upper halfword (WIDE1 = imm16);
    + WCMPI — compare immediate to r0, all six D16 conditions
      (ra=rx, cond=ry; WIDE1 = imm16 signed);
    + WORI  — three-address or with zero-extended 16-bit immediate
      (the mvhi/ori constant-synthesis pair);
    + WBR   — br/bz/bnz/brl with reach +/-2^16 (op2=rx low bits;
      WIDE1 = off16, 2-scaled). *)

val is_wide : Insn.t -> bool
(** Whether the instruction needs a wide form — i.e. the D16 narrow
    formats cannot encode it.  Total over D16m-legal instructions. *)

val size : Insn.t -> int
(** Encoded size in bytes: 2 (narrow) or 4 (wide). *)

val encode : Insn.t -> int * int option
(** [(half0, None)] for narrow instructions (byte-identical to
    {!D16.encode}); [(half0, Some half1)] for wide ones.
    @raise Invalid_argument if the instruction is not D16m-legal
    (use {!Target.legal} with {!Target.d16m} first). *)

val is_wide_prefix : int -> bool
(** Whether a halfword opens a wide form (top five bits zero). *)

val decode : int -> int -> Insn.t option
(** Decode one instruction from [half0] and, when [half0] is a wide
    prefix, [half1]; [None] for reserved encodings. *)
