open Repro_util

type isa = D16 | Dlxe

type t = {
  name : string;
  isa : isa;
  n_gpr : int;
  n_fpr : int;
  three_address : bool;
  zero_r0 : bool;
  ext_cmpeqi : bool;
  mixed : bool;
}

let d16 =
  {
    name = "D16/16/2";
    isa = D16;
    n_gpr = 16;
    n_fpr = 16;
    three_address = false;
    zero_r0 = false;
    ext_cmpeqi = false;
    mixed = false;
  }

(* The Section 3.3.3 extension: one MVI-format bit buys an 8-bit
   compare-equal immediate, at the cost of the 9th move-immediate bit. *)
let d16x = { d16 with name = "D16x/16/2"; ext_cmpeqi = true }

(* Mixed 16/32-bit encoding: D16's base formats plus 32-bit wide forms
   (three-address ALU, 16-bit immediates, long offsets) in the free
   [00000...] prefix space.  No literal pool — wide constants use the
   DLXe-style mvhi/ori synthesis. *)
let d16m =
  { d16 with name = "D16m/16/3"; three_address = true; mixed = true }

let dlxe =
  {
    name = "DLXe/32/3";
    isa = Dlxe;
    n_gpr = 32;
    n_fpr = 32;
    three_address = true;
    zero_r0 = true;
    ext_cmpeqi = false;
    mixed = false;
  }

let dlxe_16_3 = { dlxe with name = "DLXe/16/3"; n_gpr = 16; n_fpr = 16 }
let dlxe_16_2 = { dlxe_16_3 with name = "DLXe/16/2"; three_address = false }
let dlxe_32_2 = { dlxe with name = "DLXe/32/2"; three_address = false }
let all = [ d16; dlxe_16_2; dlxe_16_3; dlxe_32_2; dlxe ]

(* Short names double as CLI spellings and as the slugs of the full names
   ("DLXe/16/2" <-> "dlxe-16-2"); both are accepted case-insensitively. *)
let named = [
    ("d16", d16);
    ("d16x", d16x);
    ("d16m", d16m);
    ("dlxe", dlxe);
    ("dlxe-16-2", dlxe_16_2);
    ("dlxe-16-3", dlxe_16_3);
    ("dlxe-32-2", dlxe_32_2);
    ("dlxe-32-3", dlxe);
  ]

let all_names =
  [ "d16"; "d16x"; "d16m"; "dlxe"; "dlxe-16-2"; "dlxe-16-3"; "dlxe-32-2" ]

let slug name =
  String.lowercase_ascii (String.map (fun c -> if c = '/' then '-' else c) name)

let of_name s =
  let s = slug s in
  match List.assoc_opt s named with
  | Some t -> Ok t
  | None -> (
    match List.find_opt (fun t -> slug t.name = s) (d16x :: d16m :: all) with
    | Some t -> Ok t
    | None ->
      Error
        (Printf.sprintf "unknown target %s (expected one of: %s)" s
           (String.concat ", " all_names)))

(* New fields are rendered only when set, so the five seed targets'
   describe strings — and every persistent-cache key derived from them —
   stay byte-identical to the pre-variant repo. *)
let describe t =
  Printf.sprintf "%s;isa=%s;gpr=%d;fpr=%d;three_address=%b;zero_r0=%b;ext_cmpeqi=%b%s"
    t.name
    (match t.isa with D16 -> "D16" | Dlxe -> "DLXe")
    t.n_gpr t.n_fpr t.three_address t.zero_r0 t.ext_cmpeqi
    (if t.mixed then ";mixed=true" else "")

let insn_bytes t = match t.isa with D16 -> 2 | Dlxe -> 4

let alui_fits t (op : Insn.alu) imm =
  match (t.isa, op) with
  | D16, (Shl | Shr | Shra) -> Bitops.fits_unsigned ~width:5 imm
  | D16, (Add | Sub) ->
    Bitops.fits_unsigned ~width:5 imm
    || (t.mixed && Bitops.fits_signed ~width:13 imm)
  | D16, (And | Xor) -> t.mixed && Bitops.fits_unsigned ~width:13 imm
  (* Wide ori takes a full zero-extended 16-bit immediate (the mvhi/ori
     constant-synthesis pair needs it). *)
  | D16, Or -> t.mixed && Bitops.fits_unsigned ~width:16 imm
  | Dlxe, (Shl | Shr | Shra) -> Bitops.fits_unsigned ~width:5 imm
  | Dlxe, (Add | Sub) -> Bitops.fits_signed ~width:16 imm
  (* Logical immediates are zero-extended (MIPS-style). *)
  | Dlxe, (And | Or | Xor) -> Bitops.fits_unsigned ~width:16 imm

let cmpi_fits t imm =
  match t.isa with
  | D16 ->
    if t.mixed then Bitops.fits_signed ~width:16 imm
    else t.ext_cmpeqi && Bitops.fits_signed ~width:8 imm
  | Dlxe -> Bitops.fits_signed ~width:16 imm



let mvi_fits t imm =
  match t.isa with
  | D16 ->
    if t.mixed then Bitops.fits_signed ~width:16 imm
    else Bitops.fits_signed ~width:(if t.ext_cmpeqi then 8 else 9) imm
  | Dlxe -> Bitops.fits_signed ~width:16 imm

let has_mvhi t = t.isa = Dlxe || t.mixed

let mem_offset_fits t ~word off =
  match t.isa with
  | D16 ->
    if t.mixed then Bitops.fits_signed ~width:12 off
    else if word then off >= 0 && off <= 124 && off land 3 = 0
    else off = 0
  | Dlxe -> Bitops.fits_signed ~width:16 off

let has_ldc t = t.isa = D16 && not t.mixed
let ldc_reach t = if has_ldc t then 8188 else 0

let branch_range t =
  match t.isa with
  | D16 -> if t.mixed then 1 lsl 16 else 1024
  | Dlxe -> (1 lsl 17) - 4

let call_range t =
  match t.isa with
  | D16 -> if t.mixed then 1 lsl 16 else 1024
  | Dlxe -> (1 lsl 27) - 4

let cond_supported t (c : Insn.cond) =
  match (t.isa, c) with
  | Dlxe, _ -> true
  | D16, (Lt | Ltu | Le | Leu | Eq | Ne) -> true
  | D16, (Gt | Gtu | Ge | Geu) -> false

let cmp_dest_fixed t = t.isa = D16

(* Condition-aware compare-immediate availability: the D16 extension only
   provides equality. *)
let cmpi_ok t (c : Insn.cond) imm =
  match t.isa with
  | D16 ->
    if t.mixed then cond_supported t c && Bitops.fits_signed ~width:16 imm
    else t.ext_cmpeqi && c = Insn.Eq && Bitops.fits_signed ~width:8 imm
  | Dlxe -> cond_supported t c && Bitops.fits_signed ~width:16 imm

let caller_saved_gpr t = Regs.caller_saved_gpr ~n_gpr:t.n_gpr ~zero_r0:t.zero_r0
let callee_saved_gpr t = Regs.callee_saved_gpr ~n_gpr:t.n_gpr
let caller_saved_fpr t = Regs.caller_saved_fpr ~n_fpr:t.n_fpr
let callee_saved_fpr t = Regs.callee_saved_fpr ~n_fpr:t.n_fpr
let allocatable_gpr t = caller_saved_gpr t @ callee_saved_gpr t
let allocatable_fpr t = caller_saved_fpr t @ callee_saved_fpr t

(* Legality checking -------------------------------------------------- *)

let check b msg = if b then Ok () else Error msg

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let check_gpr t r =
  check (r >= 0 && r < t.n_gpr) (Printf.sprintf "gpr r%d out of range" r)

let check_fpr t r =
  check (r >= 0 && r < t.n_fpr) (Printf.sprintf "fpr f%d out of range" r)

let check_branch_off t off =
  let* () = check (off land 1 = 0) "branch offset not aligned" in
  check
    (off >= -branch_range t && off <= branch_range t - insn_bytes t)
    (Printf.sprintf "branch offset %d out of range" off)

let check_two_address t rd ra what =
  check
    (t.three_address || rd = ra)
    (Printf.sprintf "%s: two-address target requires dest = first source" what)

let legal t (i : Insn.t) =
  match i with
  | Load (w, rd, base, off) ->
    let* () = check_gpr t rd in
    let* () = check_gpr t base in
    check
      (mem_offset_fits t ~word:(w = Insn.Lw) off)
      (Printf.sprintf "load offset %d out of range" off)
  | Store (w, rs, base, off) ->
    let* () = check_gpr t rs in
    let* () = check_gpr t base in
    check
      (mem_offset_fits t ~word:(w = Insn.Sw) off)
      (Printf.sprintf "store offset %d out of range" off)
  | Fload (_, fd, base, off) ->
    let* () = check_fpr t fd in
    let* () = check_gpr t base in
    check (mem_offset_fits t ~word:true off) "fload offset out of range"
  | Fstore (_, fs, base, off) ->
    let* () = check_fpr t fs in
    let* () = check_gpr t base in
    check (mem_offset_fits t ~word:true off) "fstore offset out of range"
  | Ldc (rd, off) ->
    let* () = check (has_ldc t) "ldc not available" in
    let* () = check (rd = 0) "ldc destination is implicitly r0" in
    let* () = check (off land 3 = 0) "ldc offset not word aligned" in
    check (off < 0 && off >= -ldc_reach t) "ldc offset out of range"
  | Alu (_, rd, ra, rb) ->
    let* () = check_gpr t rd in
    let* () = check_gpr t ra in
    let* () = check_gpr t rb in
    check_two_address t rd ra "alu"
  | Alui (op, rd, ra, imm) ->
    let* () = check_gpr t rd in
    let* () = check_gpr t ra in
    let* () = check_two_address t rd ra "alui" in
    check (alui_fits t op imm)
      (Printf.sprintf "alu immediate %d not encodable" imm)
  | Mv (rd, rs) ->
    let* () = check_gpr t rd in
    check_gpr t rs
  | Mvi (rd, imm) ->
    let* () = check_gpr t rd in
    check (mvi_fits t imm) (Printf.sprintf "mvi immediate %d not encodable" imm)
  | Mvhi (rd, imm) ->
    let* () = check (has_mvhi t) "mvhi not available" in
    let* () = check_gpr t rd in
    check (imm >= 0 && imm < 0x10000) "mvhi immediate out of range"
  | Neg (rd, rs) | Inv (rd, rs) ->
    let* () = check (t.isa = D16) "neg/inv only exist on D16" in
    let* () = check_gpr t rd in
    check_gpr t rs
  | Cmp (c, rd, ra, rb) ->
    let* () = check_gpr t rd in
    let* () = check_gpr t ra in
    let* () = check_gpr t rb in
    let* () = check (cond_supported t c) "condition not supported" in
    check
      ((not (cmp_dest_fixed t)) || rd = 0)
      "D16 compare destination is implicitly r0"
  | Cmpi (c, rd, ra, imm) ->
    let* () = check_gpr t rd in
    let* () = check_gpr t ra in
    let* () =
      check
        ((not (cmp_dest_fixed t)) || rd = 0)
        "D16 compare destination is implicitly r0"
    in
    check (cmpi_ok t c imm) "compare immediate not available"
  | Br off | Brl off -> check_branch_off t off
  | Bz (r, off) | Bnz (r, off) ->
    let* () = check_gpr t r in
    let* () =
      check
        ((not (cmp_dest_fixed t)) || r = 0)
        "D16 conditional branches test r0 implicitly"
    in
    check_branch_off t off
  | J r | Jl r -> check_gpr t r
  | Jz (rt, rd) | Jnz (rt, rd) ->
    let* () = check_gpr t rt in
    let* () = check_gpr t rd in
    check
      ((not (cmp_dest_fixed t)) || rt = 0)
      "D16 conditional jumps test r0 implicitly"
  | Fbin (_, _, fd, fa, fb) ->
    let* () = check_fpr t fd in
    let* () = check_fpr t fa in
    let* () = check_fpr t fb in
    check
      (t.three_address || fd = fa)
      "fbin: two-address target requires dest = first source"
  | Fmv (_, fd, fs) | Fneg (_, fd, fs) ->
    let* () = check_fpr t fd in
    check_fpr t fs
  | Fcmp (c, _, fa, fb) ->
    let* () = check_fpr t fa in
    let* () = check_fpr t fb in
    check (cond_supported t c) "condition not supported"
  | Cvtif (_, fd, rs) ->
    let* () = check_fpr t fd in
    check_gpr t rs
  | Cvtfi (_, rd, fs) ->
    let* () = check_gpr t rd in
    check_fpr t fs
  | Rdsr rd -> check_gpr t rd
  | Trap code -> check (code >= 0 && code < 16) "trap code out of range"
  | Nop -> Ok ()
