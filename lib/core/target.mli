(** Target descriptions: the experiment knobs of the paper.

    A target fixes an encoding (which determines instruction size and
    immediate/offset reach) plus the two compiler restrictions the paper
    turns independently: register-file size (Section 3.3.1) and two- vs
    three-address code generation (Section 3.3.2).  The five targets of
    Tables 6/7 are exported below. *)

type isa = D16 | Dlxe

type t = private {
  name : string;  (** e.g. "D16/16/2", "DLXe/32/3". *)
  isa : isa;
  n_gpr : int;
  n_fpr : int;
  three_address : bool;
      (** When false the code generator must keep destination = first source
          for ALU and FP operations (D16's format forces this). *)
  zero_r0 : bool;  (** r0 hardwired to zero (DLXe). *)
  ext_cmpeqi : bool;
      (** The Section 3.3.3 D16 extension: 8-bit compare-equal immediate,
          paid for with one bit of the move immediate. *)
  mixed : bool;
      (** Mixed 16/32-bit encoding ({!d16m}): the D16 base formats plus
          32-bit "wide" forms in the free [00000...] prefix space —
          three-address ALU, 16-bit immediates and branch offsets, 12-bit
          memory displacements.  No literal pool; wide constants use
          DLXe-style mvhi/ori synthesis.  See {!D16m}. *)
}

val d16 : t
val d16x : t
(** D16 with the paper's proposed extension (Section 3.3.3): mvi shrinks to
    8 bits signed; an 8-bit compare-equal immediate appears.  The paper
    predicts "up to 2 percent" improvement. *)

val d16m : t
(** The mixed-width variant: D16's 16-bit formats where they reach,
    32-bit wide forms where they don't (Chen et al.'s multi-width
    instructions).  Three-address, 16 registers, no literal pool. *)

val dlxe : t  (** Full DLXe: 32 registers, three-address. *)

val dlxe_16_3 : t
val dlxe_16_2 : t
val dlxe_32_2 : t

val all : t list
(** The five targets in the tables' column order:
    D16, DLXe/16/2, DLXe/16/3, DLXe/32/2, DLXe/32/3. *)

val of_name : string -> (t, string) result
(** Parse a target name as the CLIs spell it.  Accepts the short names of
    {!all_names} and full names like "DLXe/16/2" (case-insensitive, "/"
    and "-" interchangeable); {!d16x} is included.  The error message
    lists the valid names. *)

val all_names : string list
(** The canonical short spellings accepted by {!of_name}:
    d16, d16x, d16m, dlxe, dlxe-16-2, dlxe-16-3, dlxe-32-2. *)

val describe : t -> string
(** A stable one-line rendering of every field of the description, used
    in persistent-cache keys: any change to a target invalidates entries
    keyed on it. *)

val insn_bytes : t -> int
(** The {e base} instruction granule: 2 for D16 (including the mixed
    variant, whose wide forms occupy two granules — see {!D16m.size}),
    4 for DLXe. *)

val alui_fits : t -> Insn.alu -> int -> bool
(** May [op] take this immediate?  D16: add/sub/shifts with unsigned 5-bit
    immediates only.  DLXe: add/sub/and/or/xor with signed 16-bit, shifts
    with 5-bit amounts. *)

val cmpi_fits : t -> int -> bool
(** DLXe: signed 16 bits.  D16: only with {!d16x}'s extension (8 bits,
    equality only — see {!cmpi_ok}). *)

val cmpi_ok : t -> Insn.cond -> int -> bool
(** Condition-aware compare-immediate availability. *)

val mvi_fits : t -> int -> bool
(** D16: signed 9 bits.  DLXe: signed 16 bits. *)

val has_mvhi : t -> bool

val mem_offset_fits : t -> word:bool -> int -> bool
(** Displacement reach of normal loads/stores.  D16: word modes take
    word-aligned displacements in [0, 124]; subword modes are not
    offsettable.  D16m: signed 12 bits, any mode (wide form).  DLXe:
    signed 16 bits, any mode. *)

val has_ldc : t -> bool
(** D16's PC-relative literal-pool load. *)

val ldc_reach : t -> int
(** Maximum backward distance (positive number of bytes) LDC can address. *)

val branch_range : t -> int
(** Conditional/unconditional PC-relative branch reach in bytes (+/-).
    D16: 1024.  D16m: 2^16 (wide form).  DLXe: 2^17 (16-bit word
    offset). *)

val call_range : t -> int
(** Direct-call reach: D16 brl +/-1024; DLXe jal 26-bit. *)

val cond_supported : t -> Insn.cond -> bool
(** D16 compare conditions are lt/ltu/le/leu/eq/ne only. *)

val cmp_dest_fixed : t -> bool
(** D16: compares write r0 implicitly. *)

val allocatable_gpr : t -> int list
(** General registers available to the register allocator, caller-saved
    first. *)

val allocatable_fpr : t -> int list
val caller_saved_gpr : t -> int list
val callee_saved_gpr : t -> int list
val caller_saved_fpr : t -> int list
val callee_saved_fpr : t -> int list

val legal : t -> Insn.t -> (unit, string) result
(** Full legality check used by the assembler and in tests: register indices
    in range, immediates encodable, D16 two-address and implicit-register
    constraints respected. *)
