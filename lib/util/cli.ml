type t = {
  flags : (string, string option) Hashtbl.t;
  positionals : string list;
  usage : string;
}

let usage_of usage = "usage: " ^ usage

let parse ?(flags_with_arg = []) ?(flags = []) ~usage argv =
  let tbl = Hashtbl.create 8 in
  let fail () =
    prerr_endline (usage_of usage);
    exit 1
  in
  let rec go acc = function
    | [] -> List.rev acc
    | w :: rest when List.mem w flags_with_arg -> (
      match rest with
      | arg :: rest ->
        Hashtbl.replace tbl w (Some arg);
        go acc rest
      | [] -> fail ())
    | w :: rest when List.mem w flags ->
      Hashtbl.replace tbl w None;
      go acc rest
    | w :: _ when String.length w >= 2 && String.sub w 0 2 = "--" -> fail ()
    | w :: rest -> go (w :: acc) rest
  in
  let positionals = go [] (List.tl (Array.to_list argv)) in
  { flags = tbl; positionals; usage }

let flag t name = Hashtbl.mem t.flags name
let flag_arg t name = Option.join (Hashtbl.find_opt t.flags name)
let positionals t = t.positionals

let usage_exit t =
  prerr_endline (usage_of t.usage);
  exit 1
