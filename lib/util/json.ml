type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Parsing. ---------------------------------------------------------------

   Recursive descent over the raw string with one cursor.  Errors abort
   through a local exception that never escapes [parse]; the depth
   parameter bounds recursion so a ["[[[[..."] bomb fails cleanly instead
   of overflowing the stack. *)

exception Bad of int * string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Bad (c.pos, msg))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
    c.pos <- c.pos + 1;
    ch
  | None -> fail c "unexpected end of input"

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      c.pos <- c.pos + 1;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  let got = next c in
  if got <> ch then fail c (Printf.sprintf "expected %C, got %C" ch got)

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let is_digit = function '0' .. '9' -> true | _ -> false

let hex_digit c =
  match next c with
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "invalid hex digit in \\u escape"

let hex4 c =
  let a = hex_digit c in
  let b = hex_digit c in
  let d = hex_digit c in
  let e = hex_digit c in
  (a lsl 12) lor (b lsl 8) lor (d lsl 4) lor e

(* Decoded string bytes: escapes resolved, \uXXXX (with surrogate pairs)
   encoded as UTF-8.  Raw bytes >= 0x20 other than '"' and '\\' pass
   through untouched, so arbitrary byte payloads survive a print/parse
   round-trip. *)
let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match next c with
    | '"' -> Buffer.contents b
    | '\\' ->
      (match next c with
      | '"' -> Buffer.add_char b '"'
      | '\\' -> Buffer.add_char b '\\'
      | '/' -> Buffer.add_char b '/'
      | 'b' -> Buffer.add_char b '\b'
      | 'f' -> Buffer.add_char b '\012'
      | 'n' -> Buffer.add_char b '\n'
      | 'r' -> Buffer.add_char b '\r'
      | 't' -> Buffer.add_char b '\t'
      | 'u' ->
        let u = hex4 c in
        let u =
          if u >= 0xD800 && u <= 0xDBFF then begin
            (* High surrogate: the low half must follow. *)
            expect c '\\';
            expect c 'u';
            let lo = hex4 c in
            if lo < 0xDC00 || lo > 0xDFFF then fail c "unpaired surrogate";
            0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
          end
          else if u >= 0xDC00 && u <= 0xDFFF then fail c "unpaired surrogate"
          else u
        in
        Buffer.add_utf_8_uchar b (Uchar.of_int u)
      | _ -> fail c "invalid escape");
      loop ()
    | ch when Char.code ch < 0x20 ->
      fail c "unescaped control character in string"
    | ch ->
      Buffer.add_char b ch;
      loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  (match peek c with
  | Some '0' -> c.pos <- c.pos + 1
  | Some ch when is_digit ch ->
    while (match peek c with Some ch -> is_digit ch | None -> false) do
      c.pos <- c.pos + 1
    done
  | _ -> fail c "invalid number");
  let integral = ref true in
  (if peek c = Some '.' then begin
     integral := false;
     c.pos <- c.pos + 1;
     if not (match peek c with Some ch -> is_digit ch | None -> false) then
       fail c "digits required after decimal point";
     while (match peek c with Some ch -> is_digit ch | None -> false) do
       c.pos <- c.pos + 1
     done
   end);
  (match peek c with
  | Some ('e' | 'E') ->
    integral := false;
    c.pos <- c.pos + 1;
    (match peek c with
    | Some ('+' | '-') -> c.pos <- c.pos + 1
    | _ -> ());
    if not (match peek c with Some ch -> is_digit ch | None -> false) then
      fail c "digits required in exponent";
    while (match peek c with Some ch -> is_digit ch | None -> false) do
      c.pos <- c.pos + 1
    done
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !integral then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
      (* Magnitude beyond [int]: keep the value as a float. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c "unrepresentable number")
  else
    match float_of_string_opt text with
    | Some f when Float.is_finite f -> Float f
    | _ -> fail c "unrepresentable number"

let rec parse_value c depth =
  if depth <= 0 then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c (depth - 1) in
        skip_ws c;
        match next c with
        | ',' -> elems (v :: acc)
        | ']' -> Arr (List.rev (v :: acc))
        | _ -> fail c "expected ',' or ']'"
      in
      elems []
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let member () =
        skip_ws c;
        let name = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth - 1) in
        (name, v)
      in
      let rec members acc =
        let m = member () in
        skip_ws c;
        match next c with
        | ',' -> members (m :: acc)
        | '}' -> Obj (List.rev (m :: acc))
        | _ -> fail c "expected ',' or '}'"
      in
      members []
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse ?(max_depth = 256) s =
  let c = { s; pos = 0 } in
  match parse_value c max_depth with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "byte %d: trailing garbage" c.pos)
    else Ok v
  | exception Bad (pos, msg) -> Error (Printf.sprintf "byte %d: %s" pos msg)

(* Printing. -------------------------------------------------------------- *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"'

(* Shortest float rendering that survives a parse round-trip and is
   always valid JSON (OCaml's own [Float.to_string] prints "1." which
   JSON rejects). *)
let float_text f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 64 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_text f)
    | Str s -> escape_into b s
    | Arr vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit v)
        vs;
      Buffer.add_char b ']'
    | Obj ms ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b name;
          Buffer.add_char b ':';
          emit v)
        ms;
      Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.compare_lengths x y = 0 && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.compare_lengths x y = 0
    && List.for_all2
         (fun (nx, vx) (ny, vy) -> String.equal nx ny && equal vx vy)
         x y
  | _ -> false

(* Accessors. ------------------------------------------------------------- *)

let member name = function
  | Obj ms -> List.assoc_opt name ms
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int ->
    Some (Float.to_int f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
let obj_ok ms = Obj (List.filter (fun (_, v) -> v <> Null) ms)
