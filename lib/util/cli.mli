(** Minimal argv parsing shared by the inspection tools (objdump,
    tracedump).

    Both tools take an input spec — [--bench NAME] or a file path — an
    optional target name, plus tool-specific flags.  [parse] splits argv
    into flags (with or without an argument) and positionals in one pass;
    unknown [--]-prefixed words are reported through [usage_exit] so the
    tools cannot silently ignore a typo. *)

type t

val parse :
  ?flags_with_arg:string list ->
  ?flags:string list ->
  usage:string ->
  string array ->
  t
(** [parse ~flags_with_arg ~flags ~usage argv] consumes [argv] (program
    name included, as [Sys.argv]).  Words in [flags_with_arg] take the
    following word as argument; words in [flags] stand alone; anything
    else starting with ["--"] prints [usage] to stderr and exits 1.
    Remaining words are positionals, in order. *)

val flag : t -> string -> bool
(** The bare flag was present. *)

val flag_arg : t -> string -> string option
(** The argument of a [flags_with_arg] flag, when present. *)

val positionals : t -> string list

val usage_exit : t -> 'a
(** Print the usage string to stderr and exit 1. *)
