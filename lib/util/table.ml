type align = Left | Right

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?align header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let header = Array.of_list header in
  let rows = List.map Array.of_list rows in
  let widths = Array.make (max ncols 1) 0 in
  let widen row =
    Array.iteri
      (fun i cell ->
        if i < ncols then begin
          let n = String.length cell in
          if n > widths.(i) then widths.(i) <- n
        end)
      row
  in
  widen header;
  List.iter widen rows;
  let buf = Buffer.create 1024 in
  let pad_into align width s =
    let n = width - String.length s in
    if n <= 0 then Buffer.add_string buf s
    else
      match align with
      | Left ->
        Buffer.add_string buf s;
        for _ = 1 to n do Buffer.add_char buf ' ' done
      | Right ->
        for _ = 1 to n do Buffer.add_char buf ' ' done;
        Buffer.add_string buf s
  in
  let line row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        pad_into aligns.(i) widths.(i) cell)
      row;
    Buffer.add_char buf '\n'
  in
  line header;
  for i = 0 to ncols - 1 do
    if i > 0 then Buffer.add_string buf "  ";
    for _ = 1 to widths.(i) do Buffer.add_char buf '-' done
  done;
  Buffer.add_char buf '\n';
  List.iter line rows;
  Buffer.contents buf

let bar_chart ?(width = 40) ?max_value entries =
  let data_max =
    match max_value with
    | Some m -> m
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 0. entries
  in
  let data_max = if data_max <= 0. then 1. else data_max in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let line (label, v) =
    let n =
      int_of_float (Float.round (v /. data_max *. float_of_int width))
    in
    let n = max 0 (min width n) in
    Printf.sprintf "%s  %s%s %6.2f"
      (pad Left label_width label)
      (String.make n '#')
      (String.make (width - n) ' ')
      v
  in
  String.concat "\n" (List.map line entries) ^ "\n"

let fmt2 v = Printf.sprintf "%.2f" v
let fmt3 v = Printf.sprintf "%.3f" v

let series_chart ?width:_ ~x_label ~xs series =
  let header = x_label :: List.map fst series in
  let rows =
    List.mapi
      (fun i x -> x :: List.map (fun (_, ys) -> fmt3 (List.nth ys i)) series)
      xs
  in
  render header rows
