(** Dependency-free JSON codec for the service plane's wire protocol.

    The value type is deliberately small: objects are association lists
    (member order preserved on print, first binding wins on lookup),
    numbers keep OCaml's [int]/[float] split so protocol counters
    round-trip exactly, and strings are the decoded (unescaped) bytes.

    {!parse} is total — malformed input is an [Error], never an
    exception — and hardened against adversarial input: nesting depth is
    bounded, numbers that do not fit are rejected, and garbage after the
    top-level value is an error.  {!to_string} always produces valid
    JSON ([parse (to_string v)] succeeds for every [v]; the round-trip
    is the identity up to the int/float representation of numbers). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string  (** Decoded bytes; escaped on print. *)
  | Arr of t list
  | Obj of (string * t) list

val parse : ?max_depth:int -> string -> (t, string) result
(** Parse one JSON value plus optional trailing whitespace.  Every error
    message carries the byte offset.  [max_depth] (default 256) bounds
    array/object nesting so adversarial input cannot overflow the
    stack. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — one message per line is
    the wire framing).  Strings are escaped per RFC 8259; non-finite
    floats print as [null] (JSON has no NaN/infinity). *)

val equal : t -> t -> bool
(** Structural equality ([Float] compared by bit pattern so [nan] equals
    itself — what the round-trip tests need). *)

(** {2 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the name in an [Obj]. *)

val to_int : t -> int option
(** [Int n], or a [Float] that is exactly an integer. *)

val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val obj_ok : (string * t) list -> t
(** [Obj] with [Null]-valued members dropped — keeps optional protocol
    fields off the wire. *)
