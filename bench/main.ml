(* Benchmark harness: one Bechamel test per paper table/figure (the time to
   regenerate the artifact from the shared memoized runs), plus substrate
   microbenchmarks (compilation, simulation, cache replay).

   Before timing anything the harness populates the run cache and prints
   every regenerated artifact, so the run doubles as the reproduction
   driver: `dune exec bench/main.exe` both reproduces the paper's tables
   and figures and reports how long each analysis takes. *)

open Bechamel
open Toolkit
module Target = Repro_core.Target
module Experiments = Repro_harness.Experiments
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite

let experiment_tests =
  List.map
    (fun (e : Experiments.t) ->
      Test.make ~name:e.Experiments.id
        (Staged.stage (fun () -> ignore (Experiments.render e))))
    Experiments.all

let queens = (Suite.find "queens").Suite.source

let substrate_tests =
  [
    Test.make ~name:"compile:d16:queens"
      (Staged.stage (fun () -> ignore (Compile.compile Target.d16 queens)));
    Test.make ~name:"compile:dlxe:queens"
      (Staged.stage (fun () -> ignore (Compile.compile Target.dlxe queens)));
    (let img = Compile.compile Target.d16 queens in
     Test.make ~name:"simulate:d16:queens"
       (Staged.stage (fun () -> ignore (Machine.run ~trace:false img))));
    (let img = Compile.compile Target.dlxe queens in
     Test.make ~name:"simulate:dlxe:queens"
       (Staged.stage (fun () -> ignore (Machine.run ~trace:false img))));
    (let img = Compile.compile Target.d16 queens in
     let r = Machine.run ~trace:true img in
     Test.make ~name:"cache-replay:4K:queens"
       (Staged.stage (fun () ->
            let cfg = Memsys.cache_config ~size:4096 ~block:32 ~sub:4 in
            ignore (Memsys.replay_cached ~insn_bytes:2 ~icache:cfg ~dcache:cfg r))));
    (let img = Compile.compile Target.d16 queens in
     let r = Machine.run ~trace:true img in
     Test.make ~name:"fetch-replay:queens"
       (Staged.stage (fun () -> ignore (Memsys.replay_nocache ~bus_bytes:4 r))));
  ]

let benchmark test =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> (name, nan) :: acc)
    results []

let pp_time ns =
  if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.2f ns" ns

let jobs =
  let rec find = function
    | "--jobs" :: n :: _ -> (
      match int_of_string_opt n with Some n when n >= 1 -> n | _ -> 1)
    | _ :: rest -> find rest
    | [] -> Repro_harness.Pool.default_jobs ()
  in
  find (Array.to_list Sys.argv)

let () =
  (* Phase 1: regenerate and print every artifact (also warms the memo and
     the persistent cache).  Wall-clock is reported so cold vs warm cache
     behavior is visible. *)
  let t0 = Unix.gettimeofday () in
  print_endline (Experiments.render_all ~jobs ());
  let t1 = Unix.gettimeofday () in
  Printf.printf "\nphase 1 (artifacts, jobs=%d): %.2fs wall\n%!" jobs (t1 -. t0);
  (* Phase 2: time each regeneration and the substrates. *)
  Printf.printf "\n================ bench timings ================\n%!";
  List.iter
    (fun test ->
      List.iter
        (fun (name, ns) -> Printf.printf "%-28s %s\n%!" name (pp_time ns))
        (List.sort compare (benchmark test)))
    (experiment_tests @ substrate_tests)
