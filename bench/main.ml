(* Benchmark harness: one Bechamel test per paper table/figure (the time to
   regenerate the artifact from the shared memoized runs), plus substrate
   microbenchmarks (compilation, simulation, cache replay).

   Before timing anything the harness populates the run cache and prints
   every regenerated artifact, so the run doubles as the reproduction
   driver: `dune exec bench/main.exe` both reproduces the paper's tables
   and figures and reports how long each analysis takes.

   [--json PATH] additionally writes the per-test OLS estimates (ns/run)
   as a flat JSON object, for tracking timings across revisions. *)

open Bechamel
open Toolkit
module Target = Repro_core.Target
module Experiments = Repro_harness.Experiments
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Uarch = Repro_uarch.Uarch
module Uconfig = Repro_uarch.Uconfig
module Pool = Repro_harness.Pool
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay

let experiment_tests =
  List.map
    (fun (e : Experiments.t) ->
      Test.make ~name:e.Experiments.id
        (Staged.stage (fun () -> ignore (Experiments.render e))))
    Experiments.all

let queens = (Suite.find "queens").Suite.source

let substrate_tests =
  [
    Test.make ~name:"compile:d16:queens"
      (Staged.stage (fun () -> ignore (Compile.compile Target.d16 queens)));
    Test.make ~name:"compile:dlxe:queens"
      (Staged.stage (fun () -> ignore (Compile.compile Target.dlxe queens)));
    (let img = Compile.compile Target.d16 queens in
     Test.make ~name:"simulate:d16:queens"
       (Staged.stage (fun () -> ignore (Machine.run ~trace:false img))));
    (let img = Compile.compile Target.dlxe queens in
     Test.make ~name:"simulate:dlxe:queens"
       (Staged.stage (fun () -> ignore (Machine.run ~trace:false img))));
    (let img = Compile.compile Target.d16 queens in
     let r = Machine.run ~trace:true img in
     Test.make ~name:"cache-replay:4K:queens"
       (Staged.stage (fun () ->
            let cfg = Memsys.cache_config ~size:4096 ~block:32 ~sub:4 in
            ignore (Memsys.replay_cached ~insn_bytes:2 ~icache:cfg ~dcache:cfg r))));
    (let img = Compile.compile Target.d16 queens in
     let r = Machine.run ~trace:true img in
     Test.make ~name:"fetch-replay:queens"
       (Staged.stage (fun () -> ignore (Memsys.replay_nocache ~bus_bytes:4 r))));
  ]

(* The trace substrate: what a capture costs on top of simulation, what a
   replay costs instead of re-execution, and the headline comparison — a
   cold four-configuration cache sweep done by re-running the machine per
   result set versus replaying one stored trace. *)
let trace_tests =
  let img = Compile.compile Target.d16 queens in
  let path = Filename.temp_file "repro-bench" ".trc" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  let capture () =
    let w = Trace.Writer.create ~insn_bytes:2 path in
    let r =
      Machine.run ~trace:false
        ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
        img
    in
    Trace.Writer.close w;
    r
  in
  ignore (capture ());
  let rd =
    match Trace.Reader.open_file path with
    | Ok rd -> rd
    | Error e -> failwith e
  in
  let sweep_cfgs =
    List.map
      (fun size -> Memsys.cache_config ~size ~block:32 ~sub:4)
      [ 1024; 2048; 4096; 8192 ]
  in
  let grid_spec cfg = { Replay.Grid.icache = cfg; dcache = cfg } in
  (* 16 distinct geometries; grid-replay:Ncfg takes a prefix, so the three
     substrates share their fixed cost (open + checksum + one decode) and
     differ only in automata count — the sublinearity the engine claims. *)
  let grid_cfgs =
    List.concat_map
      (fun size ->
        List.concat_map
          (fun block ->
            List.map
              (fun sub -> Memsys.cache_config ~size ~block ~sub)
              [ 4; 8 ])
          [ 8; 16; 32; 64 ])
      [ 1024; 2048 ]
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  let grid_replay n () =
    match Trace.Reader.open_file path with
    | Error e -> failwith e
    | Ok rd ->
      ignore (Replay.Grid.run rd (List.map grid_spec (take n grid_cfgs)))
  in
  (* One long-lived pool so the parallel test times replay, not
     Domain.spawn — created lazily at the test's first run, because even
     idle worker domains tax every other measurement through
     stop-the-world collector synchronization (on a single-CPU box the
     experiment renders measure ~1.7x slower with four idle domains
     alive).  Sized like the harness sizes its own pools
     (REPRO_JOBS / recommended_domain_count) so the measurement reflects
     what `Pool.run_plan` would actually do on this machine rather than
     a fixed worker count that oversubscribes small boxes. *)
  let pool = lazy (Pool.create ~jobs:(Pool.default_jobs ())) in
  [
    Test.make ~name:"trace-capture:queens"
      (Staged.stage (fun () -> ignore (capture ())));
    Test.make ~name:"trace-cache-replay:4K:queens"
      (Staged.stage (fun () ->
           let cfg = Memsys.cache_config ~size:4096 ~block:32 ~sub:4 in
           ignore (Replay.cached ~icache:cfg ~dcache:cfg rd)));
    Test.make ~name:"trace-fetch-seq:queens"
      (Staged.stage (fun () -> ignore (Replay.nocache rd ~bus_bytes:4)));
    Test.make ~name:"trace-fetch-par:queens"
      (Staged.stage (fun () ->
           ignore
             (Replay.nocache
                ~map:(fun f xs -> Pool.map ~pool:(Lazy.force pool) f xs)
                rd ~bus_bytes:4)));
    Test.make ~name:"sweep-direct:4cfg:queens"
      (Staged.stage (fun () ->
           let r = Machine.run ~trace:true img in
           List.iter
             (fun cfg ->
               ignore
                 (Memsys.replay_cached ~insn_bytes:2 ~icache:cfg ~dcache:cfg r))
             sweep_cfgs));
    Test.make ~name:"sweep-replay:4cfg:queens"
      (Staged.stage (fun () ->
           match Trace.Reader.open_file path with
           | Error e -> failwith e
           | Ok rd ->
             ignore (Replay.Grid.run rd (List.map grid_spec sweep_cfgs))));
    Test.make ~name:"grid-replay:4cfg:queens" (Staged.stage (grid_replay 4));
    Test.make ~name:"grid-replay:8cfg:queens" (Staged.stage (grid_replay 8));
    Test.make ~name:"grid-replay:16cfg:queens" (Staged.stage (grid_replay 16));
  ]

let uarch_tests =
  let img = Compile.compile Target.d16 queens in
  let r = Machine.run ~trace:true img in
  let tr = Option.get r.Machine.trace in
  let nocache = Uconfig.nocache ~bus_bytes:4 ~wait_states:1 in
  let cached =
    let cfg = Memsys.cache_config ~size:4096 ~block:32 ~sub:4 in
    Uconfig.cached ~icache:cfg ~dcache:cfg ~miss_penalty:8
  in
  (* Multi-config pipeline grid over a stored trace: one decode feeds
     every configuration, memory automata deduplicated by behaviour
     class.  uarch-grid:8cfg extends the 4cfg prefix with two more cache
     geometries and two wait-state variants that dedup into already-paid
     classes, so cost must grow far sublinearly in configuration count
     (CI tracks 8cfg < 1.6x 4cfg).  The reader reopens per run, like
     grid-replay, so the fixed open+checksum cost is shared apples to
     apples across the pair. *)
  let path = Filename.temp_file "repro-bench-uarch" ".trc" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  let w = Trace.Writer.create ~insn_bytes:2 path in
  ignore
    (Machine.run ~trace:false
       ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
       img);
  Trace.Writer.close w;
  let ucached size penalty =
    let cfg = Memsys.cache_config ~size ~block:32 ~sub:4 in
    Uconfig.cached ~icache:cfg ~dcache:cfg ~miss_penalty:penalty
  in
  let grid_cfgs =
    [
      Uconfig.nocache ~bus_bytes:4 ~wait_states:1;
      Uconfig.nocache ~bus_bytes:8 ~wait_states:1;
      ucached 1024 8; ucached 4096 8;
      Uconfig.nocache ~bus_bytes:4 ~wait_states:3;
      Uconfig.nocache ~bus_bytes:8 ~wait_states:3;
      ucached 2048 8; ucached 8192 8;
    ]
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  let uarch_grid n () =
    match Trace.Reader.open_file path with
    | Error e -> failwith e
    | Ok rd -> ignore (Replay.Upipelines.run rd (take n grid_cfgs) img)
  in
  (* Fused cross product: the same 8 cache geometries grid-replay:8cfg
     times plus the same 4 pipeline configurations uarch-grid:4cfg times,
     all from ONE reopen + decode of the trace.  CI tracks fused:8x4 <
     grid-replay:8cfg + uarch-grid:4cfg — the sublinearity the fused
     engine exists for. *)
  let fused_caches =
    List.concat_map
      (fun block ->
        List.map
          (fun sub ->
            let cfg = Memsys.cache_config ~size:1024 ~block ~sub in
            { Replay.Grid.icache = cfg; dcache = cfg })
          [ 4; 8 ])
      [ 8; 16; 32; 64 ]
  in
  let fused () =
    match Trace.Reader.open_file path with
    | Error e -> failwith e
    | Ok rd ->
      ignore
        (Replay.Fused.run ~img rd
           {
             Replay.Fused.buses = [];
             caches = fused_caches;
             pipelines = take 4 grid_cfgs;
           })
  in
  [
    Test.make ~name:"uarch-replay:nocache:queens"
      (Staged.stage (fun () -> ignore (Uarch.replay nocache img tr)));
    Test.make ~name:"uarch-replay:4K:queens"
      (Staged.stage (fun () -> ignore (Uarch.replay cached img tr)));
    Test.make ~name:"uarch-stream:queens"
      (Staged.stage (fun () -> ignore (Uarch.run nocache img)));
    Test.make ~name:"uarch-grid:4cfg:queens" (Staged.stage (uarch_grid 4));
    Test.make ~name:"uarch-grid:8cfg:queens" (Staged.stage (uarch_grid 8));
    Test.make ~name:"fused:8x4:queens" (Staged.stage fused);
  ]

(* ISA-variant substrates (lib/isavar): what the fusion replay pass costs
   on a stored trace (plan construction is hoisted — it is per-image, not
   per-replay), and what the cache grid costs over a mixed-width D16m
   trace, whose wide-marked records take the two-fetch path. *)
let isavar_tests =
  let module Fusion = Repro_isavar.Fusion in
  let capture t name =
    let img = Compile.compile t queens in
    let path = Filename.temp_file name ".trc" in
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    let w = Trace.Writer.create ~insn_bytes:(Target.insn_bytes t) path in
    ignore
      (Machine.run ~trace:false
         ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
         img);
    Trace.Writer.close w;
    match Trace.Reader.open_file path with
    | Ok rd -> (img, rd)
    | Error e -> failwith e
  in
  let d16_img, d16_rd = capture Target.d16 "repro-bench-fusion" in
  let plan = Fusion.plan Fusion.default_rules d16_img in
  let _, d16m_rd = capture Target.d16m "repro-bench-mixed" in
  let mixed_grid_cfgs =
    List.map
      (fun size -> Memsys.cache_config ~size ~block:32 ~sub:4)
      [ 1024; 2048; 4096; 8192 ]
  in
  [
    Test.make ~name:"fusion:queens"
      (Staged.stage (fun () -> ignore (Fusion.replay plan d16_rd)));
    Test.make ~name:"mixed:grid:queens"
      (Staged.stage (fun () ->
           ignore
             (Replay.Grid.run d16m_rd
                (List.map
                   (fun cfg -> { Replay.Grid.icache = cfg; dcache = cfg })
                   mixed_grid_cfgs))));
  ]

(* Service-plane substrates: what the `d16c serve` daemon charges for a
   request, and what its coalescing/batching save.  One lazy in-process
   server on a private socket and a private cache dir (created at the
   first serve test, so its idle worker domains cannot tax the earlier
   measurements — same reasoning as the lazy pool above).  Every
   iteration starts COLD (memo and disk cache cleared): the point of
   comparison is N independent cold clients (serve:direct:8x1, each
   request pays the full computation, the pre-server workflow) against
   8 concurrent duplicates answered by one coalesced run
   (serve:coalesce:8x1) and a grid+uarch pair answered by one fused
   batch (serve:batch:grid).  CI gates (advisorily) on coalesce <
   direct. *)
let serve_tests =
  let module Diskcache = Repro_harness.Diskcache in
  let module Runs = Repro_harness.Runs in
  let module Plan = Repro_harness.Plan in
  let module Proto = Repro_serve.Proto in
  let module Server = Repro_serve.Server in
  let module Client = Repro_serve.Client in
  let module Digests = Repro_serve.Digests in
  let spec s =
    match Plan.spec_of_string s with Ok s -> s | Error m -> failwith m
  in
  let grid = spec "grid:queens:d16" and uarch = spec "uarch:queens:d16" in
  let env =
    lazy
      (let tmp = Filename.get_temp_dir_name () in
       Diskcache.set_dir
         (Filename.concat tmp
            (Printf.sprintf "repro-bench-serve-%d" (Unix.getpid ())));
       let sock =
         Filename.concat tmp
           (Printf.sprintf "repro-bench-serve-%d.sock" (Unix.getpid ()))
       in
       let cfg =
         {
           (Server.default_config ()) with
           Server.unix_path = Some sock;
           tcp = None;
           window_ms = 5.;
           log = ignore;
           log_interval_s = 0.;
         }
       in
       match Server.start cfg with
       | Error m -> failwith m
       | Ok h ->
         at_exit (fun () ->
             Server.stop h;
             Server.wait h;
             try Diskcache.clear () with Sys_error _ -> ());
         Client.Unix_sock sock)
  in
  let cold () =
    Runs.clear_memo ();
    Diskcache.clear ()
  in
  (* One rpc per fresh connection, all in flight at once. *)
  let volley addr reqs =
    let reqs = Array.of_list reqs in
    let slots = Array.make (Array.length reqs) (Error "not run") in
    let fire i =
      match Client.connect addr with
      | Error m -> slots.(i) <- Error m
      | Ok c ->
        slots.(i) <- Client.rpc c reqs.(i);
        Client.close c
    in
    let threads =
      Array.to_list (Array.mapi (fun i _ -> Thread.create fire i) reqs)
    in
    List.iter Thread.join threads;
    Array.iter
      (function
        | Ok (Proto.Sweep_r _) -> ()
        | Ok _ -> failwith "serve bench: unexpected response"
        | Error m -> failwith ("serve bench: " ^ m))
      slots
  in
  [
    Test.make ~name:"serve:coalesce:8x1"
      (Staged.stage (fun () ->
           let addr = Lazy.force env in
           cold ();
           volley addr (List.init 8 (fun _ -> Proto.Sweep grid))));
    Test.make ~name:"serve:batch:grid"
      (Staged.stage (fun () ->
           let addr = Lazy.force env in
           cold ();
           volley addr [ Proto.Sweep grid; Proto.Sweep uarch ]));
    Test.make ~name:"serve:direct:8x1"
      (Staged.stage (fun () ->
           ignore (Lazy.force env);
           for _ = 1 to 8 do
             cold ();
             ignore (Digests.of_spec grid)
           done));
  ]

let benchmark test =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> (name, nan) :: acc)
    results []

let pp_time ns =
  if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.2f ns" ns

let jobs =
  let rec find = function
    | "--jobs" :: n :: _ -> (
      match int_of_string_opt n with Some n when n >= 1 -> n | _ -> 1)
    | _ :: rest -> find rest
    | [] -> Repro_harness.Pool.default_jobs ()
  in
  find (Array.to_list Sys.argv)

let json_path =
  let rec find = function
    | "--json" :: p :: _ -> Some p
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* [--smoke]: substrates only — skip artifact regeneration (phase 1) and
   the per-experiment timings, which need the full run cache.  CI uses
   this to track substrate timings on every push. *)
let smoke = Array.exists (( = ) "--smoke") Sys.argv

(* Flat {"name": ns_per_run, ...} object; OLS estimates that did not
   converge are null.  Test names are [A-Za-z0-9:-], so OCaml's string
   escaping coincides with JSON's. *)
let write_json path results =
  let oc = open_out path in
  output_string oc "{\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %s%s\n" name
        (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
        (if i = n - 1 then "" else ","))
    results;
  output_string oc "}\n";
  close_out oc

let () =
  (* Phase 1: regenerate and print every artifact (also warms the memo and
     the persistent cache).  Wall-clock is reported so cold vs warm cache
     behavior is visible. *)
  if not smoke then begin
    let t0 = Unix.gettimeofday () in
    print_endline (Experiments.render_all ~jobs ());
    let t1 = Unix.gettimeofday () in
    Printf.printf "\nphase 1 (artifacts, jobs=%d): %.2fs wall\n%!" jobs
      (t1 -. t0)
  end;
  (* Phase 2: time each regeneration and the substrates. *)
  Printf.printf "\n================ bench timings ================\n%!";
  (* serve_tests stay LAST: their first run redirects the disk cache to
     a private directory and wakes the server's worker domains, both of
     which would perturb every measurement after them. *)
  let tests =
    if smoke then
      substrate_tests @ trace_tests @ uarch_tests @ isavar_tests @ serve_tests
    else
      experiment_tests @ substrate_tests @ trace_tests @ uarch_tests
      @ isavar_tests @ serve_tests
  in
  let results =
    List.concat_map
      (fun test ->
        let rs = List.sort compare (benchmark test) in
        List.iter
          (fun (name, ns) -> Printf.printf "%-28s %s\n%!" name (pp_time ns))
          rs;
        rs)
      tests
  in
  match json_path with
  | None -> ()
  | Some path ->
    write_json path results;
    Printf.printf "\nwrote %d estimates to %s\n%!" (List.length results) path
