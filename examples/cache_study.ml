(* Cache study: Section 4.1 for one of the paper's "cache benchmarks".
   Sweeps instruction-cache sizes, reporting miss rates and the CPI at a
   given miss penalty — Figures 16 and 17 for one workload, plus the
   headline observation that a D16 cache holds twice the instructions.

   Run with:  dune exec examples/cache_study.exe [benchmark] [penalty]
   (defaults: latex, 8 cycles)                                           *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Table = Repro_util.Table

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "latex" in
  let penalty =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8
  in
  let source = (Suite.find bench).Suite.source in
  Printf.printf
    "Cache study for '%s' (split I/D, direct-mapped, 32B blocks, 4B sub-blocks,\n\
     wrap-around prefetch, miss penalty %d cycles)\n\n"
    bench penalty;
  let run target = snd (Compile.compile_and_run ~trace:true target source) in
  let r16 = run Target.d16 in
  let r32 = run Target.dlxe in
  let caches r insn_bytes size =
    let cfg = Memsys.cache_config ~size ~block:32 ~sub:4 in
    Memsys.replay_cached ~insn_bytes ~icache:cfg ~dcache:cfg r
  in
  let rows =
    List.map
      (fun size ->
        let c16 = caches r16 2 size in
        let c32 = caches r32 4 size in
        let cpi r c =
          Memsys.cpi
            ~cycles:(Memsys.cached_cycles ~miss_penalty:penalty r c)
            ~ic:r.Machine.ic
        in
        let norm16 =
          Memsys.normalized_cpi
            ~cycles:(Memsys.cached_cycles ~miss_penalty:penalty r16 c16)
            ~reference_ic:r32.Machine.ic
        in
        [
          Printf.sprintf "%dK" (size / 1024);
          Table.fmt3 (Memsys.miss_rate c16.Memsys.icache);
          Table.fmt3 (Memsys.miss_rate c32.Memsys.icache);
          Table.fmt2 (cpi r16 c16);
          Table.fmt2 (cpi r32 c32);
          Table.fmt2 norm16;
        ])
      [ 512; 1024; 2048; 4096; 8192; 16384 ]
  in
  print_string
    (Table.render
       [
         "I-cache"; "D16 miss"; "DLXe miss"; "D16 CPI"; "DLXe CPI";
         "D16 norm CPI";
       ]
       rows);
  print_newline ();
  Printf.printf
    "Byte for byte, the D16 cache holds twice the instructions: its miss\n\
     rate tracks the DLXe curve shifted one size up.  Normalized CPI (D16\n\
     cycles over DLXe's path length) shows net performance: where it is\n\
     below the DLXe CPI column, the denser encoding wins outright.\n"
