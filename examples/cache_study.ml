(* Cache study: Section 4.1 for one of the paper's "cache benchmarks".
   Sweeps instruction-cache sizes, reporting miss rates and the CPI at a
   given miss penalty — Figures 16 and 17 for one workload, plus the
   headline observation that a D16 cache holds twice the instructions.

   The sweep uses the single-pass grid engine: each target executes once
   (streaming its trace to a temp file), then one decode of that trace
   feeds every cache size simultaneously (Replay.Grid) — no re-execution
   and no per-size replay.

   Run with:  dune exec examples/cache_study.exe [benchmark] [penalty]
   (defaults: latex, 8 cycles)                                           *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Table = Repro_util.Table
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay

let sizes = [ 512; 1024; 2048; 4096; 8192; 16384 ]

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "latex" in
  let penalty =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8
  in
  let source = (Suite.find bench).Suite.source in
  Printf.printf
    "Cache study for '%s' (split I/D, direct-mapped, 32B blocks, 4B sub-blocks,\n\
     wrap-around prefetch, miss penalty %d cycles)\n\n"
    bench penalty;
  (* One execution per target, streamed to a trace; one decode of that
     trace drives the whole size sweep. *)
  let run_grid target =
    let img = Compile.compile target source in
    let path = Filename.temp_file "repro-cache-study" ".trc" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let w =
          Trace.Writer.create ~insn_bytes:(Target.insn_bytes target) path
        in
        let r =
          Machine.run ~trace:false
            ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
            img
        in
        Trace.Writer.close w;
        let rd =
          match Trace.Reader.open_file path with
          | Ok rd -> rd
          | Error e -> failwith e
        in
        let specs =
          List.map
            (fun size ->
              let cfg = Memsys.cache_config ~size ~block:32 ~sub:4 in
              { Replay.Grid.icache = cfg; dcache = cfg })
            sizes
        in
        (r, Replay.Grid.run rd specs))
  in
  let r16, grid16 = run_grid Target.d16 in
  let r32, grid32 = run_grid Target.dlxe in
  let rows =
    List.map2
      (fun size (c16, c32) ->
        let cpi r c =
          Memsys.cpi
            ~cycles:(Memsys.cached_cycles ~miss_penalty:penalty r c)
            ~ic:r.Machine.ic
        in
        let norm16 =
          Memsys.normalized_cpi
            ~cycles:(Memsys.cached_cycles ~miss_penalty:penalty r16 c16)
            ~reference_ic:r32.Machine.ic
        in
        [
          Printf.sprintf "%dK" (size / 1024);
          Table.fmt3 (Memsys.miss_rate c16.Memsys.icache);
          Table.fmt3 (Memsys.miss_rate c32.Memsys.icache);
          Table.fmt2 (cpi r16 c16);
          Table.fmt2 (cpi r32 c32);
          Table.fmt2 norm16;
        ])
      sizes
      (List.combine grid16 grid32)
  in
  print_string
    (Table.render
       [
         "I-cache"; "D16 miss"; "DLXe miss"; "D16 CPI"; "DLXe CPI";
         "D16 norm CPI";
       ]
       rows);
  print_newline ();
  Printf.printf
    "Byte for byte, the D16 cache holds twice the instructions: its miss\n\
     rate tracks the DLXe curve shifted one size up.  Normalized CPI (D16\n\
     cycles over DLXe's path length) shows net performance: where it is\n\
     below the DLXe CPI column, the denser encoding wins outright.\n"
