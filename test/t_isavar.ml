(* The ISA-variant subsystem (lib/isavar): the mixed-width D16m encoding
   and the macro-op fusion pass.

   - D16m: wide-form roundtrips over random legal instructions, narrow
     forms byte-identical to D16, whole compiled images re-decodable,
     and the statement fuzzer run differentially against the host
     reference interpreter (with the wide-marked trace capture
     roundtripping through the codec).
   - Fusion: with an empty rule table every engine (streamed, direct,
     trace replay) is byte-equal to a plain scoreboard walk — the
     differential gate — and with the shipped rules the engines agree
     with each other, per-rule counters sum to the fused total, and the
     fused path length is strictly below the baseline where pairs hit.
   - Target plumbing: the five paper targets' describe strings are
     byte-identical to the seed (persistent cache keys must not move). *)

module Target = Repro_core.Target
module Insn = Repro_core.Insn
module D16 = Repro_core.D16
module D16m = Repro_core.D16m
module Suite = Repro_workloads.Suite
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine
module Link = Repro_link.Link
module Predecode = Repro_uarch.Predecode
module Scoreboard = Repro_uarch.Scoreboard
module Trace = Repro_trace.Trace
module Reader = Repro_trace.Trace.Reader
module Fusion = Repro_isavar.Fusion

let with_temp f =
  let path = Filename.temp_file "repro-t-isavar" ".trc" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ---- Target description stability ---- *)

(* The exact seed spellings: Diskcache keys embed these, so a changed
   byte would silently invalidate every stored measurement. *)
let seed_describe =
  [
    "D16/16/2;isa=D16;gpr=16;fpr=16;three_address=false;zero_r0=false;ext_cmpeqi=false";
    "DLXe/16/2;isa=DLXe;gpr=16;fpr=16;three_address=false;zero_r0=true;ext_cmpeqi=false";
    "DLXe/16/3;isa=DLXe;gpr=16;fpr=16;three_address=true;zero_r0=true;ext_cmpeqi=false";
    "DLXe/32/2;isa=DLXe;gpr=32;fpr=32;three_address=false;zero_r0=true;ext_cmpeqi=false";
    "DLXe/32/3;isa=DLXe;gpr=32;fpr=32;three_address=true;zero_r0=true;ext_cmpeqi=false";
  ]

let test_describe_stable () =
  List.iter2
    (fun t expect ->
      Alcotest.(check string) t.Target.name expect (Target.describe t))
    Target.all seed_describe;
  (* The variant is spelled with a new trailing field, so its keys are
     disjoint from every seed key. *)
  Alcotest.(check bool) "d16m describe has mixed=true" true
    (String.length (Target.describe Target.d16m) > 0
    && Filename.check_suffix (Target.describe Target.d16m) ";mixed=true");
  Alcotest.(check bool) "d16m parses" true
    (Target.of_name "d16m" = Ok Target.d16m);
  Alcotest.(check bool) "all_names lists d16m" true
    (List.mem "d16m" Target.all_names);
  (* The paper's five-column tables must not grow a sixth machine. *)
  Alcotest.(check int) "Target.all stays the paper five" 5
    (List.length Target.all)

(* ---- D16m wide-form encoding ---- *)

(* Random D16m-legal instructions, biased toward the wide classes; the
   degenerate cases (small immediates, rd = ra) fall back to narrow
   forms, which the properties check against D16 verbatim. *)
let gen_d16m : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  oneof
    [
      (* WALU: three-address register ALU, integer and FP. *)
      (let* op = T_encoding.gen_alu and* rd = reg and* ra = reg and* rb = reg in
       return (Insn.Alu (op, rd, ra, rb)));
      (let* op = T_encoding.gen_fbin and* fd = reg and* fa = reg and* fb = reg in
       return (Insn.Fbin (op, Df, fd, fa, fb)));
      (* WALUI: add/sub signed 13, and/xor zero-extended 13, shifts 0..31. *)
      (let* rd = reg and* ra = reg and* imm = int_range (-4096) 4095 in
       oneofl [ Insn.Alui (Add, rd, ra, imm); Insn.Alui (Sub, rd, ra, imm) ]);
      (let* rd = reg and* ra = reg and* imm = int_bound 8191 in
       oneofl [ Insn.Alui (And, rd, ra, imm); Insn.Alui (Xor, rd, ra, imm) ]);
      (let* rd = reg and* ra = reg and* sh = int_bound 31 in
       oneofl
         [
           Insn.Alui (Shl, rd, ra, sh);
           Insn.Alui (Shr, rd, ra, sh);
           Insn.Alui (Shra, rd, ra, sh);
         ]);
      (* WORI: zero-extended 16-bit or (constant synthesis with mvhi). *)
      (let* rd = reg and* ra = reg and* imm = int_bound 65535 in
       return (Insn.Alui (Or, rd, ra, imm)));
      (* WMEM: signed 12-bit displacements, every width. *)
      (let* rd = reg and* base = reg and* off = int_range (-2048) 2047 in
       oneofl
         [
           Insn.Load (Lw, rd, base, off);
           Insn.Load (Lh, rd, base, off);
           Insn.Load (Lhu, rd, base, off);
           Insn.Load (Lb, rd, base, off);
           Insn.Load (Lbu, rd, base, off);
           Insn.Store (Sw, rd, base, off);
           Insn.Store (Sh, rd, base, off);
           Insn.Store (Sb, rd, base, off);
           Insn.Fload (Df, rd, base, off);
           Insn.Fstore (Df, rd, base, off);
         ]);
      (* WMVI / WMVHI. *)
      (let* rd = reg and* imm = int_range (-32768) 32767 in
       return (Insn.Mvi (rd, imm)));
      (let* rd = reg and* imm = int_bound 65535 in
       return (Insn.Mvhi (rd, imm)));
      (* WCMPI: all six D16 conditions, to r0. *)
      (let* c = T_encoding.gen_cond6 and* ra = reg
       and* imm = int_range (-32768) 32767 in
       return (Insn.Cmpi (c, 0, ra, imm)));
      (* WBR: 2-scaled 16-bit reach. *)
      (let* off = int_range (-32768) 32767 in
       oneofl
         [
           Insn.Br (2 * off); Insn.Brl (2 * off);
           Insn.Bz (0, 2 * off); Insn.Bnz (0, 2 * off);
         ]);
    ]

let arb_d16m = QCheck.make ~print:Insn.to_string gen_d16m

let encoding_tests =
  let open QCheck in
  [
    Test.make ~name:"D16m generated instructions are legal" ~count:2000
      arb_d16m
      (fun i -> Target.legal Target.d16m i = Ok ());
    Test.make ~name:"D16m encode/decode roundtrip" ~count:2000 arb_d16m
      (fun i ->
        let h0, h1 = D16m.encode i in
        D16m.decode h0 (Option.value h1 ~default:0) = Some i);
    Test.make ~name:"D16m wide prefix and size are consistent" ~count:2000
      arb_d16m
      (fun i ->
        let h0, h1 = D16m.encode i in
        let in16 h = h >= 0 && h < 65536 in
        in16 h0
        && (match h1 with Some h -> in16 h | None -> true)
        && D16m.is_wide_prefix h0 = D16m.is_wide i
        && (h1 <> None) = D16m.is_wide i
        && D16m.size i = (if D16m.is_wide i then 4 else 2));
    Test.make ~name:"D16m narrow forms are byte-identical to D16" ~count:2000
      arb_d16m
      (fun i ->
        D16m.is_wide i
        ||
        let h0, h1 = D16m.encode i in
        h1 = None && h0 = D16.encode i);
    (* The free-space claim underneath the whole design: nothing D16
       encodes ever opens a wide form. *)
    Test.make ~name:"D16 encodings never collide with the wide prefix"
      ~count:2000
      (QCheck.make ~print:Insn.to_string T_encoding.gen_d16)
      (fun i -> not (D16m.is_wide_prefix (D16.encode i)));
  ]

(* A whole compiled image re-decodes instruction by instruction, and the
   address map is self-consistent (objdump's loop in miniature). *)
let test_image_roundtrip () =
  let img = Compile.compile Target.d16m (Suite.find "queens").Suite.source in
  let wide = ref 0 in
  Array.iteri
    (fun i insn ->
      let h0, h1 = D16m.encode insn in
      if h1 <> None then incr wide;
      (match D16m.decode h0 (Option.value h1 ~default:0) with
      | Some j ->
        Alcotest.(check string)
          (Printf.sprintf "insn %d redecodes" i)
          (Insn.to_string insn) (Insn.to_string j)
      | None -> Alcotest.fail (Printf.sprintf "insn %d: decode failed" i));
      Alcotest.(check int)
        (Printf.sprintf "index_at inverts addr_of.(%d)" i)
        i
        (Link.index_at img img.Link.addr_of.(i)))
    img.Link.insns;
  Alcotest.(check bool) "image uses wide forms" true (!wide > 0)

(* The statement fuzzer, differentially on the mixed-width target; the
   captured (wide-marked) trace must also roundtrip through the codec. *)
let fuzz_d16m =
  QCheck.Test.make ~name:"random programs match reference on D16m" ~count:25
    (QCheck.make ~print:T_progfuzz.program_c T_progfuzz.gen_stmts)
    (fun stmts ->
      let src = T_progfuzz.program_c stmts in
      let _, r = Compile.compile_and_run ~trace:true Target.d16m src in
      let tr = Option.get r.Machine.trace in
      let records =
        Array.to_list
          (Array.mapi (fun i a -> (a, tr.Machine.dinfo.(i))) tr.Machine.iaddr)
      in
      let roundtripped =
        with_temp (fun path ->
            let w = Trace.Writer.create ~chunk_records:64 ~insn_bytes:2 path in
            List.iter (fun (pc, dinfo) -> Trace.Writer.step w ~pc ~dinfo) records;
            Trace.Writer.close w;
            match Reader.open_file path with
            | Error _ -> false
            | Ok rd ->
              let out = ref [] in
              Reader.iter rd (fun ~pc ~dinfo -> out := (pc, dinfo) :: !out);
              List.rev !out = records)
      in
      r.Machine.output = T_progfuzz.reference stmts && roundtripped)

(* ---- Macro-op fusion ---- *)

(* The reference the empty-rule gate compares against: a plain scoreboard
   walk over the executed stream, sharing nothing with Fusion's pairing
   machinery. *)
let baseline_walk (img : Link.image) iaddrs =
  let t = img.Link.target in
  let descs = Predecode.table img in
  let sb = Scoreboard.create ~n_gpr:t.Target.n_gpr ~n_fpr:t.Target.n_fpr in
  Array.iter
    (fun ia -> Scoreboard.step sb descs.(Link.index_at img (ia land lnot 1)))
    iaddrs;
  (Scoreboard.clock sb, Scoreboard.load_stalls sb, Scoreboard.fp_stalls sb)

let traced_run bench t f =
  let img = Compile.compile t (Suite.find bench).Suite.source in
  with_temp (fun path ->
      let w =
        Trace.Writer.create ~chunk_records:10_000
          ~insn_bytes:(Target.insn_bytes t) path
      in
      let r =
        Machine.run ~trace:true
          ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
          img
      in
      Trace.Writer.close w;
      match Reader.open_file path with
      | Error e -> Alcotest.fail e
      | Ok rd -> f img r rd)

let check_counters name (a : Fusion.counters) (b : Fusion.counters) =
  Alcotest.(check int) (name ^ " ic") a.Fusion.ic b.Fusion.ic;
  Alcotest.(check int) (name ^ " fused") a.Fusion.fused b.Fusion.fused;
  Alcotest.(check (list int))
    (name ^ " rule_hits")
    (Array.to_list a.Fusion.rule_hits)
    (Array.to_list b.Fusion.rule_hits);
  Alcotest.(check int)
    (name ^ " interlock_clock")
    a.Fusion.interlock_clock b.Fusion.interlock_clock;
  Alcotest.(check int)
    (name ^ " load_interlocks")
    a.Fusion.load_interlocks b.Fusion.load_interlocks;
  Alcotest.(check int)
    (name ^ " fp_interlocks")
    a.Fusion.fp_interlocks b.Fusion.fp_interlocks

let fusion_differential bench (t : Target.t) =
  traced_run bench t (fun img r rd ->
      let name s = bench ^ " " ^ t.Target.name ^ " " ^ s in
      let iaddrs = (Option.get r.Machine.trace).Machine.iaddr in
      (* Empty rule table: every engine must be byte-equal to the plain
         scoreboard walk — the pairing machinery must be invisible. *)
      let empty = Fusion.plan [] img in
      Alcotest.(check int) (name "empty static_pairs") 0
        (Fusion.static_pairs empty);
      let clock, loads, fps = baseline_walk img iaddrs in
      let against_baseline what (c : Fusion.counters) =
        Alcotest.(check int) (name (what ^ " ic")) r.Machine.ic c.Fusion.ic;
        Alcotest.(check int) (name (what ^ " fused")) 0 c.Fusion.fused;
        Alcotest.(check int) (name (what ^ " clock")) clock
          c.Fusion.interlock_clock;
        Alcotest.(check int) (name (what ^ " loads")) loads
          c.Fusion.load_interlocks;
        Alcotest.(check int) (name (what ^ " fps")) fps c.Fusion.fp_interlocks;
        Alcotest.(check int)
          (name (what ^ " dynamic_ops"))
          r.Machine.ic (Fusion.dynamic_ops c)
      in
      against_baseline "empty direct" (Fusion.direct empty r);
      against_baseline "empty replay" (Fusion.replay empty rd);
      let st = Fusion.stream_start empty in
      Array.iter (fun iaddr -> Fusion.stream_step st ~iaddr) iaddrs;
      against_baseline "empty streamed" (Fusion.stream_finish st);
      (* Shipped rules: the three engines agree field-for-field, per-rule
         counters sum to the fused total, and the accounting is
         conservative (a pair removes exactly one issued op). *)
      let plan = Fusion.plan Fusion.default_rules img in
      let direct = Fusion.direct plan r in
      let replayed = Fusion.replay plan rd in
      check_counters (name "default direct=replay") direct replayed;
      let st = Fusion.stream_start plan in
      Array.iter (fun iaddr -> Fusion.stream_step st ~iaddr) iaddrs;
      check_counters (name "default direct=streamed") direct
        (Fusion.stream_finish st);
      Alcotest.(check int)
        (name "rule_hits sum to fused")
        direct.Fusion.fused
        (Array.fold_left ( + ) 0 direct.Fusion.rule_hits);
      Alcotest.(check int) (name "ic matches run") r.Machine.ic
        direct.Fusion.ic;
      Alcotest.(check bool)
        (name "dynamic ops in range")
        true
        (Fusion.dynamic_ops direct <= direct.Fusion.ic
        && Fusion.dynamic_ops direct >= (direct.Fusion.ic + 1) / 2);
      if Fusion.static_pairs plan > 0 && t.Target.name = Target.d16.Target.name
      then
        Alcotest.(check bool)
          (name "fused path strictly shorter")
          true
          (Fusion.dynamic_ops direct < direct.Fusion.ic))

let fusion_case bench =
  Alcotest.test_case ("fusion differential " ^ bench) `Slow (fun () ->
      (* D16m runs the same pass over wide-marked addresses — the stream
         and replay engines must strip the mark bit identically. *)
      List.iter (fusion_differential bench) [ Target.d16; Target.d16m ])

let test_merge () =
  (* cmp+branch on queens/d16: static pairs exist, and the merged
     descriptor forwards r0 inside the pair (the branch's read of r0
     disappears). *)
  let img = Compile.compile Target.d16 (Suite.find "queens").Suite.source in
  let plan = Fusion.plan Fusion.default_rules img in
  Alcotest.(check bool) "queens has static pairs" true
    (Fusion.static_pairs plan > 0);
  let d_cmp =
    { Predecode.reads = [ Predecode.Rg 3; Predecode.Rg 4 ];
      write = Some { Predecode.dst = Predecode.Wg 0; latency = 0; cause = Predecode.Load } }
  in
  let d_br = { Predecode.reads = [ Predecode.Rg 0 ]; write = None } in
  let m = Fusion.merge d_cmp d_br in
  Alcotest.(check bool) "merged drops the forwarded r0 read" true
    (not (List.mem (Predecode.Rg 0) m.Predecode.reads));
  Alcotest.(check bool) "merged keeps the sources" true
    (List.mem (Predecode.Rg 3) m.Predecode.reads
    && List.mem (Predecode.Rg 4) m.Predecode.reads)

let tests =
  [
    Alcotest.test_case "seed describe strings are stable" `Quick
      test_describe_stable;
    Alcotest.test_case "compiled D16m image re-decodes" `Quick
      test_image_roundtrip;
    Alcotest.test_case "merged descriptors forward" `Quick test_merge;
  ]
  @ List.map QCheck_alcotest.to_alcotest encoding_tests
  @ [ QCheck_alcotest.to_alcotest fuzz_d16m ]
  @ List.map fusion_case [ "queens"; "towers"; "whetstone" ]
