let () =
  Alcotest.run "repro"
    [
      ("util", T_util.tests);
      ("encoding", T_encoding.tests);
      ("frontend", T_frontend.tests);
      ("cfg", T_cfg.tests);
      ("opt", T_opt.tests);
      ("compiler", T_compiler.tests);
      ("machine", T_machine.tests);
      ("progfuzz", T_progfuzz.tests);
      ("memsys", T_memsys.tests);
      ("uarch", T_uarch.tests);
      ("trace", T_trace.tests);
      ("isavar", T_isavar.tests);
      ("link", T_link.tests);
      ("regalloc", T_regalloc.tests);
      ("extension", T_extension.tests);
      ("integration", T_integration.tests);
      ("runs", T_runs.tests);
      ("experiments", T_experiments.tests);
      ("serve", T_serve.tests);
    ]
