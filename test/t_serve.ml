(* Service plane: the JSON codec survives round-trips and adversarial
   input, the protocol codecs are total, and a live server coalesces,
   batches, times out, sheds, and shuts down the way lib/serve/*.mli
   promise.  The server cases drive real compiles, so they are tagged
   slow. *)

module Json = Repro_util.Json
module Target = Repro_core.Target
module Plan = Repro_harness.Plan
module Runs = Repro_harness.Runs
module Diskcache = Repro_harness.Diskcache
module Proto = Repro_serve.Proto
module Wire = Repro_serve.Wire
module Digests = Repro_serve.Digests
module Server = Repro_serve.Server
module Client = Repro_serve.Client

(* JSON codec. ------------------------------------------------------------ *)

let json_gen =
  let open QCheck.Gen in
  let finite_float =
    map (fun f -> if Float.is_finite f then f else 0.) float
  in
  (* Any byte may appear in a string — the printer must escape its way
     out of whatever we throw at it. *)
  let raw_string = string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 12) in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun f -> Json.Float f) finite_float;
               map (fun s -> Json.Str s) raw_string;
             ]
         in
         if n = 0 then leaf
         else
           frequency
             [
               (2, leaf);
               ( 1,
                 map (fun l -> Json.Arr l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map (fun l -> Json.Obj l)
                   (list_size (int_bound 4)
                      (pair raw_string (self (n / 2)))) );
             ])

let json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json print/parse round-trip"
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m)

(* Every malformed input is an [Error] — never an exception, never a
   value.  Each entry is independently known-bad. *)
let test_json_adversarial () =
  let bad =
    [
      "";
      "   ";
      "tru";
      "truex";
      "nan";
      "+1";
      "-";
      "1.";
      ".5";
      "1e";
      "01";
      "1e999";
      "[1,]";
      "[1 2]";
      "[1,2";
      "{";
      "{\"a\":}";
      "{a:1}";
      "{\"a\":1,}";
      "{\"a\" 1}";
      "\"abc";
      "\"\\q\"";
      "\"\\u12\"";
      "\"\\ud800\"";
      "\"\\udc00x\"";
      "\"\n\"";
      "\"a\" \"b\"";
      "1 2";
      String.make 400 '[';
      "\xff";
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok v ->
        Alcotest.failf "accepted %S as %s" s (Json.to_string v))
    bad;
  (* The depth bound is a bound, not a blanket refusal. *)
  let nested d = String.make d '[' ^ String.make d ']' in
  (match Json.parse (nested 40) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "depth 40 rejected: %s" m);
  match Json.parse ~max_depth:8 (nested 40) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bound not enforced"

(* Protocol codecs. ------------------------------------------------------- *)

let spec_gen =
  let open QCheck.Gen in
  let kind = oneofl [ Plan.Stats; Plan.Grid; Plan.Uarch; Plan.Fused; Plan.Trace ] in
  let bench =
    oneofl (List.map (fun (b : Repro_workloads.Suite.benchmark) -> b.name)
              Repro_workloads.Suite.all)
  in
  let target = oneofl Target.all in
  map (fun (kind, bench, target) -> { Plan.kind; bench; target })
    (triple kind bench target)

let request_gen =
  let open QCheck.Gen in
  let printable = string_size ~gen:printable (int_bound 12) in
  oneof
    [
      return Proto.Ping;
      return Proto.Status;
      return Proto.Shutdown;
      map (fun s -> Proto.Sweep s) spec_gen;
      map (fun s -> Proto.Render s) printable;
      map (fun ms -> Proto.Sleep (Float.abs (Float.of_int ms))) (int_bound 10_000);
    ]

let envelope_gen payload_gen =
  let open QCheck.Gen in
  map
    (fun (id, dl, payload) ->
      let deadline_ms =
        Option.map (fun d -> Float.of_int (1 + abs d)) dl
      in
      { Proto.id; deadline_ms; payload })
    (triple nat (opt (int_bound 100_000)) payload_gen)

let request_equal a b =
  match (a, b) with
  | Proto.Ping, Proto.Ping
  | Proto.Status, Proto.Status
  | Proto.Shutdown, Proto.Shutdown ->
    true
  | Proto.Sweep s1, Proto.Sweep s2 ->
    Plan.spec_to_string s1 = Plan.spec_to_string s2
  | Proto.Render a, Proto.Render b -> String.equal a b
  | Proto.Sleep a, Proto.Sleep b -> a = b
  | _ -> false

let request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"protocol request round-trip"
    (QCheck.make
       ~print:(fun e -> Json.to_string (Proto.request_to_json e))
       (envelope_gen request_gen))
    (fun env ->
      match Proto.request_of_json (Proto.request_to_json env) with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
      | Ok env' ->
        env'.Proto.id = env.Proto.id
        && env'.Proto.deadline_ms = env.Proto.deadline_ms
        && request_equal env'.Proto.payload env.Proto.payload)

let status_gen =
  let open QCheck.Gen in
  let f = map Float.of_int (int_bound 1_000_000) in
  map
    (fun ((a, b, c, d, e), (g, h, i, j, k), (l, m, n, o, p), (q, r)) ->
      {
        Proto.uptime_s = q;
        accepted = a;
        completed = b;
        failed = c;
        coalesced = d;
        batches = e;
        batched = g;
        max_batch = h;
        runs = i;
        queue_depth = j;
        waiting = k;
        timeouts = l;
        shed = m;
        disk_hits = n;
        disk_misses = o;
        latency_ms_sum = r;
        latency_ms_max = Float.of_int p;
      })
    (quad
       (tup5 nat nat nat nat nat)
       (tup5 nat nat nat nat nat)
       (tup5 nat nat nat nat nat)
       (pair f f))

let response_gen =
  let open QCheck.Gen in
  let printable = string_size ~gen:printable (int_bound 20) in
  let code =
    oneofl
      [ Proto.Busy; Proto.Timeout; Proto.Bad_request; Proto.Server_error;
        Proto.Shutting_down ]
  in
  oneof
    [
      return Proto.Pong;
      return Proto.Slept;
      return Proto.Bye;
      map (fun s -> Proto.Status_r s) status_gen;
      map
        (fun (spec, digest, batch, ms) ->
          Proto.Sweep_r { spec; digest; batch; ms = Float.of_int ms })
        (quad spec_gen printable nat (int_bound 100_000));
      map (fun (id, text) -> Proto.Render_r { id; text }) (pair printable printable);
      map (fun (code, message) -> Proto.Error_r { code; message })
        (pair code printable);
    ]

(* decode . encode = identity, checked through the encoder itself:
   re-encoding the decoded value must reproduce the original JSON. *)
let response_roundtrip =
  QCheck.Test.make ~count:300 ~name:"protocol response round-trip"
    (QCheck.make
       ~print:(fun e -> Json.to_string (Proto.response_to_json e))
       (envelope_gen response_gen))
    (fun env ->
      let j = Proto.response_to_json env in
      match Proto.response_of_json j with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m
      | Ok env' -> Json.equal j (Proto.response_to_json env'))

let test_protocol_adversarial () =
  let bad =
    [
      "{}";
      "[1,2]";
      "\"ping\"";
      "{\"id\":1}";
      "{\"op\":\"ping\"}";
      "{\"id\":\"x\",\"op\":\"ping\"}";
      "{\"id\":1,\"op\":\"frobnicate\"}";
      "{\"id\":1,\"op\":\"sweep\"}";
      "{\"id\":1,\"op\":\"sweep\",\"spec\":\"grid:nope:d16\"}";
      "{\"id\":1,\"op\":\"sweep\",\"spec\":42}";
      "{\"id\":1,\"op\":\"render\"}";
      "{\"id\":1,\"op\":\"sleep\"}";
      "{\"id\":1,\"op\":\"sleep\",\"ms\":\"soon\"}";
    ]
  in
  List.iter
    (fun s ->
      let j =
        match Json.parse s with
        | Ok j -> j
        | Error m -> Alcotest.failf "fixture %S does not parse: %s" s m
      in
      match Proto.request_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S as a request" s)
    bad

(* Plan spec syntax. ------------------------------------------------------ *)

let test_spec_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun target ->
          let spec = { Plan.kind; bench = "queens"; target } in
          let s = Plan.spec_to_string spec in
          match Plan.spec_of_string s with
          | Error m -> Alcotest.failf "%s: %s" s m
          | Ok spec' ->
            Alcotest.(check string) s s (Plan.spec_to_string spec');
            Alcotest.(check bool) (s ^ " kind") true (spec'.Plan.kind = kind);
            Alcotest.(check string) (s ^ " target")
              target.Target.name spec'.Plan.target.Target.name)
        Target.all)
    [ Plan.Stats; Plan.Grid; Plan.Uarch; Plan.Fused; Plan.Trace ];
  List.iter
    (fun s ->
      match Plan.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec %S" s)
    [
      ""; "grid"; "grid:queens"; "grid:queens:d16:x"; "nope:queens:d16";
      "grid:nope:d16"; "grid:queens:nope";
    ]

(* Live server. ----------------------------------------------------------- *)

let sock_seq = ref 0

(* A private cache dir and a private socket per case: server tests must
   never see a developer's _runs_cache or a stale daemon. *)
let with_server ?jobs ?(window_ms = 50.) ?(max_queue = 64) f =
  incr sock_seq;
  let tmp = Filename.get_temp_dir_name () in
  let cache =
    Filename.concat tmp
      (Printf.sprintf "repro-serve-cache-%d-%d" (Unix.getpid ()) !sock_seq)
  in
  let path =
    Filename.concat tmp
      (Printf.sprintf "repro-serve-%d-%d.sock" (Unix.getpid ()) !sock_seq)
  in
  let old = Diskcache.dir () in
  Diskcache.set_dir cache;
  Runs.clear_memo ();
  Fun.protect
    ~finally:(fun () ->
      Runs.clear_memo ();
      Diskcache.clear ();
      (try Sys.rmdir cache with Sys_error _ -> ());
      Diskcache.set_dir old)
    (fun () ->
      let cfg =
        {
          (Server.default_config ()) with
          Server.unix_path = Some path;
          tcp = None;
          jobs;
          window_ms;
          max_queue;
          log = ignore;
          log_interval_s = 0.;
        }
      in
      match Server.start cfg with
      | Error m -> Alcotest.fail m
      | Ok h ->
        Fun.protect
          ~finally:(fun () ->
            Server.stop h;
            Server.wait h)
          (fun () -> f (Client.Unix_sock path) h))

let rpc_exn c ?deadline_ms r =
  match Client.rpc c ?deadline_ms r with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "rpc: %s" m

let connect_exn addr =
  match Client.connect addr with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

(* Fire one rpc per fresh connection, all at once; collect in order. *)
let volley addr reqs =
  let reqs = Array.of_list reqs in
  let slots = Array.make (Array.length reqs) (Error "not run") in
  let fire i =
    match Client.connect addr with
    | Error m -> slots.(i) <- Error m
    | Ok c ->
      slots.(i) <- Client.rpc c reqs.(i);
      Client.close c
  in
  let threads =
    Array.to_list (Array.mapi (fun i _ -> Thread.create fire i) reqs)
  in
  List.iter Thread.join threads;
  Array.to_list slots

let digest_of = function
  | Ok (Proto.Sweep_r { digest; batch; _ }) -> (digest, batch)
  | Ok r ->
    Alcotest.failf "expected Sweep_r, got %s"
      (Json.to_string
         (Proto.response_to_json { Proto.id = 0; deadline_ms = None; payload = r }))
  | Error m -> Alcotest.failf "rpc: %s" m

let status_exn c =
  match rpc_exn c Proto.Status with
  | Proto.Status_r s -> s
  | _ -> Alcotest.fail "expected Status_r"

(* N identical concurrent requests: one underlying run, N - 1 coalesced
   joins, every response the same digest stamped batch = N. *)
let test_coalescing () =
  with_server (fun addr h ->
      ignore h;
      let spec =
        match Plan.spec_of_string "grid:queens:d16" with
        | Ok s -> s
        | Error m -> Alcotest.fail m
      in
      let n = 5 in
      let answers =
        List.map digest_of (volley addr (List.init n (fun _ -> Proto.Sweep spec)))
      in
      let d0 = fst (List.hd answers) in
      List.iter
        (fun (d, batch) ->
          Alcotest.(check string) "digest" d0 d;
          Alcotest.(check int) "batch" n batch)
        answers;
      let c = connect_exn addr in
      let s = status_exn c in
      Client.close c;
      Alcotest.(check int) "runs" 1 s.Proto.runs;
      Alcotest.(check int) "coalesced" (n - 1) s.Proto.coalesced;
      Alcotest.(check int) "timeouts" 0 s.Proto.timeouts;
      Alcotest.(check int) "shed" 0 s.Proto.shed)

(* Two different-kind sweeps for one (bench, target) inside the window:
   one fused execution answers both, and each digest equals what a
   directly-run plan produces in a fresh cache — batching is invisible
   in the results. *)
let test_batching_byte_equal () =
  let grid, uarch =
    match
      (Plan.spec_of_string "grid:queens:d16", Plan.spec_of_string "uarch:queens:d16")
    with
    | Ok g, Ok u -> (g, u)
    | Error m, _ | _, Error m -> Alcotest.fail m
  in
  (* Ground truth: each spec run directly, alone, in a throwaway cache. *)
  let direct =
    let tmp = Filename.get_temp_dir_name () in
    let cache =
      Filename.concat tmp
        (Printf.sprintf "repro-serve-direct-%d" (Unix.getpid ()))
    in
    let old = Diskcache.dir () in
    Diskcache.set_dir cache;
    Runs.clear_memo ();
    Fun.protect
      ~finally:(fun () ->
        Runs.clear_memo ();
        Diskcache.clear ();
        (try Sys.rmdir cache with Sys_error _ -> ());
        Diskcache.set_dir old)
      (fun () -> (Digests.of_spec grid, Digests.of_spec uarch))
  in
  with_server (fun addr h ->
      ignore h;
      match volley addr [ Proto.Sweep grid; Proto.Sweep uarch ] with
      | [ g; u ] ->
        let dg, bg = digest_of g and du, bu = digest_of u in
        Alcotest.(check string) "grid digest = direct" (fst direct) dg;
        Alcotest.(check string) "uarch digest = direct" (snd direct) du;
        Alcotest.(check int) "grid batch" 2 bg;
        Alcotest.(check int) "uarch batch" 2 bu;
        let c = connect_exn addr in
        let s = status_exn c in
        Client.close c;
        Alcotest.(check int) "one batched run" 1 s.Proto.runs;
        Alcotest.(check int) "batches" 1 s.Proto.batches;
        Alcotest.(check int) "batched requests" 2 s.Proto.batched;
        Alcotest.(check int) "max batch" 2 s.Proto.max_batch
      | _ -> Alcotest.fail "volley arity")

(* A deadline shorter than the job: a typed Timeout, the connection
   stays usable, and the counter records it. *)
let test_timeout () =
  with_server (fun addr h ->
      ignore h;
      let c = connect_exn addr in
      (match rpc_exn c ~deadline_ms:50. (Proto.Sleep 1_000.) with
      | Proto.Error_r { code = Proto.Timeout; _ } -> ()
      | r ->
        Alcotest.failf "expected Timeout, got %s"
          (Json.to_string
             (Proto.response_to_json
                { Proto.id = 0; deadline_ms = None; payload = r })));
      (match rpc_exn c Proto.Ping with
      | Proto.Pong -> ()
      | _ -> Alcotest.fail "connection unusable after timeout");
      let s = status_exn c in
      Alcotest.(check int) "timeouts" 1 s.Proto.timeouts;
      Client.close c)

(* More concurrent holds than the bounded queue admits: the excess is
   answered Busy immediately — nobody hangs, and the shed counter
   matches. *)
let test_load_shed () =
  with_server ~jobs:2 ~max_queue:2 (fun addr h ->
      ignore h;
      let n = 5 in
      let answers = volley addr (List.init n (fun _ -> Proto.Sleep 800.)) in
      let slept, busy =
        List.fold_left
          (fun (s, b) -> function
            | Ok Proto.Slept -> (s + 1, b)
            | Ok (Proto.Error_r { code = Proto.Busy; _ }) -> (s, b + 1)
            | Ok r ->
              Alcotest.failf "unexpected response %s"
                (Json.to_string
                   (Proto.response_to_json
                      { Proto.id = 0; deadline_ms = None; payload = r }))
            | Error m -> Alcotest.failf "rpc: %s" m)
          (0, 0) answers
      in
      Alcotest.(check int) "everyone answered" n (slept + busy);
      Alcotest.(check bool) "some shed" true (busy >= 1);
      Alcotest.(check bool) "some served" true (slept >= 2);
      let c = connect_exn addr in
      let s = status_exn c in
      Client.close c;
      Alcotest.(check int) "shed counter" busy s.Proto.shed)

(* Raw junk on the socket: a typed bad-request reply, then the server
   closes that connection; a well-framed non-request keeps it open. *)
let test_malformed_never_hangs () =
  with_server (fun addr h ->
      ignore h;
      (* Not JSON at all. *)
      let c = connect_exn addr in
      let raw = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match addr with
      | Client.Unix_sock p -> Unix.connect raw (Unix.ADDR_UNIX p)
      | _ -> assert false);
      let wc = Wire.of_fd raw in
      let line = Bytes.of_string "this is not json\n" in
      ignore (Unix.write raw line 0 (Bytes.length line));
      (match Wire.recv wc with
      | Ok (Some j) -> (
        match Proto.response_of_json j with
        | Ok { Proto.payload = Proto.Error_r { code = Proto.Bad_request; _ }; _ } ->
          ()
        | _ -> Alcotest.failf "expected bad-request, got %s" (Json.to_string j))
      | Ok None -> Alcotest.fail "closed without a reply"
      | Error m -> Alcotest.failf "recv: %s" m);
      (* ... and the connection is then closed. *)
      (match Wire.recv wc with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "expected EOF after junk"
      | Error _ -> ());
      Unix.close raw;
      (* Well-framed JSON that is not a request: typed error echoing the
         id, connection survives. *)
      let raw2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match addr with
      | Client.Unix_sock p -> Unix.connect raw2 (Unix.ADDR_UNIX p)
      | _ -> assert false);
      let wc2 = Wire.of_fd raw2 in
      (match Wire.send wc2 (Json.Obj [ ("id", Json.Int 7); ("x", Json.Int 1) ]) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "send: %s" m);
      (match Wire.recv wc2 with
      | Ok (Some j) -> (
        match Proto.response_of_json j with
        | Ok
            {
              Proto.id = 7;
              payload = Proto.Error_r { code = Proto.Bad_request; _ };
              _;
            } ->
          ()
        | _ -> Alcotest.failf "expected id-7 bad-request, got %s" (Json.to_string j))
      | Ok None -> Alcotest.fail "closed after recoverable error"
      | Error m -> Alcotest.failf "recv: %s" m);
      (match Wire.send wc2 (Proto.request_to_json
                              { Proto.id = 8; deadline_ms = None; payload = Proto.Ping }) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "send: %s" m);
      (match Wire.recv wc2 with
      | Ok (Some j) -> (
        match Proto.response_of_json j with
        | Ok { Proto.id = 8; payload = Proto.Pong; _ } -> ()
        | _ -> Alcotest.failf "expected pong, got %s" (Json.to_string j))
      | Ok None -> Alcotest.fail "connection dropped after recoverable error"
      | Error m -> Alcotest.failf "recv: %s" m);
      Unix.close raw2;
      Client.close c)

(* A Shutdown request is answered Bye, the server tears down completely,
   and the socket file is gone. *)
let test_shutdown () =
  with_server (fun addr h ->
      let c = connect_exn addr in
      (match rpc_exn c Proto.Shutdown with
      | Proto.Bye -> ()
      | _ -> Alcotest.fail "expected Bye");
      Client.close c;
      Server.wait h;
      (match addr with
      | Client.Unix_sock p ->
        Alcotest.(check bool) "socket unlinked" false (Sys.file_exists p)
      | _ -> ());
      match Client.connect addr with
      | Ok c' ->
        Client.close c';
        Alcotest.fail "connected to a stopped server"
      | Error _ -> ())

let tests =
  [
    Alcotest.test_case "json adversarial input" `Quick test_json_adversarial;
    Alcotest.test_case "protocol adversarial input" `Quick
      test_protocol_adversarial;
    Alcotest.test_case "plan spec syntax round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "timeout is typed and prompt" `Quick test_timeout;
    Alcotest.test_case "overload sheds Busy" `Quick test_load_shed;
    Alcotest.test_case "malformed input never hangs" `Quick
      test_malformed_never_hangs;
    Alcotest.test_case "graceful shutdown" `Quick test_shutdown;
    Alcotest.test_case "coalescing: N requests, 1 run" `Slow test_coalescing;
    Alcotest.test_case "batched = direct, byte-equal" `Slow
      test_batching_byte_equal;
    QCheck_alcotest.to_alcotest json_roundtrip;
    QCheck_alcotest.to_alcotest request_roundtrip;
    QCheck_alcotest.to_alcotest response_roundtrip;
  ]
