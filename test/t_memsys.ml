(* Memory-system model tests: fetch buffering, cache hit/miss behaviour
   with sub-blocks and wrap-around prefetch, and the cycle formulas. *)

module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Target = Repro_core.Target
module Compile = Repro_harness.Compile

(* Build a synthetic result carrying a given trace. *)
let mk_result iaddrs daccs =
  let dinfo =
    Array.map
      (function
        | None -> 0
        | Some (w, a, b) ->
          (a lsl 5) lor (b lsl 1) lor (if w then 1 else 0))
      daccs
  in
  {
    Machine.exit_code = 0;
    output = "";
    ic = Array.length iaddrs;
    loads = 0;
    stores = 0;
    load_words = 0;
    store_words = 0;
    interlocks = 0;
    trace = Some { Machine.iaddr = iaddrs; dinfo };
  }

let no_data n = Array.make n None

let test_fetch_buffer () =
  (* Sequential 2-byte instructions on a 4-byte bus: one request per pair. *)
  let iaddrs = Array.init 8 (fun i -> 0x1000 + (2 * i)) in
  let r = mk_result iaddrs (no_data 8) in
  let nc = Memsys.replay_nocache ~bus_bytes:4 r in
  Alcotest.(check int) "k=2 halves requests" 4 nc.Memsys.irequests;
  let nc8 = Memsys.replay_nocache ~bus_bytes:8 r in
  Alcotest.(check int) "k=4 quarters requests" 2 nc8.Memsys.irequests;
  (* 4-byte instructions on a 4-byte bus: one request each. *)
  let iaddrs32 = Array.init 8 (fun i -> 0x1000 + (4 * i)) in
  let r32 = mk_result iaddrs32 (no_data 8) in
  Alcotest.(check int) "k=1 is one per instruction" 8
    (Memsys.replay_nocache ~bus_bytes:4 r32).Memsys.irequests

let test_fetch_buffer_branchy () =
  (* A taken branch to a new block forces a refetch even when returning. *)
  let iaddrs = [| 0x1000; 0x1002; 0x2000; 0x1000 |] in
  let r = mk_result iaddrs (no_data 4) in
  Alcotest.(check int) "branch thrashes buffer" 3
    (Memsys.replay_nocache ~bus_bytes:4 r).Memsys.irequests

let test_data_requests () =
  (* A double costs two transactions on a 32-bit bus, one on 64-bit. *)
  let iaddrs = [| 0x1000; 0x1004 |] in
  let d = [| Some (false, 0x8000, 8); Some (true, 0x8000, 4) |] in
  let r = mk_result iaddrs d in
  Alcotest.(check int) "dreq 32-bit" 3
    (Memsys.replay_nocache ~bus_bytes:4 r).Memsys.drequests;
  Alcotest.(check int) "dreq 64-bit" 2
    (Memsys.replay_nocache ~bus_bytes:8 r).Memsys.drequests

let icfg size block sub = Memsys.cache_config ~size ~block ~sub

let test_cache_config_validation () =
  let cfg = Memsys.cache_config ~size:4096 ~block:32 ~sub:4 in
  Alcotest.(check int) "size" 4096 cfg.Memsys.size_bytes;
  Alcotest.(check int) "block" 32 cfg.Memsys.block_bytes;
  Alcotest.(check int) "sub" 4 cfg.Memsys.sub_block_bytes;
  let rejects name f =
    match f () with
    | exception Invalid_argument m ->
      Alcotest.(check bool)
        (name ^ " error is descriptive")
        true
        (String.length m > String.length "Memsys.cache_config: ")
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  rejects "non-power-of-two size" (fun () ->
      Memsys.cache_config ~size:3000 ~block:32 ~sub:4);
  rejects "non-power-of-two block" (fun () ->
      Memsys.cache_config ~size:4096 ~block:24 ~sub:4);
  rejects "non-power-of-two sub" (fun () ->
      Memsys.cache_config ~size:4096 ~block:32 ~sub:3);
  rejects "zero sub" (fun () -> Memsys.cache_config ~size:4096 ~block:32 ~sub:0);
  rejects "sub > block" (fun () ->
      Memsys.cache_config ~size:4096 ~block:32 ~sub:64);
  rejects "block > size" (fun () ->
      Memsys.cache_config ~size:16 ~block:32 ~sub:4)

let test_cache_basic () =
  (* Two instructions in the same sub-block: one miss. *)
  let r = mk_result [| 0x1000; 0x1002; 0x1000 |] (no_data 3) in
  let c =
    Memsys.replay_cached ~insn_bytes:2 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4) r
  in
  Alcotest.(check int) "one miss for colocated fetches" 1
    c.Memsys.icache.Memsys.misses;
  Alcotest.(check int) "three accesses" 3 c.Memsys.icache.Memsys.accesses

let test_cache_prefetch () =
  (* Wrap-around prefetch: a read miss fetches the next sub-block too, so a
     sequential walk misses every other sub-block. *)
  let iaddrs = Array.init 8 (fun i -> 0x1000 + (4 * i)) in
  let r = mk_result iaddrs (no_data 8) in
  let c =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4) r
  in
  Alcotest.(check int) "every other sub-block misses" 4
    c.Memsys.icache.Memsys.misses;
  (* Each miss transfers 2 sub-blocks of one word. *)
  Alcotest.(check int) "words transferred" 8
    c.Memsys.icache.Memsys.words_transferred

let test_cache_conflict () =
  (* Two blocks that map to the same set alternate: every access misses. *)
  let a = 0x1000 in
  let b = 0x1000 + 1024 in
  let r = mk_result [| a; b; a; b |] (no_data 4) in
  let c =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4) r
  in
  Alcotest.(check int) "conflict thrash" 4 c.Memsys.icache.Memsys.misses;
  (* A larger cache separates them. *)
  let c2 =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 4096 32 4)
      ~dcache:(icfg 4096 32 4) r
  in
  Alcotest.(check int) "no thrash when separated" 2
    c2.Memsys.icache.Memsys.misses

let test_cache_write_no_prefetch () =
  (* Writes allocate but do not prefetch the next sub-block. *)
  let iaddrs = [| 0x1000; 0x1004 |] in
  let d = [| Some (true, 0x8000, 4); Some (false, 0x8004, 4) |] in
  let r = mk_result iaddrs d in
  let c =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4) r
  in
  Alcotest.(check int) "write misses" 1 c.Memsys.dcache_write.Memsys.misses;
  (* The following read of the next word misses (no prefetch on write). *)
  Alcotest.(check int) "read after write still misses" 1
    c.Memsys.dcache_read.Memsys.misses

let test_cache_sub_equals_block () =
  (* Degenerate sub-blocking: one sub-block per block.  A read miss fills
     the whole block (the wrap-around prefetch lands on the sub-block just
     fetched), so a sequential walk misses once per block. *)
  let iaddrs = Array.init 16 (fun i -> 0x1000 + (4 * i)) in
  let r = mk_result iaddrs (no_data 16) in
  let c =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 32)
      ~dcache:(icfg 1024 32 32) r
  in
  Alcotest.(check int) "one miss per 32B block" 2 c.Memsys.icache.Memsys.misses;
  (* Each miss transfers exactly one 32-byte sub-block = 8 words: the
     prefetch of (sub+1) mod 1 = sub must not double-count. *)
  Alcotest.(check int) "whole-block fills" 16
    c.Memsys.icache.Memsys.words_transferred

let test_cache_single_set () =
  (* block == size: a one-set cache.  Any two distinct blocks conflict, so
     alternating between them misses every time regardless of sub-blocks. *)
  let a = 0x1000 and b = 0x1040 in
  let r = mk_result [| a; b; a; b; a; b |] (no_data 6) in
  let c =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 64 64 8)
      ~dcache:(icfg 64 64 8) r
  in
  Alcotest.(check int) "single set thrashes" 6 c.Memsys.icache.Memsys.misses;
  (* Staying inside the one block hits after the first fill. *)
  let r2 = mk_result [| a; a + 8; a + 16; a |] (no_data 4) in
  let c2 =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 64 64 8)
      ~dcache:(icfg 64 64 8) r2
  in
  Alcotest.(check int) "within-block walk misses per sub-block" 2
    c2.Memsys.icache.Memsys.misses

let test_prefetch_wraps_to_block_start () =
  (* A read miss on the LAST sub-block of a block prefetches sub-block 0 of
     the same block (wrap-around), not the next block. *)
  let c = Memsys.Cache.make (icfg 1024 32 4) in
  let missed a = Memsys.Cache.access c ~is_read:true ~addr:a ~bytes:4 in
  Alcotest.(check bool) "last sub-block misses" true (missed 0x101C);
  Alcotest.(check bool) "wrapped prefetch makes sub 0 hit" false (missed 0x1000);
  Alcotest.(check bool) "sub 1 was not prefetched" true (missed 0x1004);
  let s = Memsys.Cache.stats c in
  Alcotest.(check int) "accesses" 3 s.Memsys.accesses;
  Alcotest.(check int) "misses" 2 s.Memsys.misses;
  (* Two misses, each filling two one-word sub-blocks. *)
  Alcotest.(check int) "words" 4 s.Memsys.words_transferred

let test_write_miss_heavy () =
  (* Writes allocate only the touched sub-block: a sequential store sweep
     misses on every sub-block, where the same sweep of reads would miss
     every other one thanks to prefetch. *)
  let n = 8 in
  let iaddrs = Array.init n (fun i -> 0x1000 + (4 * i)) in
  let writes =
    Array.init n (fun i -> Some (true, 0x8000 + (4 * i), 4))
  in
  let reads =
    Array.init n (fun i -> Some (false, 0x8000 + (4 * i), 4))
  in
  let cw =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4)
      (mk_result iaddrs writes)
  in
  Alcotest.(check int) "every write misses" n
    cw.Memsys.dcache_write.Memsys.misses;
  Alcotest.(check int) "all accesses are writes" n
    cw.Memsys.dcache_write.Memsys.accesses;
  let cr =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4)
      (mk_result iaddrs reads)
  in
  Alcotest.(check int) "reads miss every other sub-block" (n / 2)
    cr.Memsys.dcache_read.Memsys.misses

let test_cycle_formulas () =
  let iaddrs = Array.init 10 (fun i -> 0x1000 + (4 * i)) in
  let r = { (mk_result iaddrs (no_data 10)) with Machine.interlocks = 3 } in
  let nc = Memsys.replay_nocache ~bus_bytes:4 r in
  Alcotest.(check int) "zero wait states" 13
    (Memsys.nocache_cycles ~wait_states:0 r nc);
  Alcotest.(check int) "wait states multiply requests" (13 + (2 * 10))
    (Memsys.nocache_cycles ~wait_states:2 r nc);
  let c =
    Memsys.replay_cached ~insn_bytes:4 ~icache:(icfg 1024 32 4)
      ~dcache:(icfg 1024 32 4) r
  in
  Alcotest.(check int) "cached cycles" (13 + (4 * 5))
    (Memsys.cached_cycles ~miss_penalty:4 r c)

let test_formula_vs_measurement () =
  (* The paper's footnote 2: the closed formula and the measured pipeline
     agree closely.  In our model they agree exactly by construction; check
     one real program end to end. *)
  let b = Repro_workloads.Suite.find "queens" in
  List.iter
    (fun t ->
      let _, r = Compile.compile_and_run ~trace:true t b.Repro_workloads.Suite.source in
      let nc = Memsys.replay_nocache ~bus_bytes:4 r in
      let cycles = Memsys.nocache_cycles ~wait_states:1 r nc in
      let formula =
        r.Machine.ic + r.Machine.interlocks
        + (1 * (nc.Memsys.irequests + nc.Memsys.drequests))
      in
      Alcotest.(check int) ("formula agreement " ^ t.Target.name) formula cycles)
    [ Target.d16; Target.dlxe ]

let test_interlock_counting () =
  (* A load feeding the very next instruction stalls one cycle. *)
  let src_dep =
    {|int g = 5;
      int main() {
        int i; int s = 0;
        for (i = 0; i < 100; i++) s = s + g;
        print_int(s);
        return 0; }|}
  in
  let _, r = Compile.compile_and_run ~trace:false Target.dlxe src_dep in
  Alcotest.(check bool) "loop with load-use has interlocks" true
    (r.Machine.interlocks > 0);
  (* FP divides are the longest stalls. *)
  let src_fp =
    {|double g = 3.0;
      int main() {
        double x = 1.0; int i;
        for (i = 0; i < 50; i++) x = 1.0 / (x + g);
        print_int((int)(x * 1000.0));
        return 0; }|}
  in
  let _, rf = Compile.compile_and_run ~trace:false Target.dlxe src_fp in
  (* Each of the 50 iterations has a divide whose latency the loop's few
     other instructions cannot fully hide. *)
  Alcotest.(check bool)
    (Printf.sprintf "fp chain stalls heavily (%d)" rf.Machine.interlocks)
    true
    (rf.Machine.interlocks > 50)

let tests =
  [
    Alcotest.test_case "cache_config validation" `Quick
      test_cache_config_validation;
    Alcotest.test_case "fetch buffer widths" `Quick test_fetch_buffer;
    Alcotest.test_case "fetch buffer on branches" `Quick test_fetch_buffer_branchy;
    Alcotest.test_case "data bus requests" `Quick test_data_requests;
    Alcotest.test_case "cache basics" `Quick test_cache_basic;
    Alcotest.test_case "wrap-around prefetch" `Quick test_cache_prefetch;
    Alcotest.test_case "conflict misses" `Quick test_cache_conflict;
    Alcotest.test_case "writes do not prefetch" `Quick test_cache_write_no_prefetch;
    Alcotest.test_case "sub-block = block" `Quick test_cache_sub_equals_block;
    Alcotest.test_case "single-set cache" `Quick test_cache_single_set;
    Alcotest.test_case "prefetch wraps within block" `Quick
      test_prefetch_wraps_to_block_start;
    Alcotest.test_case "write-miss-heavy sweep" `Quick test_write_miss_heavy;
    Alcotest.test_case "cycle formulas" `Quick test_cycle_formulas;
    Alcotest.test_case "formula vs measurement" `Quick test_formula_vs_measurement;
    Alcotest.test_case "interlock counting" `Quick test_interlock_counting;
  ]
