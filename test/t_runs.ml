(* Measurement-plane plumbing: the persistent run cache round-trips and
   invalidates on key changes, and the parallel pool produces output
   byte-identical to a serial run.  These drive real compiles, so they are
   tagged slow where they do. *)

module Target = Repro_core.Target
module Runs = Repro_harness.Runs
module Diskcache = Repro_harness.Diskcache
module Plan = Repro_harness.Plan
module Pool = Repro_harness.Pool
module Experiments = Repro_harness.Experiments

(* Route the persistent cache to a throwaway directory so the tests never
   see (or pollute) a developer's _runs_cache. *)
let with_temp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-test-cache-%d" (Unix.getpid ()))
  in
  let old = Diskcache.dir () in
  Diskcache.set_dir dir;
  Fun.protect
    ~finally:(fun () ->
      Diskcache.clear ();
      (try Sys.rmdir dir with Sys_error _ -> ());
      Diskcache.set_dir old)
    f

let test_disk_roundtrip () =
  with_temp_cache (fun () ->
      Runs.clear_memo ();
      let cold = Runs.stats "queens" Target.d16 in
      (* Second process = cleared memo: must be served from disk. *)
      Runs.clear_memo ();
      let hits_before = Diskcache.hit_count () in
      let warm = Runs.stats "queens" Target.d16 in
      Alcotest.(check bool) "disk hit" true (Diskcache.hit_count () > hits_before);
      Alcotest.(check int) "ic" cold.Runs.ic warm.Runs.ic;
      Alcotest.(check int) "size" cold.Runs.size_bytes warm.Runs.size_bytes;
      Alcotest.(check int) "interlocks" cold.Runs.interlocks warm.Runs.interlocks;
      Alcotest.(check string) "output" cold.Runs.output warm.Runs.output)

let test_store_find () =
  with_temp_cache (fun () ->
      let key = Diskcache.key [ "t_runs"; "store-find" ] in
      Alcotest.(check bool) "miss first" true
        ((Diskcache.find key : (int * string) option) = None);
      Diskcache.store key (42, "payload");
      Alcotest.(check (option (pair int string)))
        "round-trips"
        (Some (42, "payload"))
        (Diskcache.find key))

(* Corrupt cache entries must read as misses, never as garbage values:
   Marshal alone would happily decode a flipped bit, so the checksum
   envelope is what stands between a cosmic ray and a wrong figure. *)
let test_corrupt_entry_is_miss () =
  with_temp_cache (fun () ->
      let key = Diskcache.key [ "t_runs"; "corrupt" ] in
      Diskcache.store key (1234, "payload");
      let file =
        match
          Array.to_list (Sys.readdir (Diskcache.dir ()))
          |> List.filter (fun f -> Filename.check_suffix f ".bin")
        with
        | [ f ] -> Filename.concat (Diskcache.dir ()) f
        | fs -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length fs))
      in
      let mangle f =
        let b =
          In_channel.with_open_bin file In_channel.input_all |> Bytes.of_string
        in
        let b = f b in
        Out_channel.with_open_bin file (fun oc -> Out_channel.output_bytes oc b)
      in
      (* Bit flip inside the marshaled payload. *)
      mangle (fun b ->
          let i = Bytes.length b - 3 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
          b);
      Alcotest.(check bool) "bit flip reads as miss" true
        ((Diskcache.find key : (int * string) option) = None);
      (* Truncation. *)
      Diskcache.store key (1234, "payload");
      mangle (fun b -> Bytes.sub b 0 (Bytes.length b / 2));
      Alcotest.(check bool) "truncation reads as miss" true
        ((Diskcache.find key : (int * string) option) = None);
      (* Regeneration through memo works after corruption. *)
      Alcotest.(check (pair int string))
        "memo regenerates"
        (5678, "fresh")
        (Diskcache.memo key (fun () -> (5678, "fresh"))))

(* Same policy for the trace store: a truncated stored trace is a miss
   and the next reader request re-captures it. *)
let test_trace_store_regenerates () =
  with_temp_cache (fun () ->
      Runs.clear_memo ();
      let s = Runs.stats "queens" Target.d16 in
      let path = Runs.trace_path "queens" Target.d16 in
      Alcotest.(check bool) "capture landed in the store" true
        (Sys.file_exists path);
      (* Truncate the stored trace, drop in-process readers. *)
      let b =
        In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc (Bytes.sub b 0 (Bytes.length b / 3)));
      Runs.clear_memo ();
      let rd = Runs.trace_reader "queens" Target.d16 in
      Alcotest.(check int) "re-captured trace has ic records" s.Runs.ic
        (Repro_trace.Trace.Reader.n_records rd))

let test_key_invalidation () =
  (* Changing the target description must change the key: a cache entry
     written for one machine can never answer for another. *)
  let k16 = Runs.stats_key "queens" Target.d16 in
  let k32 = Runs.stats_key "queens" Target.dlxe in
  Alcotest.(check bool) "target changes key" true (k16 <> k32);
  let kb = Runs.stats_key "towers" Target.d16 in
  Alcotest.(check bool) "bench changes key" true (k16 <> kb);
  let kg = Runs.grid_key "queens" Target.d16 in
  Alcotest.(check bool) "kind changes key" true (k16 <> kg)

let test_parallel_determinism () =
  with_temp_cache (fun () ->
      (* Serial pass computes everything and fills the temp disk cache;
         the jobs=4 pass then re-executes the full plan through four
         worker domains (concurrent memo installs, disk reads, and any
         recomputes), and must render the same bytes. *)
      Runs.clear_memo ();
      let serial = Experiments.render_all ~jobs:1 () in
      Runs.clear_memo ();
      let parallel = Experiments.render_all ~jobs:4 () in
      Alcotest.(check string) "byte-identical output" serial parallel)

let test_plan_dedup () =
  let spec = Plan.stats_specs ~benches:[ "queens" ] ~targets:[ Target.d16 ] in
  let doubled = Plan.union spec spec in
  Alcotest.(check int) "union dedups" (List.length spec) (List.length doubled);
  Alcotest.(check bool) "full plan is nonempty" true (Plan.full () <> [])

let test_pool_error_propagation () =
  let pool = Pool.create ~jobs:2 in
  Pool.submit pool (fun () -> failwith "boom");
  Alcotest.check_raises "worker failure re-raised at wait" (Failure "boom")
    (fun () ->
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.wait pool))

let test_target_of_name () =
  (match Target.of_name "d16" with
  | Ok t -> Alcotest.(check string) "d16" Target.d16.Target.name t.Target.name
  | Error m -> Alcotest.fail m);
  (match Target.of_name "dlxe-16-2" with
  | Ok t -> Alcotest.(check string) "variant" "DLXe/16/2" t.Target.name
  | Error m -> Alcotest.fail m);
  (* Full display names resolve too (slug-insensitively). *)
  (match Target.of_name "DLXe/16/2" with
  | Ok t -> Alcotest.(check string) "display name" "DLXe/16/2" t.Target.name
  | Error m -> Alcotest.fail m);
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  (match Target.of_name "z80" with
  | Ok _ -> Alcotest.fail "z80 resolved"
  | Error m ->
    Alcotest.(check bool) "error names the input" true (contains m "z80"));
  List.iter
    (fun n ->
      match Target.of_name n with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m)
    Target.all_names

let tests =
  [
    Alcotest.test_case "disk cache round-trip" `Slow test_disk_roundtrip;
    Alcotest.test_case "store/find round-trip" `Quick test_store_find;
    Alcotest.test_case "corrupt entry is a miss" `Quick
      test_corrupt_entry_is_miss;
    Alcotest.test_case "trace store regenerates" `Slow
      test_trace_store_regenerates;
    Alcotest.test_case "key invalidation" `Quick test_key_invalidation;
    Alcotest.test_case "parallel = serial output" `Slow
      test_parallel_determinism;
    Alcotest.test_case "plan dedup" `Quick test_plan_dedup;
    Alcotest.test_case "pool error propagation" `Quick
      test_pool_error_propagation;
    Alcotest.test_case "Target.of_name" `Quick test_target_of_name;
  ]
