(* Experiment-level shape checks: the qualitative claims of the paper must
   hold in the reproduction.  These exercise the full harness (compile,
   simulate, replay) across the suite, so they are tagged slow. *)

module Target = Repro_core.Target
module Experiments = Repro_harness.Experiments
module Runs = Repro_harness.Runs
module Memsys = Repro_sim.Memsys

let check_in name lo hi v =
  Alcotest.(check bool)
    (Printf.sprintf "%s = %.3f in [%.2f, %.2f]" name v lo hi)
    true
    (v >= lo && v <= hi)

let test_density_band () =
  (* Paper: DLXe programs average ~1.5x the bytes of D16 (Fig 4). *)
  check_in "average density" 1.30 1.75 (Experiments.average_density Target.dlxe);
  List.iter
    (fun b -> check_in (b ^ " density") 1.1 2.0 (Experiments.density_ratio b Target.dlxe))
    Experiments.suite_names

let test_pathlen_band () =
  (* Paper: DLXe path lengths ~0.87 of D16 on average (Table 5). *)
  check_in "average path ratio" 0.70 0.95
    (Experiments.average_pathlen Target.dlxe)

let test_feature_ordering () =
  (* Each restriction hurts: path length grows as features are removed. *)
  let p t = Experiments.average_pathlen t in
  Alcotest.(check bool) "3-address beats 2-address (32 regs)" true
    (p Target.dlxe <= p Target.dlxe_32_2);
  Alcotest.(check bool) "3-address beats 2-address (16 regs)" true
    (p Target.dlxe_16_3 <= p Target.dlxe_16_2);
  Alcotest.(check bool) "32 regs beat 16 regs (3-address)" true
    (p Target.dlxe <= p Target.dlxe_16_3 +. 0.005);
  let d t = Experiments.average_density t in
  Alcotest.(check bool) "restrictions never shrink code" true
    (d Target.dlxe_16_2 >= d Target.dlxe -. 0.02)

let test_crossover () =
  (* Paper Table 11: DLXe wins with zero wait states; D16 with any nonzero
     wait state on a 32-bit bus. *)
  let mean l =
    Repro_util.Stats.mean
      (List.map
         (fun b -> Experiments.cycle_ratio b ~bus_bytes:4 ~wait_states:l)
         Experiments.suite_names)
  in
  Alcotest.(check bool) "l=0 favors DLXe" true (mean 0 < 1.0);
  Alcotest.(check bool) "l=2 favors D16" true (mean 2 > 1.0);
  Alcotest.(check bool) "l=3 favors D16 more" true (mean 3 > mean 2);
  (* 64-bit bus: near parity (paper: DLXe ~8% slower on average). *)
  let mean64 l =
    Repro_util.Stats.mean
      (List.map
         (fun b -> Experiments.cycle_ratio b ~bus_bytes:8 ~wait_states:l)
         Experiments.suite_names)
  in
  check_in "64-bit bus l=3" 0.85 1.25 (mean64 3);
  Alcotest.(check bool) "wider bus helps DLXe" true (mean64 3 < mean 3)

let test_traffic_reduction () =
  (* Paper Table 8: D16 fetches ~35% fewer instruction words. *)
  let reductions =
    List.map
      (fun b ->
        let s16 = Runs.stats b Target.d16 in
        let s32 = Runs.stats b Target.dlxe in
        1. -. (float_of_int s16.Runs.ireq32 /. float_of_int s32.Runs.ireq32))
      Experiments.suite_names
  in
  check_in "average traffic reduction" 0.20 0.50
    (Repro_util.Stats.mean reductions);
  List.iter (fun r -> Alcotest.(check bool) "every program reduces" true (r > 0.)) reductions

let test_dlxe_traffic_equals_path () =
  (* With 4-byte instructions on a 4-byte bus every instruction is one
     fetch: Table 8's DLXe traffic column equals its path length. *)
  List.iter
    (fun b ->
      let s = Runs.stats b Target.dlxe in
      Alcotest.(check int) (b ^ " traffic = path") s.Runs.ic s.Runs.ireq32)
    Experiments.suite_names

let test_interlock_rates () =
  (* Paper Table 10 reports 0.05..0.20; our solver is a dependent
     Newton divide chain, so its FP stalls run higher. *)
  List.iter
    (fun b ->
      List.iter
        (fun t ->
          let s = Runs.stats b t in
          check_in
            (Printf.sprintf "%s %s interlock rate" b t.Target.name)
            0.0 1.10
            (float_of_int s.Runs.interlocks /. float_of_int s.Runs.ic))
        [ Target.d16; Target.dlxe ])
    Experiments.suite_names

let test_cache_miss_ordering () =
  (* Paper Fig 16: byte for byte, D16 misses less; both fall with size.
     Direct-mapped placement can flip an isolated size by conflict luck
     (the paper's own assem point at 4K is such a case), so assert the
     ordering in aggregate and allow at most one exception. *)
  List.iter
    (fun b ->
      let rate t size =
        Memsys.miss_rate (Runs.cached b t ~size ~block:32 ~sub:4).Memsys.icache
      in
      let violations =
        List.length
          (List.filter
             (fun size -> rate Target.d16 size > rate Target.dlxe size +. 0.002)
             Runs.standard_cache_sizes)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: D16 <= DLXe at all but one size (%d violations)" b
           violations)
        true (violations <= 1);
      let avg t =
        Repro_util.Stats.mean
          (List.map (fun s -> rate t s) Runs.standard_cache_sizes)
      in
      Alcotest.(check bool) (b ^ ": D16 misses less on average") true
        (avg Target.d16 <= avg Target.dlxe);
      Alcotest.(check bool) (b ^ ": misses fall with size") true
        (rate Target.dlxe 16384 <= rate Target.dlxe 1024))
    [ "assem"; "latex"; "ipl" ]

let test_immediate_frequencies () =
  (* Paper Table 4 totals ~9.5%; ours should be single-digit percent. *)
  let c, a, d = Experiments.immediate_frequencies () in
  check_in "compare-immediate share" 0.0 0.10 c;
  check_in "alu-immediate share" 0.0 0.15 a;
  check_in "displacement share" 0.0 0.15 d;
  check_in "total" 0.005 0.30 (c +. a +. d)

let test_all_experiments_render () =
  List.iter
    (fun (e : Experiments.t) ->
      let a = e.artifact () in
      let s = Experiments.render e in
      Alcotest.(check bool) (e.id ^ " renders") true (String.length s > 40);
      (* Every artifact carries at least one section, and table cells that
         claim to be numeric expose their value. *)
      Alcotest.(check bool)
        (e.id ^ " has sections")
        true
        (Repro_harness.Artifact.items a <> []))
    Experiments.all

let tests =
  [
    Alcotest.test_case "density band" `Slow test_density_band;
    Alcotest.test_case "path length band" `Slow test_pathlen_band;
    Alcotest.test_case "feature ordering" `Slow test_feature_ordering;
    Alcotest.test_case "wait-state crossover" `Slow test_crossover;
    Alcotest.test_case "traffic reduction" `Slow test_traffic_reduction;
    Alcotest.test_case "DLXe traffic equals path" `Slow
      test_dlxe_traffic_equals_path;
    Alcotest.test_case "interlock rates" `Slow test_interlock_rates;
    Alcotest.test_case "cache miss ordering" `Slow test_cache_miss_ordering;
    Alcotest.test_case "immediate frequencies" `Slow test_immediate_frequencies;
    Alcotest.test_case "all experiments render" `Slow test_all_experiments_render;
  ]
