(* The trace subsystem (lib/trace): property-style roundtrips of the
   delta+varint chunked encoding, corruption detection, and the
   differential gate — trace-replayed memory-system counters and pipeline
   cycle totals must be EXACTLY equal to direct execution on every suite
   benchmark and both paper machines, with chunk-parallel replay equal to
   sequential replay. *)

module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Target = Repro_core.Target
module Suite = Repro_workloads.Suite
module Compile = Repro_harness.Compile
module Pool = Repro_harness.Pool
module Uarch = Repro_uarch.Uarch
module Uconfig = Repro_uarch.Uconfig
module Pipeline = Repro_uarch.Pipeline
module Stalls = Repro_uarch.Stalls
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay
module Reader = Repro_trace.Trace.Reader
module Link = Repro_link.Link
module Runs = Repro_harness.Runs

let temp_path () = Filename.temp_file "repro-t-trace" ".trc"

let with_temp f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Write the record stream and read it back. *)
let roundtrip ?chunk_records ?(insn_bytes = 2) records path =
  let w = Trace.Writer.create ?chunk_records ~insn_bytes path in
  List.iter (fun (pc, dinfo) -> Trace.Writer.step w ~pc ~dinfo) records;
  Trace.Writer.close w;
  match Reader.open_file path with
  | Error e -> Alcotest.fail e
  | Ok rd ->
    let out = ref [] in
    Reader.iter rd (fun ~pc ~dinfo -> out := (pc, dinfo) :: !out);
    (rd, List.rev !out)

(* Synthetic streams: arbitrary non-monotonic pcs and data refs, so the
   zigzag deltas see negative jumps; tiny chunks force many boundaries. *)
let gen_record =
  let open QCheck.Gen in
  let* pc = int_bound 0xFF_FFFF in
  let* dinfo =
    frequency
      [
        (2, return 0);
        ( 3,
          let* addr = int_bound 0xF_FFFF in
          let* bytes = oneofl [ 1; 2; 4; 8 ] in
          let* w = bool in
          return ((addr lsl 5) lor (bytes lsl 1) lor Bool.to_int w) );
      ]
  in
  return (pc, dinfo)

let synthetic_roundtrip =
  QCheck.Test.make ~name:"synthetic streams roundtrip across chunk boundaries"
    ~count:60
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 200) gen_record))
    (fun records ->
      with_temp (fun path ->
          let rd, out = roundtrip ~chunk_records:7 records path in
          let n = List.length records in
          out = records
          && Reader.n_records rd = n
          && Reader.n_chunks rd = ((n + 6) / 7)
          && (n = 0
             || (Reader.chunk rd 0).Reader.start_pc = fst (List.hd records))))

(* The grid engine on synthetic streams: non-monotonic, unaligned pcs
   (forcing the raw i-stream path), tiny chunks forcing many
   reconciliation boundaries, and a sub-block smaller than a word.
   Sequential and chunk-parallel grid replay must both equal N
   independent per-geometry replays. *)
let grid_spec (size, block, sub) =
  let cfg = Memsys.cache_config ~size ~block ~sub in
  { Replay.Grid.icache = cfg; dcache = cfg }

let grid_equals_cached rd geometries ~jobs =
  let specs = List.map grid_spec geometries in
  (* The expectation comes from the plain per-record reference loop
     ([Replay.Seq]), which shares nothing with the chunked framework. *)
  let expect =
    List.map
      (fun (s : Replay.Grid.spec) ->
        Replay.Seq.cached ~icache:s.Replay.Grid.icache
          ~dcache:s.Replay.Grid.dcache rd)
      specs
  in
  let single =
    List.map
      (fun (s : Replay.Grid.spec) ->
        Replay.cached ~icache:s.Replay.Grid.icache ~dcache:s.Replay.Grid.dcache
          rd)
      specs
  in
  let seq = Replay.Grid.run rd specs in
  let par = Replay.Grid.run ~map:(fun f xs -> Pool.map ~jobs f xs) rd specs in
  (seq = expect && single = expect, par = expect)

let synthetic_grid =
  let geometries = [ (32, 4, 2); (64, 8, 8); (256, 16, 4); (1024, 32, 32) ] in
  QCheck.Test.make
    ~name:"grid replay equals per-geometry replay on synthetic streams"
    ~count:40
    (QCheck.make QCheck.Gen.(list_size (int_bound 300) gen_record))
    (fun records ->
      with_temp (fun path ->
          let rd, _ = roundtrip ~chunk_records:16 records path in
          let seq_ok, par_ok = grid_equals_cached rd geometries ~jobs:3 in
          seq_ok && par_ok))

(* The pipeline grid on synthetic traces: pcs are real instruction
   addresses of a compiled image (so descriptors exist) but in arbitrary
   generated order, and the chunk length (5) sits below the scoreboard's
   drain horizon, so no chunk can ever converge — every boundary takes
   the provably-exact sequential re-step fallback.  The config list
   stresses the raw fetch paths (2-byte bus, sub-word sub-blocks)
   alongside the run-length ones. *)
let synthetic_upipelines =
  let images =
    lazy
      (List.map
         (fun t -> (t, Compile.compile t (Suite.find "towers").Suite.source))
         [ Target.d16; Target.dlxe ])
  in
  let cfgs =
    [
      Uconfig.nocache ~bus_bytes:2 ~wait_states:3;
      Uconfig.nocache ~bus_bytes:8 ~wait_states:1;
      (let c = Memsys.cache_config ~size:256 ~block:16 ~sub:2 in
       Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:5);
      (let c = Memsys.cache_config ~size:1024 ~block:32 ~sub:4 in
       Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:8);
    ]
  in
  QCheck.Test.make
    ~name:"pipeline grid equals sequential replay on synthetic traces"
    ~count:25
    (QCheck.make QCheck.Gen.(list_size (int_bound 150) gen_record))
    (fun records ->
      List.for_all
        (fun ((t : Target.t), (img : Link.image)) ->
          let n = Array.length img.Link.addr_of in
          let records =
            List.map
              (fun (raw, dinfo) -> (img.Link.addr_of.(raw mod n), dinfo))
              records
          in
          with_temp (fun path ->
              let rd, _ =
                roundtrip ~chunk_records:5 ~insn_bytes:(Target.insn_bytes t)
                  records path
              in
              let expect = Replay.Seq.pipelines rd cfgs img in
              let seq = Replay.Upipelines.run rd cfgs img in
              let par =
                Replay.Upipelines.run
                  ~map:(fun f xs -> Pool.map ~jobs:3 f xs)
                  rd cfgs img
              in
              seq = expect && par = expect))
        (Lazy.force images))

(* The Chunked functor itself, on a synthetic automaton with no
   microarchitecture behind it: a decaying stall counter.  Every record
   with positive slack stalls and decays it; any nonzero pc divisible by
   [period] resets slack to [horizon].  A cold chunk converges at the first reset
   (the state becomes carried-independent) or after [horizon] records
   (any warm slack has decayed away) — bounded-horizon reconciliation in
   miniature, with the no-convergence whole-chunk re-step fallback
   exercised by a period larger than any generated pc. *)
module Counter_auto = struct
  type cfg = { period : int; horizon : int }

  type auto = {
    c : cfg;
    mutable slack : int;
    mutable stalls : int;
    mutable seen : int;
    mutable conv : int option;
    mutable prefix : int list;  (* reversed pcs before convergence *)
    mutable stalls_at_conv : int;
  }

  type summary = {
    s_conv : int option;
    s_prefix : int array;
    s_stalls_at_conv : int;
    s_stalls : int;
    s_end_slack : int;
  }

  type carry = { k : cfg; mutable k_slack : int; mutable k_stalls : int }

  let resets (c : cfg) pc = pc <> 0 && pc mod c.period = 0

  let advance (c : cfg) ~slack ~stalls pc =
    let slack, stalls =
      if slack > 0 then (slack - 1, stalls + 1) else (slack, stalls)
    in
    ((if resets c pc then c.horizon else slack), stalls)

  let chunk_start c =
    {
      c; slack = 0; stalls = 0; seen = 0; conv = None; prefix = [];
      stalls_at_conv = 0;
    }

  let step a (d : Replay.Decoded.t) =
    Array.iter
      (fun pc ->
        if a.conv = None then a.prefix <- pc :: a.prefix;
        let slack, stalls = advance a.c ~slack:a.slack ~stalls:a.stalls pc in
        a.slack <- slack;
        a.stalls <- stalls;
        a.seen <- a.seen + 1;
        if a.conv = None && (resets a.c pc || a.seen >= a.c.horizon)
        then begin
          a.conv <- Some a.seen;
          a.stalls_at_conv <- a.stalls
        end)
      d.Replay.Decoded.pcs

  let snapshot a =
    {
      s_conv = a.conv;
      s_prefix = Array.of_list (List.rev a.prefix);
      s_stalls_at_conv =
        (match a.conv with Some _ -> a.stalls_at_conv | None -> a.stalls);
      s_stalls = a.stalls;
      s_end_slack = a.slack;
    }

  let converged s = s.s_conv <> None
  let carry c = { k = c; k_slack = 0; k_stalls = 0 }

  let absorb k s =
    (* Re-step the pre-convergence prefix warm (the whole chunk if it
       never converged), then adopt the cold suffix verbatim. *)
    Array.iter
      (fun pc ->
        let slack, stalls = advance k.k ~slack:k.k_slack ~stalls:k.k_stalls pc in
        k.k_slack <- slack;
        k.k_stalls <- stalls)
      s.s_prefix;
    match s.s_conv with
    | None -> ()
    | Some _ ->
      k.k_stalls <- k.k_stalls + (s.s_stalls - s.s_stalls_at_conv);
      k.k_slack <- s.s_end_slack
end

module Counter_chunked = Replay.Chunked (Counter_auto)

let counter_direct (c : Counter_auto.cfg) records =
  List.fold_left
    (fun (slack, stalls) (pc, _) -> Counter_auto.advance c ~slack ~stalls pc)
    (0, 0) records

let synthetic_counter =
  let cfgs =
    [|
      { Counter_auto.period = 5; horizon = 9 };
      { Counter_auto.period = 7; horizon = 3 };
      (* Larger than any generated pc: never resets, so only chunks long
         enough to outlive the horizon converge. *)
      { Counter_auto.period = 0x1FF_FFFF; horizon = 4 };
    |]
  in
  QCheck.Test.make
    ~name:"Chunked functor: synthetic counter, parallel = sequential = direct"
    ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_bound 200) gen_record))
    (fun records ->
      with_temp (fun path ->
          let rd, _ = roundtrip ~chunk_records:7 records path in
          let state (k : Counter_auto.carry) =
            (k.Counter_auto.k_slack, k.Counter_auto.k_stalls)
          in
          let seq = Array.map state (Counter_chunked.run rd cfgs) in
          let par =
            Array.map state
              (Counter_chunked.run
                 ~map:(fun f xs -> Pool.map ~jobs:3 f xs)
                 rd cfgs)
          in
          let direct = Array.map (fun c -> counter_direct c records) cfgs in
          (* The convergence hook: the never-resetting config converges
             exactly on chunks that outlive its horizon. *)
          let horizons_ok =
            List.for_all
              (fun i ->
                let s = (Counter_chunked.chunk cfgs rd i).(2) in
                Counter_auto.converged s
                = ((Reader.chunk rd i).Reader.n_records >= 4))
              (List.init (Reader.n_chunks rd) Fun.id)
          in
          seq = direct && par = direct && horizons_ok))

(* Real compiled programs, via the statement fuzzer's generator. *)
let progfuzz_roundtrip () =
  let progs =
    QCheck.Gen.generate ~n:6 ~rand:(Random.State.make [| 42 |])
      T_progfuzz.gen_stmts
  in
  List.iter
    (fun stmts ->
      let src = T_progfuzz.program_c stmts in
      List.iter
        (fun t ->
          let _, r = Compile.compile_and_run ~trace:true t src in
          let tr = Option.get r.Machine.trace in
          let records =
            Array.to_list
              (Array.mapi (fun i a -> (a, tr.Machine.dinfo.(i))) tr.Machine.iaddr)
          in
          with_temp (fun path ->
              let _, out =
                roundtrip ~chunk_records:512
                  ~insn_bytes:(Target.insn_bytes t) records path
              in
              Alcotest.(check int)
                (t.Target.name ^ " record count")
                (List.length records) (List.length out);
              Alcotest.(check bool) (t.Target.name ^ " identity") true
                (out = records)))
        [ Target.d16; Target.dlxe ])
    progs

let test_empty_trace () =
  with_temp (fun path ->
      let rd, out = roundtrip [] path in
      Alcotest.(check int) "no records" 0 (Reader.n_records rd);
      Alcotest.(check int) "no chunks" 0 (Reader.n_chunks rd);
      Alcotest.(check bool) "empty" true (out = []))

let test_writer_validation () =
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | w ->
      Trace.Writer.abort w;
      Alcotest.fail (name ^ " accepted")
  in
  with_temp (fun path ->
      rejects "chunk_records 0" (fun () ->
          Trace.Writer.create ~chunk_records:0 ~insn_bytes:2 path);
      rejects "insn_bytes 3" (fun () -> Trace.Writer.create ~insn_bytes:3 path))

(* Corruption: any tampering must read as an error, never as records. *)
let test_corruption () =
  let records = List.init 1000 (fun i -> ((i * 2) land 0xFFFF, 0)) in
  let mangle path f =
    let contents =
      In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string
    in
    let contents = f contents in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_bytes oc contents)
  in
  let expect_error name path =
    match Reader.open_file path with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ ": corrupt trace opened")
  in
  with_temp (fun path ->
      let _ = roundtrip ~chunk_records:64 records path in
      (* Baseline sanity: pristine file opens. *)
      (match Reader.open_file path with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      (* Bit flip in the middle of the chunk data. *)
      mangle path (fun b ->
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
          b);
      expect_error "bit flip" path;
      (* Truncation. *)
      let _ = roundtrip ~chunk_records:64 records path in
      mangle path (fun b -> Bytes.sub b 0 (Bytes.length b / 2));
      expect_error "truncation" path;
      (* Version skew. *)
      let _ = roundtrip ~chunk_records:64 records path in
      mangle path (fun b ->
          Bytes.set b 8 (Char.chr (Trace.format_version + 1));
          b);
      expect_error "future version" path;
      expect_error "missing file" (path ^ ".does-not-exist"))

(* The differential gate (acceptance criterion): replayed Memsys counters
   and pipeline totals exactly equal direct execution, chunk-parallel
   equals sequential. *)

let cache_points = [ (1024, 32, 4, 8); (4096, 64, 8, 12) ]

let differential bench (t : Target.t) =
  let src = (Suite.find bench).Suite.source in
  let img = Compile.compile t src in
  with_temp (fun path ->
      (* One execution: materialized arrays for the direct path and a
         streamed capture for the trace path. *)
      let w =
        Trace.Writer.create ~chunk_records:10_000
          ~insn_bytes:(Target.insn_bytes t) path
      in
      let r =
        Machine.run ~trace:true
          ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
          img
      in
      Trace.Writer.close w;
      let rd =
        match Reader.open_file path with
        | Ok rd -> rd
        | Error e -> Alcotest.fail e
      in
      let name fmt =
        Printf.ksprintf (fun s -> bench ^ " " ^ t.Target.name ^ " " ^ s) fmt
      in
      Alcotest.(check int) (name "records = ic") r.Machine.ic
        (Reader.n_records rd);
      (* Fetch-buffer counters: the reference per-record loop, the chunked
         engine sequential, and the chunked engine parallel all equal
         direct execution. *)
      List.iter
        (fun bus ->
          let direct = Memsys.replay_nocache ~bus_bytes:bus r in
          let reference = Replay.Seq.nocache rd ~bus_bytes:bus in
          let seq = Replay.nocache rd ~bus_bytes:bus in
          let par =
            Replay.nocache
              ~map:(fun f xs -> Pool.map ~jobs:3 f xs)
              rd ~bus_bytes:bus
          in
          Alcotest.(check int)
            (name "bus=%d ireq ref" bus)
            direct.Memsys.irequests reference.Memsys.irequests;
          Alcotest.(check int)
            (name "bus=%d dreq ref" bus)
            direct.Memsys.drequests reference.Memsys.drequests;
          Alcotest.(check int)
            (name "bus=%d ireq seq" bus)
            direct.Memsys.irequests seq.Memsys.irequests;
          Alcotest.(check int)
            (name "bus=%d dreq seq" bus)
            direct.Memsys.drequests seq.Memsys.drequests;
          Alcotest.(check int)
            (name "bus=%d ireq par" bus)
            direct.Memsys.irequests par.Memsys.irequests;
          Alcotest.(check int)
            (name "bus=%d dreq par" bus)
            direct.Memsys.drequests par.Memsys.drequests)
        [ 4; 8 ];
      (* Cache replay: counters field-for-field, cycles via the paper's
         formula. *)
      List.iter
        (fun (size, block, sub, penalty) ->
          let cfg = Memsys.cache_config ~size ~block ~sub in
          let direct =
            Memsys.replay_cached
              ~insn_bytes:(Target.insn_bytes t)
              ~icache:cfg ~dcache:cfg r
          in
          let replayed = Replay.cached ~icache:cfg ~dcache:cfg rd in
          let geo = Printf.sprintf "%d/%d/%d" size block sub in
          Alcotest.(check bool) (name "%s cached equal" geo) true
            (direct = replayed);
          Alcotest.(check int)
            (name "%s cycles" geo)
            (Memsys.cached_cycles ~miss_penalty:penalty r direct)
            (Memsys.cached_cycles ~miss_penalty:penalty r replayed))
        cache_points;
      (* Grid engine: one decode feeding every geometry — sequential and
         chunk-parallel both equal to independent per-geometry replays.
         The list stresses the automaton's edges: sub == block (whole-block
         fills), a single-set cache, a sub-block smaller than a word
         (raw i-stream path), and tiny blocks. *)
      let grid_geos =
        [
          (1024, 32, 4); (4096, 64, 8); (1024, 32, 32); (64, 64, 8);
          (64, 64, 64); (128, 8, 4); (64, 4, 2);
        ]
      in
      let seq_ok, par_ok = grid_equals_cached rd grid_geos ~jobs:3 in
      Alcotest.(check bool) (name "grid sequential equal") true seq_ok;
      Alcotest.(check bool) (name "grid parallel equal") true par_ok;
      (* Pipeline model: the streamed run, the sequential per-config trace
         replay and the multi-config grid engine (sequential and
         chunk-parallel) all integer-equal on the standard sweep. *)
      let cfgs = Runs.standard_uarch_configs in
      let _, streamed = Uarch.run_many cfgs img in
      let replayed = Replay.Seq.pipelines rd cfgs img in
      let useq = Replay.Upipelines.run rd cfgs img in
      let upar =
        Replay.Upipelines.run ~map:(fun f xs -> Pool.map ~jobs:3 f xs) rd cfgs
          img
      in
      List.iteri
        (fun i (s : Pipeline.result) ->
          let d = Uconfig.describe (List.nth cfgs i) in
          let against what (p : Pipeline.result) =
            Alcotest.(check string)
              (name "%s %s stalls" d what)
              (Stalls.to_string s.Pipeline.stalls)
              (Stalls.to_string p.Pipeline.stalls);
            Alcotest.(check bool)
              (name "%s %s caches" d what)
              true
              (s.Pipeline.caches = p.Pipeline.caches)
          in
          against "replay" (List.nth replayed i);
          against "grid seq" (List.nth useq i);
          against "grid par" (List.nth upar i))
        streamed;
      (* Fused engine: one decode feeding every axis at once — each
         sub-result byte-equal to direct execution / the reference loops,
         sequential and chunk-parallel. *)
      let fspec =
        {
          Replay.Fused.buses = [ 4; 8 ];
          caches = List.map grid_spec grid_geos;
          pipelines = cfgs;
        }
      in
      let check_fused what (f : Replay.Fused.result) =
        List.iter2
          (fun bus nc ->
            Alcotest.(check bool)
              (name "fused %s bus=%d" what bus)
              true
              (nc = Memsys.replay_nocache ~bus_bytes:bus r))
          fspec.Replay.Fused.buses f.Replay.Fused.nocaches;
        List.iter2
          (fun (s : Replay.Grid.spec) c ->
            Alcotest.(check bool)
              (name "fused %s cached" what)
              true
              (c
              = Replay.Seq.cached ~icache:s.Replay.Grid.icache
                  ~dcache:s.Replay.Grid.dcache rd))
          fspec.Replay.Fused.caches f.Replay.Fused.cacheds;
        List.iteri
          (fun i (p : Pipeline.result) ->
            let s = List.nth streamed i in
            Alcotest.(check string)
              (name "fused %s pipe %d stalls" what i)
              (Stalls.to_string s.Pipeline.stalls)
              (Stalls.to_string p.Pipeline.stalls);
            Alcotest.(check bool)
              (name "fused %s pipe %d caches" what i)
              true
              (s.Pipeline.caches = p.Pipeline.caches))
          f.Replay.Fused.pipes
      in
      check_fused "seq" (Replay.Fused.run ~img rd fspec);
      check_fused "par"
        (Replay.Fused.run ~map:(fun f xs -> Pool.map ~jobs:3 f xs) ~img rd fspec);
      (match Replay.Fused.run rd { fspec with Replay.Fused.buses = [ 4 ] } with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (name "Fused.run without ~img accepted")))

let differential_case bench =
  Alcotest.test_case ("differential " ^ bench) `Slow (fun () ->
      List.iter (differential bench) [ Target.d16; Target.dlxe ])

let tests =
  [
    QCheck_alcotest.to_alcotest synthetic_roundtrip;
    QCheck_alcotest.to_alcotest synthetic_grid;
    QCheck_alcotest.to_alcotest synthetic_upipelines;
    QCheck_alcotest.to_alcotest synthetic_counter;
    Alcotest.test_case "compiled programs roundtrip" `Slow progfuzz_roundtrip;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "writer validation" `Quick test_writer_validation;
    Alcotest.test_case "corruption detected" `Quick test_corruption;
  ]
  @ List.map
      (fun (b : Suite.benchmark) -> differential_case b.Suite.name)
      Suite.all
