(* Differential validation of the cycle-accurate pipeline model (lib/uarch)
   against the analytical memory-system formulas (lib/sim/memsys): on every
   suite benchmark and both paper machines, the per-cycle model's totals
   must equal the closed formulas EXACTLY — same interlocks, same cacheless
   cycles at every bus width and wait-state count, same cache miss counters
   and cached cycles.  Plus attribution sanity on small programs and the
   streaming-vs-replay equivalence. *)

module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Target = Repro_core.Target
module Suite = Repro_workloads.Suite
module Compile = Repro_harness.Compile
module Uarch = Repro_uarch.Uarch
module Uconfig = Repro_uarch.Uconfig
module Pipeline = Repro_uarch.Pipeline
module Stalls = Repro_uarch.Stalls
module Predecode = Repro_uarch.Predecode
module Scoreboard = Repro_uarch.Scoreboard
module Trace = Repro_trace.Trace
module Replay = Repro_trace.Replay
module Reader = Repro_trace.Trace.Reader
module Pool = Repro_harness.Pool
module Runs = Repro_harness.Runs

let bus_widths = [ 2; 4; 8 ]
let wait_states = [ 0; 1; 2; 3 ]

(* (size, block, sub, penalty): a small thrashy geometry and a large one
   with wide sub-blocks, exercising both prefetch regimes. *)
let cache_points = [ (1024, 32, 4, 8); (4096, 64, 8, 12) ]

let differential bench (t : Target.t) =
  let src = (Suite.find bench).Suite.source in
  let img, r = Compile.compile_and_run ~trace:true t src in
  let tr = Option.get r.Machine.trace in
  let name fmt =
    Printf.ksprintf (fun s -> bench ^ " " ^ t.Target.name ^ " " ^ s) fmt
  in
  List.iter
    (fun bus ->
      let nc = Memsys.replay_nocache ~bus_bytes:bus r in
      List.iter
        (fun l ->
          let u =
            (Uarch.replay (Uconfig.nocache ~bus_bytes:bus ~wait_states:l) img
               tr)
              .Pipeline.stalls
          in
          Alcotest.(check int)
            (name "bus=%d l=%d cycles" bus l)
            (Memsys.nocache_cycles ~wait_states:l r nc)
            u.Stalls.cycles;
          Alcotest.(check int) (name "bus=%d l=%d ic" bus l) r.Machine.ic
            u.Stalls.ic;
          Alcotest.(check int)
            (name "bus=%d l=%d interlocks" bus l)
            r.Machine.interlocks (Stalls.interlocks u);
          Alcotest.(check bool)
            (name "bus=%d l=%d components sum" bus l)
            true (Stalls.consistent u))
        wait_states)
    bus_widths;
  List.iter
    (fun (size, block, sub, penalty) ->
      let cfg = Memsys.cache_config ~size ~block ~sub in
      let c =
        Memsys.replay_cached
          ~insn_bytes:(Target.insn_bytes t)
          ~icache:cfg ~dcache:cfg r
      in
      let ures =
        Uarch.replay
          (Uconfig.cached ~icache:cfg ~dcache:cfg ~miss_penalty:penalty)
          img tr
      in
      let uc = Option.get ures.Pipeline.caches in
      let u = ures.Pipeline.stalls in
      let geo = Printf.sprintf "%d/%d/%d" size block sub in
      Alcotest.(check int)
        (name "%s imisses" geo)
        c.Memsys.icache.Memsys.misses uc.Memsys.icache.Memsys.misses;
      Alcotest.(check int)
        (name "%s iwords" geo)
        c.Memsys.icache.Memsys.words_transferred
        uc.Memsys.icache.Memsys.words_transferred;
      Alcotest.(check int)
        (name "%s read misses" geo)
        c.Memsys.dcache_read.Memsys.misses
        uc.Memsys.dcache_read.Memsys.misses;
      Alcotest.(check int)
        (name "%s read accesses" geo)
        c.Memsys.dcache_read.Memsys.accesses
        uc.Memsys.dcache_read.Memsys.accesses;
      Alcotest.(check int)
        (name "%s write misses" geo)
        c.Memsys.dcache_write.Memsys.misses
        uc.Memsys.dcache_write.Memsys.misses;
      Alcotest.(check int)
        (name "%s write accesses" geo)
        c.Memsys.dcache_write.Memsys.accesses
        uc.Memsys.dcache_write.Memsys.accesses;
      Alcotest.(check int)
        (name "%s cycles" geo)
        (Memsys.cached_cycles ~miss_penalty:penalty r c)
        u.Stalls.cycles;
      Alcotest.(check bool)
        (name "%s components sum" geo)
        true (Stalls.consistent u))
    cache_points

let differential_case bench =
  Alcotest.test_case ("differential " ^ bench) `Slow (fun () ->
      List.iter (differential bench) [ Target.d16; Target.dlxe ])

let test_stream_equals_replay () =
  (* Feeding pipelines from the live on_insn hook must produce the same
     result as replaying a recorded trace of the same execution. *)
  let src = (Suite.find "queens").Suite.source in
  List.iter
    (fun t ->
      let img, traced = Compile.compile_and_run ~trace:true t src in
      let tr = Option.get traced.Machine.trace in
      let cfgs =
        [
          Uconfig.nocache ~bus_bytes:4 ~wait_states:1;
          (let c = Memsys.cache_config ~size:1024 ~block:32 ~sub:4 in
           Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:8);
        ]
      in
      let r, streamed = Uarch.run_many cfgs img in
      Alcotest.(check bool) "streaming run carries no trace" true
        (r.Machine.trace = None);
      Alcotest.(check int) "same architectural ic" traced.Machine.ic
        r.Machine.ic;
      List.iter2
        (fun cfg s ->
          let p = Uarch.replay cfg img tr in
          Alcotest.(check string)
            (Uconfig.describe cfg ^ " stream = replay")
            (Stalls.to_string p.Pipeline.stalls)
            (Stalls.to_string s.Pipeline.stalls))
        cfgs streamed)
    [ Target.d16; Target.dlxe ]

let run_uarch t cfg src =
  let img, _ = Compile.compile_and_run ~trace:false t src in
  (snd (Uarch.run cfg img)).Pipeline.stalls

let test_attribution_load () =
  (* A load-use chain shows up as load interlocks, never FP. *)
  let src =
    {|int g = 5;
      int main() {
        int i; int s = 0;
        for (i = 0; i < 100; i++) s = s + g;
        print_int(s);
        return 0; }|}
  in
  let u = run_uarch Target.dlxe (Uconfig.nocache ~bus_bytes:4 ~wait_states:0) src in
  Alcotest.(check bool) "load interlocks present" true
    (u.Stalls.load_interlocks > 0);
  Alcotest.(check int) "no fp interlocks" 0 u.Stalls.fp_interlocks;
  (* Zero wait states: a cacheless machine never stalls on memory. *)
  Alcotest.(check int) "no fetch stalls at l=0" 0 u.Stalls.fetch_stalls;
  Alcotest.(check int) "no data stalls at l=0" 0
    (u.Stalls.dmiss_stalls + u.Stalls.wmiss_stalls)

let test_attribution_fp () =
  let src =
    {|double g = 3.0;
      int main() {
        double x = 1.0; int i;
        for (i = 0; i < 50; i++) x = 1.0 / (x + g);
        print_int((int)(x * 1000.0));
        return 0; }|}
  in
  let u = run_uarch Target.dlxe (Uconfig.nocache ~bus_bytes:4 ~wait_states:0) src in
  Alcotest.(check bool)
    (Printf.sprintf "fp divide chain stalls (%d)" u.Stalls.fp_interlocks)
    true
    (u.Stalls.fp_interlocks > 50)

let test_attribution_fetch () =
  (* Wait states turn fetches into fetch stalls; D16's 2-byte instructions
     on a 4-byte bus need at most half the requests of DLXe's 4-byte ones. *)
  let src = (Suite.find "towers").Suite.source in
  let at t l =
    run_uarch t (Uconfig.nocache ~bus_bytes:4 ~wait_states:l) src
  in
  let d16 = at Target.d16 2 and dlxe = at Target.dlxe 2 in
  Alcotest.(check bool) "wait states cost fetch stalls" true
    (d16.Stalls.fetch_stalls > 0);
  Alcotest.(check bool) "D16 fetch-stalls less than DLXe" true
    (d16.Stalls.fetch_stalls < dlxe.Stalls.fetch_stalls);
  (* DLXe 32-bit fetch on a 32-bit bus: every instruction is a request. *)
  Alcotest.(check int) "DLXe fetch stalls = l * ic"
    (2 * dlxe.Stalls.ic) dlxe.Stalls.fetch_stalls

(* Handwritten descriptor streams for the scoreboard chunk engine: one
   that drains (convergence must be detected, cold suffix adopted
   verbatim) and one shorter than the horizon (no convergence, absorb
   must take the full re-step fallback) — both exactly equal to direct
   warm stepping. *)
let d_alu d a =
  {
    Predecode.reads = [ Predecode.Rg a ];
    write =
      Some { Predecode.dst = Predecode.Wg d; latency = 0; cause = Predecode.Load };
  }

let d_load d a =
  {
    Predecode.reads = [ Predecode.Rg a ];
    write =
      Some
        {
          Predecode.dst = Predecode.Wg d;
          latency = Machine.load_latency;
          cause = Predecode.Load;
        };
  }

let d_div d a =
  {
    Predecode.reads = [ Predecode.Rf a ];
    write =
      Some
        {
          Predecode.dst = Predecode.Wf d;
          latency = Machine.fp_latency_div;
          cause = Predecode.Fp;
        };
  }

let test_scoreboard_chunks () =
  let descs =
    [|
      d_div 1 0; d_load 2 0; d_alu 3 2; d_div 4 1; d_alu 5 0; d_alu 6 5;
      d_alu 7 6; d_alu 1 7; d_alu 2 1; d_alu 3 2; d_alu 4 3; d_alu 5 4;
    |]
  in
  let n = Array.length descs in
  (* Carried-in state at the boundary: two FP divides in flight. *)
  let mk () =
    let sb = Scoreboard.create ~n_gpr:8 ~n_fpr:8 in
    Scoreboard.step sb descs.(0);
    Scoreboard.step sb descs.(3);
    sb
  in
  let counters sb =
    (Scoreboard.clock sb, Scoreboard.load_stalls sb, Scoreboard.fp_stalls sb)
  in
  let run_chunk len =
    let direct = mk () in
    for i = 0 to len - 1 do
      Scoreboard.step direct descs.(i)
    done;
    let ch = Scoreboard.chunk_start ~n_gpr:8 ~n_fpr:8 in
    for i = 0 to len - 1 do
      Scoreboard.chunk_step ch ~index:i descs.(i)
    done;
    let sb = mk () in
    Scoreboard.absorb sb descs (Scoreboard.chunk_finish ch);
    (direct, ch, sb)
  in
  let check_equal what direct sb =
    Alcotest.(check (triple int int int))
      (what ^ " counters") (counters direct) (counters sb);
    Alcotest.(check bool) (what ^ " end state") true
      (Scoreboard.snapshot_equal (Scoreboard.snapshot direct)
         (Scoreboard.snapshot sb))
  in
  (* Long chunk: drains well past the horizon. *)
  let direct, ch, sb = run_chunk n in
  Alcotest.(check bool) "long chunk converges" true
    (Scoreboard.convergence ch <> None);
  check_equal "long chunk" direct sb;
  Alcotest.(check bool) "long chunk drains" true (Scoreboard.drained sb);
  (* Short chunk: ends before the horizon, falls back to full re-step. *)
  let direct, ch, sb = run_chunk 3 in
  Alcotest.(check bool) "short chunk does not converge" true
    (Scoreboard.convergence ch = None);
  check_equal "short chunk" direct sb;
  Alcotest.(check bool) "short chunk carries busy registers" true
    (not (Scoreboard.drained sb));
  (* Normalized state round-trip: restore after unrelated stepping. *)
  let saved = Scoreboard.snapshot direct in
  let other = Scoreboard.create ~n_gpr:8 ~n_fpr:8 in
  for i = 0 to n - 1 do
    Scoreboard.step other descs.(i)
  done;
  Scoreboard.restore other saved;
  Alcotest.(check bool) "restore reproduces the snapshot" true
    (Scoreboard.snapshot_equal saved (Scoreboard.snapshot other))

let test_predecode_shared () =
  (* The descriptor table is built once per image and shared (physical
     equality), but never leaks across distinct images of the same
     program. *)
  let src = (Suite.find "towers").Suite.source in
  let img = Compile.compile Target.d16 src in
  Alcotest.(check bool) "one table per image" true
    (Predecode.table img == Predecode.table img);
  let img' = Compile.compile Target.d16 src in
  Alcotest.(check bool) "distinct images, distinct tables" true
    (Predecode.table img' != Predecode.table img)

(* The multi-config grid engine against the streamed run, with chunks far
   smaller than production (77 records — boundaries land everywhere,
   including mid-drain) and configurations beyond the standard sweep that
   force the raw i-stream paths (2-byte bus, sub-word sub-blocks). *)
let test_grid_equals_streamed () =
  let cfgs =
    Runs.standard_uarch_configs
    @ [
        Uconfig.nocache ~bus_bytes:2 ~wait_states:1;
        (let c = Memsys.cache_config ~size:256 ~block:16 ~sub:2 in
         Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:5);
      ]
  in
  let src = (Suite.find "queens").Suite.source in
  List.iter
    (fun (t : Target.t) ->
      let img = Compile.compile t src in
      let path = Filename.temp_file "repro-t-uarch" ".trc" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let w =
            Trace.Writer.create ~chunk_records:77
              ~insn_bytes:(Target.insn_bytes t) path
          in
          let _ =
            Machine.run ~trace:false
              ~on_insn:(fun ~iaddr ~dinfo -> Trace.Writer.step w ~pc:iaddr ~dinfo)
              img
          in
          Trace.Writer.close w;
          let rd =
            match Reader.open_file path with
            | Ok rd -> rd
            | Error e -> Alcotest.fail e
          in
          let _, streamed = Uarch.run_many cfgs img in
          let seq = Replay.Upipelines.run rd cfgs img in
          let par =
            Replay.Upipelines.run
              ~map:(fun f xs -> Pool.map ~jobs:3 f xs)
              rd cfgs img
          in
          List.iteri
            (fun i (s : Pipeline.result) ->
              let d = t.Target.name ^ " " ^ Uconfig.describe (List.nth cfgs i) in
              let against what (p : Pipeline.result) =
                Alcotest.(check string)
                  (d ^ " " ^ what ^ " stalls")
                  (Stalls.to_string s.Pipeline.stalls)
                  (Stalls.to_string p.Pipeline.stalls);
                Alcotest.(check bool)
                  (d ^ " " ^ what ^ " caches")
                  true
                  (s.Pipeline.caches = p.Pipeline.caches)
              in
              against "grid seq" (List.nth seq i);
              against "grid par" (List.nth par i))
            streamed;
          (* The fused engine on a pipelines-only spec is the same sweep
             through the cross-product path — equally exact, sequential
             and chunk-parallel, on the same adversarial chunks. *)
          let fspec =
            { Replay.Fused.buses = []; caches = []; pipelines = cfgs }
          in
          let check_fused what (f : Replay.Fused.result) =
            List.iteri
              (fun i (s : Pipeline.result) ->
                let p = List.nth f.Replay.Fused.pipes i in
                let d =
                  t.Target.name ^ " " ^ Uconfig.describe (List.nth cfgs i)
                in
                Alcotest.(check string)
                  (d ^ " " ^ what ^ " stalls")
                  (Stalls.to_string s.Pipeline.stalls)
                  (Stalls.to_string p.Pipeline.stalls);
                Alcotest.(check bool)
                  (d ^ " " ^ what ^ " caches")
                  true
                  (s.Pipeline.caches = p.Pipeline.caches))
              streamed
          in
          check_fused "fused seq" (Replay.Fused.run ~img rd fspec);
          check_fused "fused par"
            (Replay.Fused.run
               ~map:(fun f xs -> Pool.map ~jobs:3 f xs)
               ~img rd fspec)))
    [ Target.d16; Target.dlxe ]

let test_config_validation () =
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  rejects "bus of 1" (fun () -> Uconfig.nocache ~bus_bytes:1 ~wait_states:0);
  rejects "non-power-of-two bus" (fun () ->
      Uconfig.nocache ~bus_bytes:6 ~wait_states:0);
  rejects "negative wait states" (fun () ->
      Uconfig.nocache ~bus_bytes:4 ~wait_states:(-1));
  let c = Memsys.cache_config ~size:1024 ~block:32 ~sub:4 in
  rejects "negative penalty" (fun () ->
      Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:(-1));
  Alcotest.(check string) "nocache describe" "nocache:bus=4,l=2"
    (Uconfig.describe (Uconfig.nocache ~bus_bytes:4 ~wait_states:2));
  Alcotest.(check string) "cached describe" "cached:i=1024/32/4,d=1024/32/4,p=8"
    (Uconfig.describe (Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:8))

let tests =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "attribution: load" `Quick test_attribution_load;
    Alcotest.test_case "attribution: fp" `Quick test_attribution_fp;
    Alcotest.test_case "attribution: fetch" `Quick test_attribution_fetch;
    Alcotest.test_case "scoreboard chunk engine" `Quick test_scoreboard_chunks;
    Alcotest.test_case "predecode table shared" `Quick test_predecode_shared;
    Alcotest.test_case "stream = replay" `Slow test_stream_equals_replay;
    Alcotest.test_case "grid = streamed, adversarial chunks" `Slow
      test_grid_equals_streamed;
  ]
  @ List.map (fun (b : Suite.benchmark) -> differential_case b.Suite.name) Suite.all
