(* Differential validation of the cycle-accurate pipeline model (lib/uarch)
   against the analytical memory-system formulas (lib/sim/memsys): on every
   suite benchmark and both paper machines, the per-cycle model's totals
   must equal the closed formulas EXACTLY — same interlocks, same cacheless
   cycles at every bus width and wait-state count, same cache miss counters
   and cached cycles.  Plus attribution sanity on small programs and the
   streaming-vs-replay equivalence. *)

module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Target = Repro_core.Target
module Suite = Repro_workloads.Suite
module Compile = Repro_harness.Compile
module Uarch = Repro_uarch.Uarch
module Uconfig = Repro_uarch.Uconfig
module Pipeline = Repro_uarch.Pipeline
module Stalls = Repro_uarch.Stalls

let bus_widths = [ 2; 4; 8 ]
let wait_states = [ 0; 1; 2; 3 ]

(* (size, block, sub, penalty): a small thrashy geometry and a large one
   with wide sub-blocks, exercising both prefetch regimes. *)
let cache_points = [ (1024, 32, 4, 8); (4096, 64, 8, 12) ]

let differential bench (t : Target.t) =
  let src = (Suite.find bench).Suite.source in
  let img, r = Compile.compile_and_run ~trace:true t src in
  let tr = Option.get r.Machine.trace in
  let name fmt =
    Printf.ksprintf (fun s -> bench ^ " " ^ t.Target.name ^ " " ^ s) fmt
  in
  List.iter
    (fun bus ->
      let nc = Memsys.replay_nocache ~bus_bytes:bus r in
      List.iter
        (fun l ->
          let u =
            (Uarch.replay (Uconfig.nocache ~bus_bytes:bus ~wait_states:l) img
               tr)
              .Pipeline.stalls
          in
          Alcotest.(check int)
            (name "bus=%d l=%d cycles" bus l)
            (Memsys.nocache_cycles ~wait_states:l r nc)
            u.Stalls.cycles;
          Alcotest.(check int) (name "bus=%d l=%d ic" bus l) r.Machine.ic
            u.Stalls.ic;
          Alcotest.(check int)
            (name "bus=%d l=%d interlocks" bus l)
            r.Machine.interlocks (Stalls.interlocks u);
          Alcotest.(check bool)
            (name "bus=%d l=%d components sum" bus l)
            true (Stalls.consistent u))
        wait_states)
    bus_widths;
  List.iter
    (fun (size, block, sub, penalty) ->
      let cfg = Memsys.cache_config ~size ~block ~sub in
      let c =
        Memsys.replay_cached
          ~insn_bytes:(Target.insn_bytes t)
          ~icache:cfg ~dcache:cfg r
      in
      let ures =
        Uarch.replay
          (Uconfig.cached ~icache:cfg ~dcache:cfg ~miss_penalty:penalty)
          img tr
      in
      let uc = Option.get ures.Pipeline.caches in
      let u = ures.Pipeline.stalls in
      let geo = Printf.sprintf "%d/%d/%d" size block sub in
      Alcotest.(check int)
        (name "%s imisses" geo)
        c.Memsys.icache.Memsys.misses uc.Memsys.icache.Memsys.misses;
      Alcotest.(check int)
        (name "%s iwords" geo)
        c.Memsys.icache.Memsys.words_transferred
        uc.Memsys.icache.Memsys.words_transferred;
      Alcotest.(check int)
        (name "%s read misses" geo)
        c.Memsys.dcache_read.Memsys.misses
        uc.Memsys.dcache_read.Memsys.misses;
      Alcotest.(check int)
        (name "%s read accesses" geo)
        c.Memsys.dcache_read.Memsys.accesses
        uc.Memsys.dcache_read.Memsys.accesses;
      Alcotest.(check int)
        (name "%s write misses" geo)
        c.Memsys.dcache_write.Memsys.misses
        uc.Memsys.dcache_write.Memsys.misses;
      Alcotest.(check int)
        (name "%s write accesses" geo)
        c.Memsys.dcache_write.Memsys.accesses
        uc.Memsys.dcache_write.Memsys.accesses;
      Alcotest.(check int)
        (name "%s cycles" geo)
        (Memsys.cached_cycles ~miss_penalty:penalty r c)
        u.Stalls.cycles;
      Alcotest.(check bool)
        (name "%s components sum" geo)
        true (Stalls.consistent u))
    cache_points

let differential_case bench =
  Alcotest.test_case ("differential " ^ bench) `Slow (fun () ->
      List.iter (differential bench) [ Target.d16; Target.dlxe ])

let test_stream_equals_replay () =
  (* Feeding pipelines from the live on_insn hook must produce the same
     result as replaying a recorded trace of the same execution. *)
  let src = (Suite.find "queens").Suite.source in
  List.iter
    (fun t ->
      let img, traced = Compile.compile_and_run ~trace:true t src in
      let tr = Option.get traced.Machine.trace in
      let cfgs =
        [
          Uconfig.nocache ~bus_bytes:4 ~wait_states:1;
          (let c = Memsys.cache_config ~size:1024 ~block:32 ~sub:4 in
           Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:8);
        ]
      in
      let r, streamed = Uarch.run_many cfgs img in
      Alcotest.(check bool) "streaming run carries no trace" true
        (r.Machine.trace = None);
      Alcotest.(check int) "same architectural ic" traced.Machine.ic
        r.Machine.ic;
      List.iter2
        (fun cfg s ->
          let p = Uarch.replay cfg img tr in
          Alcotest.(check string)
            (Uconfig.describe cfg ^ " stream = replay")
            (Stalls.to_string p.Pipeline.stalls)
            (Stalls.to_string s.Pipeline.stalls))
        cfgs streamed)
    [ Target.d16; Target.dlxe ]

let run_uarch t cfg src =
  let img, _ = Compile.compile_and_run ~trace:false t src in
  (snd (Uarch.run cfg img)).Pipeline.stalls

let test_attribution_load () =
  (* A load-use chain shows up as load interlocks, never FP. *)
  let src =
    {|int g = 5;
      int main() {
        int i; int s = 0;
        for (i = 0; i < 100; i++) s = s + g;
        print_int(s);
        return 0; }|}
  in
  let u = run_uarch Target.dlxe (Uconfig.nocache ~bus_bytes:4 ~wait_states:0) src in
  Alcotest.(check bool) "load interlocks present" true
    (u.Stalls.load_interlocks > 0);
  Alcotest.(check int) "no fp interlocks" 0 u.Stalls.fp_interlocks;
  (* Zero wait states: a cacheless machine never stalls on memory. *)
  Alcotest.(check int) "no fetch stalls at l=0" 0 u.Stalls.fetch_stalls;
  Alcotest.(check int) "no data stalls at l=0" 0
    (u.Stalls.dmiss_stalls + u.Stalls.wmiss_stalls)

let test_attribution_fp () =
  let src =
    {|double g = 3.0;
      int main() {
        double x = 1.0; int i;
        for (i = 0; i < 50; i++) x = 1.0 / (x + g);
        print_int((int)(x * 1000.0));
        return 0; }|}
  in
  let u = run_uarch Target.dlxe (Uconfig.nocache ~bus_bytes:4 ~wait_states:0) src in
  Alcotest.(check bool)
    (Printf.sprintf "fp divide chain stalls (%d)" u.Stalls.fp_interlocks)
    true
    (u.Stalls.fp_interlocks > 50)

let test_attribution_fetch () =
  (* Wait states turn fetches into fetch stalls; D16's 2-byte instructions
     on a 4-byte bus need at most half the requests of DLXe's 4-byte ones. *)
  let src = (Suite.find "towers").Suite.source in
  let at t l =
    run_uarch t (Uconfig.nocache ~bus_bytes:4 ~wait_states:l) src
  in
  let d16 = at Target.d16 2 and dlxe = at Target.dlxe 2 in
  Alcotest.(check bool) "wait states cost fetch stalls" true
    (d16.Stalls.fetch_stalls > 0);
  Alcotest.(check bool) "D16 fetch-stalls less than DLXe" true
    (d16.Stalls.fetch_stalls < dlxe.Stalls.fetch_stalls);
  (* DLXe 32-bit fetch on a 32-bit bus: every instruction is a request. *)
  Alcotest.(check int) "DLXe fetch stalls = l * ic"
    (2 * dlxe.Stalls.ic) dlxe.Stalls.fetch_stalls

let test_config_validation () =
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  rejects "bus of 1" (fun () -> Uconfig.nocache ~bus_bytes:1 ~wait_states:0);
  rejects "non-power-of-two bus" (fun () ->
      Uconfig.nocache ~bus_bytes:6 ~wait_states:0);
  rejects "negative wait states" (fun () ->
      Uconfig.nocache ~bus_bytes:4 ~wait_states:(-1));
  let c = Memsys.cache_config ~size:1024 ~block:32 ~sub:4 in
  rejects "negative penalty" (fun () ->
      Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:(-1));
  Alcotest.(check string) "nocache describe" "nocache:bus=4,l=2"
    (Uconfig.describe (Uconfig.nocache ~bus_bytes:4 ~wait_states:2));
  Alcotest.(check string) "cached describe" "cached:i=1024/32/4,d=1024/32/4,p=8"
    (Uconfig.describe (Uconfig.cached ~icache:c ~dcache:c ~miss_penalty:8))

let tests =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "attribution: load" `Quick test_attribution_load;
    Alcotest.test_case "attribution: fp" `Quick test_attribution_fp;
    Alcotest.test_case "attribution: fetch" `Quick test_attribution_fetch;
    Alcotest.test_case "stream = replay" `Slow test_stream_equals_replay;
  ]
  @ List.map (fun (b : Suite.benchmark) -> differential_case b.Suite.name) Suite.all
