(* Memory wall: Section 4's cacheless experiment for one program.  Sweeps
   main-memory wait states on 32- and 64-bit fetch buses and reports where
   the D16/DLXe crossover falls — the paper's Figure 14 / Table 11 for a
   single workload.

   Run with:  dune exec examples/memory_wall.exe [benchmark]
   (default: towers)                                                     *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Table = Repro_util.Table

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "towers" in
  let source = (Suite.find bench).Suite.source in
  Printf.printf "Memory-latency sweep for '%s' (no cache)\n\n" bench;
  let run target =
    let _, r = Compile.compile_and_run ~trace:true target source in
    r
  in
  let r16 = run Target.d16 in
  let r32 = run Target.dlxe in
  List.iter
    (fun bus ->
      let nc16 = Memsys.replay_nocache ~bus_bytes:bus r16 in
      let nc32 = Memsys.replay_nocache ~bus_bytes:bus r32 in
      Printf.printf "%d-bit fetch bus (D16 k=%d, DLXe k=%d):\n" (8 * bus)
        (bus / 2) (bus / 4);
      let rows =
        List.map
          (fun l ->
            let c16 = Memsys.nocache_cycles ~wait_states:l r16 nc16 in
            let c32 = Memsys.nocache_cycles ~wait_states:l r32 nc32 in
            [
              string_of_int l;
              string_of_int c16;
              string_of_int c32;
              Table.fmt2 (float_of_int c32 /. float_of_int c16);
              (if c32 > c16 then "D16" else "DLXe");
            ])
          [ 0; 1; 2; 3; 4 ]
      in
      print_string
        (Table.render
           [ "wait states"; "D16 cycles"; "DLXe cycles"; "DLXe/D16"; "winner" ]
           rows);
      print_newline ())
    [ 4; 8 ];
  Printf.printf
    "D16 issues %d fetch requests to DLXe's %d on the 32-bit bus: each\n\
     wait-state cycle is amortized over ~2x the instructions, which is why\n\
     the crossover sits at the first nonzero latency.\n"
    (Memsys.replay_nocache ~bus_bytes:4 r16).Memsys.irequests
    (Memsys.replay_nocache ~bus_bytes:4 r32).Memsys.irequests
