examples/cache_study.ml: Array List Printf Repro_core Repro_harness Repro_sim Repro_util Repro_workloads Sys
