examples/memory_wall.ml: Array List Printf Repro_core Repro_harness Repro_sim Repro_util Repro_workloads Sys
