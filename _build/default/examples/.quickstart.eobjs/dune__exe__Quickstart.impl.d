examples/quickstart.ml: List Printf Repro_core Repro_harness Repro_link Repro_sim
