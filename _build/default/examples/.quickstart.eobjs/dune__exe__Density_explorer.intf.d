examples/density_explorer.mli:
