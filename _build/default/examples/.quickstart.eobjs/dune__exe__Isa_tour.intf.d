examples/isa_tour.mli:
