examples/density_explorer.ml: Array List Printf Repro_core Repro_harness Repro_link Repro_sim Repro_util Repro_workloads Sys
