examples/quickstart.mli:
