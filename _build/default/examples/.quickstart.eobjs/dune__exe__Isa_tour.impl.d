examples/isa_tour.ml: List Printf Repro_core String
