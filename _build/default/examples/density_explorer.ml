(* Density explorer: Section 3 of the paper in miniature.  Compiles one
   program for all five targets and attributes the density/path gap to
   individual instruction-set features (register count, operand count),
   exactly as the paper's selectively restricted compilers do.

   Run with:  dune exec examples/density_explorer.exe [benchmark]
   (default benchmark: dhrystone)                                        *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Link = Repro_link.Link
module Suite = Repro_workloads.Suite
module Table = Repro_util.Table

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "dhrystone" in
  let source =
    match Suite.find bench with
    | b -> b.Suite.source
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %s; try --list via bin/d16c\n" bench;
      exit 1
  in
  Printf.printf "Feature attribution for '%s'\n\n" bench;
  let measure target =
    let image, result = Compile.compile_and_run ~trace:false target source in
    (Link.size_bytes image, result.Repro_sim.Machine.ic)
  in
  let rows =
    List.map
      (fun t ->
        let size, ic = measure t in
        [ t.Target.name; string_of_int size; string_of_int ic ])
      Target.all
  in
  print_string (Table.render [ "target"; "bytes"; "path" ] rows);
  (* Attribute the differences feature by feature. *)
  let s_d16, p_d16 = measure Target.d16 in
  let s_162, p_162 = measure Target.dlxe_16_2 in
  let s_163, p_163 = measure Target.dlxe_16_3 in
  let s_323, p_323 = measure Target.dlxe in
  let pct a b = 100. *. (float_of_int a -. float_of_int b) /. float_of_int b in
  Printf.printf
    "\nGoing from D16 to DLXe/16/2 (wide immediates and offsets):\n\
    \  size %+.1f%%, path %+.1f%%\n"
    (pct s_162 s_d16) (pct p_162 p_d16);
  Printf.printf
    "Allowing three-address instructions (DLXe/16/2 -> /16/3):\n\
    \  size %+.1f%%, path %+.1f%%\n"
    (pct s_163 s_162) (pct p_163 p_162);
  Printf.printf
    "Doubling the register file (DLXe/16/3 -> /32/3):\n\
    \  size %+.1f%%, path %+.1f%%\n"
    (pct s_323 s_163) (pct p_323 p_163);
  Printf.printf
    "\nNet: DLXe programs are %.2fx the size of D16 but execute %.2fx the\n\
     instructions — density buys more than expressiveness costs.\n"
    (float_of_int s_323 /. float_of_int s_d16)
    (float_of_int p_323 /. float_of_int p_d16)
