(* Quickstart: compile a mini-C program for both instruction encodings,
   run it, and compare the paper's two headline measures — static code
   size (density) and dynamic path length.

   Run with:  dune exec examples/quickstart.exe *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Link = Repro_link.Link

let program =
  {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int main() {
  print_str("fib(20) = ");
  print_int(fib(20));
  print_char('\n');
  return 0;
}
|}

let () =
  print_endline "Compiling the same source for both encodings...\n";
  let results =
    List.map
      (fun target ->
        let image, result = Compile.compile_and_run ~trace:false target program in
        Printf.printf "--- %s ---\n" target.Target.name;
        print_string result.Repro_sim.Machine.output;
        Printf.printf
          "binary %d bytes (text %d), path length %d, loads %d, stores %d, interlocks %d\n\n"
          (Link.size_bytes image) image.Link.text_bytes
          result.Repro_sim.Machine.ic result.Repro_sim.Machine.loads
          result.Repro_sim.Machine.stores result.Repro_sim.Machine.interlocks;
        (target, image, result))
      [ Target.d16; Target.dlxe ]
  in
  match results with
  | [ (_, img16, r16); (_, img32, r32) ] ->
    Printf.printf
      "density (DLXe/D16): %.2fx   path length (DLXe/D16): %.2fx\n"
      (float_of_int (Link.size_bytes img32) /. float_of_int (Link.size_bytes img16))
      (float_of_int r32.Repro_sim.Machine.ic /. float_of_int r16.Repro_sim.Machine.ic);
    print_endline
      "The 16-bit encoding trades a slightly longer instruction sequence\n\
       for substantially smaller code — the paper's central trade-off."
  | _ -> assert false
