(* ISA tour: the two encodings side by side — every format, its bit
   layout, and what the same operation costs on each machine, the way
   Section 2 of the paper presents them.

   Run with:  dune exec examples/isa_tour.exe *)

module Insn = Repro_core.Insn
module Target = Repro_core.Target
module D16 = Repro_core.D16
module Dlxe = Repro_core.Dlxe

let bits16 w = String.init 16 (fun i -> if w land (1 lsl (15 - i)) <> 0 then '1' else '0')
let bits32 w = String.init 32 (fun i -> if w land (1 lsl (31 - i)) <> 0 then '1' else '0')

let show_d16 i =
  Printf.printf "  %-26s %s  (0x%04x)\n" (Insn.to_string i)
    (bits16 (D16.encode i))
    (D16.encode i)

let show_dlxe i =
  Printf.printf "  %-26s %s  (0x%08x)\n" (Insn.to_string i)
    (bits32 (Dlxe.encode i))
    (Dlxe.encode i)

let show_pair title d16_seq dlxe_seq =
  Printf.printf "\n%s\n" title;
  Printf.printf "D16 (%d bytes):\n" (2 * List.length d16_seq);
  List.iter show_d16 d16_seq;
  Printf.printf "DLXe (%d bytes):\n" (4 * List.length dlxe_seq);
  List.iter show_dlxe dlxe_seq

let () =
  print_endline "The five D16 formats (paper Figure 1):";
  show_d16 (Insn.Load (Lw, 3, 5, 8));          (* MEM *)
  show_d16 (Insn.Alu (Add, 3, 3, 4));          (* REG *)
  show_d16 (Insn.Mvi (3, -7));                 (* MVI *)
  show_d16 (Insn.Bnz (0, -16));                (* BR *)
  show_d16 (Insn.Ldc (0, -64));                (* LDC *)
  print_endline "\nThe three DLXe formats (paper Figure 2):";
  show_dlxe (Insn.Load (Lw, 3, 5, 8));         (* I-type *)
  show_dlxe (Insn.Alu (Add, 3, 4, 5));         (* R-type *)
  show_dlxe (Insn.Brl 1024);                   (* J-type *)

  show_pair "A three-operand add (a = b + c):"
    [ Insn.Mv (3, 4); Insn.Alu (Add, 3, 3, 5) ]
    [ Insn.Alu (Add, 3, 4, 5) ];

  show_pair "Add a large immediate (a += 1000):"
    [ Insn.Mvi (5, 125); Insn.Alui (Shl, 5, 5, 3); Insn.Alu (Add, 3, 3, 5) ]
    [ Insn.Alui (Add, 3, 3, 1000) ];

  show_pair "Branch if a < b:"
    [ Insn.Cmp (Lt, 0, 3, 4); Insn.Bnz (0, 12) ]
    [ Insn.Cmp (Lt, 8, 3, 4); Insn.Bnz (8, 12) ];

  show_pair "Load a word at a 16-bit displacement (t = p[600]):"
    [ Insn.Ldc (0, -8); Insn.Alu (Add, 0, 0, 5); Insn.Load (Lw, 3, 0, 0) ]
    [ Insn.Load (Lw, 3, 5, 2400) ];

  Printf.printf
    "\nSame pipeline, same operations; only the bits differ.  Byte for byte\n\
     every fetch, buffer, and cache line holds twice the D16 instructions —\n\
     the whole paper follows from that observation.\n"
