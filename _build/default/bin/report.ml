(* Regenerate every table and figure of the paper.  With arguments, only
   the named experiment ids (e.g. "fig4 tab11"). *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let experiments =
    match args with
    | [] -> Repro_harness.Experiments.all
    | ids -> (
      try List.map Repro_harness.Experiments.by_id ids
      with Not_found ->
        prerr_endline "unknown experiment id; known ids:";
        List.iter
          (fun (e : Repro_harness.Experiments.t) -> prerr_endline ("  " ^ e.id))
          Repro_harness.Experiments.all;
        exit 1)
  in
  List.iter
    (fun (e : Repro_harness.Experiments.t) ->
      Printf.printf "================ %s: %s ================\n%s\n" e.id
        e.title
        (e.render ()))
    experiments
