(* Tests for the D16x compare-equal-immediate extension (paper Section
   3.3.3) and for the compiler ablation switches. *)

module Target = Repro_core.Target
module Insn = Repro_core.Insn
module D16x = Repro_core.D16x
module Compile = Repro_harness.Compile
module Opt = Repro_ir.Opt
module Suite = Repro_workloads.Suite
module Machine = Repro_sim.Machine

let test_d16x_legality () =
  let ok i = Alcotest.(check bool) (Insn.to_string i) true (Target.legal Target.d16x i = Ok ()) in
  let bad i = Alcotest.(check bool) (Insn.to_string i) true (Target.legal Target.d16x i <> Ok ()) in
  ok (Insn.Cmpi (Eq, 0, 5, 127));
  ok (Insn.Cmpi (Eq, 0, 5, -128));
  bad (Insn.Cmpi (Eq, 0, 5, 128));
  bad (Insn.Cmpi (Lt, 0, 5, 1));
  bad (Insn.Cmpi (Eq, 3, 5, 1));
  (* The narrowed move immediate. *)
  ok (Insn.Mvi (4, 127));
  bad (Insn.Mvi (4, 128));
  (* Plain D16 still rejects all compare immediates and keeps 9-bit mvi. *)
  Alcotest.(check bool) "base D16 has no cmpi" true
    (Target.legal Target.d16 (Insn.Cmpi (Eq, 0, 5, 1)) <> Ok ());
  Alcotest.(check bool) "base D16 mvi is 9-bit" true
    (Target.legal Target.d16 (Insn.Mvi (4, 255)) = Ok ())

let test_d16x_encoding () =
  let roundtrip i =
    Alcotest.(check bool)
      ("roundtrip " ^ Insn.to_string i)
      true
      (D16x.decode (D16x.encode i) = Some i)
  in
  roundtrip (Insn.Cmpi (Eq, 0, 7, 42));
  roundtrip (Insn.Cmpi (Eq, 0, 15, -1));
  roundtrip (Insn.Mvi (3, -128));
  roundtrip (Insn.Mvi (3, 127));
  (* Non-MVI-space instructions encode identically to base D16. *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        ("same as D16: " ^ Insn.to_string i)
        (Repro_core.D16.encode i) (D16x.encode i))
    [
      Insn.Alu (Add, 3, 3, 4);
      Insn.Load (Lw, 2, 5, 8);
      Insn.Br 64;
      Insn.Cmp (Lt, 0, 1, 2);
    ];
  (* The two 8-bit forms are distinguished by the selector bit. *)
  Alcotest.(check bool) "mvi/cmpeqi distinct" true
    (D16x.encode (Insn.Mvi (3, 5)) <> D16x.encode (Insn.Cmpi (Eq, 0, 3, 5)))

let test_d16x_outputs_match () =
  List.iter
    (fun name ->
      let b = Suite.find name in
      let out t =
        (snd (Compile.compile_and_run ~trace:false t b.Suite.source))
          .Machine.output
      in
      Alcotest.(check string) (name ^ " output") (out Target.d16)
        (out Target.d16x))
    [ "grep"; "towers"; "dhrystone"; "pi" ]

let test_d16x_uses_cmpeqi () =
  (* A program full of equality tests against small constants must actually
     emit compare-immediates on D16x. *)
  let src =
    {|int v[6] = {1, 9, 3, 9, 5, 9};
      int main() {
        int i;
        int nines = 0;
        for (i = 0; i < 6; i++) if (v[i] == 9) nines = nines + 1;
        print_int(nines);
        return 0; }|}
  in
  let img = Compile.compile Target.d16x src in
  let cmpis =
    Array.to_list img.Repro_link.Link.insns
    |> List.filter (function Insn.Cmpi _ -> true | _ -> false)
    |> List.length
  in
  Alcotest.(check bool) "emits cmpeqi" true (cmpis >= 1);
  let _, r = Compile.compile_and_run ~trace:false Target.d16x src in
  Alcotest.(check string) "and is correct" "3" r.Machine.output

let test_d16x_speedup_band () =
  (* Suite-average speedup should be positive and small (paper: "up to 2
     percent"; ours ranges a bit wider per program). *)
  let speedup name =
    let b = Suite.find name in
    let ic t =
      (snd (Compile.compile_and_run ~trace:false t b.Suite.source)).Machine.ic
    in
    1. -. (float_of_int (ic Target.d16x) /. float_of_int (ic Target.d16))
  in
  let sample = [ "grep"; "towers"; "dhrystone"; "queens"; "latex" ] in
  let avg =
    List.fold_left ( +. ) 0. (List.map speedup sample)
    /. float_of_int (List.length sample)
  in
  Alcotest.(check bool)
    (Printf.sprintf "average speedup %.3f in (0, 0.08)" avg)
    true
    (avg > 0. && avg < 0.08)

let test_ablations_preserve_semantics () =
  let ablations =
    [
      { Compile.opt_flags = { Opt.all_flags with do_licm = false };
        fill_delay_slots = true; schedule_loads = true };
      { Compile.opt_flags = { Opt.all_flags with cse = false };
        fill_delay_slots = true; schedule_loads = true };
      { Compile.opt_flags = { Opt.all_flags with strength = false };
        fill_delay_slots = true; schedule_loads = true };
      { Compile.opt_flags = { Opt.all_flags with fold = false };
        fill_delay_slots = true; schedule_loads = true };
      { Compile.opt_flags = Opt.no_flags; fill_delay_slots = false;
        schedule_loads = false };
    ]
  in
  List.iter
    (fun name ->
      let b = Suite.find name in
      List.iter
        (fun t ->
          let reference =
            (snd (Compile.compile_and_run ~trace:false t b.Suite.source))
              .Machine.output
          in
          List.iter
            (fun ab ->
              let _, r =
                Compile.compile_and_run ~ablation:ab ~trace:false t
                  b.Suite.source
              in
              Alcotest.(check string)
                (Printf.sprintf "%s ablated on %s" name t.Target.name)
                reference r.Machine.output)
            ablations)
        [ Target.d16; Target.dlxe ])
    [ "queens"; "grep" ]

let test_nop_padding_costs () =
  (* Disabling delay-slot filling must not change results but must add
     nops: path length grows, useful work does not. *)
  let b = Suite.find "towers" in
  let ab =
    { Compile.no_ablation with fill_delay_slots = false }
  in
  let _, full = Compile.compile_and_run ~trace:false Target.d16 b.Suite.source in
  let _, padded =
    Compile.compile_and_run ~ablation:ab ~trace:false Target.d16 b.Suite.source
  in
  Alcotest.(check string) "same output" full.Machine.output padded.Machine.output;
  Alcotest.(check bool) "padding lengthens the path" true
    (padded.Machine.ic > full.Machine.ic)

(* Property: random D16x-legal instructions round-trip, and decode is total
   over the 16-bit word space. *)
let gen_d16x : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  oneof
    [
      (let* rd = reg and* imm = int_range (-128) 127 in
       return (Insn.Mvi (rd, imm)));
      (let* ra = reg and* imm = int_range (-128) 127 in
       return (Insn.Cmpi (Eq, 0, ra, imm)));
      (let* rd = reg and* rb = reg in
       return (Insn.Alu (Add, rd, rd, rb)));
      (let* rd = reg and* base = reg and* off = int_bound 31 in
       return (Insn.Load (Lw, rd, base, 4 * off)));
      (let* c = oneofl [ Insn.Lt; Ltu; Le; Leu; Eq; Ne ]
       and* ra = reg
       and* rb = reg in
       return (Insn.Cmp (c, 0, ra, rb)));
      (let* off = int_range (-512) 511 in
       return (Insn.Br (2 * off)));
    ]

let qcheck_tests =
  [
    QCheck.Test.make ~name:"d16x generated instructions are legal" ~count:1000
      (QCheck.make ~print:Insn.to_string gen_d16x)
      (fun i -> Target.legal Target.d16x i = Ok ());
    QCheck.Test.make ~name:"d16x encode/decode roundtrip" ~count:1000
      (QCheck.make ~print:Insn.to_string gen_d16x)
      (fun i -> D16x.decode (D16x.encode i) = Some i);
    QCheck.Test.make ~name:"d16x decode total" ~count:2000
      (QCheck.int_bound 65535)
      (fun w ->
        match D16x.decode w with
        | Some i -> D16x.decode (D16x.encode i) = Some i
        | None -> true);
  ]

let tests =
  List.map QCheck_alcotest.to_alcotest qcheck_tests
  @ [
    Alcotest.test_case "d16x legality" `Quick test_d16x_legality;
    Alcotest.test_case "d16x encoding" `Quick test_d16x_encoding;
    Alcotest.test_case "d16x outputs match" `Slow test_d16x_outputs_match;
    Alcotest.test_case "d16x emits cmpeqi" `Quick test_d16x_uses_cmpeqi;
    Alcotest.test_case "d16x speedup band" `Slow test_d16x_speedup_band;
    Alcotest.test_case "ablations preserve semantics" `Slow
      test_ablations_preserve_semantics;
    Alcotest.test_case "nop padding costs" `Quick test_nop_padding_costs;
  ]
