(* Linker tests: layout invariants, D16 literal pools and relaxation,
   BSS accounting, and whole-image legality. *)

module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Link = Repro_link.Link
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine

let compile = Compile.compile

let test_image_invariants () =
  List.iter
    (fun t ->
      let img = compile t "int main() { return 7; }" in
      let b = Target.insn_bytes t in
      Alcotest.(check bool) "text starts at base" true
        (Array.for_all (fun a -> a >= img.Link.text_base) img.Link.addr_of);
      Alcotest.(check bool) "addresses strictly increase" true
        (let ok = ref true in
         Array.iteri
           (fun i a -> if i > 0 && a <= img.Link.addr_of.(i - 1) then ok := false)
           img.Link.addr_of;
         !ok);
      Alcotest.(check bool) "aligned addresses" true
        (Array.for_all (fun a -> a mod b = 0) img.Link.addr_of);
      Alcotest.(check bool) "data after text" true
        (img.Link.data_base >= img.Link.text_base + img.Link.text_bytes);
      (* Every instruction is legal and round-trips through its encoding. *)
      Array.iter
        (fun i ->
          (match Target.legal t i with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Insn.to_string i ^ ": " ^ e));
          let encode, decode =
            match t.Target.isa with
            | Target.D16 -> (Repro_core.D16.encode, Repro_core.D16.decode)
            | Target.Dlxe -> (Repro_core.Dlxe.encode, Repro_core.Dlxe.decode)
          in
          Alcotest.(check bool)
            ("roundtrip " ^ Insn.to_string i)
            true
            (decode (encode i) = Some i))
        img.Link.insns)
    Target.all

let test_delay_slots () =
  (* Every control transfer is followed by exactly one instruction before
     any label target: check structurally that no branch is the last
     instruction and no branch directly follows a branch. *)
  List.iter
    (fun t ->
      let img = compile t "int f(int x) { if (x > 2) return x * 3; return f(x + 1); } int main() { return f(0); }" in
      let n = Array.length img.Link.insns in
      Array.iteri
        (fun i insn ->
          if Insn.is_branch insn then begin
            Alcotest.(check bool) "branch not last" true (i + 1 < n);
            Alcotest.(check bool) "no branch in delay slot" true
              (not (Insn.is_branch img.Link.insns.(i + 1)))
          end)
        img.Link.insns)
    Target.all

(* A function big enough to push D16 conditional branches out of range. *)
let far_branch_source =
  let filler =
    String.concat "\n"
      (List.init 400 (fun i ->
           Printf.sprintf "  acc = acc + %d; acc = acc ^ (acc >> 3);" (i mod 32)))
  in
  Printf.sprintf
    {|int work(int x) {
        int acc = x;
        if (x > 0) {
          %s
        }
        return acc;
      }
      int main() {
        print_int(work(1) - work(1));
        print_int(work(0));
        return 0;
      }|}
    filler

let test_far_branch_relaxation () =
  (* The function body is ~>2KB on D16, beyond the +/-1024 conditional
     reach, forcing relaxation; results must agree with DLXe. *)
  let run t =
    let _, r = Compile.compile_and_run ~trace:false t far_branch_source in
    r.Machine.output
  in
  let img = compile Target.d16 far_branch_source in
  Alcotest.(check bool) "function actually large" true
    (img.Link.text_bytes > 1400);
  Alcotest.(check string) "far branches preserve semantics" (run Target.dlxe)
    (run Target.d16)

let test_far_calls () =
  (* Many sizable functions push call distances beyond brl reach on D16. *)
  let funcs =
    String.concat "\n"
      (List.init 30 (fun i ->
           Printf.sprintf
             "int f%d(int x) { int a = x + %d; a = a * 3; a = a ^ (a >> 2); a = a + f_base(a); a = a - %d; a = a | 1; return a; }"
             i i (i * 2)))
  in
  let src =
    Printf.sprintf
      {|int f_base(int x) { return x & 1023; }
        %s
        int main() {
          int s = f0(1) + f29(2) + f15(3);
          print_int(s);
          return 0;
        }|}
      funcs
  in
  let run t =
    let _, r = Compile.compile_and_run ~trace:false t src in
    r.Machine.output
  in
  Alcotest.(check string) "far calls preserve semantics" (run Target.dlxe)
    (run Target.d16)

let test_bss_excluded () =
  let with_bss = compile Target.d16 "int big[4096]; int main() { big[0] = 1; return big[0]; }" in
  let without = compile Target.d16 "int main() { return 1; }" in
  Alcotest.(check bool) "zero-initialized array costs little file space" true
    (Link.size_bytes with_bss < Link.size_bytes without + 256);
  let initialized =
    compile Target.d16 "int big[256] = {1}; int main() { return big[0]; }"
  in
  Alcotest.(check bool) "initialized data counted" true
    (Link.size_bytes initialized >= Link.size_bytes without + 1024)

let test_pool_dedup () =
  (* The same wide constant used many times occupies one pool slot: code
     grows by one ldc (2 bytes) per use, not one pool word per use. *)
  let src n =
    let uses =
      String.concat ""
        (List.init n (fun _ -> "s = s + 123456; "))
    in
    Printf.sprintf "int main() { int s = 0; %s print_int(s); return 0; }" uses
  in
  let size n = (compile Target.d16 (src n)).Link.text_bytes in
  let delta = size 8 - size 4 in
  Alcotest.(check bool)
    (Printf.sprintf "pool deduplicated (delta %d)" delta)
    true (delta <= 4 * 6)

let test_undefined_symbol () =
  (* Suite-level check: calling an unknown function fails in lowering; an
     unknown data symbol can only arise internally, so just check the
     compile error path. *)
  match compile Target.d16 "int main() { return zorp(); }" with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a compile error"

let test_symbols_present () =
  let img = compile Target.dlxe "int g = 5; int main() { return g; }" in
  Alcotest.(check bool) "main symbol" true (Hashtbl.mem img.Link.symbols "main");
  Alcotest.(check bool) "_start symbol" true
    (Hashtbl.mem img.Link.symbols "_start");
  Alcotest.(check bool) "data symbol" true (Hashtbl.mem img.Link.symbols "g")

let tests =
  [
    Alcotest.test_case "image invariants" `Quick test_image_invariants;
    Alcotest.test_case "delay slots" `Quick test_delay_slots;
    Alcotest.test_case "far branch relaxation" `Quick test_far_branch_relaxation;
    Alcotest.test_case "far calls" `Quick test_far_calls;
    Alcotest.test_case "bss excluded from size" `Quick test_bss_excluded;
    Alcotest.test_case "literal pool dedup" `Quick test_pool_dedup;
    Alcotest.test_case "undefined symbol" `Quick test_undefined_symbol;
    Alcotest.test_case "symbol table" `Quick test_symbols_present;
  ]
