(* Unit and property tests for the utility layer. *)

open Repro_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_sext () =
  check_int "sext 9 of 255" 255 (Bitops.sext ~width:9 255);
  check_int "sext 9 of 256" (-256) (Bitops.sext ~width:9 256);
  check_int "sext 9 of 511" (-1) (Bitops.sext ~width:9 511);
  check_int "sext 16 of 0x8000" (-32768) (Bitops.sext ~width:16 0x8000);
  check_int "sext keeps positives" 5 (Bitops.sext ~width:4 5)

let test_zext () =
  check_int "zext 8 of -1" 255 (Bitops.zext ~width:8 (-1));
  check_int "zext 16 of 0x12345" 0x2345 (Bitops.zext ~width:16 0x12345)

let test_fits () =
  check_bool "fits_signed 9 255" true (Bitops.fits_signed ~width:9 255);
  check_bool "fits_signed 9 256" false (Bitops.fits_signed ~width:9 256);
  check_bool "fits_signed 9 -256" true (Bitops.fits_signed ~width:9 (-256));
  check_bool "fits_signed 9 -257" false (Bitops.fits_signed ~width:9 (-257));
  check_bool "fits_unsigned 5 31" true (Bitops.fits_unsigned ~width:5 31);
  check_bool "fits_unsigned 5 32" false (Bitops.fits_unsigned ~width:5 32);
  check_bool "fits_unsigned 5 -1" false (Bitops.fits_unsigned ~width:5 (-1))

let test_wrap () =
  check_int "add32 wraps" (-2147483648)
    (Bitops.add32 2147483647 1);
  check_int "sub32 wraps" 2147483647 (Bitops.sub32 (-2147483648) 1);
  check_int "shl32" (-2147483648) (Bitops.shl32 1 31);
  check_int "shr32 of -1" 1 (Bitops.shr32 (-1) 31);
  check_int "sra32 of -8" (-2) (Bitops.sra32 (-8) 2);
  check_bool "ltu32 -1 > 1" false (Bitops.ltu32 (-1) 1);
  check_bool "ltu32 1 < -1" true (Bitops.ltu32 1 (-1))

let test_bits_put () =
  let w = Bitops.put ~lo:4 ~hi:7 0xA 0 in
  check_int "put/bits roundtrip" 0xA (Bitops.bits ~lo:4 ~hi:7 w);
  check_int "put leaves rest" 0 (Bitops.bits ~lo:0 ~hi:3 w);
  Alcotest.check_raises "put overflow" (Invalid_argument
    "Bitops.put: field 16 does not fit bits 4..7")
    (fun () -> ignore (Bitops.put ~lo:4 ~hi:7 16 0))

let test_pow2 () =
  check_bool "8 is pow2" true (Bitops.is_pow2 8);
  check_bool "12 is not" false (Bitops.is_pow2 12);
  check_bool "0 is not" false (Bitops.is_pow2 0);
  check_int "log2 1024" 10 (Bitops.log2 1024)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5. ]);
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Stats.ratio 1 2);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent_increase ~base:2 3)

let test_table () =
  let s = Table.render [ "a"; "b" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  check_bool "header present" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  let bar = Table.bar_chart ~width:10 ~max_value:2. [ ("p", 1.) ] in
  check_bool "bar half filled" true
    (String.length bar > 0
    && String.split_on_char '#' bar |> List.length = 6)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sext/zext agree on sign bit clear" ~count:500
      (pair (int_range 1 31) (int_bound 0x3FFFFFFF))
      (fun (w, v) ->
        let v = v land ((1 lsl (w - 1)) - 1) in
        Bitops.sext ~width:w v = Bitops.zext ~width:w v);
    Test.make ~name:"of_u32/to_u32 roundtrip" ~count:500
      (int_range (-0x80000000) 0x7FFFFFFF)
      (fun v -> Bitops.of_u32 (Bitops.to_u32 v) = v);
    Test.make ~name:"add32 matches Int32" ~count:500
      (pair int int)
      (fun (a, b) ->
        let a = Bitops.of_u32 a and b = Bitops.of_u32 b in
        Bitops.add32 a b
        = Int32.to_int (Int32.add (Int32.of_int a) (Int32.of_int b)));
    Test.make ~name:"sra32 matches Int32" ~count:500
      (pair int (int_bound 31))
      (fun (a, n) ->
        let a = Bitops.of_u32 a in
        Bitops.sra32 a n
        = Int32.to_int (Int32.shift_right (Int32.of_int a) n));
    Test.make ~name:"geomean <= mean" ~count:200
      (list_of_size (Gen.int_range 1 10) (float_range 0.1 100.))
      (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9);
  ]

let tests =
  [
    Alcotest.test_case "sext" `Quick test_sext;
    Alcotest.test_case "zext" `Quick test_zext;
    Alcotest.test_case "fits" `Quick test_fits;
    Alcotest.test_case "wrap32" `Quick test_wrap;
    Alcotest.test_case "bits/put" `Quick test_bits_put;
    Alcotest.test_case "pow2/log2" `Quick test_pow2;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table" `Quick test_table;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
