(* Lexer, parser, and lowering tests. *)

module Lexer = Repro_minic.Lexer
module Parser = Repro_minic.Parser
module Ast = Repro_minic.Ast
module Lower = Repro_ir.Lower
module Ir = Repro_ir.Ir

let toks s = List.map (fun (t : Lexer.t) -> t.tok) (Lexer.tokenize s)

let test_lexer_basic () =
  Alcotest.(check int) "token count" 6 (List.length (toks "int x = 42;"));
  (match toks "0x1f" with
  | [ Lexer.INT 31; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hex literal");
  (match toks "3.5e2" with
  | [ Lexer.FLOAT f; Lexer.EOF ] when abs_float (f -. 350.) < 1e-9 -> ()
  | _ -> Alcotest.fail "float literal");
  (match toks "'\\n'" with
  | [ Lexer.CHAR '\n'; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "char escape");
  (match toks "\"a\\tb\"" with
  | [ Lexer.STRING "a\tb"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "string escape");
  (match toks "a<<=b" with
  | [ Lexer.IDENT "a"; Lexer.PUNCT "<<="; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "longest-match punct")

let test_lexer_comments () =
  Alcotest.(check int) "line comment" 1 (List.length (toks "// hi\n"));
  Alcotest.(check int) "block comment" 3 (List.length (toks "a /* x\ny */ b"));
  Alcotest.check_raises "unterminated comment"
    (Lexer.Error "line 1: unterminated comment") (fun () ->
      ignore (Lexer.tokenize "/* oops"))

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3). *)
  (match Parser.parse_expr "1 + 2 * 3" with
  | Ast.Bin (Ast.Add, Ast.Intlit 1, Ast.Bin (Ast.Mul, Ast.Intlit 2, Ast.Intlit 3))
    -> ()
  | _ -> Alcotest.fail "precedence mul over add");
  (match Parser.parse_expr "a < b == c" with
  | Ast.Bin (Ast.Eq, Ast.Bin (Ast.Lt, _, _), _) -> ()
  | _ -> Alcotest.fail "relational binds tighter than equality");
  (match Parser.parse_expr "a = b = c" with
  | Ast.Assign (Ast.Var "a", Ast.Assign (Ast.Var "b", Ast.Var "c")) -> ()
  | _ -> Alcotest.fail "assignment right-assoc");
  (match Parser.parse_expr "-a[1]" with
  | Ast.Un (Ast.Neg, Ast.Index (Ast.Var "a", Ast.Intlit 1)) -> ()
  | _ -> Alcotest.fail "unary vs postfix");
  (match Parser.parse_expr "a ? b : c ? d : e" with
  | Ast.Cond (_, Ast.Var "b", Ast.Cond (_, _, _)) -> ()
  | _ -> Alcotest.fail "ternary right-assoc")

let test_parser_stmts () =
  let p = Parser.parse "int f(int x) { if (x) return 1; else return 0; }" in
  Alcotest.(check int) "one global" 1 (List.length p);
  let p2 =
    Parser.parse
      "int g() { int i; for (i = 0; i < 3; i++) { continue; } do i--; while (i); return i; }"
  in
  Alcotest.(check int) "one function" 1 (List.length p2);
  Alcotest.check_raises "missing semicolon"
    (Parser.Error "line 1: expected ';', found '}'") (fun () ->
      ignore (Parser.parse "int f() { return 1 }"))

let test_parser_globals () =
  match Parser.parse "int a[3] = {1, 2, 3}; char s[8] = \"hi\"; double d = 1.5;" with
  | [ Ast.Gvar (Ast.Tarr (Ast.Tint, 3), "a", Some (Ast.Iarray [ _; _; _ ]));
      Ast.Gvar (Ast.Tarr (Ast.Tchar, 8), "s", Some (Ast.Istring "hi"));
      Ast.Gvar (Ast.Tdouble, "d", Some (Ast.Iscalar _));
    ] -> ()
  | _ -> Alcotest.fail "global declarations"

let test_string_concat () =
  match Parser.parse {|char s[16] = "ab" "cd";|} with
  | [ Ast.Gvar (_, _, Some (Ast.Istring "abcd")) ] -> ()
  | _ -> Alcotest.fail "adjacent string literals concatenate"

let lower src = Lower.lower_program (Parser.parse src)

let test_lower_basic () =
  let u = lower "int main() { return 1 + 2; }" in
  Alcotest.(check int) "one function" 1 (List.length u.Lower.funcs);
  let f = List.hd u.Lower.funcs in
  Alcotest.(check string) "name" "main" f.Ir.name;
  Alcotest.(check bool) "has blocks" true (List.length f.Ir.blocks >= 1)

let test_lower_strings_interned () =
  let u =
    lower
      {|int main() { int a = "x"[0]; int b = "x"[0]; int c = "y"[0]; return a+b+c; }|}
  in
  (* Two distinct literals -> two data items. *)
  Alcotest.(check int) "string interning" 2 (List.length u.Lower.data)

let test_lower_slots () =
  let u = lower "int main() { int a[4]; int x = 3; a[0] = x; return a[0]; }" in
  let f = List.hd u.Lower.funcs in
  Alcotest.(check int) "array gets a slot" 1 (List.length f.Ir.slots);
  let u2 = lower "int g(int *p) { return *p; } int main() { int x = 1; return g(&x); }" in
  let main = List.find (fun f -> f.Ir.name = "main") u2.Lower.funcs in
  Alcotest.(check bool) "address-taken local gets a slot" true
    (List.length main.Ir.slots = 1)

let test_lower_errors () =
  let expect_error src =
    match lower src with
    | exception Lower.Error _ -> ()
    | _ -> Alcotest.fail ("expected error: " ^ src)
  in
  expect_error "int main() { return y; }";
  expect_error "int main() { return f(1); }";
  expect_error "int f(int a) { return a; } int main() { return f(); }";
  expect_error "int f() { return 0; } int f() { return 1; } int main() { return 0; }";
  expect_error "int x; int x; int main() { return 0; }";
  expect_error "int nomain() { return 0; }";
  expect_error "int main() { break; }"

let test_sizeof () =
  Alcotest.(check int) "int" 4 (Lower.sizeof Ast.Tint);
  Alcotest.(check int) "char" 1 (Lower.sizeof Ast.Tchar);
  Alcotest.(check int) "double" 8 (Lower.sizeof Ast.Tdouble);
  Alcotest.(check int) "ptr" 4 (Lower.sizeof (Ast.Tptr Ast.Tdouble));
  Alcotest.(check int) "2d array" 24
    (Lower.sizeof (Ast.Tarr (Ast.Tarr (Ast.Tint, 3), 2)))

let tests =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser statements" `Quick test_parser_stmts;
    Alcotest.test_case "parser globals" `Quick test_parser_globals;
    Alcotest.test_case "string concatenation" `Quick test_string_concat;
    Alcotest.test_case "lower basics" `Quick test_lower_basic;
    Alcotest.test_case "string interning" `Quick test_lower_strings_interned;
    Alcotest.test_case "slot assignment" `Quick test_lower_slots;
    Alcotest.test_case "lower errors" `Quick test_lower_errors;
    Alcotest.test_case "sizeof" `Quick test_sizeof;
  ]
