test/t_frontend.ml: Alcotest List Repro_ir Repro_minic
