test/t_opt.ml: Alcotest Hashtbl List Printf Repro_ir Repro_minic Repro_workloads
