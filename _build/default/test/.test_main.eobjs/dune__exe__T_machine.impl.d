test/t_machine.ml: Alcotest List Printf Repro_codegen Repro_core Repro_link Repro_sim
