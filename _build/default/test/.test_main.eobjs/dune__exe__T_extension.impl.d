test/t_extension.ml: Alcotest Array List Printf QCheck QCheck_alcotest Repro_core Repro_harness Repro_ir Repro_link Repro_sim Repro_workloads
