test/t_encoding.ml: Alcotest D16 Dlxe Insn List QCheck QCheck_alcotest Repro_core Target Test
