test/test_main.ml: Alcotest T_cfg T_compiler T_encoding T_experiments T_extension T_frontend T_integration T_link T_machine T_memsys T_opt T_progfuzz T_regalloc T_util
