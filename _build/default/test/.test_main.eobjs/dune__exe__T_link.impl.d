test/t_link.ml: Alcotest Array Hashtbl List Printf Repro_core Repro_harness Repro_link Repro_sim String
