test/t_compiler.ml: Alcotest Int32 List Printf QCheck QCheck_alcotest Repro_core Repro_harness Repro_sim Repro_workloads String
