test/t_progfuzz.ml: Array Buffer Int32 List Printf QCheck QCheck_alcotest Repro_core Repro_harness Repro_sim String
