test/t_memsys.ml: Alcotest Array List Printf Repro_core Repro_harness Repro_sim Repro_workloads
