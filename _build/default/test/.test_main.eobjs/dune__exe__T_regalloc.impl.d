test/t_regalloc.ml: Alcotest Hashtbl List Printf Repro_codegen Repro_core Repro_harness Repro_ir Repro_minic Repro_sim Repro_workloads
