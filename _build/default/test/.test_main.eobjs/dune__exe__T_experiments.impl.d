test/t_experiments.ml: Alcotest List Printf Repro_core Repro_harness Repro_sim Repro_util String
