test/t_cfg.ml: Alcotest Hashtbl List Printf Repro_core Repro_ir
