test/t_util.ml: Alcotest Bitops Gen Int32 List QCheck QCheck_alcotest Repro_util Stats String Table Test
