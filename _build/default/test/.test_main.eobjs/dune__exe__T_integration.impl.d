test/t_integration.ml: Alcotest List Printf Repro_core Repro_harness Repro_link Repro_sim Repro_workloads String
