(* Compiler correctness: operator semantics vs a host-evaluated oracle on
   every target, optimization-level differential testing, strength
   reduction over awkward constants, register pressure/spilling, and a
   QCheck expression fuzzer. *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine

let run ?(target = Target.d16) ?optimize src =
  let _, r = Compile.compile_and_run ?optimize ~trace:false target src in
  r

let output ?target ?optimize src = (run ?target ?optimize src).Machine.output

let check_all_targets name src expected =
  List.iter
    (fun t ->
      Alcotest.(check string)
        (Printf.sprintf "%s on %s" name t.Target.name)
        expected
        (output ~target:t src))
    Target.all

let test_arith_semantics () =
  check_all_targets "wraparound"
    {|int main() {
        int big = 2147483647;
        print_int(big + 1); print_char(' ');
        print_int(big * 2); print_char(' ');
        print_int(-2147483647 - 1); print_char('\n');
        return 0; }|}
    "-2147483648 -2 -2147483648\n";
  check_all_targets "division truncation"
    {|int main() {
        print_int(7 / 2); print_char(' ');
        print_int(-7 / 2); print_char(' ');
        print_int(7 / -2); print_char(' ');
        print_int(-7 % 3); print_char(' ');
        print_int(7 % -3); print_char('\n');
        return 0; }|}
    "3 -3 -3 -1 1\n";
  check_all_targets "shifts"
    {|int main() {
        int x = -64;
        print_int(x >> 3); print_char(' ');
        print_int(x << 2); print_char(' ');
        print_int(1 << 31); print_char('\n');
        return 0; }|}
    "-8 -256 -2147483648\n";
  check_all_targets "bitwise"
    {|int main() {
        print_int(0x0ff0 & 0x0f0f); print_char(' ');
        print_int(0x0ff0 | 0x0f0f); print_char(' ');
        print_int(0x0ff0 ^ 0x0f0f); print_char(' ');
        print_int(~0); print_char('\n');
        return 0; }|}
    "3840 4095 255 -1\n"

let test_comparison_semantics () =
  check_all_targets "signed comparisons"
    {|int main() {
        int a = -1; int b = 1;
        print_int(a < b); print_int(a <= b); print_int(a > b);
        print_int(a >= b); print_int(a == b); print_int(a != b);
        print_char('\n');
        return 0; }|}
    "110001\n";
  check_all_targets "comparison as value"
    {|int main() {
        int x = (3 < 5) + (5 < 3) * 10 + (4 <= 4) * 100;
        print_int(x); print_char('\n');
        return 0; }|}
    "101\n"

let test_logical () =
  check_all_targets "short circuit"
    {|int side = 0;
      int bump() { side = side + 1; return 1; }
      int main() {
        int r = 0 && bump();
        r = r + (1 || bump());
        print_int(r); print_char(' '); print_int(side); print_char('\n');
        return 0; }|}
    "1 0\n";
  check_all_targets "logical not"
    {|int main() {
        print_int(!0); print_int(!5); print_int(!!7); print_char('\n');
        return 0; }|}
    "101\n"

let test_char_and_pointer () =
  check_all_targets "char ops"
    {|char buf[8];
      int main() {
        char c = 'A';
        buf[0] = c + 2;
        print_char(buf[0]);
        print_int((int)(char)(300));
        print_char('\n');
        return 0; }|}
    "C44\n";
  check_all_targets "pointer arithmetic"
    {|int a[5] = {10, 20, 30, 40, 50};
      int main() {
        int *p = a + 1;
        print_int(*p); print_char(' ');
        p = p + 2;
        print_int(*p); print_char(' ');
        print_int(p - a); print_char(' ');
        print_int(*(a + 4)); print_char('\n');
        return 0; }|}
    "20 40 3 50\n"

let test_doubles () =
  check_all_targets "double arithmetic"
    {|int main() {
        double a = 3.5; double b = -1.25;
        print_double(a + b); print_char(' ');
        print_double(a * b); print_char(' ');
        print_double(a / 2.0); print_char('\n');
        return 0; }|}
    "2.250000 -4.375000 1.750000\n";
  check_all_targets "conversions truncate"
    {|int main() {
        print_int((int)3.9); print_char(' ');
        print_int((int)-3.9); print_char(' ');
        double d = (double)7 / (double)2;
        print_double(d); print_char('\n');
        return 0; }|}
    "3 -3 3.500000\n";
  check_all_targets "double compare"
    {|int main() {
        double x = 0.1 + 0.2;
        print_int(x > 0.3); print_int(x < 0.300001); print_char('\n');
        return 0; }|}
    "11\n"

let test_control_flow () =
  check_all_targets "nested loops with break/continue"
    {|int main() {
        int s = 0; int i; int j;
        for (i = 0; i < 5; i++) {
          if (i == 2) continue;
          for (j = 0; j < 5; j++) {
            if (j > i) break;
            s = s + 10 * i + j;
          }
        }
        print_int(s); print_char('\n');
        return 0; }|}
    "357\n";
  check_all_targets "recursion"
    {|int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
      int main() { print_int(gcd(1071, 462)); print_char('\n'); return 0; }|}
    "21\n"

let test_many_args () =
  check_all_targets "stack-passed arguments"
    {|int f(int a, int b, int c, int d, int e, int g, int h) {
        return a + 2*b + 3*c + 4*d + 5*e + 6*g + 7*h;
      }
      double fd(double a, double b, double c, double d, double e) {
        return a + b * 2.0 + c * 3.0 + d * 4.0 + e * 5.0;
      }
      int main() {
        print_int(f(1, 2, 3, 4, 5, 6, 7));
        print_char(' ');
        print_int((int)fd(1.0, 2.0, 3.0, 4.0, 5.0));
        print_char('\n');
        return 0; }|}
    "140 55\n"

let test_register_pressure () =
  (* Many simultaneously-live values force spilling on 16-register
     targets. *)
  (* Values come from a global array so constant folding cannot erase the
     pressure. *)
  let src =
    {|int v[20] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20};
      int main() {
        int a = v[0]; int b = v[1]; int c = v[2]; int d = v[3]; int e = v[4];
        int f = v[5]; int g = v[6]; int h = v[7]; int i = v[8]; int j = v[9];
        int k = v[10]; int l = v[11]; int m = v[12]; int n = v[13]; int o = v[14];
        int p = v[15]; int q = v[16]; int r = v[17]; int s = v[18]; int t = v[19];
        int sum1 = a*b + c*d + e*f + g*h + i*j;
        int sum2 = k*l + m*n + o*p + q*r + s*t;
        int sum3 = a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t;
        print_int(sum1 + sum2 * 1000 + sum3 * 1000000);
        print_char('\n');
        return 0; }|}
  in
  let expected = Printf.sprintf "%d\n" (2+12+30+56+90 + (132+182+240+306+380)*1000 + 210*1000000) in
  check_all_targets "spilling" src expected

let test_strength_reduction_constants () =
  (* Multiply/divide/mod of a runtime value by a spread of constants,
     against the host.  The values come through a global array so the
     operations cannot constant-fold; this exercises the shift-add
     decompositions and the power-of-two division sign fix. *)
  let consts = [ 2; 3; 4; 5; 7; 8; 10; 12; 15; 16; 17; 24; 31; 96; 100; 1024; -4; -6 ] in
  let values = [ 0; 1; 7; -7; 100; -100; 32767; -32768; 123456; -123457 ] in
  let decls =
    Printf.sprintf "int xs[%d] = {%s};" (List.length values)
      (String.concat "," (List.map string_of_int values))
  in
  List.iter
    (fun k ->
      let src =
        Printf.sprintf
          {|%s
            int main() {
              int i;
              for (i = 0; i < %d; i++) {
                int v = xs[i];
                print_int(v * %d); print_char(' ');
                print_int(v / %d); print_char(' ');
                print_int(v %% %d); print_char(' ');
              }
              return 0; }|}
          decls (List.length values) k k k
      in
      let expected =
        String.concat ""
          (List.map
             (fun v ->
               Printf.sprintf "%d %d %d "
                 (Int32.to_int (Int32.mul (Int32.of_int v) (Int32.of_int k)))
                 (v / k) (v mod k))
             values)
      in
      List.iter
        (fun t ->
          Alcotest.(check string)
            (Printf.sprintf "mul/div/mod by %d on %s" k t.Target.name)
            expected (output ~target:t src))
        [ Target.d16; Target.dlxe ])
    consts

let test_opt_levels_agree () =
  List.iter
    (fun (b : Repro_workloads.Suite.benchmark) ->
      let o0 = output ~target:Target.d16 ~optimize:0 b.source in
      let o2 = output ~target:Target.d16 ~optimize:2 b.source in
      Alcotest.(check string) (b.name ^ " -O0 vs -O2") o0 o2)
    [
      Repro_workloads.Suite.find "queens";
      Repro_workloads.Suite.find "grep";
      Repro_workloads.Suite.find "dhrystone";
    ]

let test_opt_shrinks () =
  (* Optimization should not grow code or dynamic count for the suite. *)
  List.iter
    (fun name ->
      let b = Repro_workloads.Suite.find name in
      let r0 = run ~target:Target.dlxe ~optimize:0 b.source in
      let r2 = run ~target:Target.dlxe ~optimize:2 b.source in
      Alcotest.(check bool)
        (name ^ ": optimized path not longer")
        true
        (r2.Machine.ic <= r0.Machine.ic))
    [ "queens"; "bubblesort"; "towers" ]

(* QCheck fuzzer: random integer expressions evaluated on the host and on
   both machines. *)
type expr = Lit of int | Add of expr * expr | Sub of expr * expr
          | Mul of expr * expr | Div of expr * expr | And of expr * expr
          | Or of expr * expr | Xor of expr * expr | Shl of expr * int
          | Shr of expr * int | Neg of expr | Not of expr

let rec expr_to_c = function
  | Lit n -> Printf.sprintf "(%d)" n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_c a) (expr_to_c b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_c a) (expr_to_c b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_c a) (expr_to_c b)
  | Div (a, b) -> Printf.sprintf "(%s / (%s | 1))" (expr_to_c a) (expr_to_c b)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (expr_to_c a) (expr_to_c b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (expr_to_c a) (expr_to_c b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (expr_to_c a) (expr_to_c b)
  | Shl (a, n) -> Printf.sprintf "(%s << %d)" (expr_to_c a) n
  | Shr (a, n) -> Printf.sprintf "(%s >> %d)" (expr_to_c a) n
  | Neg a -> Printf.sprintf "(-%s)" (expr_to_c a)
  | Not a -> Printf.sprintf "(~%s)" (expr_to_c a)

let rec eval_host = function
  | Lit n -> Int32.of_int n
  | Add (a, b) -> Int32.add (eval_host a) (eval_host b)
  | Sub (a, b) -> Int32.sub (eval_host a) (eval_host b)
  | Mul (a, b) -> Int32.mul (eval_host a) (eval_host b)
  | Div (a, b) ->
    let d = Int32.logor (eval_host b) 1l in
    Int32.div (eval_host a) d
  | And (a, b) -> Int32.logand (eval_host a) (eval_host b)
  | Or (a, b) -> Int32.logor (eval_host a) (eval_host b)
  | Xor (a, b) -> Int32.logxor (eval_host a) (eval_host b)
  | Shl (a, n) -> Int32.shift_left (eval_host a) n
  | Shr (a, n) -> Int32.shift_right (eval_host a) n
  | Neg a -> Int32.neg (eval_host a)
  | Not a -> Int32.lognot (eval_host a)

let gen_expr : expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           map (fun v -> Lit v) (oneof [ int_range (-100) 100; int_range (-40000) 40000 ])
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun v -> Lit v) (int_range (-1000) 1000);
               map2 (fun a b -> Add (a, b)) sub sub;
               map2 (fun a b -> Sub (a, b)) sub sub;
               map2 (fun a b -> Mul (a, b)) sub sub;
               map2 (fun a b -> Div (a, b)) sub sub;
               map2 (fun a b -> And (a, b)) sub sub;
               map2 (fun a b -> Or (a, b)) sub sub;
               map2 (fun a b -> Xor (a, b)) sub sub;
               map2 (fun a n -> Shl (a, n)) sub (int_bound 31);
               map2 (fun a n -> Shr (a, n)) sub (int_bound 31);
               map (fun a -> Neg a) sub;
               map (fun a -> Not a) sub;
             ])

let fuzz_expr =
  QCheck.Test.make ~name:"random expressions match host semantics" ~count:60
    (QCheck.make ~print:expr_to_c (QCheck.Gen.map (fun e -> e) gen_expr))
    (fun e ->
      let expected = Int32.to_string (eval_host e) in
      let src =
        Printf.sprintf "int main() { print_int(%s); return 0; }" (expr_to_c e)
      in
      List.for_all
        (fun t -> output ~target:t src = expected)
        [ Target.d16; Target.dlxe; Target.dlxe_16_2 ])

let tests =
  [
    Alcotest.test_case "arithmetic semantics" `Quick test_arith_semantics;
    Alcotest.test_case "comparison semantics" `Quick test_comparison_semantics;
    Alcotest.test_case "logical operators" `Quick test_logical;
    Alcotest.test_case "char and pointer" `Quick test_char_and_pointer;
    Alcotest.test_case "doubles" `Quick test_doubles;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "many arguments" `Quick test_many_args;
    Alcotest.test_case "register pressure" `Quick test_register_pressure;
    Alcotest.test_case "strength reduction constants" `Slow
      test_strength_reduction_constants;
    Alcotest.test_case "optimization levels agree" `Slow test_opt_levels_agree;
    Alcotest.test_case "optimization shrinks" `Slow test_opt_shrinks;
    QCheck_alcotest.to_alcotest fuzz_expr;
  ]
