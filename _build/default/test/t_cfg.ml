(* CFG and liveness analysis unit tests on hand-built functions. *)

module Ir = Repro_ir.Ir
module Cfg = Repro_ir.Cfg
module Iset = Repro_ir.Iset
module Liveness = Repro_ir.Liveness

(* A diamond with a loop on one arm:
     L0 -> L1 -> L2 -> L1 (back edge), L1 -> L3, L0 -> L3. *)
let build_func () =
  let f =
    {
      Ir.name = "t";
      arg_temps = [];
      ret_float = Some false;
      blocks = [];
      slots = [];
      next_temp = 10;
      next_ftemp = 0;
      next_label = 10;
    }
  in
  let b0 = { Ir.lbl = 0; ins = [ Ir.Li (0, 1) ]; term = Ir.Bif (0, 1, 3) } in
  let b1 = { Ir.lbl = 1; ins = [ Ir.Bin (Ir.Add, 1, 0, Ir.Oimm 1) ]; term = Ir.Bif (1, 2, 3) } in
  let b2 = { Ir.lbl = 2; ins = [ Ir.Mov (0, 1) ]; term = Ir.Jmp 1 } in
  let b3 = { Ir.lbl = 3; ins = []; term = Ir.Ret (Some (Ir.Aint 0)) } in
  f.Ir.blocks <- [ b0; b1; b2; b3 ];
  f

let test_predecessors () =
  let f = build_func () in
  let preds = Cfg.predecessors f in
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "preds of L1" [ 0; 2 ]
    (sorted (Hashtbl.find preds 1));
  Alcotest.(check (list int)) "preds of L3" [ 0; 1 ]
    (sorted (Hashtbl.find preds 3));
  Alcotest.(check (list int)) "entry has no preds" []
    (Hashtbl.find preds 0)

let test_dominators () =
  let f = build_func () in
  let dom = Cfg.dominators f in
  let d l = Hashtbl.find dom l in
  Alcotest.(check bool) "L0 dominates all" true
    (List.for_all (fun l -> Iset.mem 0 (d l)) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "L1 dominates L2" true (Iset.mem 1 (d 2));
  Alcotest.(check bool) "L1 does not dominate L3" false (Iset.mem 1 (d 3));
  Alcotest.(check bool) "L2 dominates only itself" true
    (Iset.equal (Iset.of_list [ 0; 1; 2 ]) (d 2))

let test_natural_loops () =
  let f = build_func () in
  match Cfg.natural_loops f with
  | [ l ] ->
    Alcotest.(check int) "header is L1" 1 l.Cfg.header;
    Alcotest.(check bool) "body is {1,2}" true
      (Iset.equal (Iset.of_list [ 1; 2 ]) l.Cfg.body)
  | loops ->
    Alcotest.fail (Printf.sprintf "expected one loop, got %d" (List.length loops))

let test_liveness () =
  let f = build_func () in
  let live = Liveness.compute f Liveness.int_class in
  let live_in l = Hashtbl.find live.Liveness.live_in l in
  (* t0 is defined in L0, used everywhere after. *)
  Alcotest.(check bool) "t0 not live into entry" false (Iset.mem 0 (live_in 0));
  Alcotest.(check bool) "t0 live into L1" true (Iset.mem 0 (live_in 1));
  Alcotest.(check bool) "t0 live into L3 (returned)" true (Iset.mem 0 (live_in 3));
  (* t1 is defined in L1, used in L2; live around the back edge. *)
  Alcotest.(check bool) "t1 live into L2" true (Iset.mem 1 (live_in 2));
  Alcotest.(check bool) "t1 dead into L3" false (Iset.mem 1 (live_in 3))

let test_clean_removes_empty () =
  let f = build_func () in
  (* Add an empty forwarding block L4 between L0 and L3. *)
  let b4 = { Ir.lbl = 4; ins = []; term = Ir.Jmp 3 } in
  (List.nth f.Ir.blocks 0).Ir.term <- Ir.Bif (0, 1, 4);
  f.Ir.blocks <- f.Ir.blocks @ [ b4 ];
  Cfg.clean f;
  Alcotest.(check bool) "forwarding block removed" true
    (not (List.exists (fun (b : Ir.block) -> b.Ir.lbl = 4) f.Ir.blocks));
  (match (List.hd f.Ir.blocks).Ir.term with
  | Ir.Bif (_, 1, 3) -> ()
  | t -> Alcotest.fail ("entry term not retargeted: " ^ Ir.term_to_string t))

let test_ins_metadata () =
  let i = Ir.Bin (Ir.Add, 5, 6, Ir.Otemp 7) in
  Alcotest.(check (option int)) "bin defines" (Some 5) (Ir.defs i);
  Alcotest.(check (list int)) "bin uses" [ 6; 7 ] (Ir.uses i);
  Alcotest.(check bool) "bin pure" true (Ir.is_pure i);
  Alcotest.(check bool) "store impure" false
    (Ir.is_pure (Ir.Store (Repro_core.Insn.Sw, 1, Ir.Aslot (0, 0))));
  Alcotest.(check bool) "div by zero imm impure" false
    (Ir.is_pure (Ir.Bin (Ir.Div, 1, 2, Ir.Oimm 0)));
  Alcotest.(check bool) "load removable but not pure" true
    (Ir.is_pure_or_load (Ir.Load (Repro_core.Insn.Lw, 1, Ir.Aglobal ("g", 0)))
    && not (Ir.is_pure (Ir.Load (Repro_core.Insn.Lw, 1, Ir.Aglobal ("g", 0)))));
  let j = Ir.Call (Ir.Rint 3, "f", [ Ir.Aint 4; Ir.Afloat 5 ]) in
  Alcotest.(check (option int)) "call defines ret" (Some 3) (Ir.defs j);
  Alcotest.(check (list int)) "call uses int args" [ 4 ] (Ir.uses j);
  Alcotest.(check (list int)) "call uses float args" [ 5 ] (Ir.fuses j)

let tests =
  [
    Alcotest.test_case "predecessors" `Quick test_predecessors;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "natural loops" `Quick test_natural_loops;
    Alcotest.test_case "liveness" `Quick test_liveness;
    Alcotest.test_case "cfg clean" `Quick test_clean_removes_empty;
    Alcotest.test_case "ir metadata" `Quick test_ins_metadata;
  ]
