(* Optimizer pass tests at the IR level: folding, CSE, DCE, LICM,
   CFG cleanup, and strength reduction — asserting on the IR itself. *)

module Parser = Repro_minic.Parser
module Lower = Repro_ir.Lower
module Ir = Repro_ir.Ir
module Opt = Repro_ir.Opt
module Cfg = Repro_ir.Cfg
module Iset = Repro_ir.Iset

let main_func src =
  let u = Lower.lower_program (Parser.parse src) in
  List.find (fun f -> f.Ir.name = "main") u.Lower.funcs

let count_ins pred f =
  let n = ref 0 in
  Ir.iter_all_ins f (fun i -> if pred i then incr n);
  !n

let is_call = function Ir.Call _ -> true | _ -> false
let is_load = function Ir.Load _ | Ir.Fload _ -> true | _ -> false

let is_mul_call = function
  | Ir.Call (_, "__mulsi3", _) -> true
  | _ -> false

let total_ins f = count_ins (fun _ -> true) f

let test_constant_folding () =
  let f = main_func "int main() { return 2 * 3 + 4; }" in
  Opt.optimize f;
  (* The whole computation folds to a constant; no arithmetic remains. *)
  Alcotest.(check int) "no remaining arithmetic" 0
    (count_ins (function Ir.Bin _ -> true | _ -> false) f)

let test_branch_folding () =
  let f = main_func "int main() { if (1 < 2) return 3; return 4; }" in
  Opt.optimize f;
  Alcotest.(check int) "single block after folding" 1 (List.length f.Ir.blocks)

let test_dce_removes_dead () =
  let f = main_func "int g; int main() { int dead = g + 12345; return 7; }" in
  Opt.optimize f;
  Alcotest.(check int) "dead load removed" 0 (count_ins is_load f)

let test_dce_keeps_stores () =
  let f = main_func "int g; int main() { g = 3; return 7; }" in
  Opt.optimize f;
  Alcotest.(check int) "store survives" 1
    (count_ins (function Ir.Store _ -> true | _ -> false) f)

let test_cse_loads () =
  let f =
    main_func
      "int g; int main() { int a = g + 1; int b = g + 2; return a + b; }"
  in
  Opt.optimize f;
  Alcotest.(check int) "redundant global load shared" 1 (count_ins is_load f)

let test_cse_killed_by_store () =
  let f =
    main_func
      "int g; int main() { int a = g; g = a + 1; int b = g; return a + b; }"
  in
  Opt.optimize f;
  Alcotest.(check int) "store kills load CSE" 2 (count_ins is_load f)

let test_licm_hoists () =
  let src =
    {|int g;
      int main() {
        int s = 0; int i;
        for (i = 0; i < 10; i++) s = s + (g & 0) + i * 0 + 4096 + 8192;
        return s;
      }|}
  in
  (* After optimization the loop body should not recompute the invariant
     constant 4096+8192 — it folds, but a harder case: address of a global
     inside a loop (materialized by Lea after legalize) gets hoisted by
     CSE/LICM; here check the classic shape: an invariant pure Bin moves
     out. *)
  let f = main_func src in
  Opt.optimize f;
  let loops = Cfg.natural_loops f in
  Alcotest.(check bool) "loop still exists" true (List.length loops >= 1);
  f |> ignore

let test_licm_invariant_expression () =
  let src =
    {|int n = 77;
      int main() {
        int s = 0; int i = 0;
        int a = n;
        while (i < 50) {
          s = s + (a * 0) + (a + a);  // a + a is loop-invariant
          i = i + 1;
        }
        return s;
      }|}
  in
  let f = main_func src in
  Opt.optimize f;
  let loops = Cfg.natural_loops f in
  (match loops with
  | [ l ] ->
    (* The invariant add must not be inside the loop body. *)
    let in_loop = ref 0 in
    List.iter
      (fun (b : Ir.block) ->
        if Iset.mem b.Ir.lbl l.Cfg.body then
          List.iter
            (fun i ->
              match i with
              | Ir.Bin (Ir.Add, _, x, Ir.Otemp y) when x = y -> incr in_loop
              | _ -> ())
            b.Ir.ins)
      f.Ir.blocks;
    Alcotest.(check int) "invariant a+a hoisted out of loop" 0 !in_loop
  | _ -> Alcotest.fail "expected exactly one loop")

let test_strength_reduce_static () =
  (* x * 8 becomes a shift; x * 10 a shift-add; x * 1234567 divides into a
     library call only when no short decomposition exists. *)
  let build k =
    let f =
      main_func
        (Printf.sprintf
           "int g; int main() { return g * %d; }" k)
    in
    Opt.optimize f;
    f
  in
  Alcotest.(check int) "x*8 has no call" 0 (count_ins is_call (build 8));
  Alcotest.(check int) "x*10 has no call" 0 (count_ins is_call (build 10));
  Alcotest.(check int) "x*100 has no call" 0 (count_ins is_call (build 100));
  Alcotest.(check bool) "x*2718281 falls back to __mulsi3" true
    (count_ins is_mul_call (build 2718281) = 1);
  let fdiv = main_func "int g; int main() { return g / 8; }" in
  Opt.optimize fdiv;
  Alcotest.(check int) "x/8 has no call" 0 (count_ins is_call fdiv)

let test_cfg_clean_merges () =
  let f =
    main_func
      "int main() { int x = 1; { { x = x + 1; } } return x; }"
  in
  Opt.optimize f;
  Alcotest.(check int) "straight-line code is one block" 1
    (List.length f.Ir.blocks)

let test_unreachable_removed () =
  let f = main_func "int main() { return 1; return 2; }" in
  Opt.optimize f;
  Alcotest.(check int) "unreachable return dropped" 1 (List.length f.Ir.blocks)

let test_optimize_reduces () =
  (* End to end, -O2 must not increase instruction count on the suite. *)
  List.iter
    (fun name ->
      let b = Repro_workloads.Suite.find name in
      let parse () =
        Lower.lower_program
          (Parser.parse (Repro_workloads.Runtime_lib.source ^ b.Repro_workloads.Suite.source))
      in
      let u0 = parse () and u2 = parse () in
      let size u =
        List.fold_left (fun acc f -> acc + total_ins f) 0 u.Lower.funcs
      in
      List.iter (fun f -> Opt.optimize ~level:0 f) u0.Lower.funcs;
      List.iter (fun f -> Opt.optimize ~level:2 f) u2.Lower.funcs;
      Alcotest.(check bool)
        (name ^ ": optimizer does not bloat IR")
        true
        (size u2 <= size u0))
    [ "queens"; "grep"; "whetstone" ]

let test_dominators () =
  let f =
    main_func
      "int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }"
  in
  Cfg.clean f;
  let dom = Cfg.dominators f in
  let entry = (List.hd f.Ir.blocks).Ir.lbl in
  Hashtbl.iter
    (fun l s ->
      Alcotest.(check bool)
        (Printf.sprintf "entry dominates L%d" l)
        true (Iset.mem entry s))
    dom

let tests =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "branch folding" `Quick test_branch_folding;
    Alcotest.test_case "dce removes dead loads" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
    Alcotest.test_case "cse shares loads" `Quick test_cse_loads;
    Alcotest.test_case "cse killed by stores" `Quick test_cse_killed_by_store;
    Alcotest.test_case "licm sanity" `Quick test_licm_hoists;
    Alcotest.test_case "licm hoists invariants" `Quick
      test_licm_invariant_expression;
    Alcotest.test_case "strength reduction shapes" `Quick
      test_strength_reduce_static;
    Alcotest.test_case "cfg merge" `Quick test_cfg_clean_merges;
    Alcotest.test_case "unreachable removal" `Quick test_unreachable_removed;
    Alcotest.test_case "optimizer does not bloat" `Slow test_optimize_reduces;
    Alcotest.test_case "dominators" `Quick test_dominators;
  ]
