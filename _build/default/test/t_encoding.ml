(* Instruction encoding tests: encode/decode roundtrips over random legal
   instructions for both formats, format boundary cases, and legality
   checking. *)

open Repro_core

let gen_cond6 =
  QCheck.Gen.oneofl [ Insn.Lt; Ltu; Le; Leu; Eq; Ne ]

let gen_cond10 =
  QCheck.Gen.oneofl [ Insn.Lt; Ltu; Le; Leu; Eq; Ne; Gt; Gtu; Ge; Geu ]

let gen_alu = QCheck.Gen.oneofl [ Insn.Add; Sub; And; Or; Xor; Shl; Shr; Shra ]
let gen_fbin = QCheck.Gen.oneofl [ Insn.Fadd; Fsub; Fmul; Fdiv ]

(* Random D16-legal instruction. *)
let gen_d16 : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  oneof
    [
      (let* rd = reg and* base = reg and* off = int_bound 31 in
       oneofl
         [
           Insn.Load (Lw, rd, base, 4 * off);
           Insn.Store (Sw, rd, base, 4 * off);
           Insn.Fload (Df, rd, base, 4 * off);
           Insn.Fstore (Df, rd, base, 4 * off);
         ]);
      (let* rd = reg and* base = reg in
       oneofl
         [
           Insn.Load (Lh, rd, base, 0);
           Insn.Load (Lhu, rd, base, 0);
           Insn.Load (Lb, rd, base, 0);
           Insn.Load (Lbu, rd, base, 0);
           Insn.Store (Sh, rd, base, 0);
           Insn.Store (Sb, rd, base, 0);
         ]);
      (let* off = int_bound 2046 in
       return (Insn.Ldc (0, -4 * (off + 1))));
      (let* op = gen_alu and* rd = reg and* rb = reg in
       return (Insn.Alu (op, rd, rd, rb)));
      (let* op = oneofl [ Insn.Add; Sub; Shl; Shr; Shra ]
       and* rd = reg
       and* imm = int_bound 31 in
       return (Insn.Alui (op, rd, rd, imm)));
      (let* rd = reg and* rs = reg in
       oneofl [ Insn.Mv (rd, rs); Insn.Neg (rd, rs); Insn.Inv (rd, rs) ]);
      (let* rd = reg and* imm = int_range (-256) 255 in
       return (Insn.Mvi (rd, imm)));
      (let* c = gen_cond6 and* ra = reg and* rb = reg in
       return (Insn.Cmp (c, 0, ra, rb)));
      (let* off = int_range (-512) 511 in
       oneofl
         [
           Insn.Br (2 * off);
           Insn.Bz (0, 2 * off);
           Insn.Bnz (0, 2 * off);
           Insn.Brl (2 * off);
         ]);
      (let* r = reg in
       oneofl [ Insn.J r; Insn.Jl r ]);
      (let* r = reg in
       oneofl [ Insn.Jz (0, r); Insn.Jnz (0, r) ]);
      (let* op = gen_fbin and* fd = reg and* fb = reg in
       return (Insn.Fbin (op, Df, fd, fd, fb)));
      (let* fd = reg and* fs = reg in
       oneofl
         [
           Insn.Fmv (Df, fd, fs);
           Insn.Fneg (Df, fd, fs);
           Insn.Cvtif (Df, fd, fs);
           Insn.Cvtfi (Df, fd, fs);
         ]);
      (let* c = gen_cond6 and* fa = reg and* fb = reg in
       return (Insn.Fcmp (c, Df, fa, fb)));
      (let* rd = reg in
       return (Insn.Rdsr rd));
      (let* code = int_bound 15 in
       return (Insn.Trap code));
      return Insn.Nop;
    ]

(* Random DLXe-legal instruction. *)
let gen_dlxe : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let imm16 = int_range (-32768) 32767 in
  oneof
    [
      (let* rd = reg and* base = reg and* off = imm16 in
       oneofl
         [
           Insn.Load (Lw, rd, base, off);
           Insn.Load (Lb, rd, base, off);
           Insn.Load (Lbu, rd, base, off);
           Insn.Load (Lh, rd, base, off);
           Insn.Load (Lhu, rd, base, off);
           Insn.Store (Sw, rd, base, off);
           Insn.Store (Sh, rd, base, off);
           Insn.Store (Sb, rd, base, off);
           Insn.Fload (Df, rd, base, off);
           Insn.Fstore (Df, rd, base, off);
           Insn.Fload (Sf, rd, base, off);
           Insn.Fstore (Sf, rd, base, off);
         ]);
      (let* op = gen_alu and* rd = reg and* ra = reg and* rb = reg in
       return (Insn.Alu (op, rd, ra, rb)));
      (let* rd = reg and* ra = reg and* imm = imm16 in
       oneofl [ Insn.Alui (Add, rd, ra, imm); Insn.Alui (Sub, rd, ra, imm) ]);
      (let* rd = reg and* ra = reg and* imm = int_bound 65535 in
       oneofl
         [
           Insn.Alui (And, rd, ra, imm);
           Insn.Alui (Or, rd, ra, imm);
           Insn.Alui (Xor, rd, ra, imm);
         ]);
      (let* rd = reg and* ra = reg and* sh = int_bound 31 in
       oneofl
         [
           Insn.Alui (Shl, rd, ra, sh);
           Insn.Alui (Shr, rd, ra, sh);
           Insn.Alui (Shra, rd, ra, sh);
         ]);
      (let* rd = reg and* rs = reg in
       return (Insn.Mv (rd, rs)));
      (let* rd = reg and* imm = imm16 in
       return (Insn.Mvi (rd, imm)));
      (let* rd = reg and* imm = int_bound 65535 in
       return (Insn.Mvhi (rd, imm)));
      (let* c = gen_cond10 and* rd = reg and* ra = reg and* rb = reg in
       return (Insn.Cmp (c, rd, ra, rb)));
      (let* c = gen_cond10 and* rd = reg and* ra = reg and* imm = imm16 in
       return (Insn.Cmpi (c, rd, ra, imm)));
      (let* off = int_range (-8192) 8191 in
       oneofl [ Insn.Br (4 * off); Insn.Brl (4 * off) ]);
      (let* r = reg and* off = int_range (-8192) 8191 in
       oneofl [ Insn.Bz (r, 4 * off); Insn.Bnz (r, 4 * off) ]);
      (let* r = reg in
       oneofl [ Insn.J r; Insn.Jl r ]);
      (let* rt = reg and* rd = reg in
       oneofl [ Insn.Jz (rt, rd); Insn.Jnz (rt, rd) ]);
      (let* op = gen_fbin and* fd = reg and* fa = reg and* fb = reg in
       oneofl [ Insn.Fbin (op, Df, fd, fa, fb); Insn.Fbin (op, Sf, fd, fa, fb) ]);
      (let* fd = reg and* fs = reg in
       oneofl
         [
           Insn.Fmv (Df, fd, fs);
           Insn.Fneg (Sf, fd, fs);
           Insn.Cvtif (Df, fd, fs);
           Insn.Cvtfi (Sf, fd, fs);
         ]);
      (let* c = gen_cond10 and* fa = reg and* fb = reg in
       return (Insn.Fcmp (c, Df, fa, fb)));
      (let* rd = reg in
       return (Insn.Rdsr rd));
      (let* code = int_bound 15 in
       return (Insn.Trap code));
      return Insn.Nop;
    ]

let arb gen = QCheck.make ~print:Insn.to_string gen

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"D16 generated instructions are legal" ~count:2000
      (arb gen_d16)
      (fun i -> Target.legal Target.d16 i = Ok ());
    Test.make ~name:"DLXe generated instructions are legal" ~count:2000
      (arb gen_dlxe)
      (fun i -> Target.legal Target.dlxe i = Ok ());
    Test.make ~name:"D16 encode/decode roundtrip" ~count:2000 (arb gen_d16)
      (fun i -> D16.decode (D16.encode i) = Some i);
    Test.make ~name:"DLXe encode/decode roundtrip" ~count:2000 (arb gen_dlxe)
      (fun i -> Dlxe.decode (Dlxe.encode i) = Some i);
    Test.make ~name:"D16 encodings fit 16 bits" ~count:1000 (arb gen_d16)
      (fun i ->
        let w = D16.encode i in
        w >= 0 && w < 65536);
    Test.make ~name:"DLXe encodings fit 32 bits" ~count:1000 (arb gen_dlxe)
      (fun i ->
        let w = Dlxe.encode i in
        w >= 0 && w < 0x1_0000_0000);
    Test.make ~name:"D16 decode total on 16-bit words" ~count:2000
      (int_bound 65535)
      (fun w ->
        match D16.decode w with
        | Some i -> D16.decode (D16.encode i) = Some i
        | None -> true);
  ]

let test_d16_limits () =
  let ok i = Alcotest.(check bool) (Insn.to_string i) true (Target.legal Target.d16 i = Ok ()) in
  let bad i = Alcotest.(check bool) (Insn.to_string i) true (Target.legal Target.d16 i <> Ok ()) in
  ok (Insn.Load (Lw, 3, 4, 124));
  bad (Insn.Load (Lw, 3, 4, 128));
  bad (Insn.Load (Lw, 3, 4, 2));
  bad (Insn.Load (Lw, 3, 4, -4));
  bad (Insn.Load (Lb, 3, 4, 1));
  ok (Insn.Alui (Add, 5, 5, 31));
  bad (Insn.Alui (Add, 5, 5, 32));
  bad (Insn.Alui (Add, 5, 5, -1));
  bad (Insn.Alui (Add, 5, 6, 3));
  bad (Insn.Alui (And, 5, 5, 3));
  ok (Insn.Mvi (2, -256));
  bad (Insn.Mvi (2, 256));
  bad (Insn.Mvhi (2, 1));
  bad (Insn.Cmp (Gt, 0, 1, 2));
  bad (Insn.Cmp (Lt, 3, 1, 2));
  ok (Insn.Br 1022);
  bad (Insn.Br 1024);
  ok (Insn.Br (-1024));
  bad (Insn.Br 3);
  ok (Insn.Ldc (0, -8188));
  bad (Insn.Ldc (0, -8192));
  bad (Insn.Ldc (1, -8));
  bad (Insn.Cmpi (Lt, 1, 2, 3));
  bad (Insn.Alu (Add, 1, 2, 3))

let test_dlxe_limits () =
  let ok i = Alcotest.(check bool) (Insn.to_string i) true (Target.legal Target.dlxe i = Ok ()) in
  let bad i = Alcotest.(check bool) (Insn.to_string i) true (Target.legal Target.dlxe i <> Ok ()) in
  ok (Insn.Alu (Add, 1, 2, 3));
  ok (Insn.Alui (Add, 5, 6, -32768));
  bad (Insn.Alui (Add, 5, 6, 32768));
  ok (Insn.Alui (Or, 5, 6, 65535));
  bad (Insn.Alui (Or, 5, 6, -1));
  bad (Insn.Neg (1, 2));
  bad (Insn.Inv (1, 2));
  bad (Insn.Ldc (0, -8));
  ok (Insn.Cmpi (Geu, 7, 8, 1000));
  ok (Insn.Cmp (Gt, 9, 1, 2));
  bad (Insn.Load (Lw, 32, 0, 0));
  ok (Insn.Load (Lw, 31, 0, 0))

let test_restricted_targets () =
  (* The 16-register restriction rejects high registers; the two-address
     restriction rejects free destinations. *)
  let t = Target.dlxe_16_2 in
  Alcotest.(check bool) "r16 rejected" true
    (Target.legal t (Insn.Mv (16, 0)) <> Ok ());
  Alcotest.(check bool) "2-addr violation rejected" true
    (Target.legal t (Insn.Alu (Add, 1, 2, 3)) <> Ok ());
  Alcotest.(check bool) "2-addr ok" true
    (Target.legal t (Insn.Alu (Add, 1, 1, 3)) = Ok ());
  Alcotest.(check bool) "still has cmpi" true
    (Target.legal t (Insn.Cmpi (Lt, 1, 1, 12000)) = Ok ())

let test_insn_metadata () =
  Alcotest.(check (option int)) "brl defines link" (Some 1)
    (Insn.defs_gpr (Insn.Brl 8));
  Alcotest.(check (list int)) "store uses both" [ 3; 4 ]
    (Insn.uses_gpr (Insn.Store (Sw, 3, 4, 0)));
  Alcotest.(check bool) "ldc is load" true (Insn.is_load (Insn.Ldc (0, -4)));
  Alcotest.(check bool) "jl is branch" true (Insn.is_branch (Insn.Jl 5));
  Alcotest.(check bool) "fcmp writes status" true
    (Insn.writes_fp_status (Insn.Fcmp (Lt, Df, 0, 1)));
  (* negate/swap are involutions. *)
  List.iter
    (fun c ->
      Alcotest.(check string) "negate involution" (Insn.cond_to_string c)
        (Insn.cond_to_string (Insn.negate_cond (Insn.negate_cond c)));
      Alcotest.(check string) "swap involution" (Insn.cond_to_string c)
        (Insn.cond_to_string (Insn.swap_cond (Insn.swap_cond c))))
    [ Insn.Lt; Ltu; Le; Leu; Eq; Ne; Gt; Gtu; Ge; Geu ]

let tests =
  [
    Alcotest.test_case "D16 operand limits" `Quick test_d16_limits;
    Alcotest.test_case "DLXe operand limits" `Quick test_dlxe_limits;
    Alcotest.test_case "restricted targets" `Quick test_restricted_targets;
    Alcotest.test_case "instruction metadata" `Quick test_insn_metadata;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
