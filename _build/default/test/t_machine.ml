(* Direct machine tests: hand-built assembly fragments linked and executed
   without the compiler, covering instruction semantics the suite may not
   reach (subword memory, conditional register jumps, exact interlock
   counts, literal-pool loads, FP status). *)

module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Asm = Repro_codegen.Asm
module Link = Repro_link.Link
module Machine = Repro_sim.Machine

(* Link a raw 'main' made of the given items (delay slots must be explicit)
   and run it. *)
let run ?(target = Target.d16) items =
  let epilogue = [ Asm.Op (Insn.J 1); Asm.Op Insn.Nop ] in
  let img = Link.link target [ { Asm.fn_name = "main"; items = items @ epilogue } ] [] in
  Machine.run ~trace:true img

let exit_code ?target items = (run ?target items).Machine.exit_code

(* The harness exit code is main's return value (r4) masked to a byte. *)
let check_r4 name expected items =
  List.iter
    (fun target ->
      Alcotest.(check int)
        (Printf.sprintf "%s (%s)" name target.Target.name)
        (expected land 0xFF)
        (exit_code ~target items))
    [ Target.d16; Target.dlxe ]

let test_alu_ops () =
  check_r4 "add" 11
    [ Asm.Op (Insn.Mvi (4, 5)); Asm.Op (Insn.Mvi (5, 6));
      Asm.Op (Insn.Alu (Add, 4, 4, 5)) ];
  check_r4 "sub wraps into byte" 0xFF
    [ Asm.Op (Insn.Mvi (4, 0)); Asm.Op (Insn.Mvi (5, 1));
      Asm.Op (Insn.Alu (Sub, 4, 4, 5)) ];
  check_r4 "xor" 6
    [ Asm.Op (Insn.Mvi (4, 5)); Asm.Op (Insn.Mvi (5, 3));
      Asm.Op (Insn.Alu (Xor, 4, 4, 5)) ];
  check_r4 "shl" 40
    [ Asm.Op (Insn.Mvi (4, 5)); Asm.Op (Insn.Alui (Shl, 4, 4, 3)) ];
  check_r4 "shra of negative" (-2)
    [ Asm.Op (Insn.Mvi (4, -8)); Asm.Op (Insn.Alui (Shra, 4, 4, 2)) ]

let test_subword_memory () =
  (* Store a word, read its bytes and halves back with both extensions.
     Memory at the top of the data segment is scratch; use an address from
     Lc to stay target-neutral. *)
  let addr = 0x800000 in
  let prologue =
    [ Asm.Lc (5, addr); Asm.Lc (6, 0xFFFF8081); Asm.Op (Insn.Store (Sw, 6, 5, 0)) ]
  in
  check_r4 "lbu low byte" 0x81
    (prologue @ [ Asm.Op (Insn.Load (Lbu, 4, 5, 0)) ]);
  check_r4 "lb sign-extends" (-127)
    (prologue @ [ Asm.Op (Insn.Load (Lb, 4, 5, 0)) ]);
  check_r4 "lhu low half" 0x81 (* 0x8081 land 0xFF after exit masking *)
    (prologue @ [ Asm.Op (Insn.Load (Lhu, 4, 5, 0)) ]);
  check_r4 "sb then lbu"
    0x7F
    (prologue
    @ [
        Asm.Op (Insn.Mvi (7, 0x7F));
        Asm.Op (Insn.Store (Sb, 7, 5, 0));
        Asm.Op (Insn.Load (Lbu, 4, 5, 0));
      ])

let test_conditional_jumps () =
  (* jz/jnz: build the target address with La of a local label... labels are
     branch-relative only, so jump to the function itself via a pool
     constant is awkward; instead test fall-through behaviour: a jnz with a
     zero test register must not jump. *)
  List.iter
    (fun (target : Target.t) ->
      let test_reg = if target.Target.isa = Target.D16 then 0 else 6 in
      let items =
        [
          Asm.Op (Insn.Mvi (4, 1));
          (* Lc first: on D16 it expands through r0, the test register. *)
          Asm.Lc (5, 0x1000);
          Asm.Op (Insn.Mvi (test_reg, 0));
          (* not taken: r-test is zero *)
          Asm.Op (Insn.Jnz (test_reg, 5));
          Asm.Op Insn.Nop;
          Asm.Op (Insn.Mvi (4, 42));
        ]
      in
      Alcotest.(check int)
        ("jnz not taken " ^ target.Target.name)
        42
        (exit_code ~target items))
    [ Target.d16; Target.dlxe ]

let test_branch_delay_slot () =
  (* The instruction after a taken branch executes. *)
  check_r4 "delay slot executes" 7
    [
      Asm.Op (Insn.Mvi (4, 0));
      Asm.Br_lbl 99;
      Asm.Op (Insn.Mvi (4, 7));  (* delay slot: still executes *)
      Asm.Op (Insn.Mvi (4, 1));  (* skipped *)
      Asm.Lbl 99;
    ]

let test_ldc_pool () =
  (* Lc on D16 goes through the literal pool; the loaded value must be
     exact for a constant no mvi/shift trick can build. *)
  Alcotest.(check int) "pool constant round-trips" 0x37
    (exit_code ~target:Target.d16
       [ Asm.Lc (5, 0x12345637); Asm.Op (Insn.Mv (4, 5)) ]);
  (* The same value twice shares one pool slot and still reads correctly. *)
  Alcotest.(check int) "deduplicated pool reads" 0x37
    (exit_code ~target:Target.d16
       [
         Asm.Lc (5, 0x12345637);
         Asm.Lc (6, 0x12345637);
         Asm.Op (Insn.Alu (Sub, 5, 5, 6));
         Asm.Lc (6, 0x12345637);
         Asm.Op (Insn.Alu (Add, 5, 5, 6));
         Asm.Op (Insn.Mv (4, 5));
       ])

let test_interlock_exactness () =
  (* One load immediately used: exactly one stall.  Separated by an
     independent instruction: zero stalls. *)
  let addr = 0x800000 in
  let dependent =
    [
      Asm.Lc (5, addr);
      Asm.Op (Insn.Load (Lw, 6, 5, 0));
      Asm.Op (Insn.Alu (Add, 6, 6, 6));
      Asm.Op (Insn.Mv (4, 6));
    ]
  in
  let separated =
    [
      Asm.Lc (5, addr);
      Asm.Op (Insn.Load (Lw, 6, 5, 0));
      Asm.Op (Insn.Mvi (7, 0));
      Asm.Op (Insn.Alu (Add, 6, 6, 6));
      Asm.Op (Insn.Mv (4, 6));
    ]
  in
  let locks items = (run ~target:Target.dlxe items).Machine.interlocks in
  Alcotest.(check int) "load-use stalls once" 1 (locks dependent);
  Alcotest.(check int) "separated load does not stall" 0 (locks separated)

let test_fp_status () =
  let items c =
    [
      Asm.Op (Insn.Mvi (5, 3));
      Asm.Op (Insn.Cvtif (Df, 2, 5));
      Asm.Op (Insn.Mvi (5, 4));
      Asm.Op (Insn.Cvtif (Df, 3, 5));
      Asm.Op (Insn.Fcmp (c, Df, 2, 3));
      Asm.Op (Insn.Rdsr 4);
    ]
  in
  check_r4 "fcmp lt true" 1 (items Insn.Lt);
  check_r4 "fcmp eq false" 0 (items Insn.Eq);
  check_r4 "fcmp ne true" 1 (items Insn.Ne)

let test_fp_arith_direct () =
  (* (3.0 + 4.0) * 2.0 = 14.0, truncated back to an integer. *)
  let items =
    [
      Asm.Op (Insn.Mvi (5, 3));
      Asm.Op (Insn.Cvtif (Df, 2, 5));
      Asm.Op (Insn.Mvi (5, 4));
      Asm.Op (Insn.Cvtif (Df, 3, 5));
      Asm.Op (Insn.Fbin (Fadd, Df, 2, 2, 3));
      Asm.Op (Insn.Mvi (5, 2));
      Asm.Op (Insn.Cvtif (Df, 3, 5));
      Asm.Op (Insn.Fbin (Fmul, Df, 2, 2, 3));
      Asm.Op (Insn.Cvtfi (Df, 4, 2));
    ]
  in
  check_r4 "fp arithmetic" 14 items

let test_runtime_errors () =
  let expect_error name items =
    List.iter
      (fun target ->
        match run ~target items with
        | exception Machine.Runtime_error _ -> ()
        | _ -> Alcotest.fail (name ^ ": expected a runtime error"))
      [ Target.d16; Target.dlxe ]
  in
  expect_error "unaligned word load"
    [ Asm.Op (Insn.Mvi (5, 2)); Asm.Op (Insn.Load (Lw, 4, 5, 0)) ];
  expect_error "wild jump"
    [ Asm.Op (Insn.Mvi (5, 0)); Asm.Op (Insn.J 5); Asm.Op Insn.Nop ]

let test_zero_register_dlxe () =
  (* DLXe r0 reads as zero and ignores writes; D16 r0 is a live register. *)
  Alcotest.(check int) "dlxe r0 is zero" 0
    (exit_code ~target:Target.dlxe
       [ Asm.Op (Insn.Mvi (0, 55)); Asm.Op (Insn.Mv (4, 0)) ]);
  Alcotest.(check int) "d16 r0 holds values" 55
    (exit_code ~target:Target.d16
       [ Asm.Op (Insn.Mvi (0, 55)); Asm.Op (Insn.Mv (4, 0)) ])

let tests =
  [
    Alcotest.test_case "alu semantics" `Quick test_alu_ops;
    Alcotest.test_case "subword memory" `Quick test_subword_memory;
    Alcotest.test_case "conditional jumps" `Quick test_conditional_jumps;
    Alcotest.test_case "branch delay slot" `Quick test_branch_delay_slot;
    Alcotest.test_case "literal pool" `Quick test_ldc_pool;
    Alcotest.test_case "interlock exactness" `Quick test_interlock_exactness;
    Alcotest.test_case "fp status" `Quick test_fp_status;
    Alcotest.test_case "fp arithmetic" `Quick test_fp_arith_direct;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "r0 semantics" `Quick test_zero_register_dlxe;
  ]
