(* Integration: the whole benchmark suite runs on all five targets with
   identical output, and known-correct results where we have an oracle. *)

module Target = Repro_core.Target
module Suite = Repro_workloads.Suite
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine
module Link = Repro_link.Link

let results_for (b : Suite.benchmark) =
  List.map
    (fun t ->
      let img, r = Compile.compile_and_run ~trace:false t b.Suite.source in
      (t, img, r))
    Target.all

let test_suite_agreement () =
  List.iter
    (fun (b : Suite.benchmark) ->
      match results_for b with
      | [] -> assert false
      | (_, _, r0) :: rest ->
        List.iter
          (fun ((t : Target.t), _, (r : Machine.result)) ->
            Alcotest.(check string)
              (Printf.sprintf "%s output on %s" b.Suite.name t.Target.name)
              r0.Machine.output r.Machine.output;
            Alcotest.(check int)
              (Printf.sprintf "%s exit on %s" b.Suite.name t.Target.name)
              r0.Machine.exit_code r.Machine.exit_code)
          rest)
    Suite.all

let test_known_outputs () =
  let expect name prefix =
    let b = Suite.find name in
    let _, r = Compile.compile_and_run ~trace:false Target.d16 b.Suite.source in
    let out = r.Machine.output in
    Alcotest.(check bool)
      (Printf.sprintf "%s output %S starts with %S" name out prefix)
      true
      (String.length out >= String.length prefix
      && String.sub out 0 (String.length prefix) = prefix)
  in
  expect "ackermann" "61\n";  (* ack(3,3) *)
  expect "queens" "92\n";  (* solutions of 8-queens *)
  expect "towers" "16383\n";  (* 2^14 - 1 moves *)
  expect "pi" "31415926535897932384626433832795";
  expect "linpack" "ok";
  expect "grep" "10 2 5 7 7 2\n"

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_sorted_outputs () =
  (* The sorts verify themselves; any disorder prints NOT SORTED. *)
  List.iter
    (fun name ->
      let b = Suite.find name in
      let _, r = Compile.compile_and_run ~trace:false Target.dlxe b.Suite.source in
      Alcotest.(check bool) (name ^ " sorted") false
        (contains r.Machine.output "NOT SORTED"))
    [ "bubblesort"; "quicksort" ]

let test_size_orderings () =
  (* Structural expectations that hold program by program. *)
  List.iter
    (fun (b : Suite.benchmark) ->
      let sizes =
        List.map
          (fun t -> Link.size_bytes (fst (Compile.compile_and_run ~trace:false t b.Suite.source)))
          [ Target.d16; Target.dlxe ]
      in
      match sizes with
      | [ s16; s32 ] ->
        Alcotest.(check bool)
          (b.Suite.name ^ ": D16 binary smaller")
          true (s16 < s32)
      | _ -> assert false)
    Suite.all

let test_path_orderings () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let ic t =
        (snd (Compile.compile_and_run ~trace:false t b.Suite.source)).Machine.ic
      in
      let i16 = ic Target.d16 and i32 = ic Target.dlxe in
      Alcotest.(check bool)
        (Printf.sprintf "%s: DLXe path shorter (%d vs %d)" b.Suite.name i32 i16)
        true (i32 <= i16);
      Alcotest.(check bool)
        (Printf.sprintf "%s: D16 path within 2x" b.Suite.name)
        true (float_of_int i16 /. float_of_int i32 < 2.0))
    Suite.all

let test_restricted_monotonicity () =
  (* Removing registers or the third operand never shrinks code. *)
  List.iter
    (fun (b : Suite.benchmark) ->
      let size t =
        Link.size_bytes (fst (Compile.compile_and_run ~trace:false t b.Suite.source))
      in
      Alcotest.(check bool)
        (b.Suite.name ^ ": 2-address not smaller than 3-address")
        true
        (size Target.dlxe_32_2 >= size Target.dlxe)
    )
    [ Suite.find "queens"; Suite.find "dhrystone"; Suite.find "whetstone" ]

let tests =
  [
    Alcotest.test_case "suite agrees across all targets" `Slow
      test_suite_agreement;
    Alcotest.test_case "known outputs" `Quick test_known_outputs;
    Alcotest.test_case "sorters verify" `Quick test_sorted_outputs;
    Alcotest.test_case "D16 binaries smaller" `Slow test_size_orderings;
    Alcotest.test_case "DLXe paths shorter" `Slow test_path_orderings;
    Alcotest.test_case "restriction monotonicity" `Slow
      test_restricted_monotonicity;
  ]
