(* Register-allocation verification: run the allocator over every suite
   function for every target and check the fundamental invariants directly
   on the allocated IR — simultaneously-live temps get distinct registers,
   call-crossing temps get callee-saved registers, assignments stay inside
   the allocatable set. *)

module Target = Repro_core.Target
module Parser = Repro_minic.Parser
module Lower = Repro_ir.Lower
module Opt = Repro_ir.Opt
module Ir = Repro_ir.Ir
module Iset = Repro_ir.Iset
module Liveness = Repro_ir.Liveness
module Regalloc = Repro_ir.Regalloc
module Irprep = Repro_codegen.Irprep

(* Allocate one function and verify the invariants for one register class. *)
let verify_class (f : Ir.func) (cls : Liveness.cls)
    (assign : (Ir.temp, int) Hashtbl.t) ~allocatable ~callee_saved ~what =
  let live = Liveness.compute f cls in
  let reg t =
    match Hashtbl.find_opt assign t with
    | Some r -> r
    | None -> Alcotest.fail (Printf.sprintf "%s: %s t%d unassigned" f.Ir.name what t)
  in
  List.iter
    (fun (b : Ir.block) ->
      let live_out = Hashtbl.find live.Liveness.live_out b.Ir.lbl in
      Liveness.backward_scan b cls ~live_out (fun i ~live ->
          (* 1. The defined register must not collide with anything live
             after the instruction — except a move's own source, which
             holds the same value (coalescing). *)
          let move_src =
            match i with
            | Ir.Mov (_, s) when cls == Liveness.int_class -> Some s
            | Ir.Fmov (_, s) when cls == Liveness.float_class -> Some s
            | _ -> None
          in
          (match cls.Liveness.def i with
          | Some d ->
            let rd = reg d in
            Iset.iter
              (fun l ->
                if l <> d && Some l <> move_src && reg l = rd then
                  Alcotest.fail
                    (Printf.sprintf "%s: %s t%d and t%d both in r%d at '%s'"
                       f.Ir.name what d l rd (Ir.ins_to_string i)))
              live
          | None -> ());
          (* 2. Assignments stay in the allocatable set. *)
          (match cls.Liveness.def i with
          | Some d ->
            if not (List.mem (reg d) allocatable) then
              Alcotest.fail
                (Printf.sprintf "%s: %s t%d in non-allocatable r%d" f.Ir.name
                   what d (reg d))
          | None -> ());
          (* 3. Temps live across a call sit in callee-saved registers. *)
          match i with
          | Ir.Call _ ->
            let after =
              match cls.Liveness.def i with
              | Some d -> Iset.remove d live
              | None -> live
            in
            Iset.iter
              (fun t ->
                if not (List.mem (reg t) callee_saved) then
                  Alcotest.fail
                    (Printf.sprintf
                       "%s: %s t%d live across call in caller-saved r%d"
                       f.Ir.name what t (reg t)))
              after
          | _ -> ()))
    f.Ir.blocks

let verify_function target (f : Ir.func) =
  let lits = Irprep.empty_fp_literals () in
  Opt.optimize f;
  Irprep.prepare target lits f;
  let alloc = Regalloc.allocate target f in
  verify_class f Liveness.int_class alloc.Regalloc.int_assign
    ~allocatable:(Target.allocatable_gpr target)
    ~callee_saved:(Target.callee_saved_gpr target)
    ~what:"gpr";
  verify_class f Liveness.float_class alloc.Regalloc.float_assign
    ~allocatable:(Target.allocatable_fpr target)
    ~callee_saved:(Target.callee_saved_fpr target)
    ~what:"fpr"

let verify_source target source =
  let u =
    Lower.lower_program
      (Parser.parse (Repro_workloads.Runtime_lib.source ^ source))
  in
  List.iter (verify_function target) u.Lower.funcs

let test_suite_allocations () =
  List.iter
    (fun (b : Repro_workloads.Suite.benchmark) ->
      List.iter
        (fun t -> verify_source t b.Repro_workloads.Suite.source)
        [ Target.d16; Target.dlxe; Target.dlxe_16_2 ])
    Repro_workloads.Suite.all

let test_pressure_allocation () =
  (* A synthetic worst case: a call surrounded by many live values. *)
  let src =
    {|int v[30] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
                   21,22,23,24,25,26,27,28,29,30};
      int id(int x) { return x; }
      int main() {
        int a0 = v[0]; int a1 = v[1]; int a2 = v[2]; int a3 = v[3];
        int a4 = v[4]; int a5 = v[5]; int a6 = v[6]; int a7 = v[7];
        int a8 = v[8]; int a9 = v[9]; int a10 = v[10]; int a11 = v[11];
        int a12 = v[12]; int a13 = v[13]; int a14 = v[14]; int a15 = v[15];
        int mid = id(100);
        int s = a0+a1+a2+a3+a4+a5+a6+a7+a8+a9+a10+a11+a12+a13+a14+a15;
        print_int(s + mid);
        return 0; }|}
  in
  List.iter (fun t -> verify_source t src) Target.all;
  (* And it computes the right thing everywhere. *)
  List.iter
    (fun t ->
      let _, r = Repro_harness.Compile.compile_and_run ~trace:false t src in
      Alcotest.(check string) ("pressure output " ^ t.Target.name) "236"
        r.Repro_sim.Machine.output)
    Target.all

let test_argument_shuffles () =
  (* Parallel-move cycles: arguments permuted through recursive calls. *)
  let src =
    {|int f(int a, int b, int c, int d, int depth) {
        if (depth == 0) return a * 1000 + b * 100 + c * 10 + d;
        return f(b, a, d, c, depth - 1);   // two disjoint swaps
      }
      int g(int a, int b, int c, int d, int depth) {
        if (depth == 0) return a * 1000 + b * 100 + c * 10 + d;
        return g(d, a, b, c, depth - 1);   // one 4-cycle
      }
      int main() {
        print_int(f(1, 2, 3, 4, 1)); print_char(' ');
        print_int(f(1, 2, 3, 4, 2)); print_char(' ');
        print_int(g(1, 2, 3, 4, 1)); print_char(' ');
        print_int(g(1, 2, 3, 4, 4)); print_char('\n');
        return 0; }|}
  in
  List.iter
    (fun t ->
      let _, r = Repro_harness.Compile.compile_and_run ~trace:false t src in
      Alcotest.(check string)
        ("shuffle output " ^ t.Target.name)
        "2143 1234 4123 1234\n" r.Repro_sim.Machine.output)
    Target.all

let tests =
  [
    Alcotest.test_case "suite allocations verify" `Slow test_suite_allocations;
    Alcotest.test_case "pressure allocation" `Quick test_pressure_allocation;
    Alcotest.test_case "argument shuffles" `Quick test_argument_shuffles;
  ]
