(* Statement-level program fuzzer: random straight-line-plus-control
   mini-C programs with a host-side reference interpreter, run
   differentially on three targets.  Catches interactions the expression
   fuzzer cannot (register pressure across control flow, loop-carried
   values, branch fusion, delay-slot scheduling). *)

module Target = Repro_core.Target
module Compile = Repro_harness.Compile
module Machine = Repro_sim.Machine

(* A tiny, always-terminating program shape over four int variables. *)
type rexpr =
  | Var of int  (* 0..3 *)
  | Lit of int
  | Bin of char * rexpr * rexpr  (* + - * & | ^ *)
  | Cmp of string * rexpr * rexpr  (* < <= == != *)

type rstmt =
  | Assign of int * rexpr
  | If of rexpr * rstmt list * rstmt list
  | Loop of int * int * rstmt list  (* counter var, bound 1..8, body *)
  | Print of rexpr

(* Host reference semantics (32-bit wrapping). *)
let rec eval env (e : rexpr) : int32 =
  match e with
  | Var i -> env.(i)
  | Lit n -> Int32.of_int n
  | Bin (op, a, b) -> (
    let x = eval env a and y = eval env b in
    match op with
    | '+' -> Int32.add x y
    | '-' -> Int32.sub x y
    | '*' -> Int32.mul x y
    | '&' -> Int32.logand x y
    | '|' -> Int32.logor x y
    | _ -> Int32.logxor x y)
  | Cmp (op, a, b) -> (
    let x = eval env a and y = eval env b in
    let r =
      match op with
      | "<" -> x < y
      | "<=" -> x <= y
      | "==" -> x = y
      | _ -> x <> y
    in
    if r then 1l else 0l)

let rec exec env out = function
  | Assign (v, e) -> env.(v) <- eval env e
  | If (c, a, b) ->
    if eval env c <> 0l then List.iter (exec env out) a
    else List.iter (exec env out) b
  | Loop (v, bound, body) ->
    (* The loop variable is forced to the shadow counter each iteration and
       to the bound afterwards, exactly as the rendered C does, so body
       writes to it cannot affect termination. *)
    for counter = 0 to bound - 1 do
      env.(v) <- Int32.of_int counter;
      List.iter (exec env out) body
    done;
    env.(v) <- Int32.of_int bound
  | Print e ->
    Buffer.add_string out (Int32.to_string (eval env e));
    Buffer.add_char out ' '

(* C rendering.  Loops use a dedicated counter the body never writes, and
   assign it to the loop variable each iteration, mirroring the reference
   semantics above. *)
let rec expr_c = function
  | Var i -> Printf.sprintf "v%d" i
  | Lit n -> Printf.sprintf "(%d)" n
  | Bin (op, a, b) -> Printf.sprintf "(%s %c %s)" (expr_c a) op (expr_c b)
  | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_c a) op (expr_c b)

let rec stmt_c depth = function
  | Assign (v, e) -> Printf.sprintf "v%d = %s;" v (expr_c e)
  | If (c, a, b) ->
    Printf.sprintf "if (%s) { %s } else { %s }" (expr_c c)
      (String.concat " " (List.map (stmt_c depth) a))
      (String.concat " " (List.map (stmt_c depth) b))
  | Loop (v, bound, body) ->
    let k = Printf.sprintf "k%d" depth in
    Printf.sprintf "for (%s = 0; %s < %d; %s++) { v%d = %s; %s } v%d = %d;" k k
      bound k v k
      (String.concat " " (List.map (stmt_c (depth + 1)) body))
      v bound
  | Print e -> Printf.sprintf "print_int(%s); print_char(' ');" (expr_c e)

let program_c stmts =
  Printf.sprintf
    {|int main() {
        int v0 = 1; int v1 = -2; int v2 = 3; int v3 = 0;
        int k0; int k1; int k2; int k3;
        %s
        print_int(v0 ^ v1 ^ v2 ^ v3);
        return 0;
      }|}
    (String.concat "\n        " (List.map (stmt_c 0) stmts))

let reference stmts =
  let env = [| 1l; -2l; 3l; 0l |] in
  let out = Buffer.create 64 in
  List.iter (exec env out) stmts;
  Buffer.add_string out
    (Int32.to_string
       (Int32.logxor (Int32.logxor env.(0) env.(1)) (Int32.logxor env.(2) env.(3))));
  Buffer.contents out

(* Generators. *)
let gen_expr : rexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized_size (int_bound 4)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof [ map (fun v -> Var v) (int_bound 3);
                   map (fun l -> Lit l) (int_range (-1000) 1000) ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun v -> Var v) (int_bound 3);
               (let* op = oneofl [ '+'; '-'; '*'; '&'; '|'; '^' ]
                and* a = sub
                and* b = sub in
                return (Bin (op, a, b)));
               (let* op = oneofl [ "<"; "<="; "=="; "!=" ]
                and* a = sub
                and* b = sub in
                return (Cmp (op, a, b)));
             ])

let gen_stmts : rstmt list QCheck.Gen.t =
  let open QCheck.Gen in
  let rec stmt depth =
    let assign =
      let* v = int_bound 3 and* e = gen_expr in
      return (Assign (v, e))
    in
    let print_ =
      let* e = gen_expr in
      return (Print e)
    in
    if depth >= 2 then oneof [ assign; print_ ]
    else
      oneof
        [
          assign;
          print_;
          (let* c = gen_expr
           and* a = list_size (int_range 1 3) (stmt (depth + 1))
           and* b = list_size (int_bound 2) (stmt (depth + 1)) in
           return (If (c, a, b)));
          (let* v = int_bound 3
           and* bound = int_range 1 6
           and* body = list_size (int_range 1 3) (stmt (depth + 1)) in
           return (Loop (v, bound, body)));
        ]
  in
  list_size (QCheck.Gen.int_range 2 6) (stmt 0)

let fuzz =
  QCheck.Test.make ~name:"random programs match reference interpreter"
    ~count:40
    (QCheck.make ~print:(fun s -> program_c s) gen_stmts)
    (fun stmts ->
      let src = program_c stmts in
      let expected = reference stmts in
      List.for_all
        (fun t ->
          let _, r = Compile.compile_and_run ~trace:false t src in
          r.Machine.output = expected)
        [ Target.d16; Target.dlxe; Target.dlxe_16_2 ])

let tests = [ QCheck_alcotest.to_alcotest fuzz ]
