module Target = Repro_core.Target

exception Spill_failure of string

type t = {
  int_assign : (Ir.temp, int) Hashtbl.t;
  float_assign : (Ir.ftemp, int) Hashtbl.t;
  spill_slot_int : (Ir.temp, int) Hashtbl.t;
  spill_slot_float : (Ir.ftemp, int) Hashtbl.t;
  used_callee_gpr : int list;
  used_callee_fpr : int list;
}

(* One coloring problem: a register class over a function. *)
type problem = {
  cls : Liveness.cls;
  arg_temps : Ir.temp list;  (* parameters of this class, in order *)
  colors : int list;  (* allocatable physical registers, caller-saved first *)
  callee_saved : Iset.t;
  trap_clobber : int;  (* register written by trap argument setup (r4 / f0) *)
  spill_bytes : int;
  is_float : bool;
}

let all_temps (f : Ir.func) (p : problem) =
  let s = ref (Iset.of_list p.arg_temps) in
  Ir.iter_all_ins f (fun i ->
      (match p.cls.def i with Some d -> s := Iset.add d !s | None -> ());
      List.iter (fun u -> s := Iset.add u !s) (p.cls.use i));
  List.iter
    (fun (b : Ir.block) ->
      List.iter (fun u -> s := Iset.add u !s) (p.cls.term_use b.term))
    f.blocks;
  !s

(* Interference graph with move-bias edges. *)
type graph = {
  adj : (Ir.temp, Iset.t) Hashtbl.t;
  moves : (Ir.temp, Iset.t) Hashtbl.t;
  needs_callee : (Ir.temp, unit) Hashtbl.t;
  avoid_trap_reg : (Ir.temp, unit) Hashtbl.t;
  occurrences : (Ir.temp, int) Hashtbl.t;
}

let add_edge g a b =
  if a <> b then begin
    let get k = Option.value (Hashtbl.find_opt g.adj k) ~default:Iset.empty in
    Hashtbl.replace g.adj a (Iset.add b (get a));
    Hashtbl.replace g.adj b (Iset.add a (get b))
  end

let add_move g a b =
  if a <> b then begin
    let get k = Option.value (Hashtbl.find_opt g.moves k) ~default:Iset.empty in
    Hashtbl.replace g.moves a (Iset.add b (get a));
    Hashtbl.replace g.moves b (Iset.add a (get b))
  end

let move_partner (p : problem) (i : Ir.ins) =
  match (p.is_float, i) with
  | false, Ir.Mov (d, s) -> Some (d, s)
  | true, Ir.Fmov (d, s) -> Some (d, s)
  | _ -> None

let build_graph (f : Ir.func) (p : problem) =
  let g =
    {
      adj = Hashtbl.create 64;
      moves = Hashtbl.create 32;
      needs_callee = Hashtbl.create 32;
      avoid_trap_reg = Hashtbl.create 8;
      occurrences = Hashtbl.create 64;
    }
  in
  let bump t =
    Hashtbl.replace g.occurrences t
      (1 + Option.value (Hashtbl.find_opt g.occurrences t) ~default:0)
  in
  Iset.iter (fun t -> Hashtbl.replace g.adj t Iset.empty) (all_temps f p);
  let live = Liveness.compute f p.cls in
  (* Parameters are all defined simultaneously at entry. *)
  (match f.blocks with
  | entry :: _ ->
    let entry_live = Hashtbl.find live.live_in entry.Ir.lbl in
    let params = Iset.of_list p.arg_temps in
    Iset.iter
      (fun a ->
        Iset.iter (fun b -> add_edge g a b) (Iset.union entry_live params))
      params
  | [] -> ());
  List.iter
    (fun (b : Ir.block) ->
      let live_out = Hashtbl.find live.live_out b.Ir.lbl in
      Liveness.backward_scan b p.cls ~live_out (fun i ~live ->
          (match p.cls.def i with Some d -> bump d | None -> ());
          List.iter bump (p.cls.use i);
          (match p.cls.def i with
          | Some d ->
            let excluded =
              match move_partner p i with Some (_, s) -> Some s | None -> None
            in
            Iset.iter
              (fun l -> if Some l <> excluded then add_edge g d l)
              (Iset.remove d live)
          | None -> ());
          (match move_partner p i with
          | Some (d, s) -> add_move g d s
          | None -> ());
          match i with
          | Ir.Call _ ->
            let after = match p.cls.def i with
              | Some d -> Iset.remove d live
              | None -> live
            in
            Iset.iter (fun t -> Hashtbl.replace g.needs_callee t ()) after
          | Ir.Trap _ ->
            (* A trap's argument is staged in r4 (or f0), clobbering it for
               anything live across. *)
            Iset.iter (fun t -> Hashtbl.replace g.avoid_trap_reg t ()) live
          | _ -> ()))
    f.blocks;
  g

(* Simplify / select.  [no_spill] holds reload temps from earlier rounds:
   re-spilling them cannot make progress. *)
let color_problem (f : Ir.func) (p : problem) ~no_spill =
  let g = build_graph f p in
  let k = List.length p.colors in
  let nodes = Hashtbl.fold (fun t _ acc -> t :: acc) g.adj [] in
  let removed = Hashtbl.create 64 in
  let degree t =
    Iset.cardinal
      (Iset.filter
         (fun n -> not (Hashtbl.mem removed n))
         (Hashtbl.find g.adj t))
  in
  let stack = ref [] in
  let remaining = ref (List.length nodes) in
  while !remaining > 0 do
    let candidates =
      List.filter (fun t -> not (Hashtbl.mem removed t)) nodes
    in
    let low = List.find_opt (fun t -> degree t < k) candidates in
    let chosen =
      match low with
      | Some t -> t
      | None ->
        (* Potential spill: cheapest occurrences/degree ratio, never a
           reload temp. *)
        let cost t =
          let occ =
            float_of_int
              (Option.value (Hashtbl.find_opt g.occurrences t) ~default:0)
          in
          let deg = float_of_int (max 1 (degree t)) in
          occ /. deg
        in
        let spillable =
          List.filter (fun t -> not (Hashtbl.mem no_spill t)) candidates
        in
        let pool = if spillable = [] then candidates else spillable in
        List.fold_left
          (fun best t ->
            match best with
            | None -> Some t
            | Some b -> if cost t < cost b then Some t else best)
          None pool
        |> Option.get
    in
    Hashtbl.replace removed chosen ();
    stack := chosen :: !stack;
    decr remaining
  done;
  (* Select in reverse removal order. *)
  let assign = Hashtbl.create 64 in
  let spilled = ref [] in
  List.iter
    (fun t ->
      let neighbor_colors =
        Iset.fold
          (fun n acc ->
            match Hashtbl.find_opt assign n with
            | Some c -> Iset.add c acc
            | None -> acc)
          (Hashtbl.find g.adj t)
          Iset.empty
      in
      let allowed =
        List.filter
          (fun c ->
            (not (Iset.mem c neighbor_colors))
            && ((not (Hashtbl.mem g.needs_callee t))
               || Iset.mem c p.callee_saved)
            && ((not (Hashtbl.mem g.avoid_trap_reg t)) || c <> p.trap_clobber))
          p.colors
      in
      (* Bias toward a move partner's color. *)
      let preferred =
        match Hashtbl.find_opt g.moves t with
        | Some partners ->
          Iset.fold
            (fun partner acc ->
              match acc with
              | Some _ -> acc
              | None -> (
                match Hashtbl.find_opt assign partner with
                | Some c when List.mem c allowed -> Some c
                | _ -> None))
            partners None
        | None -> None
      in
      match (preferred, allowed) with
      | Some c, _ -> Hashtbl.replace assign t c
      | None, c :: _ -> Hashtbl.replace assign t c
      | None, [] -> spilled := t :: !spilled)
    !stack;
  (assign, !spilled)

(* Spill rewriting: replace every instruction touching a spilled temp with a
   short-lived fresh temp plus a reload/store. *)
let rewrite_spills (f : Ir.func) (p : problem) spilled spill_slots ~no_spill =
  let slot_of = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let slot = Ir.fresh_slot f ~size:p.spill_bytes ~align:p.spill_bytes in
      Hashtbl.replace slot_of t slot.Ir.slot_id;
      Hashtbl.replace spill_slots t slot.Ir.slot_id)
    spilled;
  let is_spilled t = Hashtbl.mem slot_of t in
  List.iter
    (fun (b : Ir.block) ->
      let rewrite_one (i : Ir.ins) : Ir.ins list =
        let used = List.filter is_spilled (p.cls.use i) in
        let defined =
          match p.cls.def i with
          | Some d when is_spilled d -> [ d ]
          | _ -> []
        in
        let touched = List.sort_uniq compare (used @ defined) in
        if touched = [] then [ i ]
        else begin
          let mapping =
            List.map
              (fun t ->
                let fresh =
                  if p.is_float then Ir.fresh_ftemp f else Ir.fresh_temp f
                in
                Hashtbl.replace no_spill fresh ();
                (t, fresh))
              touched
          in
          let subst t =
            match List.assoc_opt t mapping with Some t' -> t' | None -> t
          in
          let i' =
            if p.is_float then Ir.map_ins_temps Fun.id subst i
            else Ir.map_ins_temps subst Fun.id i
          in
          let loads =
            List.filter_map
              (fun t ->
                if List.mem t used then
                  let addr = Ir.Aslot (Hashtbl.find slot_of t, 0) in
                  Some
                    (if p.is_float then Ir.Fload (subst t, addr)
                     else Ir.Load (Repro_core.Insn.Lw, subst t, addr))
                else None)
              touched
          in
          let stores =
            List.filter_map
              (fun t ->
                if List.mem t defined then
                  let addr = Ir.Aslot (Hashtbl.find slot_of t, 0) in
                  Some
                    (if p.is_float then Ir.Fstore (subst t, addr)
                     else Ir.Store (Repro_core.Insn.Sw, subst t, addr))
                else None)
              touched
          in
          loads @ [ i' ] @ stores
        end
      in
      b.ins <- List.concat_map rewrite_one b.ins;
      (* Spilled temps used by terminators: reload just before. *)
      let term_used = List.filter is_spilled (p.cls.term_use b.term) in
      List.iter
        (fun t ->
          let t' = if p.is_float then Ir.fresh_ftemp f else Ir.fresh_temp f in
          Hashtbl.replace no_spill t' ();
          let addr = Ir.Aslot (Hashtbl.find slot_of t, 0) in
          b.ins <-
            b.ins
            @ [
                (if p.is_float then Ir.Fload (t', addr)
                 else Ir.Load (Repro_core.Insn.Lw, t', addr));
              ];
          let subst x = if x = t then t' else x in
          b.term <-
            (match b.term with
            | Ir.Bif (c, l1, l2) when not p.is_float -> Ir.Bif (subst c, l1, l2)
            | Ir.Ret (Some (Ir.Aint r)) when not p.is_float ->
              Ir.Ret (Some (Ir.Aint (subst r)))
            | Ir.Ret (Some (Ir.Afloat r)) when p.is_float ->
              Ir.Ret (Some (Ir.Afloat (subst r)))
            | term -> term))
        term_used)
    f.blocks

(* Spilled parameters stay in [arg_temps] and in [spill_slot_*]; the code
   generator stores the incoming argument register straight to the slot. *)
let solve_class (f : Ir.func) (p : problem) spill_slots =
  let no_spill = Hashtbl.create 32 in
  let rec loop n =
    if n = 0 then
      raise (Spill_failure (Printf.sprintf "%s: allocation did not converge" f.Ir.name));
    let assign, spilled = color_problem f p ~no_spill in
    if spilled = [] then assign
    else begin
      rewrite_spills f p spilled spill_slots ~no_spill;
      loop (n - 1)
    end
  in
  loop 48

let allocate target (f : Ir.func) =
  let int_args =
    List.filter_map
      (function Ir.Aint t -> Some t | Ir.Afloat _ -> None)
      f.arg_temps
  in
  let float_args =
    List.filter_map
      (function Ir.Afloat t -> Some t | Ir.Aint _ -> None)
      f.arg_temps
  in
  let spill_i = Hashtbl.create 8 in
  let spill_f = Hashtbl.create 8 in
  let int_problem =
    {
      cls = Liveness.int_class;
      arg_temps = int_args;
      colors = Target.allocatable_gpr target;
      callee_saved = Iset.of_list (Target.callee_saved_gpr target);
      trap_clobber = Repro_core.Regs.ret_gpr;
      spill_bytes = 4;
      is_float = false;
    }
  in
  let float_problem =
    {
      cls = Liveness.float_class;
      arg_temps = float_args;
      colors = Target.allocatable_fpr target;
      callee_saved = Iset.of_list (Target.callee_saved_fpr target);
      trap_clobber = Repro_core.Regs.ret_fpr;
      spill_bytes = 8;
      is_float = true;
    }
  in
  let int_assign = solve_class f int_problem spill_i in
  let float_assign = solve_class f float_problem spill_f in
  let used_callee assign callee =
    Hashtbl.fold
      (fun _ c acc -> if Iset.mem c callee && not (List.mem c acc) then c :: acc else acc)
      assign []
    |> List.sort compare
  in
  {
    int_assign;
    float_assign;
    spill_slot_int = spill_i;
    spill_slot_float = spill_f;
    used_callee_gpr = used_callee int_assign int_problem.callee_saved;
    used_callee_fpr = used_callee float_assign float_problem.callee_saved;
  }
