(** Three-address intermediate representation.

    Functions are control-flow graphs of basic blocks over two classes of
    virtual registers: integer temps and float temps.  Named scalar
    variables are temps (multiply defined); expression results are fresh
    single-definition temps, which is what the loop-invariant code motion
    pass relies on.  Arrays and address-taken locals live in frame slots. *)

type temp = int
type ftemp = int
type label = int

type addr =
  | Abase of temp * int  (** [mem\[t + off\]]. *)
  | Aslot of int * int  (** Frame slot id + byte offset. *)
  | Aglobal of string * int  (** Data symbol + offset. *)

type operand = Otemp of temp | Oimm of int

type binop =
  | Add | Sub | And | Or | Xor | Shl | Shr | Shra | Mul | Div | Mod

type arg = Aint of temp | Afloat of ftemp
type ret = Rnone | Rint of temp | Rfloat of ftemp

type ins =
  | Li of temp * int
  | Mov of temp * temp
  | Bin of binop * temp * temp * operand
  | Not of temp * temp
  | Neg of temp * temp
  | Setcmp of Repro_core.Insn.cond * temp * temp * operand
      (** t := (a cond b) ? 1 : 0. *)
  | Load of Repro_core.Insn.load_width * temp * addr
  | Store of Repro_core.Insn.store_width * temp * addr
  | Lea of temp * addr  (** Address materialization. *)
  | Fli of ftemp * float
  | Fmov of ftemp * ftemp
  | Fbin of Repro_core.Insn.fbin * ftemp * ftemp * ftemp
  | Fneg of ftemp * ftemp
  | Fsetcmp of Repro_core.Insn.cond * temp * ftemp * ftemp
  | Fload of ftemp * addr  (** Doubles only. *)
  | Fstore of ftemp * addr
  | Itof of ftemp * temp
  | Ftoi of temp * ftemp
  | Call of ret * string * arg list
  | Trap of int * arg option

type term = Jmp of label | Bif of temp * label * label | Ret of arg option

type block = { lbl : label; mutable ins : ins list; mutable term : term }

type slot = { slot_id : int; size : int; align : int }

type func = {
  name : string;
  arg_temps : arg list;  (** Parameters in order, as the temps they bind. *)
  ret_float : bool option;
      (** [None] for void, [Some false] int, [Some true] double. *)
  mutable blocks : block list;  (** Entry block first. *)
  mutable slots : slot list;
  mutable next_temp : int;
  mutable next_ftemp : int;
  mutable next_label : int;
}

val fresh_temp : func -> temp
val fresh_ftemp : func -> ftemp
val fresh_label : func -> label
val fresh_slot : func -> size:int -> align:int -> slot

val block_map : func -> (label, block) Hashtbl.t
val successors : term -> label list

val defs : ins -> temp option
(** Integer temp defined, if any. *)

val uses : ins -> temp list
val fdefs : ins -> ftemp option
val fuses : ins -> ftemp list

val is_pure : ins -> bool
(** No side effects and no memory read: candidate for CSE/DCE/LICM. *)

val is_pure_or_load : ins -> bool
(** Pure, or a read from memory (safe to remove if dead, not to reorder
    across stores). *)

val ins_to_string : ins -> string
val term_to_string : term -> string
val func_to_string : func -> string

val map_ins_temps : (temp -> temp) -> (ftemp -> ftemp) -> ins -> ins
(** Rewrite all temp occurrences (both uses and defs). *)

val iter_all_ins : func -> (ins -> unit) -> unit
