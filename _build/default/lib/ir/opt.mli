(** The optimizer: the passes GCC 2.1's -O exercises that matter for the
    paper's measurements.

    - local constant folding, constant/copy propagation, algebraic
      simplification;
    - local common-subexpression elimination (including redundant loads,
      killed conservatively at stores and calls);
    - global dead-code elimination (liveness based);
    - loop-invariant code motion over natural loops (single-definition pure
      instructions whose operands are loop-invariant);
    - multiply/divide strength reduction (shift-add decomposition, power-of-
      two division with sign correction);
    - lowering of remaining multiplies/divides to the runtime-library calls
      [__mulsi3], [__divsi3], [__modsi3]. *)

val local_simplify : Ir.func -> bool
(** Returns true if anything changed. *)

val local_cse : Ir.func -> bool
val dead_code : Ir.func -> bool
val licm : Ir.func -> bool
val strength_reduce : Ir.func -> bool
val lower_muldiv : Ir.func -> unit

type flags = {
  fold : bool;
  cse : bool;
  dce : bool;
  do_licm : bool;
  strength : bool;
}

val all_flags : flags
val no_flags : flags

val optimize_with : flags -> Ir.func -> unit
(** Run the pipeline with individual passes enabled or disabled (for the
    ablation study); [lower_muldiv] and CFG cleanup always run. *)

val optimize : ?level:int -> Ir.func -> unit
(** [level 0]: only [lower_muldiv] and CFG cleanup (everything needed for
    correctness).  [level 1+] (default 2): the full pipeline
    ([optimize_with all_flags]). *)
