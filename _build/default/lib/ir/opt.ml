module Insn = Repro_core.Insn
module Bitops = Repro_util.Bitops

(* Local constant folding and constant/copy propagation ------------------- *)

type binding = Const of int | Copy of Ir.temp
type fbinding = Fconst of float | Fcopy of Ir.ftemp

let norm v = Bitops.of_u32 v

let fold_bin (op : Ir.binop) a b =
  match op with
  | Add -> Some (Bitops.add32 a b)
  | Sub -> Some (Bitops.sub32 a b)
  | And -> Some (norm (a land b))
  | Or -> Some (norm (a lor b))
  | Xor -> Some (norm (a lxor b))
  | Shl -> Some (Bitops.shl32 a b)
  | Shr -> Some (Bitops.shr32 a b)
  | Shra -> Some (Bitops.sra32 a b)
  | Mul -> Some (norm (a * b))
  | Div -> if b = 0 then None else Some (norm (a / b))
  | Mod -> if b = 0 then None else Some (norm (a mod b))

let eval_cond (c : Insn.cond) a b =
  let open Bitops in
  match c with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b
  | Ltu -> ltu32 a b
  | Leu -> (not (ltu32 b a))
  | Gtu -> ltu32 b a
  | Geu -> not (ltu32 a b)

let local_simplify (f : Ir.func) =
  let changed = ref false in
  let mark i i' = if i <> i' then changed := true; i' in
  List.iter
    (fun (b : Ir.block) ->
      let env : (Ir.temp, binding) Hashtbl.t = Hashtbl.create 16 in
      let fenv : (Ir.ftemp, fbinding) Hashtbl.t = Hashtbl.create 8 in
      let root t =
        match Hashtbl.find_opt env t with Some (Copy s) -> s | _ -> t
      in
      let froot t =
        match Hashtbl.find_opt fenv t with Some (Fcopy s) -> s | _ -> t
      in
      let const t =
        match Hashtbl.find_opt env t with Some (Const k) -> Some k | _ -> None
      in
      let fconst t =
        match Hashtbl.find_opt fenv t with
        | Some (Fconst k) -> Some k
        | _ -> None
      in
      let kill_int d =
        Hashtbl.remove env d;
        let stale =
          Hashtbl.fold
            (fun k v acc -> match v with Copy s when s = d -> k :: acc | _ -> acc)
            env []
        in
        List.iter (Hashtbl.remove env) stale
      in
      let kill_float d =
        Hashtbl.remove fenv d;
        let stale =
          Hashtbl.fold
            (fun k v acc ->
              match v with Fcopy s when s = d -> k :: acc | _ -> acc)
            fenv []
        in
        List.iter (Hashtbl.remove fenv) stale
      in
      let subst_operand = function
        | Ir.Otemp t -> (
          match const t with Some k -> Ir.Oimm k | None -> Ir.Otemp (root t))
        | Ir.Oimm _ as o -> o
      in
      let subst_addr = function
        | Ir.Abase (t, o) -> Ir.Abase (root t, o)
        | a -> a
      in
      let rewrite (i : Ir.ins) : Ir.ins =
        match i with
        | Li _ -> i
        | Mov (d, s) -> (
          let s = root s in
          match const s with Some k -> mark i (Li (d, k)) | None -> mark i (Mov (d, s)))
        | Bin (op, d, a, b) -> (
          let a = root a in
          let b = subst_operand b in
          match (const a, b) with
          | Some ka, Oimm kb -> (
            match fold_bin op ka kb with
            | Some v -> mark i (Li (d, v))
            | None -> mark i (Bin (op, d, a, b)))
          | _ -> (
            (* Algebraic identities. *)
            match (op, b) with
            | (Add | Sub | Or | Xor | Shl | Shr | Shra), Oimm 0 ->
              mark i (Mov (d, a))
            | And, Oimm 0 -> mark i (Li (d, 0))
            | Mul, Oimm 0 -> mark i (Li (d, 0))
            | (Mul | Div), Oimm 1 -> mark i (Mov (d, a))
            | Mod, Oimm 1 -> mark i (Li (d, 0))
            | Sub, Otemp b' when b' = a -> mark i (Li (d, 0))
            | Xor, Otemp b' when b' = a -> mark i (Li (d, 0))
            | And, Otemp b' when b' = a -> mark i (Mov (d, a))
            | Or, Otemp b' when b' = a -> mark i (Mov (d, a))
            | (Add | Mul), Otemp _ -> (
              (* Canonicalize constants to the right via commutativity. *)
              match (const a, b) with
              | Some ka, Otemp b' -> mark i (Bin (op, d, b', Oimm ka))
              | _ -> mark i (Bin (op, d, a, b)))
            | _ -> mark i (Bin (op, d, a, b))))
        | Not (d, s) -> (
          let s = root s in
          match const s with
          | Some k -> mark i (Li (d, norm (lnot k)))
          | None -> mark i (Not (d, s)))
        | Neg (d, s) -> (
          let s = root s in
          match const s with
          | Some k -> mark i (Li (d, norm (-k)))
          | None -> mark i (Neg (d, s)))
        | Setcmp (c, d, a, b) -> (
          let a = root a in
          let b = subst_operand b in
          match (const a, b) with
          | Some ka, Oimm kb ->
            mark i (Li (d, if eval_cond c ka kb then 1 else 0))
          | _ -> mark i (Setcmp (c, d, a, b)))
        | Load (w, d, a) -> Load (w, d, subst_addr a)
        | Store (w, s, a) -> Store (w, root s, subst_addr a)
        | Lea (d, a) -> Lea (d, subst_addr a)
        | Fli _ -> i
        | Fmov (d, s) -> (
          let s = froot s in
          match fconst s with
          | Some k -> mark i (Fli (d, k))
          | None -> mark i (Fmov (d, s)))
        | Fbin (op, d, a, b) -> (
          let a = froot a in
          let b = froot b in
          match (fconst a, fconst b) with
          | Some ka, Some kb ->
            let v =
              match op with
              | Fadd -> ka +. kb
              | Fsub -> ka -. kb
              | Fmul -> ka *. kb
              | Fdiv -> ka /. kb
            in
            mark i (Fli (d, v))
          | _ -> mark i (Fbin (op, d, a, b)))
        | Fneg (d, s) -> (
          let s = froot s in
          match fconst s with
          | Some k -> mark i (Fli (d, -.k))
          | None -> mark i (Fneg (d, s)))
        | Fsetcmp (c, d, a, b) -> Fsetcmp (c, d, froot a, froot b)
        | Fload (d, a) -> Fload (d, subst_addr a)
        | Fstore (s, a) -> Fstore (froot s, subst_addr a)
        | Itof (d, s) -> (
          let s = root s in
          match const s with
          | Some k -> mark i (Fli (d, float_of_int k))
          | None -> mark i (Itof (d, s)))
        | Ftoi (d, s) -> Ftoi (d, froot s)
        | Call (r, name, args) ->
          Call
            ( r,
              name,
              List.map
                (function
                  | Ir.Aint t -> Ir.Aint (root t)
                  | Ir.Afloat t -> Ir.Afloat (froot t))
                args )
        | Trap (n, a) ->
          Trap
            ( n,
              Option.map
                (function
                  | Ir.Aint t -> Ir.Aint (root t)
                  | Ir.Afloat t -> Ir.Afloat (froot t))
                a )
      in
      let record (i : Ir.ins) =
        (match Ir.defs i with Some d -> kill_int d | None -> ());
        (match Ir.fdefs i with Some d -> kill_float d | None -> ());
        match i with
        | Li (d, k) -> Hashtbl.replace env d (Const k)
        | Mov (d, s) when d <> s -> Hashtbl.replace env d (Copy s)
        | Fli (d, k) -> Hashtbl.replace fenv d (Fconst k)
        | Fmov (d, s) when d <> s -> Hashtbl.replace fenv d (Fcopy s)
        | _ -> ()
      in
      b.ins <-
        List.map
          (fun i ->
            let i' = rewrite i in
            record i';
            i')
          b.ins;
      b.term <-
        (match b.term with
        | Bif (t, l1, l2) -> (
          let t = root t in
          match const t with
          | Some 0 ->
            changed := true;
            Jmp l2
          | Some _ ->
            changed := true;
            Jmp l1
          | None -> Bif (t, l1, l2))
        | Ret (Some (Aint t)) -> Ret (Some (Aint (root t)))
        | Ret (Some (Afloat t)) -> Ret (Some (Afloat (froot t)))
        | t -> t))
    f.blocks;
  !changed

(* Local CSE ---------------------------------------------------------------- *)

type expr_key =
  | Kbin of Ir.binop * Ir.temp * Ir.operand
  | Ksetcmp of Insn.cond * Ir.temp * Ir.operand
  | Knot of Ir.temp
  | Kneg of Ir.temp
  | Klea of Ir.addr
  | Kload of Repro_core.Insn.load_width * Ir.addr
  | Kfbin of Insn.fbin * Ir.ftemp * Ir.ftemp
  | Kfneg of Ir.ftemp
  | Kitof of Ir.temp
  | Kftoi of Ir.ftemp
  | Kfload of Ir.addr

type cse_val = Vint of Ir.temp | Vfloat of Ir.ftemp

let key_of (i : Ir.ins) : expr_key option =
  match i with
  | Bin (op, _, a, b) -> (
    match (op, b) with
    | (Add | And | Or | Xor | Mul), Otemp b' when b' < a ->
      Some (Kbin (op, b', Otemp a))
    | _ -> Some (Kbin (op, a, b)))
  | Setcmp (c, _, a, b) -> Some (Ksetcmp (c, a, b))
  | Not (_, s) -> Some (Knot s)
  | Neg (_, s) -> Some (Kneg s)
  | Lea (_, a) -> Some (Klea a)
  | Load (w, _, a) -> Some (Kload (w, a))
  | Fbin (op, _, a, b) -> Some (Kfbin (op, a, b))
  | Fneg (_, s) -> Some (Kfneg s)
  | Itof (_, s) -> Some (Kitof s)
  | Ftoi (_, s) -> Some (Kftoi s)
  | Fload (_, a) -> Some (Kfload a)
  | Li _ | Mov _ | Store _ | Fli _ | Fmov _ | Fsetcmp _ | Fstore _ | Call _
  | Trap _ -> None

let key_sources = function
  | Kbin (_, a, Otemp b) -> ([ a; b ], [])
  | Kbin (_, a, Oimm _) -> ([ a ], [])
  | Ksetcmp (_, a, Otemp b) -> ([ a; b ], [])
  | Ksetcmp (_, a, Oimm _) -> ([ a ], [])
  | Knot s | Kneg s | Kitof s -> ([ s ], [])
  | Klea (Abase (t, _)) | Kload (_, Abase (t, _)) | Kfload (Abase (t, _)) ->
    ([ t ], [])
  | Klea _ | Kload _ | Kfload _ -> ([], [])
  | Kfbin (_, a, b) -> ([], [ a; b ])
  | Kfneg s | Kftoi s -> ([], [ s ])

let is_load_key = function
  | Kload _ | Kfload _ -> true
  | Kbin _ | Ksetcmp _ | Knot _ | Kneg _ | Klea _ | Kfbin _ | Kfneg _
  | Kitof _ | Kftoi _ -> false

let local_cse (f : Ir.func) =
  let changed = ref false in
  List.iter
    (fun (b : Ir.block) ->
      let table : (expr_key, cse_val) Hashtbl.t = Hashtbl.create 16 in
      let kill_loads () =
        let stale =
          Hashtbl.fold
            (fun k _ acc -> if is_load_key k then k :: acc else acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      let kill_temp ~is_float d =
        let stale =
          Hashtbl.fold
            (fun k v acc ->
              let ints, floats = key_sources k in
              let src_hit =
                if is_float then List.mem d floats else List.mem d ints
              in
              let val_hit =
                match v with
                | Vint t -> (not is_float) && t = d
                | Vfloat t -> is_float && t = d
              in
              if src_hit || val_hit then k :: acc else acc)
            table []
        in
        List.iter (Hashtbl.remove table) stale
      in
      b.ins <-
        List.map
          (fun (i : Ir.ins) ->
            let replaced =
              match key_of i with
              | Some k -> (
                match (Hashtbl.find_opt table k, Ir.defs i, Ir.fdefs i) with
                | Some (Vint prev), Some d, _ when prev <> d ->
                  changed := true;
                  Some (Ir.Mov (d, prev))
                | Some (Vfloat prev), _, Some d when prev <> d ->
                  changed := true;
                  Some (Ir.Fmov (d, prev))
                | _ -> None)
              | None -> None
            in
            let i' = Option.value replaced ~default:i in
            (* Invalidate and record. *)
            (match i' with
            | Store _ | Call _ | Trap _ -> kill_loads ()
            | _ -> ());
            (match Ir.defs i' with
            | Some d -> kill_temp ~is_float:false d
            | None -> ());
            (match Ir.fdefs i' with
            | Some d -> kill_temp ~is_float:true d
            | None -> ());
            (if replaced = None then
               match (key_of i', Ir.defs i', Ir.fdefs i') with
               | Some k, Some d, _ -> Hashtbl.replace table k (Vint d)
               | Some k, None, Some d -> Hashtbl.replace table k (Vfloat d)
               | _ -> ());
            i')
          b.ins)
    f.blocks;
  !changed

(* Dead code ---------------------------------------------------------------- *)

let dead_code (f : Ir.func) =
  let changed = ref false in
  let ilive = Liveness.compute f Liveness.int_class in
  let flive = Liveness.compute f Liveness.float_class in
  List.iter
    (fun (b : Ir.block) ->
      let live_i =
        ref
          (Iset.union
             (Hashtbl.find ilive.live_out b.lbl)
             (Iset.of_list (Liveness.int_class.term_use b.term)))
      in
      let live_f =
        ref
          (Iset.union
             (Hashtbl.find flive.live_out b.lbl)
             (Iset.of_list (Liveness.float_class.term_use b.term)))
      in
      let keep = ref [] in
      List.iter
        (fun (i : Ir.ins) ->
          let dead =
            Ir.is_pure_or_load i
            && (match (Ir.defs i, Ir.fdefs i) with
               | Some d, _ -> not (Iset.mem d !live_i)
               | None, Some d -> not (Iset.mem d !live_f)
               | None, None -> false)
          in
          let trivial =
            match i with
            | Mov (d, s) -> d = s
            | Fmov (d, s) -> d = s
            | _ -> false
          in
          if dead || trivial then changed := true
          else begin
            keep := i :: !keep;
            (match Ir.defs i with
            | Some d -> live_i := Iset.remove d !live_i
            | None -> ());
            (match Ir.fdefs i with
            | Some d -> live_f := Iset.remove d !live_f
            | None -> ());
            List.iter (fun u -> live_i := Iset.add u !live_i) (Ir.uses i);
            List.iter (fun u -> live_f := Iset.add u !live_f) (Ir.fuses i)
          end)
        (List.rev b.ins);
      b.ins <- !keep)
    f.blocks;
  !changed

(* Loop-invariant code motion ------------------------------------------------ *)

let def_counts (f : Ir.func) =
  let ints = Hashtbl.create 64 in
  let floats = Hashtbl.create 64 in
  let bump h k =
    Hashtbl.replace h k (1 + Option.value (Hashtbl.find_opt h k) ~default:0)
  in
  Ir.iter_all_ins f (fun i ->
      (match Ir.defs i with Some d -> bump ints d | None -> ());
      match Ir.fdefs i with Some d -> bump floats d | None -> ());
  List.iter
    (function Ir.Aint t -> bump ints t | Ir.Afloat t -> bump floats t)
    f.arg_temps;
  (ints, floats)

let licm (f : Ir.func) =
  let changed = ref false in
  let loops = Cfg.natural_loops f in
  let idefs, fdefs = def_counts f in
  List.iter
    (fun { Cfg.header; body } ->
      let bm = Ir.block_map f in
      let body_blocks =
        List.filter (fun (b : Ir.block) -> Iset.mem b.lbl body) f.blocks
      in
      (* Temps defined inside the loop. *)
      let defined_in = Hashtbl.create 32 in
      let fdefined_in = Hashtbl.create 32 in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun i ->
              (match Ir.defs i with
              | Some d -> Hashtbl.replace defined_in d ()
              | None -> ());
              match Ir.fdefs i with
              | Some d -> Hashtbl.replace fdefined_in d ()
              | None -> ())
            b.ins)
        body_blocks;
      let hoisted = ref [] in
      let hoisted_i = Hashtbl.create 16 in
      let hoisted_f = Hashtbl.create 16 in
      let invariant_temp t =
        (not (Hashtbl.mem defined_in t)) || Hashtbl.mem hoisted_i t
      in
      let invariant_ftemp t =
        (not (Hashtbl.mem fdefined_in t)) || Hashtbl.mem hoisted_f t
      in
      let pass () =
        let progress = ref false in
        List.iter
          (fun (b : Ir.block) ->
            let keep = ref [] in
            List.iter
              (fun (i : Ir.ins) ->
                let single_def =
                  match (Ir.defs i, Ir.fdefs i) with
                  | Some d, _ -> Hashtbl.find_opt idefs d = Some 1
                  | None, Some d -> Hashtbl.find_opt fdefs d = Some 1
                  | None, None -> false
                in
                let movable =
                  Ir.is_pure i && single_def
                  && List.for_all invariant_temp (Ir.uses i)
                  && List.for_all invariant_ftemp (Ir.fuses i)
                  && not
                       (match (Ir.defs i, Ir.fdefs i) with
                       | Some d, _ -> Hashtbl.mem hoisted_i d
                       | None, Some d -> Hashtbl.mem hoisted_f d
                       | None, None -> true)
                in
                if movable then begin
                  hoisted := i :: !hoisted;
                  (match Ir.defs i with
                  | Some d -> Hashtbl.replace hoisted_i d ()
                  | None -> ());
                  (match Ir.fdefs i with
                  | Some d -> Hashtbl.replace hoisted_f d ()
                  | None -> ());
                  progress := true
                end
                else keep := i :: !keep)
              b.ins;
            b.ins <- List.rev !keep)
          body_blocks;
        !progress
      in
      let rec fix () = if pass () then fix () in
      fix ();
      match !hoisted with
      | [] -> ()
      | moved ->
        changed := true;
        (* Create a preheader and retarget non-back-edge predecessors. *)
        let ph = Ir.fresh_label f in
        let preds = Cfg.predecessors f in
        let outside_preds =
          List.filter
            (fun p -> not (Iset.mem p body))
            (try Hashtbl.find preds header with Not_found -> [])
        in
        List.iter
          (fun p ->
            let pb = Hashtbl.find bm p in
            let retarget l = if l = header then ph else l in
            pb.Ir.term <-
              (match pb.Ir.term with
              | Jmp l -> Jmp (retarget l)
              | Bif (c, l1, l2) -> Bif (c, retarget l1, retarget l2)
              | Ret _ as t -> t))
          outside_preds;
        let ph_block = { Ir.lbl = ph; ins = List.rev moved; term = Jmp header } in
        (* Keep the entry block first. *)
        f.blocks <- (match f.blocks with
          | entry :: rest -> entry :: ph_block :: rest
          | [] -> [ ph_block ]))
    loops;
  !changed

(* Strength reduction -------------------------------------------------------- *)

let strength_reduce (f : Ir.func) =
  let changed = ref false in
  let expand_mul d a k =
    let pos = abs k in
    let finishing body =
      if k < 0 then begin
        let t = Ir.fresh_temp f in
        let body = List.map (Ir.map_ins_temps (fun x -> if x = d then t else x) Fun.id) body in
        body @ [ Ir.Neg (d, t) ]
      end
      else body
    in
    if k = 0 then Some [ Ir.Li (d, 0) ]
    else if k = 1 then Some [ Ir.Mov (d, a) ]
    else if k = -1 then Some [ Ir.Neg (d, a) ]
    else if Bitops.is_pow2 pos then
      Some (finishing [ Ir.Bin (Ir.Shl, d, a, Ir.Oimm (Bitops.log2 pos)) ])
    else begin
      (* Count set bits; decompose into at most three shifted terms, or a
         2^i - 2^j difference. *)
      let bits = List.filter (fun i -> pos land (1 lsl i) <> 0) (List.init 31 Fun.id) in
      match bits with
      | [ j; i ] ->
        let t1 = Ir.fresh_temp f in
        let t2 = Ir.fresh_temp f in
        Some
          (finishing
             [
               Ir.Bin (Ir.Shl, t1, a, Ir.Oimm i);
               Ir.Bin (Ir.Shl, t2, a, Ir.Oimm j);
               Ir.Bin (Ir.Add, d, t1, Ir.Otemp t2);
             ])
      | [ j; m; i ] ->
        let t1 = Ir.fresh_temp f in
        let t2 = Ir.fresh_temp f in
        let t3 = Ir.fresh_temp f in
        let t4 = Ir.fresh_temp f in
        Some
          (finishing
             [
               Ir.Bin (Ir.Shl, t1, a, Ir.Oimm i);
               Ir.Bin (Ir.Shl, t2, a, Ir.Oimm m);
               Ir.Bin (Ir.Add, t3, t1, Ir.Otemp t2);
               Ir.Bin (Ir.Shl, t4, a, Ir.Oimm j);
               Ir.Bin (Ir.Add, d, t3, Ir.Otemp t4);
             ])
      | _ ->
        if Bitops.is_pow2 (pos + 1) then begin
          (* k = 2^i - 1. *)
          let t1 = Ir.fresh_temp f in
          Some
            (finishing
               [
                 Ir.Bin (Ir.Shl, t1, a, Ir.Oimm (Bitops.log2 (pos + 1)));
                 Ir.Bin (Ir.Sub, d, t1, Ir.Otemp a);
               ])
        end
        else None
    end
  in
  let expand_div d a k =
    if k = 1 then Some [ Ir.Mov (d, a) ]
    else if k = -1 then Some [ Ir.Neg (d, a) ]
    else if k > 1 && Bitops.is_pow2 k then begin
      let s = Bitops.log2 k in
      let t1 = Ir.fresh_temp f in
      let t2 = Ir.fresh_temp f in
      let t3 = Ir.fresh_temp f in
      (* Signed division rounds toward zero: bias negative dividends by
         k - 1 before the arithmetic shift. *)
      Some
        [
          Ir.Bin (Ir.Shra, t1, a, Ir.Oimm 31);
          Ir.Bin (Ir.Shr, t2, t1, Ir.Oimm (32 - s));
          Ir.Bin (Ir.Add, t3, a, Ir.Otemp t2);
          Ir.Bin (Ir.Shra, d, t3, Ir.Oimm s);
        ]
    end
    else None
  in
  let expand_mod d a k =
    if k = 1 || k = -1 then Some [ Ir.Li (d, 0) ]
    else if k > 1 && Bitops.is_pow2 k then begin
      let s = Bitops.log2 k in
      let q = Ir.fresh_temp f in
      match expand_div q a k with
      | Some div_ins ->
        let t = Ir.fresh_temp f in
        Some
          (div_ins
          @ [ Ir.Bin (Ir.Shl, t, q, Ir.Oimm s); Ir.Bin (Ir.Sub, d, a, Ir.Otemp t) ])
      | None -> None
    end
    else None
  in
  List.iter
    (fun (b : Ir.block) ->
      b.ins <-
        List.concat_map
          (fun (i : Ir.ins) ->
            let expansion =
              match i with
              | Bin (Mul, d, a, Oimm k) -> expand_mul d a k
              | Bin (Div, d, a, Oimm k) -> expand_div d a k
              | Bin (Mod, d, a, Oimm k) -> expand_mod d a k
              | _ -> None
            in
            match expansion with
            | Some ins ->
              changed := true;
              ins
            | None -> [ i ])
          b.ins)
    f.blocks;
  !changed

(* Lower remaining multiplies and divides to library calls ------------------- *)

let lower_muldiv (f : Ir.func) =
  List.iter
    (fun (b : Ir.block) ->
      b.ins <-
        List.concat_map
          (fun (i : Ir.ins) ->
            match i with
            | Bin (((Mul | Div | Mod) as op), d, a, rhs) ->
              let name =
                match op with
                | Mul -> "__mulsi3"
                | Div -> "__divsi3"
                | Mod -> "__modsi3"
                | _ -> assert false
              in
              let brhs, pre =
                match rhs with
                | Otemp t -> (t, [])
                | Oimm k ->
                  let t = Ir.fresh_temp f in
                  (t, [ Ir.Li (t, k) ])
              in
              pre @ [ Ir.Call (Rint d, name, [ Aint a; Aint brhs ]) ]
            | _ -> [ i ])
          b.ins)
    f.blocks

type flags = {
  fold : bool;  (* constant folding / copy propagation *)
  cse : bool;
  dce : bool;
  do_licm : bool;
  strength : bool;
}

let all_flags = { fold = true; cse = true; dce = true; do_licm = true; strength = true }
let no_flags = { fold = false; cse = false; dce = false; do_licm = false; strength = false }

let optimize_with (fl : flags) (f : Ir.func) =
  Cfg.clean f;
  let simplify () = if fl.fold then ignore (local_simplify f) in
  let cse () = if fl.cse then ignore (local_cse f) in
  let dce () = if fl.dce then ignore (dead_code f) in
  let rec iterate n =
    if n > 0 then begin
      let c1 = fl.fold && local_simplify f in
      let c2 = fl.cse && local_cse f in
      let c3 = fl.dce && dead_code f in
      if c1 || c2 || c3 then iterate (n - 1)
    end
  in
  iterate 4;
  if fl.do_licm && licm f then begin
    simplify ();
    cse ();
    dce ()
  end;
  if fl.strength && strength_reduce f then begin
    simplify ();
    cse ();
    dce ()
  end;
  Cfg.clean f;
  lower_muldiv f;
  Cfg.clean f

let optimize ?(level = 2) (f : Ir.func) =
  optimize_with (if level > 0 then all_flags else no_flags) f
