let predecessors (f : Ir.func) =
  let preds = Hashtbl.create 16 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace preds b.lbl []) f.blocks;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b.lbl :: cur))
        (Ir.successors b.term))
    f.blocks;
  preds

let entry_label (f : Ir.func) =
  match f.blocks with
  | b :: _ -> b.lbl
  | [] -> invalid_arg "Cfg: function with no blocks"

let retarget_term map (t : Ir.term) : Ir.term =
  let r l = match Hashtbl.find_opt map l with Some l' -> l' | None -> l in
  match t with
  | Jmp l -> Jmp (r l)
  | Bif (c, l1, l2) -> Bif (c, r l1, r l2)
  | Ret _ as t -> t

let remove_unreachable f =
  let bm = Ir.block_map f in
  let seen = Hashtbl.create 16 in
  let rec dfs l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      match Hashtbl.find_opt bm l with
      | Some b -> List.iter dfs (Ir.successors b.Ir.term)
      | None -> invalid_arg (Printf.sprintf "Cfg: missing block L%d" l)
    end
  in
  dfs (entry_label f);
  f.blocks <- List.filter (fun (b : Ir.block) -> Hashtbl.mem seen b.lbl) f.blocks

let thread_jumps f =
  let bm = Ir.block_map f in
  (* Final destination of a jump chain through empty blocks. *)
  let redirect = Hashtbl.create 8 in
  let rec final l visiting =
    if Iset.mem l visiting then l
    else
      match Hashtbl.find_opt bm l with
      | Some { Ir.ins = []; term = Jmp l'; _ } when l' <> l ->
        final l' (Iset.add l visiting)
      | _ -> l
  in
  List.iter
    (fun (b : Ir.block) ->
      let dest = final b.lbl Iset.empty in
      if dest <> b.lbl then Hashtbl.replace redirect b.lbl dest)
    f.blocks;
  List.iter
    (fun (b : Ir.block) ->
      b.term <-
        (match retarget_term redirect b.term with
        | Bif (_, l1, l2) when l1 = l2 -> Jmp l1
        | t -> t))
    f.blocks

let merge_straight_line f =
  let changed = ref true in
  while !changed do
    changed := false;
    let preds = predecessors f in
    let bm = Ir.block_map f in
    let merged = Hashtbl.create 8 in
    List.iter
      (fun (b : Ir.block) ->
        if not (Hashtbl.mem merged b.lbl) then
          match b.term with
          | Jmp l when l <> b.lbl && not (Hashtbl.mem merged l) -> (
            match Hashtbl.find_opt preds l with
            | Some [ _ ] ->
              let succ = Hashtbl.find bm l in
              if succ.Ir.lbl <> entry_label f then begin
                b.ins <- b.ins @ succ.Ir.ins;
                b.term <- succ.Ir.term;
                Hashtbl.replace merged l ();
                changed := true
              end
            | _ -> ())
          | _ -> ())
      f.blocks;
    if Hashtbl.length merged > 0 then
      f.blocks <-
        List.filter (fun (b : Ir.block) -> not (Hashtbl.mem merged b.lbl)) f.blocks
  done

let clean f =
  thread_jumps f;
  remove_unreachable f;
  merge_straight_line f;
  remove_unreachable f

let dominators (f : Ir.func) =
  let labels = List.map (fun (b : Ir.block) -> b.lbl) f.blocks in
  let all = Iset.of_list labels in
  let entry = entry_label f in
  let preds = predecessors f in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace dom l (if l = entry then Iset.singleton entry else all))
    labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let ps = try Hashtbl.find preds l with Not_found -> [] in
          let inter =
            List.fold_left
              (fun acc p ->
                let dp = Hashtbl.find dom p in
                match acc with
                | None -> Some dp
                | Some s -> Some (Iset.inter s dp))
              None ps
          in
          let nd =
            match inter with
            | None -> Iset.singleton l
            | Some s -> Iset.add l s
          in
          if not (Iset.equal nd (Hashtbl.find dom l)) then begin
            Hashtbl.replace dom l nd;
            changed := true
          end
        end)
      labels
  done;
  dom

type loop = { header : Ir.label; body : Iset.t }

let natural_loops f =
  let dom = dominators f in
  let preds = predecessors f in
  let loops = Hashtbl.create 8 in
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun h ->
          if Iset.mem h (Hashtbl.find dom b.lbl) then begin
            (* Back edge b.lbl -> h: body = h plus nodes reaching b.lbl
               without passing through h. *)
            let body = ref (Iset.of_list [ h; b.lbl ]) in
            let rec walk n =
              if n <> h then
                List.iter
                  (fun p ->
                    if not (Iset.mem p !body) then begin
                      body := Iset.add p !body;
                      walk p
                    end)
                  (try Hashtbl.find preds n with Not_found -> [])
            in
            walk b.lbl;
            let cur =
              match Hashtbl.find_opt loops h with
              | Some s -> s
              | None -> Iset.empty
            in
            Hashtbl.replace loops h (Iset.union cur !body)
          end)
        (Ir.successors b.term))
    f.blocks;
  Hashtbl.fold (fun header body acc -> { header; body } :: acc) loops []
