(** Backward liveness dataflow over one register class (integer or float
    virtual registers). *)

type t = {
  live_in : (Ir.label, Iset.t) Hashtbl.t;
  live_out : (Ir.label, Iset.t) Hashtbl.t;
}

type cls = {
  def : Ir.ins -> Ir.temp option;
  use : Ir.ins -> Ir.temp list;
  term_use : Ir.term -> Ir.temp list;
}

val int_class : cls
val float_class : cls

val compute : Ir.func -> cls -> t

val backward_scan :
  Ir.block -> cls -> live_out:Iset.t -> (Ir.ins -> live:Iset.t -> unit) -> unit
(** Visit the block's instructions from last to first; [live] is the set live
    immediately {e after} each instruction.  Used by the interference builder
    and dead-code elimination. *)
