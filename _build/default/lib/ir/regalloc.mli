(** Graph-coloring register allocation (Chaitin-style, with iterated
    spilling), run separately for the integer and floating-point classes.

    The paper's compiler uses procedure-level allocation over a flat register
    file; the file size is the experiment knob (16 vs 32 registers,
    Section 3.3.1).  Temps live across a call may only receive callee-saved
    registers; spilled temps get frame slots and the code is rewritten with
    short-lived reload temps until coloring succeeds. *)

exception Spill_failure of string

type t = {
  int_assign : (Ir.temp, int) Hashtbl.t;
  float_assign : (Ir.ftemp, int) Hashtbl.t;
  spill_slot_int : (Ir.temp, int) Hashtbl.t;
      (** Slot ids of spilled original temps (informational). *)
  spill_slot_float : (Ir.ftemp, int) Hashtbl.t;
  used_callee_gpr : int list;
  used_callee_fpr : int list;
}

val allocate : Repro_core.Target.t -> Ir.func -> t
(** Mutates the function (spill code).  Every temp that remains in the
    function after return is in the assignment tables.
    @raise Spill_failure if coloring does not converge. *)
