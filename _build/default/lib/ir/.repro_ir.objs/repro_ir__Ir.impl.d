lib/ir/ir.ml: Buffer Hashtbl List Option Printf Repro_core String
