lib/ir/ir.mli: Hashtbl Repro_core
