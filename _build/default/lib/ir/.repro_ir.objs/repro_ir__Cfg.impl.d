lib/ir/cfg.ml: Hashtbl Ir Iset List Printf
