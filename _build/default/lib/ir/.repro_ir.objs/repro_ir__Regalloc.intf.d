lib/ir/regalloc.mli: Hashtbl Ir Repro_core
