lib/ir/liveness.mli: Hashtbl Ir Iset
