lib/ir/liveness.ml: Hashtbl Ir Iset List
