lib/ir/iset.ml: Int Set
