lib/ir/regalloc.ml: Fun Hashtbl Ir Iset List Liveness Option Printf Repro_core
