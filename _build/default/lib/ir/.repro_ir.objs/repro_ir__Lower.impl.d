lib/ir/lower.ml: Bytes Char Hashtbl Int64 Ir List Option Printf Repro_core Repro_minic String
