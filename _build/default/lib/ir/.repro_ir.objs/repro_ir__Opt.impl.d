lib/ir/opt.ml: Cfg Fun Hashtbl Ir Iset List Liveness Option Repro_core Repro_util
