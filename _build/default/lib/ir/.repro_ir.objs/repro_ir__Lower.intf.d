lib/ir/lower.mli: Bytes Ir Repro_minic
