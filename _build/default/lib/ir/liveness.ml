type t = {
  live_in : (Ir.label, Iset.t) Hashtbl.t;
  live_out : (Ir.label, Iset.t) Hashtbl.t;
}

type cls = {
  def : Ir.ins -> Ir.temp option;
  use : Ir.ins -> Ir.temp list;
  term_use : Ir.term -> Ir.temp list;
}

let int_class =
  {
    def = Ir.defs;
    use = Ir.uses;
    term_use =
      (function
      | Ir.Bif (t, _, _) -> [ t ]
      | Ir.Ret (Some (Ir.Aint t)) -> [ t ]
      | Ir.Ret (Some (Ir.Afloat _)) | Ir.Ret None | Ir.Jmp _ -> []);
  }

let float_class =
  {
    def = Ir.fdefs;
    use = Ir.fuses;
    term_use =
      (function
      | Ir.Ret (Some (Ir.Afloat t)) -> [ t ]
      | Ir.Ret (Some (Ir.Aint _)) | Ir.Ret None | Ir.Jmp _ | Ir.Bif _ -> []);
  }

(* use/def summary of a whole block. *)
let block_summary (b : Ir.block) cls =
  let use = ref Iset.empty in
  let def = ref Iset.empty in
  List.iter
    (fun i ->
      (* Process in reverse at the end; build forward instead: a use counts
         only if not already defined above. *)
      List.iter
        (fun u -> if not (Iset.mem u !def) then use := Iset.add u !use)
        (cls.use i);
      match cls.def i with Some d -> def := Iset.add d !def | None -> ())
    b.ins;
  (* Terminator uses happen after all instructions. *)
  List.iter
    (fun u -> if not (Iset.mem u !def) then use := Iset.add u !use)
    (cls.term_use b.term);
  (!use, !def)

let compute (f : Ir.func) cls =
  let live_in = Hashtbl.create 16 in
  let live_out = Hashtbl.create 16 in
  let summaries = Hashtbl.create 16 in
  List.iter
    (fun (b : Ir.block) ->
      Hashtbl.replace summaries b.lbl (block_summary b cls);
      Hashtbl.replace live_in b.lbl Iset.empty;
      Hashtbl.replace live_out b.lbl Iset.empty)
    f.blocks;
  let changed = ref true in
  let rev_blocks = List.rev f.blocks in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Ir.block) ->
        let out =
          List.fold_left
            (fun acc s -> Iset.union acc (Hashtbl.find live_in s))
            Iset.empty
            (Ir.successors b.term)
        in
        let use, def = Hashtbl.find summaries b.lbl in
        let inn = Iset.union use (Iset.diff out def) in
        if not (Iset.equal inn (Hashtbl.find live_in b.lbl)) then begin
          Hashtbl.replace live_in b.lbl inn;
          changed := true
        end;
        Hashtbl.replace live_out b.lbl out)
      rev_blocks
  done;
  { live_in; live_out }

let backward_scan (b : Ir.block) cls ~live_out visit =
  let live = ref (Iset.union live_out (Iset.of_list (cls.term_use b.term))) in
  List.iter
    (fun i ->
      visit i ~live:!live;
      (match cls.def i with Some d -> live := Iset.remove d !live | None -> ());
      List.iter (fun u -> live := Iset.add u !live) (cls.use i))
    (List.rev b.ins)
