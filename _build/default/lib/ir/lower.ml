module Ast = Repro_minic.Ast
module Insn = Repro_core.Insn
open Ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type data_item = { dsym : string; dbytes : Bytes.t; dalign : int }
type unit_ir = { funcs : Ir.func list; data : data_item list }

let rec sizeof = function
  | Tvoid -> fail "sizeof void"
  | Tint -> 4
  | Tchar -> 1
  | Tdouble -> 8
  | Tptr _ -> 4
  | Tarr (t, n) -> n * sizeof t

let alignof = function
  | Tvoid -> 1
  | Tint | Tptr _ -> 4
  | Tchar -> 1
  | Tdouble -> 8
  | Tarr _ as t ->
    let rec elem = function Tarr (t, _) -> elem t | t -> t in
    (match elem t with Tchar -> 1 | Tdouble -> 8 | _ -> 4)

(* Storage of a name. *)
type storage =
  | Stemp of Ir.temp * ty  (* scalar int/char/pointer local *)
  | Sftemp of Ir.ftemp  (* double local *)
  | Sslot of int * ty  (* frame slot: arrays, address-taken scalars *)
  | Sglobal of string * ty

type sig_ = { sret : ty; sparams : ty list }

type env = {
  globals : (string, ty) Hashtbl.t;
  sigs : (string, sig_) Hashtbl.t;
  mutable scopes : (string, storage) Hashtbl.t list;
  mutable strings : (string * string) list;  (* literal -> symbol *)
  mutable next_string : int;
}

let lookup env name =
  let rec scan = function
    | [] -> (
      match Hashtbl.find_opt env.globals name with
      | Some ty -> Sglobal (name, ty)
      | None -> fail "unknown identifier '%s'" name)
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some s -> s
      | None -> scan rest)
  in
  scan env.scopes

let intern_string env s =
  match List.assoc_opt s env.strings with
  | Some sym -> sym
  | None ->
    let sym = Printf.sprintf "_str_%d" env.next_string in
    env.next_string <- env.next_string + 1;
    env.strings <- (s, sym) :: env.strings;
    sym

(* Block builder ---------------------------------------------------------- *)

type builder = {
  f : Ir.func;
  mutable cur_lbl : Ir.label;
  mutable cur_ins : Ir.ins list;  (* reversed *)
  mutable done_blocks : Ir.block list;  (* reversed *)
  mutable terminated : bool;
}

let emit b i = if not b.terminated then b.cur_ins <- i :: b.cur_ins

let finish b term =
  if not b.terminated then begin
    b.done_blocks <-
      { Ir.lbl = b.cur_lbl; ins = List.rev b.cur_ins; term } :: b.done_blocks;
    b.terminated <- true
  end

let start b lbl =
  if not b.terminated then finish b (Ir.Jmp lbl);
  b.cur_lbl <- lbl;
  b.cur_ins <- [];
  b.terminated <- false

(* Values ------------------------------------------------------------------ *)

type value = Vint of Ir.temp * ty | Vfloat of Ir.ftemp

let is_float_ty = function Tdouble -> true | _ -> false

let value_ty = function Vint (_, ty) -> ty | Vfloat _ -> Tdouble

(* Lvalue destinations. *)
type lvalue =
  | Ltemp of Ir.temp * ty
  | Lftemp of Ir.ftemp
  | Lmem of Ir.addr * ty  (* scalar of type ty in memory *)

let load_width_of_ty = function
  | Tchar -> Insn.Lb
  | Tint | Tptr _ -> Insn.Lw
  | t -> fail "cannot load %s as integer" (ty_to_string t)

let store_width_of_ty = function
  | Tchar -> Insn.Sb
  | Tint | Tptr _ -> Insn.Sw
  | t -> fail "cannot store %s as integer" (ty_to_string t)

let decay = function Tarr (t, _) -> Tptr t | t -> t

(* Lowering context for one function. *)
type ctx = {
  env : env;
  b : builder;
  ret_ty : ty;
  addr_taken : string list;
  mutable break_lbl : Ir.label list;
  mutable continue_lbl : Ir.label list;
}

let ftmp ctx = Ir.fresh_ftemp ctx.b.f
let itmp ctx = Ir.fresh_temp ctx.b.f

let as_float ctx v =
  match v with
  | Vfloat t -> t
  | Vint (t, _) ->
    let d = ftmp ctx in
    emit ctx.b (Ir.Itof (d, t));
    d

let as_int ctx v =
  match v with
  | Vint (t, _) -> t
  | Vfloat ft ->
    let d = itmp ctx in
    emit ctx.b (Ir.Ftoi (d, ft));
    d

let const_int ctx v =
  let t = itmp ctx in
  emit ctx.b (Ir.Li (t, v));
  t

let ir_binop_of : Ast.binop -> Ir.binop = function
  | Add -> Ir.Add
  | Sub -> Ir.Sub
  | Mul -> Ir.Mul
  | Div -> Ir.Div
  | Mod -> Ir.Mod
  | Band -> Ir.And
  | Bor -> Ir.Or
  | Bxor -> Ir.Xor
  | Shl -> Ir.Shl
  | Shr -> Ir.Shra (* C >> on signed int: arithmetic *)
  | Lt | Le | Gt | Ge | Eq | Ne | Land | Lor -> fail "not an arithmetic op"

let cond_of : Ast.binop -> Insn.cond = function
  | Lt -> Insn.Lt
  | Le -> Insn.Le
  | Gt -> Insn.Gt
  | Ge -> Insn.Ge
  | Eq -> Insn.Eq
  | Ne -> Insn.Ne
  | _ -> fail "not a comparison"

let is_cmp = function
  | Lt | Le | Gt | Ge | Eq | Ne -> true
  | _ -> false

(* Static constant evaluation (for global initializers and Oimm folding). *)
let rec const_eval = function
  | Intlit n -> Some n
  | Charlit c -> Some (Char.code c)
  | Un (Neg, e) -> Option.map (fun v -> -v) (const_eval e)
  | Un (Bnot, e) -> Option.map lnot (const_eval e)
  | Bin (op, a, b) -> (
    match (const_eval a, const_eval b) with
    | Some x, Some y -> (
      match op with
      | Add -> Some (x + y)
      | Sub -> Some (x - y)
      | Mul -> Some (x * y)
      | Div -> if y = 0 then None else Some (x / y)
      | Mod -> if y = 0 then None else Some (x mod y)
      | Band -> Some (x land y)
      | Bor -> Some (x lor y)
      | Bxor -> Some (x lxor y)
      | Shl -> Some (x lsl (y land 31))
      | Shr -> Some (x asr (y land 31))
      | _ -> None)
    | _ -> None)
  | Cast (Tint, e) -> const_eval e
  | _ -> None

let rec const_feval = function
  | Floatlit f -> Some f
  | Intlit n -> Some (float_of_int n)
  | Charlit c -> Some (float_of_int (Char.code c))
  | Un (Neg, e) -> Option.map (fun v -> -.v) (const_feval e)
  | Cast (Tdouble, e) -> const_feval e
  | _ -> None

(* Expression lowering ----------------------------------------------------- *)

let rec lower_expr ctx (e : expr) : value =
  match e with
  | Intlit n -> Vint (const_int ctx n, Tint)
  | Charlit c -> Vint (const_int ctx (Char.code c), Tchar)
  | Floatlit f ->
    let d = ftmp ctx in
    emit ctx.b (Ir.Fli (d, f));
    Vfloat d
  | Strlit s ->
    let sym = intern_string ctx.env s in
    let t = itmp ctx in
    emit ctx.b (Ir.Lea (t, Ir.Aglobal (sym, 0)));
    Vint (t, Tptr Tchar)
  | Var _ | Index _ | Deref _ -> lower_rvalue_of_lvalue ctx e
  | Addrof e -> (
    match lower_lvalue ctx e with
    | Lmem (addr, ty) ->
      let t = itmp ctx in
      emit ctx.b (Ir.Lea (t, addr));
      Vint (t, Tptr ty)
    | Ltemp _ | Lftemp _ -> fail "cannot take address of register variable")
  | Cast (ty, e) -> lower_cast ctx ty e
  | Un (Neg, e) -> (
    match lower_expr ctx e with
    | Vfloat s ->
      let d = ftmp ctx in
      emit ctx.b (Ir.Fneg (d, s));
      Vfloat d
    | Vint (s, _) ->
      let d = itmp ctx in
      emit ctx.b (Ir.Neg (d, s));
      Vint (d, Tint))
  | Un (Bnot, e) ->
    let s = as_int ctx (lower_expr ctx e) in
    let d = itmp ctx in
    emit ctx.b (Ir.Not (d, s));
    Vint (d, Tint)
  | Un (Lnot, e) ->
    let s = as_int ctx (lower_expr ctx e) in
    let d = itmp ctx in
    emit ctx.b (Ir.Setcmp (Insn.Eq, d, s, Ir.Oimm 0));
    Vint (d, Tint)
  | Bin ((Land | Lor), _, _) | Bin ((Lt | Le | Gt | Ge | Eq | Ne), _, _) ->
    (* Boolean-valued: materialize through control flow for &&/||, directly
       for comparisons. *)
    lower_bool_value ctx e
  | Bin (op, a, b) -> lower_arith ctx op a b
  | Assign (lhs, rhs) ->
    let lv = lower_lvalue ctx lhs in
    let v = lower_expr ctx rhs in
    store_lvalue ctx lv v
  | Opassign (op, lhs, rhs) ->
    let lv = lower_lvalue ctx lhs in
    let cur = read_lvalue ctx lv in
    let v = apply_arith ctx op cur (lower_expr ctx rhs) in
    store_lvalue ctx lv v
  | Incdec (is_incr, is_pre, lhs) ->
    let lv = lower_lvalue ctx lhs in
    let cur = read_lvalue ctx lv in
    let delta =
      match value_ty cur with
      | Tptr t -> sizeof t
      | _ -> 1
    in
    let op : Ast.binop = if is_incr then Add else Sub in
    let updated = apply_arith ctx op cur (Vint (const_int ctx delta, Tint)) in
    let stored = store_lvalue ctx lv updated in
    if is_pre then stored
    else begin
      (* Post-increment: the value is the original.  [cur] already holds it
         in a temp that the store did not overwrite (stores write fresh
         temps or memory). *)
      cur
    end
  | Cond (c, a, b) ->
    let l1 = Ir.fresh_label ctx.b.f in
    let l2 = Ir.fresh_label ctx.b.f in
    let lend = Ir.fresh_label ctx.b.f in
    (* Result class: float if either arm is float-typed. *)
    lower_cond ctx c ~tl:l1 ~fl:l2;
    start ctx.b l1;
    let va = lower_expr ctx a in
    (match va with
    | Vfloat _ ->
      let dst = ftmp ctx in
      let fa = as_float ctx va in
      emit ctx.b (Ir.Fmov (dst, fa));
      finish ctx.b (Ir.Jmp lend);
      start ctx.b l2;
      let vb = lower_expr ctx b in
      let fb = as_float ctx vb in
      emit ctx.b (Ir.Fmov (dst, fb));
      finish ctx.b (Ir.Jmp lend);
      start ctx.b lend;
      Vfloat dst
    | Vint (ta, ty) ->
      let dst = itmp ctx in
      emit ctx.b (Ir.Mov (dst, ta));
      finish ctx.b (Ir.Jmp lend);
      start ctx.b l2;
      let vb = lower_expr ctx b in
      let tb = as_int ctx vb in
      emit ctx.b (Ir.Mov (dst, tb));
      finish ctx.b (Ir.Jmp lend);
      start ctx.b lend;
      Vint (dst, ty))
  | Call (name, args) -> lower_call ctx name args

and lower_cast ctx ty e =
  match ty with
  | Tdouble -> Vfloat (as_float ctx (lower_expr ctx e))
  | Tint -> Vint (as_int ctx (lower_expr ctx e), Tint)
  | Tchar ->
    let t = as_int ctx (lower_expr ctx e) in
    let d1 = itmp ctx in
    let d2 = itmp ctx in
    emit ctx.b (Ir.Bin (Ir.Shl, d1, t, Ir.Oimm 24));
    emit ctx.b (Ir.Bin (Ir.Shra, d2, d1, Ir.Oimm 24));
    Vint (d2, Tchar)
  | Tptr t ->
    let v = lower_expr ctx e in
    Vint (as_int ctx v, Tptr t)
  | Tvoid | Tarr _ -> fail "invalid cast to %s" (ty_to_string ty)

(* Arithmetic with promotion and pointer scaling. *)
and lower_arith ctx op a b =
  let va = lower_expr ctx a in
  let vb = lower_expr ctx b in
  apply_arith ctx op va vb

and apply_arith ctx op va vb =
  match (va, vb, op) with
  | Vfloat _, _, (Add | Sub | Mul | Div) | _, Vfloat _, (Add | Sub | Mul | Div)
    ->
    let fa = as_float ctx va in
    let fb = as_float ctx vb in
    let d = ftmp ctx in
    let fop : Insn.fbin =
      match op with
      | Add -> Fadd
      | Sub -> Fsub
      | Mul -> Fmul
      | Div -> Fdiv
      | _ -> assert false
    in
    emit ctx.b (Ir.Fbin (fop, d, fa, fb));
    Vfloat d
  | Vfloat _, _, _ | _, Vfloat _, _ ->
    fail "invalid floating-point operation"
  | Vint (ta, tya), Vint (tb, tyb), _ -> (
    let scale t elem_ty =
      let size = sizeof elem_ty in
      if size = 1 then t
      else begin
        let d = itmp ctx in
        emit ctx.b
          (Ir.Bin (Ir.Mul, d, t, Ir.Oimm size));
        d
      end
    in
    match (decay tya, decay tyb, op) with
    | Tptr ety, (Tint | Tchar), (Add | Sub) ->
      let tb = scale tb ety in
      let d = itmp ctx in
      emit ctx.b (Ir.Bin (ir_binop_of op, d, ta, Ir.Otemp tb));
      Vint (d, Tptr ety)
    | (Tint | Tchar), Tptr ety, Add ->
      let ta = scale ta ety in
      let d = itmp ctx in
      emit ctx.b (Ir.Bin (Ir.Add, d, tb, Ir.Otemp ta));
      Vint (d, Tptr ety)
    | Tptr ety, Tptr _, Sub ->
      let d = itmp ctx in
      emit ctx.b (Ir.Bin (Ir.Sub, d, ta, Ir.Otemp tb));
      let size = sizeof ety in
      if size = 1 then Vint (d, Tint)
      else begin
        let q = itmp ctx in
        emit ctx.b (Ir.Bin (Ir.Div, q, d, Ir.Oimm size));
        Vint (q, Tint)
      end
    | _, _, _ ->
      let d = itmp ctx in
      emit ctx.b (Ir.Bin (ir_binop_of op, d, ta, Ir.Otemp tb));
      Vint (d, Tint))

(* Boolean-valued expression materialized as 0/1. *)
and lower_bool_value ctx e =
  match e with
  | Bin (op, a, b) when is_cmp op -> (
    let va = lower_expr ctx a in
    let vb = lower_expr ctx b in
    match (va, vb) with
    | Vfloat _, _ | _, Vfloat _ ->
      let fa = as_float ctx va in
      let fb = as_float ctx vb in
      let d = itmp ctx in
      emit ctx.b (Ir.Fsetcmp (cond_of op, d, fa, fb));
      Vint (d, Tint)
    | Vint (ta, _), Vint (tb, _) ->
      let d = itmp ctx in
      emit ctx.b (Ir.Setcmp (cond_of op, d, ta, Ir.Otemp tb));
      Vint (d, Tint))
  | Bin ((Land | Lor), _, _) ->
    let tl = Ir.fresh_label ctx.b.f in
    let fl = Ir.fresh_label ctx.b.f in
    let lend = Ir.fresh_label ctx.b.f in
    let d = itmp ctx in
    lower_cond ctx e ~tl ~fl;
    start ctx.b tl;
    emit ctx.b (Ir.Li (d, 1));
    finish ctx.b (Ir.Jmp lend);
    start ctx.b fl;
    emit ctx.b (Ir.Li (d, 0));
    finish ctx.b (Ir.Jmp lend);
    start ctx.b lend;
    Vint (d, Tint)
  | _ -> assert false

(* Condition lowering: branch to [tl] when true, [fl] when false. *)
and lower_cond ctx e ~tl ~fl =
  match e with
  | Bin (Land, a, b) ->
    let mid = Ir.fresh_label ctx.b.f in
    lower_cond ctx a ~tl:mid ~fl;
    start ctx.b mid;
    lower_cond ctx b ~tl ~fl
  | Bin (Lor, a, b) ->
    let mid = Ir.fresh_label ctx.b.f in
    lower_cond ctx a ~tl ~fl:mid;
    start ctx.b mid;
    lower_cond ctx b ~tl ~fl
  | Un (Lnot, a) -> lower_cond ctx a ~tl:fl ~fl:tl
  | Bin (op, _, _) when is_cmp op ->
    let v = lower_bool_value ctx e in
    finish ctx.b (Ir.Bif (as_int ctx v, tl, fl))
  | _ -> (
    match lower_expr ctx e with
    | Vint (t, _) -> finish ctx.b (Ir.Bif (t, tl, fl))
    | Vfloat f ->
      (* if (x) on a double: compare against 0.0. *)
      let z = ftmp ctx in
      emit ctx.b (Ir.Fli (z, 0.));
      let d = itmp ctx in
      emit ctx.b (Ir.Fsetcmp (Insn.Ne, d, f, z));
      finish ctx.b (Ir.Bif (d, tl, fl)))

(* Lvalues ----------------------------------------------------------------- *)

and lower_lvalue ctx (e : expr) : lvalue =
  match e with
  | Var name -> (
    match lookup ctx.env name with
    | Stemp (t, ty) -> Ltemp (t, ty)
    | Sftemp ft -> Lftemp ft
    | Sslot (id, ty) -> Lmem (Ir.Aslot (id, 0), ty)
    | Sglobal (sym, ty) -> Lmem (Ir.Aglobal (sym, 0), ty))
  | Deref e -> (
    let v = lower_expr ctx e in
    match value_ty v with
    | Tptr ty | Tarr (ty, _) -> Lmem (Ir.Abase (as_int ctx v, 0), ty)
    | t -> fail "cannot dereference %s" (ty_to_string t))
  | Index (a, i) -> (
    let base = lower_lvalue_addr ctx a in
    let elem_ty =
      match lower_lvalue_elem_ty ctx a with
      | Tarr (t, _) | Tptr t -> t
      | t -> fail "cannot index %s" (ty_to_string t)
    in
    let size = sizeof elem_ty in
    match const_eval i with
    | Some k -> (
      match base with
      | Ir.Abase (t, off) -> Lmem (Ir.Abase (t, off + (k * size)), elem_ty)
      | Ir.Aslot (s, off) -> Lmem (Ir.Aslot (s, off + (k * size)), elem_ty)
      | Ir.Aglobal (g, off) -> Lmem (Ir.Aglobal (g, off + (k * size)), elem_ty)
      )
    | None ->
      let iv = as_int ctx (lower_expr ctx i) in
      let scaled =
        if size = 1 then iv
        else begin
          let d = itmp ctx in
          emit ctx.b (Ir.Bin (Ir.Mul, d, iv, Ir.Oimm size));
          d
        end
      in
      let addr_t = itmp ctx in
      (match base with
      | Ir.Abase (t, off) ->
        emit ctx.b (Ir.Bin (Ir.Add, addr_t, t, Ir.Otemp scaled));
        Lmem (Ir.Abase (addr_t, off), elem_ty)
      | Ir.Aslot _ | Ir.Aglobal _ ->
        let baset = itmp ctx in
        emit ctx.b (Ir.Lea (baset, base));
        emit ctx.b (Ir.Bin (Ir.Add, addr_t, baset, Ir.Otemp scaled));
        Lmem (Ir.Abase (addr_t, 0), elem_ty)))
  | _ -> fail "expression is not an lvalue"

(* The address denoted by an array-ish expression (for indexing). *)
and lower_lvalue_addr ctx (e : expr) : Ir.addr =
  match e with
  | Var name -> (
    match lookup ctx.env name with
    | Sslot (id, _) -> Ir.Aslot (id, 0)
    | Sglobal (sym, Tarr _) -> Ir.Aglobal (sym, 0)
    | Sglobal (sym, Tptr _) ->
      (* Pointer global: load its value. *)
      let t = itmp ctx in
      emit ctx.b (Ir.Load (Insn.Lw, t, Ir.Aglobal (sym, 0)));
      Ir.Abase (t, 0)
    | Stemp (t, (Tptr _ | Tarr _)) -> Ir.Abase (t, 0)
    | Stemp (_, ty) | Sglobal (_, ty) ->
      fail "cannot index %s of type %s" name (ty_to_string ty)
    | Sftemp _ -> fail "cannot index a double")
  | _ -> (
    (* General expression: a pointer value, or a sub-array lvalue. *)
    match e with
    | Index _ | Deref _ -> (
      let inner_ty = lower_lvalue_elem_ty ctx e in
      match inner_ty with
      | Tarr _ -> (
        match lower_lvalue ctx e with
        | Lmem (addr, _) -> addr
        | Ltemp _ | Lftemp _ -> fail "array value in register")
      | _ -> (
        let v = lower_expr ctx e in
        Ir.Abase (as_int ctx v, 0)))
    | _ ->
      let v = lower_expr ctx e in
      Ir.Abase (as_int ctx v, 0))

(* Type of an expression used in array-indexing position. *)
and lower_lvalue_elem_ty ctx (e : expr) : ty =
  match e with
  | Var name -> (
    match lookup ctx.env name with
    | Stemp (_, ty) -> ty
    | Sftemp _ -> Tdouble
    | Sslot (_, ty) -> ty
    | Sglobal (_, ty) -> ty)
  | Index (a, _) -> (
    match lower_lvalue_elem_ty ctx a with
    | Tarr (t, _) | Tptr t -> t
    | t -> fail "cannot index %s" (ty_to_string t))
  | Deref e -> (
    match lower_lvalue_elem_ty ctx e with
    | Tptr t | Tarr (t, _) -> t
    | t -> fail "cannot dereference %s" (ty_to_string t))
  | Strlit _ -> Tptr Tchar
  | Call (name, _) -> (
    match Hashtbl.find_opt ctx.env.sigs name with
    | Some s -> s.sret
    | None -> fail "unknown function '%s'" name)
  | Addrof e -> Tptr (lower_lvalue_elem_ty ctx e)
  | Cast (ty, _) -> ty
  | Bin (_, a, b) -> (
    (* Pointer arithmetic keeps the pointer type. *)
    match lower_lvalue_elem_ty_opt ctx a with
    | Some (Tptr _ as t) | Some (Tarr _ as t) -> t
    | _ -> (
      match lower_lvalue_elem_ty_opt ctx b with
      | Some (Tptr _ as t) | Some (Tarr _ as t) -> t
      | _ -> Tint))
  | _ -> Tint

and lower_lvalue_elem_ty_opt ctx e =
  try Some (lower_lvalue_elem_ty ctx e) with Error _ -> None

and read_lvalue ctx (lv : lvalue) : value =
  match lv with
  | Ltemp (t, ty) ->
    (* Copy so later writes to the variable do not change this value. *)
    let d = itmp ctx in
    emit ctx.b (Ir.Mov (d, t));
    Vint (d, ty)
  | Lftemp ft ->
    let d = ftmp ctx in
    emit ctx.b (Ir.Fmov (d, ft));
    Vfloat d
  | Lmem (addr, ty) ->
    if is_float_ty ty then begin
      let d = ftmp ctx in
      emit ctx.b (Ir.Fload (d, addr));
      Vfloat d
    end
    else if (match ty with Tarr _ -> true | _ -> false) then begin
      (* Arrays decay to their address. *)
      let d = itmp ctx in
      emit ctx.b (Ir.Lea (d, addr));
      Vint (d, decay ty)
    end
    else begin
      let d = itmp ctx in
      emit ctx.b (Ir.Load (load_width_of_ty ty, d, addr));
      Vint (d, ty)
    end

and store_lvalue ctx (lv : lvalue) (v : value) : value =
  match lv with
  | Ltemp (t, ty) ->
    if is_float_ty ty then fail "type confusion in assignment";
    let src = as_int ctx v in
    emit ctx.b (Ir.Mov (t, src));
    Vint (src, ty)
  | Lftemp ft ->
    let src = as_float ctx v in
    emit ctx.b (Ir.Fmov (ft, src));
    Vfloat src
  | Lmem (addr, ty) ->
    if is_float_ty ty then begin
      let src = as_float ctx v in
      emit ctx.b (Ir.Fstore (src, addr));
      Vfloat src
    end
    else begin
      let src = as_int ctx v in
      emit ctx.b (Ir.Store (store_width_of_ty ty, src, addr));
      Vint (src, ty)
    end

and lower_rvalue_of_lvalue ctx e = read_lvalue ctx (lower_lvalue ctx e)

(* Calls ------------------------------------------------------------------- *)

and lower_call ctx name args =
  match (name, args) with
  | "exit", [ a ] ->
    let t = as_int ctx (lower_expr ctx a) in
    emit ctx.b (Ir.Trap (Repro_core.Trapcode.exit, Some (Ir.Aint t)));
    Vint (const_int ctx 0, Tint)
  | "print_int", [ a ] ->
    let t = as_int ctx (lower_expr ctx a) in
    emit ctx.b (Ir.Trap (Repro_core.Trapcode.put_int, Some (Ir.Aint t)));
    Vint (const_int ctx 0, Tint)
  | "print_char", [ a ] ->
    let t = as_int ctx (lower_expr ctx a) in
    emit ctx.b (Ir.Trap (Repro_core.Trapcode.put_char, Some (Ir.Aint t)));
    Vint (const_int ctx 0, Tint)
  | "print_double", [ a ] ->
    let t = as_float ctx (lower_expr ctx a) in
    emit ctx.b (Ir.Trap (Repro_core.Trapcode.put_float, Some (Ir.Afloat t)));
    Vint (const_int ctx 0, Tint)
  | _ -> (
    match Hashtbl.find_opt ctx.env.sigs name with
    | None -> fail "unknown function '%s'" name
    | Some s ->
      if List.length s.sparams <> List.length args then
        fail "arity mismatch calling '%s'" name;
      let lowered =
        List.map2
          (fun pty a ->
            let v = lower_expr ctx a in
            if is_float_ty pty then Ir.Afloat (as_float ctx v)
            else Ir.Aint (as_int ctx v))
          s.sparams args
      in
      let ret =
        match s.sret with
        | Tvoid -> Ir.Rnone
        | Tdouble -> Ir.Rfloat (ftmp ctx)
        | _ -> Ir.Rint (itmp ctx)
      in
      emit ctx.b (Ir.Call (ret, name, lowered));
      (match ret with
      | Ir.Rnone -> Vint (const_int ctx 0, Tint)
      | Ir.Rint t -> Vint (t, s.sret)
      | Ir.Rfloat f -> Vfloat f))

(* Statements -------------------------------------------------------------- *)

(* Scan for address-taken locals so they get slots. *)
let rec addr_taken_stmt acc = function
  | Sexpr e | Sreturn (Some e) -> addr_taken_expr acc e
  | Sdecl (_, _, Some e) -> addr_taken_expr acc e
  | Sdecl (_, _, None) | Sreturn None | Sbreak | Scontinue -> acc
  | Sif (c, a, b) ->
    let acc = addr_taken_expr acc c in
    let acc = List.fold_left addr_taken_stmt acc a in
    List.fold_left addr_taken_stmt acc b
  | Swhile (c, body) ->
    let acc = addr_taken_expr acc c in
    List.fold_left addr_taken_stmt acc body
  | Sfor (c, step, body) ->
    let acc = addr_taken_expr acc c in
    let acc = match step with Some e -> addr_taken_expr acc e | None -> acc in
    List.fold_left addr_taken_stmt acc body
  | Sdowhile (body, c) ->
    let acc = List.fold_left addr_taken_stmt acc body in
    addr_taken_expr acc c
  | Sblock body -> List.fold_left addr_taken_stmt acc body

and addr_taken_expr acc = function
  | Addrof (Var x) -> x :: acc
  | Addrof e -> addr_taken_expr acc e
  | Intlit _ | Charlit _ | Floatlit _ | Strlit _ | Var _ -> acc
  | Bin (_, a, b) | Assign (a, b) | Opassign (_, a, b) | Index (a, b) ->
    addr_taken_expr (addr_taken_expr acc a) b
  | Un (_, e) | Incdec (_, _, e) | Deref e | Cast (_, e) ->
    addr_taken_expr acc e
  | Cond (a, b, c) ->
    addr_taken_expr (addr_taken_expr (addr_taken_expr acc a) b) c
  | Call (_, args) -> List.fold_left addr_taken_expr acc args

let rec lower_stmt ctx (s : stmt) =
  match s with
  | Sexpr e -> ignore (lower_expr ctx e)
  | Sdecl (ty, name, init) ->
    let scope = List.hd ctx.env.scopes in
    let storage = declare_local ctx ty name in
    Hashtbl.replace scope name storage;
    (match init with
    | None -> ()
    | Some e ->
      let lv =
        match storage with
        | Stemp (t, ty) -> Ltemp (t, ty)
        | Sftemp ft -> Lftemp ft
        | Sslot (id, ty) -> Lmem (Ir.Aslot (id, 0), ty)
        | Sglobal _ -> assert false
      in
      ignore (store_lvalue ctx lv (lower_expr ctx e)))
  | Sif (c, then_, else_) ->
    let lt = Ir.fresh_label ctx.b.f in
    let lf = Ir.fresh_label ctx.b.f in
    let lend = Ir.fresh_label ctx.b.f in
    lower_cond ctx c ~tl:lt ~fl:lf;
    start ctx.b lt;
    in_scope ctx (fun () -> List.iter (lower_stmt ctx) then_);
    finish ctx.b (Ir.Jmp lend);
    start ctx.b lf;
    in_scope ctx (fun () -> List.iter (lower_stmt ctx) else_);
    finish ctx.b (Ir.Jmp lend);
    start ctx.b lend
  | Swhile (c, body) ->
    let lhead = Ir.fresh_label ctx.b.f in
    let lbody = Ir.fresh_label ctx.b.f in
    let lexit = Ir.fresh_label ctx.b.f in
    finish ctx.b (Ir.Jmp lhead);
    start ctx.b lhead;
    lower_cond ctx c ~tl:lbody ~fl:lexit;
    start ctx.b lbody;
    ctx.break_lbl <- lexit :: ctx.break_lbl;
    ctx.continue_lbl <- lhead :: ctx.continue_lbl;
    in_scope ctx (fun () -> List.iter (lower_stmt ctx) body);
    ctx.break_lbl <- List.tl ctx.break_lbl;
    ctx.continue_lbl <- List.tl ctx.continue_lbl;
    finish ctx.b (Ir.Jmp lhead);
    start ctx.b lexit
  | Sfor (c, step, body) ->
    let lhead = Ir.fresh_label ctx.b.f in
    let lbody = Ir.fresh_label ctx.b.f in
    let lstep = Ir.fresh_label ctx.b.f in
    let lexit = Ir.fresh_label ctx.b.f in
    finish ctx.b (Ir.Jmp lhead);
    start ctx.b lhead;
    lower_cond ctx c ~tl:lbody ~fl:lexit;
    start ctx.b lbody;
    ctx.break_lbl <- lexit :: ctx.break_lbl;
    ctx.continue_lbl <- lstep :: ctx.continue_lbl;
    in_scope ctx (fun () -> List.iter (lower_stmt ctx) body);
    ctx.break_lbl <- List.tl ctx.break_lbl;
    ctx.continue_lbl <- List.tl ctx.continue_lbl;
    finish ctx.b (Ir.Jmp lstep);
    start ctx.b lstep;
    (match step with Some e -> ignore (lower_expr ctx e) | None -> ());
    finish ctx.b (Ir.Jmp lhead);
    start ctx.b lexit
  | Sdowhile (body, c) ->
    let lbody = Ir.fresh_label ctx.b.f in
    let lcond = Ir.fresh_label ctx.b.f in
    let lexit = Ir.fresh_label ctx.b.f in
    finish ctx.b (Ir.Jmp lbody);
    start ctx.b lbody;
    ctx.break_lbl <- lexit :: ctx.break_lbl;
    ctx.continue_lbl <- lcond :: ctx.continue_lbl;
    in_scope ctx (fun () -> List.iter (lower_stmt ctx) body);
    ctx.break_lbl <- List.tl ctx.break_lbl;
    ctx.continue_lbl <- List.tl ctx.continue_lbl;
    finish ctx.b (Ir.Jmp lcond);
    start ctx.b lcond;
    lower_cond ctx c ~tl:lbody ~fl:lexit;
    start ctx.b lexit
  | Sreturn None -> finish ctx.b (Ir.Ret None)
  | Sreturn (Some e) ->
    let v = lower_expr ctx e in
    let a =
      if is_float_ty ctx.ret_ty then Ir.Afloat (as_float ctx v)
      else Ir.Aint (as_int ctx v)
    in
    finish ctx.b (Ir.Ret (Some a))
  | Sbreak -> (
    match ctx.break_lbl with
    | l :: _ -> finish ctx.b (Ir.Jmp l)
    | [] -> fail "break outside loop")
  | Scontinue -> (
    match ctx.continue_lbl with
    | l :: _ -> finish ctx.b (Ir.Jmp l)
    | [] -> fail "continue outside loop")
  | Sblock body -> in_scope ctx (fun () -> List.iter (lower_stmt ctx) body)

and in_scope ctx body =
  ctx.env.scopes <- Hashtbl.create 8 :: ctx.env.scopes;
  body ();
  ctx.env.scopes <- List.tl ctx.env.scopes

and declare_local ctx ty name =
  match ty with
  | Tarr _ ->
    let slot = Ir.fresh_slot ctx.b.f ~size:(sizeof ty) ~align:(alignof ty) in
    Sslot (slot.Ir.slot_id, ty)
  | Tdouble ->
    if is_addr_taken ctx name then begin
      let slot = Ir.fresh_slot ctx.b.f ~size:8 ~align:8 in
      Sslot (slot.Ir.slot_id, ty)
    end
    else Sftemp (ftmp ctx)
  | Tint | Tchar | Tptr _ ->
    if is_addr_taken ctx name then begin
      let slot = Ir.fresh_slot ctx.b.f ~size:(sizeof ty) ~align:(alignof ty) in
      Sslot (slot.Ir.slot_id, ty)
    end
    else Stemp (itmp ctx, ty)
  | Tvoid -> fail "void variable '%s'" name

and is_addr_taken ctx name = List.mem name ctx.addr_taken

(* Globals ----------------------------------------------------------------- *)

let put_i32 b off v =
  let v = v land 0xFFFFFFFF in
  Bytes.set_uint8 b off (v land 0xFF);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xFF)

let put_f64 b off v =
  let bits = Int64.bits_of_float v in
  for i = 0 to 7 do
    Bytes.set_uint8 b (off + i)
      (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
  done

let global_data ty name init : data_item =
  let size = sizeof ty in
  let b = Bytes.make size '\000' in
  let scalar_bytes off ty e =
    match ty with
    | Tdouble -> (
      match const_feval e with
      | Some f -> put_f64 b off f
      | None -> fail "global '%s': initializer must be constant" name)
    | Tchar -> (
      match const_eval e with
      | Some v -> Bytes.set_uint8 b off (v land 0xFF)
      | None -> fail "global '%s': initializer must be constant" name)
    | _ -> (
      match const_eval e with
      | Some v -> put_i32 b off v
      | None -> fail "global '%s': initializer must be constant" name)
  in
  (match (ty, init) with
  | _, None -> ()
  | Tarr (Tchar, n), Some (Istring s) ->
    if String.length s + 1 > n then fail "string too long for '%s'" name;
    Bytes.blit_string s 0 b 0 (String.length s)
  | Tarr (ety, n), Some (Iarray es) ->
    if List.length es > n then fail "too many initializers for '%s'" name;
    List.iteri (fun i e -> scalar_bytes (i * sizeof ety) ety e) es
  | _, Some (Iscalar e) -> scalar_bytes 0 ty e
  | _, Some _ -> fail "bad initializer for '%s'" name);
  { dsym = name; dbytes = b; dalign = alignof ty }

(* Functions --------------------------------------------------------------- *)

let lower_func env (fd : Ast.func) : Ir.func =
  let f : Ir.func =
    {
      name = fd.fname;
      arg_temps = [];
      ret_float = (match fd.fret with
                  | Tvoid -> None
                  | Tdouble -> Some true
                  | _ -> Some false);
      blocks = [];
      slots = [];
      next_temp = 0;
      next_ftemp = 0;
      next_label = 0;
    }
  in
  let entry = Ir.fresh_label f in
  let b =
    { f; cur_lbl = entry; cur_ins = []; done_blocks = []; terminated = false }
  in
  let addr_taken = List.fold_left addr_taken_stmt [] fd.fbody in
  let ctx =
    { env; b; ret_ty = fd.fret; break_lbl = []; continue_lbl = []; addr_taken }
  in
  env.scopes <- [ Hashtbl.create 8 ];
  (* Bind parameters. *)
  let args =
    List.map
      (fun (pty, pname) ->
        let storage = declare_local ctx pty pname in
        Hashtbl.replace (List.hd env.scopes) pname storage;
        match storage with
        | Stemp (t, _) -> Ir.Aint t
        | Sftemp ft -> Ir.Afloat ft
        | Sslot (id, ty) ->
          (* Address-taken parameter: bind via a temp, store to the slot. *)
          let t = itmp ctx in
          if is_float_ty ty then fail "address-taken double parameter";
          emit ctx.b (Ir.Store (store_width_of_ty ty, t, Ir.Aslot (id, 0)));
          Ir.Aint t
        | Sglobal _ -> assert false)
      fd.fparams
  in
  List.iter (lower_stmt ctx) fd.fbody;
  (* Implicit return. *)
  if not b.terminated then begin
    match fd.fret with
    | Tvoid -> finish b (Ir.Ret None)
    | Tdouble ->
      let z = ftmp ctx in
      emit b (Ir.Fli (z, 0.));
      finish b (Ir.Ret (Some (Ir.Afloat z)))
    | _ ->
      let z = itmp ctx in
      emit b (Ir.Li (z, 0));
      finish b (Ir.Ret (Some (Ir.Aint z)))
  end;
  env.scopes <- [];
  { f with arg_temps = args; blocks = List.rev b.done_blocks }

let lower_program (prog : Ast.program) : unit_ir =
  let env =
    {
      globals = Hashtbl.create 16;
      sigs = Hashtbl.create 16;
      scopes = [];
      strings = [];
      next_string = 0;
    }
  in
  (* First pass: collect signatures and globals. *)
  List.iter
    (function
      | Gfunc fd ->
        if Hashtbl.mem env.sigs fd.fname then
          fail "duplicate function '%s'" fd.fname;
        Hashtbl.replace env.sigs fd.fname
          { sret = fd.fret; sparams = List.map fst fd.fparams }
      | Gvar (ty, name, _) ->
        if Hashtbl.mem env.globals name then fail "duplicate global '%s'" name;
        Hashtbl.replace env.globals name ty)
    prog;
  if not (Hashtbl.mem env.sigs "main") then fail "no main function";
  let funcs = ref [] in
  let data = ref [] in
  List.iter
    (function
      | Gfunc fd -> funcs := lower_func env fd :: !funcs
      | Gvar (ty, name, init) -> data := global_data ty name init :: !data)
    prog;
  let string_data =
    List.map
      (fun (s, sym) ->
        let b = Bytes.make (String.length s + 1) '\000' in
        Bytes.blit_string s 0 b 0 (String.length s);
        { dsym = sym; dbytes = b; dalign = 1 })
      env.strings
  in
  { funcs = List.rev !funcs; data = List.rev !data @ string_data }
