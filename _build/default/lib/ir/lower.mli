(** Lowering from the mini-C AST to IR, with inline type checking.

    Scalar locals that are never address-taken become virtual registers;
    arrays and address-taken locals become frame slots.  [char] values are
    kept sign-extended in integer temps.  Mixed int/double arithmetic
    promotes to double; assignments and calls insert conversions.  Pointer
    arithmetic scales by element size.

    Built-in services (lowered to traps): [exit(n)], [print_int(n)],
    [print_char(c)], [print_double(x)]. *)

exception Error of string

type data_item = {
  dsym : string;
  dbytes : Bytes.t;
  dalign : int;
}

type unit_ir = { funcs : Ir.func list; data : data_item list }

val lower_program : Repro_minic.Ast.program -> unit_ir
(** @raise Error on type errors, unknown identifiers, arity mismatches,
    or a missing [main]. *)

val sizeof : Repro_minic.Ast.ty -> int
