(** Control-flow-graph utilities: predecessors, cleanup, dominators, and
    natural-loop detection (used by loop-invariant code motion). *)

val predecessors : Ir.func -> (Ir.label, Ir.label list) Hashtbl.t

val clean : Ir.func -> unit
(** Remove unreachable blocks, thread jumps through empty blocks, collapse
    [Bif] with equal targets, and merge single-predecessor straight-line
    successors into their predecessor. *)

type loop = {
  header : Ir.label;
  body : Iset.t;  (** Block labels, including the header. *)
}

val natural_loops : Ir.func -> loop list
(** Natural loops from back edges (target dominates source).  Loops sharing
    a header are merged. *)

val dominators : Ir.func -> (Ir.label, Iset.t) Hashtbl.t
