(* Integer sets used by the dataflow analyses. *)
include Set.Make (Int)
