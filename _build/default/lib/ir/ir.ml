type temp = int
type ftemp = int
type label = int

type addr =
  | Abase of temp * int
  | Aslot of int * int
  | Aglobal of string * int

type operand = Otemp of temp | Oimm of int

type binop =
  | Add | Sub | And | Or | Xor | Shl | Shr | Shra | Mul | Div | Mod

type arg = Aint of temp | Afloat of ftemp
type ret = Rnone | Rint of temp | Rfloat of ftemp

type ins =
  | Li of temp * int
  | Mov of temp * temp
  | Bin of binop * temp * temp * operand
  | Not of temp * temp
  | Neg of temp * temp
  | Setcmp of Repro_core.Insn.cond * temp * temp * operand
  | Load of Repro_core.Insn.load_width * temp * addr
  | Store of Repro_core.Insn.store_width * temp * addr
  | Lea of temp * addr
  | Fli of ftemp * float
  | Fmov of ftemp * ftemp
  | Fbin of Repro_core.Insn.fbin * ftemp * ftemp * ftemp
  | Fneg of ftemp * ftemp
  | Fsetcmp of Repro_core.Insn.cond * temp * ftemp * ftemp
  | Fload of ftemp * addr
  | Fstore of ftemp * addr
  | Itof of ftemp * temp
  | Ftoi of temp * ftemp
  | Call of ret * string * arg list
  | Trap of int * arg option

type term = Jmp of label | Bif of temp * label * label | Ret of arg option

type block = { lbl : label; mutable ins : ins list; mutable term : term }

type slot = { slot_id : int; size : int; align : int }

type func = {
  name : string;
  arg_temps : arg list;
  ret_float : bool option;
  mutable blocks : block list;
  mutable slots : slot list;
  mutable next_temp : int;
  mutable next_ftemp : int;
  mutable next_label : int;
}

let fresh_temp f =
  let t = f.next_temp in
  f.next_temp <- t + 1;
  t

let fresh_ftemp f =
  let t = f.next_ftemp in
  f.next_ftemp <- t + 1;
  t

let fresh_label f =
  let l = f.next_label in
  f.next_label <- l + 1;
  l

let fresh_slot f ~size ~align =
  let slot = { slot_id = List.length f.slots; size; align } in
  f.slots <- f.slots @ [ slot ];
  slot

let block_map f =
  let h = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace h b.lbl b) f.blocks;
  h

let successors = function
  | Jmp l -> [ l ]
  | Bif (_, l1, l2) -> [ l1; l2 ]
  | Ret _ -> []

let addr_temp = function
  | Abase (t, _) -> [ t ]
  | Aslot _ | Aglobal _ -> []

let defs = function
  | Li (t, _)
  | Mov (t, _)
  | Bin (_, t, _, _)
  | Not (t, _)
  | Neg (t, _)
  | Setcmp (_, t, _, _)
  | Load (_, t, _)
  | Lea (t, _)
  | Fsetcmp (_, t, _, _)
  | Ftoi (t, _) -> Some t
  | Call (Rint t, _, _) -> Some t
  | Call ((Rnone | Rfloat _), _, _) -> None
  | Store _ | Fli _ | Fmov _ | Fbin _ | Fneg _ | Fload _ | Fstore _ | Itof _
  | Trap _ -> None

let operand_uses = function Otemp t -> [ t ] | Oimm _ -> []

let uses = function
  | Li _ | Fli _ | Fmov _ | Fbin _ | Fneg _ -> []
  | Mov (_, s) | Not (_, s) | Neg (_, s) | Itof (_, s) -> [ s ]
  | Bin (_, _, a, b) | Setcmp (_, _, a, b) -> a :: operand_uses b
  | Load (_, _, a) | Fload (_, a) | Lea (_, a) -> addr_temp a
  | Store (_, s, a) -> s :: addr_temp a
  | Fstore (_, a) -> addr_temp a
  | Fsetcmp _ | Ftoi _ -> []
  | Call (_, _, args) ->
    List.filter_map (function Aint t -> Some t | Afloat _ -> None) args
  | Trap (_, Some (Aint t)) -> [ t ]
  | Trap (_, (None | Some (Afloat _))) -> []

let fdefs = function
  | Fli (t, _) | Fmov (t, _) | Fbin (_, t, _, _) | Fneg (t, _) | Fload (t, _)
  | Itof (t, _) -> Some t
  | Call (Rfloat t, _, _) -> Some t
  | Call ((Rnone | Rint _), _, _) -> None
  | Li _ | Mov _ | Bin _ | Not _ | Neg _ | Setcmp _ | Load _ | Store _
  | Lea _ | Fsetcmp _ | Fstore _ | Ftoi _ | Trap _ -> None

let fuses = function
  | Fmov (_, s) | Fneg (_, s) | Ftoi (_, s) -> [ s ]
  | Fbin (_, _, a, b) | Fsetcmp (_, _, a, b) -> [ a; b ]
  | Fstore (s, _) -> [ s ]
  | Call (_, _, args) ->
    List.filter_map (function Afloat t -> Some t | Aint _ -> None) args
  | Trap (_, Some (Afloat t)) -> [ t ]
  | Trap (_, (None | Some (Aint _))) -> []
  | Li _ | Mov _ | Bin _ | Not _ | Neg _ | Setcmp _ | Load _ | Store _
  | Lea _ | Fli _ | Fload _ | Itof _ -> []

let is_pure = function
  | Li _ | Mov _ | Not _ | Neg _ | Setcmp _ | Lea _ | Fli _ | Fmov _
  | Fbin _ | Fneg _ | Fsetcmp _ | Itof _ | Ftoi _ -> true
  | Bin (op, _, _, b) ->
    (* Division by a zero constant must stay put; variable divisors are
       treated as non-hoistable but still dead-code-removable. *)
    (match (op, b) with
    | (Div | Mod), Oimm 0 -> false
    | _ -> true)
  | Load _ | Store _ | Fload _ | Fstore _ | Call _ | Trap _ -> false

let is_pure_or_load i =
  is_pure i || match i with Load _ | Fload _ -> true | _ -> false

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Shra -> "shra"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"

let addr_to_string = function
  | Abase (t, o) -> Printf.sprintf "[t%d%+d]" t o
  | Aslot (s, o) -> Printf.sprintf "[slot%d%+d]" s o
  | Aglobal (g, o) -> Printf.sprintf "[%s%+d]" g o

let operand_to_string = function
  | Otemp t -> Printf.sprintf "t%d" t
  | Oimm i -> string_of_int i

let arg_to_string = function
  | Aint t -> Printf.sprintf "t%d" t
  | Afloat t -> Printf.sprintf "f%d" t

let ins_to_string i =
  let open Printf in
  match i with
  | Li (t, v) -> sprintf "t%d := %d" t v
  | Mov (t, s) -> sprintf "t%d := t%d" t s
  | Bin (op, d, a, b) ->
    sprintf "t%d := %s t%d, %s" d (binop_to_string op) a (operand_to_string b)
  | Not (d, s) -> sprintf "t%d := ~t%d" d s
  | Neg (d, s) -> sprintf "t%d := -t%d" d s
  | Setcmp (c, d, a, b) ->
    sprintf "t%d := t%d %s %s" d a (Repro_core.Insn.cond_to_string c)
      (operand_to_string b)
  | Load (_, d, a) -> sprintf "t%d := load %s" d (addr_to_string a)
  | Store (_, s, a) -> sprintf "store t%d, %s" s (addr_to_string a)
  | Lea (d, a) -> sprintf "t%d := lea %s" d (addr_to_string a)
  | Fli (d, v) -> sprintf "f%d := %g" d v
  | Fmov (d, s) -> sprintf "f%d := f%d" d s
  | Fbin (op, d, a, b) ->
    sprintf "f%d := %s f%d, f%d" d
      (match op with Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv")
      a b
  | Fneg (d, s) -> sprintf "f%d := -f%d" d s
  | Fsetcmp (c, d, a, b) ->
    sprintf "t%d := f%d %s f%d" d a (Repro_core.Insn.cond_to_string c) b
  | Fload (d, a) -> sprintf "f%d := fload %s" d (addr_to_string a)
  | Fstore (s, a) -> sprintf "fstore f%d, %s" s (addr_to_string a)
  | Itof (d, s) -> sprintf "f%d := itof t%d" d s
  | Ftoi (d, s) -> sprintf "t%d := ftoi f%d" d s
  | Call (r, f, args) ->
    let dest =
      match r with
      | Rnone -> ""
      | Rint t -> sprintf "t%d := " t
      | Rfloat t -> sprintf "f%d := " t
    in
    sprintf "%scall %s(%s)" dest f
      (String.concat ", " (List.map arg_to_string args))
  | Trap (n, a) ->
    sprintf "trap %d%s" n
      (match a with None -> "" | Some a -> ", " ^ arg_to_string a)

let term_to_string = function
  | Jmp l -> Printf.sprintf "jmp L%d" l
  | Bif (t, l1, l2) -> Printf.sprintf "bif t%d ? L%d : L%d" t l1 l2
  | Ret None -> "ret"
  | Ret (Some a) -> Printf.sprintf "ret %s" (arg_to_string a)

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s):\n" f.name
       (String.concat ", " (List.map arg_to_string f.arg_temps)));
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" b.lbl);
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ ins_to_string i ^ "\n"))
        b.ins;
      Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

let map_addr g = function
  | Abase (t, o) -> Abase (g t, o)
  | (Aslot _ | Aglobal _) as a -> a

let map_operand g = function Otemp t -> Otemp (g t) | Oimm _ as o -> o

let map_ins_temps g h i =
  match i with
  | Li (t, v) -> Li (g t, v)
  | Mov (t, s) -> Mov (g t, g s)
  | Bin (op, d, a, b) -> Bin (op, g d, g a, map_operand g b)
  | Not (d, s) -> Not (g d, g s)
  | Neg (d, s) -> Neg (g d, g s)
  | Setcmp (c, d, a, b) -> Setcmp (c, g d, g a, map_operand g b)
  | Load (w, d, a) -> Load (w, g d, map_addr g a)
  | Store (w, s, a) -> Store (w, g s, map_addr g a)
  | Lea (d, a) -> Lea (g d, map_addr g a)
  | Fli (d, v) -> Fli (h d, v)
  | Fmov (d, s) -> Fmov (h d, h s)
  | Fbin (op, d, a, b) -> Fbin (op, h d, h a, h b)
  | Fneg (d, s) -> Fneg (h d, h s)
  | Fsetcmp (c, d, a, b) -> Fsetcmp (c, g d, h a, h b)
  | Fload (d, a) -> Fload (h d, map_addr g a)
  | Fstore (s, a) -> Fstore (h s, map_addr g a)
  | Itof (d, s) -> Itof (h d, g s)
  | Ftoi (d, s) -> Ftoi (g d, h s)
  | Call (r, f, args) ->
    let r =
      match r with
      | Rnone -> Rnone
      | Rint t -> Rint (g t)
      | Rfloat t -> Rfloat (h t)
    in
    let args =
      List.map (function Aint t -> Aint (g t) | Afloat t -> Afloat (h t)) args
    in
    Call (r, f, args)
  | Trap (n, a) ->
    let a =
      Option.map
        (function Aint t -> Aint (g t) | Afloat t -> Afloat (h t))
        a
    in
    Trap (n, a)

let iter_all_ins f k = List.iter (fun b -> List.iter k b.ins) f.blocks
