type align = Left | Right

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?align header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> Left :: List.init (max 0 (ncols - 1)) (fun _ -> Right)
  in
  let all = header :: rows in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
         row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let bar_chart ?(width = 40) ?max_value entries =
  let data_max =
    match max_value with
    | Some m -> m
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 0. entries
  in
  let data_max = if data_max <= 0. then 1. else data_max in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let line (label, v) =
    let n =
      int_of_float (Float.round (v /. data_max *. float_of_int width))
    in
    let n = max 0 (min width n) in
    Printf.sprintf "%s  %s%s %6.2f"
      (pad Left label_width label)
      (String.make n '#')
      (String.make (width - n) ' ')
      v
  in
  String.concat "\n" (List.map line entries) ^ "\n"

let fmt2 v = Printf.sprintf "%.2f" v
let fmt3 v = Printf.sprintf "%.3f" v

let series_chart ?width:_ ~x_label ~xs series =
  let header = x_label :: List.map fst series in
  let rows =
    List.mapi
      (fun i x -> x :: List.map (fun (_, ys) -> fmt3 (List.nth ys i)) series)
      xs
  in
  render header rows
