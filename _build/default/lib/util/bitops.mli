(** Fixed-width two's-complement bit manipulation on OCaml [int].

    All 32-bit machine words are represented as OCaml ints in the range
    [-2^31, 2^31 - 1] (i.e. already sign-extended).  Helpers here convert
    between signed/unsigned views and slice bit fields for the instruction
    encoders and the simulator ALU. *)

val mask32 : int
(** [0xFFFF_FFFF]. *)

val to_u32 : int -> int
(** Unsigned 32-bit view of a word: result in [0, 2^32 - 1]. *)

val of_u32 : int -> int
(** Sign-extend the low 32 bits of an int to a signed word. *)

val sext : width:int -> int -> int
(** [sext ~width v] sign-extends the low [width] bits of [v].
    @raise Invalid_argument if [width] is not in [1, 62]. *)

val zext : width:int -> int -> int
(** [zext ~width v] keeps only the low [width] bits of [v]. *)

val fits_signed : width:int -> int -> bool
(** Does [v] fit in a [width]-bit signed field? *)

val fits_unsigned : width:int -> int -> bool
(** Does [v] fit in a [width]-bit unsigned field? *)

val bits : lo:int -> hi:int -> int -> int
(** [bits ~lo ~hi w] extracts bits [hi..lo] (inclusive) of [w], unsigned. *)

val put : lo:int -> hi:int -> int -> int -> int
(** [put ~lo ~hi field w] ORs [field] into bits [hi..lo] of [w].
    @raise Invalid_argument if [field] does not fit the slot. *)

val add32 : int -> int -> int
(** 32-bit wrapping addition, signed result. *)

val sub32 : int -> int -> int
(** 32-bit wrapping subtraction, signed result. *)

val shl32 : int -> int -> int
(** 32-bit logical shift left (shift amount taken mod 32). *)

val shr32 : int -> int -> int
(** 32-bit logical shift right. *)

val sra32 : int -> int -> int
(** 32-bit arithmetic shift right. *)

val ltu32 : int -> int -> bool
(** Unsigned 32-bit less-than. *)

val is_pow2 : int -> bool
(** Is the (positive) argument a power of two? *)

val log2 : int -> int
(** Floor of log base 2. @raise Invalid_argument on non-positive input. *)
