let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geomean: non-positive"
          else acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stddev = function
  | [] -> invalid_arg "Stats.stddev: empty"
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let ratio a b =
  if b = 0 then raise Division_by_zero;
  float_of_int a /. float_of_int b

let percent_increase ~base v =
  if base = 0 then raise Division_by_zero;
  float_of_int (v - base) /. float_of_int base *. 100.
