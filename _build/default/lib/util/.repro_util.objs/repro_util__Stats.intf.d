lib/util/stats.mli:
