lib/util/table.mli:
