lib/util/bitops.ml: Printf
