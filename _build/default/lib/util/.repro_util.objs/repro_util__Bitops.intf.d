lib/util/bitops.mli:
