(** Small numeric summaries used throughout the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on the empty list or non-positive entries. *)

val stddev : float list -> float
(** Population standard deviation (0 for a singleton).
    @raise Invalid_argument on the empty list. *)

val ratio : int -> int -> float
(** [ratio a b = a /. b] as floats. @raise Division_by_zero if [b = 0]. *)

val percent_increase : base:int -> int -> float
(** [(v - base) / base * 100]. *)
