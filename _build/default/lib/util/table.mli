(** ASCII renderers for the paper's tables and (bar/line) figures.

    Every experiment in the harness produces either a table (rows of labelled
    cells) or a "figure" we render as rows of numbers plus an ASCII bar, close
    enough to eyeball against the paper's plots. *)

type align = Left | Right

val render : ?align:align list -> string list -> string list list -> string
(** [render header rows] lays out a padded ASCII table.  [align] gives
    per-column alignment (default: first column left, rest right). *)

val bar_chart :
  ?width:int -> ?max_value:float -> (string * float) list -> string
(** Horizontal bar chart, one labelled row per entry.  [max_value] fixes the
    scale (default: the data maximum); [width] is the bar width in
    characters (default 40). *)

val series_chart :
  ?width:int ->
  x_label:string ->
  xs:string list ->
  (string * float list) list ->
  string
(** Multi-series table for line plots: one row per x value, one column per
    series, used for the CPI-vs-latency style figures. *)

val fmt2 : float -> string
(** Two-decimal fixed formatting. *)

val fmt3 : float -> string
(** Three-decimal fixed formatting. *)
