let mask32 = 0xFFFF_FFFF

let to_u32 v = v land mask32

let of_u32 v =
  let v = v land mask32 in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let sext ~width v =
  if width < 1 || width > 62 then invalid_arg "Bitops.sext";
  let m = (1 lsl width) - 1 in
  let v = v land m in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let zext ~width v = v land ((1 lsl width) - 1)

let fits_signed ~width v =
  let half = 1 lsl (width - 1) in
  v >= -half && v < half

let fits_unsigned ~width v = v >= 0 && v < 1 lsl width

let bits ~lo ~hi w = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let put ~lo ~hi field w =
  if not (fits_unsigned ~width:(hi - lo + 1) field) then
    invalid_arg
      (Printf.sprintf "Bitops.put: field %d does not fit bits %d..%d" field lo
         hi);
  w lor (field lsl lo)

let add32 a b = of_u32 (a + b)
let sub32 a b = of_u32 (a - b)
let shl32 a n = of_u32 (to_u32 a lsl (n land 31))
let shr32 a n = of_u32 (to_u32 a lsr (n land 31))

let sra32 a n =
  let n = n land 31 in
  of_u32 (of_u32 a asr n)

let ltu32 a b = to_u32 a < to_u32 b
let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  if n <= 0 then invalid_arg "Bitops.log2";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n
