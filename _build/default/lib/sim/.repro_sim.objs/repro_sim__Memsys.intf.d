lib/sim/memsys.mli: Machine
