lib/sim/memsys.ml: Array Machine
