lib/sim/machine.mli: Repro_link
