lib/sim/machine.ml: Array Buffer Bytes Char Float Hashtbl Int32 Int64 List Option Printf Repro_core Repro_link Repro_util
