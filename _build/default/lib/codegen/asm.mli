(** Assembly items: the code generator's output, consumed by the linker.

    Branch targets, global addresses, call destinations and (on D16)
    large constants cannot be resolved until layout, so they stay symbolic.
    Invariant maintained by {!Sched}: every control-transfer item is
    followed by exactly one delay-slot instruction ([Op] — possibly
    [Nop]). *)

type label = int

type item =
  | Op of Repro_core.Insn.t  (** Fully resolved instruction. *)
  | Lbl of label  (** Function-local label definition. *)
  | Br_lbl of label  (** Unconditional branch to a local label. *)
  | Bz_lbl of Repro_core.Insn.gpr * label
  | Bnz_lbl of Repro_core.Insn.gpr * label
  | Call_sym of string  (** Direct call; relaxed by the linker. *)
  | La of Repro_core.Insn.gpr * string * int
      (** rd <- address of symbol + offset. *)
  | Lc of Repro_core.Insn.gpr * int
      (** rd <- 32-bit constant too wide for the target's mvi
          (D16 literal pool; never emitted for DLXe). *)

type fragment = { fn_name : string; items : item list }

val is_transfer : item -> bool
(** Items that own a delay slot. *)

val item_to_string : item -> string
val fragment_to_string : fragment -> string
