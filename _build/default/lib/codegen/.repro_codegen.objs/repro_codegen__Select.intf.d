lib/codegen/select.mli: Asm Repro_core Repro_ir
