lib/codegen/select.ml: Asm Hashtbl List Printf Repro_core Repro_ir
