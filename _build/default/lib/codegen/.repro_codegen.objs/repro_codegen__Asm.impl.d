lib/codegen/asm.ml: List Printf Repro_core String
