lib/codegen/irprep.ml: Bytes Hashtbl Int64 List Option Printf Repro_core Repro_ir
