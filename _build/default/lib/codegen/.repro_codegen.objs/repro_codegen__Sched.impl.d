lib/codegen/sched.ml: Array Asm List Repro_core
