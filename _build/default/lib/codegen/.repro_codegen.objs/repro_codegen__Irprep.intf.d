lib/codegen/irprep.mli: Repro_core Repro_ir
