lib/codegen/sched.mli: Asm Repro_core
