lib/codegen/asm.mli: Repro_core
