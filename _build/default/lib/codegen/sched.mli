(** Delay-slot scheduling.

    Both machines execute one delay slot after every control transfer
    (paper Section 2).  This pass establishes the invariant that each
    transfer item is followed by exactly one slot instruction: it moves a
    preceding independent instruction into the slot when the dependences
    allow, and inserts a [nop] otherwise.  It also performs the simple
    load-use reordering that the paper's "instruction scheduling"
    optimization flag implies (swapping an independent neighbour between a
    load and its consumer to hide the load delay). *)

val fill_delay_slots :
  ?fill:bool -> Repro_core.Target.t -> Asm.fragment -> Asm.fragment
(** [fill:false] pads every slot with a nop instead of moving code into it
    (ablation). *)

val schedule_loads : Asm.fragment -> Asm.fragment
(** Run before {!fill_delay_slots}. *)
