module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Ir = Repro_ir.Ir
module Opt = Repro_ir.Opt
module Lower = Repro_ir.Lower

type fp_literals = { mutable table : (float * string) list; mutable next : int }

let empty_fp_literals () = { table = []; next = 0 }

let intern lits v =
  (* Compare by bit pattern so that 0.0 and -0.0 stay distinct. *)
  let bits = Int64.bits_of_float v in
  match
    List.find_opt (fun (v', _) -> Int64.bits_of_float v' = bits) lits.table
  with
  | Some (_, sym) -> sym
  | None ->
    let sym = Printf.sprintf "_fpc_%d" lits.next in
    lits.next <- lits.next + 1;
    lits.table <- (v, sym) :: lits.table;
    sym

let fp_literal_data lits =
  List.rev_map
    (fun (v, sym) ->
      let b = Bytes.create 8 in
      let bits = Int64.bits_of_float v in
      for i = 0 to 7 do
        Bytes.set_uint8 b i
          (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF)
      done;
      { Lower.dsym = sym; dbytes = b; dalign = 8 })
    lits.table

let materialize_fli lits (f : Ir.func) =
  List.iter
    (fun (b : Ir.block) ->
      b.ins <-
        List.concat_map
          (fun (i : Ir.ins) ->
            match i with
            | Fli (d, v) ->
              let sym = intern lits v in
              let t = Ir.fresh_temp f in
              [ Ir.Lea (t, Ir.Aglobal (sym, 0)); Ir.Fload (d, Ir.Abase (t, 0)) ]
            | _ -> [ i ])
          b.ins)
    f.blocks

(* Legalization ------------------------------------------------------------- *)

let alu_of_binop : Ir.binop -> Insn.alu = function
  | Add -> Add
  | Sub -> Sub
  | And -> And
  | Or -> Or
  | Xor -> Xor
  | Shl -> Shl
  | Shr -> Shr
  | Shra -> Shra
  | Mul | Div | Mod -> invalid_arg "mul/div must be lowered before codegen"

let legalize target (f : Ir.func) =
  let materialize k ins =
    let t = Ir.fresh_temp f in
    (Ir.Otemp t, ins @ [ Ir.Li (t, k) ])
  in
  (* Force an address into [Abase] form with a displacement the target's
     memory instructions accept.  [word] selects the displacement rule. *)
  let fix_addr ~word (a : Ir.addr) pre =
    match a with
    | Ir.Aslot _ -> (a, pre)  (* resolved against sp at selection time *)
    | Ir.Aglobal _ ->
      let t = Ir.fresh_temp f in
      (Ir.Abase (t, 0), pre @ [ Ir.Lea (t, a) ])
    | Ir.Abase (_, off) when Target.mem_offset_fits target ~word off ->
      (a, pre)
    | Ir.Abase (base, off) ->
      let t = Ir.fresh_temp f in
      let ot, pre = materialize off pre in
      (match ot with
      | Ir.Otemp offt ->
        (Ir.Abase (t, 0), pre @ [ Ir.Bin (Ir.Add, t, base, Ir.Otemp offt) ])
      | Ir.Oimm _ -> assert false)
  in
  let is_dlxe = target.Target.isa = Target.Dlxe in
  let fix_ins (i : Ir.ins) : Ir.ins list =
    match i with
    | Not (d, s) when is_dlxe ->
      (* DLXe has no inv; xor with an all-ones register. *)
      let t = Ir.fresh_temp f in
      [ Ir.Li (t, -1); Ir.Bin (Ir.Xor, d, s, Ir.Otemp t) ]
    | Neg (d, s) when is_dlxe && not target.Target.three_address ->
      (* The three-address form sub rd, r0, rs is unavailable. *)
      let t = Ir.fresh_temp f in
      [ Ir.Li (t, 0); Ir.Bin (Ir.Sub, d, t, Ir.Otemp s) ]
    | Bin (op, d, a, Oimm k) -> (
      let alu = alu_of_binop op in
      if Target.alui_fits target alu k then [ i ]
      else
        (* Negative add/sub immediates flip on D16 (unsigned-only fields). *)
        let flipped : Ir.ins option =
          match op with
          | Add when Target.alui_fits target Sub (-k) ->
            Some (Bin (Sub, d, a, Oimm (-k)))
          | Sub when Target.alui_fits target Add (-k) ->
            Some (Bin (Add, d, a, Oimm (-k)))
          | _ -> None
        in
        match flipped with
        | Some i' -> [ i' ]
        | None ->
          let ot, pre = materialize k [] in
          pre @ [ Ir.Bin (op, d, a, ot) ])
    | Setcmp (c, d, a, b) -> (
      let b, pre =
        match b with
        | Ir.Oimm k when not (Target.cmpi_ok target c k) -> materialize k []
        | _ -> (b, [])
      in
      if Target.cond_supported target c then pre @ [ Ir.Setcmp (c, d, a, b) ]
      else
        (* Commute: both operands must be registers. *)
        let b', pre =
          match b with
          | Ir.Otemp t -> (t, pre)
          | Ir.Oimm k -> (
            match materialize k pre with
            | Ir.Otemp t, pre -> (t, pre)
            | Ir.Oimm _, _ -> assert false)
        in
        pre @ [ Ir.Setcmp (Insn.swap_cond c, d, b', Ir.Otemp a) ])
    | Fsetcmp (c, d, a, b) ->
      if Target.cond_supported target c then [ i ]
      else [ Fsetcmp (Insn.swap_cond c, d, b, a) ]
    | Load (w, d, a) ->
      let a, pre = fix_addr ~word:(w = Insn.Lw) a [] in
      pre @ [ Ir.Load (w, d, a) ]
    | Store (w, s, a) ->
      let a, pre = fix_addr ~word:(w = Insn.Sw) a [] in
      pre @ [ Ir.Store (w, s, a) ]
    | Fload (d, a) ->
      let a, pre = fix_addr ~word:true a [] in
      pre @ [ Ir.Fload (d, a) ]
    | Fstore (s, a) ->
      let a, pre = fix_addr ~word:true a [] in
      pre @ [ Ir.Fstore (s, a) ]
    | _ -> [ i ]
  in
  List.iter
    (fun (b : Ir.block) -> b.ins <- List.concat_map fix_ins b.ins)
    f.blocks

(* Branch-on-zero: a compare against zero feeding only the block's branch
   is redundant — Bif already tests non-zero.  Rewriting before immediate
   legalization saves D16 a zero materialization and both targets the
   compare. *)
let branch_on_zero (f : Ir.func) =
  (* Count integer-temp uses so we only drop dead compare results. *)
  let uses = Hashtbl.create 64 in
  let bump t =
    Hashtbl.replace uses t (1 + Option.value (Hashtbl.find_opt uses t) ~default:0)
  in
  Ir.iter_all_ins f (fun i -> List.iter bump (Ir.uses i));
  List.iter
    (fun (b : Ir.block) ->
      List.iter bump (Repro_ir.Liveness.int_class.Repro_ir.Liveness.term_use b.Ir.term))
    f.blocks;
  List.iter
    (fun (b : Ir.block) ->
      match (List.rev b.ins, b.term) with
      | Ir.Setcmp (c, d, a, Ir.Oimm 0) :: rest, Ir.Bif (t, l1, l2)
        when d = t && Hashtbl.find_opt uses t = Some 1 -> (
        match c with
        | Insn.Ne ->
          b.ins <- List.rev rest;
          b.term <- Ir.Bif (a, l1, l2)
        | Insn.Eq ->
          b.ins <- List.rev rest;
          b.term <- Ir.Bif (a, l2, l1)
        | _ -> ())
      | _ -> ())
    f.blocks

(* Two-address conversion ---------------------------------------------------- *)

let commutative_bin : Ir.binop -> bool = function
  | Add | And | Or | Xor -> true
  | Sub | Shl | Shr | Shra | Mul | Div | Mod -> false

let commutative_fbin : Insn.fbin -> bool = function
  | Fadd | Fmul -> true
  | Fsub | Fdiv -> false

let two_address target (f : Ir.func) =
  if not target.Target.three_address then
    List.iter
      (fun (b : Ir.block) ->
        b.ins <-
          List.concat_map
            (fun (i : Ir.ins) ->
              match i with
              | Bin (op, d, a, rhs) when d <> a -> (
                match rhs with
                | Ir.Otemp b' when b' = d ->
                  if commutative_bin op then [ Ir.Bin (op, d, d, Ir.Otemp a) ]
                  else begin
                    let t = Ir.fresh_temp f in
                    [
                      Ir.Mov (t, a);
                      Ir.Bin (op, t, t, Ir.Otemp b');
                      Ir.Mov (d, t);
                    ]
                  end
                | _ -> [ Ir.Mov (d, a); Ir.Bin (op, d, d, rhs) ])
              | Fbin (op, d, a, b') when d <> a ->
                if b' = d then
                  if commutative_fbin op then [ Ir.Fbin (op, d, d, a) ]
                  else begin
                    let t = Ir.fresh_ftemp f in
                    [ Ir.Fmov (t, a); Ir.Fbin (op, t, t, b'); Ir.Fmov (d, t) ]
                  end
                else [ Ir.Fmov (d, a); Ir.Fbin (op, d, d, b') ]
              | _ -> [ i ])
            b.ins)
      f.blocks

let prepare ?(flags = Opt.all_flags) target lits (f : Ir.func) =
  materialize_fli lits f;
  branch_on_zero f;
  legalize target f;
  (* The Lea/Li instructions introduced by legalization expose sharing and
     hoisting opportunities (notably D16 literal-pool loads in loops).
     Note: local_simplify must not run here — it would fold materialized
     constants back into immediate operands the target cannot encode. *)
  if flags.Opt.cse then ignore (Opt.local_cse f);
  if flags.Opt.do_licm then ignore (Opt.licm f);
  if flags.Opt.cse then ignore (Opt.local_cse f);
  if flags.Opt.dce then ignore (Opt.dead_code f);
  two_address target f
