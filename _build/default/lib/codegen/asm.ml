module Insn = Repro_core.Insn

type label = int

type item =
  | Op of Insn.t
  | Lbl of label
  | Br_lbl of label
  | Bz_lbl of Insn.gpr * label
  | Bnz_lbl of Insn.gpr * label
  | Call_sym of string
  | La of Insn.gpr * string * int
  | Lc of Insn.gpr * int

type fragment = { fn_name : string; items : item list }

let is_transfer = function
  | Op i -> Insn.is_branch i
  | Br_lbl _ | Bz_lbl _ | Bnz_lbl _ | Call_sym _ -> true
  | Lbl _ | La _ | Lc _ -> false

let item_to_string = function
  | Op i -> "  " ^ Insn.to_string i
  | Lbl l -> Printf.sprintf ".L%d:" l
  | Br_lbl l -> Printf.sprintf "  br .L%d" l
  | Bz_lbl (r, l) -> Printf.sprintf "  bz r%d, .L%d" r l
  | Bnz_lbl (r, l) -> Printf.sprintf "  bnz r%d, .L%d" r l
  | Call_sym s -> Printf.sprintf "  call %s" s
  | La (r, s, o) ->
    if o = 0 then Printf.sprintf "  la r%d, %s" r s
    else Printf.sprintf "  la r%d, %s+%d" r s o
  | Lc (r, v) -> Printf.sprintf "  lc r%d, %d" r v

let fragment_to_string f =
  f.fn_name ^ ":\n" ^ String.concat "\n" (List.map item_to_string f.items) ^ "\n"
