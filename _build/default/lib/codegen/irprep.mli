(** Target-dependent IR preparation, run after the optimizer and before
    register allocation:

    - {!materialize_fli}: floating-point literals become loads from interned
      data symbols (neither machine has FP immediates);
    - {!legalize}: immediates and addressing modes are rewritten to what the
      target encodes — out-of-range ALU/compare immediates get materialized,
      unsupported compare conditions are commuted, global memory operands go
      through an explicit address temp, D16 subword/wide displacements
      become address arithmetic;
    - {!two_address}: on two-address targets, three-address ALU and FP
      operations are rewritten to destructive form (with commutation where
      the operation allows it). *)

type fp_literals = {
  mutable table : (float * string) list;
  mutable next : int;
}

val empty_fp_literals : unit -> fp_literals

val fp_literal_data : fp_literals -> Repro_ir.Lower.data_item list

val materialize_fli : fp_literals -> Repro_ir.Ir.func -> unit

val legalize : Repro_core.Target.t -> Repro_ir.Ir.func -> unit

val two_address : Repro_core.Target.t -> Repro_ir.Ir.func -> unit

val prepare :
  ?flags:Repro_ir.Opt.flags ->
  Repro_core.Target.t ->
  fp_literals ->
  Repro_ir.Ir.func ->
  unit
(** The full sequence, with a cleanup pass after; [flags] (default all on)
    gates the post-legalization CSE/LICM/DCE for the ablation study. *)
