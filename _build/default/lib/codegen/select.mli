(** Instruction selection: allocated IR to assembly items.

    Responsibilities: frame layout (outgoing-argument area, saved registers,
    slots ordered small-first so D16's short displacements reach the hot
    ones), prologue/epilogue, the calling convention (r4..r7 / f0..f3, extras
    on the stack, parallel-move resolution with cycle breaking), compare/
    branch fusion, and the target-specific expansions of constants and
    frame accesses (using r0 as the D16 assembler temporary). *)

val select :
  Repro_core.Target.t -> Repro_ir.Regalloc.t -> Repro_ir.Ir.func -> Asm.fragment
(** @raise Failure on IR the earlier phases should have eliminated
    (unlowered mul/div, unmaterialized FP literals, unallocated temps). *)
