module Insn = Repro_core.Insn
module Target = Repro_core.Target

(* Dependence summaries ------------------------------------------------------ *)

type eff = {
  gd : int list;  (* general registers written *)
  gu : int list;  (* general registers read *)
  fd : int list;
  fu : int list;
  ld : bool;  (* reads memory *)
  st : bool;  (* writes memory *)
  sw : bool;  (* writes FP status *)
  sr : bool;  (* reads FP status *)
}

let insn_eff (i : Insn.t) =
  {
    gd = (match Insn.defs_gpr i with Some r -> [ r ] | None -> []);
    gu = Insn.uses_gpr i;
    fd = (match Insn.defs_fpr i with Some r -> [ r ] | None -> []);
    fu = Insn.uses_fpr i;
    ld = Insn.is_load i;
    st = Insn.is_store i;
    sw = Insn.writes_fp_status i;
    sr = (match i with Insn.Rdsr _ -> true | _ -> false);
  }

let item_eff ~is_d16 (it : Asm.item) =
  match it with
  | Asm.Op i -> Some (insn_eff i)
  | Asm.La (r, _, _) ->
    Some
      {
        gd = (if is_d16 then [ r; 0 ] else [ r ]);
        gu = [];
        fd = [];
        fu = [];
        ld = is_d16;
        st = false;
        sw = false;
        sr = false;
      }
  | Asm.Lc (r, _) ->
    Some
      {
        gd = (if is_d16 then [ r; 0 ] else [ r ]);
        gu = [];
        fd = [];
        fu = [];
        ld = is_d16;
        st = false;
        sw = false;
        sr = false;
      }
  | Asm.Lbl _ | Asm.Br_lbl _ | Asm.Bz_lbl _ | Asm.Bnz_lbl _ | Asm.Call_sym _ ->
    None

let disjoint a b = not (List.exists (fun x -> List.mem x b) a)

let independent a b =
  disjoint a.gd (b.gu @ b.gd)
  && disjoint a.gu b.gd
  && disjoint a.fd (b.fu @ b.fd)
  && disjoint a.fu b.fd
  && (not (a.sw && (b.sw || b.sr)))
  && (not (a.sr && b.sw))
  && (not (a.st && (b.ld || b.st)))
  && not (a.ld && b.st)

(* Registers a transfer reads to make its decision / find its target. *)
let transfer_reads = function
  | Asm.Bz_lbl (r, _) | Asm.Bnz_lbl (r, _) -> [ r ]
  | Asm.Op (Insn.J r) | Asm.Op (Insn.Jl r) -> [ r ]
  | Asm.Op (Insn.Jz (rt, rd)) | Asm.Op (Insn.Jnz (rt, rd)) -> [ rt; rd ]
  | Asm.Op (Insn.Bz (r, _)) | Asm.Op (Insn.Bnz (r, _)) -> [ r ]
  | _ -> []

let slot_candidate (it : Asm.item) =
  match it with
  | Asm.Op i -> (
    match i with
    | Insn.Trap _ | Insn.Nop -> false
    | _ -> not (Insn.is_branch i))
  | _ -> false

(* Delay-slot filling --------------------------------------------------------- *)

let fill_delay_slots ?(fill = true) target (frag : Asm.fragment) =
  let is_d16 = target.Target.isa = Target.D16 in
  let eff it = item_eff ~is_d16 it in
  (* done_rev holds (item, usable-as-filler) with the most recent first. *)
  let rec go done_rev remaining =
    match remaining with
    | [] -> List.rev_map fst done_rev
    | it :: rest when Asm.is_transfer it ->
      let treads = transfer_reads it in
      (* On D16 the linker may relax label branches and calls into
         ldc r0 + jump sequences, so their slot must not touch r0. *)
      let relaxable =
        is_d16
        && match it with
           | Asm.Br_lbl _ | Asm.Bz_lbl _ | Asm.Bnz_lbl _ | Asm.Call_sym _ ->
             true
           | _ -> false
      in
      (* Search backward for a filler, accumulating crossed effects. *)
      let rec find acc crossed = function
        | (c, true) :: _ | (c, _) :: _ when eff c = None ->
          ignore c;
          None
        | (c, false) :: more -> (
          match eff c with
          | None -> None
          | Some ce ->
            let safe_for_transfer =
              disjoint ce.gd treads
              && not (relaxable && (List.mem 0 ce.gu || List.mem 0 ce.gd))
            in
            let indep_crossed =
              List.for_all
                (fun other -> independent ce other && independent other ce)
                crossed
            in
            if slot_candidate c && safe_for_transfer && indep_crossed
               && List.length crossed < 6
            then Some (c, List.rev_append acc more)
            else if List.length crossed >= 6 then None
            else find ((c, false) :: acc) (ce :: crossed) more)
        | _ -> None
      in
      let filler = if fill then find [] [] done_rev else None in
      (match filler with
      | Some (c, pruned) ->
        go ((c, true) :: (it, true) :: pruned) rest
      | None -> go ((Asm.Op Insn.Nop, true) :: (it, true) :: done_rev) rest)
    | (Asm.Lbl _ as it) :: rest -> go ((it, true) :: done_rev) rest
    | it :: rest -> go ((it, false) :: done_rev) rest
  in
  { frag with Asm.items = go [] frag.Asm.items }

(* Load-use scheduling --------------------------------------------------------- *)

let schedule_loads (frag : Asm.fragment) =
  let items = Array.of_list frag.Asm.items in
  let n = Array.length items in
  let is_plain_op i =
    i >= 0 && i < n
    && match items.(i) with
       | Asm.Op insn -> not (Insn.is_branch insn)
       | _ -> false
  in
  for i = 1 to n - 2 do
    match items.(i) with
    | Asm.Op load when Insn.is_load load -> (
      let dest_used_next =
        match (Insn.defs_gpr load, Insn.defs_fpr load, items.(i + 1)) with
        | Some d, _, Asm.Op nxt -> List.mem d (Insn.uses_gpr nxt)
        | _, Some d, Asm.Op nxt -> List.mem d (Insn.uses_fpr nxt)
        | _, _, (Asm.Bz_lbl (r, _) | Asm.Bnz_lbl (r, _)) ->
          Insn.defs_gpr load = Some r
        | _ -> false
      in
      if dest_used_next && is_plain_op (i - 1) && (i < 2 || not (Asm.is_transfer items.(i - 2)))
      then
        match (items.(i - 1), items.(i)) with
        | Asm.Op prev, Asm.Op cur ->
          let pe = insn_eff prev and ce = insn_eff cur in
          if independent pe ce && independent ce pe && not (Insn.is_load prev)
          then begin
            items.(i - 1) <- Asm.Op cur;
            items.(i) <- Asm.Op prev
          end
        | _ -> ())
    | _ -> ()
  done;
  { frag with Asm.items = Array.to_list items }
