lib/link/link.mli: Bytes Hashtbl Repro_codegen Repro_core Repro_ir
