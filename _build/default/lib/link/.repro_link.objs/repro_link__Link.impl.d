lib/link/link.ml: Array Bytes Hashtbl List Printf Repro_codegen Repro_core Repro_ir
