(** Layout and linking: fragments + data to an executable image.

    Text starts at 0x1000.  On D16, each function is preceded by its literal
    pool (deduplicated per function); [lc]/[la] items, calls beyond the
    +/-1024-byte [brl] reach, and branches beyond the conditional reach are
    relaxed to pool-load + register-jump sequences.  Relaxation iterates to
    a fixed point (expansion is monotone).  The delay-slot invariant is
    preserved: expanded sequences give the final jump the original slot, and
    far conditionals branch around to it.

    The reported binary size is text + data, the paper's stripped-executable
    measure (footnote 1: identical libraries on both targets). *)

type image = {
  target : Repro_core.Target.t;
  insns : Repro_core.Insn.t array;  (** In address order. *)
  addr_of : int array;  (** Byte address of each instruction. *)
  index_of_addr : (int, int) Hashtbl.t;
  entry_index : int;
  text_base : int;
  text_bytes : int;  (** Includes literal pools and padding. *)
  data_base : int;
  data_bytes : int;
  init : (int * Bytes.t) list;  (** Initial memory contents (data + pools). *)
  symbols : (string, int) Hashtbl.t;
  mem_size : int;
  sp_init : int;
}

exception Link_error of string

val link :
  Repro_core.Target.t ->
  Repro_codegen.Asm.fragment list ->
  Repro_ir.Lower.data_item list ->
  image
(** Fragments must include [main]; a [_start] stub (set sp, call main, trap
    exit) is synthesized and placed first.
    @raise Link_error on undefined symbols, out-of-reach pools, or
    instructions the target rejects. *)

val size_bytes : image -> int
(** text + data, the code-density measure. *)
