lib/core/trapcode.mli:
