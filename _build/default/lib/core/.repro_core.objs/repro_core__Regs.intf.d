lib/core/regs.mli:
