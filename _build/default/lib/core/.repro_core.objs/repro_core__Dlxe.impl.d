lib/core/dlxe.ml: Bitops Insn Printf Repro_util
