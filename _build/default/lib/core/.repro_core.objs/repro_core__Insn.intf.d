lib/core/insn.mli:
