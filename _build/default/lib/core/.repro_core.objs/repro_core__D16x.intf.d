lib/core/d16x.mli: Insn
