lib/core/target.ml: Bitops Insn Printf Regs Repro_util
