lib/core/insn.ml: Printf
