lib/core/d16.mli: Insn
