lib/core/trapcode.ml: Printf
