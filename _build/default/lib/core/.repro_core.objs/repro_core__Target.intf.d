lib/core/target.mli: Insn
