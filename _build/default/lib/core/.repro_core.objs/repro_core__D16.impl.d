lib/core/d16.ml: Bitops Insn Printf Repro_util
