lib/core/dlxe.mli: Insn
