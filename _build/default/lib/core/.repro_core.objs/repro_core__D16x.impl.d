lib/core/d16x.ml: Bitops D16 Insn Printf Repro_util
