lib/core/regs.ml: List
