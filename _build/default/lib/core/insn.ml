type gpr = int
type fpr = int
type cond = Lt | Ltu | Le | Leu | Eq | Ne | Gt | Gtu | Ge | Geu
type load_width = Lw | Lh | Lhu | Lb | Lbu
type store_width = Sw | Sh | Sb
type alu = Add | Sub | And | Or | Xor | Shl | Shr | Shra
type fbin = Fadd | Fsub | Fmul | Fdiv
type fsize = Sf | Df

type t =
  | Load of load_width * gpr * gpr * int
  | Store of store_width * gpr * gpr * int
  | Fload of fsize * fpr * gpr * int
  | Fstore of fsize * fpr * gpr * int
  | Ldc of gpr * int
  | Alu of alu * gpr * gpr * gpr
  | Alui of alu * gpr * gpr * int
  | Mv of gpr * gpr
  | Mvi of gpr * int
  | Mvhi of gpr * int
  | Neg of gpr * gpr
  | Inv of gpr * gpr
  | Cmp of cond * gpr * gpr * gpr
  | Cmpi of cond * gpr * gpr * int
  | Br of int
  | Bz of gpr * int
  | Bnz of gpr * int
  | Brl of int
  | J of gpr
  | Jz of gpr * gpr
  | Jnz of gpr * gpr
  | Jl of gpr
  | Fbin of fbin * fsize * fpr * fpr * fpr
  | Fmv of fsize * fpr * fpr
  | Fneg of fsize * fpr * fpr
  | Fcmp of cond * fsize * fpr * fpr
  | Cvtif of fsize * fpr * gpr
  | Cvtfi of fsize * gpr * fpr
  | Rdsr of gpr
  | Trap of int
  | Nop

let cond_to_string = function
  | Lt -> "lt"
  | Ltu -> "ltu"
  | Le -> "le"
  | Leu -> "leu"
  | Eq -> "eq"
  | Ne -> "ne"
  | Gt -> "gt"
  | Gtu -> "gtu"
  | Ge -> "ge"
  | Geu -> "geu"

let negate_cond = function
  | Lt -> Ge
  | Ltu -> Geu
  | Le -> Gt
  | Leu -> Gtu
  | Eq -> Ne
  | Ne -> Eq
  | Gt -> Le
  | Gtu -> Leu
  | Ge -> Lt
  | Geu -> Ltu

let swap_cond = function
  | Lt -> Gt
  | Ltu -> Gtu
  | Le -> Ge
  | Leu -> Geu
  | Eq -> Eq
  | Ne -> Ne
  | Gt -> Lt
  | Gtu -> Ltu
  | Ge -> Le
  | Geu -> Leu

let alu_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Shra -> "shra"

let load_width_to_string = function
  | Lw -> "ld"
  | Lh -> "ldh"
  | Lhu -> "ldhu"
  | Lb -> "ldb"
  | Lbu -> "ldbu"

let store_width_to_string = function Sw -> "st" | Sh -> "sth" | Sb -> "stb"
let fsize_suffix = function Sf -> ".sf" | Df -> ".df"

let fbin_to_string = function
  | Fadd -> "add"
  | Fsub -> "sub"
  | Fmul -> "mul"
  | Fdiv -> "div"

let to_string = function
  | Load (w, rd, b, off) ->
    Printf.sprintf "%s r%d, %d(r%d)" (load_width_to_string w) rd off b
  | Store (w, rs, b, off) ->
    Printf.sprintf "%s r%d, %d(r%d)" (store_width_to_string w) rs off b
  | Fload (s, fd, b, off) -> Printf.sprintf "ld%s f%d, %d(r%d)" (fsize_suffix s) fd off b
  | Fstore (s, fs, b, off) -> Printf.sprintf "st%s f%d, %d(r%d)" (fsize_suffix s) fs off b
  | Ldc (rd, off) -> Printf.sprintf "ldc r%d, pc%+d" rd off
  | Alu (op, rd, ra, rb) ->
    Printf.sprintf "%s r%d, r%d, r%d" (alu_to_string op) rd ra rb
  | Alui (op, rd, ra, imm) ->
    Printf.sprintf "%si r%d, r%d, %d" (alu_to_string op) rd ra imm
  | Mv (rd, rs) -> Printf.sprintf "mv r%d, r%d" rd rs
  | Mvi (rd, imm) -> Printf.sprintf "mvi r%d, %d" rd imm
  | Mvhi (rd, imm) -> Printf.sprintf "mvhi r%d, %d" rd imm
  | Neg (rd, rs) -> Printf.sprintf "neg r%d, r%d" rd rs
  | Inv (rd, rs) -> Printf.sprintf "inv r%d, r%d" rd rs
  | Cmp (c, rd, ra, rb) ->
    Printf.sprintf "cmp%s r%d, r%d, r%d" (cond_to_string c) rd ra rb
  | Cmpi (c, rd, ra, imm) ->
    Printf.sprintf "cmp%si r%d, r%d, %d" (cond_to_string c) rd ra imm
  | Br off -> Printf.sprintf "br %+d" off
  | Bz (r, off) -> Printf.sprintf "bz r%d, %+d" r off
  | Bnz (r, off) -> Printf.sprintf "bnz r%d, %+d" r off
  | Brl off -> Printf.sprintf "brl %+d" off
  | J r -> Printf.sprintf "j r%d" r
  | Jz (rt, rd) -> Printf.sprintf "jz r%d, r%d" rt rd
  | Jnz (rt, rd) -> Printf.sprintf "jnz r%d, r%d" rt rd
  | Jl r -> Printf.sprintf "jl r%d" r
  | Fbin (op, s, fd, fa, fb) ->
    Printf.sprintf "%s%s f%d, f%d, f%d" (fbin_to_string op) (fsize_suffix s) fd
      fa fb
  | Fmv (s, fd, fs) -> Printf.sprintf "mv%s f%d, f%d" (fsize_suffix s) fd fs
  | Fneg (s, fd, fs) -> Printf.sprintf "neg%s f%d, f%d" (fsize_suffix s) fd fs
  | Fcmp (c, s, fa, fb) ->
    Printf.sprintf "cmp%s%s f%d, f%d" (cond_to_string c) (fsize_suffix s) fa fb
  | Cvtif (s, fd, rs) -> Printf.sprintf "cvtif%s f%d, r%d" (fsize_suffix s) fd rs
  | Cvtfi (s, rd, fs) -> Printf.sprintf "cvtfi%s r%d, f%d" (fsize_suffix s) rd fs
  | Rdsr rd -> Printf.sprintf "rdsr r%d" rd
  | Trap code -> Printf.sprintf "trap %d" code
  | Nop -> "nop"

let defs_gpr = function
  | Load (_, rd, _, _)
  | Ldc (rd, _)
  | Alu (_, rd, _, _)
  | Alui (_, rd, _, _)
  | Mv (rd, _)
  | Mvi (rd, _)
  | Mvhi (rd, _)
  | Neg (rd, _)
  | Inv (rd, _)
  | Cmp (_, rd, _, _)
  | Cmpi (_, rd, _, _)
  | Cvtfi (_, rd, _)
  | Rdsr rd -> Some rd
  | Brl _ | Jl _ -> Some 1
  | Store _ | Fload _ | Fstore _ | Br _ | Bz _ | Bnz _ | J _ | Jz _ | Jnz _
  | Fbin _ | Fmv _ | Fneg _ | Fcmp _ | Cvtif _ | Trap _ | Nop -> None

let uses_gpr = function
  | Load (_, _, b, _) | Fload (_, _, b, _) -> [ b ]
  | Store (_, rs, b, _) -> [ rs; b ]
  | Fstore (_, _, b, _) -> [ b ]
  | Alu (_, _, ra, rb) | Cmp (_, _, ra, rb) -> [ ra; rb ]
  | Alui (_, _, ra, _) | Cmpi (_, _, ra, _) -> [ ra ]
  | Mv (_, rs) | Neg (_, rs) | Inv (_, rs) -> [ rs ]
  | Bz (r, _) | Bnz (r, _) | J r | Jl r -> [ r ]
  | Jz (rt, rd) | Jnz (rt, rd) -> [ rt; rd ]
  | Cvtif (_, _, rs) -> [ rs ]
  | Trap _ -> [ 4 ]
  | Ldc _ | Mvi _ | Mvhi _ | Br _ | Brl _ | Fbin _ | Fmv _ | Fneg _ | Fcmp _
  | Cvtfi _ | Rdsr _ | Nop -> []

let defs_fpr = function
  | Fload (_, fd, _, _)
  | Fbin (_, _, fd, _, _)
  | Fmv (_, fd, _)
  | Fneg (_, fd, _)
  | Cvtif (_, fd, _) -> Some fd
  | Load _ | Store _ | Fstore _ | Ldc _ | Alu _ | Alui _ | Mv _ | Mvi _
  | Mvhi _ | Neg _ | Inv _ | Cmp _ | Cmpi _ | Br _ | Bz _ | Bnz _ | Brl _
  | J _ | Jz _ | Jnz _ | Jl _ | Fcmp _ | Cvtfi _ | Rdsr _ | Trap _ | Nop ->
    None

let uses_fpr = function
  | Fstore (_, fs, _, _) -> [ fs ]
  | Fbin (_, _, _, fa, fb) | Fcmp (_, _, fa, fb) -> [ fa; fb ]
  | Fmv (_, _, fs) | Fneg (_, _, fs) | Cvtfi (_, _, fs) -> [ fs ]
  | Load _ | Store _ | Fload _ | Ldc _ | Alu _ | Alui _ | Mv _ | Mvi _
  | Mvhi _ | Neg _ | Inv _ | Cmp _ | Cmpi _ | Br _ | Bz _ | Bnz _ | Brl _
  | J _ | Jz _ | Jnz _ | Jl _ | Cvtif _ | Rdsr _ | Trap _ | Nop -> []

let is_load = function
  | Load _ | Fload _ | Ldc _ -> true
  | Store _ | Fstore _ | Alu _ | Alui _ | Mv _ | Mvi _ | Mvhi _ | Neg _
  | Inv _ | Cmp _ | Cmpi _ | Br _ | Bz _ | Bnz _ | Brl _ | J _ | Jz _ | Jnz _
  | Jl _ | Fbin _ | Fmv _ | Fneg _ | Fcmp _ | Cvtif _ | Cvtfi _ | Rdsr _
  | Trap _ | Nop -> false

let is_store = function
  | Store _ | Fstore _ -> true
  | Load _ | Fload _ | Ldc _ | Alu _ | Alui _ | Mv _ | Mvi _ | Mvhi _ | Neg _
  | Inv _ | Cmp _ | Cmpi _ | Br _ | Bz _ | Bnz _ | Brl _ | J _ | Jz _ | Jnz _
  | Jl _ | Fbin _ | Fmv _ | Fneg _ | Fcmp _ | Cvtif _ | Cvtfi _ | Rdsr _
  | Trap _ | Nop -> false

let is_branch = function
  | Br _ | Bz _ | Bnz _ | Brl _ | J _ | Jz _ | Jnz _ | Jl _ -> true
  | Load _ | Store _ | Fload _ | Fstore _ | Ldc _ | Alu _ | Alui _ | Mv _
  | Mvi _ | Mvhi _ | Neg _ | Inv _ | Cmp _ | Cmpi _ | Fbin _ | Fmv _ | Fneg _
  | Fcmp _ | Cvtif _ | Cvtfi _ | Rdsr _ | Trap _ | Nop -> false

let writes_fp_status = function
  | Fcmp _ -> true
  | Load _ | Store _ | Fload _ | Fstore _ | Ldc _ | Alu _ | Alui _ | Mv _
  | Mvi _ | Mvhi _ | Neg _ | Inv _ | Cmp _ | Cmpi _ | Br _ | Bz _ | Bnz _
  | Brl _ | J _ | Jz _ | Jnz _ | Jl _ | Fbin _ | Fmv _ | Fneg _ | Cvtif _
  | Cvtfi _ | Rdsr _ | Trap _ | Nop -> false
