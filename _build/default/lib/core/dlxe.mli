(** DLXe binary encoding (paper Figure 2): three 32-bit formats.

    - R-type [op6=0 | rs1_5 | rs2_5 | rd5 | func11] — register-register ALU,
      compares, jumps-through-register, FP operations, special.
    - I-type [op6 | rs1_5 | rd5 | imm16] — memory, immediates, conditional
      branches (word-scaled 16-bit offsets), compare-immediate.
    - J-type [op6 | off26] — br and brl, word-scaled.

    DLXe differs from DLX only in FP comparison instructions (status-register
    based, read with rdsr) and in details of the FP/memory interface
    (paper Section 2). *)

val encode : Insn.t -> int
(** Encode to a 32-bit word.
    @raise Invalid_argument if the instruction is not DLXe-legal. *)

val decode : int -> Insn.t option
(** Decode a 32-bit word; [None] for reserved encodings. *)
