let link = 1
let sp = 2
let n_arg_gpr = 4

let arg_gpr i =
  if i < 0 || i >= n_arg_gpr then invalid_arg "Regs.arg_gpr";
  4 + i

let ret_gpr = 4
let n_arg_fpr = 4

let arg_fpr i =
  if i < 0 || i >= n_arg_fpr then invalid_arg "Regs.arg_fpr";
  i

let ret_fpr = 0

(* r3 is grouped with the caller-saved set to give both machines one
   scratch register beyond the four argument registers; the suite's hot
   loops keep values live across calls, so the balance favors callee-saved
   registers.  The same split applies to both machines, only the file size
   differs. *)
let caller_saved_gpr ~n_gpr:_ ~zero_r0:_ = [ 3; 4; 5; 6; 7 ]

let callee_saved_gpr ~n_gpr = List.init (n_gpr - 8) (fun i -> 8 + i)
let caller_saved_fpr ~n_fpr:_ = [ 0; 1; 2; 3 ]
let callee_saved_fpr ~n_fpr = List.init (n_fpr - 4) (fun i -> 4 + i)
