open Repro_util

let bad fmt = Printf.ksprintf invalid_arg fmt

(* I-type / J-type major opcodes. *)
let iop_ld = 1
and iop_ldh = 2
and iop_ldhu = 3
and iop_ldb = 4
and iop_ldbu = 5
and iop_st = 6
and iop_sth = 7
and iop_stb = 8
and iop_fld_sf = 9
and iop_fst_sf = 10
and iop_fld_df = 11
and iop_fst_df = 12
and iop_addi = 13
and iop_subi = 14
and iop_andi = 15
and iop_ori = 16
and iop_xori = 17
and iop_shli = 18
and iop_shri = 19
and iop_shrai = 20
and iop_mvi = 21
and iop_mvhi = 22
and iop_bz = 23
and iop_bnz = 24
and iop_cmpi_base = 25 (* +cond, 10 slots *)
and jop_br = 35
and jop_brl = 36
and iop_trap = 37

(* R-type func codes. *)
let f_add = 0
and f_sub = 1
and f_and = 2
and f_or = 3
and f_xor = 4
and f_shl = 5
and f_shr = 6
and f_shra = 7
and f_cmp_base = 8 (* +cond, 10 slots *)
and f_j = 18
and f_jl = 19
and f_rdsr = 20
and f_mv = 21
and f_fbin_sf = 22 (* 4 slots *)
and f_fneg_sf = 26
and f_fcmp_sf = 27 (* 10 slots *)
and f_cvtif_sf = 37
and f_cvtfi_sf = 38
and f_fbin_df = 39
and f_fneg_df = 43
and f_fcmp_df = 44 (* 10 slots *)
and f_cvtif_df = 54
and f_cvtfi_df = 55
and f_nop = 56
and f_fmv_sf = 57
and f_fmv_df = 58
and f_jz = 59
and f_jnz = 60

let cond_index (c : Insn.cond) =
  match c with
  | Lt -> 0
  | Ltu -> 1
  | Le -> 2
  | Leu -> 3
  | Eq -> 4
  | Ne -> 5
  | Gt -> 6
  | Gtu -> 7
  | Ge -> 8
  | Geu -> 9

let cond_of_index = function
  | 0 -> Insn.Lt
  | 1 -> Ltu
  | 2 -> Le
  | 3 -> Leu
  | 4 -> Eq
  | 5 -> Ne
  | 6 -> Gt
  | 7 -> Gtu
  | 8 -> Ge
  | 9 -> Geu
  | n -> bad "DLXe: cond index %d" n

let fbin_index (f : Insn.fbin) =
  match f with Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3

let fbin_of_index = function
  | 0 -> Insn.Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | n -> bad "DLXe: fbin index %d" n

let rtype ~rs1 ~rs2 ~rd ~func =
  Bitops.(
    0 |> put ~lo:21 ~hi:25 rs1 |> put ~lo:16 ~hi:20 rs2 |> put ~lo:11 ~hi:15 rd
    |> put ~lo:0 ~hi:10 func)

let itype ~op ~rs1 ~rd ~imm =
  if not (Bitops.fits_signed ~width:16 imm || Bitops.fits_unsigned ~width:16 imm)
  then bad "DLXe: immediate %d does not fit 16 bits" imm;
  Bitops.(
    0 |> put ~lo:26 ~hi:31 op |> put ~lo:21 ~hi:25 rs1 |> put ~lo:16 ~hi:20 rd
    |> put ~lo:0 ~hi:15 (zext ~width:16 imm))

let jtype ~op ~off =
  if off land 3 <> 0 then bad "DLXe: jump offset %d unaligned" off;
  if not (Bitops.fits_signed ~width:26 (off asr 2)) then
    bad "DLXe: jump offset %d out of range" off;
  Bitops.(
    0 |> put ~lo:26 ~hi:31 op |> put ~lo:0 ~hi:25 (zext ~width:26 (off asr 2)))

let branch_imm off =
  if off land 3 <> 0 then bad "DLXe: branch offset %d unaligned" off;
  if not (Bitops.fits_signed ~width:16 (off asr 2)) then
    bad "DLXe: branch offset %d out of range" off;
  off asr 2

let alu_iop (op : Insn.alu) =
  match op with
  | Add -> iop_addi
  | Sub -> iop_subi
  | And -> iop_andi
  | Or -> iop_ori
  | Xor -> iop_xori
  | Shl -> iop_shli
  | Shr -> iop_shri
  | Shra -> iop_shrai

let alu_func (op : Insn.alu) =
  match op with
  | Add -> f_add
  | Sub -> f_sub
  | And -> f_and
  | Or -> f_or
  | Xor -> f_xor
  | Shl -> f_shl
  | Shr -> f_shr
  | Shra -> f_shra

let encode (i : Insn.t) =
  match i with
  | Load (w, rd, base, off) ->
    let op =
      match w with
      | Lw -> iop_ld
      | Lh -> iop_ldh
      | Lhu -> iop_ldhu
      | Lb -> iop_ldb
      | Lbu -> iop_ldbu
    in
    itype ~op ~rs1:base ~rd ~imm:off
  | Store (w, rs, base, off) ->
    let op = match w with Sw -> iop_st | Sh -> iop_sth | Sb -> iop_stb in
    itype ~op ~rs1:base ~rd:rs ~imm:off
  | Fload (s, fd, base, off) ->
    itype
      ~op:(match s with Sf -> iop_fld_sf | Df -> iop_fld_df)
      ~rs1:base ~rd:fd ~imm:off
  | Fstore (s, fs, base, off) ->
    itype
      ~op:(match s with Sf -> iop_fst_sf | Df -> iop_fst_df)
      ~rs1:base ~rd:fs ~imm:off
  | Ldc _ -> bad "DLXe: ldc does not exist"
  | Alu (op, rd, ra, rb) -> rtype ~rs1:ra ~rs2:rb ~rd ~func:(alu_func op)
  | Alui (op, rd, ra, imm) -> itype ~op:(alu_iop op) ~rs1:ra ~rd ~imm
  | Mv (rd, rs) -> rtype ~rs1:rs ~rs2:0 ~rd ~func:f_mv
  | Mvi (rd, imm) -> itype ~op:iop_mvi ~rs1:0 ~rd ~imm
  | Mvhi (rd, imm) -> itype ~op:iop_mvhi ~rs1:0 ~rd ~imm
  | Neg _ | Inv _ -> bad "DLXe: neg/inv do not exist (r0 is zero)"
  | Cmp (c, rd, ra, rb) ->
    rtype ~rs1:ra ~rs2:rb ~rd ~func:(f_cmp_base + cond_index c)
  | Cmpi (c, rd, ra, imm) ->
    itype ~op:(iop_cmpi_base + cond_index c) ~rs1:ra ~rd ~imm
  | Br off -> jtype ~op:jop_br ~off
  | Brl off -> jtype ~op:jop_brl ~off
  | Bz (r, off) -> itype ~op:iop_bz ~rs1:r ~rd:0 ~imm:(branch_imm off)
  | Bnz (r, off) -> itype ~op:iop_bnz ~rs1:r ~rd:0 ~imm:(branch_imm off)
  | J r -> rtype ~rs1:r ~rs2:0 ~rd:0 ~func:f_j
  | Jz (rt, rd) -> rtype ~rs1:rd ~rs2:rt ~rd:0 ~func:f_jz
  | Jnz (rt, rd) -> rtype ~rs1:rd ~rs2:rt ~rd:0 ~func:f_jnz
  | Jl r -> rtype ~rs1:r ~rs2:0 ~rd:0 ~func:f_jl
  | Fbin (op, s, fd, fa, fb) ->
    let base = match s with Sf -> f_fbin_sf | Df -> f_fbin_df in
    rtype ~rs1:fa ~rs2:fb ~rd:fd ~func:(base + fbin_index op)
  | Fmv (s, fd, fs) ->
    rtype ~rs1:fs ~rs2:0 ~rd:fd
      ~func:(match s with Sf -> f_fmv_sf | Df -> f_fmv_df)
  | Fneg (s, fd, fs) ->
    rtype ~rs1:fs ~rs2:0 ~rd:fd
      ~func:(match s with Sf -> f_fneg_sf | Df -> f_fneg_df)
  | Fcmp (c, s, fa, fb) ->
    let base = match s with Sf -> f_fcmp_sf | Df -> f_fcmp_df in
    rtype ~rs1:fa ~rs2:fb ~rd:0 ~func:(base + cond_index c)
  | Cvtif (s, fd, rs) ->
    rtype ~rs1:rs ~rs2:0 ~rd:fd
      ~func:(match s with Sf -> f_cvtif_sf | Df -> f_cvtif_df)
  | Cvtfi (s, rd, fs) ->
    rtype ~rs1:fs ~rs2:0 ~rd
      ~func:(match s with Sf -> f_cvtfi_sf | Df -> f_cvtfi_df)
  | Rdsr rd -> rtype ~rs1:0 ~rs2:0 ~rd ~func:f_rdsr
  | Trap code -> itype ~op:iop_trap ~rs1:0 ~rd:0 ~imm:code
  | Nop -> rtype ~rs1:0 ~rs2:0 ~rd:0 ~func:f_nop

let decode_rtype w =
  let rs1 = Bitops.bits ~lo:21 ~hi:25 w in
  let rs2 = Bitops.bits ~lo:16 ~hi:20 w in
  let rd = Bitops.bits ~lo:11 ~hi:15 w in
  let func = Bitops.bits ~lo:0 ~hi:10 w in
  if func < 8 then
    let alu : Insn.alu =
      match func with
      | 0 -> Add
      | 1 -> Sub
      | 2 -> And
      | 3 -> Or
      | 4 -> Xor
      | 5 -> Shl
      | 6 -> Shr
      | _ -> Shra
    in
    Some (Insn.Alu (alu, rd, rs1, rs2))
  else if func >= f_cmp_base && func < f_cmp_base + 10 then
    Some (Cmp (cond_of_index (func - f_cmp_base), rd, rs1, rs2))
  else if func = f_j then Some (J rs1)
  else if func = f_jl then Some (Jl rs1)
  else if func = f_rdsr then Some (Rdsr rd)
  else if func = f_mv then Some (Mv (rd, rs1))
  else if func >= f_fbin_sf && func < f_fbin_sf + 4 then
    Some (Fbin (fbin_of_index (func - f_fbin_sf), Sf, rd, rs1, rs2))
  else if func = f_fneg_sf then Some (Fneg (Sf, rd, rs1))
  else if func >= f_fcmp_sf && func < f_fcmp_sf + 10 then
    Some (Fcmp (cond_of_index (func - f_fcmp_sf), Sf, rs1, rs2))
  else if func = f_cvtif_sf then Some (Cvtif (Sf, rd, rs1))
  else if func = f_cvtfi_sf then Some (Cvtfi (Sf, rd, rs1))
  else if func >= f_fbin_df && func < f_fbin_df + 4 then
    Some (Fbin (fbin_of_index (func - f_fbin_df), Df, rd, rs1, rs2))
  else if func = f_fneg_df then Some (Fneg (Df, rd, rs1))
  else if func >= f_fcmp_df && func < f_fcmp_df + 10 then
    Some (Fcmp (cond_of_index (func - f_fcmp_df), Df, rs1, rs2))
  else if func = f_cvtif_df then Some (Cvtif (Df, rd, rs1))
  else if func = f_cvtfi_df then Some (Cvtfi (Df, rd, rs1))
  else if func = f_nop then Some Nop
  else if func = f_jz then Some (Jz (rs2, rs1))
  else if func = f_jnz then Some (Jnz (rs2, rs1))
  else if func = f_fmv_sf then Some (Fmv (Sf, rd, rs1))
  else if func = f_fmv_df then Some (Fmv (Df, rd, rs1))
  else None

let decode w =
  let w = w land 0xFFFF_FFFF in
  let op = Bitops.bits ~lo:26 ~hi:31 w in
  let rs1 = Bitops.bits ~lo:21 ~hi:25 w in
  let rd = Bitops.bits ~lo:16 ~hi:20 w in
  let imm_s = Bitops.sext ~width:16 w in
  let imm_u = Bitops.zext ~width:16 w in
  let joff = 4 * Bitops.sext ~width:26 w in
  if op = 0 then decode_rtype w
  else if op = iop_ld then Some (Load (Lw, rd, rs1, imm_s))
  else if op = iop_ldh then Some (Load (Lh, rd, rs1, imm_s))
  else if op = iop_ldhu then Some (Load (Lhu, rd, rs1, imm_s))
  else if op = iop_ldb then Some (Load (Lb, rd, rs1, imm_s))
  else if op = iop_ldbu then Some (Load (Lbu, rd, rs1, imm_s))
  else if op = iop_st then Some (Store (Sw, rd, rs1, imm_s))
  else if op = iop_sth then Some (Store (Sh, rd, rs1, imm_s))
  else if op = iop_stb then Some (Store (Sb, rd, rs1, imm_s))
  else if op = iop_fld_sf then Some (Fload (Sf, rd, rs1, imm_s))
  else if op = iop_fst_sf then Some (Fstore (Sf, rd, rs1, imm_s))
  else if op = iop_fld_df then Some (Fload (Df, rd, rs1, imm_s))
  else if op = iop_fst_df then Some (Fstore (Df, rd, rs1, imm_s))
  else if op = iop_addi then Some (Alui (Add, rd, rs1, imm_s))
  else if op = iop_subi then Some (Alui (Sub, rd, rs1, imm_s))
  else if op = iop_andi then Some (Alui (And, rd, rs1, imm_u))
  else if op = iop_ori then Some (Alui (Or, rd, rs1, imm_u))
  else if op = iop_xori then Some (Alui (Xor, rd, rs1, imm_u))
  else if op = iop_shli then Some (Alui (Shl, rd, rs1, imm_u land 31))
  else if op = iop_shri then Some (Alui (Shr, rd, rs1, imm_u land 31))
  else if op = iop_shrai then Some (Alui (Shra, rd, rs1, imm_u land 31))
  else if op = iop_mvi then Some (Mvi (rd, imm_s))
  else if op = iop_mvhi then Some (Mvhi (rd, imm_u))
  else if op = iop_bz then Some (Bz (rs1, 4 * imm_s))
  else if op = iop_bnz then Some (Bnz (rs1, 4 * imm_s))
  else if op >= iop_cmpi_base && op < iop_cmpi_base + 10 then
    Some (Cmpi (cond_of_index (op - iop_cmpi_base), rd, rs1, imm_s))
  else if op = jop_br then Some (Br joff)
  else if op = jop_brl then Some (Brl joff)
  else if op = iop_trap then Some (Trap imm_u)
  else None
