open Repro_util

let bad fmt = Printf.ksprintf invalid_arg fmt

(* REG-format opcode map (6 bits). *)
let op_add = 0
and op_sub = 1
and op_and = 2
and op_or = 3
and op_xor = 4
and op_shl = 5
and op_shr = 6
and op_shra = 7
and op_mv = 8
and op_neg = 9
and op_inv = 10
and op_ldh = 11
and op_ldhu = 12
and op_sth = 13
and op_ldb = 14
and op_ldbu = 15
and op_stb = 16
and op_cmp_base = 17 (* +cond index, 6 slots *)
and op_j = 23
and op_jl = 24
and op_trap = 25
and op_rdsr = 26
and op_fbin_df = 27 (* +fbin index, 4 slots *)
and op_fneg_df = 31
and op_fcmp_df = 32 (* +cond index, 6 slots *)
and op_cvtif_df = 38
and op_cvtfi_df = 39
and op_fbin_sf = 40
and op_fneg_sf = 44
and op_fmv_df = 45
and op_fmv_sf = 46
and op_jz = 47
and op_jnz = 48
and op_cvtif_sf = 51
and op_cvtfi_sf = 52
and op_nop = 53
and op_addi = 54 (* immediate forms take opcode pairs; bit 0 = imm bit 4 *)
and op_subi = 56
and op_shli = 58
and op_shri = 60
and op_shrai = 62

let cond_index (c : Insn.cond) =
  match c with
  | Lt -> 0
  | Ltu -> 1
  | Le -> 2
  | Leu -> 3
  | Eq -> 4
  | Ne -> 5
  | Gt | Gtu | Ge | Geu -> bad "D16: condition %s" (Insn.cond_to_string c)

let cond_of_index = function
  | 0 -> Insn.Lt
  | 1 -> Ltu
  | 2 -> Le
  | 3 -> Leu
  | 4 -> Eq
  | 5 -> Ne
  | n -> bad "D16: cond index %d" n

let fbin_index (f : Insn.fbin) =
  match f with Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3

let fbin_of_index = function
  | 0 -> Insn.Fadd
  | 1 -> Fsub
  | 2 -> Fmul
  | 3 -> Fdiv
  | n -> bad "D16: fbin index %d" n

let mem ~op ~off ~ry ~rx =
  Bitops.(
    0 |> put ~lo:15 ~hi:15 1 |> put ~lo:13 ~hi:14 op
    |> put ~lo:8 ~hi:12 (off / 4)
    |> put ~lo:4 ~hi:7 ry |> put ~lo:0 ~hi:3 rx)

let reg ~op ~ry ~rx =
  Bitops.(
    0 |> put ~lo:14 ~hi:15 1 |> put ~lo:8 ~hi:13 op |> put ~lo:4 ~hi:7 ry
    |> put ~lo:0 ~hi:3 rx)

let reg_imm ~base_op ~imm ~rx =
  reg ~op:(base_op lor ((imm lsr 4) land 1)) ~ry:(imm land 0xF) ~rx

let imm_base_op (op : Insn.alu) =
  match op with
  | Add -> op_addi
  | Sub -> op_subi
  | Shl -> op_shli
  | Shr -> op_shri
  | Shra -> op_shrai
  | And | Or | Xor -> bad "D16: no immediate form of %s" (Insn.alu_to_string op)

let rr_op (op : Insn.alu) =
  match op with
  | Add -> op_add
  | Sub -> op_sub
  | And -> op_and
  | Or -> op_or
  | Xor -> op_xor
  | Shl -> op_shl
  | Shr -> op_shr
  | Shra -> op_shra

let encode (i : Insn.t) =
  match i with
  | Load (Lw, rd, base, off) -> mem ~op:0 ~off ~ry:base ~rx:rd
  | Store (Sw, rs, base, off) -> mem ~op:1 ~off ~ry:base ~rx:rs
  | Fload (Df, fd, base, off) -> mem ~op:2 ~off ~ry:base ~rx:fd
  | Fstore (Df, fs, base, off) -> mem ~op:3 ~off ~ry:base ~rx:fs
  | Fload (Sf, _, _, _) | Fstore (Sf, _, _, _) ->
    bad "D16: single-precision memory operations are not encoded"
  | Load (Lh, rd, base, 0) -> reg ~op:op_ldh ~ry:base ~rx:rd
  | Load (Lhu, rd, base, 0) -> reg ~op:op_ldhu ~ry:base ~rx:rd
  | Load (Lb, rd, base, 0) -> reg ~op:op_ldb ~ry:base ~rx:rd
  | Load (Lbu, rd, base, 0) -> reg ~op:op_ldbu ~ry:base ~rx:rd
  | Store (Sh, rs, base, 0) -> reg ~op:op_sth ~ry:base ~rx:rs
  | Store (Sb, rs, base, 0) -> reg ~op:op_stb ~ry:base ~rx:rs
  | Load (_, _, _, off) | Store (_, _, _, off) ->
    bad "D16: subword memory access with offset %d" off
  | Ldc (0, off) ->
    Bitops.(0 |> put ~lo:11 ~hi:15 1 |> put ~lo:0 ~hi:10 (-off / 4))
  | Ldc (rd, _) -> bad "D16: ldc destination r%d (must be r0)" rd
  | Alu (op, rd, ra, rb) ->
    if rd <> ra then bad "D16: three-address alu";
    reg ~op:(rr_op op) ~ry:rb ~rx:rd
  | Alui (op, rd, ra, imm) ->
    if rd <> ra then bad "D16: three-address alui";
    if not (Bitops.fits_unsigned ~width:5 imm) then bad "D16: alui imm %d" imm;
    reg_imm ~base_op:(imm_base_op op) ~imm ~rx:rd
  | Mv (rd, rs) -> reg ~op:op_mv ~ry:rs ~rx:rd
  | Mvi (rd, imm) ->
    if not (Bitops.fits_signed ~width:9 imm) then bad "D16: mvi imm %d" imm;
    Bitops.(
      0 |> put ~lo:13 ~hi:15 1
      |> put ~lo:4 ~hi:12 (zext ~width:9 imm)
      |> put ~lo:0 ~hi:3 rd)
  | Mvhi _ -> bad "D16: mvhi does not exist"
  | Neg (rd, rs) -> reg ~op:op_neg ~ry:rs ~rx:rd
  | Inv (rd, rs) -> reg ~op:op_inv ~ry:rs ~rx:rd
  | Cmp (c, 0, ra, rb) -> reg ~op:(op_cmp_base + cond_index c) ~ry:rb ~rx:ra
  | Cmp (_, rd, _, _) -> bad "D16: compare destination r%d (must be r0)" rd
  | Cmpi _ -> bad "D16: compare immediate does not exist"
  | Br off | Bz (0, off) | Bnz (0, off) | Brl off ->
    let op =
      match i with
      | Br _ -> 0
      | Bz _ -> 1
      | Bnz _ -> 2
      | Brl _ -> 3
      | _ -> assert false
    in
    if off land 1 <> 0 then bad "D16: branch offset %d unaligned" off;
    if not (Bitops.fits_signed ~width:10 (off / 2)) then
      bad "D16: branch offset %d out of range" off;
    Bitops.(
      0 |> put ~lo:12 ~hi:15 1 |> put ~lo:10 ~hi:11 op
      |> put ~lo:0 ~hi:9 (zext ~width:10 (off asr 1)))
  | Bz (r, _) | Bnz (r, _) -> bad "D16: conditional branch on r%d (must be r0)" r
  | J r -> reg ~op:op_j ~ry:0 ~rx:r
  | Jz (0, rd) -> reg ~op:op_jz ~ry:0 ~rx:rd
  | Jnz (0, rd) -> reg ~op:op_jnz ~ry:0 ~rx:rd
  | Jz (rt, _) | Jnz (rt, _) ->
    bad "D16: conditional jumps test r0 implicitly (got r%d)" rt
  | Jl r -> reg ~op:op_jl ~ry:0 ~rx:r
  | Fbin (op, s, fd, fa, fb) ->
    if fd <> fa then bad "D16: three-address FP operation";
    let base = match s with Df -> op_fbin_df | Sf -> op_fbin_sf in
    reg ~op:(base + fbin_index op) ~ry:fb ~rx:fd
  | Fneg (s, fd, fs) ->
    reg ~op:(match s with Df -> op_fneg_df | Sf -> op_fneg_sf) ~ry:fs ~rx:fd
  | Fcmp (c, Df, fa, fb) -> reg ~op:(op_fcmp_df + cond_index c) ~ry:fb ~rx:fa
  | Fcmp (_, Sf, _, _) ->
    bad "D16: single-precision compares are not encoded"
  | Fmv (s, fd, fs) ->
    reg ~op:(match s with Df -> op_fmv_df | Sf -> op_fmv_sf) ~ry:fs ~rx:fd
  | Cvtif (s, fd, rs) ->
    reg ~op:(match s with Df -> op_cvtif_df | Sf -> op_cvtif_sf) ~ry:rs ~rx:fd
  | Cvtfi (s, rd, fs) ->
    reg ~op:(match s with Df -> op_cvtfi_df | Sf -> op_cvtfi_sf) ~ry:fs ~rx:rd
  | Rdsr rd -> reg ~op:op_rdsr ~ry:0 ~rx:rd
  | Trap code ->
    if code < 0 || code > 15 then bad "D16: trap code %d" code;
    reg ~op:op_trap ~ry:0 ~rx:code
  | Nop -> reg ~op:op_nop ~ry:0 ~rx:0

let decode_reg w =
  let op = Bitops.bits ~lo:8 ~hi:13 w in
  let ry = Bitops.bits ~lo:4 ~hi:7 w in
  let rx = Bitops.bits ~lo:0 ~hi:3 w in
  let imm5 base = ((op - base) lsl 4) lor ry in
  if op < 8 then
    let alu : Insn.alu =
      match op with
      | 0 -> Add
      | 1 -> Sub
      | 2 -> And
      | 3 -> Or
      | 4 -> Xor
      | 5 -> Shl
      | 6 -> Shr
      | _ -> Shra
    in
    Some (Insn.Alu (alu, rx, rx, ry))
  else if op = op_mv then Some (Mv (rx, ry))
  else if op = op_neg then Some (Neg (rx, ry))
  else if op = op_inv then Some (Inv (rx, ry))
  else if op = op_ldh then Some (Load (Lh, rx, ry, 0))
  else if op = op_ldhu then Some (Load (Lhu, rx, ry, 0))
  else if op = op_sth then Some (Store (Sh, rx, ry, 0))
  else if op = op_ldb then Some (Load (Lb, rx, ry, 0))
  else if op = op_ldbu then Some (Load (Lbu, rx, ry, 0))
  else if op = op_stb then Some (Store (Sb, rx, ry, 0))
  else if op >= op_cmp_base && op < op_cmp_base + 6 then
    Some (Cmp (cond_of_index (op - op_cmp_base), 0, rx, ry))
  else if op = op_j then Some (J rx)
  else if op = op_jl then Some (Jl rx)
  else if op = op_trap then Some (Trap rx)
  else if op = op_rdsr then Some (Rdsr rx)
  else if op >= op_fbin_df && op < op_fbin_df + 4 then
    Some (Fbin (fbin_of_index (op - op_fbin_df), Df, rx, rx, ry))
  else if op = op_fneg_df then Some (Fneg (Df, rx, ry))
  else if op >= op_fcmp_df && op < op_fcmp_df + 6 then
    Some (Fcmp (cond_of_index (op - op_fcmp_df), Df, rx, ry))
  else if op = op_cvtif_df then Some (Cvtif (Df, rx, ry))
  else if op = op_cvtfi_df then Some (Cvtfi (Df, rx, ry))
  else if op >= op_fbin_sf && op < op_fbin_sf + 4 then
    Some (Fbin (fbin_of_index (op - op_fbin_sf), Sf, rx, rx, ry))
  else if op = op_fneg_sf then Some (Fneg (Sf, rx, ry))
  else if op = op_jz then Some (Jz (0, rx))
  else if op = op_jnz then Some (Jnz (0, rx))
  else if op = op_fmv_df then Some (Fmv (Df, rx, ry))
  else if op = op_fmv_sf then Some (Fmv (Sf, rx, ry))
  else if op = op_cvtif_sf then Some (Cvtif (Sf, rx, ry))
  else if op = op_cvtfi_sf then Some (Cvtfi (Sf, rx, ry))
  else if op = op_nop then Some Nop
  else if op >= op_addi && op <= op_addi + 1 then
    Some (Alui (Add, rx, rx, imm5 op_addi))
  else if op >= op_subi && op <= op_subi + 1 then
    Some (Alui (Sub, rx, rx, imm5 op_subi))
  else if op >= op_shli && op <= op_shli + 1 then
    Some (Alui (Shl, rx, rx, imm5 op_shli))
  else if op >= op_shri && op <= op_shri + 1 then
    Some (Alui (Shr, rx, rx, imm5 op_shri))
  else if op >= op_shrai && op <= op_shrai + 1 then
    Some (Alui (Shra, rx, rx, imm5 op_shrai))
  else None

let decode w =
  let w = w land 0xFFFF in
  if w land 0x8000 <> 0 then
    let op = Bitops.bits ~lo:13 ~hi:14 w in
    let off = 4 * Bitops.bits ~lo:8 ~hi:12 w in
    let ry = Bitops.bits ~lo:4 ~hi:7 w in
    let rx = Bitops.bits ~lo:0 ~hi:3 w in
    Some
      (match op with
      | 0 -> Insn.Load (Lw, rx, ry, off)
      | 1 -> Store (Sw, rx, ry, off)
      | 2 -> Fload (Df, rx, ry, off)
      | _ -> Fstore (Df, rx, ry, off))
  else if w land 0x4000 <> 0 then decode_reg w
  else if w land 0x2000 <> 0 then
    Some
      (Mvi (Bitops.bits ~lo:0 ~hi:3 w, Bitops.sext ~width:9 (w lsr 4)))
  else if w land 0x1000 <> 0 then
    let off = 2 * Bitops.sext ~width:10 w in
    Some
      (match Bitops.bits ~lo:10 ~hi:11 w with
      | 0 -> Insn.Br off
      | 1 -> Bz (0, off)
      | 2 -> Bnz (0, off)
      | _ -> Brl off)
  else if w land 0x0800 <> 0 then Some (Ldc (0, -4 * Bitops.bits ~lo:0 ~hi:10 w))
  else None
