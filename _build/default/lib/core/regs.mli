(** Register-usage conventions shared by both targets.

    The paper fixes a flat, compile-time-allocated register file with
    procedure-level allocation (Section 3.3.1).  We use the same conventions
    on both machines so that only the file *size* differs:

    - r0: special.  DLXe: hardwired zero.  D16: implicit compare destination
      and assembler temporary (never allocated).
    - r1: link register (paper: "linkage register is r1").
    - r2: stack pointer.  Frames are addressed at non-negative sp offsets so
      that D16's unsigned MEM displacements can reach them.
    - r3..r7: caller-saved (r4..r7 double as the integer argument/result
      registers).
    - r8..: callee-saved.
    - f0..f3: FP argument/result registers, caller-saved; f4..: callee-saved.
*)

val link : int
val sp : int
val n_arg_gpr : int
val arg_gpr : int -> int
(** [arg_gpr i] is the register carrying integer argument [i] (0-based);
    @raise Invalid_argument if [i >= n_arg_gpr]. *)

val ret_gpr : int
val n_arg_fpr : int
val arg_fpr : int -> int
val ret_fpr : int

val caller_saved_gpr : n_gpr:int -> zero_r0:bool -> int list
(** Caller-saved allocatable general registers (includes the argument
    registers). *)

val callee_saved_gpr : n_gpr:int -> int list
val caller_saved_fpr : n_fpr:int -> int list
val callee_saved_fpr : n_fpr:int -> int list
