(** The machine operation set shared by D16 and DLXe (paper Table 1).

    Both instruction sets execute the same operations on the same five-stage
    pipeline; they differ only in encoding size, register-file size, operand
    count, and immediate/offset reach.  This module defines the decoded,
    encoding-independent instruction form used by the code generator, the
    assembler/linker, and the simulator.  [Target] states which instructions
    and which operand values each encoding accepts; [D16] and [Dlxe] give the
    binary formats. *)

type gpr = int
(** General register index ([0 .. n_gpr-1]).  Conventions: r1 = link,
    r2 = stack pointer.  On DLXe r0 is hardwired to zero; on D16 r0 is the
    implicit compare destination and assembler temporary. *)

type fpr = int
(** Floating-point register index ([0 .. n_fpr-1]). *)

type cond = Lt | Ltu | Le | Leu | Eq | Ne | Gt | Gtu | Ge | Geu
(** Comparison conditions.  D16 supports only the first six; DLXe all ten
    (paper Table 1). *)

type load_width = Lw | Lh | Lhu | Lb | Lbu
type store_width = Sw | Sh | Sb

type alu = Add | Sub | And | Or | Xor | Shl | Shr | Shra
(** Two-operand ALU operations.  [Shr] is logical, [Shra] arithmetic. *)

type fbin = Fadd | Fsub | Fmul | Fdiv
type fsize = Sf | Df

type t =
  | Load of load_width * gpr * gpr * int
      (** [Load (w, rd, base, off)]: rd <- mem\[base + off\]. *)
  | Store of store_width * gpr * gpr * int
      (** [Store (w, rs, base, off)]: mem\[base + off\] <- rs. *)
  | Fload of fsize * fpr * gpr * int
  | Fstore of fsize * fpr * gpr * int
  | Ldc of gpr * int
      (** D16 literal-pool load: rd <- mem\[pc + off\], [off] negative,
          word-aligned.  The destination is architecturally fixed to r0;
          the field is kept explicit so the simulator needs no special case. *)
  | Alu of alu * gpr * gpr * gpr  (** [Alu (op, rd, ra, rb)]: rd <- ra op rb. *)
  | Alui of alu * gpr * gpr * int  (** rd <- ra op imm. *)
  | Mv of gpr * gpr
  | Mvi of gpr * int
  | Mvhi of gpr * int  (** DLXe only: set the upper 16 bits, clear the rest. *)
  | Neg of gpr * gpr  (** D16 only (DLXe uses sub rd, r0, rs). *)
  | Inv of gpr * gpr  (** Bitwise complement; D16 only. *)
  | Cmp of cond * gpr * gpr * gpr
      (** [Cmp (c, rd, ra, rb)]: rd <- (ra c rb) ? all-ones : 0.
          D16 requires rd = r0. *)
  | Cmpi of cond * gpr * gpr * int  (** DLXe only. *)
  | Br of int  (** Unconditional PC-relative branch (byte offset). *)
  | Bz of gpr * int  (** Branch if register zero.  D16 requires the r0. *)
  | Bnz of gpr * int
  | Brl of int
      (** PC-relative call; link register is r1 on both machines
          (D16 BR-format bl; DLXe 26-bit jal). *)
  | J of gpr  (** Jump to absolute address in register. *)
  | Jz of gpr * gpr
      (** [Jz (rt, rd)]: jump to rd if rt is zero.  D16 tests r0
          implicitly. *)
  | Jnz of gpr * gpr
  | Jl of gpr  (** Jump to register, linking r1. *)
  | Fbin of fbin * fsize * fpr * fpr * fpr
  | Fmv of fsize * fpr * fpr  (** FP register move (DLX MOVF/MOVD). *)
  | Fneg of fsize * fpr * fpr
  | Fcmp of cond * fsize * fpr * fpr
      (** Sets the FP status register (read back with [Rdsr]); both machines
          branch on FP conditions via fcmp; rdsr; bnz. *)
  | Cvtif of fsize * fpr * gpr  (** Integer to float (paper's si2sf/di2df). *)
  | Cvtfi of fsize * gpr * fpr  (** Float to integer (df2di). *)
  | Rdsr of gpr  (** rd <- FP status register. *)
  | Trap of int  (** System services; see {!Trapcode}. *)
  | Nop

val cond_to_string : cond -> string
val alu_to_string : alu -> string
val negate_cond : cond -> cond
(** The condition testing the complementary outcome ([Lt] <-> [Ge], ...). *)

val swap_cond : cond -> cond
(** The condition equivalent under operand exchange ([Lt] <-> [Gt], ...). *)

val to_string : t -> string
(** Assembly-style rendering, e.g. ["add r4, r5, r6"]. *)

val defs_gpr : t -> gpr option
(** The general register written by the instruction, if any. *)

val uses_gpr : t -> gpr list
(** General registers read by the instruction. *)

val defs_fpr : t -> fpr option
val uses_fpr : t -> fpr list

val is_load : t -> bool
(** Loads (incl. FP and Ldc) — subject to the one-cycle load delay slot. *)

val is_store : t -> bool

val is_branch : t -> bool
(** Control transfers (branches, jumps, calls) — followed by a delay slot. *)

val writes_fp_status : t -> bool
