let exit = 0
let put_int = 1
let put_char = 2
let put_float = 3

let to_string = function
  | 0 -> "exit"
  | 1 -> "put_int"
  | 2 -> "put_char"
  | 3 -> "put_float"
  | n -> invalid_arg (Printf.sprintf "Trapcode.to_string: %d" n)

let is_valid n = n >= 0 && n <= 3
