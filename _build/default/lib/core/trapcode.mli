(** System-service numbers for the [trap] instruction.

    The paper's runtime came from BSD library sources; ours provides the
    minimal services the benchmark suite needs.  Arguments are passed in r4
    (or f0 for [put_float]); traps execute in one cycle and generate no
    memory traffic of their own. *)

val exit : int  (** Terminate; r4 holds the exit status. *)

val put_int : int  (** Print r4 as a signed decimal to program output. *)

val put_char : int  (** Print the low byte of r4. *)

val put_float : int  (** Print f0 with 6 decimals. *)

val to_string : int -> string
(** Human-readable name; @raise Invalid_argument on unknown codes. *)

val is_valid : int -> bool
