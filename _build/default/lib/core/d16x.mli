(** Binary encoding for the D16 extension of paper Section 3.3.3.

    Identical to {!D16} except in the MVI tag space, where the former sign
    bit selects between two 8-bit-immediate operations:

    - MVI8    [001 | 0 | const8 | rx] — move sign-extended 8-bit immediate;
    - CMPEQI8 [001 | 1 | const8 | rx] — r0 <- (rx == sext const8).

    The paper: "Giving up one bit in the D16 MVI immediate field, one could
    implement an 8-bit move immediate and an 8-bit compare-equal immediate
    instruction, which could improve D16 performance by up to 2 percent." *)

val encode : Insn.t -> int
(** @raise Invalid_argument if the instruction is not D16x-legal. *)

val decode : int -> Insn.t option
