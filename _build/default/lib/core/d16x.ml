open Repro_util

let bad fmt = Printf.ksprintf invalid_arg fmt

let encode (i : Insn.t) =
  match i with
  | Insn.Mvi (rd, imm) ->
    if not (Bitops.fits_signed ~width:8 imm) then
      bad "D16x: mvi immediate %d exceeds 8 bits" imm;
    Bitops.(
      0 |> put ~lo:13 ~hi:15 1
      |> put ~lo:4 ~hi:11 (zext ~width:8 imm)
      |> put ~lo:0 ~hi:3 rd)
  | Insn.Cmpi (Eq, 0, ra, imm) ->
    if not (Bitops.fits_signed ~width:8 imm) then
      bad "D16x: compare immediate %d exceeds 8 bits" imm;
    Bitops.(
      0 |> put ~lo:13 ~hi:15 1 |> put ~lo:12 ~hi:12 1
      |> put ~lo:4 ~hi:11 (zext ~width:8 imm)
      |> put ~lo:0 ~hi:3 ra)
  | Insn.Cmpi (c, rd, _, _) ->
    bad "D16x: compare immediate is cmpeq to r0 only (got %s, r%d)"
      (Insn.cond_to_string c) rd
  | _ -> D16.encode i

let decode w =
  let w = w land 0xFFFF in
  (* Only the MVI tag space differs from the base encoding. *)
  if w land 0xE000 = 0x2000 then begin
    let rx = Bitops.bits ~lo:0 ~hi:3 w in
    let imm = Bitops.sext ~width:8 (w lsr 4) in
    if w land 0x1000 = 0 then Some (Insn.Mvi (rx, imm))
    else Some (Insn.Cmpi (Eq, 0, rx, imm))
  end
  else D16.decode w
