type token =
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = { tok : token; line : int }

exception Error of string

let keywords =
  [
    "int"; "char"; "double"; "void"; "if"; "else"; "while"; "do"; "for";
    "return"; "break"; "continue";
  ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_digit c || is_alpha c

(* Three-, two-, then one-character punctuators, longest match first. *)
let puncts3 = [ "<<="; ">>=" ]

let puncts2 =
  [
    "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "++"; "--";
  ]

let puncts1 =
  [
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "<"; ">"; "="; "?"; ":";
    ";"; ","; "("; ")"; "["; "]"; "{"; "}";
  ]

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let escape_char line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> fail line "bad escape '\\%c'" c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && peek 1 = '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail !line "unterminated comment"
        else if src.[!i] = '*' && peek 1 = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if
        !i < n
        && (src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E')
        && not (src.[!i] = '.' && !i + 1 < n && not (is_digit (peek 1)))
      then begin
        if src.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done
        end;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else if !i < n && (src.[!i] = 'x' || src.[!i] = 'X') && !i = start + 1
              && src.[start] = '0' then begin
        incr i;
        let hstart = !i in
        while
          !i < n
          && (is_digit src.[!i]
             || (Char.lowercase_ascii src.[!i] >= 'a'
                && Char.lowercase_ascii src.[!i] <= 'f'))
        do incr i done;
        if !i = hstart then fail !line "bad hex literal";
        emit (INT (int_of_string ("0x" ^ String.sub src hstart (!i - hstart))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      emit (if List.mem s keywords then KW s else IDENT s)
    end
    else if c = '\'' then begin
      incr i;
      let ch =
        if peek 0 = '\\' then begin
          incr i;
          let e = escape_char !line (peek 0) in
          incr i;
          e
        end
        else begin
          let ch = peek 0 in
          incr i;
          ch
        end
      in
      if peek 0 <> '\'' then fail !line "unterminated char literal";
      incr i;
      emit (CHAR ch)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec scan () =
        if !i >= n then fail !line "unterminated string"
        else if src.[!i] = '"' then incr i
        else if src.[!i] = '\\' then begin
          incr i;
          Buffer.add_char buf (escape_char !line (peek 0));
          incr i;
          scan ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          scan ()
        end
      in
      scan ();
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let try_punct lst len =
        if !i + len <= n then
          let s = String.sub src !i len in
          if List.mem s lst then (emit (PUNCT s); i := !i + len; true)
          else false
        else false
      in
      if not (try_punct puncts3 3 || try_punct puncts2 2 || try_punct puncts1 1)
      then fail !line "unexpected character '%c'" c
    end
  done;
  emit EOF;
  List.rev !toks

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | CHAR c -> Printf.sprintf "'%c'" c
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s | KW s | PUNCT s -> s
  | EOF -> "<eof>"
