(** Abstract syntax for mini-C, the benchmark-suite source language.

    Mini-C is the C subset the paper's suite needs: int/char/double scalars,
    one- and two-dimensional arrays, pointers, strings, functions with
    recursion, and the full C expression/statement repertoire short of
    structs, unions, and the preprocessor.  Functions may be used before
    their definition (signatures are collected in a first pass). *)

type ty = Tvoid | Tint | Tchar | Tdouble | Tptr of ty | Tarr of ty * int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr =
  | Intlit of int
  | Charlit of char
  | Floatlit of float
  | Strlit of string
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr  (** lhs must be Var, Index or Deref. *)
  | Opassign of binop * expr * expr  (** [x op= e]. *)
  | Incdec of bool * bool * expr  (** is_incr, is_prefix, lvalue. *)
  | Cond of expr * expr * expr  (** [c ? a : b]. *)
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addrof of expr
  | Cast of ty * expr

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr * expr option * stmt list
      (** Condition, step, body; [continue] jumps to the step. *)
  | Sdowhile of stmt list * expr
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type init = Iscalar of expr | Iarray of expr list | Istring of string

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type global = Gvar of ty * string * init option | Gfunc of func

type program = global list

val ty_to_string : ty -> string
val is_lvalue : expr -> bool
