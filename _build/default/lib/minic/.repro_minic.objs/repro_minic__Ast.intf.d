lib/minic/ast.mli:
