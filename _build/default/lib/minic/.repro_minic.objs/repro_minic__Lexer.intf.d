lib/minic/lexer.mli:
