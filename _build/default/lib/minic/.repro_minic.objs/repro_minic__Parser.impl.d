lib/minic/parser.ml: Ast Buffer Lexer List Printf String
