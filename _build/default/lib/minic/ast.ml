type ty = Tvoid | Tint | Tchar | Tdouble | Tptr of ty | Tarr of ty * int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor

type unop = Neg | Lnot | Bnot

type expr =
  | Intlit of int
  | Charlit of char
  | Floatlit of float
  | Strlit of string
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr
  | Opassign of binop * expr * expr
  | Incdec of bool * bool * expr
  | Cond of expr * expr * expr
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | Addrof of expr
  | Cast of ty * expr

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of expr * expr option * stmt list
      (** Condition, step, body; [continue] jumps to the step. *)
  | Sdowhile of stmt list * expr
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type init = Iscalar of expr | Iarray of expr list | Istring of string

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type global = Gvar of ty * string * init option | Gfunc of func

type program = global list

let rec ty_to_string = function
  | Tvoid -> "void"
  | Tint -> "int"
  | Tchar -> "char"
  | Tdouble -> "double"
  | Tptr t -> ty_to_string t ^ "*"
  | Tarr (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n

let is_lvalue = function
  | Var _ | Index _ | Deref _ -> true
  | Intlit _ | Charlit _ | Floatlit _ | Strlit _ | Bin _ | Un _ | Assign _
  | Opassign _ | Incdec _ | Cond _ | Call _ | Addrof _ | Cast _ -> false
