(** Recursive-descent parser for mini-C.

    [for] loops are desugared into [while] (with [continue] jumping to the
    step expression), and declarations like [int a\[10\]\[5\];] build
    {!Ast.Tarr} types.  Operator precedence follows C. *)

exception Error of string

val parse : string -> Ast.program
(** Parse a full translation unit. @raise Error on syntax errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests). *)
