(** Hand-written lexer for mini-C. *)

type token =
  | INT of int
  | FLOAT of float
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW of string  (** int, char, double, void, if, else, while, ... *)
  | PUNCT of string  (** operators and delimiters, longest-match. *)
  | EOF

type t = { tok : token; line : int }

exception Error of string
(** Raised on malformed input; the message includes the line number. *)

val tokenize : string -> t list
(** Lex a whole source text.  Line comments ([//]) and block comments are
    skipped. *)

val token_to_string : token -> string
