open Ast

exception Error of string

type state = { mutable toks : Lexer.t list }

let fail (st : state) fmt =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  Printf.ksprintf
    (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s)))
    fmt

let peek st = match st.toks with { tok; _ } :: _ -> tok | [] -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st p =
  match next st with
  | Lexer.PUNCT q when q = p -> ()
  | t -> fail st "expected '%s', found '%s'" p (Lexer.token_to_string t)

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let accept_kw st k =
  match peek st with
  | Lexer.KW q when q = k ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> fail st "expected identifier, found '%s'" (Lexer.token_to_string t)

let is_type_kw = function
  | Lexer.KW ("int" | "char" | "double" | "void") -> true
  | _ -> false

let base_type st =
  match next st with
  | Lexer.KW "int" -> Tint
  | Lexer.KW "char" -> Tchar
  | Lexer.KW "double" -> Tdouble
  | Lexer.KW "void" -> Tvoid
  | t -> fail st "expected type, found '%s'" (Lexer.token_to_string t)

let with_stars st ty =
  let rec loop ty = if accept_punct st "*" then loop (Tptr ty) else ty in
  loop ty

(* Expressions: precedence climbing. ------------------------------------ *)

let binop_of_punct = function
  | "*" -> Some Mul
  | "/" -> Some Div
  | "%" -> Some Mod
  | "+" -> Some Add
  | "-" -> Some Sub
  | "<<" -> Some Shl
  | ">>" -> Some Shr
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | "&" -> Some Band
  | "^" -> Some Bxor
  | "|" -> Some Bor
  | "&&" -> Some Land
  | "||" -> Some Lor
  | _ -> None

let precedence = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3
  | Land -> 2
  | Lor -> 1

let opassign_punct = function
  | "+=" -> Some Add
  | "-=" -> Some Sub
  | "*=" -> Some Mul
  | "/=" -> Some Div
  | "%=" -> Some Mod
  | "&=" -> Some Band
  | "|=" -> Some Bor
  | "^=" -> Some Bxor
  | "<<=" -> Some Shl
  | ">>=" -> Some Shr
  | _ -> None

let rec expr st = assignment st

and assignment st =
  let lhs = conditional st in
  match peek st with
  | Lexer.PUNCT "=" ->
    advance st;
    if not (is_lvalue lhs) then fail st "assignment to non-lvalue";
    Assign (lhs, assignment st)
  | Lexer.PUNCT p -> (
    match opassign_punct p with
    | Some op ->
      advance st;
      if not (is_lvalue lhs) then fail st "assignment to non-lvalue";
      Opassign (op, lhs, assignment st)
    | None -> lhs)
  | _ -> lhs

and conditional st =
  let c = binary st 1 in
  if accept_punct st "?" then begin
    let a = assignment st in
    expect_punct st ":";
    let b = conditional st in
    Cond (c, a, b)
  end
  else c

and binary st min_prec =
  let lhs = unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some op when precedence op >= min_prec ->
        advance st;
        let rhs = binary st (precedence op + 1) in
        loop (Bin (op, lhs, rhs))
      | Some _ | None -> lhs)
    | _ -> lhs
  in
  loop lhs

and unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Un (Neg, unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Un (Lnot, unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Un (Bnot, unary st)
  | Lexer.PUNCT "*" ->
    advance st;
    Deref (unary st)
  | Lexer.PUNCT "&" ->
    advance st;
    Addrof (unary st)
  | Lexer.PUNCT "++" ->
    advance st;
    Incdec (true, true, unary st)
  | Lexer.PUNCT "--" ->
    advance st;
    Incdec (false, true, unary st)
  | Lexer.PUNCT "(" when is_type_kw (List.nth_opt st.toks 1 |> function
                                     | Some { tok; _ } -> tok
                                     | None -> Lexer.EOF) ->
    advance st;
    let ty = with_stars st (base_type st) in
    expect_punct st ")";
    Cast (ty, unary st)
  | _ -> postfix st

and postfix st =
  let rec loop e =
    match peek st with
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = expr st in
      expect_punct st "]";
      loop (Index (e, idx))
    | Lexer.PUNCT "++" ->
      advance st;
      loop (Incdec (true, false, e))
    | Lexer.PUNCT "--" ->
      advance st;
      loop (Incdec (false, false, e))
    | _ -> e
  in
  loop (primary st)

and primary st =
  match next st with
  | Lexer.INT n -> Intlit n
  | Lexer.FLOAT f -> Floatlit f
  | Lexer.CHAR c -> Charlit c
  | Lexer.STRING s -> Strlit s
  | Lexer.IDENT name ->
    if accept_punct st "(" then begin
      let args = ref [] in
      if not (accept_punct st ")") then begin
        args := [ expr st ];
        while accept_punct st "," do
          args := expr st :: !args
        done;
        expect_punct st ")"
      end;
      Call (name, List.rev !args)
    end
    else Var name
  | Lexer.PUNCT "(" ->
    let e = expr st in
    expect_punct st ")";
    e
  | t -> fail st "unexpected token '%s'" (Lexer.token_to_string t)

(* Statements. ----------------------------------------------------------- *)

let array_suffix st ty =
  let rec loop dims =
    if accept_punct st "[" then begin
      let n =
        match next st with
        | Lexer.INT n -> n
        | t -> fail st "array dimension must be an integer literal, found %s"
                 (Lexer.token_to_string t)
      in
      expect_punct st "]";
      loop (n :: dims)
    end
    else dims
  in
  let dims = loop [] in
  List.fold_left (fun t n -> Tarr (t, n)) ty dims

let rec stmt st =
  match peek st with
  | Lexer.PUNCT "{" ->
    advance st;
    Sblock (block st)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let c = expr st in
    expect_punct st ")";
    let then_ = [ stmt st ] in
    let else_ = if accept_kw st "else" then [ stmt st ] else [] in
    Sif (c, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let c = expr st in
    expect_punct st ")";
    Swhile (c, [ stmt st ])
  | Lexer.KW "do" ->
    advance st;
    let body = [ stmt st ] in
    if not (accept_kw st "while") then fail st "expected 'while' after do-body";
    expect_punct st "(";
    let c = expr st in
    expect_punct st ")";
    expect_punct st ";";
    Sdowhile (body, c)
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else if is_type_kw (peek st) then begin
        let s = decl st in
        Some s
      end
      else begin
        let e = expr st in
        expect_punct st ";";
        Some (Sexpr e)
      end
    in
    let cond = if accept_punct st ";" then None
      else begin
        let e = expr st in
        expect_punct st ";";
        Some e
      end
    in
    let step =
      if accept_punct st ")" then None
      else begin
        let e = expr st in
        expect_punct st ")";
        Some e
      end
    in
    let body = stmt st in
    let cond = match cond with Some c -> c | None -> Intlit 1 in
    let loop = Sfor (cond, step, [ body ]) in
    (match init with None -> loop | Some i -> Sblock [ i; loop ])
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then Sreturn None
    else begin
      let e = expr st in
      expect_punct st ";";
      Sreturn (Some e)
    end
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    Sbreak
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    Scontinue
  | t when is_type_kw t -> decl st
  | _ ->
    let e = expr st in
    expect_punct st ";";
    Sexpr e

and decl st =
  let base = base_type st in
  let ty = with_stars st base in
  let name = expect_ident st in
  let ty = array_suffix st ty in
  let init = if accept_punct st "=" then Some (expr st) else None in
  expect_punct st ";";
  Sdecl (ty, name, init)

and block st =
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := stmt st :: !stmts
  done;
  List.rev !stmts


(* Top level. ------------------------------------------------------------- *)

let global_init st ty =
  match (ty, peek st) with
  | Tarr (Tchar, _), Lexer.STRING s ->
    advance st;
    (* Adjacent string literals concatenate, as in C. *)
    let buf = Buffer.create (String.length s) in
    Buffer.add_string buf s;
    let rec more () =
      match peek st with
      | Lexer.STRING s' ->
        advance st;
        Buffer.add_string buf s';
        more ()
      | _ -> ()
    in
    more ();
    Some (Istring (Buffer.contents buf))
  | Tarr _, Lexer.PUNCT "{" ->
    advance st;
    let items = ref [] in
    if not (accept_punct st "}") then begin
      items := [ expr st ];
      while accept_punct st "," do
        items := expr st :: !items
      done;
      expect_punct st "}"
    end;
    Some (Iarray (List.rev !items))
  | _ -> Some (Iscalar (expr st))

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let globals = ref [] in
  while peek st <> Lexer.EOF do
    let base = base_type st in
    let ty = with_stars st base in
    let name = expect_ident st in
    if accept_punct st "(" then begin
      let params = ref [] in
      if not (accept_punct st ")") then begin
        let param () =
          let pty = with_stars st (base_type st) in
          let pname = expect_ident st in
          (* Array parameters decay to pointers. *)
          let pty =
            if accept_punct st "[" then begin
              (match peek st with
              | Lexer.INT _ -> advance st
              | _ -> ());
              expect_punct st "]";
              Tptr pty
            end
            else pty
          in
          (pty, pname)
        in
        params := [ param () ];
        while accept_punct st "," do
          params := param () :: !params
        done;
        expect_punct st ")"
      end;
      expect_punct st "{";
      let body = block st in
      globals :=
        Gfunc { fname = name; fret = ty; fparams = List.rev !params; fbody = body }
        :: !globals
    end
    else begin
      let ty = array_suffix st ty in
      let init = if accept_punct st "=" then global_init st ty else None in
      expect_punct st ";";
      globals := Gvar (ty, name, init) :: !globals
    end
  done;
  List.rev !globals

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = expr st in
  match peek st with
  | Lexer.EOF -> e
  | t -> fail st "trailing token '%s'" (Lexer.token_to_string t)
