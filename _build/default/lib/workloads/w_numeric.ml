(* Numeric benchmarks: linpack-style LU solve, Gaussian elimination,
   digits of pi (integer spigot), Newton-Raphson solver, and a whetstone-
   style synthetic FP benchmark with polynomial libm approximations. *)

let linpack =
  {|
// The linear programming benchmark of the paper's table; as in the
// original LINPACK, this factors a dense system and solves it.
double a[28][28];
double b[28];
double x[28];
int piv[28];
int n = 28;
int seed = 1325;

double randf() {
  seed = (seed * 3125) % 65536;
  return (double)seed / 65536.0 - 0.5;
}

void matgen() {
  int i;
  int j;
  for (i = 0; i < n; i++) {
    b[i] = 0.0;
    for (j = 0; j < n; j++) a[i][j] = randf();
  }
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++) b[i] = b[i] + a[i][j];
}

// LU factorization with partial pivoting (dgefa).
int dgefa() {
  int k;
  int i;
  int j;
  for (k = 0; k < n - 1; k++) {
    int l = k;
    double amax = a[k][k];
    if (amax < 0.0) amax = -amax;
    for (i = k + 1; i < n; i++) {
      double v = a[i][k];
      if (v < 0.0) v = -v;
      if (v > amax) { amax = v; l = i; }
    }
    piv[k] = l;
    if (a[l][k] == 0.0) return 1;
    if (l != k) {
      double t = a[l][k];
      a[l][k] = a[k][k];
      a[k][k] = t;
    }
    for (i = k + 1; i < n; i++) a[i][k] = -(a[i][k] / a[k][k]);
    for (j = k + 1; j < n; j++) {
      double t = a[l][j];
      if (l != k) { a[l][j] = a[k][j]; a[k][j] = t; }
      for (i = k + 1; i < n; i++) a[i][j] = a[i][j] + t * a[i][k];
    }
  }
  piv[n - 1] = n - 1;
  return 0;
}

// Back substitution (dgesl).
void dgesl() {
  int k;
  int i;
  for (i = 0; i < n; i++) x[i] = b[i];
  for (k = 0; k < n - 1; k++) {
    int l = piv[k];
    double t = x[l];
    if (l != k) { x[l] = x[k]; x[k] = t; }
    for (i = k + 1; i < n; i++) x[i] = x[i] + t * a[i][k];
  }
  for (k = n - 1; k >= 0; k--) {
    x[k] = x[k] / a[k][k];
    for (i = 0; i < k; i++) x[i] = x[i] - x[k] * a[i][k];
  }
}

int main() {
  int i;
  double err = 0.0;
  matgen();
  if (dgefa()) { print_str("SINGULAR\n"); return 1; }
  dgesl();
  // The right-hand side was chosen so the exact solution is all ones.
  for (i = 0; i < n; i++) {
    double d = x[i] - 1.0;
    if (d < 0.0) d = -d;
    if (d > err) err = d;
  }
  if (err < 0.000001) print_str("ok ");
  print_int((int)(err * 1000000000.0));
  print_char('\n');
  return 0;
}
|}

let matrix =
  {|
// Gaussian elimination (paper Table 2: "matrix").
double m[26][27];
int n = 26;
int seed = 9901;

double randf() {
  seed = (seed * 3125) % 65536;
  return (double)seed / 32768.0 - 1.0;
}

int main() {
  int i;
  int j;
  int k;
  double det = 1.0;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) m[i][j] = randf();
    m[i][i] = m[i][i] + 8.0;  // diagonally dominant
    m[i][n] = 1.0;
  }
  for (k = 0; k < n; k++) {
    det = det * m[k][k];
    for (i = k + 1; i < n; i++) {
      double f = m[i][k] / m[k][k];
      for (j = k; j <= n; j++) m[i][j] = m[i][j] - f * m[k][j];
    }
  }
  // Back substitution into column n.
  for (k = n - 1; k >= 0; k--) {
    double s = m[k][n];
    for (j = k + 1; j < n; j++) s = s - m[k][j] * m[j][n];
    m[k][n] = s / m[k][k];
  }
  print_int((int)(det * 100.0));
  print_char(' ');
  print_int((int)(m[0][n] * 1000000.0));
  print_char('\n');
  return 0;
}
|}

let pi =
  {|
// Computes digits of pi with the integer spigot algorithm
// (Rabinowitz-Wagon); heavy integer divide/remainder use.
int r[500];
int ndigits = 60;

int main() {
  int len = 500;  // > 10 * ndigits / 3
  int i;
  int k;
  int carry = 0;
  int printed = 0;
  int held = 0;
  int heldcount = 0;
  len = (ndigits * 10) / 3 + 1;
  for (i = 0; i < len; i++) r[i] = 2;
  for (k = 0; k < ndigits; k++) {
    carry = 0;
    for (i = len - 1; i > 0; i--) {
      int x = r[i] * 10 + carry * (i + 1);
      r[i] = x % (2 * i + 1);
      carry = x / (2 * i + 1);
    }
    r[0] = r[0] * 10 + carry * 1;
    carry = r[0] / 10;
    r[0] = r[0] % 10;
    // Buffer digits to handle carries into 9s.
    if (carry == 10) {
      print_int(held + 1);
      for (i = 0; i < heldcount; i++) print_int(0);
      held = 0;
      heldcount = 0;
    } else if (carry == 9) {
      heldcount = heldcount + 1;
    } else {
      if (printed) {
        print_int(held);
        for (i = 0; i < heldcount; i++) print_int(9);
      }
      held = carry;
      heldcount = 0;
      printed = 1;
    }
  }
  print_int(held);
  print_char('\n');
  return 0;
}
|}

let solver =
  {|
// Newton-Raphson iterative solver: roots of x^3 - c over a sweep of c,
// plus square roots, with convergence tests.
double cube_root(double c) {
  double x = c;
  int it = 0;
  if (c == 0.0) return 0.0;
  if (x < 1.0) x = 1.0;
  while (it < 60) {
    double x2 = x * x;
    double fx = x2 * x - c;
    double d = fx / (3.0 * x2);
    x = x - d;
    if (d < 0.0) d = -d;
    if (d < 0.0000001) return x;
    it = it + 1;
  }
  return x;
}

double sqrt_(double c) {
  double x = c;
  int it = 0;
  if (c <= 0.0) return 0.0;
  if (x < 1.0) x = 1.0;
  while (it < 60) {
    double d = (x * x - c) / (2.0 * x);
    x = x - d;
    if (d < 0.0) d = -d;
    if (d < 0.0000001) return x;
    it = it + 1;
  }
  return x;
}

int main() {
  int i;
  double sum = 0.0;
  for (i = 1; i <= 1200; i++) {
    double c = (double)i;
    sum = sum + cube_root(c) + sqrt_(c);
  }
  print_int((int)(sum * 100.0));
  print_char('\n');
  return 0;
}
|}

let whetstone =
  {|
// Whetstone-style synthetic floating-point benchmark.  The transcendental
// functions are polynomial/Newton approximations compiled with the
// program, exercising the FP pipeline the way the original's libm did.
double e1[4];
double t = 0.499975;
double t1 = 0.50025;
double t2 = 2.0;

double sin_(double x) {
  // Range-reduce to [-pi, pi] then a 7th-order Taylor polynomial.
  double pi2 = 6.28318530718;
  double x2;
  while (x > 3.14159265359) x = x - pi2;
  while (x < -3.14159265359) x = x + pi2;
  x2 = x * x;
  return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)));
}

double cos_(double x) { return sin_(x + 1.570796326795); }

double atan_(double x) {
  // atan via the series on reduced argument.
  int invert = 0;
  double x2;
  double r;
  if (x < 0.0) return -atan_(-x);
  if (x > 1.0) { invert = 1; x = 1.0 / x; }
  x2 = x * x;
  r = x * (1.0 - x2 * (0.33333 - x2 * (0.2 - x2 * 0.142857)));
  if (invert) r = 1.570796326795 - r;
  return r;
}

double exp_(double x) {
  // exp via squaring of exp(x/32) Taylor series.
  double y = x / 32.0;
  double r = 1.0 + y * (1.0 + y * (0.5 + y * (0.1666666 + y * 0.0416666)));
  int i;
  for (i = 0; i < 5; i++) r = r * r;
  return r;
}

double log_(double x) {
  // Range-reduce by factors of e, then Newton on exp(z) = x.
  double y = 0.0;
  double z = 0.0;
  int i;
  if (x <= 0.0) return 0.0;
  while (x > 2.718281828) { x = x / 2.718281828; y = y + 1.0; }
  while (x < 0.367879441) { x = x * 2.718281828; y = y - 1.0; }
  for (i = 0; i < 12; i++) z = z - 1.0 + x / exp_(z);
  return y + z;
}

double sqrt_(double c) {
  double x = c;
  int i;
  if (c <= 0.0) return 0.0;
  if (x < 1.0) x = 1.0;
  for (i = 0; i < 25; i++) x = x - (x * x - c) / (2.0 * x);
  return x;
}

void p3(double x, double y, double *z) {
  x = t * (x + y);
  y = t * (x + y);
  *z = (x + y) / t2;
}

void pa(double *e) {
  int j = 0;
  while (j < 6) {
    e[0] = (e[0] + e[1] + e[2] - e[3]) * t;
    e[1] = (e[0] + e[1] - e[2] + e[3]) * t;
    e[2] = (e[0] - e[1] + e[2] + e[3]) * t;
    e[3] = (-e[0] + e[1] + e[2] + e[3]) / t2;
    j = j + 1;
  }
}

int main() {
  int loop = 12;
  int i;
  int ix;
  double x;
  double y;
  double z;
  double x1;
  double x2;
  double x3;
  double x4;

  // Module 1: simple identifiers.
  x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
  for (i = 0; i < 6 * loop; i++) {
    x1 = (x1 + x2 + x3 - x4) * t;
    x2 = (x1 + x2 - x3 + x4) * t;
    x3 = (x1 - x2 + x3 + x4) * t;
    x4 = (-x1 + x2 + x3 + x4) * t;
  }
  // Module 2: array elements.
  e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
  for (i = 0; i < 8 * loop; i++) {
    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
    e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
  }
  // Module 3: array as parameter.
  for (i = 0; i < 7 * loop; i++) pa(e1);
  // Module 4: conditional jumps.
  ix = 1;
  for (i = 0; i < 18 * loop; i++) {
    if (ix == 1) ix = 2; else ix = 3;
    if (ix > 2) ix = 0; else ix = 1;
    if (ix < 1) ix = 1; else ix = 0;
  }
  // Module 6: integer arithmetic.
  {
    int j = 1;
    int k = 2;
    int l = 3;
    for (i = 0; i < 30 * loop; i++) {
      j = j * (k - j) * (l - k);
      k = l * k - (l - j) * k;
      l = (l - k) * (k + j);
      e1[l - 2 > 3 ? 3 : (l - 2 < 0 ? 0 : l - 2)] = (double)(j + k + l);
      e1[k - 2 > 3 ? 3 : (k - 2 < 0 ? 0 : k - 2)] = (double)(j * k * l);
    }
  }
  // Module 7: trig functions.
  x = 0.5; y = 0.5;
  for (i = 0; i < 4 * loop; i++) {
    x = t * atan_(t2 * sin_(x) * cos_(x) / (cos_(x + y) + cos_(x - y) - 1.0));
    y = t * atan_(t2 * sin_(y) * cos_(y) / (cos_(x + y) + cos_(x - y) - 1.0));
  }
  // Module 8: procedure calls.
  x = 1.0; y = 1.0; z = 1.0;
  for (i = 0; i < 20 * loop; i++) p3(x, y, &z);
  // Module 10: integer arithmetic.
  {
    int j = 2;
    int k = 3;
    for (i = 0; i < 40 * loop; i++) {
      j = j + k;
      k = j + k;
      j = k - j;
      k = k - j - j;
    }
    ix = k;
  }
  // Module 11: standard functions.
  x = 0.75;
  for (i = 0; i < 5 * loop; i++) x = sqrt_(exp_(log_(x) / t1));

  print_int((int)(x * 1000000.0));
  print_char(' ');
  print_int(ix);
  print_char(' ');
  print_int((int)(z * 1000.0));
  print_char('\n');
  return 0;
}
|}
