type benchmark = {
  name : string;
  description : string;
  source : string;
  cache_benchmark : bool;
}

let mk ?(cache = false) name description source =
  { name; description; source; cache_benchmark = cache }

let all =
  [
    mk "ackermann" "Computes the Ackermann function" W_stanford.ackermann;
    mk "assem" "The D16 assembler (two-pass assembler)" W_assem.assem
      ~cache:true;
    mk "bubblesort" "Sorting program from the Stanford suite"
      W_stanford.bubblesort;
    mk "queens" "The Stanford eight-queens program" W_stanford.queens;
    mk "quicksort" "The Stanford quicksort program" W_stanford.quicksort;
    mk "towers" "The Stanford towers of Hanoi program" W_stanford.towers;
    mk "grep" "The Unix utility (regular-expression search)" W_grep.grep;
    mk "linpack" "The linear programming benchmark (LU factor/solve)"
      W_numeric.linpack;
    mk "matrix" "Gaussian elimination" W_numeric.matrix;
    mk "dhrystone" "The synthetic benchmark" W_dhrystone.dhrystone;
    mk "pi" "Computes digits of pi" W_numeric.pi;
    mk "solver" "Newton-Raphson iterative solver" W_numeric.solver;
    mk "latex" "The typesetter (paragraph filling and page makeup)"
      W_latex.latex ~cache:true;
    mk "ipl" "PostScript plotting package (rasterizer)" W_ipl.ipl ~cache:true;
    mk "whetstone" "The synthetic floating point benchmark"
      W_numeric.whetstone;
  ]

let find name = List.find (fun b -> b.name = name) all
let cache_benchmarks = List.filter (fun b -> b.cache_benchmark) all
