(* Dhrystone-like synthetic integer benchmark.  Mini-C has no structs, so
   the record type of the original is laid out as parallel arrays, which
   preserves the characteristic mix: assignments, integer arithmetic,
   string comparison/copy, pointer-ish indirection through indices,
   function calls, and control flow. *)

let dhrystone =
  {|
// Record pool: discr, enum_comp, int_comp, next index, string (31 chars).
int rec_discr[8];
int rec_enum[8];
int rec_int[8];
int rec_next[8];
char rec_str[8][32];

int int_glob = 0;
int bool_glob = 0;
char ch1_glob = 'A';
char ch2_glob = 'B';
int arr1[50];
int arr2[50][50];

char str1[32] = "DHRYSTONE PROGRAM, 1ST STRING";
char str2[32] = "DHRYSTONE PROGRAM, 2ND STRING";

int func1(int ch1, int ch2) {
  int ch = ch1;
  if (ch != ch2) return 0;
  ch1_glob = ch;
  return 1;
}

int func2(char *s1, char *s2) {
  int i = 2;
  int ch = 'A';
  while (i <= 2) {
    if (func1(s1[i], s2[i + 1])) { ch = 'A'; i = i + 3; }
    else i = i + 1;
  }
  if (ch >= 'W' && ch < 'Z') i = 7;
  if (ch == 'R') return 1;
  if (strcmp_(s1, s2) > 0) { int_glob = int_glob + 7; return 1; }
  return 0;
}

int func3(int e) { return e == 2; }

void proc6(int e_in, int *e_out) {
  *e_out = e_in;
  if (!func3(e_in)) *e_out = 3;
  if (e_in == 0) *e_out = 0;
  else if (e_in == 1) { if (int_glob > 100) *e_out = 0; else *e_out = 3; }
  else if (e_in == 2) *e_out = 1;
  else if (e_in == 4) *e_out = 2;
}

void proc7(int a, int b, int *c) { *c = b + a + 2; }

void proc8(int *a1, int *a2, int n, int v) {
  int i;
  int idx = n + 5;
  a1[idx] = v;
  a1[idx + 1] = a1[idx];
  a1[idx + 30] = idx;
  for (i = idx; i <= idx + 1; i++) a2[i] = idx;
  a2[idx - 1] = a2[idx - 1] + 1;
  a2[idx + 20] = a1[idx];
  int_glob = 5;
}

void proc5() { ch1_glob = 'A'; bool_glob = 0; }

void proc4() {
  int b = ch1_glob == 'A';
  b = b | bool_glob;
  ch2_glob = 'B';
}

void proc3(int *p) {
  if (*p != 0) *p = rec_next[*p];
  proc7(10, int_glob, &rec_int[*p]);
}

void proc2(int *i) {
  int loc = *i + 10;
  int done = 0;
  while (!done) {
    if (ch1_glob == 'A') { loc = loc - 1; *i = loc - int_glob; done = 1; }
  }
}

void proc1(int p) {
  int next = rec_next[p];
  rec_discr[next] = rec_discr[p];
  rec_int[next] = 5;
  rec_int[p] = rec_int[next];
  rec_next[next] = rec_next[p];
  proc3(&rec_next[next]);
  if (rec_discr[next] == 0) {
    rec_int[next] = 6;
    proc6(rec_enum[p], &rec_enum[next]);
    rec_next[next] = rec_next[0];
    proc7(rec_int[next], 10, &rec_int[next]);
  }
  else rec_discr[p] = rec_discr[next];
}

int main() {
  int run;
  int runs = 350;
  int i;
  int int1;
  int int2;
  int int3;
  char chindex;

  rec_next[1] = 2;
  rec_next[2] = 0;
  rec_discr[1] = 0;
  rec_enum[1] = 2;
  rec_int[1] = 40;
  strcpy_(rec_str[1], "DHRYSTONE PROGRAM, SOME STRING");
  strcpy_(rec_str[2], "DHRYSTONE PROGRAM, SOME STRING");

  for (run = 0; run < runs; run++) {
    proc5();
    proc4();
    int1 = 2;
    int2 = 3;
    bool_glob = !func2(str1, str2);
    while (int1 < int2) {
      int3 = 5 * int1 - int2;
      proc7(int1, int2, &int3);
      int1 = int1 + 1;
    }
    proc8(arr1, arr2[0], int1, int3);
    proc1(1);
    for (chindex = 'A'; chindex <= ch2_glob; chindex++) {
      if (func3(chindex - 'A' + 2) && chindex == 'B') int_glob = int_glob + 1;
    }
    int2 = int2 * int1;
    int1 = int2 / int3;
    int2 = 7 * (int2 - int3) - int1;
    proc2(&int1);
  }
  print_int(int_glob);
  print_char(' ');
  print_int(int1);
  print_char(' ');
  print_int(bool_glob);
  print_char('\n');
  return 0;
}
|}
