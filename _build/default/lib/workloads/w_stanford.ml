(* The small Stanford-suite style benchmarks (paper Table 2), in mini-C.
   Problem sizes are calibrated so the whole suite simulates in seconds
   while keeping path lengths in the paper's interesting range. *)

let ackermann =
  {|
// Computes the Ackermann function (paper Table 2).
int ack(int m, int n) {
  if (m == 0) return n + 1;
  if (n == 0) return ack(m - 1, 1);
  return ack(m - 1, ack(m, n - 1));
}

int main() {
  print_int(ack(3, 3));
  print_char('\n');
  return 0;
}
|}

let bubblesort =
  {|
// Sorting program from the Stanford suite.
int data[260];
int n = 260;
int seed = 74755;

int rand_() {
  seed = (seed * 1309 + 13849) & 32767;
  return seed;
}

int main() {
  int i;
  int j;
  for (i = 0; i < n; i++) data[i] = rand_();
  for (i = n - 1; i > 0; i--) {
    for (j = 0; j < i; j++) {
      if (data[j] > data[j + 1]) {
        int t = data[j];
        data[j] = data[j + 1];
        data[j + 1] = t;
      }
    }
  }
  for (i = 1; i < n; i++)
    if (data[i - 1] > data[i]) { print_str("NOT SORTED\n"); return 1; }
  print_int(data[0]); print_char(' ');
  print_int(data[n / 2]); print_char(' ');
  print_int(data[n - 1]); print_char('\n');
  return 0;
}
|}

let queens =
  {|
// The Stanford eight-queens program: counts all solutions.
int row[8];
int col_used[8];
int diag1[15];
int diag2[15];
int count = 0;

void place(int c) {
  int r;
  if (c == 8) { count = count + 1; return; }
  for (r = 0; r < 8; r++) {
    if (!col_used[r] && !diag1[r + c] && !diag2[r - c + 7]) {
      col_used[r] = 1;
      diag1[r + c] = 1;
      diag2[r - c + 7] = 1;
      row[c] = r;
      place(c + 1);
      col_used[r] = 0;
      diag1[r + c] = 0;
      diag2[r - c + 7] = 0;
    }
  }
}

int main() {
  place(0);
  print_int(count);
  print_char('\n');
  return 0;
}
|}

let quicksort =
  {|
// The Stanford quicksort program.
int data[1400];
int n = 1400;
int seed = 74755;

int rand_() {
  seed = (seed * 1309 + 13849) & 32767;
  return seed;
}

void sort(int lo, int hi) {
  int i = lo;
  int j = hi;
  int pivot = data[(lo + hi) / 2];
  while (i <= j) {
    while (data[i] < pivot) i++;
    while (data[j] > pivot) j--;
    if (i <= j) {
      int t = data[i];
      data[i] = data[j];
      data[j] = t;
      i++;
      j--;
    }
  }
  if (lo < j) sort(lo, j);
  if (i < hi) sort(i, hi);
}

int main() {
  int i;
  for (i = 0; i < n; i++) data[i] = rand_();
  sort(0, n - 1);
  for (i = 1; i < n; i++)
    if (data[i - 1] > data[i]) { print_str("NOT SORTED\n"); return 1; }
  print_int(data[0]); print_char(' ');
  print_int(data[n / 2]); print_char(' ');
  print_int(data[n - 1]); print_char('\n');
  return 0;
}
|}

let towers =
  {|
// The Stanford towers of Hanoi program.
int moves = 0;

void hanoi(int n, int from, int to, int via) {
  if (n == 1) { moves = moves + 1; return; }
  hanoi(n - 1, from, via, to);
  moves = moves + 1;
  hanoi(n - 1, via, to, from);
}

int main() {
  hanoi(14, 1, 3, 2);
  print_int(moves);
  print_char('\n');
  return 0;
}
|}
