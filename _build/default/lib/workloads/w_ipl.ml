(* ipl: a PostScript-style plotting package stand-in — fixed-point
   transforms built from double-precision trig at startup, Bresenham lines,
   midpoint circles, polygon rendering with rotation, span filling, and a
   function plotter, rasterizing into a character frame buffer. *)

let ipl =
  {|
int WIDTH = 96;
int HEIGHT = 64;
char raster[6144];  // WIDTH * HEIGHT

int sin_fix[360];  // sin scaled by 4096, per degree
int pixels = 0;

double poly_sin(double x) {
  double pi2 = 6.28318530718;
  double x2;
  while (x > 3.14159265359) x = x - pi2;
  while (x < -3.14159265359) x = x + pi2;
  x2 = x * x;
  return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)));
}

void init_tables() {
  int d;
  for (d = 0; d < 360; d++) {
    double rad = (double)d * 0.0174532925199;
    sin_fix[d] = (int)(poly_sin(rad) * 4096.0);
  }
}

int sini(int deg) {
  deg = deg % 360;
  if (deg < 0) deg = deg + 360;
  return sin_fix[deg];
}

int cosi(int deg) { return sini(deg + 90); }

void clear_raster() {
  int i;
  int npix = WIDTH * HEIGHT;
  for (i = 0; i < npix; i++) raster[i] = ' ';
}

void plot(int x, int y, int c) {
  if (x >= 0 && x < WIDTH && y >= 0 && y < HEIGHT) {
    raster[y * WIDTH + x] = c;
    pixels = pixels + 1;
  }
}

int iabs(int v) { return v < 0 ? -v : v; }

void draw_line(int x0, int y0, int x1, int y1, int c) {
  int dx = iabs(x1 - x0);
  int dy = iabs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1;
  int sy = y0 < y1 ? 1 : -1;
  int e = dx - dy;
  while (1) {
    plot(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    {
      int e2 = 2 * e;
      if (e2 > -dy) { e = e - dy; x0 = x0 + sx; }
      if (e2 < dx) { e = e + dx; y0 = y0 + sy; }
    }
  }
}

void draw_circle(int cx, int cy, int r, int c) {
  int x = r;
  int y = 0;
  int err = 1 - r;
  while (x >= y) {
    plot(cx + x, cy + y, c);
    plot(cx + y, cy + x, c);
    plot(cx - y, cy + x, c);
    plot(cx - x, cy + y, c);
    plot(cx - x, cy - y, c);
    plot(cx - y, cy - x, c);
    plot(cx + y, cy - x, c);
    plot(cx + x, cy - y, c);
    y = y + 1;
    if (err < 0) err = err + 2 * y + 1;
    else { x = x - 1; err = err + 2 * (y - x) + 1; }
  }
}

void fill_span(int y, int x0, int x1, int c) {
  int x;
  if (x0 > x1) { int t = x0; x0 = x1; x1 = t; }
  for (x = x0; x <= x1; x++) plot(x, y, c);
}

// Rotate and translate a point in 12.4-ish fixed point.
int xform_x(int x, int y, int deg, int tx) {
  return ((x * cosi(deg) - y * sini(deg)) >> 12) + tx;
}

int xform_y(int x, int y, int deg, int ty) {
  return ((x * sini(deg) + y * cosi(deg)) >> 12) + ty;
}

int px[8];
int py[8];

void draw_polygon(int *vx, int *vy, int n, int deg, int tx, int ty, int c) {
  int i;
  for (i = 0; i < n; i++) {
    px[i] = xform_x(vx[i], vy[i], deg, tx);
    py[i] = xform_y(vx[i], vy[i], deg, ty);
  }
  for (i = 0; i < n; i++) {
    int j = (i + 1) % n;
    draw_line(px[i], py[i], px[j], py[j], c);
  }
}

// Filled triangle via scanline edge walking (integer only).
void fill_triangle(int x0, int y0, int x1, int y1, int x2, int y2, int c) {
  int y;
  int miny = y0;
  int maxy = y0;
  if (y1 < miny) miny = y1;
  if (y2 < miny) miny = y2;
  if (y1 > maxy) maxy = y1;
  if (y2 > maxy) maxy = y2;
  for (y = miny; y <= maxy; y++) {
    int xs = 10000;
    int xe = -10000;
    // Intersect the scanline with each edge.
    if ((y0 <= y && y <= y1) || (y1 <= y && y <= y0)) {
      if (y1 != y0) {
        int x = x0 + (x1 - x0) * (y - y0) / (y1 - y0);
        if (x < xs) xs = x;
        if (x > xe) xe = x;
      }
    }
    if ((y1 <= y && y <= y2) || (y2 <= y && y <= y1)) {
      if (y2 != y1) {
        int x = x1 + (x2 - x1) * (y - y1) / (y2 - y1);
        if (x < xs) xs = x;
        if (x > xe) xe = x;
      }
    }
    if ((y0 <= y && y <= y2) || (y2 <= y && y <= y0)) {
      if (y2 != y0) {
        int x = x0 + (x2 - x0) * (y - y0) / (y2 - y0);
        if (x < xs) xs = x;
        if (x > xe) xe = x;
      }
    }
    if (xs <= xe) fill_span(y, xs, xe, c);
  }
}

// Plot y = a*sin(bx) with double evaluation, like a function plotter.
void plot_function(double a, double b, int c) {
  int x;
  for (x = 0; x < WIDTH; x++) {
    double fx = (double)x * b * 0.1;
    int y = HEIGHT / 2 + (int)(a * poly_sin(fx));
    plot(x, y, c);
  }
}

void draw_axes() {
  draw_line(0, HEIGHT / 2, WIDTH - 1, HEIGHT / 2, '-');
  draw_line(WIDTH / 2, 0, WIDTH / 2, HEIGHT - 1, '|');
  plot(WIDTH / 2, HEIGHT / 2, '+');
}


// ---- extended drawing repertoire ----

// Midpoint ellipse.
void draw_ellipse(int cx, int cy, int rx, int ry, int c) {
  int x = 0;
  int y = ry;
  int rx2 = rx * rx;
  int ry2 = ry * ry;
  int px_ = 0;
  int py_ = 2 * rx2 * y;
  int p = ry2 - rx2 * ry + (rx2 + 2) / 4;
  while (px_ < py_) {
    plot(cx + x, cy + y, c);
    plot(cx - x, cy + y, c);
    plot(cx + x, cy - y, c);
    plot(cx - x, cy - y, c);
    x = x + 1;
    px_ = px_ + 2 * ry2;
    if (p < 0) p = p + ry2 + px_;
    else {
      y = y - 1;
      py_ = py_ - 2 * rx2;
      p = p + ry2 + px_ - py_;
    }
  }
  p = ry2 * (4 * x * x + 4 * x + 1) / 4 + rx2 * (y - 1) * (y - 1) - rx2 * ry2;
  while (y >= 0) {
    plot(cx + x, cy + y, c);
    plot(cx - x, cy + y, c);
    plot(cx + x, cy - y, c);
    plot(cx - x, cy - y, c);
    y = y - 1;
    py_ = py_ - 2 * rx2;
    if (p > 0) p = p + rx2 - py_;
    else {
      x = x + 1;
      px_ = px_ + 2 * ry2;
      p = p + rx2 - py_ + px_;
    }
  }
}

// Dashed Bresenham: plots only on alternating runs.
void draw_dashed(int x0, int y0, int x1, int y1, int c, int dash) {
  int dx = iabs(x1 - x0);
  int dy = iabs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1;
  int sy = y0 < y1 ? 1 : -1;
  int e = dx - dy;
  int step = 0;
  while (1) {
    if ((step / dash) % 2 == 0) plot(x0, y0, c);
    step = step + 1;
    if (x0 == x1 && y0 == y1) break;
    {
      int e2 = 2 * e;
      if (e2 > -dy) { e = e - dy; x0 = x0 + sx; }
      if (e2 < dx) { e = e + dx; y0 = y0 + sy; }
    }
  }
}

// Cohen-Sutherland line clipping against the raster rectangle.
int outcode(int x, int y) {
  int code = 0;
  if (x < 0) code = code | 1;
  if (x >= WIDTH) code = code | 2;
  if (y < 0) code = code | 4;
  if (y >= HEIGHT) code = code | 8;
  return code;
}

int clipped_lines = 0;

void draw_clipped(int x0, int y0, int x1, int y1, int c) {
  int c0 = outcode(x0, y0);
  int c1 = outcode(x1, y1);
  int guard = 0;
  while (guard < 16) {
    if ((c0 | c1) == 0) {
      draw_line(x0, y0, x1, y1, c);
      return;
    }
    if (c0 & c1) { clipped_lines = clipped_lines + 1; return; }
    {
      int out = c0 ? c0 : c1;
      int nx = 0;
      int ny = 0;
      if (out & 8) { nx = x0 + (x1 - x0) * (HEIGHT - 1 - y0) / (y1 - y0); ny = HEIGHT - 1; }
      else if (out & 4) { nx = x0 + (x1 - x0) * (0 - y0) / (y1 - y0); ny = 0; }
      else if (out & 2) { ny = y0 + (y1 - y0) * (WIDTH - 1 - x0) / (x1 - x0); nx = WIDTH - 1; }
      else { ny = y0 + (y1 - y0) * (0 - x0) / (x1 - x0); nx = 0; }
      if (out == c0) { x0 = nx; y0 = ny; c0 = outcode(x0, y0); }
      else { x1 = nx; y1 = ny; c1 = outcode(x1, y1); }
    }
    guard = guard + 1;
  }
}

// Flood fill with an explicit stack (4-connected).
int fstack[512];
int flooded = 0;

void flood_fill(int x, int y, int c) {
  int sp = 0;
  int old;
  if (x < 0 || x >= WIDTH || y < 0 || y >= HEIGHT) return;
  old = raster[y * WIDTH + x];
  if (old == c) return;
  fstack[sp] = y * WIDTH + x;
  sp = sp + 1;
  while (sp > 0) {
    int pos;
    int cx;
    int cy;
    sp = sp - 1;
    pos = fstack[sp];
    cx = pos % WIDTH;
    cy = pos / WIDTH;
    if (raster[pos] != old) continue;
    raster[pos] = c;
    flooded = flooded + 1;
    if (sp < 508) {
      if (cx > 0 && raster[pos - 1] == old) { fstack[sp] = pos - 1; sp = sp + 1; }
      if (cx < WIDTH - 1 && raster[pos + 1] == old) { fstack[sp] = pos + 1; sp = sp + 1; }
      if (cy > 0 && raster[pos - WIDTH] == old) { fstack[sp] = pos - WIDTH; sp = sp + 1; }
      if (cy < HEIGHT - 1 && raster[pos + WIDTH] == old) { fstack[sp] = pos + WIDTH; sp = sp + 1; }
    }
  }
}

// A 3x5 digit font, packed one row per int (3 low bits per row).
int font3x5[10][5];

void init_font() {
  font3x5[0][0] = 7; font3x5[0][1] = 5; font3x5[0][2] = 5; font3x5[0][3] = 5; font3x5[0][4] = 7;
  font3x5[1][0] = 2; font3x5[1][1] = 6; font3x5[1][2] = 2; font3x5[1][3] = 2; font3x5[1][4] = 7;
  font3x5[2][0] = 7; font3x5[2][1] = 1; font3x5[2][2] = 7; font3x5[2][3] = 4; font3x5[2][4] = 7;
  font3x5[3][0] = 7; font3x5[3][1] = 1; font3x5[3][2] = 3; font3x5[3][3] = 1; font3x5[3][4] = 7;
  font3x5[4][0] = 5; font3x5[4][1] = 5; font3x5[4][2] = 7; font3x5[4][3] = 1; font3x5[4][4] = 1;
  font3x5[5][0] = 7; font3x5[5][1] = 4; font3x5[5][2] = 7; font3x5[5][3] = 1; font3x5[5][4] = 7;
  font3x5[6][0] = 7; font3x5[6][1] = 4; font3x5[6][2] = 7; font3x5[6][3] = 5; font3x5[6][4] = 7;
  font3x5[7][0] = 7; font3x5[7][1] = 1; font3x5[7][2] = 2; font3x5[7][3] = 2; font3x5[7][4] = 2;
  font3x5[8][0] = 7; font3x5[8][1] = 5; font3x5[8][2] = 7; font3x5[8][3] = 5; font3x5[8][4] = 7;
  font3x5[9][0] = 7; font3x5[9][1] = 5; font3x5[9][2] = 7; font3x5[9][3] = 1; font3x5[9][4] = 7;
}

void draw_digit(int d, int x, int y, int c) {
  int row;
  int col;
  for (row = 0; row < 5; row++)
    for (col = 0; col < 3; col++)
      if (font3x5[d][row] & (4 >> col)) plot(x + col, y + row, c);
}

void draw_number(int n, int x, int y, int c) {
  if (n >= 10) {
    draw_number(n / 10, x, y, c);
    draw_digit(n % 10, x + 4 * 2, y, c);
  }
  else draw_digit(n % 10, x, y, c);
}

// Thick line: three parallel Bresenhams.
void draw_thick(int x0, int y0, int x1, int y1, int c) {
  draw_line(x0, y0, x1, y1, c);
  draw_line(x0 + 1, y0, x1 + 1, y1, c);
  draw_line(x0, y0 + 1, x1, y1 + 1, c);
}

int tri_x[3];
int tri_y[3];

int main() {
  int frame;
  int check = 0;
  int i;
  init_tables();
  init_font();
  for (frame = 0; frame < 8; frame++) {
    int deg = frame * 36;
    clear_raster();
    draw_axes();
    plot_function(12.0, 1.0 + (double)frame * 0.2, '*');
    draw_circle(WIDTH / 2, HEIGHT / 2, 8 + frame, 'o');
    tri_x[0] = -10; tri_y[0] = -6;
    tri_x[1] = 12;  tri_y[1] = -2;
    tri_x[2] = 0;   tri_y[2] = 10;
    draw_polygon(tri_x, tri_y, 3, deg, 24, 16, '#');
    fill_triangle(70 + frame, 40, 88, 44 + frame % 8, 78, 58, '@');
    draw_ellipse(70, 16, 14, 7 + frame % 4, 'e');
    draw_dashed(2, 2, WIDTH - 3, HEIGHT - 3, ':', 2 + frame % 3);
    draw_clipped(-20, 10, WIDTH + 20, HEIGHT - 10, 'c');
    draw_clipped(-50, -50, -10, -10, 'x');
    draw_thick(4, HEIGHT - 6, 30, HEIGHT - 20, 'T');
    flood_fill(70, 16, '.');
    draw_number(frame * 37, 2, 2, '9');
    // Fold the frame into the checksum.
    {
      int npix = WIDTH * HEIGHT;
      for (i = 0; i < npix; i++)
        check = (check * 31 + raster[i]) & 0xffffff;
    }
  }
  print_int(pixels);
  print_char(' ');
  print_int(check);
  print_char('\n');
  return 0;
}
|}
