(** The benchmark suite (paper Table 2). *)

type benchmark = {
  name : string;
  description : string;
  source : string;  (** mini-C source (runtime library added at compile). *)
  cache_benchmark : bool;
      (** One of the three programs "large enough to have interesting cache
          behavior" (Section 4.1): assem, ipl, latex. *)
}

val all : benchmark list
(** In the paper's table order. *)

val find : string -> benchmark
(** @raise Not_found on unknown names. *)

val cache_benchmarks : benchmark list
