let source =
  {|
// Runtime library: integer multiply/divide millicode and small helpers.
// Multiplication: shift-add over the bits of b; the wrapped 32-bit result
// is correct for signed operands.
int __mulsi3(int a, int b) {
  int acc = 0;
  while (b != 0) {
    if (b & 1) acc = acc + a;
    a = a << 1;
    b = (b >> 1) & 0x7fffffff;
  }
  return acc;
}

// Truncating signed division via restoring long division on magnitudes.
// Division by zero returns 0 (defined for the simulator's benefit).
int __divsi3(int a, int b) {
  int neg = 0;
  int q = 0;
  int i = 30;
  if (b == 0) return 0;
  if (a < 0) { a = -a; neg = 1 - neg; }
  if (b < 0) { b = -b; neg = 1 - neg; }
  while (i >= 0) {
    if ((a >> i) >= b) {
      a = a - (b << i);
      q = q | (1 << i);
    }
    i = i - 1;
  }
  if (neg) return -q;
  return q;
}

int __modsi3(int a, int b) {
  int anegative = 0;
  int r = a;
  int i = 30;
  if (b == 0) return 0;
  if (r < 0) { r = -r; anegative = 1; }
  if (b < 0) b = -b;
  while (i >= 0) {
    if ((r >> i) >= b) r = r - (b << i);
    i = i - 1;
  }
  if (anegative) return -r;
  return r;
}

void print_str(char *s) {
  while (*s) {
    print_char(*s);
    s = s + 1;
  }
}

int strlen_(char *s) {
  int n = 0;
  while (s[n]) n = n + 1;
  return n;
}

int strcmp_(char *a, char *b) {
  while (*a && *a == *b) {
    a = a + 1;
    b = b + 1;
  }
  return *a - *b;
}

void strcpy_(char *dst, char *src) {
  while (*src) {
    *dst = *src;
    dst = dst + 1;
    src = src + 1;
  }
  *dst = 0;
}
|}
