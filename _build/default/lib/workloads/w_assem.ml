(* assem: a two-pass assembler for a small load/store ISA, standing in for
   the paper's D16 assembler (symbol-table and string-heavy integer code
   with a code working set large enough for the cache study). *)

let assem =
  {|
// ---- the program to assemble (embedded source text) ----
char src[1600] =
"; vector sum and checksum kernel\n"
"start:  li   r1, 0\n"
"        li   r2, data\n"
"        li   r3, 64\n"
"        li   r7, 0\n"
"loop:   ld   r4, r2, 0\n"
"        add  r1, r1, r4\n"
"        xor  r7, r7, r4\n"
"        addi r2, r2, 4\n"
"        subi r3, r3, 1\n"
"        bnz  r3, loop\n"
"        st   r1, r2, 8\n"
"        li   r5, 0x3f\n"
"        and  r7, r7, r5\n"
"        jmp  done\n"
"fill:   li   r6, 16\n"
"floop:  st   r6, r2, 0\n"
"        addi r2, r2, 4\n"
"        subi r6, r6, 1\n"
"        bnz  r6, floop\n"
"        jmp  loop\n"
"shifts: shl  r4, r4, r5\n"
"        shr  r4, r4, r5\n"
"        sub  r4, r4, r1\n"
"        or   r4, r4, r7\n"
"        bz   r4, fill\n"
"done:   halt\n"
"data:   word 7\n"
"        word 11\n"
"        word 0x1f\n"
"        word 42\n";

// ---- symbol table (open addressing) ----
char sym_name[64][16];
int sym_val[64];
int sym_used[64];

int hash_name(char *s) {
  int h = 5381;
  while (*s) {
    h = ((h << 5) + h + *s) & 1023;
    s = s + 1;
  }
  return h & 63;
}

int sym_lookup(char *name) {
  int h = hash_name(name);
  int probes = 0;
  while (probes < 64) {
    if (!sym_used[h]) return -1;
    if (strcmp_(sym_name[h], name) == 0) return h;
    h = (h + 1) & 63;
    probes = probes + 1;
  }
  return -1;
}

int sym_define(char *name, int value) {
  int h = hash_name(name);
  int probes = 0;
  while (probes < 64) {
    if (!sym_used[h]) {
      sym_used[h] = 1;
      strcpy_(sym_name[h], name);
      sym_val[h] = value;
      return h;
    }
    if (strcmp_(sym_name[h], name) == 0) return -2;  // duplicate
    h = (h + 1) & 63;
    probes = probes + 1;
  }
  return -1;
}

// ---- scanner ----
int pos = 0;
char tok[16];
int errors = 0;

int is_space(int c) { return c == ' ' || c == '\t'; }
int is_alpha_(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
int is_digit_(int c) { return c >= '0' && c <= '9'; }
int is_xdigit_(int c) {
  return is_digit_(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

void skip_spaces() { while (is_space(src[pos])) pos = pos + 1; }

void skip_line() {
  while (src[pos] && src[pos] != '\n') pos = pos + 1;
  if (src[pos] == '\n') pos = pos + 1;
}

// Reads an identifier into tok; returns its length.
int scan_ident() {
  int n = 0;
  while ((is_alpha_(src[pos]) || is_digit_(src[pos])) && n < 15) {
    tok[n] = src[pos];
    n = n + 1;
    pos = pos + 1;
  }
  tok[n] = 0;
  return n;
}

int xdigit_value(int c) {
  if (is_digit_(c)) return c - '0';
  if (c >= 'a') return c - 'a' + 10;
  return c - 'A' + 10;
}

// Decimal or 0x hex literal.
int scan_number() {
  int v = 0;
  if (src[pos] == '0' && src[pos + 1] == 'x') {
    pos = pos + 2;
    while (is_xdigit_(src[pos])) {
      v = v * 16 + xdigit_value(src[pos]);
      pos = pos + 1;
    }
    return v;
  }
  while (is_digit_(src[pos])) {
    v = v * 10 + (src[pos] - '0');
    pos = pos + 1;
  }
  return v;
}

// ---- opcode table ----
char op_name[20][8];
int op_code[20];
int op_kind[20];  // 0=rrr 1=rri 2=ri 3=mem 4=branch 5=none 6=word
int n_ops = 0;

void add_op(char *name, int code, int kind) {
  strcpy_(op_name[n_ops], name);
  op_code[n_ops] = code;
  op_kind[n_ops] = kind;
  n_ops = n_ops + 1;
}

void init_ops() {
  add_op("add", 1, 0);
  add_op("sub", 2, 0);
  add_op("and", 3, 0);
  add_op("or", 4, 0);
  add_op("xor", 5, 0);
  add_op("shl", 6, 0);
  add_op("shr", 7, 0);
  add_op("addi", 8, 1);
  add_op("subi", 9, 1);
  add_op("li", 10, 2);
  add_op("ld", 11, 3);
  add_op("st", 12, 3);
  add_op("bz", 13, 4);
  add_op("bnz", 14, 4);
  add_op("jmp", 15, 5);
  add_op("halt", 16, 6);
  add_op("word", 17, 7);
}

int find_op(char *name) {
  int i;
  for (i = 0; i < n_ops; i++)
    if (strcmp_(op_name[i], name) == 0) return i;
  return -1;
}

// ---- operand parsing ----
int expect_comma() {
  skip_spaces();
  if (src[pos] == ',') { pos = pos + 1; skip_spaces(); return 1; }
  errors = errors + 1;
  return 0;
}

int parse_reg() {
  skip_spaces();
  if (src[pos] == 'r' && is_digit_(src[pos + 1])) {
    pos = pos + 1;
    return scan_number() & 15;
  }
  errors = errors + 1;
  skip_line();
  return 0;
}

// A value operand: number or symbol (pass 2 resolves; pass 1 returns 0).
int parse_value(int pass) {
  skip_spaces();
  if (is_digit_(src[pos])) return scan_number();
  if (is_alpha_(src[pos])) {
    int h;
    scan_ident();
    if (pass == 1) return 0;
    h = sym_lookup(tok);
    if (h < 0) { errors = errors + 1; return 0; }
    return sym_val[h];
  }
  errors = errors + 1;
  return 0;
}

// ---- assembly ----
int out_words[128];
int n_out = 0;

int encode(int code, int a, int b, int c) {
  return (code << 24) | ((a & 15) << 20) | ((b & 15) << 16) | (c & 65535);
}

void assemble_line(int pass) {
  int op;
  int ra;
  int rb;
  int rc;
  int v;
  skip_spaces();
  if (src[pos] == 0) return;
  if (src[pos] == ';' || src[pos] == '\n') { skip_line(); return; }
  if (is_alpha_(src[pos])) {
    int save = pos;
    scan_ident();
    skip_spaces();
    if (src[pos] == ':') {
      pos = pos + 1;
      if (pass == 1) {
        if (sym_define(tok, n_out * 4) == -2) errors = errors + 1;
      }
      skip_spaces();
      if (src[pos] == '\n' || src[pos] == ';' || src[pos] == 0) {
        skip_line();
        return;
      }
      if (is_alpha_(src[pos])) scan_ident();
      else { errors = errors + 1; skip_line(); return; }
    } else {
      // Not a label: tok already holds the mnemonic.
      save = save;
    }
  } else {
    errors = errors + 1;
    skip_line();
    return;
  }
  op = find_op(tok);
  if (op < 0) { errors = errors + 1; skip_line(); return; }
  if (op_kind[op] == 0) {
    ra = parse_reg();
    expect_comma();
    rb = parse_reg();
    expect_comma();
    rc = parse_reg();
    v = encode(op_code[op], ra, rb, rc);
  } else if (op_kind[op] == 1) {
    ra = parse_reg();
    expect_comma();
    rb = parse_reg();
    expect_comma();
    v = encode(op_code[op], ra, rb, parse_value(pass));
  } else if (op_kind[op] == 2) {
    ra = parse_reg();
    expect_comma();
    v = encode(op_code[op], ra, 0, parse_value(pass));
  } else if (op_kind[op] == 3) {
    ra = parse_reg();
    expect_comma();
    rb = parse_reg();
    expect_comma();
    v = encode(op_code[op], ra, rb, parse_value(pass));
  } else if (op_kind[op] == 4) {
    ra = parse_reg();
    expect_comma();
    v = encode(op_code[op], ra, 0, parse_value(pass));
  } else if (op_kind[op] == 5) {
    v = encode(op_code[op], 0, 0, parse_value(pass));
  } else if (op_kind[op] == 6) {
    v = encode(op_code[op], 0, 0, 0);
  } else {
    v = parse_value(pass);
  }
  if (pass == 2) out_words[n_out] = v;
  n_out = n_out + 1;
  skip_line();
}


// ---- disassembler and listing generator (pass 3) ----
char listing[96];
int list_checksum = 0;

void lput(int c) {
  list_checksum = ((list_checksum * 33) ^ c) & 0x7fffffff;
}

void lput_str(char *s) {
  while (*s) { lput(*s); s = s + 1; }
}

void lput_hex(int v, int digits) {
  int shift = (digits - 1) * 4;
  while (shift >= 0) {
    int nib = (v >> shift) & 15;
    if (nib < 10) lput('0' + nib);
    else lput('a' + nib - 10);
    shift = shift - 4;
  }
}

void lput_reg(int r) {
  lput('r');
  if (r >= 10) lput('1');
  lput('0' + r % 10);
}

// Decode one word back to assembly-ish text (folded into the checksum).
void disassemble(int addr, int w) {
  int code = (w >> 24) & 255;
  int ra = (w >> 20) & 15;
  int rb = (w >> 16) & 15;
  int imm = w & 65535;
  int i;
  int op = -1;
  lput_hex(addr, 4);
  lput(':');
  lput(' ');
  lput_hex(w, 8);
  lput(' ');
  for (i = 0; i < n_ops; i++)
    if (op_code[i] == code) op = i;
  if (op < 0) { lput_str("???"); lput('\n'); return; }
  lput_str(op_name[op]);
  lput(' ');
  if (op_kind[op] == 0) {
    lput_reg(ra); lput(','); lput_reg(rb); lput(','); lput_reg(imm & 15);
  } else if (op_kind[op] == 1 || op_kind[op] == 3) {
    lput_reg(ra); lput(','); lput_reg(rb); lput(','); lput_hex(imm, 4);
  } else if (op_kind[op] == 2 || op_kind[op] == 4) {
    lput_reg(ra); lput(','); lput_hex(imm, 4);
  } else if (op_kind[op] == 5) {
    lput_hex(imm, 4);
  }
  lput('\n');
}

void listing_pass() {
  int i;
  for (i = 0; i < n_out; i++) disassemble(i * 4, out_words[i]);
}

// ---- symbol cross-reference: count and order defined symbols ----
int xref_count = 0;
int xref_hash = 0;

void xref_pass() {
  int i;
  xref_count = 0;
  xref_hash = 0;
  for (i = 0; i < 64; i++) {
    if (sym_used[i]) {
      xref_count = xref_count + 1;
      xref_hash = (xref_hash * 31 + sym_val[i] + hash_name(sym_name[i])) & 0xffffff;
    }
  }
}

// ---- peephole statistics over the object code ----
int redundant_moves = 0;
int dead_stores = 0;

void object_stats() {
  int i;
  redundant_moves = 0;
  dead_stores = 0;
  for (i = 0; i < n_out; i++) {
    int w = out_words[i];
    int code = (w >> 24) & 255;
    int ra = (w >> 20) & 15;
    int rb = (w >> 16) & 15;
    // add rX, rX, r0-style no-ops
    if (code == 1 && ra == rb && (w & 15) == 0) redundant_moves = redundant_moves + 1;
    // store immediately followed by load of the same register/base
    if (code == 12 && i + 1 < n_out) {
      int nxt = out_words[i + 1];
      if (((nxt >> 24) & 255) == 11 && ((nxt >> 20) & 15) == ra
          && ((nxt >> 16) & 15) == rb)
        dead_stores = dead_stores + 1;
    }
  }
}

int main() {
  int round;
  int i;
  int checksum = 0;
  init_ops();
  // Assemble the module repeatedly to give the working set time to settle,
  // as a multi-module assembly run would.
  for (round = 0; round < 24; round++) {
    int pass;
    for (i = 0; i < 64; i++) sym_used[i] = 0;
    for (pass = 1; pass <= 2; pass++) {
      pos = 0;
      n_out = 0;
      while (src[pos]) assemble_line(pass);
    }
    for (i = 0; i < n_out; i++)
      checksum = (checksum ^ out_words[i]) + i;
    listing_pass();
    xref_pass();
    object_stats();
  }
  print_int(n_out);
  print_char(' ');
  print_int(errors);
  print_char(' ');
  print_int(checksum);
  print_char(' ');
  print_int(list_checksum);
  print_char(' ');
  print_int(xref_count);
  print_char(' ');
  print_int(xref_hash);
  print_char(' ');
  print_int(redundant_moves + dead_stores);
  print_char('\n');
  return 0;
}
|}
