(** The runtime library linked into every benchmark, in mini-C.

    The paper's library came from BSD sources and was identical on both
    targets (footnote 1); ours likewise is compiled with each program for
    whichever target is selected.  It provides the integer multiply/divide
    millicode the ISAs lack ([__mulsi3], [__divsi3], [__modsi3] — Table 1
    has no integer multiply or divide, as on several early RISCs) and the
    small string/printing helpers the suite uses. *)

val source : string
