lib/workloads/w_assem.ml:
