lib/workloads/w_ipl.ml:
