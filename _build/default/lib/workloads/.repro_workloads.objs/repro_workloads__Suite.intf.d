lib/workloads/suite.mli:
