lib/workloads/w_latex.ml:
