lib/workloads/w_dhrystone.ml:
