lib/workloads/w_grep.ml:
