lib/workloads/w_stanford.ml:
