lib/workloads/w_numeric.ml:
