lib/workloads/runtime_lib.mli:
