lib/workloads/suite.ml: List W_assem W_dhrystone W_grep W_ipl W_latex W_numeric W_stanford
