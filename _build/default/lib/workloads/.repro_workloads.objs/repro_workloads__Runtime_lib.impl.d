lib/workloads/runtime_lib.ml:
