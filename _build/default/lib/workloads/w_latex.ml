(* latex: a typesetter stand-in — paragraph filling with justification,
   crude hyphenation, page makeup with running heads and roman-numeral
   folios.  Branchy integer/string code with a wide code working set. *)

let latex =
  {|
char text[2000] =
"The quick brown fox jumps over the lazy dog while the band plays "
"a quiet waltz in the garden. Typesetting is the art of arranging "
"type to make written language legible readable and appealing when "
"displayed. The arrangement involves selecting typefaces point "
"sizes line lengths leading and letter spacing and adjusting the "
"space between pairs of letters.\n"
"In the days of metal type a compositor assembled each line by "
"hand from individual sorts taken from a type case. Justification "
"was achieved by inserting spaces of varying width between words "
"until the line filled the measure. Hyphenation allowed long words "
"to be divided at syllable boundaries reducing the raggedness of "
"the margin and the unsightly rivers of white space that plague "
"poorly set paragraphs.\n"
"Modern systems perform these tasks automatically breaking "
"paragraphs into lines by minimizing a badness function summed "
"over the chosen breakpoints. The algorithm considers stretching "
"and shrinking of interword glue demerits for consecutive "
"hyphenated lines and penalties for breaking before displayed "
"formulas. The result approaches the quality of hand composition "
"at a tiny fraction of the effort.\n"
"A page consists of a running head a text block and a folio. The "
"folio of front matter is traditionally set in roman numerals "
"while the body uses arabic figures. Widows and orphans are "
"avoided by adjusting page depth by a line when necessary.\n";

int MEASURE = 58;
int PAGELINES = 12;

int checksum = 0;
int lines_out = 0;
int pages_out = 0;
int hyphens = 0;

// All output flows through here so the result is a cheap checksum.
void emit(int c) {
  checksum = ((checksum << 1) ^ ((checksum >> 27) & 31) ^ c) & 0x7fffffff;
}

void emit_str(char *s) {
  while (*s) {
    emit(*s);
    s = s + 1;
  }
}

void emit_int(int v) {
  if (v >= 10) emit_int(v / 10);
  emit('0' + v % 10);
}

int is_vowel(int c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' || c == 'y';
}

// A plausible break point after position 2: between a vowel and a
// following consonant pair.
int hyphen_point(char *w, int len) {
  int i;
  for (i = 2; i < len - 2; i++) {
    if (is_vowel(w[i]) && !is_vowel(w[i + 1]) && !is_vowel(w[i + 2]))
      return i + 1;
  }
  return 0;
}

// ---- line buffer with justification ----
char words[16][24];
int wlens[16];
int nwords = 0;
int linelen = 0;

void roman(int n) {
  while (n >= 10) { emit('x'); n = n - 10; }
  if (n == 9) { emit_str("ix"); n = 0; }
  if (n >= 5) { emit('v'); n = n - 5; }
  if (n == 4) { emit_str("iv"); n = 0; }
  while (n > 0) { emit('i'); n = n - 1; }
}

void page_head() {
  int i;
  emit_str("-- of typesetting --");
  emit('\n');
  for (i = 0; i < 20; i++) emit('=');
  emit('\n');
}

void page_foot() {
  pages_out = pages_out + 1;
  emit_str("page ");
  roman(pages_out);
  emit('\n');
}

void line_break() {
  lines_out = lines_out + 1;
  emit('\n');
  if (lines_out % PAGELINES == 0) {
    page_foot();
    page_head();
  }
}

// Flush the buffered words as one justified line.
void flush_line(int justify) {
  int gaps = nwords - 1;
  int slack = MEASURE - linelen;
  int i;
  int extra = 0;
  int remainder = 0;
  if (nwords == 0) return;
  if (justify && gaps > 0) {
    extra = slack / gaps;
    remainder = slack % gaps;
  }
  for (i = 0; i < nwords; i++) {
    emit_str(words[i]);
    if (i < gaps) {
      int pad = 1 + extra;
      if (i < remainder) pad = pad + 1;
      while (pad > 0) { emit(' '); pad = pad - 1; }
    }
  }
  line_break();
  nwords = 0;
  linelen = 0;
}

// Add one word, breaking (and possibly hyphenating) as needed.
void add_word(char *w) {
  int len = strlen_(w);
  int needed = len;
  if (nwords > 0) needed = needed + 1;
  if (linelen + needed > MEASURE) {
    // Try to hyphenate the word to fill the line better.
    int room = MEASURE - linelen - 2;  // space + hyphen
    int hp = hyphen_point(w, len);
    if (hp > 0 && hp <= room && nwords > 0 && nwords < 15) {
      int i;
      for (i = 0; i < hp; i++) words[nwords][i] = w[i];
      words[nwords][hp] = '-';
      words[nwords][hp + 1] = 0;
      wlens[nwords] = hp + 1;
      linelen = linelen + hp + 2;
      nwords = nwords + 1;
      hyphens = hyphens + 1;
      flush_line(1);
      add_word(w + hp);
      return;
    }
    flush_line(1);
  }
  if (nwords < 16) {
    strcpy_(words[nwords], w);
    wlens[nwords] = len;
    linelen = linelen + len;
    if (nwords > 0) linelen = linelen + 1;
    nwords = nwords + 1;
  }
}

// ---- additional passes run over the same text each round ----

// Word statistics: length histogram, longest word, estimated syllables.
int len_hist[24];
int syllables = 0;
int sentences = 0;
int longest = 0;

int count_syllables(char *w, int len) {
  int count = 0;
  int i;
  int prev_vowel = 0;
  for (i = 0; i < len; i++) {
    int v = is_vowel(w[i]);
    if (v && !prev_vowel) count = count + 1;
    prev_vowel = v;
  }
  if (len > 2 && w[len - 1] == 'e' && count > 1) count = count - 1;
  if (count == 0) count = 1;
  return count;
}

void note_word_stats(char *w) {
  int len = strlen_(w);
  int i = len;
  if (i > 23) i = 23;
  len_hist[i] = len_hist[i] + 1;
  syllables = syllables + count_syllables(w, len);
  if (len > longest) longest = len;
  if (len > 0) {
    int last = w[len - 1];
    if (last == '.' || last == '!' || last == '?') sentences = sentences + 1;
  }
}

// Integer Flesch-style readability: higher is easier.
int readability(int words) {
  int asl;
  int asw;
  if (words == 0 || sentences == 0) return 0;
  asl = (words * 100) / (sentences + 4);        // avg sentence length x100
  asw = (syllables * 100) / words;              // avg syllables/word x100
  return 206835 - 1015 * asl / 100 - 846 * asw / 10;
}

// Centered and right-aligned emission modes for headings.
void emit_centered(char *s) {
  int len = strlen_(s);
  int pad = (MEASURE - len) / 2;
  int i;
  for (i = 0; i < pad; i++) emit(' ');
  emit_str(s);
  line_break();
}

void emit_right(char *s) {
  int len = strlen_(s);
  int i;
  for (i = 0; i < MEASURE - len; i++) emit(' ');
  emit_str(s);
  line_break();
}

// Minimal markup: *word* emphasizes, rendered as UPPERCASE; counts spans.
int emphases = 0;

void emit_marked_word(char *w) {
  int len = strlen_(w);
  if (len >= 3 && w[0] == '*' && w[len - 1] == '*') {
    int i;
    emphases = emphases + 1;
    for (i = 1; i < len - 1; i++) {
      int c = w[i];
      if (c >= 'a' && c <= 'z') c = c - 32;
      emit(c);
    }
  }
  else emit_str(w);
}

// Arabic page number rendering with zero padding, used in the TOC pass.
void arabic3(int n) {
  emit('0' + n / 100 % 10);
  emit('0' + n / 10 % 10);
  emit('0' + n % 10);
}

// Table-of-contents pass: paragraph ordinals with dotted leaders.
int toc_entries = 0;

void toc_line(int para, int page) {
  int i;
  emit_str("para ");
  roman(para);
  for (i = 0; i < 18; i++) emit('.');
  arabic3(page);
  line_break();
  toc_entries = toc_entries + 1;
}

// Hyphenation audit: how many words of each length can be broken.
int breakable = 0;

void hyphen_audit(char *w) {
  int len = strlen_(w);
  if (hyphen_point(w, len) > 0) breakable = breakable + 1;
}

// Line-numbered verbatim mode: emit raw text with 4-digit line numbers.
void verbatim_pass() {
  int i = 0;
  int lineno = 1;
  while (text[i]) {
    if (i == 0 || text[i - 1] == '\n') {
      emit('0' + lineno / 1000 % 10);
      emit('0' + lineno / 100 % 10);
      emit('0' + lineno / 10 % 10);
      emit('0' + lineno % 10);
      emit(' ');
      lineno = lineno + 1;
    }
    emit(text[i]);
    i = i + 1;
  }
}

// Word-frequency sampling via a small hash of first/last chars.
int freq[64];

void note_freq(char *w) {
  int len = strlen_(w);
  int h;
  if (len == 0) return;
  h = (w[0] * 7 + w[len - 1] * 3 + len) & 63;
  freq[h] = freq[h] + 1;
}

int freq_mode() {
  int best = 0;
  int i;
  for (i = 0; i < 64; i++)
    if (freq[i] > freq[best]) best = i;
  return best * 1000 + freq[best];
}

char curword[24];

void format_text() {
  int i = 0;
  int j = 0;
  page_head();
  while (text[i]) {
    int c = text[i];
    if (c == ' ' || c == '\n') {
      if (j > 0) {
        curword[j] = 0;
        note_word_stats(curword);
        note_freq(curword);
        hyphen_audit(curword);
        add_word(curword);
        j = 0;
      }
      if (c == '\n') {
        // Paragraph end: flush ragged, add blank line.
        flush_line(0);
        line_break();
      }
    } else if (j < 23) {
      curword[j] = c;
      j = j + 1;
    }
    i = i + 1;
  }
  if (j > 0) { curword[j] = 0; add_word(curword); }
  flush_line(0);
  page_foot();
}

int words_total = 0;

void reset_stats() {
  int i;
  for (i = 0; i < 24; i++) len_hist[i] = 0;
  for (i = 0; i < 64; i++) freq[i] = 0;
  syllables = 0;
  sentences = 0;
  longest = 0;
  emphases = 0;
  breakable = 0;
  toc_entries = 0;
}

int main() {
  int round;
  int score = 0;
  for (round = 0; round < 8; round++) {
    int p;
    checksum = 0;
    lines_out = 0;
    pages_out = 0;
    hyphens = 0;
    reset_stats();
    MEASURE = 50 + round;  // vary the measure between rounds
    emit_centered("ON TYPESETTING");
    emit_right("draft");
    format_text();
    for (p = 1; p <= pages_out; p++) toc_line(p, p * 3 + round);
    verbatim_pass();
    {
      int w = 0;
      int i;
      for (i = 0; i < 24; i++) w = w + len_hist[i];
      words_total = w;
      score = readability(w);
    }
    emit_marked_word("*finis*");
  }
  print_int(lines_out);
  print_char(' ');
  print_int(pages_out);
  print_char(' ');
  print_int(hyphens);
  print_char(' ');
  print_int(words_total);
  print_char(' ');
  print_int(sentences);
  print_char(' ');
  print_int(longest);
  print_char(' ');
  print_int(breakable);
  print_char(' ');
  print_int(score);
  print_char(' ');
  print_int(freq_mode());
  print_char(' ');
  print_int(toc_entries);
  print_char(' ');
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
