(* grep: a small regular-expression matcher (literal characters, '.',
   'c*', '^', '$'), in the style of the classic UNIX implementation,
   scanning an embedded text line by line for several patterns. *)

let grep =
  {|
char text[2200] =
"in any stored program computer system information is constantly\n"
"transferred between the memory and the instruction processor\n"
"machine instructions are a major portion of this traffic\n"
"since transfer bandwidth is a limited resource inefficiency in\n"
"the encoding of instruction information can have definite\n"
"hardware and performance costs\n"
"starting with a parameterized baseline risc design we compare\n"
"performance for two instruction encodings for the architecture\n"
"one is a variant of dlx the other is a sixteen bit format which\n"
"sacrifices some expressive power while retaining essential risc\n"
"features\n"
"using optimizing compilers and software simulation we measure\n"
"code density and path length for a suite of benchmark programs\n"
"relating performance differences to specific instruction set\n"
"features\n"
"we measure time to completion performance while varying memory\n"
"latency and instruction cache size parameters\n"
"the sixteen bit format is shown to have significant cost\n"
"performance advantages over the thirty two bit format under\n"
"typical memory system performance constraints\n"
"efficient transfer of instructions between the memory and the\n"
"instruction set processor is a significant issue in any von\n"
"neumann style computer system\n"
"since the capacity of processors to execute instructions\n"
"typically exceeds the capacity of a memory to provide them\n"
"efficiency in the encoding of instruction information can be\n"
"expected to have definite hardware or performance costs\n"
"such considerations for many years supported the development\n"
"of cisc processors\n";

int matchstar(int c, char *re, char *s) {
  do {
    if (matchhere(re, s)) return 1;
  } while (*s != 0 && (*s == c || c == '.') && (s = s + 1) != 0);
  return 0;
}

int matchhere(char *re, char *s) {
  if (re[0] == 0) return 1;
  if (re[1] == '*') return matchstar(re[0], re + 2, s);
  if (re[0] == '$' && re[1] == 0) return *s == 0;
  if (*s != 0 && (re[0] == '.' || re[0] == *s))
    return matchhere(re + 1, s + 1);
  return 0;
}

int match(char *re, char *s) {
  if (re[0] == '^') return matchhere(re + 1, s);
  do {
    if (matchhere(re, s)) return 1;
  } while (*s != 0 && (s = s + 1) != 0);
  return 0;
}

char line[128];

// Count the lines of text matching the pattern.
int grep_count(char *re) {
  int count = 0;
  int i = 0;
  int j;
  while (text[i]) {
    j = 0;
    while (text[i] && text[i] != '\n') {
      line[j] = text[i];
      j = j + 1;
      i = i + 1;
    }
    line[j] = 0;
    if (text[i] == '\n') i = i + 1;
    if (match(re, line)) count = count + 1;
  }
  return count;
}

int main() {
  print_int(grep_count("instruction"));
  print_char(' ');
  print_int(grep_count("^the"));
  print_char(' ');
  print_int(grep_count("memory"));
  print_char(' ');
  print_int(grep_count("p.rformance"));
  print_char(' ');
  print_int(grep_count("c.*s$"));
  print_char(' ');
  print_int(grep_count("z*risc"));
  print_char('\n');
  return 0;
}
|}
