module Target = Repro_core.Target
module Insn = Repro_core.Insn
module Link = Repro_link.Link
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite
module Table = Repro_util.Table
module Stats = Repro_util.Stats
module Opt = Repro_ir.Opt

type t = { id : string; title : string; render : unit -> string }

let suite_names = List.map (fun b -> b.Suite.name) Suite.all
let cache_names = List.map (fun b -> b.Suite.name) Suite.cache_benchmarks
let d16 = Target.d16
let dlxe = Target.dlxe
let fl = float_of_int

let density_ratio bench target =
  Stats.ratio (Runs.stats bench target).Runs.size_bytes
    (Runs.stats bench d16).Runs.size_bytes

let pathlen_ratio bench target =
  Stats.ratio (Runs.stats bench target).Runs.ic (Runs.stats bench d16).Runs.ic

let average_density target =
  Stats.mean (List.map (fun b -> density_ratio b target) suite_names)

let average_pathlen target =
  Stats.mean (List.map (fun b -> pathlen_ratio b target) suite_names)

let wait_states = [ 0; 1; 2; 3 ]
let miss_penalties = [ 4; 8; 12; 16 ]

let nocache_cycles bench target ~bus_bytes ~wait_states =
  let s = Runs.stats bench target in
  let ireq = if bus_bytes = 4 then s.Runs.ireq32 else s.Runs.ireq64 in
  let dreq = if bus_bytes = 4 then s.Runs.dreq32 else s.Runs.dreq64 in
  s.Runs.ic + s.Runs.interlocks + (wait_states * (ireq + dreq))

let cycle_ratio bench ~bus_bytes ~wait_states =
  Stats.ratio
    (nocache_cycles bench dlxe ~bus_bytes ~wait_states)
    (nocache_cycles bench d16 ~bus_bytes ~wait_states)

let cached_cycles bench target ~size ~penalty =
  let s = Runs.stats bench target in
  let c = Runs.cached bench target ~size ~block:32 ~sub:4 in
  s.Runs.ic + s.Runs.interlocks
  + penalty
    * (c.Memsys.icache.Memsys.misses
      + c.Memsys.dcache_read.Memsys.misses
      + c.Memsys.dcache_write.Memsys.misses)

(* ---- Section 3: instruction set performance ---- *)

let fig4 () =
  let entries =
    List.map (fun b -> (b, density_ratio b dlxe)) suite_names
  in
  "D16 relative density (static code size DLXe/D16; paper Figure 4)\n\n"
  ^ Table.bar_chart ~max_value:2.0 entries
  ^ Printf.sprintf "\nAverage: %.2f  (paper: ~1.5)\n"
      (Stats.mean (List.map snd entries))

let fig5 () =
  let entries =
    List.map (fun b -> (b, pathlen_ratio b dlxe)) suite_names
  in
  "DLXe path length reduction (DLXe/D16 path lengths, D16 = 1.0; Figure 5)\n\n"
  ^ Table.bar_chart ~max_value:1.2 entries
  ^ Printf.sprintf "\nAverage DLXe/D16: %.2f  (paper: ~0.87)\n"
      (Stats.mean (List.map snd entries))

let regs_table ~measure ~label () =
  let header = [ "program"; "DLXe-16reg"; "DLXe-32reg" ] in
  let rows =
    List.map
      (fun b ->
        [ b; Table.fmt2 (measure b Target.dlxe_16_3); Table.fmt2 (measure b dlxe) ])
      suite_names
  in
  let avg t = Stats.mean (List.map (fun b -> measure b t) suite_names) in
  Printf.sprintf "%s, relative to D16 = 1.00\n\n%s\nAverages: 16reg %.2f, 32reg %.2f\n"
    label
    (Table.render header rows)
    (avg Target.dlxe_16_3) (avg dlxe)

let fig6 () =
  regs_table ~measure:density_ratio
    ~label:"Density effects of 16 vs 32 registers (Figure 6)" ()

let fig7 () =
  regs_table ~measure:pathlen_ratio
    ~label:"Path length effects of 16 vs 32 registers (Figure 7)" ()

let data_traffic bench target =
  let s = Runs.stats bench target in
  s.Runs.load_words + s.Runs.store_words

let tab3 () =
  let rows =
    List.map
      (fun b ->
        let base = data_traffic b dlxe in
        let pct t = Stats.percent_increase ~base (data_traffic b t) in
        [ b; Table.fmt2 (pct d16); Table.fmt2 (pct Target.dlxe_16_3) ])
      suite_names
  in
  let avg t =
    Stats.mean
      (List.map
         (fun b ->
           Stats.percent_increase ~base:(data_traffic b dlxe) (data_traffic b t))
         suite_names)
  in
  Printf.sprintf
    "Data traffic increase for the smaller register file (%% over DLXe/32; Table 3)\n\n%s\nAverage: D16 %.1f%%, DLXe-16 %.1f%%  (paper: 10.1%%, 9.0%%)\n"
    (Table.render [ "program"; "D16"; "DLXe-16" ] rows)
    (avg d16) (avg Target.dlxe_16_3)

let addr_table ~measure ~label () =
  let header = [ "program"; "2-address"; "3-address" ] in
  let rows =
    List.map
      (fun b ->
        [
          b;
          Table.fmt2 (measure b Target.dlxe_32_2);
          Table.fmt2 (measure b dlxe);
        ])
      suite_names
  in
  let avg t = Stats.mean (List.map (fun b -> measure b t) suite_names) in
  Printf.sprintf "%s (DLXe/32, relative to D16 = 1.00)\n\n%s\nAverages: 2-addr %.2f, 3-addr %.2f\n"
    label
    (Table.render header rows)
    (avg Target.dlxe_32_2) (avg dlxe)

let fig8 () =
  addr_table ~measure:density_ratio
    ~label:"Code density effects of two-address instructions (Figure 8)" ()

let fig9 () =
  addr_table ~measure:pathlen_ratio
    ~label:"Path length effects of two-address instructions (Figure 9)" ()

let fig10 () =
  let entries =
    List.map
      (fun b ->
        ( b,
          Stats.ratio (Runs.stats b d16).Runs.ic
            (Runs.stats b Target.dlxe_16_2).Runs.ic ))
      suite_names
  in
  "Speedup from DLXe immediates and offsets (DLXe/16/2 vs D16 = 1.00; Figure 10)\n\n"
  ^ Table.bar_chart ~max_value:1.3 entries
  ^ Printf.sprintf "\nAverage: %.2f  (paper: ~1.10)\n"
      (Stats.mean (List.map snd entries))

(* Table 4: dynamic frequencies of DLXe/16/2 instructions that exceed D16's
   immediate capabilities. *)
let immediate_frequencies_memo = ref None

let immediate_frequencies () =
  match !immediate_frequencies_memo with
  | Some v -> v
  | None ->
  let target = Target.dlxe_16_2 in
  let total = ref 0 in
  let cmpi = ref 0 in
  let alui = ref 0 in
  let disp = ref 0 in
  List.iter
    (fun bench ->
      let img = Runs.image bench target in
      let r = Runs.run_with_trace bench target in
      let trace = Option.get r.Machine.trace in
      let counts = Array.make (Array.length img.Link.insns) 0 in
      Array.iter
        (fun addr ->
          match Hashtbl.find_opt img.Link.index_of_addr addr with
          | Some i -> counts.(i) <- counts.(i) + 1
          | None -> ())
        trace.Machine.iaddr;
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            total := !total + n;
            match img.Link.insns.(i) with
            | Insn.Cmpi _ -> cmpi := !cmpi + n
            | Insn.Alui (op, _, _, imm) ->
              if not (Target.alui_fits d16 op imm) then alui := !alui + n
            | Insn.Mvi (_, imm) ->
              if not (Target.mvi_fits d16 imm) then alui := !alui + n
            | Insn.Mvhi _ -> alui := !alui + n
            | Insn.Load (w, _, _, off) ->
              if not (Target.mem_offset_fits d16 ~word:(w = Insn.Lw) off) then
                disp := !disp + n
            | Insn.Store (w, _, _, off) ->
              if not (Target.mem_offset_fits d16 ~word:(w = Insn.Sw) off) then
                disp := !disp + n
            | Insn.Fload (_, _, _, off) | Insn.Fstore (_, _, _, off) ->
              if not (Target.mem_offset_fits d16 ~word:true off) then
                disp := !disp + n
            | _ -> ()
          end)
        counts)
    suite_names;
  let t = fl !total in
  let v = (fl !cmpi /. t, fl !alui /. t, fl !disp /. t) in
  immediate_frequencies_memo := Some v;
  v

let tab4 () =
  let c, a, d = immediate_frequencies () in
  Printf.sprintf
    "Average immediate-field instruction frequencies in DLXe/16/2 traces (Table 4)\n\n%s"
    (Table.render
       [ "class"; "share"; "paper" ]
       [
         [ "Compare immediate"; Printf.sprintf "%.1f%%" (100. *. c); "2.1%" ];
         [ "ALU immediate beyond D16"; Printf.sprintf "%.1f%%" (100. *. a); "2.8%" ];
         [ "Memory displacement beyond D16"; Printf.sprintf "%.1f%%" (100. *. d); "4.6%" ];
         [
           "Total";
           Printf.sprintf "%.1f%%" (100. *. (c +. a +. d));
           "9.5%";
         ];
       ])

let variant_targets =
  [ Target.dlxe_16_2; Target.dlxe_16_3; Target.dlxe_32_2; dlxe ]

let summary_table ~measure ~label () =
  let header =
    "program" :: "D16" :: List.map (fun t -> t.Target.name) variant_targets
  in
  let rows =
    List.map
      (fun b ->
        b :: "1.00"
        :: List.map (fun t -> Table.fmt2 (measure b t)) variant_targets)
      suite_names
  in
  let avgs =
    "Average" :: "1.00"
    :: List.map
         (fun t ->
           Table.fmt2 (Stats.mean (List.map (fun b -> measure b t) suite_names)))
         variant_targets
  in
  Printf.sprintf "%s\n\n%s" label (Table.render header (rows @ [ avgs ]))

let fig11 () =
  summary_table ~measure:density_ratio
    ~label:"Code density summary, ratios DLXe/D16 (Figure 11)" ()

let fig12 () =
  summary_table ~measure:pathlen_ratio
    ~label:"Path length summary, ratios DLXe/D16 (Figure 12)" ()

let tab5 () =
  let avg m t = Stats.mean (List.map (fun b -> m b t) suite_names) in
  Printf.sprintf
    "Summary of density and path length effects (Table 5)\n\n%s\n%s"
    (Table.render
       [ "Code size (D16=1.00)"; "Two-Address"; "Three-Address" ]
       [
         [
           "16 registers";
           Table.fmt2 (avg density_ratio Target.dlxe_16_2);
           Table.fmt2 (avg density_ratio Target.dlxe_16_3);
         ];
         [
           "32 registers";
           Table.fmt2 (avg density_ratio Target.dlxe_32_2);
           Table.fmt2 (avg density_ratio dlxe);
         ];
       ])
    (Table.render
       [ "Path length (D16=1.00)"; "Two-Address"; "Three-Address" ]
       [
         [
           "16 registers";
           Table.fmt2 (avg pathlen_ratio Target.dlxe_16_2);
           Table.fmt2 (avg pathlen_ratio Target.dlxe_16_3);
         ];
         [
           "32 registers";
           Table.fmt2 (avg pathlen_ratio Target.dlxe_32_2);
           Table.fmt2 (avg pathlen_ratio dlxe);
         ];
       ])

let fig13 () =
  let rows =
    List.map
      (fun b ->
        let traffic =
          Stats.ratio (Runs.stats b dlxe).Runs.ireq32
            (Runs.stats b d16).Runs.ireq32
        in
        [ b; Table.fmt2 traffic; Table.fmt2 (density_ratio b dlxe) ])
      suite_names
  in
  "Instruction traffic vs code size, DLXe/D16 (uniformity check; Figure 13)\n\n"
  ^ Table.render [ "program"; "traffic ratio"; "static size ratio" ] rows

(* ---- Section 4: memory performance ---- *)

let fig14 () =
  let series bus =
    let dlxe_cpi l =
      Stats.mean
        (List.map
           (fun b ->
             Memsys.cpi
               ~cycles:(nocache_cycles b dlxe ~bus_bytes:bus ~wait_states:l)
               ~ic:(Runs.stats b dlxe).Runs.ic)
           suite_names)
    in
    let d16_cpi l =
      Stats.mean
        (List.map
           (fun b ->
             Memsys.cpi
               ~cycles:(nocache_cycles b d16 ~bus_bytes:bus ~wait_states:l)
               ~ic:(Runs.stats b d16).Runs.ic)
           suite_names)
    in
    let d16_norm l =
      Stats.mean
        (List.map
           (fun b ->
             Memsys.normalized_cpi
               ~cycles:(nocache_cycles b d16 ~bus_bytes:bus ~wait_states:l)
               ~reference_ic:(Runs.stats b dlxe).Runs.ic)
           suite_names)
    in
    Table.series_chart ~x_label:"wait states"
      ~xs:(List.map string_of_int wait_states)
      [
        (Printf.sprintf "DLXe k=%d" (bus / 4), List.map dlxe_cpi wait_states);
        (Printf.sprintf "D16 k=%d" (bus / 2), List.map d16_cpi wait_states);
        ("D16 normalized", List.map d16_norm wait_states);
      ]
  in
  "Normalized CPI, no cache (Figure 14)\n\n32-bit fetch:\n" ^ series 4
  ^ "\n64-bit fetch:\n" ^ series 8

let fig15 () =
  let series bus =
    let f t l =
      Stats.mean
        (List.map
           (fun b ->
             let s = Runs.stats b t in
             let ireq = if bus = 4 then s.Runs.ireq32 else s.Runs.ireq64 in
             fl ireq /. fl (nocache_cycles b t ~bus_bytes:bus ~wait_states:l))
           suite_names)
    in
    Table.series_chart ~x_label:"wait states"
      ~xs:(List.map string_of_int wait_states)
      [
        ("DLXe", List.map (f dlxe) wait_states);
        ("D16", List.map (f d16) wait_states);
      ]
  in
  "Instruction fetch saturation, requests/cycle, no cache (Figure 15)\n\n32-bit fetch:\n"
  ^ series 4 ^ "\n64-bit fetch:\n" ^ series 8

let fig16 () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Instruction cache miss rates vs cache size (32B blocks, 4B sub-blocks; Figure 16)\n";
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "\n%s:\n" b);
      let rows =
        List.map
          (fun size ->
            let rate t =
              let c = Runs.cached b t ~size ~block:32 ~sub:4 in
              Memsys.miss_rate c.Memsys.icache
            in
            [
              Printf.sprintf "%dK" (size / 1024);
              Table.fmt3 (rate d16);
              Table.fmt3 (rate dlxe);
            ])
          Runs.standard_cache_sizes
      in
      Buffer.add_string buf (Table.render [ "size"; "D16"; "DLXe" ] rows))
    cache_names;
  Buffer.contents buf

let cpi_vs_penalty ~size () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "CPI vs miss penalty, %dK instruction and data caches (Figure %s)\n"
       (size / 1024)
       (if size = 4096 then "17" else "18"));
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "\n%s:\n" b);
      let cpi t p =
        Memsys.cpi
          ~cycles:(cached_cycles b t ~size ~penalty:p)
          ~ic:(Runs.stats b t).Runs.ic
      in
      let norm p =
        Memsys.normalized_cpi
          ~cycles:(cached_cycles b d16 ~size ~penalty:p)
          ~reference_ic:(Runs.stats b dlxe).Runs.ic
      in
      Buffer.add_string buf
        (Table.series_chart ~x_label:"penalty"
           ~xs:(List.map string_of_int miss_penalties)
           [
             ("DLXe", List.map (cpi dlxe) miss_penalties);
             ("D16", List.map (cpi d16) miss_penalties);
             ("D16 normalized", List.map norm miss_penalties);
           ]))
    cache_names;
  Buffer.contents buf

let fig17 () = cpi_vs_penalty ~size:4096 ()
let fig18 () = cpi_vs_penalty ~size:16384 ()

let fig19 () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Instruction traffic (words/cycle) with instruction cache, miss penalty 4 (Figure 19)\n";
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "\n%s:\n" b);
      let rows =
        List.map
          (fun size ->
            let wpc t =
              let c = Runs.cached b t ~size ~block:32 ~sub:4 in
              let cyc = cached_cycles b t ~size ~penalty:4 in
              fl c.Memsys.icache.Memsys.words_transferred /. fl cyc
            in
            [
              Printf.sprintf "%dK" (size / 1024);
              Table.fmt3 (wpc d16);
              Table.fmt3 (wpc dlxe);
            ])
          Runs.standard_cache_sizes
      in
      Buffer.add_string buf (Table.render [ "size"; "D16"; "DLXe" ] rows))
    cache_names;
  Buffer.contents buf

(* ---- Appendix tables ---- *)

let tab6 () =
  let header =
    "program" :: "D16"
    :: List.map (fun t -> t.Target.name) variant_targets
  in
  let rows =
    List.map
      (fun b ->
        string_of_int (Runs.stats b d16).Runs.size_bytes
        :: List.map
             (fun t -> string_of_int (Runs.stats b t).Runs.size_bytes)
             variant_targets
        |> fun cells -> b :: cells)
      suite_names
  in
  "Code size in bytes (Table 6)\n\n" ^ Table.render header rows
  ^ Printf.sprintf "\nRelative density averages: %s\n"
      (String.concat ", "
         (List.map
            (fun t ->
              Printf.sprintf "%s %.2f" t.Target.name (average_density t))
            variant_targets))

let tab7 () =
  let header =
    "program" :: "D16" :: List.map (fun t -> t.Target.name) variant_targets
  in
  let rows =
    List.map
      (fun b ->
        b
        :: string_of_int (Runs.stats b d16).Runs.ic
        :: List.map
             (fun t -> string_of_int (Runs.stats b t).Runs.ic)
             variant_targets)
      suite_names
  in
  "Path lengths (Table 7)\n\n" ^ Table.render header rows
  ^ Printf.sprintf "\nPath length averages (DLXe/D16): %s\n"
      (String.concat ", "
         (List.map
            (fun t ->
              Printf.sprintf "%s %.2f" t.Target.name (average_pathlen t))
            variant_targets))

let tab8 () =
  let rows =
    List.map
      (fun b ->
        let s16 = Runs.stats b d16 in
        let s32 = Runs.stats b dlxe in
        let pct = 100. *. (1. -. (fl s16.Runs.ireq32 /. fl s32.Runs.ireq32)) in
        [
          b;
          string_of_int s16.Runs.ic;
          string_of_int s32.Runs.ic;
          string_of_int s16.Runs.ireq32;
          string_of_int s32.Runs.ireq32;
          Table.fmt2 pct;
        ])
      suite_names
  in
  "Path length and instruction traffic in 32-bit words (Table 8)\n\n"
  ^ Table.render
      [ "program"; "D16 path"; "DLXe path"; "D16 words"; "DLXe words"; "%" ]
      rows

let tab9 () =
  let rows =
    List.map
      (fun b ->
        let m t =
          let s = Runs.stats b t in
          s.Runs.loads + s.Runs.stores
        in
        let d = m d16 and x = m dlxe in
        [
          b;
          string_of_int d;
          string_of_int x;
          Table.fmt2 (Stats.percent_increase ~base:x d);
        ])
      suite_names
  in
  "Total loads and stores (Table 9; %% is D16 increase over DLXe)\n\n"
  ^ Table.render [ "program"; "D16"; "DLXe"; "%" ] rows

let tab10 () =
  let rows =
    List.map
      (fun b ->
        let s16 = Runs.stats b d16 in
        let s32 = Runs.stats b dlxe in
        [
          b;
          string_of_int s16.Runs.ic;
          string_of_int s16.Runs.interlocks;
          Table.fmt3 (fl s16.Runs.interlocks /. fl s16.Runs.ic);
          string_of_int s32.Runs.ic;
          string_of_int s32.Runs.interlocks;
          Table.fmt3 (fl s32.Runs.interlocks /. fl s32.Runs.ic);
        ])
      suite_names
  in
  "Delayed load and math unit interlocks (Table 10)\n\n"
  ^ Table.render
      [
        "program"; "D16 insns"; "D16 locks"; "rate"; "DLXe insns";
        "DLXe locks"; "rate";
      ]
      rows

let cycles_table ~bus_bytes ~label () =
  let rows =
    List.map
      (fun b ->
        b
        :: List.map
             (fun l -> Table.fmt2 (cycle_ratio b ~bus_bytes ~wait_states:l))
             wait_states)
      suite_names
  in
  let avgs =
    "Mean"
    :: List.map
         (fun l ->
           Table.fmt2
             (Stats.mean
                (List.map
                   (fun b -> cycle_ratio b ~bus_bytes ~wait_states:l)
                   suite_names)))
         wait_states
  in
  Printf.sprintf "%s\n\n%s" label
    (Table.render
       [ "program"; "l=0"; "l=1"; "l=2"; "l=3" ]
       (rows @ [ avgs ]))

let tab11 () =
  cycles_table ~bus_bytes:4
    ~label:"DLXe/D16 performance, 32-bit fetch bus, no cache (Table 11)" ()

let tab12 () =
  cycles_table ~bus_bytes:8
    ~label:"DLXe/D16 cycles, 64-bit fetch bus, no cache (Table 12)" ()

let tab13 () =
  let rows =
    List.concat_map
      (fun b ->
        List.map
          (fun t ->
            let s = Runs.stats b t in
            [
              b;
              t.Target.name;
              string_of_int s.Runs.ic;
              Table.fmt3 (fl s.Runs.interlocks /. fl s.Runs.ic);
              string_of_int s.Runs.ireq32;
              string_of_int s.Runs.loads;
              string_of_int s.Runs.stores;
            ])
          [ d16; dlxe ])
      cache_names
  in
  "Traffic and interlocks for the cache benchmarks (Table 13)\n\n"
  ^ Table.render
      [ "program"; "ISA"; "insns"; "lock rate"; "ifetches"; "reads"; "writes" ]
      rows

let miss_grid bench =
  let rows =
    List.concat_map
      (fun size ->
        List.map
          (fun block ->
            let sub = min 8 block in
            let c16 = Runs.cached bench d16 ~size ~block ~sub in
            let c32 = Runs.cached bench dlxe ~size ~block ~sub in
            [
              Printf.sprintf "%dk" (size / 1024);
              string_of_int block;
              Table.fmt3 (Memsys.miss_rate c16.Memsys.icache);
              Table.fmt3 (Memsys.miss_rate c32.Memsys.icache);
              Table.fmt3 (Memsys.miss_rate c16.Memsys.dcache_read);
              Table.fmt3 (Memsys.miss_rate c32.Memsys.dcache_read);
              Table.fmt3 (Memsys.miss_rate c16.Memsys.dcache_write);
              Table.fmt3 (Memsys.miss_rate c32.Memsys.dcache_write);
            ])
          Runs.standard_blocks)
      Runs.standard_cache_sizes
  in
  Table.render
    [
      "size"; "block"; "I D16"; "I DLXe"; "R D16"; "R DLXe"; "W D16"; "W DLXe";
    ]
    rows

let tab14 () = "Cache miss rates for assem (Table 14)\n\n" ^ miss_grid "assem"
let tab15 () = "Cache miss rates for ipl (Table 15)\n\n" ^ miss_grid "ipl"
let tab16 () = "Cache miss rates for latex (Table 16)\n\n" ^ miss_grid "latex"


(* ---- Extensions beyond the paper's published artifacts ---- *)

(* The Section 3.3.3 extension: D16 with an 8-bit compare-equal immediate
   (and a correspondingly narrowed 8-bit mvi).  The paper predicts "up to
   2 percent" path-length improvement. *)
let xfig1 () =
  let rows =
    List.map
      (fun b ->
        let s16 = Runs.stats b d16 in
        let sx = Runs.stats b Target.d16x in
        [
          b;
          string_of_int s16.Runs.ic;
          string_of_int sx.Runs.ic;
          Printf.sprintf "%+.2f%%"
            (100. *. (1. -. (fl sx.Runs.ic /. fl s16.Runs.ic)));
          string_of_int s16.Runs.size_bytes;
          string_of_int sx.Runs.size_bytes;
        ])
      suite_names
  in
  let avg =
    Stats.mean
      (List.map
         (fun b ->
           100.
           *. (1.
              -. fl (Runs.stats b Target.d16x).Runs.ic
                 /. fl (Runs.stats b d16).Runs.ic))
         suite_names)
  in
  Printf.sprintf
    "EXTENSION: D16x = D16 + 8-bit compare-equal immediate (paper Section 3.3.3)\n\n%s\nAverage speedup: %+.2f%%  (paper's prediction: up to 2%%)\n"
    (Table.render
       [ "program"; "D16 path"; "D16x path"; "speedup"; "D16 B"; "D16x B" ]
       rows)
    avg

(* Ablation study over the compiler's design choices (DESIGN.md): what each
   optimization is worth, per encoding, on representative programs. *)
let ablation_programs = [ "queens"; "grep"; "towers"; "whetstone" ]

let ablations : (string * Compile.ablation) list =
  let base = Compile.no_ablation in
  [
    ("full", base);
    ("no-licm", { base with opt_flags = { Opt.all_flags with do_licm = false } });
    ("no-cse", { base with opt_flags = { Opt.all_flags with cse = false } });
    ("no-strength", { base with opt_flags = { Opt.all_flags with strength = false } });
    ("no-fold", { base with opt_flags = { Opt.all_flags with fold = false } });
    ("no-slot-fill", { base with fill_delay_slots = false });
    ("no-opt", { Compile.opt_flags = Opt.no_flags; fill_delay_slots = false; schedule_loads = false });
  ]

let xtab1_memo = ref None

let xtab1 () =
  match !xtab1_memo with
  | Some s -> s
  | None ->
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "EXTENSION: compiler ablation (path-length ratio vs the full compiler)\n";
  List.iter
    (fun t ->
      Buffer.add_string buf (Printf.sprintf "\n%s:\n" t.Target.name);
      let baseline =
        List.map
          (fun b ->
            let _, r =
              Compile.compile_and_run ~trace:false t
                (Suite.find b).Suite.source
            in
            (b, r.Machine.ic))
          ablation_programs
      in
      let rows =
        List.map
          (fun (name, ab) ->
            name
            :: List.map
                 (fun (b, base_ic) ->
                   let _, r =
                     Compile.compile_and_run ~ablation:ab ~trace:false t
                       (Suite.find b).Suite.source
                   in
                   Table.fmt2 (fl r.Machine.ic /. fl base_ic))
                 baseline)
          ablations
      in
      Buffer.add_string buf
        (Table.render ("ablation" :: ablation_programs) rows))
    [ d16; dlxe ];
  let s = Buffer.contents buf in
  xtab1_memo := Some s;
  s

let all =
  [
    { id = "fig4"; title = "D16 relative density"; render = fig4 };
    { id = "fig5"; title = "DLXe path length reduction"; render = fig5 };
    { id = "fig6"; title = "Density effects of 16 vs 32 registers"; render = fig6 };
    { id = "fig7"; title = "Path length effects, 16 vs 32 registers"; render = fig7 };
    { id = "tab3"; title = "Data traffic increase, smaller register file"; render = tab3 };
    { id = "fig8"; title = "Code density effects, two-address"; render = fig8 };
    { id = "fig9"; title = "Path length effects, two-address"; render = fig9 };
    { id = "fig10"; title = "Effect of large immediates on path lengths"; render = fig10 };
    { id = "tab4"; title = "Immediate-field instruction frequencies"; render = tab4 };
    { id = "fig11"; title = "Code density summary"; render = fig11 };
    { id = "fig12"; title = "Path length summary"; render = fig12 };
    { id = "tab5"; title = "Summary of density and path length effects"; render = tab5 };
    { id = "fig13"; title = "Instruction traffic vs density"; render = fig13 };
    { id = "fig14"; title = "Normalized CPI, no cache"; render = fig14 };
    { id = "fig15"; title = "Instruction fetch saturation"; render = fig15 };
    { id = "fig16"; title = "Instruction cache miss rates"; render = fig16 };
    { id = "fig17"; title = "Performance with 4K caches"; render = fig17 };
    { id = "fig18"; title = "Performance with 16K caches"; render = fig18 };
    { id = "fig19"; title = "Instruction traffic with cache"; render = fig19 };
    { id = "tab6"; title = "Code size summary"; render = tab6 };
    { id = "tab7"; title = "Path length summary"; render = tab7 };
    { id = "tab8"; title = "Path length and instruction traffic"; render = tab8 };
    { id = "tab9"; title = "Total loads and stores"; render = tab9 };
    { id = "tab10"; title = "Interlocks"; render = tab10 };
    { id = "tab11"; title = "DLXe/D16 cycles, 32-bit bus"; render = tab11 };
    { id = "tab12"; title = "DLXe/D16 cycles, 64-bit bus"; render = tab12 };
    { id = "tab13"; title = "Traffic and interlocks, cache benchmarks"; render = tab13 };
    { id = "tab14"; title = "Cache miss rates for assem"; render = tab14 };
    { id = "tab15"; title = "Cache miss rates for ipl"; render = tab15 };
    { id = "tab16"; title = "Cache miss rates for latex"; render = tab16 };
    { id = "xfig1"; title = "EXT: D16x compare-equal-immediate extension"; render = xfig1 };
    { id = "xtab1"; title = "EXT: compiler ablation study"; render = xtab1 };
  ]

let by_id id = List.find (fun e -> e.id = id) all

let render_all () =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "================ %s: %s ================\n%s" e.id
           e.title (e.render ()))
       all)
