module Target = Repro_core.Target
module Link = Repro_link.Link
module Machine = Repro_sim.Machine
module Memsys = Repro_sim.Memsys
module Suite = Repro_workloads.Suite

type stats = {
  bench : string;
  target : Target.t;
  size_bytes : int;
  text_bytes : int;
  ic : int;
  loads : int;
  stores : int;
  load_words : int;
  store_words : int;
  interlocks : int;
  ireq32 : int;
  ireq64 : int;
  dreq32 : int;
  dreq64 : int;
  output : string;
  exit_code : int;
}

let standard_cache_sizes = [ 1024; 2048; 4096; 8192; 16384 ]
let standard_blocks = [ 8; 16; 32; 64 ]

let image_tbl : (string * string, Link.image) Hashtbl.t = Hashtbl.create 32
let stats_tbl : (string * string, stats) Hashtbl.t = Hashtbl.create 32

let cache_tbl : (string * string * int * int * int, Memsys.cached) Hashtbl.t =
  Hashtbl.create 256

let clear_memo () =
  Hashtbl.reset image_tbl;
  Hashtbl.reset stats_tbl;
  Hashtbl.reset cache_tbl

let image bench (target : Target.t) =
  let key = (bench, target.Target.name) in
  match Hashtbl.find_opt image_tbl key with
  | Some img -> img
  | None ->
    let b = Suite.find bench in
    let img = Compile.compile target b.Suite.source in
    Hashtbl.replace image_tbl key img;
    img

let run_with_trace bench target = Machine.run ~trace:true (image bench target)

let stats bench (target : Target.t) =
  let key = (bench, target.Target.name) in
  match Hashtbl.find_opt stats_tbl key with
  | Some s -> s
  | None ->
    let img = image bench target in
    let r = run_with_trace bench target in
    let nc32 = Memsys.replay_nocache ~bus_bytes:4 r in
    let nc64 = Memsys.replay_nocache ~bus_bytes:8 r in
    let s =
      {
        bench;
        target;
        size_bytes = Link.size_bytes img;
        text_bytes = img.Link.text_bytes;
        ic = r.Machine.ic;
        loads = r.Machine.loads;
        stores = r.Machine.stores;
        load_words = r.Machine.load_words;
        store_words = r.Machine.store_words;
        interlocks = r.Machine.interlocks;
        ireq32 = nc32.Memsys.irequests;
        ireq64 = nc64.Memsys.irequests;
        dreq32 = nc32.Memsys.drequests;
        dreq64 = nc64.Memsys.drequests;
        output = r.Machine.output;
        exit_code = r.Machine.exit_code;
      }
    in
    Hashtbl.replace stats_tbl key s;
    s

(* The standard grid replayed when any cache number is first requested:
   the appendix geometries (block x size with 8-byte sub-blocks) plus the
   figure geometry (32-byte blocks, 4-byte sub-blocks). *)
let standard_grid =
  List.concat_map
    (fun size ->
      ((size, 32, 4)
      :: List.map (fun block -> (size, block, min 8 block)) standard_blocks))
    standard_cache_sizes

let fill_grid bench (target : Target.t) =
  let r = run_with_trace bench target in
  let insn_bytes = Target.insn_bytes target in
  List.iter
    (fun (size, block, sub) ->
      let key = (bench, target.Target.name, size, block, sub) in
      if not (Hashtbl.mem cache_tbl key) then begin
        let cfg =
          { Memsys.size_bytes = size; block_bytes = block; sub_block_bytes = sub }
        in
        let c = Memsys.replay_cached ~insn_bytes ~icache:cfg ~dcache:cfg r in
        Hashtbl.replace cache_tbl key c
      end)
    standard_grid

let cached bench (target : Target.t) ~size ~block ~sub =
  let key = (bench, target.Target.name, size, block, sub) in
  match Hashtbl.find_opt cache_tbl key with
  | Some c -> c
  | None ->
    fill_grid bench target;
    (match Hashtbl.find_opt cache_tbl key with
    | Some c -> c
    | None ->
      (* Off-grid geometry: one dedicated replay. *)
      let r = run_with_trace bench target in
      let cfg =
        { Memsys.size_bytes = size; block_bytes = block; sub_block_bytes = sub }
      in
      let c =
        Memsys.replay_cached
          ~insn_bytes:(Target.insn_bytes target)
          ~icache:cfg ~dcache:cfg r
      in
      Hashtbl.replace cache_tbl key c;
      c)
