lib/harness/compile.mli: Repro_core Repro_ir Repro_link Repro_sim
