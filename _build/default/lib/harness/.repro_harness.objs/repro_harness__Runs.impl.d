lib/harness/runs.ml: Compile Hashtbl List Repro_core Repro_link Repro_sim Repro_workloads
