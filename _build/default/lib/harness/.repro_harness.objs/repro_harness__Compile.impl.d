lib/harness/compile.ml: List Repro_codegen Repro_ir Repro_link Repro_minic Repro_sim Repro_workloads
