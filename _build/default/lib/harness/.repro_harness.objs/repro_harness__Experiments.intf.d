lib/harness/experiments.mli: Repro_core
