lib/harness/runs.mli: Repro_core Repro_link Repro_sim
