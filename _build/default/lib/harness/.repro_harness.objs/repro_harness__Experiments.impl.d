lib/harness/experiments.ml: Array Buffer Compile Hashtbl List Option Printf Repro_core Repro_ir Repro_link Repro_sim Repro_util Repro_workloads Runs String
