(** Memoized per-(benchmark, target) measurements.

    Compiling and simulating a benchmark is deterministic, so every
    experiment shares one set of raw numbers.  Traces are large; they are
    replayed once per (benchmark, target) to derive fetch-buffer request
    counts and the standard grid of cache statistics, then discarded. *)

type stats = {
  bench : string;
  target : Repro_core.Target.t;
  size_bytes : int;  (** Stripped-binary measure: text + initialized data. *)
  text_bytes : int;
  ic : int;
  loads : int;
  stores : int;
  load_words : int;
  store_words : int;
  interlocks : int;
  ireq32 : int;  (** Instruction fetch requests, 32-bit bus, no cache. *)
  ireq64 : int;
  dreq32 : int;
  dreq64 : int;
  output : string;
  exit_code : int;
}

val stats : string -> Repro_core.Target.t -> stats
(** Compile, run, replay the two fetch-buffer widths; memoized. *)

val cached :
  string ->
  Repro_core.Target.t ->
  size:int ->
  block:int ->
  sub:int ->
  Repro_sim.Memsys.cached
(** Cache statistics for split I/D caches of the given geometry (both caches
    identical, as in the paper's figures).  Memoized; the first request for
    a (benchmark, target) runs the trace once and replays the whole standard
    grid. *)

val standard_cache_sizes : int list
(** 1K, 2K, 4K, 8K, 16K. *)

val standard_blocks : int list
(** 8, 16, 32, 64 (with 8-byte sub-blocks, paper appendix A.3). *)

val run_with_trace : string -> Repro_core.Target.t -> Repro_sim.Machine.result
(** A fresh traced run (not memoized — the trace is big). *)

val image : string -> Repro_core.Target.t -> Repro_link.Link.image

val clear_memo : unit -> unit
